module griffin

go 1.22
