package griffin

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§4). Each bench runs the corresponding experiment
// from internal/experiments — real algorithms under the calibrated
// hardware models — and reports the reproduced quantities as custom
// metrics (simulated milliseconds, ratios, speedups) alongside the usual
// wall-clock numbers.
//
// Scale: benches default to GRIFFIN_BENCH_SCALE=0.2 of the paper's data
// sizes to keep -bench runs in minutes; set the environment variable to
// 1.0 for the full paper-scale regeneration (cmd/griffin-bench does the
// same with a flag).

import (
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"griffin/internal/experiments"
	"griffin/internal/workload"
)

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 0.2
	if s := os.Getenv("GRIFFIN_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			cfg.Scale = v
		}
	}
	return cfg
}

// sharedCorpus caches the end-to-end corpus and query log across benches.
var (
	corpusOnce sync.Once
	corpusVal  *workload.Corpus
	queriesVal []workload.Query
	corpusErr  error
)

func sharedCorpus(b *testing.B, cfg experiments.Config) (*workload.Corpus, []workload.Query) {
	b.Helper()
	corpusOnce.Do(func() {
		corpusVal, corpusErr = cfg.BuildCorpus()
		if corpusErr != nil {
			return
		}
		queriesVal = workload.GenerateQueryLog(corpusVal, workload.QuerySpec{
			NumQueries:      cfg.Scale2Queries(),
			PopularityAlpha: 0.45,
			Seed:            cfg.Seed + 11,
		})
	})
	if corpusErr != nil {
		b.Fatal(corpusErr)
	}
	return corpusVal, queriesVal
}

func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkTable1CompressionRatio regenerates Table 1: average compression
// ratio of PForDelta vs Elias-Fano (paper: 3.3 vs 4.6).
func BenchmarkTable1CompressionRatio(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PFDRatio, "pfd-ratio")
		b.ReportMetric(res.EFRatio, "ef-ratio")
	}
}

// BenchmarkFig7Ranking regenerates Figure 7: CPU partial_sort vs GPU
// bucketSelect vs GPU radixSort (paper: CPU fastest at realistic sizes).
func BenchmarkFig7Ranking(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunFig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		small := res.Points[0]
		b.ReportMetric(msOf(small.CPUTime), "cpu-1K-ms")
		b.ReportMetric(msOf(small.BucketSel), "bucket-1K-ms")
		b.ReportMetric(msOf(small.RadixSort), "radix-1K-ms")
	}
}

// BenchmarkFig8Crossover regenerates Figure 8: the GPU/CPU intersection
// crossover by length-ratio group (paper: crossover at ratio ~128).
func BenchmarkFig8Crossover(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunFig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := res.Points[0], res.Points[len(res.Points)-1]
		b.ReportMetric(float64(lo.CPUTime)/float64(lo.GPUTime), "gpu-advantage-low-ratio")
		b.ReportMetric(float64(hi.GPUTime)/float64(hi.CPUTime), "cpu-advantage-high-ratio")
	}
}

// BenchmarkFig10ListSizeCDF regenerates Figure 10: the corpus list-size
// distribution.
func BenchmarkFig10ListSizeCDF(b *testing.B) {
	cfg := benchConfig()
	c, _ := sharedCorpus(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunFig10(cfg, c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CDF[0]*100, "cdf-at-1K-pct")
	}
}

// BenchmarkFig11TermDistribution regenerates Figure 11: the query log's
// term-count distribution (paper: ~27%/33%/24% for 2/3/4 terms).
func BenchmarkFig11TermDistribution(b *testing.B) {
	cfg := benchConfig()
	c, _ := sharedCorpus(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, _, err := experiments.RunFig11(cfg, c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Fractions[2]*100, "two-term-pct")
		b.ReportMetric(res.Fractions[3]*100, "three-term-pct")
	}
}

// BenchmarkFig12Decompression regenerates Figure 12: CPU PForDelta vs GPU
// Para-EF decompression (paper: <2x at 1K, up to ~29.6x at 10M).
func BenchmarkFig12Decompression(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunFig12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[0].Speedup, "speedup-1K")
		b.ReportMetric(res.Points[len(res.Points)-1].Speedup, "speedup-max")
	}
}

// BenchmarkFig13Intersection regenerates Figure 13: the four-way
// intersection comparison (paper: GPU merge up to 87x over CPU merge,
// up to 2.29x over GPU binary).
func BenchmarkFig13Intersection(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunFig13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(float64(last.CPUMerge)/float64(last.GPUMerge), "gpumerge-vs-cpumerge")
		b.ReportMetric(float64(last.GPUBinary)/float64(last.GPUMerge), "gpumerge-vs-gpubinary")
	}
}

// BenchmarkFig14EndToEnd regenerates Figure 14: end-to-end latency by
// term count for the three modes (paper: Griffin ~10x over CPU-only,
// ~1.5x over GPU-only).
func BenchmarkFig14EndToEnd(b *testing.B) {
	cfg := benchConfig()
	c, queries := sharedCorpus(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunFig14(cfg, c, queries)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SpeedupVsCPU, "speedup-vs-cpu")
		b.ReportMetric(res.SpeedupVsGPU, "speedup-vs-gpu")
	}
}

// BenchmarkFig15TailLatency regenerates Figure 15: tail-latency reduction
// (paper: 6.6x/8.3x/10.4x/16.1x/26.8x at P80/P90/P95/P99/P99.9).
func BenchmarkFig15TailLatency(b *testing.B) {
	cfg := benchConfig()
	c, queries := sharedCorpus(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res14, _, err := experiments.RunFig14(cfg, c, queries)
		if err != nil {
			b.Fatal(err)
		}
		res15, _ := experiments.RunFig15(res14.CPURecorder, res14.GriffinRecorder)
		b.ReportMetric(res15.Points[0].Speedup, "p80-speedup")
		b.ReportMetric(res15.Points[3].Speedup, "p99-speedup")
	}
}

// BenchmarkAblationCrossover sweeps the scheduler threshold (the §3.2
// design choice: 128 = block size).
func BenchmarkAblationCrossover(b *testing.B) {
	cfg := benchConfig()
	c, queries := sharedCorpus(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunCrossoverAblation(cfg, c, queries)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BestCrossover, "best-crossover")
	}
}

// BenchmarkAblationMigration compares sticky vs re-evaluating migration.
func BenchmarkAblationMigration(b *testing.B) {
	cfg := benchConfig()
	c, queries := sharedCorpus(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunMigrationAblation(cfg, c, queries)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(msOf(res.StickyMean), "sticky-mean-ms")
		b.ReportMetric(msOf(res.NonStickyMean), "nonsticky-mean-ms")
	}
}

// BenchmarkExtensionLoadStudy runs the multi-user queueing study (the
// paper's §6 future work): CPU-only vs Griffin P99 under offered load.
func BenchmarkExtensionLoadStudy(b *testing.B) {
	cfg := benchConfig()
	c, queries := sharedCorpus(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunLoadStudy(cfg, c, queries)
		if err != nil {
			b.Fatal(err)
		}
		at := res.Points[3] // CPU saturation point
		b.ReportMetric(msOf(at.CPUOnlyP99), "cpu-p99-at-saturation-ms")
		b.ReportMetric(msOf(at.GriffinP99), "griffin-p99-at-saturation-ms")
	}
}

// BenchmarkExtensionListCache measures the device-resident list cache
// (bounded-LRU middle ground of the §5 caching discussion).
func BenchmarkExtensionListCache(b *testing.B) {
	cfg := benchConfig()
	c, queries := sharedCorpus(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunCacheStudy(cfg, c, queries)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(msOf(res.ColdMean), "cold-mean-ms")
		b.ReportMetric(msOf(res.WarmMean), "warm-mean-ms")
	}
}
