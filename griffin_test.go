package griffin

import (
	"bytes"
	"testing"
)

// TestPublicAPIQuickstart exercises the facade end to end the way the
// README's quickstart does.
func TestPublicAPIQuickstart(t *testing.T) {
	b := NewIndexBuilder()
	docs := []string{
		"the quick brown fox jumps over the lazy dog",
		"a quick brown dog outpaces a lazy fox",
		"graphics processors accelerate information retrieval",
		"search engines intersect posting lists quickly",
	}
	for i, text := range docs {
		if err := b.AddDocument(uint32(i), Tokenize(text)); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []Mode{CPUOnly, GPUOnly, Hybrid} {
		eng, err := NewEngine(ix, Config{Mode: mode, Device: NewDevice()})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Search([]string{"quick", "fox"})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Docs) != 2 {
			t.Fatalf("%v: got %d results, want 2 (docs 0 and 1)", mode, len(res.Docs))
		}
		for _, d := range res.Docs {
			if d.DocID != 0 && d.DocID != 1 {
				t.Fatalf("%v: unexpected doc %d", mode, d.DocID)
			}
		}
		if res.Stats.Latency <= 0 {
			t.Fatalf("%v: no simulated latency recorded", mode)
		}
	}
}

func TestPublicAPISerialization(t *testing.T) {
	b := NewIndexBuilder()
	if err := b.AddDocument(0, Tokenize("hello world")); err != nil {
		t.Fatal(err)
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteIndex(ix, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTerms() != ix.NumTerms() {
		t.Fatalf("round trip lost terms: %d vs %d", got.NumTerms(), ix.NumTerms())
	}
}

func TestPublicAPIWorkload(t *testing.T) {
	spec := DefaultCorpusSpec()
	spec.NumDocs = 100_000
	spec.NumTerms = 30
	spec.MaxListLen = 20_000
	spec.MinListLen = 100
	c, err := GenerateCorpus(spec)
	if err != nil {
		t.Fatal(err)
	}
	qs := GenerateQueryLog(c, QuerySpec{NumQueries: 20, PopularityAlpha: 0.5, Seed: 3})
	if len(qs) != 20 {
		t.Fatalf("got %d queries", len(qs))
	}
	eng, err := NewEngine(c.Index, Config{Mode: Hybrid, Device: NewDevice()})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if _, err := eng.Search(q.Terms); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPublicAPICustomPolicy(t *testing.T) {
	b := NewIndexBuilder()
	if err := b.AddPostings("a", []uint32{1, 2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPostings("b", []uint32{2, 3, 4}, nil); err != nil {
		t.Fatal(err)
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ix, Config{
		Mode:   Hybrid,
		Device: NewDevice(),
		Policy: &RatioPolicy{Crossover: 64, Sticky: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Search([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Candidates != 2 {
		t.Fatalf("candidates = %d, want 2", res.Stats.Candidates)
	}
}
