package griffin_test

import (
	"fmt"
	"sort"

	"griffin"
)

// ExampleNewEngine indexes a few documents and runs one hybrid query.
func ExampleNewEngine() {
	b := griffin.NewIndexBuilder()
	_ = b.AddDocument(0, griffin.Tokenize("the quick brown fox"))
	_ = b.AddDocument(1, griffin.Tokenize("a quick brown dog"))
	_ = b.AddDocument(2, griffin.Tokenize("compressed posting lists"))
	ix, _ := b.Build()

	eng, _ := griffin.NewEngine(ix, griffin.Config{
		Mode:   griffin.Hybrid,
		Device: griffin.NewDevice(),
	})
	res, _ := eng.Search([]string{"quick", "brown"})
	ids := []int{int(res.Docs[0].DocID), int(res.Docs[1].DocID)}
	sort.Ints(ids)
	fmt.Println("matching docs:", ids)
	// Output:
	// matching docs: [0 1]
}

// ExampleEngine_Search shows the per-query scheduling trace Griffin
// exposes: each intersection records where it ran and why.
func ExampleEngine_Search() {
	b := griffin.NewIndexBuilder()
	// Two comparable lists and the ratio between them below 128: the
	// intersection is scheduled on the (simulated) GPU.
	a := make([]uint32, 0, 600)
	c := make([]uint32, 0, 900)
	for i := uint32(0); i < 3000; i += 5 {
		a = append(a, i)
	}
	for i := uint32(0); i < 3000; i += 3 {
		c = append(c, i)
	}
	_ = b.AddPostings("alpha", a, nil)
	_ = b.AddPostings("gamma", c, nil)
	ix, _ := b.Build()

	eng, _ := griffin.NewEngine(ix, griffin.Config{Mode: griffin.Hybrid, Device: griffin.NewDevice()})
	res, _ := eng.Search([]string{"alpha", "gamma"})
	op := res.Stats.Ops[0]
	fmt.Printf("%s ratio<128=%v matches=%d\n", op.Where, op.Ratio < 128, op.OutLen)
	// Output:
	// GPU ratio<128=true matches=200
}

// ExampleGenerateCorpus synthesizes a benchmark collection shaped like
// the paper's (Zipfian list sizes) and inspects it.
func ExampleGenerateCorpus() {
	c, _ := griffin.GenerateCorpus(griffin.CorpusSpec{
		NumDocs:    100_000,
		NumTerms:   10,
		MaxListLen: 10_000,
		MinListLen: 100,
		Alpha:      1.0,
		Seed:       1,
	})
	fmt.Println("terms:", c.Index.NumTerms())
	fmt.Println("head is largest:", c.Sizes[0] > c.Sizes[9])
	// Output:
	// terms: 10
	// head is largest: true
}
