// Package griffin is a pure-Go reproduction of "Griffin: Uniting CPU and
// GPU in Information Retrieval Systems for Intra-Query Parallelism"
// (Liu, Wang, Swanson — PPoPP 2018).
//
// Griffin is a conjunctive-query search engine that schedules the
// operations of a single query — posting-list decompression and pairwise
// list intersection — dynamically between the CPU and a GPU, migrating
// execution from the device to the host as the query's characteristics
// change (the length ratio of the lists being intersected grows as SvS
// intersection proceeds). Because Go has no CUDA path, the GPU is a
// simulated SIMT device: kernels execute functionally in parallel on
// goroutines and report hardware counters that a calibrated timing model
// (Tesla K20 / PCIe 2.0 / Xeon E5-2609v2 constants from the paper's §4.1)
// converts to simulated latencies. See DESIGN.md for the substitution
// argument and EXPERIMENTS.md for paper-vs-measured results.
//
// # Quick start
//
//	b := griffin.NewIndexBuilder()
//	_ = b.AddDocument(0, griffin.Tokenize("the quick brown fox"))
//	_ = b.AddDocument(1, griffin.Tokenize("the lazy dog"))
//	ix, _ := b.Build()
//
//	eng, _ := griffin.NewEngine(ix, griffin.Config{
//		Mode:   griffin.Hybrid,
//		Device: griffin.NewDevice(),
//	})
//	res, _ := eng.Search([]string{"quick", "fox"})
//	for _, d := range res.Docs {
//		fmt.Println(d.DocID, d.Score)
//	}
//
// The package is a thin facade: the implementation lives in internal/
// packages (core, gpu, kernels, ef, pfordelta, index, intersect, rank,
// sched, hwmodel, workload, stats), re-exported here via type aliases so
// downstream users have one import path.
package griffin

import (
	"io"

	"griffin/internal/cluster"
	"griffin/internal/core"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/kernels"
	"griffin/internal/rank"
	"griffin/internal/sched"
	"griffin/internal/workload"
)

// Mode selects where a query's operations execute.
type Mode = core.Mode

// Execution modes: the paper's three configurations (§4.4).
const (
	// CPUOnly is the highly optimized CPU baseline.
	CPUOnly = core.CPUOnly
	// GPUOnly is Griffin-GPU standalone.
	GPUOnly = core.GPUOnly
	// Hybrid is Griffin: dynamic intra-query CPU/GPU scheduling.
	Hybrid = core.Hybrid
	// PerQueryHybrid is the static whole-query placement baseline
	// (Figure 1(c); Ding et al., WWW'09).
	PerQueryHybrid = core.PerQueryHybrid
)

// Config parameterizes an engine; see core.Config for field docs.
type Config = core.Config

// Engine executes conjunctive queries against one index.
type Engine = core.Engine

// Result is a completed query: top-k docs plus simulated execution stats.
type Result = core.Result

// QueryStats is the per-query simulated execution record.
type QueryStats = core.QueryStats

// OpTrace records one scheduled intersection of a query (QueryStats.Ops).
type OpTrace = core.OpTrace

// PlanRecord is one executed operator of a query's physical plan
// (QueryStats.Plan): the finer-grained trace beneath OpTrace, covering
// fetches, uploads, decompressions, intersections, migrations, scoring,
// and top-k selection, each with its measured and estimated cost.
type PlanRecord = core.PlanRecord

// BatchResult pairs one query of a SearchBatch call with its outcome.
type BatchResult = core.BatchResult

// ScoredDoc pairs a document with its BM25 relevance score.
type ScoredDoc = kernels.ScoredDoc

// Index is the in-memory inverted index.
type Index = index.Index

// IndexBuilder accumulates documents or raw postings into an Index.
type IndexBuilder = index.Builder

// Device is the simulated GPU.
type Device = gpu.Device

// SchedulerPolicy decides per-intersection CPU/GPU placement.
type SchedulerPolicy = sched.Policy

// RatioPolicy is the paper's threshold scheduler (crossover 128, sticky
// migration).
type RatioPolicy = sched.RatioPolicy

// CostPolicy schedules by explicit cost estimation under the hardware
// models instead of the fixed ratio threshold.
type CostPolicy = sched.CostPolicy

// BM25Params are the ranking model's free parameters.
type BM25Params = rank.BM25Params

// NewEngine builds a query engine over an index.
func NewEngine(ix *Index, cfg Config) (*Engine, error) {
	return core.New(ix, cfg)
}

// NewDevice returns a simulated GPU with the paper's Tesla K20
// calibration, executing kernels at full host parallelism.
func NewDevice() *Device {
	return gpu.New(hwmodel.DefaultGPU(), 0)
}

// NewIndexBuilder returns a builder producing Elias-Fano-compressed
// posting lists (Griffin's codec).
func NewIndexBuilder() *IndexBuilder {
	return index.NewBuilder(index.CodecEF)
}

// Tokenize splits text into lowercase terms with the library's minimal
// analyzer.
func Tokenize(text string) []string {
	return index.Tokenize(text)
}

// WriteIndex serializes an index to w in the library's binary format.
func WriteIndex(ix *Index, w io.Writer) error {
	_, err := ix.WriteTo(w)
	return err
}

// ReadIndex deserializes an index written by WriteIndex.
func ReadIndex(r io.Reader) (*Index, error) {
	return index.ReadIndex(r)
}

// CorpusSpec parameterizes synthetic corpus generation (the ClueWeb12
// stand-in of §4.2).
type CorpusSpec = workload.CorpusSpec

// Corpus is a generated synthetic collection.
type Corpus = workload.Corpus

// Query is one synthetic search request.
type Query = workload.Query

// QuerySpec parameterizes query-log synthesis (the TREC stand-in).
type QuerySpec = workload.QuerySpec

// GenerateCorpus builds a synthetic inverted index whose list-size
// distribution matches the paper's Figure 10.
func GenerateCorpus(spec CorpusSpec) (*Corpus, error) {
	return workload.GenerateCorpus(spec)
}

// GenerateQueryLog synthesizes queries whose term-count distribution
// matches the paper's Figure 11.
func GenerateQueryLog(c *Corpus, spec QuerySpec) []Query {
	return workload.GenerateQueryLog(c, spec)
}

// DefaultCorpusSpec returns a laptop-scale corpus specification.
func DefaultCorpusSpec() CorpusSpec { return workload.DefaultCorpusSpec() }

// DefaultQuerySpec matches the paper's 10K-query log.
func DefaultQuerySpec() QuerySpec { return workload.DefaultQuerySpec() }

// Cluster serves one corpus scatter-gather over document-partitioned
// shards, each shard a full engine with a private simulated device.
// Results are byte-identical to a single engine over the unpartitioned
// corpus; see docs/cluster.md.
type Cluster = cluster.Cluster

// ClusterConfig parameterizes a Cluster (replicas, routing, per-shard
// engine template, shard timeout).
type ClusterConfig = cluster.Config

// ClusterStats is one scatter-gather query's execution record: critical
// path, merge cost, and per-shard outcomes including degradation.
type ClusterStats = cluster.Stats

// Routing selects the replica-routing policy.
type Routing = cluster.Routing

// Replica routing policies.
const (
	RoundRobin   = cluster.RoundRobin
	LeastPending = cluster.LeastPending
)

// PartitionIndex document-partitions an index into shards (d mod n),
// preserving global collection statistics so shard engines score
// identically to the unpartitioned engine.
func PartitionIndex(ix *Index, shards int) ([]*Index, error) {
	return workload.PartitionIndex(ix, shards)
}

// NewCluster builds a cluster over one index per shard (typically the
// output of PartitionIndex).
func NewCluster(ixs []*Index, cfg ClusterConfig) (*Cluster, error) {
	return cluster.New(ixs, cfg)
}
