// Command griffin-search runs interactive or one-shot conjunctive queries
// over a serialized Griffin index, reporting per-query simulated latency
// and the scheduler's per-operation placement decisions. With -log it
// replays a query file (one query per line) and prints the latency
// distribution — the §4.5 tail study over your own workload.
//
// Usage:
//
//	griffin-search -index index.grif -mode griffin "quick brown fox"
//	griffin-search -index index.grif -mode cpu -compare "search engines"
//	griffin-search -index index.grif -log queries.txt
//	echo "one query per line" | griffin-search -index index.grif
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"griffin/internal/core"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/stats"
)

func main() {
	indexPath := flag.String("index", "index.grif", "serialized index file")
	modeName := flag.String("mode", "griffin", "execution mode: cpu, gpu, or griffin")
	topK := flag.Int("k", 10, "number of results")
	compare := flag.Bool("compare", false, "run the query under all three modes and compare latencies")
	trace := flag.Bool("trace", false, "print per-intersection scheduling decisions")
	logFile := flag.String("log", "", "replay a query-log file (one query per line) and print the latency distribution")
	flag.Parse()

	f, err := os.Open(*indexPath)
	exitOn(err)
	ix, err := index.ReadIndex(f)
	f.Close()
	exitOn(err)
	fmt.Printf("loaded %s: %d docs, %d terms\n", *indexPath, ix.NumDocs, ix.NumTerms())

	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	engines := map[string]*core.Engine{}
	for name, mode := range map[string]core.Mode{
		"cpu": core.CPUOnly, "gpu": core.GPUOnly, "griffin": core.Hybrid,
	} {
		e, err := core.New(ix, core.Config{Mode: mode, Device: dev, TopK: *topK})
		exitOn(err)
		engines[name] = e
	}
	if _, ok := engines[*modeName]; !ok {
		fmt.Fprintf(os.Stderr, "griffin-search: unknown mode %q\n", *modeName)
		os.Exit(2)
	}

	runQuery := func(line string) {
		terms := index.Tokenize(line)
		if len(terms) == 0 {
			return
		}
		if *compare {
			for _, name := range []string{"cpu", "gpu", "griffin"} {
				res, err := engines[name].Search(terms)
				exitOn(err)
				fmt.Printf("  %-7s %8.3f ms  (%d candidates)\n",
					name, float64(res.Stats.Latency.Microseconds())/1000, res.Stats.Candidates)
			}
			return
		}
		res, err := engines[*modeName].Search(terms)
		exitOn(err)
		fmt.Printf("query %v: %d candidates, %.3f ms simulated (cpu %.3f + gpu %.3f)\n",
			terms, res.Stats.Candidates,
			float64(res.Stats.Latency.Microseconds())/1000,
			float64(res.Stats.CPUTime.Microseconds())/1000,
			float64(res.Stats.GPUTime.Microseconds())/1000)
		if *trace {
			for _, op := range res.Stats.Ops {
				fmt.Printf("  %-12s on %-3s ratio=%-8.1f %d x %d -> %d (%v)\n",
					op.Stage, op.Where, op.Ratio, op.ShortLen, op.LongLen, op.OutLen, op.Took)
			}
		}
		for rank, d := range res.Docs {
			fmt.Printf("  %2d. doc %-10d score %.4f\n", rank+1, d.DocID, d.Score)
		}
	}

	if *logFile != "" {
		replayLog(engines[*modeName], *logFile)
		return
	}
	if args := flag.Args(); len(args) > 0 {
		runQuery(strings.Join(args, " "))
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("enter queries, one per line (ctrl-D to exit):")
	for sc.Scan() {
		runQuery(sc.Text())
	}
}

// replayLog runs every query of the file and prints the simulated-latency
// distribution.
func replayLog(e *core.Engine, path string) {
	f, err := os.Open(path)
	exitOn(err)
	defer f.Close()

	rec := stats.NewLatencyRecorder(1024)
	sc := bufio.NewScanner(f)
	skipped := 0
	for sc.Scan() {
		terms := index.Tokenize(sc.Text())
		if len(terms) == 0 {
			skipped++
			continue
		}
		res, err := e.Search(terms)
		exitOn(err)
		rec.Record(res.Stats.Latency)
	}
	exitOn(sc.Err())
	if rec.Count() == 0 {
		fmt.Println("no queries in log")
		return
	}
	fmt.Printf("replayed %d queries (%d blank lines skipped)\n", rec.Count(), skipped)
	fmt.Printf("mean %.3f ms, max %.3f ms\n",
		float64(rec.Mean().Microseconds())/1000, float64(rec.Max().Microseconds())/1000)
	for _, p := range []float64{50, 80, 90, 95, 99, 99.9} {
		fmt.Printf("  P%-5g %10.3f ms\n", p, float64(rec.Percentile(p).Microseconds())/1000)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "griffin-search:", err)
		os.Exit(1)
	}
}
