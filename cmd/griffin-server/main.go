// Command griffin-server serves conjunctive search over a Griffin index
// as a JSON HTTP API, either single-node or as a sharded scatter-gather
// cluster.
//
// Usage:
//
//	griffin-server -index index.grif -addr :8080 -mode griffin -cache
//	griffin-server -index index.grif -devices 4 -placement affinity -cache
//	griffin-server -index index.grif -shards 4 -replicas 2 -routing least-pending
//	griffin-server -index index.grif -shards 4 -replicas 2 -chaos-rate 0.05 -hedge-delay 2ms
//	griffin-server -index index.grif -batch-window 200us -batch-max 16
//	griffin-server -index index.grif -shards 4 -replicas 2 -default-deadline 5ms -max-inflight 64
//	griffin-server -index index.grif -ingest -merge-threshold 4096 -freshness-threshold 10000
//	griffin-server -index index.grif -ingest -shards 4 -split-watermark 2000000
//	griffin-server -index index.grif -ingest -wal-dir /var/lib/griffin/wal -checkpoint-every 10000
//
// With -shards N > 1 the loaded index is document-partitioned into N
// shards (global BM25 statistics preserved, so results are identical to
// single-node serving), each shard runs -replicas engines with private
// simulated devices, and every query scatter-gathers across the shards.
//
// With -devices N > 1 every engine (single-node or each cluster replica)
// runs a simulated multi-GPU node: queries are placed on one of N devices
// by the -placement policy, per-device list caches pull hot lists over
// the modeled peer interconnect, and /statz grows per-device telemetry.
// At -devices 1 behavior and output are identical to older builds.
//
// With -batch-window W > 0 every device runtime coalesces compatible ops
// (same engine and kernel family) from concurrently admitted queries
// submitted within W of each other into one batched launch, paying fixed
// launch/DMA costs once per batch; -batch-max caps members per batch.
// Results are byte-identical to unbatched serving — only the simulated
// timeline changes — and /statz grows a "batching" block with the
// coalescing telemetry. The default (0) is off, preserving older output
// byte for byte.
//
// Cluster serving self-heals: failed sub-queries retry on sibling
// replicas, device faults fall back to CPU-only plans, per-replica
// circuit breakers shed misbehaving replicas, and -hedge-delay hedges
// slow shards onto a sibling. -chaos-rate injects seeded faults to
// exercise all of it; /healthz reflects breaker-level degradation and
// /statz carries the self-healing counters and fault log (see
// docs/robustness.md).
//
// Cluster serving is also overload-controlled: -default-deadline applies
// a per-query deadline budget (overridable per request with
// ?deadline_ms=) that propagates to shard sub-deadlines and device
// admission, -shed-target sheds sub-queries CoDel-style under sustained
// backlog, -retry-budget bounds retry/hedge amplification, and
// -brownout-enter sheds batch-class (?class=batch) traffic then degrades
// interactive queries before refusing them. -max-inflight bounds
// concurrently served /search requests at the HTTP layer in any mode.
// Overload refusals are 503s with Retry-After; /statz grows an
// "overload" block and /healthz a shed_rate (see docs/robustness.md).
//
// With -ingest the loaded index becomes the seed segment of a live
// engine (or live cluster at -shards > 1): POST /ingest accepts
// add/update/delete mutations that are visible to the next /search
// through an in-memory delta, background merges fold the delta into the
// compressed main segment once it crosses -merge-threshold (contending
// with queries on the shared simulated device), /statz grows an
// "ingest" block, and /healthz reports "degraded" — still serving —
// when merge lag exceeds -freshness-threshold. In cluster mode
// -split-watermark splits a shard whose live document count crosses it,
// re-routing mid-flight. See docs/ingest.md.
//
// With -wal-dir (requires -ingest) ingest is durable: every mutation is
// appended to a checksummed write-ahead log — one log per shard — before
// POST /ingest acknowledges it, -wal-sync sets the appends-per-fsync
// policy (1 = every append), and -checkpoint-every persists merged
// checkpoints so startup recovery replays only the WAL suffix past the
// newest valid checkpoint's watermark. Startup recovers the directory's
// state (torn or corrupt log tails are truncated and logged; a
// directory from a different history refuses to start), /statz's ingest
// block grows a "wal" sub-block, /healthz reports "degraded" — still
// serving reads — when a storage fault wedges the log, and the graceful
// SIGINT/SIGTERM shutdown syncs the WAL after draining requests, so a
// clean exit never loses an acknowledged write even at -wal-sync -1.
//
// Endpoints:
//
//	GET  /search?q=terms&k=10   ranked results + simulated latency
//	GET  /healthz               liveness + index/topology stats
//	GET  /statz                 served-query counters + per-shard telemetry
//	POST /ingest                one mutation (with -ingest): {"op","doc_id","tokens"|"text"}
//
// The server shuts down gracefully on SIGINT/SIGTERM: the listener
// closes immediately, in-flight requests get a drain window, and live
// engines then drain in-flight background merges before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"griffin/internal/cluster"
	"griffin/internal/core"
	"griffin/internal/fault"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/ingest"
	"griffin/internal/overload"
	"griffin/internal/sched"
	"griffin/internal/server"
	"griffin/internal/workload"
)

func main() {
	indexPath := flag.String("index", "index.grif", "serialized index file")
	addr := flag.String("addr", ":8080", "listen address")
	modeName := flag.String("mode", "griffin", "execution mode: cpu, gpu, perquery, or griffin")
	cache := flag.Bool("cache", false, "keep hot compressed lists resident in device memory")
	devices := flag.Int("devices", 1, "simulated GPUs per node; > 1 places each query on one device of a multi-GPU node")
	placementName := flag.String("placement", "affinity", "device placement at -devices > 1: affinity, least-backlog, or round-robin")
	batchWindow := flag.Duration("batch-window", 0, "coalesce compatible device ops from concurrent queries submitted within this window into one batched launch (0 = off)")
	batchMax := flag.Int("batch-max", gpu.DefaultBatchMax, "member ops per batch before an early flush (with -batch-window)")
	topK := flag.Int("k", 10, "default result count")
	shards := flag.Int("shards", 1, "document partitions; > 1 serves scatter-gather over a sharded cluster")
	replicas := flag.Int("replicas", 1, "engine replicas per shard (cluster mode)")
	routingName := flag.String("routing", "rr", "replica routing: rr or least-pending (cluster mode)")
	shardTimeout := flag.Duration("shard-timeout", 0, "per-shard latency budget; slower shards degrade the result (0 = none)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "dispatch a hedged sub-query to a sibling replica after this delay (cluster mode, 0 = off)")
	retries := flag.Int("retries", 0, "sibling retries per failed sub-query (cluster mode; 0 = one retry when replicated, -1 = none)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive failures tripping a replica's circuit breaker (cluster mode; 0 = default 3, -1 = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before half-open probes (cluster mode, 0 = default)")
	chaosRate := flag.Float64("chaos-rate", 0, "inject seeded faults at this base rate (cluster mode, 0 = off); mix: kernel/transfer/stall at rate, reset at rate/4, engine-error at rate/2")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-injection seed (with -chaos-rate)")
	ingestOn := flag.Bool("ingest", false, "accept live mutations on POST /ingest (delta index + background merge)")
	walDir := flag.String("wal-dir", "", "durable ingest: write-ahead log + checkpoint directory; startup recovers its state (with -ingest; empty = in-memory only)")
	walSync := flag.Int("wal-sync", 1, "WAL appends per fsync: 1 syncs every acknowledged mutation, N > 1 trades the sync tail for throughput, -1 defers to checkpoints and shutdown (with -wal-dir)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "persist a checkpoint after this many mutations so recovery replays only the WAL suffix (with -wal-dir; 0 = none)")
	mergeThreshold := flag.Int("merge-threshold", 4096, "unmerged delta records making a merge due (with -ingest; 0 = manual merges only)")
	mergeAuto := flag.Bool("merge-auto", true, "merge in the background when the delta crosses -merge-threshold (with -ingest)")
	freshness := flag.Int("freshness-threshold", 0, "merge lag past which /healthz reports degraded (with -ingest; 0 = no check)")
	splitWatermark := flag.Int("split-watermark", 0, "live docs per shard triggering a shard split (with -ingest -shards > 1; 0 = off)")
	defaultDeadline := flag.Duration("default-deadline", 0, "per-query deadline budget applied when a request carries no ?deadline_ms= (cluster mode, 0 = none)")
	maxInflight := flag.Int("max-inflight", 0, "bound concurrently served /search requests; excess queue and shed CoDel-style (0 = unbounded)")
	shedTarget := flag.Duration("shed-target", 0, "per-replica CoDel admission shed target: sub-queries facing more backlog than this for a sustained interval are shed (cluster mode, 0 = off)")
	retryBudget := flag.Float64("retry-budget", 0, "retry/hedge token budget as a fraction of admissions, e.g. 0.1 (cluster mode, 0 = unbudgeted)")
	brownoutEnter := flag.Duration("brownout-enter", 0, "cluster pressure entering brownout: level 1 sheds batch-class queries, level 2 (2x this) degrades interactive ones (cluster mode, 0 = off)")
	drain := flag.Duration("drain", 10*time.Second, "in-flight request drain window on shutdown")
	flag.Parse()

	modes := map[string]core.Mode{
		"cpu": core.CPUOnly, "gpu": core.GPUOnly,
		"perquery": core.PerQueryHybrid, "griffin": core.Hybrid,
	}
	mode, ok := modes[*modeName]
	if !ok {
		fmt.Fprintf(os.Stderr, "griffin-server: unknown mode %q\n", *modeName)
		os.Exit(2)
	}
	routings := map[string]cluster.Routing{
		"rr": cluster.RoundRobin, "least-pending": cluster.LeastPending,
	}
	routing, ok := routings[*routingName]
	if !ok {
		fmt.Fprintf(os.Stderr, "griffin-server: unknown routing %q\n", *routingName)
		os.Exit(2)
	}
	if *devices < 1 {
		fmt.Fprintf(os.Stderr, "griffin-server: -devices must be >= 1, got %d\n", *devices)
		os.Exit(2)
	}
	placement := sched.PlacementByName(*placementName)
	if placement == nil {
		fmt.Fprintf(os.Stderr, "griffin-server: unknown placement %q (want affinity, least-backlog, or round-robin)\n", *placementName)
		os.Exit(2)
	}
	if *batchWindow < 0 {
		fmt.Fprintf(os.Stderr, "griffin-server: -batch-window must be >= 0, got %v\n", *batchWindow)
		os.Exit(2)
	}
	if *batchMax <= 0 {
		fmt.Fprintf(os.Stderr, "griffin-server: -batch-max must be >= 1, got %d\n", *batchMax)
		os.Exit(2)
	}
	if *shardTimeout < 0 {
		fmt.Fprintf(os.Stderr, "griffin-server: -shard-timeout must be >= 0, got %v\n", *shardTimeout)
		os.Exit(2)
	}
	if *hedgeDelay < 0 {
		fmt.Fprintf(os.Stderr, "griffin-server: -hedge-delay must be >= 0, got %v\n", *hedgeDelay)
		os.Exit(2)
	}
	if *retries < -1 {
		fmt.Fprintf(os.Stderr, "griffin-server: -retries must be >= -1, got %d\n", *retries)
		os.Exit(2)
	}
	if *defaultDeadline < 0 {
		fmt.Fprintf(os.Stderr, "griffin-server: -default-deadline must be >= 0, got %v\n", *defaultDeadline)
		os.Exit(2)
	}
	if *maxInflight < 0 {
		fmt.Fprintf(os.Stderr, "griffin-server: -max-inflight must be >= 0, got %d\n", *maxInflight)
		os.Exit(2)
	}
	if *shedTarget < 0 {
		fmt.Fprintf(os.Stderr, "griffin-server: -shed-target must be >= 0, got %v\n", *shedTarget)
		os.Exit(2)
	}
	if !(*retryBudget >= 0) || *retryBudget > 1 {
		fmt.Fprintf(os.Stderr, "griffin-server: -retry-budget must be in [0, 1], got %v\n", *retryBudget)
		os.Exit(2)
	}
	if *brownoutEnter < 0 {
		fmt.Fprintf(os.Stderr, "griffin-server: -brownout-enter must be >= 0, got %v\n", *brownoutEnter)
		os.Exit(2)
	}
	if *shards <= 1 && (*defaultDeadline > 0 || *shedTarget > 0 || *retryBudget > 0 || *brownoutEnter > 0) {
		fmt.Fprintln(os.Stderr, "griffin-server: -default-deadline, -shed-target, -retry-budget, and -brownout-enter require -shards > 1")
		os.Exit(2)
	}
	if *mergeThreshold < 0 {
		fmt.Fprintf(os.Stderr, "griffin-server: -merge-threshold must be >= 0, got %d\n", *mergeThreshold)
		os.Exit(2)
	}
	if *freshness < 0 {
		fmt.Fprintf(os.Stderr, "griffin-server: -freshness-threshold must be >= 0, got %d\n", *freshness)
		os.Exit(2)
	}
	if *splitWatermark < 0 {
		fmt.Fprintf(os.Stderr, "griffin-server: -split-watermark must be >= 0, got %d\n", *splitWatermark)
		os.Exit(2)
	}
	if *walSync == 0 || *walSync < -1 {
		fmt.Fprintf(os.Stderr, "griffin-server: -wal-sync must be >= 1 or -1 (defer), got %d\n", *walSync)
		os.Exit(2)
	}
	if *checkpointEvery < 0 {
		fmt.Fprintf(os.Stderr, "griffin-server: -checkpoint-every must be >= 0, got %d\n", *checkpointEvery)
		os.Exit(2)
	}
	if *walDir == "" && *checkpointEvery > 0 {
		fmt.Fprintln(os.Stderr, "griffin-server: -checkpoint-every requires -wal-dir")
		os.Exit(2)
	}
	if !*ingestOn {
		if *freshness > 0 || *splitWatermark > 0 {
			fmt.Fprintln(os.Stderr, "griffin-server: -freshness-threshold and -split-watermark require -ingest")
			os.Exit(2)
		}
		if *walDir != "" {
			fmt.Fprintln(os.Stderr, "griffin-server: -wal-dir requires -ingest")
			os.Exit(2)
		}
	} else if *mergeAuto && *mergeThreshold == 0 {
		fmt.Fprintln(os.Stderr, "griffin-server: -merge-auto needs -merge-threshold > 0 (or pass -merge-auto=false for manual merges)")
		os.Exit(2)
	}
	if *splitWatermark > 0 && *shards <= 1 {
		fmt.Fprintln(os.Stderr, "griffin-server: -split-watermark requires -shards > 1")
		os.Exit(2)
	}

	f, err := os.Open(*indexPath)
	exitOn(err)
	ix, err := index.ReadIndex(f)
	f.Close()
	exitOn(err)

	var handler *server.Server
	if *shards > 1 {
		var inj *fault.Injector
		if *chaosRate > 0 {
			inj = fault.NewInjector(fault.Plan{Seed: *chaosSeed, Rules: []fault.Rule{
				{Kind: fault.KernelLaunch, Rate: *chaosRate},
				{Kind: fault.TransferError, Rate: *chaosRate},
				{Kind: fault.DeviceReset, Rate: *chaosRate / 4, Stall: 2 * time.Millisecond},
				{Kind: fault.EngineError, Rate: *chaosRate / 2},
				{Kind: fault.ShardStall, Rate: *chaosRate, Stall: 3 * time.Millisecond},
			}})
		}
		ccfg := cluster.Config{
			Engine: core.Config{
				Mode: mode, CacheLists: *cache, Devices: *devices, Placement: placement,
				BatchWindow: *batchWindow, BatchMax: *batchMax,
			},
			TopK:         *topK,
			Replicas:     *replicas,
			Routing:      routing,
			ShardTimeout: *shardTimeout,
			HedgeDelay:   *hedgeDelay,
			Retries:      *retries,
			Breaker:      fault.BreakerConfig{Threshold: *breakerThreshold, Cooldown: *breakerCooldown},
			Fault:        inj,
			Overload: overload.Config{
				DefaultDeadline: *defaultDeadline,
				ShedTarget:      *shedTarget,
				RetryBudget:     *retryBudget,
				BrownoutEnter:   *brownoutEnter,
			},
		}
		live := ""
		if *ingestOn {
			lc, err := ingest.OpenCluster(ix, ingest.ClusterConfig{
				Shards:          *shards,
				Cluster:         ccfg,
				MergeThreshold:  *mergeThreshold,
				AutoMerge:       *mergeAuto,
				SplitWatermark:  *splitWatermark,
				WALDir:          *walDir,
				WALSyncEvery:    *walSync,
				CheckpointEvery: *checkpointEvery,
			})
			exitOn(err)
			// Close after serve() drains HTTP: syncs the WAL, then waits
			// out in-flight background merges so no merge is torn by
			// shutdown — every acknowledged mutation is durable on exit.
			defer lc.Close()
			handler = server.NewLiveCluster(lc, *freshness)
			live = fmt.Sprintf(", live ingest (merge at %d, auto=%v, watermark %d)",
				*mergeThreshold, *mergeAuto, *splitWatermark)
			if *walDir != "" {
				st := lc.Stats()
				log.Printf("griffin-server: durable ingest under %s (sync every %d, checkpoint every %d): recovered gen %d, %d replayed records, watermark %d, %d torn bytes truncated",
					*walDir, *walSync, *checkpointEvery, st.Gen,
					st.WAL.RecoveredRecords, st.WAL.CheckpointGen,
					st.WAL.TruncatedBytes)
			}
		} else {
			ixs, err := workload.PartitionIndex(ix, *shards)
			exitOn(err)
			cl, err := cluster.New(ixs, ccfg)
			exitOn(err)
			defer cl.Close()
			handler = server.NewCluster(cl)
		}
		chaos := ""
		if inj != nil {
			chaos = fmt.Sprintf(", chaos rate=%.2f seed=%d", *chaosRate, *chaosSeed)
		}
		log.Printf("griffin-server: %d docs, %d terms, mode=%s, %d shards x %d replicas (%s)%s%s, listening on %s",
			ix.NumDocs, ix.NumTerms(), mode, *shards, *replicas, routing, chaos, live, *addr)
	} else {
		dev := gpu.New(hwmodel.DefaultGPU(), 0)
		ecfg := core.Config{
			Mode: mode, Device: dev, TopK: *topK, CacheLists: *cache,
			Devices: *devices, Placement: placement,
			BatchWindow: *batchWindow, BatchMax: *batchMax,
		}
		devs := ""
		if *devices > 1 {
			devs = fmt.Sprintf(", %d devices (%s placement)", *devices, *placementName)
		}
		if *batchWindow > 0 {
			devs += fmt.Sprintf(", batching window=%v max=%d", *batchWindow, *batchMax)
		}
		if *ingestOn {
			e, err := ingest.Open(ix, ingest.Config{
				Engine:          ecfg,
				MergeThreshold:  *mergeThreshold,
				AutoMerge:       *mergeAuto,
				WALDir:          *walDir,
				WALSyncEvery:    *walSync,
				CheckpointEvery: *checkpointEvery,
			})
			exitOn(err)
			// After HTTP drain: syncs the WAL, then waits out background
			// merges — every acknowledged mutation is durable on exit.
			defer e.Close()
			handler = server.NewLive(e, *freshness)
			devs += fmt.Sprintf(", live ingest (merge at %d, auto=%v)", *mergeThreshold, *mergeAuto)
			if *walDir != "" {
				st := e.Stats()
				log.Printf("griffin-server: durable ingest under %s (sync every %d, checkpoint every %d): recovered gen %d, %d replayed records, watermark %d, %d torn bytes truncated",
					*walDir, *walSync, *checkpointEvery, st.Gen,
					st.WAL.RecoveredRecords, st.WAL.CheckpointGen,
					st.WAL.TruncatedBytes)
			}
		} else {
			engine, err := core.New(ix, ecfg)
			exitOn(err)
			defer engine.Close()
			handler = server.New(engine)
		}
		log.Printf("griffin-server: %d docs, %d terms, mode=%s%s, listening on %s",
			ix.NumDocs, ix.NumTerms(), mode, devs, *addr)
	}

	if *maxInflight > 0 {
		handler.ConfigureOverload(server.OverloadConfig{MaxInflight: *maxInflight})
		log.Printf("griffin-server: admission gate at %d in-flight /search requests", *maxInflight)
	}

	exitOn(serve(*addr, handler, *drain))
}

// serve runs the HTTP server until SIGINT/SIGTERM, then drains in-flight
// requests for up to the drain window before returning.
func serve(addr string, handler http.Handler, drain time.Duration) error {
	srv := &http.Server{Addr: addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Printf("griffin-server: shutting down, draining for up to %v", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	log.Printf("griffin-server: drained cleanly")
	return nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "griffin-server:", err)
		os.Exit(1)
	}
}
