// Command griffin-server serves conjunctive search over a Griffin index
// as a JSON HTTP API.
//
// Usage:
//
//	griffin-server -index index.grif -addr :8080 -mode griffin -cache
//
// Endpoints:
//
//	GET /search?q=terms&k=10   ranked results + simulated latency
//	GET /healthz               liveness + index stats
//	GET /statz                 served-query counters
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"griffin/internal/core"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/server"
)

func main() {
	indexPath := flag.String("index", "index.grif", "serialized index file")
	addr := flag.String("addr", ":8080", "listen address")
	modeName := flag.String("mode", "griffin", "execution mode: cpu, gpu, perquery, or griffin")
	cache := flag.Bool("cache", false, "keep hot compressed lists resident in device memory")
	topK := flag.Int("k", 10, "default result count")
	flag.Parse()

	modes := map[string]core.Mode{
		"cpu": core.CPUOnly, "gpu": core.GPUOnly,
		"perquery": core.PerQueryHybrid, "griffin": core.Hybrid,
	}
	mode, ok := modes[*modeName]
	if !ok {
		fmt.Fprintf(os.Stderr, "griffin-server: unknown mode %q\n", *modeName)
		os.Exit(2)
	}

	f, err := os.Open(*indexPath)
	exitOn(err)
	ix, err := index.ReadIndex(f)
	f.Close()
	exitOn(err)

	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	engine, err := core.New(ix, core.Config{
		Mode: mode, Device: dev, TopK: *topK, CacheLists: *cache,
	})
	exitOn(err)
	defer engine.Close()

	log.Printf("griffin-server: %d docs, %d terms, mode=%s, listening on %s",
		ix.NumDocs, ix.NumTerms(), mode, *addr)
	exitOn(http.ListenAndServe(*addr, server.New(engine)))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "griffin-server:", err)
		os.Exit(1)
	}
}
