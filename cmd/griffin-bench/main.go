// Command griffin-bench regenerates every table and figure of the paper's
// evaluation (§4) and prints them as plain-text tables.
//
// Usage:
//
//	griffin-bench [-scale 0.2] [-seed 1] [-only table1,fig8,...] [-json out.json]
//
// Scale 1.0 approximates the paper's data sizes (several minutes);
// the default 0.2 finishes in about a minute. Absolute times are
// simulated on the calibrated K20/Xeon hardware models; the reproduction
// targets are the shapes (who wins, by what factor, where crossovers
// fall), recorded against the paper in EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"griffin/internal/experiments"
	"griffin/internal/gpu"
	"griffin/internal/workload"
)

// experimentNames are the valid -only keys, in run order.
var experimentNames = []string{
	"table1", "fig7", "fig8", "fig10", "fig11", "fig12", "fig13",
	"fig14", "fig15", "ablation", "load", "cache", "cluster", "device", "batch", "chaos", "ingest", "overload", "crash",
}

func main() {
	scale := flag.Float64("scale", 0.2, "workload scale relative to the paper (1.0 = full)")
	seed := flag.Int64("seed", 1, "workload generation seed")
	only := flag.String("only", "", "comma-separated experiment list (default: all): "+strings.Join(experimentNames, ","))
	batchWindow := flag.Duration("batch-window", 0, "batching-on window for the batch sweep (0 = sweep default 2ms)")
	batchMax := flag.Int("batch-max", gpu.DefaultBatchMax, "batching-on member cap for the batch sweep")
	csvDir := flag.String("csvdir", "", "also write each table as CSV into this directory")
	jsonPath := flag.String("json", "", "also write all tables as one JSON document to this path")
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			exitOn(err)
		}
	}

	if !(*scale > 0) {
		fmt.Fprintf(os.Stderr, "griffin-bench: -scale must be > 0, got %v\n", *scale)
		os.Exit(2)
	}
	if *batchWindow < 0 {
		fmt.Fprintf(os.Stderr, "griffin-bench: -batch-window must be >= 0, got %v\n", *batchWindow)
		os.Exit(2)
	}
	if *batchMax <= 0 {
		fmt.Fprintf(os.Stderr, "griffin-bench: -batch-max must be >= 1, got %d\n", *batchMax)
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.BatchWindow = *batchWindow
	cfg.BatchMax = *batchMax

	// Unknown -only keys fail fast: a typo like "clsuter" used to be
	// silently ignored, running everything but the experiment asked for.
	valid := map[string]bool{}
	for _, k := range experimentNames {
		valid[k] = true
	}
	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			k = strings.TrimSpace(k)
			if k == "" {
				continue
			}
			if !valid[k] {
				fmt.Fprintf(os.Stderr, "griffin-bench: unknown experiment %q in -only (valid: %s)\n",
					k, strings.Join(experimentNames, ", "))
				os.Exit(2)
			}
			want[k] = true
		}
	}
	run := func(name string) bool { return len(want) == 0 || want[name] }
	var jsonTables []experiments.TableJSON
	emit := func(t *experiments.Table) {
		fmt.Println(t.Render())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, t.Slug()+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				exitOn(err)
			}
		}
		if *jsonPath != "" {
			jsonTables = append(jsonTables, t.JSON())
		}
	}

	fmt.Printf("griffin-bench: scale=%.2f seed=%d (simulated K20 + Xeon E5-2609v2 models)\n\n", *scale, *seed)
	start := time.Now()

	if run("table1") {
		_, t, err := experiments.RunTable1(cfg)
		exitOn(err)
		emit(t)
	}
	if run("fig7") {
		_, t, err := experiments.RunFig7(cfg)
		exitOn(err)
		emit(t)
	}
	if run("fig8") {
		_, t, err := experiments.RunFig8(cfg)
		exitOn(err)
		emit(t)
	}
	if run("fig12") {
		_, t, err := experiments.RunFig12(cfg)
		exitOn(err)
		emit(t)
	}
	if run("fig13") {
		_, t, err := experiments.RunFig13(cfg)
		exitOn(err)
		emit(t)
	}

	needCorpus := run("fig10") || run("fig11") || run("fig14") || run("fig15") ||
		run("ablation") || run("load") || run("cache")
	if needCorpus {
		fmt.Println("building end-to-end corpus...")
		corpus, err := cfg.BuildCorpus()
		exitOn(err)

		var queries []workload.Query
		if run("fig10") {
			_, t, err := experiments.RunFig10(cfg, corpus)
			exitOn(err)
			emit(t)
		}
		// Every query-driven experiment shares fig11's synthesized log —
		// including the load and cache studies, which previously received a
		// nil log (and crashed) when selected without fig11 via -only.
		if run("fig11") || run("fig14") || run("fig15") || run("ablation") ||
			run("load") || run("cache") {
			_, t, qs, err := experiments.RunFig11(cfg, corpus)
			exitOn(err)
			queries = qs
			if run("fig11") {
				emit(t)
			}
		}
		if run("fig14") || run("fig15") {
			fmt.Printf("running %d queries under 4 engine modes...\n", len(queries))
			res14, t14, err := experiments.RunFig14(cfg, corpus, queries)
			exitOn(err)
			if run("fig14") {
				emit(t14)
			}
			if run("fig15") {
				_, t15 := experiments.RunFig15(res14.CPURecorder, res14.GriffinRecorder)
				emit(t15)
			}
		}
		if run("ablation") {
			_, ta, err := experiments.RunCrossoverAblation(cfg, corpus, queries)
			exitOn(err)
			emit(ta)
			_, tm, err := experiments.RunMigrationAblation(cfg, corpus, queries)
			exitOn(err)
			emit(tm)
			_, tp, err := experiments.RunPolicyAblation(cfg, corpus, queries)
			exitOn(err)
			emit(tp)
		}
		if run("load") {
			_, tl, err := experiments.RunLoadStudy(cfg, corpus, queries)
			exitOn(err)
			emit(tl)
			fmt.Println("driving the real engine under Poisson load...")
			_, te, err := experiments.RunEngineLoadStudy(cfg, corpus, queries)
			exitOn(err)
			emit(te)
			_, ts, err := experiments.RunStreamSweep(cfg, corpus, queries)
			exitOn(err)
			emit(ts)
		}
		if run("cache") {
			_, tc, err := experiments.RunCacheStudy(cfg, corpus, queries)
			exitOn(err)
			emit(tc)
		}
	}

	if run("cluster") {
		fmt.Println("partitioning the cluster corpus and sweeping shard counts...")
		_, tc, err := experiments.RunShardSweep(cfg)
		exitOn(err)
		emit(tc)
	}

	if run("device") {
		fmt.Println("sweeping multi-GPU node device counts...")
		_, td, err := experiments.RunDeviceSweep(cfg)
		exitOn(err)
		emit(td)
	}

	if run("batch") {
		fmt.Println("sweeping shard counts with device batching off and on...")
		_, tb, err := experiments.RunBatchSweep(cfg)
		exitOn(err)
		emit(tb)
	}

	if run("chaos") {
		fmt.Println("injecting faults and sweeping fault rates (hardened vs brittle)...")
		_, tc, err := experiments.RunChaosSweep(cfg)
		exitOn(err)
		emit(tc)
	}

	if run("ingest") {
		fmt.Println("driving mixed read/write load with merging off and on...")
		_, ti, err := experiments.RunIngestSweep(cfg)
		exitOn(err)
		emit(ti)
	}

	if run("overload") {
		fmt.Println("sweeping offered load across saturation (hardened overload control vs baseline)...")
		_, to, err := experiments.RunOverloadSweep(cfg)
		exitOn(err)
		emit(to)
	}

	if run("crash") {
		fmt.Println("crashing durable engines at seeded points and timing recovery...")
		_, tc, err := experiments.RunCrashSweep(cfg)
		exitOn(err)
		emit(tc)
	}

	if *jsonPath != "" {
		doc := benchJSON{
			Scale:      *scale,
			Seed:       *seed,
			Generated:  time.Now().UTC().Format(time.RFC3339),
			WallTimeMS: time.Since(start).Milliseconds(),
			Tables:     jsonTables,
		}
		data, err := json.MarshalIndent(&doc, "", "  ")
		exitOn(err)
		exitOn(os.WriteFile(*jsonPath, append(data, '\n'), 0o644))
		fmt.Printf("wrote %d tables to %s\n", len(jsonTables), *jsonPath)
	}

	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

// benchJSON is the -json output document: one object per figure/table
// plus the run's provenance.
type benchJSON struct {
	Scale      float64                 `json:"scale"`
	Seed       int64                   `json:"seed"`
	Generated  string                  `json:"generated"`
	WallTimeMS int64                   `json:"wall_time_ms"`
	Tables     []experiments.TableJSON `json:"tables"`
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "griffin-bench:", err)
		os.Exit(1)
	}
}
