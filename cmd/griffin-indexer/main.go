// Command griffin-indexer builds a serialized Griffin index, either from
// a directory of plain-text files (one document per file) or from a
// synthetic corpus specification.
//
// Usage:
//
//	griffin-indexer -out index.grif -dir ./corpus
//	griffin-indexer -out index.grif -synthetic -docs 1000000 -terms 500
package main

import (
	"flag"
	"fmt"
	"os"

	"griffin/internal/index"
	"griffin/internal/workload"
)

func main() {
	out := flag.String("out", "index.grif", "output index file")
	dir := flag.String("dir", "", "directory of plain-text documents (one doc per file)")
	synthetic := flag.Bool("synthetic", false, "generate a synthetic corpus instead of reading files")
	docs := flag.Int("docs", 1_000_000, "synthetic: docID universe")
	terms := flag.Int("terms", 500, "synthetic: dictionary size")
	maxList := flag.Int("maxlist", 200_000, "synthetic: longest posting list")
	minList := flag.Int("minlist", 500, "synthetic: shortest posting list")
	seed := flag.Int64("seed", 1, "synthetic: generation seed")
	flag.Parse()

	var ix *index.Index
	switch {
	case *synthetic:
		c, err := workload.GenerateCorpus(workload.CorpusSpec{
			NumDocs:    *docs,
			NumTerms:   *terms,
			MaxListLen: *maxList,
			MinListLen: *minList,
			Alpha:      0.85,
			Codec:      index.CodecEF,
			Seed:       *seed,
		})
		exitOn(err)
		ix = c.Index
	case *dir != "":
		var paths []string
		var err error
		ix, paths, err = index.IndexDirectory(*dir, index.CodecEF)
		exitOn(err)
		fmt.Printf("indexed %d documents from %s\n", len(paths), *dir)
	default:
		fmt.Fprintln(os.Stderr, "griffin-indexer: need -dir or -synthetic")
		os.Exit(2)
	}

	f, err := os.Create(*out)
	exitOn(err)
	defer f.Close()
	n, err := ix.WriteTo(f)
	exitOn(err)
	fmt.Printf("wrote %s: %d docs, %d terms, %.1f MB\n",
		*out, ix.NumDocs, ix.NumTerms(), float64(n)/(1<<20))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "griffin-indexer:", err)
		os.Exit(1)
	}
}
