// Tail latency: the paper's §4.5 case study. Interactive services live
// and die by their tail percentiles; this example runs a query log under
// the CPU-only baseline and under Griffin, then prints the latency
// distribution side by side — the Figure 15 comparison, where the paper
// measures speedups growing from 6.6x at P80 to 26.8x at P99.9 because
// the heaviest queries (long lists, many terms) gain the most from the
// GPU.
package main

import (
	"fmt"
	"log"

	"griffin"
	"griffin/internal/stats"
)

func main() {
	fmt.Println("generating corpus and query log...")
	corpus, err := griffin.GenerateCorpus(griffin.CorpusSpec{
		NumDocs:    3_000_000,
		NumTerms:   150,
		MaxListLen: 1_500_000,
		MinListLen: 1_000,
		Alpha:      0.85,
		Seed:       21,
	})
	if err != nil {
		log.Fatal(err)
	}
	queries := griffin.GenerateQueryLog(corpus, griffin.QuerySpec{
		NumQueries:      400,
		PopularityAlpha: 0.5,
		Seed:            22,
	})

	dev := griffin.NewDevice()
	cpuEng, err := griffin.NewEngine(corpus.Index, griffin.Config{Mode: griffin.CPUOnly})
	if err != nil {
		log.Fatal(err)
	}
	hybEng, err := griffin.NewEngine(corpus.Index, griffin.Config{Mode: griffin.Hybrid, Device: dev})
	if err != nil {
		log.Fatal(err)
	}

	cpuRec := stats.NewLatencyRecorder(len(queries))
	hybRec := stats.NewLatencyRecorder(len(queries))
	fmt.Printf("running %d queries under both engines...\n\n", len(queries))
	for _, q := range queries {
		rc, err := cpuEng.Search(q.Terms)
		if err != nil {
			log.Fatal(err)
		}
		rh, err := hybEng.Search(q.Terms)
		if err != nil {
			log.Fatal(err)
		}
		cpuRec.Record(rc.Stats.Latency)
		hybRec.Record(rh.Stats.Latency)
	}

	fmt.Printf("%-11s %14s %14s %9s\n", "percentile", "CPU-only (ms)", "Griffin (ms)", "speedup")
	for _, p := range []float64{50, 80, 90, 95, 99, 99.9} {
		c, h := cpuRec.Percentile(p), hybRec.Percentile(p)
		fmt.Printf("P%-10g %14.3f %14.3f %8.1fx\n",
			p,
			float64(c.Microseconds())/1000,
			float64(h.Microseconds())/1000,
			float64(c)/float64(h))
	}
	fmt.Printf("\nmean: CPU-only %.3f ms, Griffin %.3f ms (%.1fx)\n",
		float64(cpuRec.Mean().Microseconds())/1000,
		float64(hybRec.Mean().Microseconds())/1000,
		float64(cpuRec.Mean())/float64(hybRec.Mean()))
}
