// Enterprise search: the workload the paper's introduction motivates —
// an interactive document-search service over a realistic collection.
// This example generates a Zipfian corpus (the ClueWeb12 stand-in), runs
// a mixed query load under all three execution modes, and reports the
// mean latency of each, reproducing Figure 14's ordering in miniature:
// Griffin <= GPU-only <= CPU-only.
package main

import (
	"fmt"
	"log"
	"time"

	"griffin"
)

func main() {
	fmt.Println("generating synthetic enterprise collection (Zipfian, ~1M-element head lists)...")
	corpus, err := griffin.GenerateCorpus(griffin.CorpusSpec{
		NumDocs:    2_000_000,
		NumTerms:   120,
		MaxListLen: 1_000_000,
		MinListLen: 2_000,
		Alpha:      0.85,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collection: %d docs, %d terms, head list %d postings\n",
		corpus.Index.NumDocs, corpus.Index.NumTerms(), corpus.Sizes[0])

	queries := griffin.GenerateQueryLog(corpus, griffin.QuerySpec{
		NumQueries:      150,
		PopularityAlpha: 0.5,
		Seed:            11,
	})

	dev := griffin.NewDevice()
	modes := []struct {
		name string
		mode griffin.Mode
	}{
		{"CPU-only", griffin.CPUOnly},
		{"GPU-only", griffin.GPUOnly},
		{"Griffin ", griffin.Hybrid},
	}

	fmt.Printf("\nrunning %d queries per mode:\n", len(queries))
	var base time.Duration
	for _, m := range modes {
		eng, err := griffin.NewEngine(corpus.Index, griffin.Config{Mode: m.mode, Device: dev})
		if err != nil {
			log.Fatal(err)
		}
		var total time.Duration
		migrations := 0
		for _, q := range queries {
			res, err := eng.Search(q.Terms)
			if err != nil {
				log.Fatal(err)
			}
			total += res.Stats.Latency
			if res.Stats.Migrated {
				migrations++
			}
		}
		mean := total / time.Duration(len(queries))
		if m.mode == griffin.CPUOnly {
			base = mean
		}
		extra := ""
		if m.mode == griffin.Hybrid {
			extra = fmt.Sprintf("  (%d queries migrated GPU->CPU mid-execution)", migrations)
		}
		fmt.Printf("  %s  mean %8.3f ms   speedup vs CPU-only %.1fx%s\n",
			m.name, float64(mean.Microseconds())/1000, float64(base)/float64(mean), extra)
	}
}
