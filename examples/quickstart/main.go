// Quickstart: build a tiny index, run one conjunctive query under
// Griffin's hybrid CPU/GPU scheduler, and print the ranked results.
package main

import (
	"fmt"
	"log"

	"griffin"
)

func main() {
	// 1. Index a few documents.
	b := griffin.NewIndexBuilder()
	docs := []string{
		"the quick brown fox jumps over the lazy dog",
		"a quick brown dog outpaces a lazy fox",
		"graphics processors accelerate information retrieval systems",
		"search engines intersect compressed posting lists",
		"the fox hunts at dusk while the dog sleeps",
	}
	for i, text := range docs {
		if err := b.AddDocument(uint32(i), griffin.Tokenize(text)); err != nil {
			log.Fatal(err)
		}
	}
	ix, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build a hybrid engine over a simulated Tesla K20.
	eng, err := griffin.NewEngine(ix, griffin.Config{
		Mode:   griffin.Hybrid,
		Device: griffin.NewDevice(),
		TopK:   5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Search: conjunctive query, BM25-ranked results.
	res, err := eng.Search([]string{"quick", "fox"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query [quick fox]: %d matching docs, %.3f ms simulated latency\n",
		res.Stats.Candidates, float64(res.Stats.Latency.Microseconds())/1000)
	for rank, d := range res.Docs {
		fmt.Printf("  %d. doc %d (score %.4f): %s\n", rank+1, d.DocID, d.Score, docs[d.DocID])
	}
}
