// Multi-user load: the scenario the paper's conclusion leaves as future
// work — "more complex scenarios under heavy system loads with multiple
// users". Per-query execution traces from the CPU-only and Griffin
// engines are replayed through a discrete-event queueing simulation
// (4-core host pool + single GPU, Poisson arrivals, FCFS) at increasing
// offered load. Griffin's offloading keeps the host pool uncongested, so
// its tail response times stay flat well past the load that saturates the
// CPU-only configuration.
package main

import (
	"fmt"
	"log"
	"time"

	"griffin"
	"griffin/internal/loadsim"
)

func main() {
	fmt.Println("generating corpus and tracing 200 queries under both engines...")
	corpus, err := griffin.GenerateCorpus(griffin.CorpusSpec{
		NumDocs:    3_000_000,
		NumTerms:   100,
		MaxListLen: 1_000_000,
		MinListLen: 5_000,
		Alpha:      0.85,
		Seed:       51,
	})
	if err != nil {
		log.Fatal(err)
	}
	queries := griffin.GenerateQueryLog(corpus, griffin.QuerySpec{
		NumQueries:      200,
		PopularityAlpha: 0.5,
		Seed:            52,
	})

	dev := griffin.NewDevice()
	cpuEng, err := griffin.NewEngine(corpus.Index, griffin.Config{Mode: griffin.CPUOnly})
	if err != nil {
		log.Fatal(err)
	}
	hybEng, err := griffin.NewEngine(corpus.Index, griffin.Config{Mode: griffin.Hybrid, Device: dev})
	if err != nil {
		log.Fatal(err)
	}

	cpuTraces := make([][]loadsim.Segment, len(queries))
	hybTraces := make([][]loadsim.Segment, len(queries))
	var meanService time.Duration
	for i, q := range queries {
		rc, err := cpuEng.Search(q.Terms)
		if err != nil {
			log.Fatal(err)
		}
		rh, err := hybEng.Search(q.Terms)
		if err != nil {
			log.Fatal(err)
		}
		cpuTraces[i] = loadsim.SegmentsFromStats(rc.Stats)
		hybTraces[i] = loadsim.SegmentsFromStats(rh.Stats)
		meanService += rc.Stats.Latency
	}
	meanService /= time.Duration(len(queries))
	saturation := 4 / meanService.Seconds() // 4-core pool capacity

	fmt.Printf("\nCPU-only mean service time %.2f ms -> host pool saturates near %.0f q/s\n\n",
		float64(meanService.Microseconds())/1000, saturation)
	fmt.Printf("%-12s %16s %16s %10s\n", "load (q/s)", "CPU-only P99(ms)", "Griffin P99(ms)", "advantage")
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5} {
		rate := saturation * frac
		spec := loadsim.Spec{CPUWorkers: 4, ArrivalRate: rate, Seed: 99}
		rc := loadsim.Run(cpuTraces, spec)
		rh := loadsim.Run(hybTraces, spec)
		c, h := rc.Latencies.Percentile(99), rh.Latencies.Percentile(99)
		fmt.Printf("%-12.0f %16.2f %16.2f %9.1fx\n",
			rate,
			float64(c.Microseconds())/1000,
			float64(h.Microseconds())/1000,
			float64(c)/float64(h))
	}
}
