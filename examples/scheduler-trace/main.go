// Scheduler trace: watch Griffin's dynamic intra-query scheduling make
// its decisions (§3.2). The example builds posting lists whose lengths
// force a multi-term query through both regimes: the first intersections
// have comparable lengths (ratio < 128, scheduled on the GPU), and as SvS
// shrinks the intermediate result the ratio against the remaining longer
// lists crosses the threshold, so the query migrates to the CPU for its
// final stages — the Figure 1(d) execution the paper contrasts with
// static placements.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"griffin"
)

// genList makes n sorted distinct docIDs over the universe.
func genList(rng *rand.Rand, n int, universe uint32) []uint32 {
	gap := universe / uint32(n+1)
	out := make([]uint32, 0, n)
	cur := uint32(0)
	for len(out) < n {
		cur += 1 + uint32(rng.Int63n(int64(2*gap)))
		if cur >= universe {
			break
		}
		out = append(out, cur)
	}
	return out
}

func main() {
	rng := rand.New(rand.NewSource(99))
	const universe = 8_000_000

	// Four terms: two mid-size lists (the query's rare terms), one large,
	// one very large. SvS intersects smallest-first, so the ratio grows
	// step by step.
	b := griffin.NewIndexBuilder()
	listSpecs := []struct {
		term string
		n    int
	}{
		{"kepler", 60_000},
		{"gpu", 90_000},
		{"parallel", 900_000},
		{"computing", 3_000_000},
	}
	for _, s := range listSpecs {
		if err := b.AddPostings(s.term, genList(rng, s.n, universe), nil); err != nil {
			log.Fatal(err)
		}
	}
	ix, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	eng, err := griffin.NewEngine(ix, griffin.Config{
		Mode:   griffin.Hybrid,
		Device: griffin.NewDevice(),
	})
	if err != nil {
		log.Fatal(err)
	}

	query := []string{"kepler", "gpu", "parallel", "computing"}
	res, err := eng.Search(query)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query %v\n", query)
	fmt.Printf("posting lists: ")
	for _, s := range listSpecs {
		pl, _ := ix.Lookup(s.term)
		fmt.Printf("%s=%d ", s.term, pl.Len())
	}
	fmt.Printf("\n\nscheduler trace (crossover ratio = 128, sticky migration):\n")
	for _, op := range res.Stats.Ops {
		fmt.Printf("  %-12s -> %-3s  ratio %7.1f  |short|=%-8d |long|=%-8d out=%-7d %v\n",
			op.Stage, op.Where, op.Ratio, op.ShortLen, op.LongLen, op.OutLen, op.Took)
	}
	fmt.Printf("\nphysical plan (one line per executed operator):\n")
	for _, op := range res.Stats.Plan {
		algo := op.Algo.String()
		if algo != "" {
			algo = " [" + algo + "]"
		}
		term := op.Term
		if term != "" {
			term = " " + term
		}
		fmt.Printf("  %-10s -> %-3s%-15s  in=%-8d out=%-8d took %-12v est %v\n",
			op.Kind, op.Where, algo+term, op.NIn, op.NOut, op.Took, op.Est)
	}

	fmt.Printf("\nmigrated GPU->CPU: %v\n", res.Stats.Migrated)
	fmt.Printf("simulated latency: %.3f ms (GPU %.3f ms + CPU %.3f ms)\n",
		float64(res.Stats.Latency.Microseconds())/1000,
		float64(res.Stats.GPUTime.Microseconds())/1000,
		float64(res.Stats.CPUTime.Microseconds())/1000)
	fmt.Printf("matches: %d\n", res.Stats.Candidates)
}
