package experiments

import "testing"

// The ingest sweep's acceptance shape: availability stays >= 99% at
// every write fraction on the merge arm (the PR criterion — snapshot
// isolation means concurrent merges never fail a read), merges actually
// commit and charge device time once writes flow (the quantified
// interference), and the merge arm ends with a smaller unmerged delta
// than the no-merge control. The write-free point is the read-only
// baseline: both arms identical, no merges, no lag.
func TestIngestSweepShape(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.05
	res, table, err := RunIngestSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("expected 4 sweep points, got %d", len(res.Points))
	}
	if res.Rate <= 0 || res.Threshold <= 0 {
		t.Fatalf("calibration missing: rate %v threshold %d", res.Rate, res.Threshold)
	}
	for _, p := range res.Points {
		if p.AvailabilityOn < 0.99 || p.AvailabilityOff < 0.99 {
			t.Fatalf("wf %.1f: availability below 99%% (off %.3f, on %.3f)\n%s",
				p.WriteFraction, p.AvailabilityOff, p.AvailabilityOn, table.Render())
		}
		if p.P99Off <= 0 || p.P99On <= 0 {
			t.Fatalf("wf %.1f: missing p99 (%v, %v)\n%s",
				p.WriteFraction, p.P99Off, p.P99On, table.Render())
		}
		if p.WriteFraction == 0 {
			if p.Writes != 0 || p.Merges != 0 || p.LagOff != 0 || p.LagOn != 0 {
				t.Fatalf("read-only point ingested: %+v\n%s", p, table.Render())
			}
			if p.P99On != p.P99Off {
				t.Fatalf("read-only point: arms diverged (%v vs %v)\n%s",
					p.P99Off, p.P99On, table.Render())
			}
			continue
		}
		if p.Writes == 0 || p.IngestRate <= 0 {
			t.Fatalf("wf %.1f: no writes applied\n%s", p.WriteFraction, table.Render())
		}
		if p.Merges == 0 || p.MergeDevice <= 0 {
			t.Fatalf("wf %.1f: merge arm committed no priced merges (%d, %v)\n%s",
				p.WriteFraction, p.Merges, p.MergeDevice, table.Render())
		}
		if p.LagOn >= p.LagOff {
			t.Fatalf("wf %.1f: merging did not reduce residual lag (%d vs %d)\n%s",
				p.WriteFraction, p.LagOn, p.LagOff, table.Render())
		}
		if p.PeakOn > p.PeakOff {
			t.Fatalf("wf %.1f: merge arm delta peak %d exceeds no-merge %d\n%s",
				p.WriteFraction, p.PeakOn, p.PeakOff, table.Render())
		}
	}
}
