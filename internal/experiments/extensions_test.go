package experiments

import (
	"testing"

	"griffin/internal/workload"
)

func extensionFixtures(t *testing.T) (Config, *workload.Corpus, []workload.Query) {
	t.Helper()
	cfg := testConfig()
	cfg.Scale = 0.05
	c, err := cfg.BuildCorpus()
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 120, PopularityAlpha: 0.5, Seed: cfg.Seed + 11,
	})
	return cfg, c, queries
}

func TestLoadStudyShape(t *testing.T) {
	cfg, c, queries := extensionFixtures(t)
	res, table, err := RunLoadStudy(cfg, c, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("expected 5 load points, got %d", len(res.Points))
	}
	// CPU-only response time must degrade with offered load.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.CPUOnlyP99 <= first.CPUOnlyP99 {
		t.Fatalf("CPU-only P99 did not degrade with load: %v -> %v\n%s",
			first.CPUOnlyP99, last.CPUOnlyP99, table.Render())
	}
	// Approaching CPU saturation (75% of pool capacity), Griffin must
	// hold a large advantage: it runs the same work mostly on the
	// uncongested device. (At loads past 100% the *single* GPU server can
	// itself saturate — the load-balancing extension hook §3.2 mentions —
	// so the guaranteed-win regime is below CPU capacity.)
	at75 := res.Points[2]
	if at75.GriffinP99 >= at75.CPUOnlyP99 {
		t.Fatalf("at 75%% CPU load Griffin P99 %v not better than CPU-only %v\n%s",
			at75.GriffinP99, at75.CPUOnlyP99, table.Render())
	}
}

func TestCacheStudyShape(t *testing.T) {
	cfg, c, queries := extensionFixtures(t)
	res, table, err := RunCacheStudy(cfg, c, queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.CachedList == 0 {
		t.Fatal("no lists cached")
	}
	if res.WarmMean >= res.ColdMean {
		t.Fatalf("warm pass %v not faster than cold %v\n%s",
			res.WarmMean, res.ColdMean, table.Render())
	}
}
