package experiments

import (
	"testing"
	"time"
)

func TestShardSweepScalingShape(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.05
	res, table, err := RunShardSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("expected 4 sweep points, got %d", len(res.Points))
	}
	if res.Rate <= 0 {
		t.Fatalf("no calibrated rate: %v", res.Rate)
	}
	for i, p := range res.Points {
		// Tail latency follows the max-of-shards model: every query's
		// sojourn is its slowest awaited shard plus the merge, so the means
		// decompose exactly (within per-query integer-division rounding).
		diff := p.Mean - (p.MaxShardMean + p.MergeMean)
		if diff < -time.Microsecond || diff > time.Microsecond {
			t.Fatalf("%d shards: saturated mean %v != max-shard %v + merge %v\n%s",
				p.Shards, p.Mean, p.MaxShardMean, p.MergeMean, table.Render())
		}
		if p.P99 < p.Mean {
			t.Fatalf("%d shards: P99 %v below mean %v\n%s", p.Shards, p.P99, p.Mean, table.Render())
		}
		if p.Utilization <= 0 || p.Utilization > 1 {
			t.Fatalf("%d shards: utilization %v out of range\n%s", p.Shards, p.Utilization, table.Render())
		}
		if i == 0 {
			continue
		}
		prev := res.Points[i-1]
		// The scaling claims: throughput grows monotonically with the
		// shard count under saturating load...
		if p.Throughput <= prev.Throughput {
			t.Fatalf("throughput not monotone in shards: %d -> %.1f q/s, %d -> %.1f q/s\n%s",
				prev.Shards, prev.Throughput, p.Shards, p.Throughput, table.Render())
		}
		// ...and the contention-free critical path (max over ~1/N-length
		// sub-queries) shrinks with it.
		if p.IsolatedMean >= prev.IsolatedMean {
			t.Fatalf("isolated mean not shrinking with shards: %d -> %v, %d -> %v\n%s",
				prev.Shards, prev.IsolatedMean, p.Shards, p.IsolatedMean, table.Render())
		}
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	// Latency is where scatter-gather scales best: 8-way partitioning
	// must cut the contention-free critical path substantially.
	if last.IsolatedMean > first.IsolatedMean*3/4 {
		t.Fatalf("8 shards cut isolated mean only %v -> %v\n%s",
			first.IsolatedMean, last.IsolatedMean, table.Render())
	}
	// Throughput scales too, though sublinearly (fixed per-kernel costs
	// repeat on every shard).
	if last.Throughput < 1.1*first.Throughput {
		t.Fatalf("8 shards only %.2fx the 1-shard throughput\n%s",
			last.Throughput/first.Throughput, table.Render())
	}
}
