package experiments

import (
	"fmt"
	"time"

	"griffin/internal/core"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/loadsim"
)

// DeviceSweepPoint is one device count of the multi-GPU scaling study.
type DeviceSweepPoint struct {
	Devices int
	// IsolatedMean is the contention-free mean latency. A single query
	// runs on exactly one device regardless of the node size, so this
	// must stay flat across device counts — multi-GPU buys throughput,
	// not single-query speed.
	IsolatedMean time.Duration
	// Throughput is the drain rate under deep saturation: completed
	// queries per second of makespan. Devices have independent compute
	// and copy timelines, so throughput scales with the device count
	// until the offered load itself becomes the ceiling.
	Throughput float64
	// Mean and P99 are saturated sojourn times (queueing included).
	Mean time.Duration
	P99  time.Duration
	// Utilization is node-level: busy time over capacity summed across
	// all devices.
	Utilization float64
	// PeerCopies counts cache misses served over the inter-device
	// interconnect from a sibling device's cache instead of a host
	// re-upload (zero at one device — there is no sibling).
	PeerCopies int64
}

// DeviceSweepResult is the multi-GPU node scaling study over 1, 2, 4,
// and 8 simulated devices on one un-sharded corpus. Where the shard
// sweep splits the *data* (lists shrink ~1/N, cutting isolated latency),
// the device sweep splits only the *load*: every device sees the full
// index, the affinity placement policy spreads queries across devices
// weighing backlog against cached-list residency, and per-device caches
// pull hot lists over the modeled peer interconnect rather than back
// across host PCIe. Results are byte-identical across device counts
// (placement moves work, never changes answers — the parity guarantee
// tested in internal/core).
type DeviceSweepResult struct {
	// Rate is the offered saturating load in queries/second, calibrated
	// far past the 1-device drain rate.
	Rate   float64
	Points []DeviceSweepPoint
}

// RunDeviceSweep measures contention-free latency and saturated
// throughput against the node's device count.
func RunDeviceSweep(cfg Config) (DeviceSweepResult, *Table, error) {
	c, queries, err := shardSweepCorpus(cfg)
	if err != nil {
		return DeviceSweepResult{}, nil, err
	}
	sample := make([][]string, len(queries))
	for i, q := range queries {
		sample[i] = q.Terms
	}

	// Fresh device per engine: a shared one would leak timeline state
	// (and cache contents) across configurations.
	mkEngine := func(devices int) (*core.Engine, error) {
		return core.New(c.Index, core.Config{
			Mode: core.Hybrid, CPU: cfg.CPU,
			Device:     gpu.New(hwmodel.DefaultGPU(), 0),
			Devices:    devices,
			CacheLists: true, CacheBytes: 1 << 30,
		})
	}

	res := DeviceSweepResult{}
	t := &Table{
		Title: "Extension: device-count sweep (multi-GPU node scaling)",
		Header: []string{"devices", "isolated mean", "throughput (q/s)", "speedup",
			"sat. mean", "sat. P99", "node util", "peer copies"},
		Notes: []string{
			"one engine, one shard: N simulated devices with independent compute/copy timelines behind affinity placement",
			"isolated mean: contention-free single-query latency — flat across device counts (one query runs on one device)",
			"saturated columns: Poisson load far past the 1-device drain rate; throughput = completed/makespan",
			"peer copies: cache misses served device-to-device over the modeled interconnect instead of host PCIe",
			"per-query results are byte-identical across device counts (placement moves work, never changes answers)",
		},
	}

	var rate, base float64
	for _, devices := range []int{1, 2, 4, 8} {
		// Contention-free pass: fresh engine, sequential searches.
		iso, err := mkEngine(devices)
		if err != nil {
			return DeviceSweepResult{}, nil, err
		}
		var sum time.Duration
		for _, q := range sample {
			r, err := iso.Search(q)
			if err != nil {
				iso.Close()
				return DeviceSweepResult{}, nil, err
			}
			sum += r.Stats.Latency
		}
		iso.Close()
		p := DeviceSweepPoint{Devices: devices, IsolatedMean: sum / time.Duration(len(sample))}

		if rate == 0 {
			// Calibrate the saturating load off the 1-device mean: deep
			// overload so completed/makespan measures drain capacity.
			rate = 24 / p.IsolatedMean.Seconds()
			res.Rate = rate
		}

		// Saturated pass: fresh engine under the common Poisson load.
		e, err := mkEngine(devices)
		if err != nil {
			return DeviceSweepResult{}, nil, err
		}
		r, err := loadsim.RunEngine(e, sample, loadsim.Spec{ArrivalRate: rate, Seed: cfg.Seed + 331})
		if err != nil {
			e.Close()
			return DeviceSweepResult{}, nil, err
		}
		p.Throughput = float64(r.Latencies.Count()) / r.Makespan.Seconds()
		p.Mean = r.Latencies.Mean()
		p.P99 = r.Latencies.Percentile(99)
		p.Utilization = r.GPUBusy
		p.PeerCopies = e.CacheStats().PeerCopies
		e.Close()
		if base == 0 {
			base = p.Throughput
		}
		res.Points = append(res.Points, p)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", devices),
			ms(p.IsolatedMean),
			fmt.Sprintf("%.0f", p.Throughput),
			fmt.Sprintf("%.2fx", p.Throughput/base),
			ms(p.Mean), ms(p.P99),
			fmt.Sprintf("%.2f", p.Utilization),
			fmt.Sprintf("%d", p.PeerCopies),
		})
	}
	return res, t, nil
}
