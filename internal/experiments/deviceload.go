package experiments

import (
	"fmt"
	"time"

	"griffin/internal/core"
	"griffin/internal/loadsim"
	"griffin/internal/workload"
)

// EngineLoadPoint is one offered-load level of the engine-driven study.
type EngineLoadPoint struct {
	ArrivalRate float64
	StaticP99   time.Duration // Griffin, ratio policy only
	SpillP99    time.Duration // Griffin + load-aware backlog spill
	StaticWait  time.Duration // mean queueing delay per query, static
	SpillWait   time.Duration // mean queueing delay per query, spill
	Utilization float64       // static engine's device utilization
}

// EngineLoadResult is the real-engine load study: where RunLoadStudy
// replays extracted traces through an abstract queueing model, this
// study drives the actual engine — plans, kernels, transfers — through
// its shared device runtime at Poisson arrival rates, and measures the
// promoted load-aware policy (core.Config.SpillBacklog) against the
// static ratio policy on true sojourn times.
type EngineLoadResult struct {
	// MeanService is the contention-free mean latency the rates are
	// calibrated against.
	MeanService time.Duration
	Points      []EngineLoadPoint
}

// RunEngineLoadStudy sweeps offered load through the real engine. The
// loadsim shape must reproduce: the static engine's tail grows once the
// device saturates, while the backlog-aware spill keeps P99 bounded by
// taking the CPU plan when the queue is long.
func RunEngineLoadStudy(cfg Config, c *workload.Corpus, queries []workload.Query) (EngineLoadResult, *Table, error) {
	n := cfg.scaled(1_500, 120)
	if n > len(queries) {
		n = len(queries)
	}
	sample := make([][]string, n)
	for i, q := range queries[:n] {
		sample[i] = q.Terms
	}

	mkEngine := func(streams int, spill time.Duration) (*core.Engine, error) {
		return core.New(c.Index, core.Config{
			Mode: core.Hybrid, CPU: cfg.CPU, Device: cfg.Device,
			Streams: streams, SpillBacklog: spill,
		})
	}

	// Calibrate against the contention-free mean (a trickle of arrivals).
	probe, err := mkEngine(1, 0)
	if err != nil {
		return EngineLoadResult{}, nil, err
	}
	var sum time.Duration
	for _, q := range sample {
		r, err := probe.Search(q)
		if err != nil {
			return EngineLoadResult{}, nil, err
		}
		sum += r.Stats.Latency
	}
	mean := sum / time.Duration(len(sample))
	res := EngineLoadResult{MeanService: mean}

	t := &Table{
		Title: "Extension: engine-driven load study (real plans, shared device runtime)",
		Header: []string{"load (q/s)", "vs drain rate", "static P99", "spill P99",
			"static wait/q", "spill wait/q", "device util"},
		Notes: []string{
			"queries run through the real engine via SearchAt: Poisson arrivals on the runtime's global timeline",
			"static = ratio policy; spill = load-aware policy (SpillBacklog) taking the CPU plan when device backlog grows",
			fmt.Sprintf("rates calibrated to the contention-free mean latency (%.3f ms)", float64(mean)/float64(time.Millisecond)),
		},
	}
	// Spill when the queue would add more than two mean service times:
	// low enough to bound the tail at overload, high enough that light
	// load's transient bursts don't push heavy queries onto their much
	// slower CPU plans.
	spillAt := 2 * mean
	for _, frac := range []float64{0.5, 1.5, 3.0} {
		rate := frac / mean.Seconds()
		spec := loadsim.Spec{ArrivalRate: rate, Seed: cfg.Seed + 177}

		static, err := mkEngine(1, 0)
		if err != nil {
			return EngineLoadResult{}, nil, err
		}
		rs, err := loadsim.RunEngine(static, sample, spec)
		if err != nil {
			return EngineLoadResult{}, nil, err
		}
		spillE, err := mkEngine(1, spillAt)
		if err != nil {
			return EngineLoadResult{}, nil, err
		}
		ra, err := loadsim.RunEngine(spillE, sample, spec)
		if err != nil {
			return EngineLoadResult{}, nil, err
		}

		nq := time.Duration(len(sample))
		p := EngineLoadPoint{
			ArrivalRate: rate,
			StaticP99:   rs.Latencies.Percentile(99),
			SpillP99:    ra.Latencies.Percentile(99),
			StaticWait:  static.Runtime().Stats().Waited / nq,
			SpillWait:   spillE.Runtime().Stats().Waited / nq,
			Utilization: rs.GPUBusy,
		}
		res.Points = append(res.Points, p)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.0f%%", frac*100),
			ms(p.StaticP99), ms(p.SpillP99), ms(p.StaticWait), ms(p.SpillWait),
			fmt.Sprintf("%.2f", p.Utilization),
		})
	}
	return res, t, nil
}

// StreamSweepPoint is one compute-lane count of the concurrency sweep.
type StreamSweepPoint struct {
	Streams     int
	P99         time.Duration
	MeanWait    time.Duration
	Utilization float64
}

// StreamSweepResult is the device-concurrency sweep: the same Poisson
// load offered to runtimes with 1, 2, and 4 simulated compute lanes.
// Service times are identical across configurations (the plans don't
// change), so added lanes can only remove queueing: P99 must be
// monotone non-increasing in the stream count.
type StreamSweepResult struct {
	Rate   float64
	Points []StreamSweepPoint
}

// RunStreamSweep measures tail latency against compute-lane count under
// an offered load that saturates the single-lane configuration.
func RunStreamSweep(cfg Config, c *workload.Corpus, queries []workload.Query) (StreamSweepResult, *Table, error) {
	n := cfg.scaled(1_000, 100)
	if n > len(queries) {
		n = len(queries)
	}
	sample := make([][]string, n)
	for i, q := range queries[:n] {
		sample[i] = q.Terms
	}

	// The engines cache hot compressed lists on the device: with repeat
	// uploads gone, compute (decompression + intersection kernels) is the
	// bottleneck, so the lane count — not the single copy engine — governs
	// queueing. Each engine is Closed after its run to return the cache's
	// device memory before the next configuration allocates its own.
	mkEngine := func(streams int) (*core.Engine, error) {
		return core.New(c.Index, core.Config{
			Mode: core.Hybrid, CPU: cfg.CPU, Device: cfg.Device, Streams: streams,
			CacheLists: true, CacheBytes: 1 << 30,
		})
	}
	probe, err := mkEngine(1)
	if err != nil {
		return StreamSweepResult{}, nil, err
	}
	var sum time.Duration
	for _, q := range sample {
		r, err := probe.Search(q)
		if err != nil {
			probe.Close()
			return StreamSweepResult{}, nil, err
		}
		sum += r.Stats.Latency
	}
	probe.Close()
	mean := sum / time.Duration(len(sample))
	rate := 2.5 / mean.Seconds() // past single-lane saturation
	res := StreamSweepResult{Rate: rate}

	t := &Table{
		Title:  "Extension: device-concurrency sweep (compute lanes vs tail latency)",
		Header: []string{"streams", "P99", "mean wait/q", "device util"},
		Notes: []string{
			fmt.Sprintf("Poisson load at %.0f q/s (2.5x the single-lane drain rate), identical per-query plans", rate),
			"compressed lists cached on device: compute lanes, not the copy engine, govern queueing",
			"added lanes only remove queueing: P99 is monotone non-increasing in stream count",
		},
	}
	for _, streams := range []int{1, 2, 4} {
		e, err := mkEngine(streams)
		if err != nil {
			return StreamSweepResult{}, nil, err
		}
		r, err := loadsim.RunEngine(e, sample, loadsim.Spec{ArrivalRate: rate, Seed: cfg.Seed + 271})
		if err != nil {
			e.Close()
			return StreamSweepResult{}, nil, err
		}
		p := StreamSweepPoint{
			Streams:     streams,
			P99:         r.Latencies.Percentile(99),
			MeanWait:    e.Runtime().Stats().Waited / time.Duration(len(sample)),
			Utilization: r.GPUBusy,
		}
		e.Close()
		res.Points = append(res.Points, p)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", streams), ms(p.P99), ms(p.MeanWait),
			fmt.Sprintf("%.2f", p.Utilization),
		})
	}
	return res, t, nil
}
