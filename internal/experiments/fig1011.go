package experiments

import (
	"fmt"

	"griffin/internal/stats"
	"griffin/internal/workload"
)

// Fig10Result is the inverted-list size CDF of the benchmark corpus
// (§4.2, Figure 10): the paper's lists mostly fall between 1K and 1M
// elements with a tail to 26M.
type Fig10Result struct {
	Thresholds []int
	CDF        []float64
}

// RunFig10 builds the shared corpus and reports its list-size CDF.
func RunFig10(cfg Config, c *workload.Corpus) (Fig10Result, *Table, error) {
	sizes := c.Index.ListSizes()
	maxSize := 0
	if n := len(sizes); n > 0 {
		maxSize = sizes[n-1]
	}
	thresholds := []int{1_000, 10_000, 100_000, 1_000_000, 10_000_000, 26_000_000}
	// Trim thresholds beyond the generated maximum (scaled runs).
	for len(thresholds) > 1 && thresholds[len(thresholds)-2] >= maxSize {
		thresholds = thresholds[:len(thresholds)-1]
	}
	cdf := stats.CDF(sizes, thresholds)
	res := Fig10Result{Thresholds: thresholds, CDF: cdf}

	t := &Table{
		Title:  "Figure 10: Inverted List Size Distribution (CDF)",
		Header: []string{"list size <=", "CDF %"},
		Notes:  []string{"paper: most lists between 1K and 1M elements"},
	}
	for i, th := range thresholds {
		t.Rows = append(t.Rows, []string{fmtSize(th), fmt.Sprintf("%.1f", cdf[i]*100)})
	}
	return res, t, nil
}

// Fig11Result is the query term-count distribution (§4.2, Figure 11):
// ~27% two-term, ~33% three-term, ~24% four-term queries.
type Fig11Result struct {
	Fractions map[int]float64 // term count -> fraction; key 7 means ">6"
}

// RunFig11 synthesizes the query log and reports its term-count histogram.
func RunFig11(cfg Config, c *workload.Corpus) (Fig11Result, *Table, []workload.Query, error) {
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries:      cfg.scaled(10_000, 400),
		PopularityAlpha: 0.45,
		// Drop the top 0.5% of term ranks, the stopword removal standard
		// in IR pipelines (TREC queries arrive stopworded).
		StopwordRanks: len(c.Terms) / 200,
		Seed:          cfg.Seed + 11,
	})
	h := stats.NewHistogram()
	for _, q := range queries {
		n := len(q.Terms)
		if n > 6 {
			n = 7 // ">6" bucket
		}
		h.Add(n)
	}
	res := Fig11Result{Fractions: map[int]float64{}}
	t := &Table{
		Title:  "Figure 11: Number of Terms Distribution",
		Header: []string{"#terms", "percentage %"},
		Notes:  []string{"paper: ~27% / 33% / 24% for 2/3/4 terms"},
	}
	for _, n := range []int{2, 3, 4, 5, 6, 7} {
		f := h.Fraction(n)
		res.Fractions[n] = f
		label := fmt.Sprintf("%d", n)
		if n == 7 {
			label = ">6"
		}
		t.Rows = append(t.Rows, []string{label, fmt.Sprintf("%.1f", f*100)})
	}
	return res, t, queries, nil
}
