package experiments

import (
	"reflect"
	"testing"
)

// TestChaosSweepShape is the chaos-smoke assertion set: under the fixed
// test seed the hardened cluster must stay ≥99% available at the 5%
// fault rate while the brittle configuration collapses, self-healing
// counters must move once faults flow, and the fault-free row must be
// perfectly available with zero healing actions.
func TestChaosSweepShape(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.05
	res, table, err := RunChaosSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("expected 4 sweep points, got %d", len(res.Points))
	}
	if res.Rate <= 0 {
		t.Fatalf("no calibrated rate: %v", res.Rate)
	}

	clean := res.Points[0]
	if clean.Rate != 0 || clean.Availability != 1 || clean.BrittleAvailability != 1 {
		t.Fatalf("fault-free row not fully available: %+v\n%s", clean, table.Render())
	}
	if clean.Retries != 0 || clean.Fallbacks != 0 || clean.Failed != 0 {
		t.Fatalf("fault-free row took healing actions: %+v\n%s", clean, table.Render())
	}

	for _, p := range res.Points[1:] {
		// The headline guarantee: self-healing holds availability at or
		// above 99% through the 5% fault rate (and we check 10% stays
		// high too — fallback and retry absorb almost everything).
		if p.Rate <= 0.05 && p.Availability < 0.99 {
			t.Fatalf("hardened availability %.4f < 0.99 at %.0f%% faults\n%s",
				p.Availability, p.Rate*100, table.Render())
		}
		if p.Availability < 0.95 {
			t.Fatalf("hardened availability %.4f < 0.95 at %.0f%% faults\n%s",
				p.Availability, p.Rate*100, table.Render())
		}
		// Self-healing must actually be doing the absorbing.
		if p.Fallbacks == 0 {
			t.Fatalf("no CPU fallbacks at %.0f%% faults\n%s", p.Rate*100, table.Render())
		}
		// The brittle twin over the identical fault stream must be
		// strictly worse — that spread is the robustness layer's value.
		if p.BrittleAvailability >= p.Availability {
			t.Fatalf("brittle availability %.4f not below hardened %.4f at %.0f%% faults\n%s",
				p.BrittleAvailability, p.Availability, p.Rate*100, table.Render())
		}
		if p.P99 < p.Mean {
			t.Fatalf("P99 %v below mean %v\n%s", p.P99, p.Mean, table.Render())
		}
	}
	hot := res.Points[len(res.Points)-1]
	if hot.BrittleAvailability > 0.90 {
		t.Fatalf("brittle cluster survived 10%% faults at %.4f availability — injection too weak\n%s",
			hot.BrittleAvailability, table.Render())
	}
}

// TestChaosSweepDeterministic pins the acceptance criterion: the same
// Config reproduces the identical availability and latency table.
func TestChaosSweepDeterministic(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.05
	r1, t1, err := RunChaosSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, t2, err := RunChaosSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("chaos sweep results differ across identical configs:\n%+v\n%+v", r1, r2)
	}
	if !reflect.DeepEqual(t1.Rows, t2.Rows) {
		t.Fatal("chaos sweep tables differ across identical configs")
	}
}
