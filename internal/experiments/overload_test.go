package experiments

import (
	"reflect"
	"testing"
)

// TestOverloadSweepShape checks the headline robustness claims: the
// hardened arm holds interactive goodput at and past saturation while
// the baseline collapses, nothing is shed at light load, and the
// retry/hedge token grants never exceed the budget bound.
func TestOverloadSweepShape(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.05
	res, table, err := RunOverloadSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 || len(table.Rows) != 6 {
		t.Fatalf("expected 6 sweep points, got %d (%d rows)", len(res.Points), len(table.Rows))
	}
	if res.Deadline <= 0 || res.Saturation <= 0 {
		t.Fatalf("calibration failed: deadline %v saturation %v", res.Deadline, res.Saturation)
	}
	byMult := map[float64]OverloadPoint{}
	for _, p := range res.Points {
		byMult[p.Multiplier] = p
	}

	// Light load: nothing shed, nobody degraded, both arms near-perfect.
	light := byMult[0.2]
	if light.Sheds != 0 || light.BrownoutDegraded != 0 {
		t.Errorf("0.2x sheds=%d degraded=%d, want 0/0\n%s", light.Sheds, light.BrownoutDegraded, table.Render())
	}
	if light.Goodput < 0.99 || light.BaselineGoodput < 0.99 {
		t.Errorf("0.2x goodput hardened=%.3f baseline=%.3f, want >= 0.99\n%s",
			light.Goodput, light.BaselineGoodput, table.Render())
	}

	// Past saturation: hardened holds interactive goodput, baseline
	// collapses under its unbounded backlog.
	for _, mult := range []float64{2, 3} {
		p := byMult[mult]
		if p.Goodput < 0.9 {
			t.Errorf("%.0fx hardened interactive goodput %.3f, want >= 0.9\n%s", mult, p.Goodput, table.Render())
		}
		if p.BaselineGoodput >= 0.5 {
			t.Errorf("%.0fx baseline goodput %.3f did not collapse (want < 0.5)\n%s", mult, p.BaselineGoodput, table.Render())
		}
		if p.BaselineGoodput >= p.Goodput {
			t.Errorf("%.0fx baseline %.3f >= hardened %.3f\n%s", mult, p.BaselineGoodput, p.Goodput, table.Render())
		}
	}

	// The overload machinery must actually engage somewhere past 1x.
	var engaged bool
	for _, mult := range []float64{1.5, 2, 3} {
		p := byMult[mult]
		if p.Sheds > 0 || p.BrownoutDegraded > 0 {
			engaged = true
		}
	}
	if !engaged {
		t.Errorf("no sheds or brownout degradation at any overloaded point\n%s", table.Render())
	}

	// Metastability bound: token grants never exceed burst + ratio x
	// admissions, at every load level.
	for _, p := range res.Points {
		if float64(p.TokensGranted) > p.TokenBound+1e-6 {
			t.Errorf("%.1fx granted %d retry/hedge tokens, bound %.1f\n%s",
				p.Multiplier, p.TokensGranted, p.TokenBound, table.Render())
		}
	}
}

// TestOverloadSweepDeterministic pins seeded reproducibility: the same
// Config yields the identical result and table bit for bit.
func TestOverloadSweepDeterministic(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.05
	r1, t1, err := RunOverloadSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, t2, err := RunOverloadSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("overload sweep results differ across identical runs")
	}
	if !reflect.DeepEqual(t1.Rows, t2.Rows) {
		t.Fatal("overload sweep tables differ across identical runs")
	}
}
