package experiments

import (
	"time"

	"griffin/internal/ef"
	"griffin/internal/gpu"
	"griffin/internal/index"
	"griffin/internal/intersect"
	"griffin/internal/kernels"
	"griffin/internal/stats"
	"griffin/internal/workload"
)

// Fig8Point is one ratio group of the crossover study (§3.2, Figure 8).
type Fig8Point struct {
	Group   stats.RatioGroup
	GPUTime time.Duration // Griffin-GPU intersection (mergepath / binary-skips)
	CPUTime time.Duration // CPU implementation (merge / skip search)
}

// Fig8Result reproduces the GPU/CPU crossover observation: Griffin-GPU
// wins while the length ratio is below ~128 and loses above it.
type Fig8Result struct {
	Points []Fig8Point
	// CrossoverGroup is the first group where the CPU wins.
	CrossoverGroup string
}

// gpuIntersectPair runs one intersection the way Griffin-GPU would (§3.1.2):
// upload both lists compressed; MergePath below the internal crossover,
// parallel binary search over skip pointers above it. Returns the
// simulated device time.
func gpuIntersectPair(dev *gpu.Device, shortIDs, longIDs []uint32, crossover float64) (time.Duration, error) {
	s := dev.NewStream()
	shortList, err := ef.Compress(shortIDs)
	if err != nil {
		return 0, err
	}
	longList, err := ef.Compress(longIDs)
	if err != nil {
		return 0, err
	}
	shortComp, err := kernels.UploadEF(s, shortList)
	if err != nil {
		return 0, err
	}
	defer shortComp.Free()
	shortDec, _, err := kernels.ParaEFDecompress(s, shortComp)
	if err != nil {
		return 0, err
	}
	defer shortDec.Free()

	ratio := float64(len(longIDs)) / float64(len(shortIDs))
	if ratio < crossover {
		longComp, err := kernels.UploadEF(s, longList)
		if err != nil {
			return 0, err
		}
		defer longComp.Free()
		longDec, _, err := kernels.ParaEFDecompress(s, longComp)
		if err != nil {
			return 0, err
		}
		defer longDec.Free()
		res, err := kernels.IntersectMergePath(s, shortDec, longDec)
		if err != nil {
			return 0, err
		}
		res.Out.Free()
	} else {
		longComp, err := kernels.UploadEF(s, longList)
		if err != nil {
			return 0, err
		}
		defer longComp.Free()
		res, err := kernels.IntersectBinarySkips(s, shortDec, longComp)
		if err != nil {
			return 0, err
		}
		res.Out.Free()
	}
	return s.Elapsed(), nil
}

// cpuIntersectPair runs the same intersection on the CPU baseline and
// returns its simulated time.
func cpuIntersectPair(cfg Config, shortIDs, longIDs []uint32) (time.Duration, error) {
	shortList, err := ef.Compress(shortIDs)
	if err != nil {
		return 0, err
	}
	longList, err := ef.Compress(longIDs)
	if err != nil {
		return 0, err
	}
	res := intersect.Pair(index.EFView{L: shortList}, index.EFView{L: longList}, 0)
	return cfg.CPU.Time(res.Work), nil
}

// RunFig8 measures both implementations over the paper's seven ratio
// groups, longer list length fixed within a window (paper: [1M, 2M]).
func RunFig8(cfg Config) (Fig8Result, *Table, error) {
	rng := cfg.rng(8)
	// The crossover ratio is length-dependent (GPU cost tracks the long
	// list, CPU cost the short one), so the long list stays paper-sized
	// ([1M,2M], §3.2) at every scale; only the pair count shrinks.
	longLen := cfg.scaled(1_500_000, 1_000_000)
	pairsPerGroup := cfg.scaled(10, 2)

	var res Fig8Result
	t := &Table{
		Title:  "Figure 8: GPU/CPU Cross Over Point (avg intersection ms)",
		Header: []string{"ratio group", "Griffin-GPU", "CPU"},
		Notes: []string{
			"paper: Griffin-GPU wins below ratio 128; CPU wins above",
		},
	}
	for _, g := range stats.PaperRatioGroups() {
		var gpuSum, cpuSum time.Duration
		for p := 0; p < pairsPerGroup; p++ {
			// Pick a ratio inside the group and derive the short length.
			ratio := float64(g.Lo) + rng.Float64()*float64(g.Hi-g.Lo)
			nShort := int(float64(longLen) / ratio)
			if nShort < 8 {
				nShort = 8
			}
			short, long := workload.GenPair(rng, nShort, longLen, uint32(longLen*6), 0.4)
			if len(short) == 0 || len(long) == 0 {
				continue
			}
			gt, err := gpuIntersectPair(cfg.Device, short, long, 128)
			if err != nil {
				return res, nil, err
			}
			ct, err := cpuIntersectPair(cfg, short, long)
			if err != nil {
				return res, nil, err
			}
			gpuSum += gt
			cpuSum += ct
		}
		p := Fig8Point{
			Group:   g,
			GPUTime: gpuSum / time.Duration(pairsPerGroup),
			CPUTime: cpuSum / time.Duration(pairsPerGroup),
		}
		res.Points = append(res.Points, p)
		if res.CrossoverGroup == "" && p.CPUTime < p.GPUTime {
			res.CrossoverGroup = g.String()
		}
		t.Rows = append(t.Rows, []string{g.String(), ms(p.GPUTime), ms(p.CPUTime)})
	}
	if res.CrossoverGroup != "" {
		t.Notes = append(t.Notes, "measured crossover at group "+res.CrossoverGroup)
	}
	return res, t, nil
}
