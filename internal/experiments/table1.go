package experiments

import (
	"fmt"

	"griffin/internal/ef"
	"griffin/internal/pfordelta"
	"griffin/internal/vbyte"
	"griffin/internal/workload"
)

// Table1Result is the compression-ratio comparison of §4.3.1 (Table 1):
// average compression ratio of PForDelta vs Elias-Fano over the corpus's
// inverted lists. The paper measures 3.3 vs 4.6 (EF 1.4x better). VByte,
// not in the paper's table, is included as the classic byte-aligned
// reference codec.
type Table1Result struct {
	PFDRatio   float64
	EFRatio    float64
	VByteRatio float64
}

// RunTable1 compresses every list of a Zipfian corpus sample with both
// codecs and reports the size-weighted average ratios.
func RunTable1(cfg Config) (Table1Result, *Table, error) {
	rng := cfg.rng(1)
	numLists := cfg.scaled(500, 40)
	maxLen := cfg.scaled(1_000_000, 20_000)

	var rawBits, pfdBits, efBits, vbBits int64
	for i := 0; i < numLists; i++ {
		// Zipf-ish spread of list lengths, web-like d-gap profile.
		n := maxLen / (1 + i)
		if n < 1000 {
			n = 1000
		}
		universe := uint32(n * (4 + rng.Intn(60)))
		ids := workload.GenList(rng, n, universe)
		if len(ids) == 0 {
			continue
		}
		p, err := pfordelta.Compress(ids)
		if err != nil {
			return Table1Result{}, nil, err
		}
		e, err := ef.Compress(ids)
		if err != nil {
			return Table1Result{}, nil, err
		}
		vb, err := vbyte.Compress(ids)
		if err != nil {
			return Table1Result{}, nil, err
		}
		rawBits += int64(len(ids)) * 32
		pfdBits += p.CompressedBits()
		efBits += e.CompressedBits()
		vbBits += vb.CompressedBits()
	}

	res := Table1Result{
		PFDRatio:   float64(rawBits) / float64(pfdBits),
		EFRatio:    float64(rawBits) / float64(efBits),
		VByteRatio: float64(rawBits) / float64(vbBits),
	}
	t := &Table{
		Title:  "Table 1: Compression Ratio Comparison",
		Header: []string{"Scheme", "PforDelta", "EF", "VByte (ref)"},
		Rows: [][]string{{
			"Compression Ratio",
			fmt.Sprintf("%.1f", res.PFDRatio),
			fmt.Sprintf("%.1f", res.EFRatio),
			fmt.Sprintf("%.1f", res.VByteRatio),
		}},
		Notes: []string{
			fmt.Sprintf("paper: 3.3 vs 4.6 (EF %.1fx better); measured EF advantage: %.2fx",
				4.6/3.3, res.EFRatio/res.PFDRatio),
			"VByte column added as the classic byte-aligned reference codec",
		},
	}
	return res, t, nil
}
