package experiments

import (
	"fmt"
	"os"
	"time"

	"griffin/internal/core"
	"griffin/internal/fault"
	"griffin/internal/index"
	"griffin/internal/ingest"
	"griffin/internal/loadsim"
	"griffin/internal/workload"
)

// CrashSweepPoint is one checkpoint cadence of the crash-recovery study,
// aggregated over several seeded crash points (half of them landing on
// an injected torn append, so recovery exercises the truncate path).
type CrashSweepPoint struct {
	// CheckpointEvery is the mutation count between checkpoints
	// (0 = none: recovery replays the whole log).
	CheckpointEvery int
	Trials          int
	// Acked/Recovered total the sync-every-append arm across trials;
	// Survival is their ratio. The durability contract requires exactly
	// 1.0: an acknowledged write is a synced write, so no crash point —
	// torn tail included — may lose one.
	Acked     int
	Recovered int
	Survival  float64
	// DeferredAcked/DeferredRecovered/DeferredSurvival are the same
	// crash points under WALSyncEvery -1 (sync only at checkpoints and
	// close): only the prefix a checkpoint made durable survives, so
	// this column rises with checkpoint frequency — the knob's trade
	// made visible.
	DeferredAcked     int
	DeferredRecovered int
	DeferredSurvival  float64
	// MeanRecovery and MeanReplay are recovery wall-clock and replayed
	// WAL suffix length per trial on the sync arm; checkpoints bound
	// both.
	MeanRecovery time.Duration
	MeanReplay   float64
	// Checkpoints totals committed checkpoints; TornTrials counts the
	// trials whose log ended in an injected torn append, and
	// TruncatedBytes what recovery discarded from those tails.
	Checkpoints    int64
	TornTrials     int
	TruncatedBytes int64
}

// CrashSweepResult is the durable-ingest crash-recovery sweep:
// acknowledged-write survival and recovery time against checkpoint
// interval, sync-every-append vs deferred sync, over seeded crash
// points with and without torn-tail fault injection.
type CrashSweepResult struct {
	// Mutations is the scripted workload length each trial crashes
	// somewhere inside.
	Mutations int
	Points    []CrashSweepPoint
}

// crashCorpus is a small corpus: the sweep opens many engines and each
// checkpoint serializes the full segment, so the signal (replay length,
// recovery time, survival accounting) needs volume in mutations, not in
// postings.
func crashCorpus(cfg Config) (*workload.Corpus, []workload.Query, error) {
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    cfg.scaled(500_000, 20_000),
		NumTerms:   cfg.scaled(48, 16),
		MaxListLen: cfg.scaled(100_000, 4_000),
		MinListLen: cfg.scaled(10_000, 500),
		Alpha:      0.6,
		Codec:      index.CodecEF,
		Seed:       cfg.Seed + 91,
	})
	if err != nil {
		return nil, nil, err
	}
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: cfg.scaled(200, 60), PopularityAlpha: 0.5, Seed: cfg.Seed + 93,
	})
	return c, queries, nil
}

// RunCrashSweep measures acknowledged-write survival and recovery time
// against checkpoint interval on a durable live engine (BENCH_PR10's
// robustness study). Every trial crashes at a seeded point in the same
// mutation script — odd trials through an injected torn append, so the
// log ends mid-record — and reopens the directory. Two arms per trial:
// sync-every-append, whose survival must be 100% at every cadence (the
// ack barrier is the invariant under test), and deferred sync, whose
// survival is whatever the last checkpoint covered — the cost of
// trading the sync tail away.
func RunCrashSweep(cfg Config) (CrashSweepResult, *Table, error) {
	c, queries, err := crashCorpus(cfg)
	if err != nil {
		return CrashSweepResult{}, nil, err
	}
	mutCount := cfg.scaled(240, 64)
	muts := ingestSweepScript(cfg, queries, uint32(c.Index.NumDocs), mutCount)
	trials := cfg.scaled(6, 4)
	rng := cfg.rng(97)

	res := CrashSweepResult{Mutations: mutCount}
	t := &Table{
		Title: "Extension: crash-recovery sweep (acknowledged-write survival vs checkpoint interval)",
		Header: []string{"ckpt every", "trials", "survival", "survival (deferred sync)",
			"mean recovery", "mean replay", "ckpts", "torn trials", "torn bytes"},
		Notes: []string{
			fmt.Sprintf("%d-mutation script, %d seeded crash points per cadence; odd trials crash through an injected torn append", mutCount, trials),
			"survival = recovered generations / acknowledged mutations, totaled across trials",
			"sync arm (-wal-sync 1) must read 100.00% at every cadence: acknowledged means synced, so no crash point may lose a write",
			"deferred arm (-wal-sync -1, fault-free) syncs only at checkpoints: survival is the checkpoint-covered prefix — rises with cadence",
			"mean recovery is wall-clock Open() on the crashed directory; mean replay the WAL suffix past the newest usable checkpoint",
		},
	}

	for _, every := range []int{0, mutCount / 4, mutCount / 16} {
		p := CrashSweepPoint{CheckpointEvery: every, Trials: trials}
		var recSum time.Duration
		var replaySum int64
		for trial := 0; trial < trials; trial++ {
			crashAfter := 1 + rng.Intn(mutCount)
			torn := trial%2 == 1
			var ckptAt []int
			if every > 0 {
				for at := every; at <= crashAfter; at += every {
					ckptAt = append(ckptAt, at)
				}
			}
			runArm := func(syncEvery int, inject bool) (loadsim.CrashResult, error) {
				dir, err := os.MkdirTemp("", "griffin-crash-*")
				if err != nil {
					return loadsim.CrashResult{}, err
				}
				defer os.RemoveAll(dir)
				ecfg := ingest.Config{
					Engine: core.Config{Mode: core.CPUOnly, CPU: cfg.CPU},
					WALDir: dir, WALSyncEvery: syncEvery,
				}
				if inject {
					// One torn append on the crash trial's final mutation:
					// the tail syncs corrupted, the log wedges, and the
					// mutation is never acknowledged — recovery must
					// truncate it away, not replay it.
					ecfg.Fault = fault.NewInjector(fault.Plan{
						Seed: cfg.Seed + int64(trial)*131,
						Rules: []fault.Rule{{
							Kind: fault.TornWrite, Rate: 1,
							After: int64(crashAfter - 1), Until: int64(crashAfter),
						}},
					})
				}
				return loadsim.RunCrash(c.Index, muts, loadsim.CrashSpec{
					Config: ecfg, CrashAfter: crashAfter, CheckpointAt: ckptAt,
				})
			}
			// The torn tail targets the sync arm only: a fired wedge syncs
			// the corrupted tail (and everything buffered before it), which
			// would hand the deferred arm durability it never asked for and
			// blur the checkpoint-coverage signal.
			sync, err := runArm(1, torn)
			if err != nil {
				return CrashSweepResult{}, nil, err
			}
			deferred, err := runArm(-1, false)
			if err != nil {
				return CrashSweepResult{}, nil, err
			}
			p.Acked += sync.Acked
			p.Recovered += int(sync.Recovered)
			p.DeferredAcked += deferred.Acked
			p.DeferredRecovered += int(deferred.Recovered)
			p.Checkpoints += sync.Checkpoints
			recSum += sync.RecoveryTime
			replaySum += sync.Replayed
			if torn {
				p.TornTrials++
				p.TruncatedBytes += sync.TruncatedBytes
			}
		}
		if p.Acked > 0 {
			p.Survival = float64(p.Recovered) / float64(p.Acked)
		}
		if p.DeferredAcked > 0 {
			p.DeferredSurvival = float64(p.DeferredRecovered) / float64(p.DeferredAcked)
		}
		p.MeanRecovery = recSum / time.Duration(trials)
		p.MeanReplay = float64(replaySum) / float64(trials)
		res.Points = append(res.Points, p)
		label := "none"
		if every > 0 {
			label = fmt.Sprintf("%d", every)
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%d", trials),
			fmt.Sprintf("%.2f%%", p.Survival*100),
			fmt.Sprintf("%.2f%%", p.DeferredSurvival*100),
			ms(p.MeanRecovery),
			fmt.Sprintf("%.1f", p.MeanReplay),
			fmt.Sprintf("%d", p.Checkpoints),
			fmt.Sprintf("%d", p.TornTrials),
			fmt.Sprintf("%d", p.TruncatedBytes),
		})
	}
	return res, t, nil
}
