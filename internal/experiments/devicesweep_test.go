package experiments

import (
	"testing"
)

func TestDeviceSweepScalingShape(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.05
	res, table, err := RunDeviceSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("expected 4 sweep points, got %d", len(res.Points))
	}
	if res.Rate <= 0 {
		t.Fatalf("no calibrated rate: %v", res.Rate)
	}
	first := res.Points[0]
	if first.PeerCopies != 0 {
		t.Fatalf("1 device reports %d peer copies (no sibling exists)\n%s",
			first.PeerCopies, table.Render())
	}
	for i, p := range res.Points {
		if p.P99 < p.Mean {
			t.Fatalf("%d devices: P99 %v below mean %v\n%s", p.Devices, p.P99, p.Mean, table.Render())
		}
		if p.Utilization <= 0 || p.Utilization > 1 {
			t.Fatalf("%d devices: utilization %v out of range\n%s", p.Devices, p.Utilization, table.Render())
		}
		// Isolated latency stays flat: a single query runs on one device
		// no matter how many the node has. Allow 10% wiggle for placement
		// shifting which device's cache warms first.
		if p.IsolatedMean > first.IsolatedMean*11/10 || p.IsolatedMean < first.IsolatedMean*9/10 {
			t.Fatalf("isolated mean not flat across devices: 1 -> %v, %d -> %v\n%s",
				first.IsolatedMean, p.Devices, p.IsolatedMean, table.Render())
		}
		if i == 0 {
			continue
		}
		prev := res.Points[i-1]
		// Throughput grows monotonically with the device count under
		// saturating load — each device is an independent timeline.
		if p.Throughput <= prev.Throughput {
			t.Fatalf("throughput not monotone in devices: %d -> %.1f q/s, %d -> %.1f q/s\n%s",
				prev.Devices, prev.Throughput, p.Devices, p.Throughput, table.Render())
		}
	}
	four := res.Points[2]
	if four.Devices != 4 {
		t.Fatalf("third point is %d devices, want 4", four.Devices)
	}
	// The headline scaling claim: 4 devices drain at least 1.7x the
	// single-device rate (independent timelines; placement spreads load).
	if four.Throughput < 1.7*first.Throughput {
		t.Fatalf("4 devices only %.2fx the 1-device throughput\n%s",
			four.Throughput/first.Throughput, table.Render())
	}
	// Multi-GPU runs exercise the peer interconnect: some cache misses
	// must be served device-to-device.
	var peers int64
	for _, p := range res.Points[1:] {
		peers += p.PeerCopies
	}
	if peers == 0 {
		t.Fatalf("no peer copies at any multi-device point\n%s", table.Render())
	}
}
