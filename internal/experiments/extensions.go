package experiments

import (
	"fmt"
	"time"

	"griffin/internal/core"
	"griffin/internal/loadsim"
	"griffin/internal/workload"
)

// LoadPoint is one offered-load level of the multi-user study.
type LoadPoint struct {
	ArrivalRate float64 // queries/second
	CPUOnlyP99  time.Duration
	GriffinP99  time.Duration
	AdaptiveP99 time.Duration // load-aware GPU/CPU spill (§3.2's hook)
	CPUOnlyMean time.Duration
	GriffinMean time.Duration
}

// LoadResult is the heavy-load extension study (the paper's §6 future
// work): per-query traces from the CPU-only and Griffin engines replayed
// through a discrete-event queueing simulation (4-core host pool, single
// device) at increasing Poisson arrival rates. Griffin's offloading keeps
// the CPU pool uncongested, so its response times degrade at much higher
// offered loads.
type LoadResult struct {
	Points []LoadPoint
}

// RunLoadStudy traces every query once per engine, then sweeps arrival
// rates through the queueing simulation.
func RunLoadStudy(cfg Config, c *workload.Corpus, queries []workload.Query) (LoadResult, *Table, error) {
	cpuE, err := core.New(c.Index, core.Config{Mode: core.CPUOnly, CPU: cfg.CPU})
	if err != nil {
		return LoadResult{}, nil, err
	}
	hybE, err := core.New(c.Index, core.Config{Mode: core.Hybrid, CPU: cfg.CPU, Device: cfg.Device})
	if err != nil {
		return LoadResult{}, nil, err
	}

	n := cfg.scaled(2_000, 150)
	if n > len(queries) {
		n = len(queries)
	}
	sample := queries[:n]

	cpuTraces := make([][]loadsim.Segment, len(sample))
	hybTraces := make([][]loadsim.Segment, len(sample))
	duals := make([]loadsim.DualTrace, len(sample))
	var cpuServiceSum time.Duration
	for i, q := range sample {
		rc, err := cpuE.Search(q.Terms)
		if err != nil {
			return LoadResult{}, nil, err
		}
		rh, err := hybE.Search(q.Terms)
		if err != nil {
			return LoadResult{}, nil, err
		}
		cpuTraces[i] = loadsim.SegmentsFromStats(rc.Stats)
		hybTraces[i] = loadsim.SegmentsFromStats(rh.Stats)
		duals[i] = loadsim.DualTrace{Griffin: hybTraces[i], CPUOnly: cpuTraces[i]}
		cpuServiceSum += rc.Stats.Latency
	}

	// Sweep offered load around the CPU-only pool's saturation point:
	// capacity ~ workers / mean service time.
	meanService := cpuServiceSum / time.Duration(len(sample))
	saturation := 4 / meanService.Seconds()

	var res LoadResult
	t := &Table{
		Title: "Extension: multi-user load study (P99 response ms)",
		Header: []string{"load (q/s)", "vs CPU capacity", "CPU-only P99",
			"Griffin P99", "adaptive P99", "CPU-only mean", "Griffin mean"},
		Notes: []string{
			"paper §6 future work: heavy system loads with multiple users",
			"4-core host pool, single device, Poisson arrivals, FCFS",
			"adaptive = load-aware spill to CPU when the device backlog grows (§3.2's load-balancing hook)",
		},
	}
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0, 1.5} {
		rate := saturation * frac
		spec := loadsim.Spec{CPUWorkers: 4, ArrivalRate: rate, Seed: cfg.Seed + 77}
		rc := loadsim.Run(cpuTraces, spec)
		rh := loadsim.Run(hybTraces, spec)
		ra := loadsim.RunAdaptive(duals, spec, 4)
		p := LoadPoint{
			ArrivalRate: rate,
			CPUOnlyP99:  rc.Latencies.Percentile(99),
			GriffinP99:  rh.Latencies.Percentile(99),
			AdaptiveP99: ra.Latencies.Percentile(99),
			CPUOnlyMean: rc.Latencies.Mean(),
			GriffinMean: rh.Latencies.Mean(),
		}
		res.Points = append(res.Points, p)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.0f%%", frac*100),
			ms(p.CPUOnlyP99), ms(p.GriffinP99), ms(p.AdaptiveP99),
			ms(p.CPUOnlyMean), ms(p.GriffinMean),
		})
	}
	return res, t, nil
}

// CacheResult is the device-list-cache extension study: repeat-heavy
// query traffic with and without the bounded LRU cache of compressed
// lists (the scalable middle ground between the paper's upload-per-query
// prototype and Ao et al.'s cache-everything design, §5).
type CacheResult struct {
	ColdMean   time.Duration
	WarmMean   time.Duration
	CachedList int
}

// RunCacheStudy runs the query log twice through a caching GPU-only
// engine: the first pass pays every upload, the second hits the cache.
func RunCacheStudy(cfg Config, c *workload.Corpus, queries []workload.Query) (CacheResult, *Table, error) {
	n := cfg.scaled(500, 80)
	if n > len(queries) {
		n = len(queries)
	}
	sample := queries[:n]

	e, err := core.New(c.Index, core.Config{
		Mode: core.GPUOnly, CPU: cfg.CPU, Device: cfg.Device,
		CacheLists: true, CacheBytes: 2 << 30,
	})
	if err != nil {
		return CacheResult{}, nil, err
	}
	defer e.Close()

	runPass := func() (time.Duration, error) {
		var sum time.Duration
		for _, q := range sample {
			r, err := e.Search(q.Terms)
			if err != nil {
				return 0, err
			}
			sum += r.Stats.Latency
		}
		return sum / time.Duration(len(sample)), nil
	}
	cold, err := runPass()
	if err != nil {
		return CacheResult{}, nil, err
	}
	warm, err := runPass()
	if err != nil {
		return CacheResult{}, nil, err
	}
	res := CacheResult{ColdMean: cold, WarmMean: warm, CachedList: e.CachedLists()}
	t := &Table{
		Title:  "Extension: device-resident list cache (mean query ms)",
		Header: []string{"pass", "mean latency"},
		Rows: [][]string{
			{"cold (uploads)", ms(cold)},
			{"warm (cached)", ms(warm)},
		},
		Notes: []string{
			fmt.Sprintf("%d compressed lists resident after warmup (LRU, 2 GB bound)", res.CachedList),
			"§5: caching all lists is not scalable; bounded LRU recovers most of the win",
		},
	}
	return res, t, nil
}
