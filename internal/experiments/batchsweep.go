package experiments

import (
	"context"
	"fmt"
	"time"

	"griffin/internal/cluster"
	"griffin/internal/core"
	"griffin/internal/gpu"
	"griffin/internal/loadsim"
	"griffin/internal/workload"
)

// BatchSweepPoint compares one shard count with the device batching
// stage off and on, everything else identical.
type BatchSweepPoint struct {
	Shards int
	// IsolatedOff and IsolatedOn are contention-free mean cluster
	// latencies. With one query in flight there are no concurrent
	// queries to coalesce with, so batching-on may only self-batch a
	// query's own compatible ops — the latency criterion is that these
	// stay within a few percent of each other.
	IsolatedOff time.Duration
	IsolatedOn  time.Duration
	// ThroughputOff and ThroughputOn are saturated drain rates
	// (completed queries per second of makespan) under the common
	// Poisson load; Gain = on/off is the batching win.
	ThroughputOff float64
	ThroughputOn  float64
	Gain          float64
	// MeanBatch is the mean members per batch in the saturated
	// batching-on pass, summed over every replica device; SavedPerQuery
	// is the total fixed-cost rebate divided by completed queries.
	MeanBatch     float64
	SavedPerQuery time.Duration
	// WindowFlushes and SizeFlushes count how batches closed: a window
	// flush means the coalescing window expired first, a size flush
	// means the batch filled to BatchMax.
	WindowFlushes int64
	SizeFlushes   int64
}

// BatchSweepResult is the cross-query batching study: the shard sweep's
// saturated scatter-gather workload re-run with the per-device batching
// stage off and on at each shard count.
//
// The mechanism under test: under saturation every shard's device sees a
// steady interleaving of compatible ops (uploads, decompress and
// intersect kernels of the same family) from concurrently admitted
// queries. Unbatched, each op pays its full fixed costs — launch
// overhead, DMA setup, cudaMalloc. The batching stage coalesces ops of
// one kernel family whose ready times fall within the window into one
// launch, so the batch pays those fixed costs once and each extra member
// only a small marginal overhead. Throughput rises by the share of
// device busy time the fixed costs used to occupy; results are
// byte-identical because batching changes the simulated timeline only.
//
// Contention-free there is nothing to coalesce with, so isolated
// latencies barely move — batching is a throughput optimization that is
// latency-neutral when the device is idle.
type BatchSweepResult struct {
	// Rate is the offered saturating load in queries/second, calibrated
	// off the 1-shard batching-off isolated mean exactly like the shard
	// sweep.
	Rate float64
	// Window and Max are the batching-on arm's configuration.
	Window time.Duration
	Max    int
	Points []BatchSweepPoint
}

// RunBatchSweep measures the batching stage's saturated-throughput win
// and isolated-latency neutrality across shard counts.
func RunBatchSweep(cfg Config) (BatchSweepResult, *Table, error) {
	window := cfg.BatchWindow
	if window <= 0 {
		window = 2 * time.Millisecond
	}
	max := cfg.BatchMax
	if max <= 0 {
		max = gpu.DefaultBatchMax
	}

	c, queries, err := shardSweepCorpus(cfg)
	if err != nil {
		return BatchSweepResult{}, nil, err
	}
	sample := make([][]string, len(queries))
	for i, q := range queries {
		sample[i] = q.Terms
	}

	mkCluster := func(shards int, batched bool) (*cluster.Cluster, error) {
		ixs, err := workload.PartitionCorpus(c, shards)
		if err != nil {
			return nil, err
		}
		ecfg := core.Config{Mode: core.Hybrid, CPU: cfg.CPU}
		if batched {
			ecfg.BatchWindow = window
			ecfg.BatchMax = max
		}
		return cluster.New(ixs, cluster.Config{Engine: ecfg, TopK: 10, CPU: cfg.CPU})
	}

	isolated := func(shards int, batched bool) (time.Duration, error) {
		cl, err := mkCluster(shards, batched)
		if err != nil {
			return 0, err
		}
		defer cl.Close()
		var sum time.Duration
		for _, q := range sample {
			r, err := cl.Search(context.Background(), q)
			if err != nil {
				return 0, err
			}
			sum += r.Stats.Latency
		}
		return sum / time.Duration(len(sample)), nil
	}

	res := BatchSweepResult{Window: window, Max: max}
	t := &Table{
		Title: "Extension: cross-query batching sweep (saturated scatter-gather)",
		Header: []string{"shards", "iso off", "iso on", "thr off (q/s)", "thr on (q/s)",
			"gain", "mean batch", "saved/query", "win flush", "size flush"},
		Notes: []string{
			fmt.Sprintf("batching-on arm: window %v, max %d members; batching-off arm is the PR 6 submission path bit for bit", window, max),
			"isolated columns: contention-free sequential queries — nothing concurrent to coalesce with, so batching is latency-neutral",
			"saturated columns: common Poisson load far past the 1-shard drain rate; throughput = completed/makespan",
			"gain = thr on / thr off: batching refunds the fixed per-op costs (launch, DMA setup, cudaMalloc) all but one batch member would repeat",
			"mean batch and saved/query aggregate every replica device's BatchStats over the saturated batching-on pass",
			"results are byte-identical across both arms — batching moves only the simulated timeline",
		},
	}

	var rate float64
	for _, shards := range []int{1, 2, 4, 8} {
		p := BatchSweepPoint{Shards: shards}
		if p.IsolatedOff, err = isolated(shards, false); err != nil {
			return BatchSweepResult{}, nil, err
		}
		if p.IsolatedOn, err = isolated(shards, true); err != nil {
			return BatchSweepResult{}, nil, err
		}
		if rate == 0 {
			// Same calibration as the shard sweep: deep overload relative
			// to the 1-shard unbatched drain rate, held fixed across shard
			// counts and arms so every run sees the same arrival process.
			rate = 24 / p.IsolatedOff.Seconds()
			res.Rate = rate
		}

		for _, batched := range []bool{false, true} {
			cl, err := mkCluster(shards, batched)
			if err != nil {
				return BatchSweepResult{}, nil, err
			}
			r, err := loadsim.RunCluster(cl, sample, loadsim.Spec{ArrivalRate: rate, Seed: cfg.Seed + 331})
			if err != nil {
				cl.Close()
				return BatchSweepResult{}, nil, err
			}
			thr := float64(r.Latencies.Count()) / r.Makespan.Seconds()
			if batched {
				p.ThroughputOn = thr
				st := cl.BatchStats()
				if st.Batches > 0 {
					p.MeanBatch = float64(st.Members) / float64(st.Batches)
				}
				if n := r.Latencies.Count(); n > 0 {
					p.SavedPerQuery = st.Saved / time.Duration(n)
				}
				p.WindowFlushes = st.WindowFlushes
				p.SizeFlushes = st.SizeFlushes
			} else {
				p.ThroughputOff = thr
			}
			cl.Close()
		}
		p.Gain = p.ThroughputOn / p.ThroughputOff

		res.Points = append(res.Points, p)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", shards),
			ms(p.IsolatedOff), ms(p.IsolatedOn),
			fmt.Sprintf("%.0f", p.ThroughputOff),
			fmt.Sprintf("%.0f", p.ThroughputOn),
			fmt.Sprintf("%.2fx", p.Gain),
			fmt.Sprintf("%.1f", p.MeanBatch),
			ms(p.SavedPerQuery),
			fmt.Sprintf("%d", p.WindowFlushes),
			fmt.Sprintf("%d", p.SizeFlushes),
		})
	}
	return res, t, nil
}
