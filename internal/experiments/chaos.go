package experiments

import (
	"context"
	"fmt"
	"time"

	"griffin/internal/cluster"
	"griffin/internal/core"
	"griffin/internal/fault"
	"griffin/internal/index"
	"griffin/internal/loadsim"
	"griffin/internal/workload"
)

// ChaosPoint is one fault rate of the chaos study, measured twice over
// the identical injected fault stream: once with every self-healing
// mechanism armed (CPU fallback, sibling retry, circuit breakers,
// hedging) and once with all of them disabled.
type ChaosPoint struct {
	// Rate is the base per-opportunity fault probability; the plan derives
	// every kind's rate from it (see chaosPlan).
	Rate float64
	// Availability is the hardened cluster's fraction of queries answered
	// completely — neither failed nor degraded.
	Availability float64
	// Mean and P99 are the hardened cluster's sojourn times under load,
	// chaos included (fallback re-execution, retry backoff, stalls).
	Mean time.Duration
	P99  time.Duration
	// Retries, Hedges, Fallbacks, Failed count the self-healing actions
	// the hardened cluster took across the run.
	Retries   int
	Hedges    int
	Fallbacks int
	Failed    int
	// BrittleAvailability and BrittleP99 are the same load over the same
	// fault plan with self-healing off: device faults and engine errors
	// surface as lost shards instead of being absorbed.
	BrittleAvailability float64
	BrittleP99          time.Duration
}

// ChaosSweepResult is the fault-rate sweep: availability and tail
// latency against injected fault rate, hardened vs brittle.
type ChaosSweepResult struct {
	// Rate is the offered Poisson load in queries/second (moderate, not
	// saturating: the study isolates fault handling, not queueing).
	Rate   float64
	Points []ChaosPoint
}

// chaosPlan derives the full fault mix from one base rate: device-level
// kernel and transfer failures at the base rate, occasional device
// resets, engine admission errors, and shard stalls. Seeded per point so
// every (seed, rate) pair replays the identical fault stream.
func chaosPlan(seed int64, rate float64) fault.Plan {
	return fault.Plan{Seed: seed, Rules: []fault.Rule{
		{Kind: fault.KernelLaunch, Rate: rate},
		{Kind: fault.TransferError, Rate: rate},
		{Kind: fault.DeviceReset, Rate: rate / 4, Stall: 2 * time.Millisecond},
		{Kind: fault.EngineError, Rate: rate / 2},
		{Kind: fault.ShardStall, Rate: rate, Stall: 3 * time.Millisecond},
	}}
}

// chaosCorpus is a moderate scatter-gather corpus: long enough lists
// that device faults hit mid-query, small enough that the sweep's many
// cluster builds stay cheap.
func chaosCorpus(cfg Config) (*workload.Corpus, [][]string, error) {
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    cfg.scaled(2_000_000, 400_000),
		NumTerms:   cfg.scaled(32, 16),
		MaxListLen: cfg.scaled(1_000_000, 120_000),
		MinListLen: cfg.scaled(200_000, 30_000),
		Alpha:      0.6,
		Codec:      index.CodecEF,
		Seed:       cfg.Seed + 61,
	})
	if err != nil {
		return nil, nil, err
	}
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: cfg.scaled(300, 80), PopularityAlpha: 0.5, Seed: cfg.Seed + 67,
	})
	sample := make([][]string, len(queries))
	for i, q := range queries {
		sample[i] = q.Terms
	}
	return c, sample, nil
}

// RunChaosSweep measures availability (fraction of queries answered
// completely) and tail latency against injected fault rate on a 4-shard,
// 2-replica hybrid cluster. Each rate runs twice over the identical
// fault plan: hardened (CPU fallback + sibling retry + breakers +
// hedging) and brittle (all self-healing disabled), so the spread
// between the availability columns is exactly what the robustness layer
// buys. Everything is seeded: the same Config reproduces the same fault
// log, availability, and latency table bit for bit.
func RunChaosSweep(cfg Config) (ChaosSweepResult, *Table, error) {
	c, sample, err := chaosCorpus(cfg)
	if err != nil {
		return ChaosSweepResult{}, nil, err
	}

	mkCluster := func(inj *fault.Injector, hardened bool, hedge time.Duration) (*cluster.Cluster, error) {
		ixs, err := workload.PartitionCorpus(c, 4)
		if err != nil {
			return nil, err
		}
		clCfg := cluster.Config{
			Engine:   core.Config{Mode: core.Hybrid, CPU: cfg.CPU},
			TopK:     10,
			CPU:      cfg.CPU,
			Replicas: 2,
			Routing:  cluster.LeastPending,
			Fault:    inj,
		}
		if hardened {
			clCfg.HedgeDelay = hedge
		} else {
			clCfg.Engine.NoCPUFallback = true
			clCfg.Retries = -1
			clCfg.Breaker = fault.BreakerConfig{Threshold: -1}
		}
		return cluster.New(ixs, clCfg)
	}

	// Calibrate the load off a fault-free pass: moderate (half the
	// clean drain rate per shard replica set) so queueing exists but the
	// availability signal is the faults, not saturation. The hedge delay
	// is set well past the clean mean: it fires on stalled or resetting
	// replicas, not on ordinary variance.
	iso, err := mkCluster(nil, true, 0)
	if err != nil {
		return ChaosSweepResult{}, nil, err
	}
	var sum time.Duration
	for _, q := range sample {
		r, err := iso.Search(context.Background(), q)
		if err != nil {
			iso.Close()
			return ChaosSweepResult{}, nil, err
		}
		sum += r.Stats.Latency
	}
	iso.Close()
	cleanMean := sum / time.Duration(len(sample))
	rate := 0.5 / cleanMean.Seconds()
	hedge := 2 * cleanMean

	res := ChaosSweepResult{Rate: rate}
	t := &Table{
		Title: "Extension: chaos sweep (availability and tail latency vs injected fault rate)",
		Header: []string{"fault rate", "avail", "avail (brittle)", "mean", "P99", "P99 (brittle)",
			"retries", "hedges", "fallbacks", "failed"},
		Notes: []string{
			"4 shards x 2 replicas, hybrid engines; identical seeded fault plan for both columns of each row",
			"fault mix per base rate r: kernel-launch r, transfer r, device-reset r/4 (2ms window), engine-error r/2, shard-stall r (3ms)",
			"hardened: CPU fallback on device faults + sibling retry + circuit breakers + hedged requests",
			"brittle: all self-healing disabled — device faults and engine errors surface as lost shards",
			"availability = fraction of queries answered completely (neither failed nor degraded)",
			fmt.Sprintf("offered load %.0f q/s (half the clean drain rate); hedge delay %s ms", rate, ms(hedge)),
		},
	}

	for i, fr := range []float64{0, 0.02, 0.05, 0.10} {
		seed := cfg.Seed*7919 + int64(i+1)
		run := func(hardened bool) (loadsim.ClusterResult, error) {
			var inj *fault.Injector
			if fr > 0 {
				inj = fault.NewInjector(chaosPlan(seed, fr))
			}
			cl, err := mkCluster(inj, hardened, hedge)
			if err != nil {
				return loadsim.ClusterResult{}, err
			}
			defer cl.Close()
			return loadsim.RunCluster(cl, sample, loadsim.Spec{
				ArrivalRate: rate, Seed: cfg.Seed + 331, TolerateFailures: true,
			})
		}
		hard, err := run(true)
		if err != nil {
			return ChaosSweepResult{}, nil, err
		}
		brittle, err := run(false)
		if err != nil {
			return ChaosSweepResult{}, nil, err
		}
		p := ChaosPoint{
			Rate:                fr,
			Availability:        hard.Available(),
			Mean:                hard.Latencies.Mean(),
			P99:                 hard.Latencies.Percentile(99),
			Retries:             hard.Retries,
			Hedges:              hard.Hedges,
			Fallbacks:           hard.Fallbacks,
			Failed:              hard.Failed,
			BrittleAvailability: brittle.Available(),
			BrittleP99:          brittle.Latencies.Percentile(99),
		}
		res.Points = append(res.Points, p)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", fr*100),
			fmt.Sprintf("%.2f%%", p.Availability*100),
			fmt.Sprintf("%.2f%%", p.BrittleAvailability*100),
			ms(p.Mean), ms(p.P99), ms(p.BrittleP99),
			fmt.Sprintf("%d", p.Retries),
			fmt.Sprintf("%d", p.Hedges),
			fmt.Sprintf("%d", p.Fallbacks),
			fmt.Sprintf("%d", p.Failed),
		})
	}
	return res, t, nil
}
