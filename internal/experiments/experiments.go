// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the simulated hardware: each Run* function executes
// the real algorithms under the calibrated cost models and returns both a
// printable table (the same rows/series the paper reports) and a typed
// result the shape-validation tests assert on.
//
// Absolute numbers differ from the paper's testbed by construction; the
// reproduction targets are the *shapes*: who wins, by roughly what factor,
// and where the crossovers fall. EXPERIMENTS.md records paper-vs-measured
// for every experiment.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/workload"
)

// Config scales the experiment suite. Scale 1.0 approximates the paper's
// data sizes (minutes of runtime); tests run at small scales.
type Config struct {
	// Scale multiplies workload sizes (list lengths, query counts).
	Scale float64
	// Seed drives all generation.
	Seed int64
	// Device is the simulated GPU shared by all experiments.
	Device *gpu.Device
	// CPU prices host work.
	CPU hwmodel.CPUModel
	// BatchWindow and BatchMax parameterize the batching-on arm of the
	// batch sweep (RunBatchSweep). Zero selects the sweep's defaults
	// (2ms window, gpu.DefaultBatchMax members); every other experiment
	// runs with batching off regardless.
	BatchWindow time.Duration
	BatchMax    int
}

// DefaultConfig returns the full-scale configuration.
func DefaultConfig() Config {
	return Config{
		Scale:  1.0,
		Seed:   1,
		Device: gpu.New(hwmodel.DefaultGPU(), 0),
		CPU:    hwmodel.DefaultCPU(),
	}
}

// scaled returns max(lo, round(v*Scale)).
func (c Config) scaled(v int, lo int) int {
	n := int(float64(v) * c.Scale)
	if n < lo {
		n = lo
	}
	return n
}

// rng returns a deterministic generator offset from the suite seed so each
// experiment is independently reproducible.
func (c Config) rng(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*1009 + offset))
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned plain text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as RFC-4180-ish CSV (header row first; notes as
// trailing comment lines), the format griffin-bench -csvdir emits for
// plotting.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "# %s\n", n)
	}
	return sb.String()
}

// TableJSON is the machine-readable form of a Table, emitted by
// griffin-bench -json so CI can record the perf trajectory.
type TableJSON struct {
	Slug   string     `json:"slug"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// JSON returns the table's machine-readable form.
func (t *Table) JSON() TableJSON {
	return TableJSON{Slug: t.Slug(), Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes}
}

// Slug returns a filesystem-friendly name derived from the title.
func (t *Table) Slug() string {
	s := strings.ToLower(t.Title)
	if i := strings.IndexByte(s, ':'); i > 0 {
		s = s[:i]
	}
	return strings.ReplaceAll(strings.TrimSpace(s), " ", "_")
}

// ms renders a duration as milliseconds with 3 decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}

// speedup renders a ratio like "12.3x".
func speedup(base, other time.Duration) string {
	if other <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(base)/float64(other))
}

// corpusSpec is the shared end-to-end corpus at the given scale, shaped
// like the paper's benchmark (§4.2): Zipfian list sizes from 1K up to
// single-digit millions over a multi-million docID space.
//
// List lengths are floored at paper-like magnitudes even at small scales:
// the GPU/CPU trade-off the end-to-end experiments measure only exists
// when lists are long enough to amortize device overheads (Figure 12's
// <2x region is below ~10K elements), so scaling down shrinks the *number*
// of terms and queries, not the lists themselves.
func (c Config) corpusSpec() workload.CorpusSpec {
	return workload.CorpusSpec{
		NumDocs:    c.scaled(8_000_000, 2_000_000),
		NumTerms:   c.scaled(1_000, 50),
		MaxListLen: c.scaled(4_000_000, 1_000_000),
		MinListLen: c.scaled(1_000, 1_000),
		Alpha:      0.85,
		Codec:      index.CodecEF,
		Seed:       c.Seed,
	}
}

// BuildCorpus materializes the shared corpus (cached by callers that run
// several experiments).
func (c Config) BuildCorpus() (*workload.Corpus, error) {
	return workload.GenerateCorpus(c.corpusSpec())
}

// Scale2Queries returns the end-to-end query-log length at this scale
// (paper: 10,000 queries).
func (c Config) Scale2Queries() int {
	return c.scaled(10_000, 150)
}
