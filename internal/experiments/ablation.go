package experiments

import (
	"fmt"
	"time"

	"griffin/internal/core"
	"griffin/internal/sched"
	"griffin/internal/workload"
)

// AblationPoint is one crossover-threshold setting of the scheduler
// ablation: mean Griffin latency over the query log with that threshold.
type AblationPoint struct {
	Crossover float64
	MeanLat   time.Duration
}

// AblationResult sweeps the scheduler's crossover threshold, the design
// choice §3.2 justifies both empirically (Figure 8) and analytically (the
// 128-element block-size argument). The sweep shows 128 at or near the
// minimum: small thresholds push comparable-length intersections onto the
// CPU (losing GPU parallelism), large thresholds push skewed
// intersections onto the GPU (paying transfer and divergence for work the
// CPU skips outright).
type AblationResult struct {
	Points []AblationPoint
	// BestCrossover is the threshold with the lowest mean latency.
	BestCrossover float64
}

// RunCrossoverAblation evaluates Griffin under thresholds 16..1024.
func RunCrossoverAblation(cfg Config, c *workload.Corpus, queries []workload.Query) (AblationResult, *Table, error) {
	var res AblationResult
	t := &Table{
		Title:  "Ablation: scheduler crossover threshold (mean query ms)",
		Header: []string{"crossover", "mean latency"},
		Notes:  []string{"paper's choice: 128 (= compression block size)"},
	}
	// Trim the log for the sweep: each threshold runs the full pipeline.
	n := cfg.scaled(300, 60)
	if n > len(queries) {
		n = len(queries)
	}
	sample := queries[:n]

	best := time.Duration(1<<62 - 1)
	for _, crossover := range []float64{16, 32, 64, 128, 256, 512, 1024} {
		e, err := core.New(c.Index, core.Config{
			Mode:   core.Hybrid,
			CPU:    cfg.CPU,
			Device: cfg.Device,
			Policy: &sched.RatioPolicy{Crossover: crossover, Sticky: true},
		})
		if err != nil {
			return res, nil, err
		}
		var sum time.Duration
		for _, q := range sample {
			r, err := e.Search(q.Terms)
			if err != nil {
				return res, nil, err
			}
			sum += r.Stats.Latency
		}
		mean := sum / time.Duration(len(sample))
		res.Points = append(res.Points, AblationPoint{Crossover: crossover, MeanLat: mean})
		if mean < best {
			best = mean
			res.BestCrossover = crossover
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.0f", crossover), ms(mean)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("measured best: %.0f", res.BestCrossover))
	return res, t, nil
}

// PolicyAblationResult compares the paper's fixed ratio-128 rule against
// the cost-model-based scheduler (sched.CostPolicy), the "more complex
// scheduling" extension direction.
type PolicyAblationResult struct {
	RatioMean time.Duration
	CostMean  time.Duration
}

// RunPolicyAblation evaluates both scheduling policies over the query log.
func RunPolicyAblation(cfg Config, c *workload.Corpus, queries []workload.Query) (PolicyAblationResult, *Table, error) {
	var res PolicyAblationResult
	n := cfg.scaled(300, 60)
	if n > len(queries) {
		n = len(queries)
	}
	sample := queries[:n]

	run := func(policy sched.Policy) (time.Duration, error) {
		e, err := core.New(c.Index, core.Config{
			Mode: core.Hybrid, CPU: cfg.CPU, Device: cfg.Device, Policy: policy,
		})
		if err != nil {
			return 0, err
		}
		var sum time.Duration
		for _, q := range sample {
			r, err := e.Search(q.Terms)
			if err != nil {
				return 0, err
			}
			sum += r.Stats.Latency
		}
		return sum / time.Duration(len(sample)), nil
	}
	var err error
	if res.RatioMean, err = run(sched.NewRatioPolicy()); err != nil {
		return res, nil, err
	}
	costPolicy := sched.NewCostPolicy()
	costPolicy.GPU = *cfg.Device.Model()
	costPolicy.CPU = cfg.CPU
	if res.CostMean, err = run(costPolicy); err != nil {
		return res, nil, err
	}
	t := &Table{
		Title:  "Ablation: ratio-threshold vs cost-model scheduling (mean query ms)",
		Header: []string{"policy", "mean latency"},
		Rows: [][]string{
			{"ratio 128 (paper)", ms(res.RatioMean)},
			{"cost model", ms(res.CostMean)},
		},
		Notes: []string{
			"the ratio rule proxies the cost comparison; the explicit estimator also keeps tiny lists off the GPU",
		},
	}
	return res, t, nil
}

// MigrationAblationResult compares the paper's sticky migration rule with
// a non-sticky policy that re-evaluates every intersection.
type MigrationAblationResult struct {
	StickyMean    time.Duration
	NonStickyMean time.Duration
}

// RunMigrationAblation quantifies the sticky-migration design choice.
func RunMigrationAblation(cfg Config, c *workload.Corpus, queries []workload.Query) (MigrationAblationResult, *Table, error) {
	var res MigrationAblationResult
	n := cfg.scaled(300, 60)
	if n > len(queries) {
		n = len(queries)
	}
	sample := queries[:n]

	run := func(sticky bool) (time.Duration, error) {
		e, err := core.New(c.Index, core.Config{
			Mode:   core.Hybrid,
			CPU:    cfg.CPU,
			Device: cfg.Device,
			Policy: &sched.RatioPolicy{Crossover: sched.DefaultCrossover, Sticky: sticky},
		})
		if err != nil {
			return 0, err
		}
		var sum time.Duration
		for _, q := range sample {
			r, err := e.Search(q.Terms)
			if err != nil {
				return 0, err
			}
			sum += r.Stats.Latency
		}
		return sum / time.Duration(len(sample)), nil
	}
	var err error
	if res.StickyMean, err = run(true); err != nil {
		return res, nil, err
	}
	if res.NonStickyMean, err = run(false); err != nil {
		return res, nil, err
	}
	t := &Table{
		Title:  "Ablation: sticky vs re-evaluating migration (mean query ms)",
		Header: []string{"policy", "mean latency"},
		Rows: [][]string{
			{"sticky (paper)", ms(res.StickyMean)},
			{"re-evaluate each op", ms(res.NonStickyMean)},
		},
		Notes: []string{
			"ratios only grow as SvS progresses, so sticky loses little and saves transfers",
		},
	}
	return res, t, nil
}
