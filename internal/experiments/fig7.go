package experiments

import (
	"fmt"
	"time"

	"griffin/internal/kernels"
	"griffin/internal/rank"
)

// Fig7Point is one list-size group of Figure 7's ranking comparison.
type Fig7Point struct {
	ListSize  int
	CPUTime   time.Duration // CPU partial_sort
	BucketSel time.Duration // GPU bucketSelect
	RadixSort time.Duration // GPU radixSort
}

// Fig7Result reproduces §3.1.3's ranking-selection study: the CPU partial
// sort beats both GPU selectors on realistic result sizes because the
// small inputs cannot amortize GPU initialization and transfer.
type Fig7Result struct {
	Points []Fig7Point
}

// fig7Sizes mirrors the figure's x-axis (1K..10M), trimmed by scale.
func fig7Sizes(cfg Config) []int {
	all := []int{1_000, 10_000, 100_000, 1_000_000, 10_000_000}
	out := make([]int, 0, len(all))
	for _, s := range all {
		if s <= cfg.scaled(10_000_000, 100_000) {
			out = append(out, s)
		}
	}
	return out
}

// RunFig7 times the three ranking algorithms on candidate lists of each
// size (k = 10, as in top-10 retrieval).
func RunFig7(cfg Config) (Fig7Result, *Table, error) {
	rng := cfg.rng(7)
	cpuModel := cfg.CPU
	const k = 10

	var res Fig7Result
	t := &Table{
		Title:  "Figure 7: Ranking Performance Comparison (ms)",
		Header: []string{"list size", "CPU partial_sort", "GPU bucketSelect", "GPU radixSort"},
		Notes: []string{
			"paper: CPU fastest at every size; queries rarely exceed a few thousand matches",
		},
	}
	for _, n := range fig7Sizes(cfg) {
		docs := make([]kernels.ScoredDoc, n)
		for i := range docs {
			docs[i] = kernels.ScoredDoc{DocID: uint32(i), Score: float32(rng.NormFloat64() * 5)}
		}

		_, work := rank.TopKCPU(docs, k)
		cpuTime := cpuModel.Time(work)

		sBucket := cfg.Device.NewStream()
		if _, err := rank.TopKGPUBucket(sBucket, docs, k); err != nil {
			return res, nil, err
		}
		sRadix := cfg.Device.NewStream()
		if _, err := rank.TopKGPURadix(sRadix, docs, k); err != nil {
			return res, nil, err
		}

		p := Fig7Point{
			ListSize:  n,
			CPUTime:   cpuTime,
			BucketSel: sBucket.Elapsed(),
			RadixSort: sRadix.Elapsed(),
		}
		res.Points = append(res.Points, p)
		t.Rows = append(t.Rows, []string{
			fmtSize(n), ms(p.CPUTime), ms(p.BucketSel), ms(p.RadixSort),
		})
	}
	return res, t, nil
}

// fmtSize renders 1000 as "1K" etc., matching the paper's axis labels.
func fmtSize(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dK", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}
