package experiments

import (
	"fmt"
	"time"

	"griffin/internal/ef"
	"griffin/internal/hwmodel"
	"griffin/internal/kernels"
	"griffin/internal/pfordelta"
	"griffin/internal/workload"
)

// Fig12Point is one list-size group of the decompression study (§4.3.1,
// Figure 12): CPU PForDelta decode vs GPU Para-EF decode, plus the direct
// GPU PForDelta port the paper argues against (§3.1.1's claim, added as a
// fourth series).
type Fig12Point struct {
	ListSize   int
	CPUTime    time.Duration
	GPUTime    time.Duration
	GPUPFDTime time.Duration // the "poor match" direct port
	Speedup    float64
}

// Fig12Result reproduces the decompression comparison. The paper measures
// speedups below 2x on 1K/10K lists rising to ~11x-29.6x on 100K-10M
// lists as occupancy and overhead amortization improve.
type Fig12Result struct {
	Points []Fig12Point
}

// RunFig12 decompresses lists of each size group on both paths and
// reports average times and speedups.
func RunFig12(cfg Config) (Fig12Result, *Table, error) {
	rng := cfg.rng(12)
	cpuModel := cfg.CPU
	reps := cfg.scaled(5, 2)

	sizes := []int{1_000, 10_000, 100_000, 1_000_000, 10_000_000}
	maxSize := cfg.scaled(10_000_000, 100_000)

	var res Fig12Result
	t := &Table{
		Title: "Figure 12: Decompression Speed Comparison",
		Header: []string{"list size", "CPU PforDelta (ms)", "GPU Para-EF (ms)",
			"GPU PFD port (ms)", "speedup"},
		Notes: []string{
			"paper: speedup <2x at 1K-10K, ~11x to ~29.6x at 100K-10M",
			"GPU PFD port added: the direct port §3.1.1 calls a poor match (sequential exception chains)",
		},
	}
	for _, n := range sizes {
		if n > maxSize {
			break
		}
		var cpuSum, gpuSum, gpuPFDSum time.Duration
		for r := 0; r < reps; r++ {
			ids := workload.GenList(rng, n, uint32(n*30))
			pfd, err := pfordelta.Compress(ids)
			if err != nil {
				return res, nil, err
			}
			efl, err := ef.Compress(ids)
			if err != nil {
				return res, nil, err
			}

			// CPU path: decode every PForDelta block.
			buf := make([]uint32, pfordelta.BlockSize)
			var decoded int64
			for i := range pfd.Blocks {
				decoded += int64(pfd.Blocks[i].DecompressInto(buf))
			}
			cpuSum += cpuModel.Time(hwmodel.CPUWork{PFDDecodedElems: decoded})

			// GPU path: upload compressed, Para-EF decompress, deliver the
			// decompressed list back to the host (a standalone
			// decompression microbenchmark must return its output; inside
			// a query the data would instead stay on-device for the
			// intersection kernels).
			s := cfg.Device.NewStream()
			comp, err := kernels.UploadEF(s, efl)
			if err != nil {
				return res, nil, err
			}
			out, _, err := kernels.ParaEFDecompress(s, comp)
			if err != nil {
				return res, nil, err
			}
			s.D2H(out, int64(efl.N)*4)
			gpuSum += s.Elapsed()
			out.Free()
			comp.Free()

			// GPU PForDelta direct port (same protocol).
			sp := cfg.Device.NewStream()
			pfdComp, err := kernels.UploadPFD(sp, pfd)
			if err != nil {
				return res, nil, err
			}
			pfdOut, _, err := kernels.PFDDecompressGPU(sp, pfdComp)
			if err != nil {
				return res, nil, err
			}
			sp.D2H(pfdOut, int64(pfd.N)*4)
			gpuPFDSum += sp.Elapsed()
			pfdOut.Free()
			pfdComp.Free()
		}
		p := Fig12Point{
			ListSize:   n,
			CPUTime:    cpuSum / time.Duration(reps),
			GPUTime:    gpuSum / time.Duration(reps),
			GPUPFDTime: gpuPFDSum / time.Duration(reps),
		}
		p.Speedup = float64(p.CPUTime) / float64(p.GPUTime)
		res.Points = append(res.Points, p)
		t.Rows = append(t.Rows, []string{
			fmtSize(n), ms(p.CPUTime), ms(p.GPUTime), ms(p.GPUPFDTime),
			fmt.Sprintf("%.1fx", p.Speedup),
		})
	}
	return res, t, nil
}
