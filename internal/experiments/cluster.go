package experiments

import (
	"context"
	"fmt"
	"time"

	"griffin/internal/cluster"
	"griffin/internal/core"
	"griffin/internal/index"
	"griffin/internal/loadsim"
	"griffin/internal/workload"
)

// ShardSweepPoint is one shard count of the cluster scaling study.
type ShardSweepPoint struct {
	Shards int
	// IsolatedMean is the contention-free mean cluster latency: the
	// max-of-shards critical path with no queueing. Sharding splits every
	// posting list ~1/N, so this shrinks with the shard count.
	IsolatedMean time.Duration
	// Throughput is the drain rate under deep saturation: completed
	// queries per second of makespan. It grows with the shard count only
	// as far as per-query device work dominates the fixed per-kernel
	// costs each shard still pays (launch, DMA setup, occupancy ramp).
	Throughput float64
	// Mean and P99 are saturated sojourn times (queueing included).
	Mean time.Duration
	P99  time.Duration
	// MaxShardMean and MergeMean decompose the saturated Mean: cluster
	// latency = max over awaited shards + merge for every query, so
	// Mean = MaxShardMean + MergeMean.
	MaxShardMean time.Duration
	MergeMean    time.Duration
	// Utilization is the busiest replica device's utilization under load.
	Utilization float64
}

// ShardSweepResult is the scatter-gather scaling study over 1, 2, 4, and
// 8 document partitions of one corpus. Each shard is a full engine with
// a private simulated device; every query fans out to all shards and the
// per-shard top-k lists merge into the global top-k (byte-identical to
// the single-engine result — the parity guarantee tested in
// internal/cluster).
//
// Two regimes are measured. Contention-free, the critical path is the
// slowest shard's sub-query over ~1/N-length lists, so latency drops
// with the shard count. Under deep saturation, throughput is bounded by
// per-shard device occupancy per query: the variable (list-length) part
// shrinks 1/N but the fixed per-kernel part — launch overhead, DMA
// setup, and the occupancy ramp that prices sub-saturation launches at
// reduced throughput — repeats on every shard, so throughput grows
// monotonically but sublinearly. That asymmetry (sharding buys latency
// linearly, throughput only until fixed costs dominate) is the classic
// scatter-gather trade-off, and the corpus here uses uniformly long
// lists so the variable part is visible at all shard counts.
type ShardSweepResult struct {
	// Rate is the offered saturating load in queries/second, calibrated
	// far past the 1-shard drain rate.
	Rate   float64
	Points []ShardSweepPoint
}

// shardSweepCorpus generates the study corpus: uniformly long lists (no
// Zipf tail of tiny lists) so every shard's sub-query does real device
// work at every shard count.
func shardSweepCorpus(cfg Config) (*workload.Corpus, []workload.Query, error) {
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    cfg.scaled(4_000_000, 1_000_000),
		NumTerms:   cfg.scaled(40, 24),
		MaxListLen: cfg.scaled(2_000_000, 500_000),
		MinListLen: cfg.scaled(400_000, 100_000),
		Alpha:      0.6,
		Codec:      index.CodecEF,
		Seed:       cfg.Seed + 41,
	})
	if err != nil {
		return nil, nil, err
	}
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: cfg.scaled(400, 60), PopularityAlpha: 0.5, Seed: cfg.Seed + 43,
	})
	return c, queries, nil
}

// RunShardSweep measures contention-free latency and saturated
// throughput against shard count.
func RunShardSweep(cfg Config) (ShardSweepResult, *Table, error) {
	c, queries, err := shardSweepCorpus(cfg)
	if err != nil {
		return ShardSweepResult{}, nil, err
	}
	sample := make([][]string, len(queries))
	for i, q := range queries {
		sample[i] = q.Terms
	}

	mkCluster := func(shards int) (*cluster.Cluster, error) {
		ixs, err := workload.PartitionCorpus(c, shards)
		if err != nil {
			return nil, err
		}
		return cluster.New(ixs, cluster.Config{
			Engine: core.Config{Mode: core.Hybrid, CPU: cfg.CPU},
			TopK:   10,
			CPU:    cfg.CPU,
		})
	}

	res := ShardSweepResult{}
	t := &Table{
		Title: "Extension: shard-count sweep (scatter-gather scaling)",
		Header: []string{"shards", "isolated mean", "throughput (q/s)", "speedup",
			"sat. mean", "sat. P99", "max-shard mean", "merge mean", "hottest util"},
		Notes: []string{
			"each shard is a full engine with a private simulated device; queries scatter to all shards and gather-merge",
			"isolated mean: contention-free critical path (max over shards + merge) — shrinks with shards as lists split ~1/N",
			"saturated columns: Poisson load far past the 1-shard drain rate; throughput = completed/makespan",
			"throughput grows monotonically but sublinearly: fixed per-kernel costs repeat on every shard",
			"per-query results are byte-identical across shard counts (global statistics preserved by the partitioner)",
		},
	}

	var rate, base float64
	for _, shards := range []int{1, 2, 4, 8} {
		// Contention-free pass: fresh cluster, sequential searches.
		iso, err := mkCluster(shards)
		if err != nil {
			return ShardSweepResult{}, nil, err
		}
		var sum time.Duration
		for _, q := range sample {
			r, err := iso.Search(context.Background(), q)
			if err != nil {
				iso.Close()
				return ShardSweepResult{}, nil, err
			}
			sum += r.Stats.Latency
		}
		iso.Close()
		p := ShardSweepPoint{Shards: shards, IsolatedMean: sum / time.Duration(len(sample))}

		if rate == 0 {
			// Calibrate the saturating load off the 1-shard mean: deep
			// overload so completed/makespan measures drain capacity.
			rate = 24 / p.IsolatedMean.Seconds()
			res.Rate = rate
		}

		// Saturated pass: fresh cluster under the common Poisson load.
		cl, err := mkCluster(shards)
		if err != nil {
			return ShardSweepResult{}, nil, err
		}
		r, err := loadsim.RunCluster(cl, sample, loadsim.Spec{ArrivalRate: rate, Seed: cfg.Seed + 331})
		if err != nil {
			cl.Close()
			return ShardSweepResult{}, nil, err
		}
		cl.Close()
		p.Throughput = float64(r.Latencies.Count()) / r.Makespan.Seconds()
		p.Mean = r.Latencies.Mean()
		p.P99 = r.Latencies.Percentile(99)
		p.MaxShardMean = r.MaxShardMean
		p.MergeMean = r.MergeMean
		p.Utilization = r.GPUBusy
		if base == 0 {
			base = p.Throughput
		}
		res.Points = append(res.Points, p)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", shards),
			ms(p.IsolatedMean),
			fmt.Sprintf("%.0f", p.Throughput),
			fmt.Sprintf("%.2fx", p.Throughput/base),
			ms(p.Mean), ms(p.P99), ms(p.MaxShardMean), ms(p.MergeMean),
			fmt.Sprintf("%.2f", p.Utilization),
		})
	}
	return res, t, nil
}
