package experiments

import (
	"strings"
	"testing"
	"time"

	"griffin/internal/workload"
)

// testConfig is a fast, small-scale configuration for shape validation.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.02
	return cfg
}

func TestTable1Shape(t *testing.T) {
	res, table, err := RunTable1(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The reproduction target: EF compresses better than PForDelta, both
	// well above 1x (paper: 3.3 vs 4.6).
	if res.EFRatio <= res.PFDRatio {
		t.Fatalf("EF ratio %.2f not better than PFD %.2f", res.EFRatio, res.PFDRatio)
	}
	if res.PFDRatio < 1.5 || res.EFRatio < 2 {
		t.Fatalf("ratios implausibly low: pfd=%.2f ef=%.2f", res.PFDRatio, res.EFRatio)
	}
	if len(table.Rows) != 1 {
		t.Fatal("table shape wrong")
	}
}

func TestFig7Shape(t *testing.T) {
	cfg := testConfig()
	res, _, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("only %d size groups", len(res.Points))
	}
	// Figure 7's conclusion: CPU partial sort wins at small result sizes
	// (the realistic regime; queries rarely exceed a few thousand).
	small := res.Points[0]
	if small.CPUTime >= small.BucketSel || small.CPUTime >= small.RadixSort {
		t.Fatalf("CPU not fastest at %d candidates: cpu=%v bucket=%v radix=%v",
			small.ListSize, small.CPUTime, small.BucketSel, small.RadixSort)
	}
	// bucketSelect beats brute-force radix at the largest size.
	large := res.Points[len(res.Points)-1]
	if large.BucketSel >= large.RadixSort {
		t.Fatalf("bucketSelect %v not faster than radixSort %v at %d",
			large.BucketSel, large.RadixSort, large.ListSize)
	}
}

func TestFig8CrossoverShape(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.1 // crossover needs lists long enough to matter
	res, table, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 7 {
		t.Fatalf("expected 7 ratio groups, got %d", len(res.Points))
	}
	// GPU wins at low ratios.
	if res.Points[0].GPUTime >= res.Points[0].CPUTime {
		t.Fatalf("[1,16): GPU %v not faster than CPU %v",
			res.Points[0].GPUTime, res.Points[0].CPUTime)
	}
	// CPU wins at the top ratio group.
	top := res.Points[len(res.Points)-1]
	if top.CPUTime >= top.GPUTime {
		t.Fatalf("[512,1024): CPU %v not faster than GPU %v", top.CPUTime, top.GPUTime)
	}
	// The crossover lands in one of the middle groups (paper: at 128).
	switch res.CrossoverGroup {
	case "[64,128)", "[128,256)", "[256,512)":
	default:
		t.Fatalf("crossover at %q, want a middle group near 128\n%s",
			res.CrossoverGroup, table.Render())
	}
}

func TestFig10Fig11Shapes(t *testing.T) {
	cfg := testConfig()
	c, err := cfg.BuildCorpus()
	if err != nil {
		t.Fatal(err)
	}
	res10, _, err := RunFig10(cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	if res10.CDF[len(res10.CDF)-1] != 1 {
		t.Fatal("CDF must reach 1")
	}
	for i := 1; i < len(res10.CDF); i++ {
		if res10.CDF[i] < res10.CDF[i-1] {
			t.Fatal("CDF not monotone")
		}
	}

	res11, _, queries, err := RunFig11(cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) == 0 {
		t.Fatal("no queries generated")
	}
	// Anchors of Figure 11 within tolerance.
	if f := res11.Fractions[3]; f < 0.25 || f > 0.41 {
		t.Fatalf("P(3 terms) = %.2f, want ~0.33", f)
	}
	if f := res11.Fractions[2]; f < 0.19 || f > 0.35 {
		t.Fatalf("P(2 terms) = %.2f, want ~0.27", f)
	}
}

func TestFig12Shape(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.1
	res, table, err := RunFig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("only %d size groups", len(res.Points))
	}
	// Speedup grows with list size (overhead amortization + occupancy).
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Speedup <= res.Points[i-1].Speedup {
			t.Fatalf("speedup not monotone: %v\n%s", res.Points, table.Render())
		}
	}
	// The 1K group is in the paper's <2x regime.
	if res.Points[0].Speedup >= 2 {
		t.Fatalf("1K speedup %.1fx, paper says <2x", res.Points[0].Speedup)
	}
	// The largest group shows a large speedup (paper: up to 29.6x at 10M;
	// at this scale 1M should already exceed ~5x).
	last := res.Points[len(res.Points)-1]
	if last.Speedup < 5 {
		t.Fatalf("%s speedup only %.1fx\n%s", fmtSize(last.ListSize), last.Speedup, table.Render())
	}
}

func TestFig13Shape(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.1
	res, table, err := RunFig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatal("too few size groups")
	}
	last := res.Points[len(res.Points)-1]
	// Figure 13 on long comparable lists: GPU merge fastest of all four;
	// CPU merge much slower; GPU merge also beats GPU binary.
	if last.GPUMerge >= last.CPUMerge {
		t.Fatalf("GPU merge %v not faster than CPU merge %v\n%s",
			last.GPUMerge, last.CPUMerge, table.Render())
	}
	if last.GPUMerge >= last.GPUBinary {
		t.Fatalf("GPU merge %v not faster than GPU binary %v\n%s",
			last.GPUMerge, last.GPUBinary, table.Render())
	}
	if float64(last.CPUMerge)/float64(last.GPUMerge) < 3 {
		t.Fatalf("GPU merge speedup over CPU merge only %.1fx",
			float64(last.CPUMerge)/float64(last.GPUMerge))
	}
}

func TestFig14Fig15Shapes(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.06
	c, err := cfg.BuildCorpus()
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 120, PopularityAlpha: 0.45, Seed: cfg.Seed + 11,
	})
	res14, t14, err := RunFig14(cfg, c, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(res14.Points) < 3 {
		t.Fatal("too few term groups")
	}
	// Headline shape: Griffin at least matches both baselines on average.
	if res14.SpeedupVsCPU < 1.0 {
		t.Fatalf("Griffin slower than CPU-only: %.2fx\n%s", res14.SpeedupVsCPU, t14.Render())
	}
	if res14.SpeedupVsGPU < 0.95 {
		t.Fatalf("Griffin slower than GPU-only: %.2fx\n%s", res14.SpeedupVsGPU, t14.Render())
	}

	res15, _ := RunFig15(res14.CPURecorder, res14.GriffinRecorder)
	if len(res15.Points) != 5 {
		t.Fatal("expected 5 percentiles")
	}
	// Tail speedups: every percentile >= 1 (Griffin never worse).
	for _, p := range res15.Points {
		if p.Speedup < 1.0 {
			t.Fatalf("P%g speedup %.2fx < 1", p.Percentile, p.Speedup)
		}
	}
	// The P99 speedup should be at least the P80 speedup (the paper's
	// "tail gains more" effect); allow slack for small sample sizes.
	if res15.Points[3].Speedup < res15.Points[0].Speedup*0.7 {
		t.Fatalf("tail effect inverted: P80 %.1fx vs P99 %.1fx",
			res15.Points[0].Speedup, res15.Points[3].Speedup)
	}
}

func TestAblationShapes(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.06
	c, err := cfg.BuildCorpus()
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 60, PopularityAlpha: 0.45, Seed: cfg.Seed + 11,
	})
	abl, table, err := RunCrossoverAblation(cfg, c, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(abl.Points) != 7 {
		t.Fatal("expected 7 thresholds")
	}
	// The paper's 128 should be competitive: within 25% of the best.
	var at128 time.Duration
	var best time.Duration = 1<<62 - 1
	for _, p := range abl.Points {
		if p.Crossover == 128 {
			at128 = p.MeanLat
		}
		if p.MeanLat < best {
			best = p.MeanLat
		}
	}
	if float64(at128) > float64(best)*1.25 {
		t.Fatalf("crossover 128 (%.3v) >25%% worse than best (%v)\n%s", at128, best, table.Render())
	}

	mig, _, err := RunMigrationAblation(cfg, c, queries)
	if err != nil {
		t.Fatal(err)
	}
	if mig.StickyMean <= 0 || mig.NonStickyMean <= 0 {
		t.Fatal("ablation produced zero latencies")
	}
}

func TestTableRender(t *testing.T) {
	table := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n1"},
	}
	out := table.Render()
	for _, want := range []string{"== T ==", "a", "bb", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
