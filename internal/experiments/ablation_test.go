package experiments

import (
	"testing"
)

func TestPolicyAblationShape(t *testing.T) {
	cfg, c, queries := extensionFixtures(t)
	res, table, err := RunPolicyAblation(cfg, c, queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.RatioMean <= 0 || res.CostMean <= 0 {
		t.Fatalf("zero latencies: %+v", res)
	}
	// The two policies proxy the same trade-off: neither should be more
	// than 50% worse than the other on a realistic query mix.
	hi, lo := res.RatioMean, res.CostMean
	if hi < lo {
		hi, lo = lo, hi
	}
	if float64(hi) > float64(lo)*1.5 {
		t.Fatalf("policies diverge too much: ratio %v vs cost %v\n%s",
			res.RatioMean, res.CostMean, table.Render())
	}
}

func TestTableCSVAndSlug(t *testing.T) {
	table := &Table{
		Title:  "Figure 99: Something, with commas",
		Header: []string{"a", "b,c"},
		Rows:   [][]string{{"1", "x\"y"}},
		Notes:  []string{"note"},
	}
	csv := table.CSV()
	want := "a,\"b,c\"\n1,\"x\"\"y\"\n# note\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
	if got := table.Slug(); got != "figure_99" {
		t.Fatalf("Slug = %q", got)
	}
}
