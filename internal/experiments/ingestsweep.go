package experiments

import (
	"fmt"
	"time"

	"griffin/internal/core"
	"griffin/internal/index"
	"griffin/internal/ingest"
	"griffin/internal/loadsim"
	"griffin/internal/workload"
)

// IngestSweepPoint compares one write fraction with background merging
// off and on, under the same arrival process.
type IngestSweepPoint struct {
	// WriteFraction is the probability an arrival is a write; the
	// effective ingest rate is IngestRate (achieved writes per second
	// of makespan on the merge arm).
	WriteFraction float64
	IngestRate    float64
	Writes        int
	// MeanOff/P99Off and MeanOn/P99On are read sojourn times with
	// merging off (delta grows unboundedly; every read pays the
	// widening reconcile cost) and on (threshold merges re-encode the
	// delta on the shared device, contending with reads).
	MeanOff time.Duration
	P99Off  time.Duration
	MeanOn  time.Duration
	P99On   time.Duration
	// AvailabilityOff/On are successful reads over read attempts.
	AvailabilityOff float64
	AvailabilityOn  float64
	// Merges and MergeDevice/MergeCPU quantify the merge arm's
	// interference: commits and the simulated device/CPU time their
	// re-encoding occupied.
	Merges      int64
	MergeDevice time.Duration
	MergeCPU    time.Duration
	// LagOff/LagOn are residual unmerged delta records at the end of
	// the run; PeakOff/PeakOn the high-water marks.
	LagOff  int
	LagOn   int
	PeakOff int
	PeakOn  int
}

// IngestSweepResult is the live-mutation study: the same Poisson stream
// of mixed reads and writes driven through a live engine with
// background merging disabled and enabled at increasing write
// fractions.
//
// The mechanism under test: without merging, reads stay snapshot-
// isolated but each one reconciles an ever-growing delta on the host
// (shadow filtering, posting unions, stat overrides), so read latency
// degrades with total ingested volume. With threshold merging, the
// delta is periodically re-encoded into the compressed main segment on
// the same device timelines queries use — reads arriving during a
// merge queue behind its uploads and decompress work, a visible
// interference burst, but the steady-state reconcile cost stays
// bounded. Availability must hold through both regimes: every read
// returns a consistent pinned snapshot regardless of concurrent
// mutation or merge commits.
type IngestSweepResult struct {
	// Rate is the offered total arrival rate (reads + writes) per
	// second, calibrated as moderate load off the contention-free mean.
	Rate float64
	// Threshold is the merge-arm delta size that makes a merge due.
	Threshold int
	Points    []IngestSweepPoint
}

// ingestSweepCorpus builds the mixed-workload corpus and read log.
func ingestSweepCorpus(cfg Config) (*workload.Corpus, []workload.Query, error) {
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    cfg.scaled(2_000_000, 200_000),
		NumTerms:   cfg.scaled(40, 24),
		MaxListLen: cfg.scaled(1_000_000, 60_000),
		MinListLen: cfg.scaled(200_000, 10_000),
		Alpha:      0.6,
		Codec:      index.CodecEF,
		Seed:       cfg.Seed + 81,
	})
	if err != nil {
		return nil, nil, err
	}
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: cfg.scaled(400, 80), PopularityAlpha: 0.5, Seed: cfg.Seed + 83,
	})
	return c, queries, nil
}

// ingestSweepScript generates a sequentially valid mutation script:
// adds of fresh documents built from query-log terms, interleaved with
// updates and deletes of documents the script already added.
func ingestSweepScript(cfg Config, queries []workload.Query, base uint32, n int) []loadsim.Mutation {
	rng := cfg.rng(87)
	doc := func() []string {
		t := make([]string, 0, 8)
		for len(t) < 4+rng.Intn(5) {
			q := queries[rng.Intn(len(queries))]
			t = append(t, q.Terms[rng.Intn(len(q.Terms))])
		}
		return t
	}
	muts := make([]loadsim.Mutation, 0, n)
	var live []uint32
	next := base
	for len(muts) < n {
		switch r := rng.Float64(); {
		case r < 0.7 || len(live) == 0:
			muts = append(muts, loadsim.Mutation{Kind: loadsim.MutAdd, DocID: next, Tokens: doc()})
			live = append(live, next)
			next++
		case r < 0.85:
			muts = append(muts, loadsim.Mutation{Kind: loadsim.MutUpdate, DocID: live[rng.Intn(len(live))], Tokens: doc()})
		default:
			i := rng.Intn(len(live))
			muts = append(muts, loadsim.Mutation{Kind: loadsim.MutDelete, DocID: live[i]})
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return muts
}

// RunIngestSweep measures query p99 against ingest rate with and
// without background merging (BENCH_PR8's mixed-workload study).
func RunIngestSweep(cfg Config) (IngestSweepResult, *Table, error) {
	c, queries, err := ingestSweepCorpus(cfg)
	if err != nil {
		return IngestSweepResult{}, nil, err
	}
	n := cfg.scaled(400, 80)
	if n > len(queries) {
		n = len(queries)
	}
	sample := make([][]string, n)
	for i, q := range queries[:n] {
		sample[i] = q.Terms
	}
	mutCount := cfg.scaled(480, 96)
	muts := ingestSweepScript(cfg, queries, uint32(c.Index.NumDocs), mutCount)
	threshold := mutCount / 8
	if threshold < 16 {
		threshold = 16
	}

	mkEngine := func(merge bool) (*ingest.Engine, error) {
		ecfg := ingest.Config{
			Engine: core.Config{Mode: core.Hybrid, CPU: cfg.CPU, Device: cfg.Device},
		}
		if merge {
			ecfg.MergeThreshold = threshold
		}
		return ingest.New(c.Index, ecfg)
	}

	// Calibrate moderate load off the contention-free mean: enough
	// concurrency that merge bursts queue reads, not so much that the
	// no-merge arm's growing reconcile cost diverges.
	probe, err := mkEngine(false)
	if err != nil {
		return IngestSweepResult{}, nil, err
	}
	var sum time.Duration
	for _, q := range sample {
		r, err := probe.Search(q)
		if err != nil {
			probe.Close()
			return IngestSweepResult{}, nil, err
		}
		sum += r.Stats.Latency
	}
	probe.Close()
	rate := 8 / (sum / time.Duration(len(sample))).Seconds()

	res := IngestSweepResult{Rate: rate, Threshold: threshold}
	t := &Table{
		Title: "Extension: live ingest mixed-workload sweep (query p99 vs ingest rate)",
		Header: []string{"write frac", "ingest (w/s)", "p99 no-merge", "p99 merge", "mean merge",
			"avail", "merges", "merge dev", "lag off", "lag on"},
		Notes: []string{
			"one Poisson stream of mixed reads+writes per point; both arms replay the identical arrival process (the engine never consumes the rng)",
			fmt.Sprintf("offered load %.0f ops/s total (moderate: 8x the contention-free mean); ingest (w/s) = achieved writes/makespan on the merge arm", rate),
			fmt.Sprintf("merge arm commits a threshold merge (delta >= %d records) at its trigger time on the shared device timelines — reads queue behind its uploads/decompress", threshold),
			"no-merge arm lets the delta grow unboundedly: reads stay correct under snapshot isolation but pay the widening host-side reconcile cost",
			"avail = successful reads / read attempts on the merge arm; every read pins a consistent (segment, delta) snapshot across merge commits",
			"lag columns are residual unmerged delta records at end of run (the /healthz freshness signal)",
		},
	}

	for _, wf := range []float64{0, 0.2, 0.4, 0.6} {
		p := IngestSweepPoint{WriteFraction: wf}
		spec := loadsim.MixedSpec{ArrivalRate: rate, WriteFraction: wf, Seed: cfg.Seed + 457}
		for _, merge := range []bool{false, true} {
			e, err := mkEngine(merge)
			if err != nil {
				return IngestSweepResult{}, nil, err
			}
			spec.Merge = merge
			r, err := loadsim.RunMixed(e, sample, muts, spec)
			if err != nil {
				e.Close()
				return IngestSweepResult{}, nil, err
			}
			e.Close()
			if merge {
				p.MeanOn = r.Latencies.Mean()
				p.P99On = r.Latencies.Percentile(99)
				p.AvailabilityOn = r.Availability()
				p.Writes = r.Writes
				if r.Makespan > 0 {
					p.IngestRate = float64(r.Writes) / r.Makespan.Seconds()
				}
				p.Merges = r.Stats.Merges
				p.MergeDevice = r.Stats.MergeDevice
				p.MergeCPU = r.Stats.MergeCPU
				p.LagOn = r.Stats.DeltaDocs
				p.PeakOn = r.DeltaPeak
			} else {
				p.MeanOff = r.Latencies.Mean()
				p.P99Off = r.Latencies.Percentile(99)
				p.AvailabilityOff = r.Availability()
				p.LagOff = r.Stats.DeltaDocs
				p.PeakOff = r.DeltaPeak
			}
		}
		res.Points = append(res.Points, p)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", wf),
			fmt.Sprintf("%.0f", p.IngestRate),
			ms(p.P99Off), ms(p.P99On), ms(p.MeanOn),
			fmt.Sprintf("%.3f", p.AvailabilityOn),
			fmt.Sprintf("%d", p.Merges),
			ms(p.MergeDevice),
			fmt.Sprintf("%d", p.LagOff),
			fmt.Sprintf("%d", p.LagOn),
		})
	}
	return res, t, nil
}
