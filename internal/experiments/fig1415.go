package experiments

import (
	"fmt"
	"time"

	"griffin/internal/core"
	"griffin/internal/stats"
	"griffin/internal/workload"
)

// Fig14Point is one term-count group of the end-to-end comparison (§4.4,
// Figure 14): mean query latency for CPU-only, GPU-only, and Griffin.
type Fig14Point struct {
	Terms    int // 7 means ">6"
	Queries  int
	CPUOnly  time.Duration
	GPUOnly  time.Duration
	PerQuery time.Duration // Figure 1(c): static whole-query placement
	Griffin  time.Duration
}

// Fig14Result reproduces the end-to-end latency comparison, extended with
// the Figure 1(c) per-query static-hybrid baseline the paper's related
// work contrasts against (Ding et al.). The paper measures Griffin ~10x
// faster than CPU-only and ~1.5x faster than GPU-only on average.
type Fig14Result struct {
	Points []Fig14Point
	// Mean speedups across all queries.
	SpeedupVsCPU      float64
	SpeedupVsGPU      float64
	SpeedupVsPerQuery float64
	// Recorders feed the Figure 15 tail study from the same run.
	CPURecorder     *stats.LatencyRecorder
	GriffinRecorder *stats.LatencyRecorder
}

// RunFig14 runs the query log under all three engine modes and groups
// mean latency by term count.
func RunFig14(cfg Config, c *workload.Corpus, queries []workload.Query) (Fig14Result, *Table, error) {
	cpuE, err := core.New(c.Index, core.Config{Mode: core.CPUOnly, CPU: cfg.CPU})
	if err != nil {
		return Fig14Result{}, nil, err
	}
	gpuE, err := core.New(c.Index, core.Config{Mode: core.GPUOnly, CPU: cfg.CPU, Device: cfg.Device})
	if err != nil {
		return Fig14Result{}, nil, err
	}
	pqE, err := core.New(c.Index, core.Config{Mode: core.PerQueryHybrid, CPU: cfg.CPU, Device: cfg.Device})
	if err != nil {
		return Fig14Result{}, nil, err
	}
	hybE, err := core.New(c.Index, core.Config{Mode: core.Hybrid, CPU: cfg.CPU, Device: cfg.Device})
	if err != nil {
		return Fig14Result{}, nil, err
	}

	type agg struct {
		n                 int
		cpu, gpu, pq, hyb time.Duration
	}
	groups := map[int]*agg{}
	res := Fig14Result{
		CPURecorder:     stats.NewLatencyRecorder(len(queries)),
		GriffinRecorder: stats.NewLatencyRecorder(len(queries)),
	}
	var cpuTot, gpuTot, pqTot, hybTot time.Duration
	for _, q := range queries {
		rc, err := cpuE.Search(q.Terms)
		if err != nil {
			return res, nil, err
		}
		rg, err := gpuE.Search(q.Terms)
		if err != nil {
			return res, nil, err
		}
		rp, err := pqE.Search(q.Terms)
		if err != nil {
			return res, nil, err
		}
		rh, err := hybE.Search(q.Terms)
		if err != nil {
			return res, nil, err
		}
		k := len(q.Terms)
		if k > 6 {
			k = 7
		}
		g := groups[k]
		if g == nil {
			g = &agg{}
			groups[k] = g
		}
		g.n++
		g.cpu += rc.Stats.Latency
		g.gpu += rg.Stats.Latency
		g.pq += rp.Stats.Latency
		g.hyb += rh.Stats.Latency
		cpuTot += rc.Stats.Latency
		gpuTot += rg.Stats.Latency
		pqTot += rp.Stats.Latency
		hybTot += rh.Stats.Latency
		res.CPURecorder.Record(rc.Stats.Latency)
		res.GriffinRecorder.Record(rh.Stats.Latency)
	}

	t := &Table{
		Title:  "Figure 14: End-to-End Query Latency by #Terms (mean ms)",
		Header: []string{"#terms", "queries", "CPU only", "GPU only", "per-query (1c)", "Griffin"},
		Notes: []string{
			"paper: Griffin ~10x over CPU-only, ~1.5x over GPU-only on average",
			"per-query (1c) = static whole-query placement (Ding et al.), added baseline",
		},
	}
	for _, k := range []int{2, 3, 4, 5, 6, 7} {
		g := groups[k]
		if g == nil || g.n == 0 {
			continue
		}
		p := Fig14Point{
			Terms:    k,
			Queries:  g.n,
			CPUOnly:  g.cpu / time.Duration(g.n),
			GPUOnly:  g.gpu / time.Duration(g.n),
			PerQuery: g.pq / time.Duration(g.n),
			Griffin:  g.hyb / time.Duration(g.n),
		}
		res.Points = append(res.Points, p)
		label := fmt.Sprintf("%d", k)
		if k == 7 {
			label = ">6"
		}
		t.Rows = append(t.Rows, []string{
			label, fmt.Sprintf("%d", g.n),
			ms(p.CPUOnly), ms(p.GPUOnly), ms(p.PerQuery), ms(p.Griffin),
		})
	}
	if hybTot > 0 {
		res.SpeedupVsCPU = float64(cpuTot) / float64(hybTot)
		res.SpeedupVsGPU = float64(gpuTot) / float64(hybTot)
		res.SpeedupVsPerQuery = float64(pqTot) / float64(hybTot)
		t.Notes = append(t.Notes, fmt.Sprintf(
			"measured mean speedup: %.1fx vs CPU-only, %.2fx vs GPU-only, %.2fx vs per-query",
			res.SpeedupVsCPU, res.SpeedupVsGPU, res.SpeedupVsPerQuery))
	}
	return res, t, nil
}

// Fig15Point is one percentile of the tail-latency study (§4.5, Figure 15).
type Fig15Point struct {
	Percentile float64
	CPUOnly    time.Duration
	Griffin    time.Duration
	Speedup    float64
}

// Fig15Result reproduces the tail-latency reduction: the paper measures
// 6.6x / 8.3x / 10.4x / 16.1x / 26.8x at P80/P90/P95/P99/P99.9, the
// speedup growing with the percentile because the heaviest queries gain
// the most from the GPU.
type Fig15Result struct {
	Points []Fig15Point
}

// RunFig15 derives the tail comparison from Figure 14's recorders.
func RunFig15(cpuRec, hybRec *stats.LatencyRecorder) (Fig15Result, *Table) {
	var res Fig15Result
	t := &Table{
		Title:  "Figure 15: Tail Latency Reduction",
		Header: []string{"percentile", "CPU only (ms)", "Griffin (ms)", "speedup"},
		Notes:  []string{"paper: 6.6x/8.3x/10.4x/16.1x/26.8x at P80/P90/P95/P99/P99.9"},
	}
	for _, p := range []float64{80, 90, 95, 99, 99.9} {
		cp := cpuRec.Percentile(p)
		hp := hybRec.Percentile(p)
		pt := Fig15Point{Percentile: p, CPUOnly: cp, Griffin: hp}
		if hp > 0 {
			pt.Speedup = float64(cp) / float64(hp)
		}
		res.Points = append(res.Points, pt)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("P%g", p), ms(cp), ms(hp), fmt.Sprintf("%.1fx", pt.Speedup),
		})
	}
	return res, t
}
