package experiments

import "testing"

// The batch sweep's acceptance shape: batching lifts saturated
// throughput at every shard count (≥1.3x at 4 shards, the PR criterion)
// while isolated latency does not move at all — contention-free queries
// lead rebate-free batches of one, so both arms run the identical
// timeline. The simulation is deterministic, so these are exact
// assertions, not tolerances.
func TestBatchSweepShape(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.05
	res, table, err := RunBatchSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("expected 4 sweep points, got %d", len(res.Points))
	}
	if res.Rate <= 0 {
		t.Fatalf("no calibrated rate: %v", res.Rate)
	}
	if res.Window <= 0 || res.Max <= 0 {
		t.Fatalf("sweep defaults not applied: window %v max %d", res.Window, res.Max)
	}
	for _, p := range res.Points {
		if p.IsolatedOn != p.IsolatedOff {
			t.Fatalf("%d shards: batching moved isolated latency %v -> %v\n%s",
				p.Shards, p.IsolatedOff, p.IsolatedOn, table.Render())
		}
		if p.ThroughputOn <= p.ThroughputOff {
			t.Fatalf("%d shards: batching did not lift throughput (%.0f vs %.0f)\n%s",
				p.Shards, p.ThroughputOn, p.ThroughputOff, table.Render())
		}
		if p.Shards >= 4 && p.Gain < 1.3 {
			t.Fatalf("%d shards: gain %.2fx below the 1.3x criterion\n%s",
				p.Shards, p.Gain, table.Render())
		}
		if p.MeanBatch <= 1.5 {
			t.Fatalf("%d shards: mean batch %.2f — the stage barely coalesced\n%s",
				p.Shards, p.MeanBatch, table.Render())
		}
		if p.SavedPerQuery <= 0 {
			t.Fatalf("%d shards: no per-query saving\n%s", p.Shards, table.Render())
		}
		if p.WindowFlushes+p.SizeFlushes == 0 {
			t.Fatalf("%d shards: no batch ever flushed\n%s", p.Shards, table.Render())
		}
	}
}
