package experiments

import "testing"

func TestEngineLoadStudyShape(t *testing.T) {
	cfg, c, queries := extensionFixtures(t)
	res, table, err := RunEngineLoadStudy(cfg, c, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("expected 3 load points, got %d", len(res.Points))
	}
	if res.MeanService <= 0 {
		t.Fatal("no calibration mean")
	}
	light, heavy := res.Points[0], res.Points[len(res.Points)-1]
	// The static engine's tail must degrade past device saturation...
	if heavy.StaticP99 <= light.StaticP99 {
		t.Fatalf("static P99 did not degrade with load: %v -> %v\n%s",
			light.StaticP99, heavy.StaticP99, table.Render())
	}
	if heavy.StaticWait == 0 {
		t.Fatalf("overloaded static engine charged no queueing delay\n%s", table.Render())
	}
	// ...while the backlog-aware spill keeps it bounded (the loadsim
	// RunAdaptive shape, reproduced by the real engine).
	if heavy.SpillP99 >= heavy.StaticP99 {
		t.Fatalf("spill P99 %v not below static P99 %v under overload\n%s",
			heavy.SpillP99, heavy.StaticP99, table.Render())
	}
	if heavy.Utilization <= 0 || heavy.Utilization > 1 {
		t.Fatalf("device utilization %v out of range\n%s", heavy.Utilization, table.Render())
	}
}

func TestStreamSweepMonotone(t *testing.T) {
	cfg, c, queries := extensionFixtures(t)
	res, table, err := RunStreamSweep(cfg, c, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("expected 3 sweep points, got %d", len(res.Points))
	}
	for i := 1; i < len(res.Points); i++ {
		prev, cur := res.Points[i-1], res.Points[i]
		if cur.Streams <= prev.Streams {
			t.Fatalf("sweep not ascending in streams: %+v", res.Points)
		}
		if cur.P99 > prev.P99 {
			t.Fatalf("P99 not monotone non-increasing: %d streams -> %v, %d streams -> %v\n%s",
				prev.Streams, prev.P99, cur.Streams, cur.P99, table.Render())
		}
		if cur.MeanWait > prev.MeanWait {
			t.Fatalf("mean wait grew with lanes: %v -> %v\n%s", prev.MeanWait, cur.MeanWait, table.Render())
		}
	}
	// The offered load must actually stress the single-lane runtime, and
	// the extra lanes must relieve it: strict improvement end to end.
	if res.Points[0].MeanWait == 0 {
		t.Fatalf("single-lane sweep point shows no queueing\n%s", table.Render())
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.P99 >= first.P99 {
		t.Fatalf("4 lanes did not improve P99 over 1 lane: %v -> %v\n%s",
			first.P99, last.P99, table.Render())
	}
}
