package experiments

import "testing"

// The crash sweep's acceptance shape: the sync arm recovers every
// acknowledged write at every cadence and every seeded crash point —
// 100% survival is the durability contract, not a statistic — the
// deferred arm never beats it, checkpoints only exist on cadenced rows
// and bound the replayed suffix, and the injected torn tails are
// actually hit and truncated.
func TestCrashSweepShape(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.05
	res, table, err := RunCrashSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 || res.Mutations <= 0 {
		t.Fatalf("expected 3 cadences over a scripted workload, got %+v", res)
	}
	var maxReplayNone, maxReplayDense float64
	for _, p := range res.Points {
		if p.Acked == 0 {
			t.Fatalf("cadence %d: no mutation acknowledged\n%s", p.CheckpointEvery, table.Render())
		}
		if p.Survival != 1.0 {
			t.Fatalf("cadence %d: sync-arm survival %.4f, want exactly 1.0 — an acknowledged write was lost\n%s",
				p.CheckpointEvery, p.Survival, table.Render())
		}
		if p.DeferredSurvival > p.Survival {
			t.Fatalf("cadence %d: deferred sync outlived sync-every-append (%.4f)\n%s",
				p.CheckpointEvery, p.DeferredSurvival, table.Render())
		}
		if p.TornTrials == 0 || p.TruncatedBytes == 0 {
			t.Fatalf("cadence %d: torn-tail injection never hit (trials %d, bytes %d)\n%s",
				p.CheckpointEvery, p.TornTrials, p.TruncatedBytes, table.Render())
		}
		if p.MeanRecovery <= 0 {
			t.Fatalf("cadence %d: recovery time not measured\n%s", p.CheckpointEvery, table.Render())
		}
		switch {
		case p.CheckpointEvery == 0:
			if p.Checkpoints != 0 {
				t.Fatalf("cadence none committed %d checkpoints\n%s", p.Checkpoints, table.Render())
			}
			if p.DeferredSurvival != 0 {
				t.Fatalf("cadence none: deferred arm survived %.4f with nothing ever synced\n%s",
					p.DeferredSurvival, table.Render())
			}
			maxReplayNone = p.MeanReplay
		default:
			if p.Checkpoints == 0 {
				t.Fatalf("cadence %d committed no checkpoints\n%s", p.CheckpointEvery, table.Render())
			}
			if p.DeferredSurvival == 0 {
				t.Fatalf("cadence %d: deferred arm recovered nothing despite checkpoints\n%s",
					p.CheckpointEvery, table.Render())
			}
			if p.CheckpointEvery == res.Mutations/16 {
				maxReplayDense = p.MeanReplay
			}
		}
	}
	if maxReplayDense >= maxReplayNone {
		t.Fatalf("dense checkpoints did not shorten the replayed suffix (%.1f vs %.1f)\n%s",
			maxReplayDense, maxReplayNone, table.Render())
	}
}
