package experiments

import (
	"context"
	"fmt"
	"time"

	"griffin/internal/cluster"
	"griffin/internal/core"
	"griffin/internal/index"
	"griffin/internal/loadsim"
	"griffin/internal/overload"
	"griffin/internal/workload"
)

// OverloadPoint is one offered-load multiple of the saturation sweep,
// measured twice over the identical Poisson workload: hardened (deadline
// propagation, admission shedding, retry/hedge budget, brownout) and
// baseline (every control off, queries only scored against the deadline
// after the fact).
type OverloadPoint struct {
	// Multiplier is the offered load as a multiple of the calibrated
	// saturation rate; Rate the resulting queries/second.
	Multiplier float64
	Rate       float64
	// Goodput is the hardened arm's interactive goodput (complete,
	// on-deadline answers over offered interactive queries);
	// BatchGoodput the same for batch traffic (shed first under
	// brownout); BaselineGoodput the baseline arm's interactive goodput.
	Goodput         float64
	BatchGoodput    float64
	BaselineGoodput float64
	// P99/BaselineP99 are answered-query sojourn tails.
	P99         time.Duration
	BaselineP99 time.Duration
	// Sheds counts the hardened arm's overload refusals (admission sheds,
	// batch brownout sheds, deadline-infeasible rejections);
	// BrownoutDegraded its queries served through the brownout CPU path;
	// DeadlineMisses its answers that landed past the deadline.
	Sheds            int
	BrownoutDegraded int
	DeadlineMisses   int
	// RetryHedge totals the hardened arm's token-gated retries and
	// hedges; HedgeSkips the hedges the budget or brownout suppressed.
	// TokensGranted is the token bucket's lifetime grant count, bounded
	// by TokenBound = shards x burst + ratio x admissions — the
	// metastability guarantee, asserted per cell.
	RetryHedge    int
	HedgeSkips    int
	TokensGranted int64
	TokenBound    float64
}

// OverloadSweepResult is the saturation sweep: goodput against offered
// load, hardened vs baseline, around the calibrated saturation rate.
type OverloadSweepResult struct {
	// Deadline is the per-query latency budget (calibrated from the
	// clean and CPU-only means); Saturation the calibrated capacity in
	// queries/second.
	Deadline   time.Duration
	Saturation float64
	Points     []OverloadPoint
}

// overloadCorpus is a device-heavy scatter-gather corpus: long enough
// lists that the device timeline is the bottleneck (so overload is
// queueing, not CPU work), small enough that the sweep's cluster builds
// stay cheap.
func overloadCorpus(cfg Config) (*workload.Corpus, [][]string, error) {
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    cfg.scaled(1_500_000, 200_000),
		NumTerms:   cfg.scaled(24, 12),
		MaxListLen: cfg.scaled(800_000, 60_000),
		MinListLen: cfg.scaled(150_000, 15_000),
		Alpha:      0.6,
		Codec:      index.CodecEF,
		Seed:       cfg.Seed + 401,
	})
	if err != nil {
		return nil, nil, err
	}
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: cfg.scaled(400, 80), PopularityAlpha: 0.5, Seed: cfg.Seed + 409,
	})
	sample := make([][]string, len(queries))
	for i, q := range queries {
		sample[i] = q.Terms
	}
	return c, sample, nil
}

// RunOverloadSweep measures goodput (complete, on-deadline answers over
// offered load) against offered load from 0.2x to 3x the calibrated
// saturation rate on a 2-shard, 2-replica hybrid cluster. Each point
// runs twice over the identical Poisson workload: hardened — deadline
// budgets propagated to device admission, CoDel admission shedding,
// token-budgeted retries/hedges, two-tier brownout (shed batch, then
// degrade interactive to a reduced-top-k CPU-only plan) — and baseline,
// with every control off. Past saturation the baseline's backlog grows
// without bound and its goodput collapses; the hardened cluster keeps
// answering interactive traffic within deadline by shedding batch and
// spending CPU instead of the saturated device. Everything is seeded:
// the same Config reproduces the identical table bit for bit.
func RunOverloadSweep(cfg Config) (OverloadSweepResult, *Table, error) {
	c, sample, err := overloadCorpus(cfg)
	if err != nil {
		return OverloadSweepResult{}, nil, err
	}
	const shards, replicas = 2, 2

	mk := func(mode core.Mode, olc overload.Config, hedge time.Duration) (*cluster.Cluster, error) {
		ixs, err := workload.PartitionCorpus(c, shards)
		if err != nil {
			return nil, err
		}
		return cluster.New(ixs, cluster.Config{
			Engine:     core.Config{Mode: mode, CPU: cfg.CPU},
			TopK:       10,
			CPU:        cfg.CPU,
			Replicas:   replicas,
			Routing:    cluster.LeastPending,
			HedgeDelay: hedge,
			Overload:   olc,
		})
	}

	// Calibration pass 1: clean sequential hybrid run — the mean latency
	// of an unloaded query sets the deadline and hedge delay.
	iso, err := mk(core.Hybrid, overload.Config{}, 0)
	if err != nil {
		return OverloadSweepResult{}, nil, err
	}
	var sum time.Duration
	for _, q := range sample {
		r, err := iso.Search(context.Background(), q)
		if err != nil {
			iso.Close()
			return OverloadSweepResult{}, nil, err
		}
		sum += r.Stats.Latency
	}
	iso.Close()
	cleanMean := sum / time.Duration(len(sample))

	// Calibration pass 1b: burst every query at t=0 on a fresh cluster
	// and read the drain makespan — the achievable throughput with every
	// pipeline (compute, transfer, reset) accounted for, which a
	// busy-time estimate would overstate.
	burst, err := mk(core.Hybrid, overload.Config{}, 0)
	if err != nil {
		return OverloadSweepResult{}, nil, err
	}
	var drain time.Duration
	for _, q := range sample {
		r, err := burst.SearchAt(context.Background(), q, 0)
		if err != nil {
			burst.Close()
			return OverloadSweepResult{}, nil, err
		}
		if r.Stats.Latency > drain {
			drain = r.Stats.Latency
		}
	}
	burst.Close()
	if drain <= 0 {
		return OverloadSweepResult{}, nil, fmt.Errorf("overload sweep: burst calibration measured no drain time")
	}
	saturation := float64(len(sample)) / drain.Seconds()

	// Calibration pass 2: CPU-only mean — the brownout escape path must
	// fit inside the deadline with margin, or degrading to CPU would
	// trade budget rejections for deadline misses.
	cpuIso, err := mk(core.CPUOnly, overload.Config{}, 0)
	if err != nil {
		return OverloadSweepResult{}, nil, err
	}
	var cpuSum time.Duration
	for _, q := range sample {
		r, err := cpuIso.Search(context.Background(), q)
		if err != nil {
			cpuIso.Close()
			return OverloadSweepResult{}, nil, err
		}
		cpuSum += r.Stats.Latency
	}
	cpuIso.Close()
	cpuMean := cpuSum / time.Duration(len(sample))

	// Deadline: generous against both the clean hybrid path and the
	// brownout CPU escape path. Thresholds are spaced so that under
	// sustained overload the ladder engages before the deadline budget
	// starts rejecting device work (escalate < deadline - merge reserve),
	// while light-load queueing bursts stay well below the entry point.
	deadline := 8 * cleanMean
	if d := 4 * cpuMean; d > deadline {
		deadline = d
	}
	hedge := 2 * cleanMean
	// The escalate threshold must sit below the backlog ceiling the
	// deadline budget itself enforces (shard budget minus a query's CPU
	// prefix and device op cost), or level 2 can never be observed: the
	// budget starts rejecting — degrading answers shard by shard —
	// before the pressure signal reaches the ladder's trip point.
	hardened := overload.Config{
		ShedTarget:       3 * deadline / 5,
		ShedInterval:     cleanMean,
		RetryBudget:      0.1,
		BrownoutEnter:    deadline / 2,
		BrownoutEscalate: 3 * deadline / 5,
		BrownoutHold:     8 * cleanMean,
		DegradedTopK:     5,
	}

	res := OverloadSweepResult{Deadline: deadline, Saturation: saturation}
	t := &Table{
		Title: "Extension: overload sweep (goodput vs offered load, hardened vs baseline)",
		Header: []string{"load", "goodput", "goodput (base)", "batch goodput", "sheds", "cpu-degraded",
			"misses", "P99", "P99 (base)", "retry+hedge", "tokens/bound"},
		Notes: []string{
			"2 shards x 2 replicas, hybrid engines; identical seeded Poisson workload (20% batch) for both columns of each row",
			"hardened: per-query deadline propagated to device admission + CoDel admission shedding + token-budgeted retries/hedges (10%) + two-tier brownout (shed batch, then serve interactive via reduced-top-k CPU-only plans)",
			"baseline: every overload control off — queries are only scored against the deadline after the fact",
			"goodput = complete answers within the deadline over offered interactive queries",
			fmt.Sprintf("deadline %s ms = max(8x clean mean %s ms, 4x cpu-only mean %s ms); saturation %.0f q/s from burst drain makespan",
				ms(deadline), ms(cleanMean), ms(cpuMean), saturation),
		},
	}

	for i, mult := range []float64{0.2, 0.5, 1, 1.5, 2, 3} {
		rate := mult * saturation
		spec := loadsim.OverloadSpec{
			ArrivalRate:   rate,
			Seed:          cfg.Seed + 431 + int64(i),
			Deadline:      deadline,
			BatchFraction: 0.2,
		}
		run := func(hard bool) (loadsim.OverloadResult, *cluster.Cluster, error) {
			olc, hd := overload.Config{}, time.Duration(0)
			if hard {
				olc, hd = hardened, hedge
			}
			cl, err := mk(core.Hybrid, olc, hd)
			if err != nil {
				return loadsim.OverloadResult{}, nil, err
			}
			sp := spec
			sp.PropagateDeadline = hard
			r, err := loadsim.RunOverload(cl, sample, sp)
			if err != nil {
				cl.Close()
				return loadsim.OverloadResult{}, nil, err
			}
			return r, cl, nil
		}
		hard, hcl, err := run(true)
		if err != nil {
			return OverloadSweepResult{}, nil, err
		}
		ost := hcl.Overload()
		hcl.Close()
		base, bcl, err := run(false)
		if err != nil {
			return OverloadSweepResult{}, nil, err
		}
		bcl.Close()

		p := OverloadPoint{
			Multiplier:       mult,
			Rate:             rate,
			Goodput:          hard.Interactive.Goodput(),
			BatchGoodput:     hard.Batch.Goodput(),
			BaselineGoodput:  base.Interactive.Goodput(),
			P99:              hard.Latencies.Percentile(99),
			BaselineP99:      base.Latencies.Percentile(99),
			Sheds:            hard.Interactive.Shed + hard.Batch.Shed,
			BrownoutDegraded: hard.BrownoutDegraded,
			DeadlineMisses:   hard.Interactive.DeadlineMisses + hard.Batch.DeadlineMisses,
			RetryHedge:       hard.Retries + hard.Hedges,
			HedgeSkips:       hard.HedgeSkips,
			TokensGranted:    ost.RetryBudget.Granted,
			TokenBound:       float64(shards)*overload.DefaultRetryBurst + 0.1*float64(ost.RetryBudget.Admissions),
		}
		res.Points = append(res.Points, p)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1fx", mult),
			fmt.Sprintf("%.2f%%", p.Goodput*100),
			fmt.Sprintf("%.2f%%", p.BaselineGoodput*100),
			fmt.Sprintf("%.2f%%", p.BatchGoodput*100),
			fmt.Sprintf("%d", p.Sheds),
			fmt.Sprintf("%d", p.BrownoutDegraded),
			fmt.Sprintf("%d", p.DeadlineMisses),
			ms(p.P99), ms(p.BaselineP99),
			fmt.Sprintf("%d", p.RetryHedge),
			fmt.Sprintf("%d/%.0f", p.TokensGranted, p.TokenBound),
		})
	}
	return res, t, nil
}
