package experiments

import (
	"time"

	"griffin/internal/ef"
	"griffin/internal/index"
	"griffin/internal/intersect"
	"griffin/internal/workload"
)

// Fig13Point is one size group of the intersection comparison (§4.3.2,
// Figure 13): CPU merge, CPU binary (skip search), GPU merge (MergePath),
// GPU binary (parallel binary search), on comparable-length list pairs.
type Fig13Point struct {
	LongerListSize int
	CPUMerge       time.Duration
	CPUBinary      time.Duration
	GPUMerge       time.Duration
	GPUBinary      time.Duration
}

// Fig13Result reproduces the four-way intersection comparison. The paper
// measures GPU merge up to 87.35x over CPU merge and up to 2.29x over GPU
// binary on long comparable-length lists.
type Fig13Result struct {
	Points []Fig13Point
}

// RunFig13 intersects comparable-length pairs (ratio < 16, as the paper
// selects) of each size group under all four methods.
func RunFig13(cfg Config) (Fig13Result, *Table, error) {
	rng := cfg.rng(13)
	reps := cfg.scaled(4, 2)
	sizes := []int{1_000, 10_000, 100_000, 1_000_000, 10_000_000}
	maxSize := cfg.scaled(10_000_000, 100_000)

	var res Fig13Result
	t := &Table{
		Title: "Figure 13: List Intersection Comparison (ms)",
		Header: []string{"longer list", "CPU merge", "CPU binary",
			"GPU merge", "GPU binary"},
		Notes: []string{
			"pairs with comparable lengths (ratio < 16), as in the paper",
			"paper: GPU merge fastest on long lists; CPU binary slowest",
		},
	}
	for _, n := range sizes {
		if n > maxSize {
			break
		}
		var p Fig13Point
		p.LongerListSize = n
		for r := 0; r < reps; r++ {
			ratio := 1.5 + rng.Float64()*10 // comparable lengths
			nShort := int(float64(n) / ratio)
			if nShort < 4 {
				nShort = 4
			}
			short, long := workload.GenPair(rng, nShort, n, uint32(n*8), 0.3)
			if len(short) == 0 || len(long) == 0 {
				continue
			}
			shortEF, err := ef.Compress(short)
			if err != nil {
				return res, nil, err
			}
			longEF, err := ef.Compress(long)
			if err != nil {
				return res, nil, err
			}

			// CPU merge.
			m := intersect.Merge(index.EFView{L: shortEF}, index.EFView{L: longEF})
			p.CPUMerge += cfg.CPU.Time(m.Work)

			// CPU binary (skip-pointer search), forced regardless of ratio.
			b := intersect.SkipSearch(index.EFView{L: shortEF}, index.EFView{L: longEF})
			p.CPUBinary += cfg.CPU.Time(b.Work)

			// GPU merge: upload + decompress both + MergePath.
			gm, err := gpuIntersectPair(cfg.Device, short, long, 1e18) // force mergepath
			if err != nil {
				return res, nil, err
			}
			p.GPUMerge += gm

			// GPU binary: decompress short, then parallel binary search
			// over the long list's skip pointers.
			gb, err := gpuIntersectPair(cfg.Device, short, long, 0) // force binary-skips
			if err != nil {
				return res, nil, err
			}
			p.GPUBinary += gb

			// Cross-check: all four must agree on the match count.
			if len(m.IDs) != len(b.IDs) {
				return res, nil, errMismatch(n, "cpu merge vs cpu binary", len(m.IDs), len(b.IDs))
			}
		}
		p.CPUMerge /= time.Duration(reps)
		p.CPUBinary /= time.Duration(reps)
		p.GPUMerge /= time.Duration(reps)
		p.GPUBinary /= time.Duration(reps)
		res.Points = append(res.Points, p)
		t.Rows = append(t.Rows, []string{
			fmtSize(n), ms(p.CPUMerge), ms(p.CPUBinary), ms(p.GPUMerge), ms(p.GPUBinary),
		})
	}
	if len(res.Points) > 0 {
		last := res.Points[len(res.Points)-1]
		t.Notes = append(t.Notes,
			"largest group: GPU merge "+speedup(last.CPUMerge, last.GPUMerge)+
				" over CPU merge, "+speedup(last.GPUBinary, last.GPUMerge)+" over GPU binary")
	}
	return res, t, nil
}

type mismatchError struct {
	size int
	what string
	a, b int
}

func (e *mismatchError) Error() string {
	return "fig13: result mismatch at size " + fmtSize(e.size) + " (" + e.what + ")"
}

func errMismatch(size int, what string, a, b int) error {
	return &mismatchError{size: size, what: what, a: a, b: b}
}
