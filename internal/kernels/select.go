package kernels

import (
	"sort"

	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
)

// selectBuckets is the bucket fan-out per refinement round of bucketSelect
// (Alabi et al., JEA 2012, use a small power of two; 32 matches a warp).
const selectBuckets = 32

// maxSelectRounds bounds range refinement; with 32-way splits, a handful
// of rounds isolates the k-th value in any realistic score distribution.
const maxSelectRounds = 10

// BucketSelectTopK ranks candidates with the GPU bucketSelect k-selection
// algorithm (the paper's second Figure-7 contender): iteratively histogram
// scores into buckets over a shrinking value range until the bucket holding
// the k-th largest score is isolated, which yields the k-th max; then a
// final pass selects every score above the threshold. Results are returned
// in descending score order.
func BucketSelectTopK(s *gpu.Stream, docsBuf *gpu.Buffer, k int) ([]ScoredDoc, *hwmodel.LaunchStats, error) {
	docs := docsBuf.Data.([]ScoredDoc)
	n := len(docs)
	agg := &hwmodel.LaunchStats{}
	if n == 0 || k <= 0 {
		return nil, agg, nil
	}
	if k > n {
		k = n
	}

	numChunks, grid := rankChunks(n)
	chunkLen := (n + numChunks - 1) / numChunks

	// Round 0: min/max reduction to initialize the bucket range.
	chunkMin := make([]float32, numChunks)
	chunkMax := make([]float32, numChunks)
	kReduce := &gpu.Kernel{
		Name:  "bucketselect_minmax",
		Grid:  grid,
		Block: ThreadsPerBlock,
		Phases: []gpu.Phase{func(c *gpu.Ctx) {
			chunk := c.GlobalID()
			if chunk >= numChunks {
				return
			}
			lo, hi := chunk*chunkLen, (chunk+1)*chunkLen
			if hi > n {
				hi = n
			}
			if lo >= hi {
				chunkMin[chunk], chunkMax[chunk] = docs[0].Score, docs[0].Score
				return
			}
			mn, mx := docs[lo].Score, docs[lo].Score
			for i := lo + 1; i < hi; i++ {
				v := docs[i].Score
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			chunkMin[chunk], chunkMax[chunk] = mn, mx
			c.GlobalRead(4 * (hi - lo))
			c.Op(2 * (hi - lo))
		}},
	}
	st := s.Launch(kReduce)
	agg.Add(st)
	agg.Blocks, agg.ThreadsPerBlock = st.Blocks, st.ThreadsPerBlock
	agg.Phases += st.Phases

	lo, hi := chunkMin[0], chunkMax[0]
	for i := 1; i < numChunks; i++ {
		if chunkMin[i] < lo {
			lo = chunkMin[i]
		}
		if chunkMax[i] > hi {
			hi = chunkMax[i]
		}
	}

	// Refinement rounds: histogram the active range, walk buckets from the
	// top until the cumulative count reaches k, recurse into that bucket.
	// kRemaining tracks how many of the top-k fall inside the active range.
	kRemaining := k
	for round := 0; round < maxSelectRounds && hi > lo; round++ {
		hist := make([]int64, selectBuckets*numChunks)
		width := (hi - lo) / selectBuckets
		if width <= 0 {
			break
		}
		rLo, rHi := lo, hi
		kHist := &gpu.Kernel{
			Name:  "bucketselect_histogram",
			Grid:  grid,
			Block: ThreadsPerBlock,
			Phases: []gpu.Phase{func(c *gpu.Ctx) {
				chunk := c.GlobalID()
				if chunk >= numChunks {
					return
				}
				clo, chi := chunk*chunkLen, (chunk+1)*chunkLen
				if chi > n {
					chi = n
				}
				work := 0
				for i := clo; i < chi; i++ {
					v := docs[i].Score
					if v < rLo || v > rHi {
						continue
					}
					b := int((v - rLo) / width)
					if b >= selectBuckets {
						b = selectBuckets - 1
					}
					hist[b*numChunks+chunk]++
					work++
				}
				c.GlobalRead(4 * (chi - clo))
				c.Op(3 * work)
				c.SharedAccess(8 * work)
				// Bucket choice is data-dependent: warp lanes update
				// different counters.
				c.DivergentOp(work)
			}},
		}
		st = s.Launch(kHist)
		agg.Add(st)
		agg.Phases += st.Phases

		// Walk buckets from the top (host-side scalar step, as in the
		// reference implementation's CPU control loop).
		var bucketTotals [selectBuckets]int64
		for b := 0; b < selectBuckets; b++ {
			for ch := 0; ch < numChunks; ch++ {
				bucketTotals[b] += hist[b*numChunks+ch]
			}
		}
		cum := int64(0)
		target := -1
		for b := selectBuckets - 1; b >= 0; b-- {
			if cum+bucketTotals[b] >= int64(kRemaining) {
				target = b
				break
			}
			cum += bucketTotals[b]
		}
		if target < 0 {
			break
		}
		kRemaining -= int(cum)
		newLo := lo + float32(target)*width
		newHi := newLo + width
		if target == selectBuckets-1 {
			newHi = hi
		}
		if bucketTotals[target] <= int64(kRemaining) || newHi <= newLo {
			lo, hi = newLo, newHi
			break
		}
		lo, hi = newLo, newHi
	}

	// The k-th max lies in [lo, hi]; select everything >= lo with a
	// count/scan/compact pass, then trim on the host (the final exact cut
	// is tiny: at most k plus one bucket's worth of ties).
	chunkHits := make([]int32, numChunks)
	kCount := &gpu.Kernel{
		Name:  "bucketselect_count",
		Grid:  grid,
		Block: ThreadsPerBlock,
		Phases: []gpu.Phase{func(c *gpu.Ctx) {
			chunk := c.GlobalID()
			if chunk >= numChunks {
				return
			}
			clo, chi := chunk*chunkLen, (chunk+1)*chunkLen
			if chi > n {
				chi = n
			}
			cnt := int32(0)
			for i := clo; i < chi; i++ {
				if docs[i].Score >= lo {
					cnt++
				}
			}
			chunkHits[chunk] = cnt
			c.GlobalRead(4 * (chi - clo))
			c.Op(chi - clo)
		}},
	}
	st = s.Launch(kCount)
	agg.Add(st)
	agg.Phases += st.Phases

	offsets, totalHits, scanSt := ScanExclusive(s, chunkHits)
	agg.Add(scanSt)
	agg.Phases += scanSt.Phases

	cand := make([]ScoredDoc, totalHits)
	kGather := &gpu.Kernel{
		Name:  "bucketselect_gather",
		Grid:  grid,
		Block: ThreadsPerBlock,
		Phases: []gpu.Phase{func(c *gpu.Ctx) {
			chunk := c.GlobalID()
			if chunk >= numChunks {
				return
			}
			clo, chi := chunk*chunkLen, (chunk+1)*chunkLen
			if chi > n {
				chi = n
			}
			pos := int(offsets[chunk])
			for i := clo; i < chi; i++ {
				if docs[i].Score >= lo {
					cand[pos] = docs[i]
					pos++
				}
			}
			c.GlobalRead(8 * (chi - clo))
			c.GlobalWrite(8 * (pos - int(offsets[chunk])))
			c.Op(chi - clo)
		}},
	}
	st = s.Launch(kGather)
	agg.Add(st)
	agg.Phases += st.Phases

	sort.Slice(cand, func(i, j int) bool { return cand[i].Score > cand[j].Score })
	if len(cand) > k {
		cand = cand[:k]
	}
	s.D2H(docsBuf, int64(len(cand))*8)
	return cand, agg, nil
}
