package kernels

import (
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
)

// ScanExclusive computes the exclusive prefix sum of vals on the device and
// returns the per-element offsets plus the grand total. It is the
// compaction building block both intersection kernels use to turn
// per-partition match counts into stable output offsets.
//
// Classic two-level device scan:
//
//  1. each thread block scans its 128-element tile and records the tile
//     total;
//  2. a single thread scans the tile totals (tile count is small:
//     n/128);
//  3. every element adds its tile's offset.
func ScanExclusive(s *gpu.Stream, vals []int32) ([]int32, int64, *hwmodel.LaunchStats) {
	n := len(vals)
	out := make([]int32, n)
	if n == 0 {
		return out, 0, &hwmodel.LaunchStats{}
	}
	grid := gpu.GridFor(n, ThreadsPerBlock)
	tileSums := make([]int64, grid)
	tileOffsets := make([]int64, grid)
	var total int64

	k := &gpu.Kernel{
		Name:  "scan_exclusive",
		Grid:  grid,
		Block: ThreadsPerBlock,
		Phases: []gpu.Phase{
			// Phase 1: per-tile exclusive scan (lane 0 walks the tile; a
			// warp-shuffle scan on real hardware, charged as such).
			func(c *gpu.Ctx) {
				if c.Thread != 0 {
					return
				}
				lo := c.Block * ThreadsPerBlock
				hi := lo + ThreadsPerBlock
				if hi > n {
					hi = n
				}
				var acc int64
				for i := lo; i < hi; i++ {
					out[i] = int32(acc)
					acc += int64(vals[i])
				}
				tileSums[c.Block] = acc
				c.Op(hi - lo)
				c.GlobalRead(4 * (hi - lo))
				c.SharedAccess(4 * (hi - lo))
			},
			// Phase 2: scan the tile totals.
			func(c *gpu.Ctx) {
				if c.Block != 0 || c.Thread != 0 {
					return
				}
				var acc int64
				for b := 0; b < grid; b++ {
					tileOffsets[b] = acc
					acc += tileSums[b]
				}
				total = acc
				c.Op(grid)
				c.GlobalRead(8 * grid)
				c.GlobalWrite(8 * grid)
			},
			// Phase 3: add tile offsets.
			func(c *gpu.Ctx) {
				i := c.GlobalID()
				if i >= n {
					return
				}
				out[i] += int32(tileOffsets[c.Block])
				c.Op(1)
				c.GlobalRead(4)
				c.GlobalWrite(4)
			},
		},
	}
	st := s.Launch(k)
	return out, total, st
}
