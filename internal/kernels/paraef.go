// Package kernels implements Griffin-GPU's device algorithms on the
// simulated SIMT device: Para-EF parallel Elias-Fano decompression
// (Algorithm 1), MergePath load-balanced parallel list intersection
// (Figures 5-6), parallel binary search over skip pointers, and the two
// GPU ranking routines (radix sort and bucketSelect) evaluated in
// Figure 7.
package kernels

import (
	"math/bits"

	"griffin/internal/bitutil"
	"griffin/internal/ef"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
)

// ThreadsPerBlock is the launch block size used by all kernels; it matches
// the 128-element compression block so one thread decompresses one element.
const ThreadsPerBlock = 128

// UploadEF copies a compressed Elias-Fano list to the device, charging
// PCIe transfer for its compressed size (compression ratio directly
// reduces transfer time — one of the paper's arguments for EF on GPU).
func UploadEF(s *gpu.Stream, l *ef.List) (*gpu.Buffer, error) {
	return s.H2D(l, l.CompressedBytes())
}

// paraEFShared is the per-thread-block shared memory of the Para-EF
// kernel: the popcount/prefix-sum array over 32-bit high-bits words and
// the element-to-word scheduling index (Algorithm 1's ps_array and
// index_array).
type paraEFShared struct {
	psArray    []int32
	indexArray []int32
}

// ParaEFDecompress runs Algorithm 1 on the device: one grid block per
// 128-element EF block, one thread per element. It returns a device buffer
// whose payload is the fully decompressed []uint32 docID array.
//
// Phase structure (each phase boundary is a barrier):
//
//  1. popcount: thread w computes __popc of the w-th 32-bit word of the
//     block's high-bits array (Algorithm 1 line 2).
//  2. prefix sum over the popcounts (line 3). The per-block word count is
//     at most 2*128/32+2 = 10, so the scan is done by lane 0 in shared
//     memory; the device-wide parallel scan kernel (scan.go) exists for
//     large arrays and is used by the intersection compaction.
//  3. scheduling: word w writes its word index into index_array slots
//     [ps[w-1], ps[w]) so each element knows its source word (lines 4-8).
//  4. decompress: thread i recovers high bits via an in-word select on its
//     scheduled word, fetches its low bits, concatenates, and writes the
//     final docID (lines 9-10).
//
// compressed must be a device buffer produced by UploadEF (its payload is
// the *ef.List).
func ParaEFDecompress(s *gpu.Stream, compressed *gpu.Buffer) (*gpu.Buffer, *hwmodel.LaunchStats, error) {
	l := compressed.Data.(*ef.List)
	out, err := s.Alloc(int64(l.N) * 4)
	if err != nil {
		return nil, nil, err
	}
	dst := make([]uint32, l.N)
	out.Data = dst

	if l.N == 0 {
		return out, &hwmodel.LaunchStats{}, nil
	}

	blocks := l.Blocks
	k := &gpu.Kernel{
		Name:  "para_ef_decompress",
		Grid:  len(blocks),
		Block: ThreadsPerBlock,
		// ps_array + index_array live in shared memory (§3.1.1: "We also
		// store the temporary arrays in shared memory").
		SharedBytes: 4*maxWords32PerBlock + 4*ThreadsPerBlock,
		MakeShared: func(b int) any {
			return &paraEFShared{
				psArray:    make([]int32, maxWords32PerBlock),
				indexArray: make([]int32, ThreadsPerBlock),
			}
		},
		Phases: []gpu.Phase{
			// Phase 1: popcount per 32-bit word.
			func(c *gpu.Ctx) {
				blk := &blocks[c.Block]
				sh := c.Shared.(*paraEFShared)
				nw := words32(blk.HighLen)
				if c.Thread >= nw {
					return
				}
				w := highWord32(blk, c.Thread)
				sh.psArray[c.Thread] = int32(bits.OnesCount32(w))
				c.GlobalRead(4)   // load the high-bits word
				c.Op(1)           // __popc
				c.SharedAccess(4) // store ps_array[w]
			},
			// Phase 2: prefix sum of popcounts (lane 0; word count <= 10).
			func(c *gpu.Ctx) {
				if c.Thread != 0 {
					return
				}
				blk := &blocks[c.Block]
				sh := c.Shared.(*paraEFShared)
				nw := words32(blk.HighLen)
				var acc int32
				for w := 0; w < nw; w++ {
					acc += sh.psArray[w]
					sh.psArray[w] = acc
				}
				c.Op(nw)
				c.SharedAccess(8 * nw)
			},
			// Phase 3: scheduling — word w claims index_array slots for the
			// elements it encodes.
			func(c *gpu.Ctx) {
				blk := &blocks[c.Block]
				sh := c.Shared.(*paraEFShared)
				nw := words32(blk.HighLen)
				if c.Thread >= nw {
					return
				}
				lo := int32(0)
				if c.Thread > 0 {
					lo = sh.psArray[c.Thread-1]
				}
				hi := sh.psArray[c.Thread]
				for off := lo; off < hi; off++ {
					sh.indexArray[off] = int32(c.Thread)
				}
				// Uneven per-thread loop trip counts diverge the warp.
				c.DivergentOp(int(hi - lo))
				c.SharedAccess(4 * int(hi-lo))
			},
			// Phase 4: per-element recover + concatenate + store.
			func(c *gpu.Ctx) {
				blk := &blocks[c.Block]
				i := c.Thread
				if i >= blk.N {
					return
				}
				sh := c.Shared.(*paraEFShared)
				w := int(sh.indexArray[i])
				rank := i
				if w > 0 {
					rank = i - int(sh.psArray[w-1])
				}
				word := highWord32(blk, w)
				// Select the (rank+1)-th set bit of the word; the CUDA
				// implementation uses a shared-memory lookup table (§3.1.1).
				bitPos := w*32 + bitutil.SelectInWord(uint64(word), rank)
				high := uint64(bitPos - i) // zeros before this element's 1-bit
				var low uint64
				if blk.B > 0 {
					low = bitutil.GetBits(blk.LowBits, i*blk.B, blk.B)
					c.GlobalRead(4) // low-bits fetch (consecutive threads coalesce)
				}
				dst[c.Block*ef.BlockSize+i] = blk.FirstDocID + uint32(high<<uint(blk.B)|low)
				c.SharedAccess(6) // index_array + select LUT
				c.Op(6)           // shift/or/add arithmetic
				c.GlobalWrite(4)  // final store, coalesced
			},
		},
	}
	st := s.Launch(k)
	return out, st, nil
}

// maxWords32PerBlock bounds the per-block high-bits array in 32-bit words:
// 128 ones plus at most ~128+2^6 zeros for any b chosen by the encoder; 16
// words (512 bits) is a safe ceiling (the encoder's b = floor(log2(U/n))
// keeps total high bits under 2n + n = 384 < 512).
const maxWords32PerBlock = 16

// words32 returns the number of 32-bit words covering n bits.
func words32(n int) int { return (n + 31) / 32 }

// highWord32 extracts the w-th 32-bit word of the block's high-bits array,
// mirroring the CUDA kernel's 32-bit word granularity over our 64-bit
// backing store.
func highWord32(blk *ef.Block, w int) uint32 {
	u := blk.HighBits[w/2]
	if w%2 == 1 {
		u >>= 32
	}
	return uint32(u)
}
