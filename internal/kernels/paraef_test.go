package kernels

import (
	"math/rand"
	"reflect"
	"testing"

	"griffin/internal/ef"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
)

func newStream() *gpu.Stream {
	return gpu.New(hwmodel.DefaultGPU(), 0).NewStream()
}

func genAscending(rng *rand.Rand, n int, maxGap uint32) []uint32 {
	ids := make([]uint32, n)
	cur := uint32(rng.Intn(1000))
	for i := 0; i < n; i++ {
		cur += 1 + uint32(rng.Intn(int(maxGap)))
		ids[i] = cur
	}
	return ids
}

func decompressOnDevice(t testing.TB, s *gpu.Stream, ids []uint32) []uint32 {
	t.Helper()
	l, err := ef.Compress(ids)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := UploadEF(s, l)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := ParaEFDecompress(s, buf)
	if err != nil {
		t.Fatal(err)
	}
	return out.Data.([]uint32)
}

func TestParaEFMatchesSerialDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	s := newStream()
	for _, n := range []int{1, 2, 127, 128, 129, 1000, 4096, 100000} {
		for _, maxGap := range []uint32{1, 2, 37, 5000} {
			ids := genAscending(rng, n, maxGap)
			got := decompressOnDevice(t, s, ids)
			if !reflect.DeepEqual(got, ids) {
				t.Fatalf("n=%d gap=%d: Para-EF output differs from input", n, maxGap)
			}
		}
	}
}

func TestParaEFPaperExample(t *testing.T) {
	// Figure 4's sequence.
	ids := []uint32{5, 6, 8, 15, 18, 33}
	got := decompressOnDevice(t, newStream(), ids)
	if !reflect.DeepEqual(got, ids) {
		t.Fatalf("got %v want %v", got, ids)
	}
}

func TestParaEFDenseRun(t *testing.T) {
	ids := make([]uint32, 500)
	for i := range ids {
		ids[i] = uint32(i)
	}
	got := decompressOnDevice(t, newStream(), ids)
	if !reflect.DeepEqual(got, ids) {
		t.Fatal("dense run mismatch")
	}
}

func TestParaEFSparseHugeGaps(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ids := genAscending(rng, 300, 1<<22)
	got := decompressOnDevice(t, newStream(), ids)
	if !reflect.DeepEqual(got, ids) {
		t.Fatal("sparse list mismatch")
	}
}

func TestParaEFEmptyList(t *testing.T) {
	s := newStream()
	l, _ := ef.Compress(nil)
	buf, err := UploadEF(s, l)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := ParaEFDecompress(s, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Data.([]uint32); len(got) != 0 {
		t.Fatalf("expected empty output, got %d elements", len(got))
	}
}

func TestParaEFStatsPlausible(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := newStream()
	ids := genAscending(rng, 10000, 50)
	l, _ := ef.Compress(ids)
	buf, _ := UploadEF(s, l)
	_, st, err := ParaEFDecompress(s, buf)
	if err != nil {
		t.Fatal(err)
	}
	// Every element must be written exactly once: 4 bytes per docID.
	if st.GlobalWriteBytes != int64(len(ids))*4 {
		t.Fatalf("GlobalWriteBytes = %d, want %d", st.GlobalWriteBytes, len(ids)*4)
	}
	if st.Ops == 0 || st.GlobalReadBytes == 0 || st.SharedBytes == 0 {
		t.Fatalf("missing counters: %+v", st)
	}
	if st.Phases != 4 {
		t.Fatalf("Phases = %d, want 4 (Algorithm 1 structure)", st.Phases)
	}
}

func TestParaEFChargesTransferForCompressedSize(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	ids := genAscending(rng, 1<<20, 20) // dense: compresses well

	s1 := dev.NewStream()
	l, _ := ef.Compress(ids)
	if _, err := UploadEF(s1, l); err != nil {
		t.Fatal(err)
	}
	compressedCost := s1.Elapsed()

	s2 := dev.NewStream()
	if _, err := s2.H2D(ids, int64(len(ids))*4); err != nil {
		t.Fatal(err)
	}
	rawCost := s2.Elapsed()

	if compressedCost >= rawCost {
		t.Fatalf("compressed upload %v not cheaper than raw %v", compressedCost, rawCost)
	}
}

func TestParaEFSpeedupGrowsWithListSize(t *testing.T) {
	// The Figure-12 shape: simulated GPU decompression time per element
	// shrinks as lists grow (overhead amortization + occupancy).
	rng := rand.New(rand.NewSource(44))
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	perElem := func(n int) float64 {
		ids := genAscending(rng, n, 30)
		s := dev.NewStream()
		l, _ := ef.Compress(ids)
		buf, _ := UploadEF(s, l)
		if _, _, err := ParaEFDecompress(s, buf); err != nil {
			t.Fatal(err)
		}
		return float64(s.Elapsed()) / float64(n)
	}
	small, large := perElem(1000), perElem(1<<20)
	if large >= small {
		t.Fatalf("per-element cost did not shrink: small=%v large=%v", small, large)
	}
}

func BenchmarkParaEFDecompress1M(b *testing.B) {
	rng := rand.New(rand.NewSource(45))
	ids := genAscending(rng, 1<<20, 30)
	l, _ := ef.Compress(ids)
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	b.SetBytes(int64(len(ids)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := dev.NewStream()
		buf, _ := UploadEF(s, l)
		out, _, err := ParaEFDecompress(s, buf)
		if err != nil {
			b.Fatal(err)
		}
		out.Free()
		buf.Free()
	}
}
