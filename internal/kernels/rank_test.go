package kernels

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"griffin/internal/gpu"
)

func genDocs(rng *rand.Rand, n int) []ScoredDoc {
	docs := make([]ScoredDoc, n)
	for i := range docs {
		docs[i] = ScoredDoc{DocID: uint32(i), Score: float32(rng.NormFloat64() * 10)}
	}
	return docs
}

// refTopK is the trusted reference: full sort descending, take k, with
// docID as tiebreak so comparisons are deterministic.
func refTopK(docs []ScoredDoc, k int) []ScoredDoc {
	cp := make([]ScoredDoc, len(docs))
	copy(cp, docs)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Score > cp[j].Score })
	if k > len(cp) {
		k = len(cp)
	}
	return cp[:k]
}

// scoresEqual compares only the score sequences (docID ties may resolve
// differently between algorithms).
func scoresEqual(a, b []ScoredDoc) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

func uploadDocs(t testing.TB, s *gpu.Stream, docs []ScoredDoc) *gpu.Buffer {
	t.Helper()
	buf, err := s.H2D(docs, int64(len(docs))*8)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestSortKeyMonotone(t *testing.T) {
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		if a < b {
			return sortKey(a) < sortKey(b)
		}
		if a > b {
			return sortKey(a) > sortKey(b)
		}
		return sortKey(a) == sortKey(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Explicit sign cases including zero crossings.
	vals := []float32{-100, -1, -0.5, 0, 0.5, 1, 100}
	for i := 1; i < len(vals); i++ {
		if sortKey(vals[i-1]) >= sortKey(vals[i]) {
			t.Fatalf("sortKey not monotone at %v -> %v", vals[i-1], vals[i])
		}
	}
}

func TestRadixSortTopKMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	s := newStream()
	for _, n := range []int{1, 10, 100, 1000, 10000} {
		for _, k := range []int{1, 10, 64} {
			docs := genDocs(rng, n)
			got, _, err := RadixSortTopK(s, uploadDocs(t, s, docs), k)
			if err != nil {
				t.Fatal(err)
			}
			want := refTopK(docs, k)
			if !scoresEqual(got, want) {
				t.Fatalf("n=%d k=%d: scores differ", n, k)
			}
		}
	}
}

func TestRadixSortNegativeScores(t *testing.T) {
	s := newStream()
	docs := []ScoredDoc{{0, -5}, {1, 3}, {2, -1}, {3, 7}, {4, 0}}
	got, _, err := RadixSortTopK(s, uploadDocs(t, s, docs), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{7, 3, 0}
	for i, w := range want {
		if got[i].Score != w {
			t.Fatalf("got[%d].Score = %v, want %v", i, got[i].Score, w)
		}
	}
}

func TestRadixSortEmptyAndKOverflow(t *testing.T) {
	s := newStream()
	got, _, err := RadixSortTopK(s, uploadDocs(t, s, nil), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("empty input must yield empty output")
	}
	docs := genDocs(rand.New(rand.NewSource(61)), 5)
	got, _, err = RadixSortTopK(s, uploadDocs(t, s, docs), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("k > n: got %d results, want 5", len(got))
	}
}

func TestBucketSelectMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	s := newStream()
	for _, n := range []int{1, 10, 100, 1000, 50000} {
		for _, k := range []int{1, 10, 64} {
			docs := genDocs(rng, n)
			got, _, err := BucketSelectTopK(s, uploadDocs(t, s, docs), k)
			if err != nil {
				t.Fatal(err)
			}
			want := refTopK(docs, k)
			if !scoresEqual(got, want) {
				t.Fatalf("n=%d k=%d: scores differ", n, k)
			}
		}
	}
}

func TestBucketSelectAllEqualScores(t *testing.T) {
	s := newStream()
	docs := make([]ScoredDoc, 100)
	for i := range docs {
		docs[i] = ScoredDoc{DocID: uint32(i), Score: 2.5}
	}
	got, _, err := BucketSelectTopK(s, uploadDocs(t, s, docs), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d results, want 10", len(got))
	}
	for _, d := range got {
		if d.Score != 2.5 {
			t.Fatalf("unexpected score %v", d.Score)
		}
	}
}

func TestBucketSelectSkewedDistribution(t *testing.T) {
	// One huge outlier among near-identical values stresses the range
	// refinement (most rounds isolate a nearly-empty top bucket).
	rng := rand.New(rand.NewSource(63))
	s := newStream()
	docs := make([]ScoredDoc, 10000)
	for i := range docs {
		docs[i] = ScoredDoc{DocID: uint32(i), Score: float32(rng.Float64() * 0.001)}
	}
	docs[1234].Score = 1e6
	got, _, err := BucketSelectTopK(s, uploadDocs(t, s, docs), 5)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].DocID != 1234 || got[0].Score != 1e6 {
		t.Fatalf("outlier not first: %+v", got[0])
	}
	if !scoresEqual(got, refTopK(docs, 5)) {
		t.Fatal("skewed top-5 mismatch")
	}
}

func TestBucketSelectZeroK(t *testing.T) {
	s := newStream()
	docs := genDocs(rand.New(rand.NewSource(64)), 100)
	got, _, err := BucketSelectTopK(s, uploadDocs(t, s, docs), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("k=0: got %d results", len(got))
	}
}

func TestBucketSelectCheaperThanRadixOnLargeInputs(t *testing.T) {
	// bucketSelect touches the data a few times; radix sort makes 4 full
	// passes. On large candidate sets selection must be cheaper (Figure 7
	// shows radix as the slowest GPU method at 10M).
	rng := rand.New(rand.NewSource(65))
	docs := genDocs(rng, 1<<19)
	devB := newStream()
	if _, _, err := BucketSelectTopK(devB, uploadDocs(t, devB, docs), 10); err != nil {
		t.Fatal(err)
	}
	devR := newStream()
	if _, _, err := RadixSortTopK(devR, uploadDocs(t, devR, docs), 10); err != nil {
		t.Fatal(err)
	}
	if devB.Elapsed() >= devR.Elapsed() {
		t.Fatalf("bucketSelect %v not cheaper than radixSort %v", devB.Elapsed(), devR.Elapsed())
	}
}

func BenchmarkRadixSortTopK100K(b *testing.B) {
	rng := rand.New(rand.NewSource(66))
	docs := genDocs(rng, 100000)
	s := newStream()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := s.H2D(docs, int64(len(docs))*8)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := RadixSortTopK(s, buf, 10); err != nil {
			b.Fatal(err)
		}
		buf.Free()
	}
}

func BenchmarkBucketSelectTopK100K(b *testing.B) {
	rng := rand.New(rand.NewSource(67))
	docs := genDocs(rng, 100000)
	s := newStream()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := s.H2D(docs, int64(len(docs))*8)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := BucketSelectTopK(s, buf, 10); err != nil {
			b.Fatal(err)
		}
		buf.Free()
	}
}
