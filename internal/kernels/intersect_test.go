package kernels

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"griffin/internal/ef"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
)

// refIntersect is the trusted reference: two-pointer intersection.
func refIntersect(a, b []uint32) []uint32 {
	out := []uint32{}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// genWithOverlap builds two ascending lists sharing roughly overlap
// fraction of the shorter list's elements.
func genWithOverlap(rng *rand.Rand, nA, nB int, overlap float64) (a, b []uint32) {
	universe := (nA + nB) * 4
	perm := rng.Perm(universe)
	setA := map[uint32]bool{}
	for len(setA) < nA {
		setA[uint32(perm[len(setA)])] = true
	}
	a = make([]uint32, 0, nA)
	for v := range setA {
		a = append(a, v)
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })

	setB := map[uint32]bool{}
	// Seed shared elements from a.
	for _, v := range a {
		if rng.Float64() < overlap && len(setB) < nB {
			setB[v] = true
		}
	}
	for len(setB) < nB {
		setB[uint32(rng.Intn(universe))] = true
	}
	b = make([]uint32, 0, nB)
	for v := range setB {
		b = append(b, v)
	}
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return a, b
}

func upload(t testing.TB, s *gpu.Stream, vals []uint32) *gpu.Buffer {
	t.Helper()
	buf, err := s.H2D(vals, int64(len(vals))*4)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestMergePathPaperExample(t *testing.T) {
	// Figure 6: A=(1,3,4,6,7,9,15,25,31), B=(1,3,7,10,18,25,31),
	// intersection (1,3,7,25,31).
	s := newStream()
	a := []uint32{1, 3, 4, 6, 7, 9, 15, 25, 31}
	b := []uint32{1, 3, 7, 10, 18, 25, 31}
	res, err := IntersectMergePath(s, upload(t, s, a), upload(t, s, b))
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{1, 3, 7, 25, 31}
	if !reflect.DeepEqual(res.Matches(), want) {
		t.Fatalf("got %v want %v", res.Matches(), want)
	}
}

func TestMergePathMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	s := newStream()
	for _, tc := range []struct {
		nA, nB  int
		overlap float64
	}{
		{10, 10, 0.5}, {100, 100, 0.3}, {1000, 1000, 0.1},
		{1000, 5000, 0.8}, {5000, 100000, 0.5}, {100000, 100000, 0.05},
		{1, 100000, 1.0}, {3, 7, 0},
	} {
		a, b := genWithOverlap(rng, tc.nA, tc.nB, tc.overlap)
		res, err := IntersectMergePath(s, upload(t, s, a), upload(t, s, b))
		if err != nil {
			t.Fatal(err)
		}
		want := refIntersect(a, b)
		if !reflect.DeepEqual(res.Matches(), want) {
			t.Fatalf("nA=%d nB=%d: got %d matches, want %d", tc.nA, tc.nB, res.Count, len(want))
		}
	}
}

func TestMergePathBoundaryStraddle(t *testing.T) {
	// Force matches to land exactly on partition boundaries: identical
	// lists make every element a match and every boundary a straddle
	// candidate.
	s := newStream()
	n := BlockElems * 4
	a := make([]uint32, n)
	for i := range a {
		a[i] = uint32(i * 2)
	}
	b := make([]uint32, n)
	copy(b, a)
	res, err := IntersectMergePath(s, upload(t, s, a), upload(t, s, b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Matches(), a) {
		t.Fatalf("identical-list intersection lost elements: got %d want %d", res.Count, n)
	}
}

func TestMergePathDisjoint(t *testing.T) {
	s := newStream()
	a := []uint32{2, 4, 6, 8}
	b := []uint32{1, 3, 5, 7, 9}
	res, err := IntersectMergePath(s, upload(t, s, a), upload(t, s, b))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Fatalf("disjoint lists produced %d matches", res.Count)
	}
}

func TestMergePathEmpty(t *testing.T) {
	s := newStream()
	res, err := IntersectMergePath(s, upload(t, s, nil), upload(t, s, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Fatalf("empty lists produced %d matches", res.Count)
	}
	res, err = IntersectMergePath(s, upload(t, s, []uint32{1, 2}), upload(t, s, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Fatalf("one empty list produced %d matches", res.Count)
	}
}

func TestMergePathQuick(t *testing.T) {
	s := newStream()
	f := func(rawA, rawB []uint16) bool {
		a := dedupSort(rawA)
		b := dedupSort(rawB)
		res, err := IntersectMergePath(s, mustUpload(s, a), mustUpload(s, b))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(res.Matches(), refIntersect(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func dedupSort(raw []uint16) []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	for _, v := range raw {
		if !seen[uint32(v)] {
			seen[uint32(v)] = true
			out = append(out, uint32(v))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if out == nil {
		out = []uint32{}
	}
	return out
}

// dedupAscending removes duplicates from an already-sorted slice.
func dedupAscending(vals []uint32) []uint32 {
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func mustUpload(s *gpu.Stream, vals []uint32) *gpu.Buffer {
	buf, err := s.H2D(vals, int64(len(vals))*4)
	if err != nil {
		panic(err)
	}
	return buf
}

func TestBinarySearchIntersectMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	s := newStream()
	for _, tc := range []struct {
		nA, nB  int
		overlap float64
	}{
		{10, 10000, 0.9}, {100, 100000, 0.5}, {1000, 1000, 0.2}, {1, 50, 1.0},
	} {
		a, b := genWithOverlap(rng, tc.nA, tc.nB, tc.overlap)
		res, err := IntersectBinarySearch(s, upload(t, s, a), upload(t, s, b))
		if err != nil {
			t.Fatal(err)
		}
		want := refIntersect(a, b)
		if !reflect.DeepEqual(res.Matches(), want) {
			t.Fatalf("nA=%d nB=%d: got %d matches, want %d", tc.nA, tc.nB, res.Count, len(want))
		}
	}
}

func TestBinarySearchEmpty(t *testing.T) {
	s := newStream()
	res, err := IntersectBinarySearch(s, upload(t, s, nil), upload(t, s, []uint32{1}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Fatal("empty short list must produce no matches")
	}
}

func TestBinarySkipsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	s := newStream()
	for _, tc := range []struct {
		nA, nB  int
		overlap float64
	}{
		{10, 100000, 0.9}, {100, 500000, 0.5}, {500, 100000, 0.0}, {1, 300, 1.0},
	} {
		a, b := genWithOverlap(rng, tc.nA, tc.nB, tc.overlap)
		longList, err := ef.Compress(b)
		if err != nil {
			t.Fatal(err)
		}
		longBuf, err := UploadEF(s, longList)
		if err != nil {
			t.Fatal(err)
		}
		res, err := IntersectBinarySkips(s, upload(t, s, a), longBuf)
		if err != nil {
			t.Fatal(err)
		}
		want := refIntersect(a, b)
		if !reflect.DeepEqual(res.Matches(), want) {
			t.Fatalf("nA=%d nB=%d: got %d matches, want %d", tc.nA, tc.nB, res.Count, len(want))
		}
	}
}

func TestBinarySkipsValueBelowAllBlocks(t *testing.T) {
	s := newStream()
	b := []uint32{100, 200, 300}
	longList, _ := ef.Compress(b)
	longBuf, _ := UploadEF(s, longList)
	res, err := IntersectBinarySkips(s, upload(t, s, []uint32{1, 100, 99}), longBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Matches(), []uint32{100}) {
		t.Fatalf("got %v want [100]", res.Matches())
	}
}

func TestBinarySkipsDecompressesOnlyNeededBlocks(t *testing.T) {
	// Probing a high-ratio pair (1K short vs 8M long, lambda = 8192) should
	// touch at most 1K of the long list's 64K blocks, so the post-upload
	// simulated cost must be well below fully decompressing the long list.
	rng := rand.New(rand.NewSource(53))
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	b := genAscending(rng, 1<<23, 20)
	longList, _ := ef.Compress(b)
	a := make([]uint32, 1024)
	for i := range a {
		a[i] = b[rng.Intn(len(b))]
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	a = dedupAscending(a)

	sSkips := dev.NewStream()
	longBuf, _ := UploadEF(sSkips, longList)
	aBuf := mustUpload(sSkips, a)
	base := sSkips.Elapsed()
	if _, err := IntersectBinarySkips(sSkips, aBuf, longBuf); err != nil {
		t.Fatal(err)
	}
	skipsCost := sSkips.Elapsed() - base

	sFull := dev.NewStream()
	longBuf2, _ := UploadEF(sFull, longList)
	base = sFull.Elapsed()
	if _, _, err := ParaEFDecompress(sFull, longBuf2); err != nil {
		t.Fatal(err)
	}
	fullCost := sFull.Elapsed() - base

	if skipsCost >= fullCost {
		t.Fatalf("skip-based path %v not cheaper than full decompression %v", skipsCost, fullCost)
	}
}

func TestScanExclusive(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	s := newStream()
	for _, n := range []int{0, 1, 127, 128, 129, 1000, 10000} {
		vals := make([]int32, n)
		for i := range vals {
			vals[i] = int32(rng.Intn(10))
		}
		offsets, total, _ := ScanExclusive(s, vals)
		var acc int64
		for i, v := range vals {
			if int64(offsets[i]) != acc {
				t.Fatalf("n=%d: offsets[%d] = %d, want %d", n, i, offsets[i], acc)
			}
			acc += int64(v)
		}
		if total != acc {
			t.Fatalf("n=%d: total = %d, want %d", n, total, acc)
		}
	}
}

func TestMergePathCheaperThanBinaryOnComparableLists(t *testing.T) {
	// Figure 13's headline: on comparable-length lists, GPU merge beats
	// GPU binary (paper: up to 2.29x).
	rng := rand.New(rand.NewSource(55))
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	a, b := genWithOverlap(rng, 1<<19, 1<<19, 0.3)

	sM := dev.NewStream()
	if _, err := IntersectMergePath(sM, mustUpload(sM, a), mustUpload(sM, b)); err != nil {
		t.Fatal(err)
	}
	sB := dev.NewStream()
	if _, err := IntersectBinarySearch(sB, mustUpload(sB, a), mustUpload(sB, b)); err != nil {
		t.Fatal(err)
	}
	if sM.Elapsed() >= sB.Elapsed() {
		t.Fatalf("mergepath %v not faster than binary %v on comparable lists",
			sM.Elapsed(), sB.Elapsed())
	}
}

func BenchmarkMergePath1M(b *testing.B) {
	rng := rand.New(rand.NewSource(56))
	x, y := genWithOverlap(rng, 1<<20, 1<<20, 0.2)
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := dev.NewStream()
		res, err := IntersectMergePath(s, mustUpload(s, x), mustUpload(s, y))
		if err != nil {
			b.Fatal(err)
		}
		res.Out.Free()
	}
}

func BenchmarkBinarySearch1Mx1K(b *testing.B) {
	rng := rand.New(rand.NewSource(57))
	x, y := genWithOverlap(rng, 1<<10, 1<<20, 0.5)
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := dev.NewStream()
		res, err := IntersectBinarySearch(s, mustUpload(s, x), mustUpload(s, y))
		if err != nil {
			b.Fatal(err)
		}
		res.Out.Free()
	}
}
