package kernels

import (
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/pfordelta"
)

// UploadPFD copies a compressed PForDelta list to the device, charging
// PCIe transfer for its compressed size.
func UploadPFD(s *gpu.Stream, l *pfordelta.List) (*gpu.Buffer, error) {
	return s.H2D(l, (l.CompressedBits()+7)/8)
}

// PFDDecompressGPU is the direct GPU port of PForDelta decompression the
// paper argues *against* (§2.3, §3.1.1): "The CPU decompression method
// PforDelta is a poor match for GPU implementation, because it maintains
// a linked list to store the exception pointers that it must process
// sequentially. This leads to slow global memory accesses and thread
// divergence."
//
// The port mirrors that structure faithfully so the claim is measurable:
//
//   - phase 1 unpacks the b-bit slots in parallel (one thread per
//     element — this part parallelizes fine);
//   - phase 2 walks each block's exception linked list *sequentially* on
//     lane 0 while the other 127 lanes idle (charged as divergent ops
//     with uncoalesced exception-table reads);
//   - phase 3 computes the block's d-gap prefix sum, again a serial
//     dependency chain on lane 0.
//
// Compare BenchmarkParaEFDecompress1M / the Figure-12 experiment: Para-EF
// needs no sequential pass, which is exactly why Griffin adopts it.
func PFDDecompressGPU(s *gpu.Stream, compressed *gpu.Buffer) (*gpu.Buffer, *hwmodel.LaunchStats, error) {
	l := compressed.Data.(*pfordelta.List)
	out, err := s.Alloc(int64(l.N) * 4)
	if err != nil {
		return nil, nil, err
	}
	dst := make([]uint32, l.N)
	out.Data = dst
	if l.N == 0 {
		return out, &hwmodel.LaunchStats{}, nil
	}

	blocks := l.Blocks
	k := &gpu.Kernel{
		Name:  "pfd_decompress_direct_port",
		Grid:  len(blocks),
		Block: ThreadsPerBlock,
		Phases: []gpu.Phase{
			// Phase 1: parallel unpack of b-bit slots (gaps or chain
			// pointers — indistinguishable until the chain walk).
			func(c *gpu.Ctx) {
				blk := &blocks[c.Block]
				i := c.Thread
				if i >= blk.N {
					return
				}
				dst[c.Block*pfordelta.BlockSize+i] = unpackSlot(blk, i)
				c.GlobalRead(4)
				c.Op(4)
				c.GlobalWrite(4)
			},
			// Phase 2: the sequential exception-chain walk. One lane per
			// block follows the linked list; 127 lanes idle (the warp
			// divergence the paper calls out), and each hop is a
			// dependent, scattered read.
			func(c *gpu.Ctx) {
				if c.Thread != 0 {
					return
				}
				blk := &blocks[c.Block]
				base := c.Block * pfordelta.BlockSize
				idx := blk.FirstException
				for k := 0; k < len(blk.Exceptions); k++ {
					d := int(dst[base+idx])
					dst[base+idx] = blk.Exceptions[k]
					idx += d + 1
					// Dependent pointer chase: serialized and uncoalesced.
					c.DependentOp(3)
					c.UncoalescedRead(8)
				}
			},
			// Phase 3: serial prefix sum of the block's d-gaps (a real
			// port would use a parallel scan here, but the exception walk
			// already forced per-block serialization, and the paper's
			// complaint is about the combination).
			func(c *gpu.Ctx) {
				if c.Thread != 0 {
					return
				}
				blk := &blocks[c.Block]
				base := c.Block * pfordelta.BlockSize
				acc := blk.FirstDocID
				dst[base] = acc
				for i := 1; i < blk.N; i++ {
					acc += dst[base+i]
					dst[base+i] = acc
				}
				c.DependentOp(blk.N)
				c.GlobalRead(4 * blk.N)
				c.GlobalWrite(4 * blk.N)
			},
		},
	}
	st := s.Launch(k)
	return out, st, nil
}

// unpackSlot reads the i-th b-bit slot of the block's packed array.
func unpackSlot(blk *pfordelta.Block, i int) uint32 {
	pos := i * blk.B
	wi, off := pos/64, pos%64
	v := blk.Packed[wi] >> uint(off)
	if rem := 64 - off; blk.B > rem {
		v |= blk.Packed[wi+1] << uint(rem)
	}
	return uint32(v & ((1 << uint(blk.B)) - 1))
}
