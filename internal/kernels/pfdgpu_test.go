package kernels

import (
	"math/rand"
	"reflect"
	"testing"

	"griffin/internal/ef"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/pfordelta"
)

func pfdDecompressOnDevice(t testing.TB, s *gpu.Stream, ids []uint32) []uint32 {
	t.Helper()
	l, err := pfordelta.Compress(ids)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := UploadPFD(s, l)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := PFDDecompressGPU(s, buf)
	if err != nil {
		t.Fatal(err)
	}
	return out.Data.([]uint32)
}

func TestPFDGPUMatchesInput(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	s := newStream()
	for _, n := range []int{1, 127, 128, 129, 1000, 50000} {
		ids := genAscending(rng, n, 100)
		// Sprinkle large gaps so exception chains are exercised.
		for i := 5; i < len(ids); i += 11 {
			for j := i; j < len(ids); j++ {
				ids[j] += 1 << 18
			}
		}
		got := pfdDecompressOnDevice(t, s, ids)
		if !reflect.DeepEqual(got, ids) {
			t.Fatalf("n=%d: GPU PFD port round trip mismatch", n)
		}
	}
}

func TestPFDGPUEmpty(t *testing.T) {
	s := newStream()
	l, _ := pfordelta.Compress(nil)
	buf, err := UploadPFD(s, l)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := PFDDecompressGPU(s, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Data.([]uint32); len(got) != 0 {
		t.Fatalf("expected empty, got %d", len(got))
	}
}

// TestPaperClaimPFDPortSlowerThanParaEF reproduces §3.1.1's argument for
// adopting Elias-Fano: the direct PForDelta port's sequential exception
// chains and serial prefix sums leave it well behind Para-EF on the same
// data at paper-relevant sizes.
func TestPaperClaimPFDPortSlowerThanParaEF(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	ids := genAscending(rng, 1<<20, 40)

	sEF := dev.NewStream()
	efl, _ := ef.Compress(ids)
	efBuf, _ := UploadEF(sEF, efl)
	base := sEF.Elapsed()
	if _, _, err := ParaEFDecompress(sEF, efBuf); err != nil {
		t.Fatal(err)
	}
	efTime := sEF.Elapsed() - base

	sPFD := dev.NewStream()
	pfdl, _ := pfordelta.Compress(ids)
	pfdBuf, _ := UploadPFD(sPFD, pfdl)
	base = sPFD.Elapsed()
	out, _, err := PFDDecompressGPU(sPFD, pfdBuf)
	if err != nil {
		t.Fatal(err)
	}
	pfdTime := sPFD.Elapsed() - base

	if !reflect.DeepEqual(out.Data.([]uint32), ids) {
		t.Fatal("PFD port produced wrong output")
	}
	if pfdTime < 2*efTime {
		t.Fatalf("PFD port (%v) not clearly slower than Para-EF (%v); the paper's claim should reproduce",
			pfdTime, efTime)
	}
}

func BenchmarkPFDGPUDirectPort1M(b *testing.B) {
	rng := rand.New(rand.NewSource(82))
	ids := genAscending(rng, 1<<20, 40)
	l, _ := pfordelta.Compress(ids)
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	b.SetBytes(int64(len(ids)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := dev.NewStream()
		buf, _ := UploadPFD(s, l)
		out, _, err := PFDDecompressGPU(s, buf)
		if err != nil {
			b.Fatal(err)
		}
		out.Free()
		buf.Free()
	}
}
