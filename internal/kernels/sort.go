package kernels

import (
	"math"

	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
)

// ScoredDoc pairs a candidate document with its relevance score, the unit
// the ranking kernels operate on.
type ScoredDoc struct {
	DocID uint32
	Score float32
}

// chunkTarget is the number of elements each thread processes in the
// chunked ranking kernels (histogram/scatter grain).
const chunkTarget = 256

// rankChunks returns the chunk count and grid size for n elements.
func rankChunks(n int) (numChunks, grid int) {
	numChunks = (n + chunkTarget - 1) / chunkTarget
	if numChunks < 1 {
		numChunks = 1
	}
	grid = gpu.GridFor(numChunks, ThreadsPerBlock)
	return numChunks, grid
}

// sortKey maps a float32 score to a uint32 whose unsigned ascending order
// matches the float's numeric ascending order (the standard sign-flip
// trick radix sorts use for IEEE-754 keys); the top scores then sit at the
// sorted tail.
func sortKey(f float32) uint32 {
	bits := math.Float32bits(f)
	if bits&0x80000000 != 0 {
		return ^bits
	}
	return bits | 0x80000000
}

// RadixSortTopK ranks candidates by brute force (the paper's "GPU
// radixSort" baseline in Figure 7): a full LSD radix sort of all scores on
// the device, after which the top k are read off the tail. It returns the
// top-k docs in descending score order.
//
// Each 8-bit digit pass is the classic three-step device sort: per-chunk
// digit histograms, an exclusive scan over (digit, chunk) counts, and a
// stable scatter. The scatter's destinations are digit-dependent, so its
// writes are charged as uncoalesced — the cost that keeps brute-force
// sorting the slowest ranking option (Figure 7).
func RadixSortTopK(s *gpu.Stream, docsBuf *gpu.Buffer, k int) ([]ScoredDoc, *hwmodel.LaunchStats, error) {
	docs := docsBuf.Data.([]ScoredDoc)
	n := len(docs)
	agg := &hwmodel.LaunchStats{}
	if n == 0 {
		return nil, agg, nil
	}

	keys := make([]uint32, n)
	vals := make([]ScoredDoc, n)
	copy(vals, docs)
	for i, d := range docs {
		keys[i] = sortKey(d.Score)
	}
	tmpKeys := make([]uint32, n)
	tmpVals := make([]ScoredDoc, n)

	numChunks, grid := rankChunks(n)
	chunkLen := (n + numChunks - 1) / numChunks

	const radixBits = 8
	const buckets = 1 << radixBits

	for pass := 0; pass < 32/radixBits; pass++ {
		shift := uint(pass * radixBits)
		counts := make([]int32, buckets*numChunks)

		kHist := &gpu.Kernel{
			Name:  "radix_histogram",
			Grid:  grid,
			Block: ThreadsPerBlock,
			Phases: []gpu.Phase{func(c *gpu.Ctx) {
				chunk := c.GlobalID()
				if chunk >= numChunks {
					return
				}
				lo, hi := chunk*chunkLen, (chunk+1)*chunkLen
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					d := (keys[i] >> shift) & (buckets - 1)
					counts[int(d)*numChunks+chunk]++
				}
				work := hi - lo
				if work > 0 {
					c.GlobalRead(4 * work)
					c.Op(2 * work)
					c.SharedAccess(4 * work)
				}
			}},
		}
		st := s.Launch(kHist)
		agg.Add(st)
		agg.Blocks, agg.ThreadsPerBlock = st.Blocks, st.ThreadsPerBlock
		agg.Phases += st.Phases

		// Device scan over (digit-major, chunk-minor) counts gives each
		// chunk a stable base offset per digit.
		offsets, _, scanSt := ScanExclusive(s, counts)
		agg.Add(scanSt)
		agg.Phases += scanSt.Phases

		kScatter := &gpu.Kernel{
			Name:  "radix_scatter",
			Grid:  grid,
			Block: ThreadsPerBlock,
			Phases: []gpu.Phase{func(c *gpu.Ctx) {
				chunk := c.GlobalID()
				if chunk >= numChunks {
					return
				}
				lo, hi := chunk*chunkLen, (chunk+1)*chunkLen
				if hi > n {
					hi = n
				}
				var local [buckets]int64
				for d := 0; d < buckets; d++ {
					local[d] = int64(offsets[d*numChunks+chunk])
				}
				for i := lo; i < hi; i++ {
					d := (keys[i] >> shift) & (buckets - 1)
					pos := local[d]
					local[d]++
					tmpKeys[pos] = keys[i]
					tmpVals[pos] = vals[i]
				}
				work := hi - lo
				if work > 0 {
					c.GlobalRead(12 * work) // key + value loads, coalesced
					// Destination order is digit-dependent: scattered.
					c.UncoalescedWrite(12 * work)
					c.DivergentOp(work) // bucket choice diverges the warp
					c.Op(3 * work)
				}
			}},
		}
		st = s.Launch(kScatter)
		agg.Add(st)
		agg.Phases += st.Phases

		keys, tmpKeys = tmpKeys, keys
		vals, tmpVals = tmpVals, vals
	}

	if k > n {
		k = n
	}
	// Keys ascend; top-k scores sit at the tail. D2H only the k results.
	out := make([]ScoredDoc, k)
	for i := 0; i < k; i++ {
		out[i] = vals[n-1-i]
	}
	s.D2H(docsBuf, int64(k)*8)
	return out, agg, nil
}
