package kernels

import (
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
)

// VT is the number of merge-path steps (elements from A plus elements
// from B) each thread merges serially — moderngpu's "values per thread".
const VT = 32

// BlockElems is the number of path steps covered by one thread block:
// its partition pair is what must fit in shared memory (GPU MergePath's
// sizing rule, §3.1.2): 4096 x 4 bytes x 2 lists = 32 KB, within the
// K20's 48 KB per block.
const BlockElems = ThreadsPerBlock * VT

// IntersectResult carries the output of a device intersection: the device
// buffer holding the compacted matches and the match count.
type IntersectResult struct {
	Out   *gpu.Buffer
	Count int
	Stats hwmodel.LaunchStats
}

// Matches returns the matched docIDs (device-resident payload).
func (r *IntersectResult) Matches() []uint32 {
	return r.Out.Data.([]uint32)[:r.Count]
}

// IntersectMergePath intersects two decompressed, strictly-ascending
// device arrays using the GPU MergePath algorithm (Green, McColl, Bader —
// ICS 2012), the load-balanced parallel intersection Griffin-GPU uses when
// list lengths are comparable (§3.1.2).
//
// Partitioning is two-level, as in the reference CUDA implementations:
//
//  1. a coarse diagonal binary search against global memory finds each
//     thread block's boundary on the merge path (one search per 4096 path
//     steps — Figure 6's cross-diagonal construction);
//  2. each block stages its partition pair into shared memory, and every
//     thread runs a fine diagonal search there to carve out its own VT
//     path steps, then merges them serially (Figure 5's even partitions:
//     perfectly load-balanced, no synchronization during the merge).
//
// A match whose A-copy and B-copy straddle a partition boundary is claimed
// by the right-hand partition (the straddle check), keeping counts exact.
// A scan over per-thread match counts and a compaction pass produce the
// final dense result.
func IntersectMergePath(s *gpu.Stream, aBuf, bBuf *gpu.Buffer) (*IntersectResult, error) {
	a := aBuf.Data.([]uint32)
	b := bBuf.Data.([]uint32)
	total := len(a) + len(b)
	if total == 0 {
		out, err := s.Alloc(0)
		if err != nil {
			return nil, err
		}
		out.Data = []uint32{}
		return &IntersectResult{Out: out}, nil
	}

	numBlocks := (total + BlockElems - 1) / BlockElems
	numParts := numBlocks * ThreadsPerBlock
	blockA := make([]int32, numBlocks+1) // coarse boundaries in A
	counts := make([]int32, numParts)
	temp := make([]uint32, numParts*VT/2+1)

	agg := &hwmodel.LaunchStats{}

	k := &gpu.Kernel{
		Name:        "mergepath_intersect",
		Grid:        numBlocks,
		Block:       ThreadsPerBlock,
		SharedBytes: 2 * BlockElems * 4,
		Phases: []gpu.Phase{
			// Phase 1: coarse diagonal search, one boundary per block
			// (thread 0), plus the terminal boundary (thread 1, block 0).
			func(c *gpu.Ctx) {
				if c.Thread == 0 {
					d := c.Block * BlockElems
					i, probes := diagonalSearch(a, b, 0, len(a), d)
					blockA[c.Block] = int32(i)
					c.DivergentOp(probes)
					c.UncoalescedRead(8 * probes)
				}
				if c.Block == 0 && c.Thread == 1 {
					i, probes := diagonalSearch(a, b, 0, len(a), total)
					blockA[numBlocks] = int32(i)
					c.DivergentOp(probes)
					c.UncoalescedRead(8 * probes)
				}
			},
			// Phase 2: stage the block's partition pair through shared
			// memory, fine-partition per thread, merge serially.
			func(c *gpu.Ctx) {
				blkLo := c.Block * BlockElems
				blkHi := blkLo + BlockElems
				if blkHi > total {
					blkHi = total
				}
				aLo, aHi := int(blockA[c.Block]), int(blockA[c.Block+1])
				if c.Thread == 0 {
					// The cooperative staging load: every element of the
					// block's A- and B-ranges moves global -> shared once,
					// coalesced. Charged once per block.
					loadBytes := 4 * (blkHi - blkLo)
					c.GlobalRead(loadBytes)
					c.SharedAccess(loadBytes)
				}

				d := blkLo + c.Thread*VT
				if d >= blkHi {
					return
				}
				dEnd := d + VT
				if dEnd > blkHi {
					dEnd = blkHi
				}
				// Fine diagonal searches run against the staged copy:
				// shared-memory traffic, full occupancy.
				i0, probes0 := diagonalSearch(a, b, aLo, aHi, d)
				i1, probes1 := diagonalSearch(a, b, aLo, aHi, dEnd)
				c.Op(probes0 + probes1)
				c.SharedAccess(8 * (probes0 + probes1))

				j0, j1 := d-i0, dEnd-i1
				kIdx := c.Block*ThreadsPerBlock + c.Thread
				out := temp[kIdx*VT/2:]
				n := 0
				// Straddle check: a match split across the partition
				// boundary has its A-copy as the previous partition's last
				// step and its B-copy as this partition's first.
				if j0 < j1 && i0 > 0 && b[j0] == a[i0-1] {
					out[n] = b[j0]
					n++
				}
				i, j := i0, j0
				steps := 0
				for i < i1 && j < j1 {
					steps++
					switch {
					case a[i] < b[j]:
						i++
					case a[i] > b[j]:
						j++
					default:
						out[n] = a[i]
						n++
						i++
						j++
					}
				}
				counts[kIdx] = int32(n)
				c.Op(steps)
				c.SharedAccess(8 * steps)
				c.GlobalWrite(4 * n)
			},
		},
	}
	st := s.Launch(k)
	agg.Add(st)
	agg.Blocks, agg.ThreadsPerBlock, agg.Phases = st.Blocks, st.ThreadsPerBlock, st.Phases

	// Scan match counts for stable output offsets, then compact.
	offsets, totalMatches, scanSt := ScanExclusive(s, counts)
	agg.Add(scanSt)
	agg.Phases += scanSt.Phases

	outBuf, err := s.Alloc(totalMatches * 4)
	if err != nil {
		return nil, err
	}
	result := make([]uint32, totalMatches)
	outBuf.Data = result
	ck := &gpu.Kernel{
		Name:  "mergepath_compact",
		Grid:  numBlocks,
		Block: ThreadsPerBlock,
		Phases: []gpu.Phase{func(c *gpu.Ctx) {
			kIdx := c.GlobalID()
			if kIdx >= numParts {
				return
			}
			n := int(counts[kIdx])
			if n == 0 {
				return
			}
			copy(result[offsets[kIdx]:], temp[kIdx*VT/2:kIdx*VT/2+n])
			c.GlobalRead(4 * n)
			c.GlobalWrite(4 * n)
			c.Op(n)
		}},
	}
	cst := s.Launch(ck)
	agg.Add(cst)
	agg.Phases += cst.Phases

	return &IntersectResult{Out: outBuf, Count: int(totalMatches), Stats: *agg}, nil
}

// diagonalSearch finds the merge-path crossing of the diagonal at combined
// offset d: the number of rightward (A-consuming) steps in the first d
// path steps, constrained to lie in [aLo, aHi]. Returns that count and the
// number of binary-search probes performed.
//
// Uses the classic merge-path invariant with the tie rule "advance A on
// equality", matching the intersection's A-first order.
func diagonalSearch(a, b []uint32, aLo, aHi, d int) (i, probes int) {
	lo := d - len(b)
	if lo < aLo {
		lo = aLo
	}
	hi := d
	if hi > aHi {
		hi = aHi
	}
	for lo < hi {
		probes++
		mid := (lo + hi) / 2
		j := d - mid - 1
		// The path takes step mid+1 from A iff a[mid] <= b[j].
		if j >= len(b) || (j >= 0 && a[mid] <= b[j]) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, probes
}
