package kernels

import (
	"griffin/internal/ef"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
)

// IntersectBinarySearch intersects a short decompressed device array with a
// long one by parallel binary search: one thread per element of the short
// list probes the long list. This is the conventional GPU intersection the
// paper compares MergePath against (Figure 13, "GPU binary"): fast thanks
// to raw parallelism, but warp-divergent and uncoalesced — each probe
// lands threads in distant memory — which is why MergePath still beats it
// by up to 2.29x on comparable-length lists.
func IntersectBinarySearch(s *gpu.Stream, shortBuf, longBuf *gpu.Buffer) (*IntersectResult, error) {
	a := shortBuf.Data.([]uint32)
	b := longBuf.Data.([]uint32)

	flags := make([]int32, len(a))
	grid := gpu.GridFor(len(a), ThreadsPerBlock)
	agg := &hwmodel.LaunchStats{}

	if len(a) > 0 {
		k := &gpu.Kernel{
			Name:  "binsearch_intersect",
			Grid:  grid,
			Block: ThreadsPerBlock,
			Phases: []gpu.Phase{func(c *gpu.Ctx) {
				i := c.GlobalID()
				if i >= len(a) {
					return
				}
				found, probes := binarySearch(b, a[i])
				if found {
					flags[i] = 1
				}
				// Every probe is a scattered read and a data-dependent
				// branch: neighbors diverge almost every step (§2.3).
				c.DivergentOp(probes)
				c.UncoalescedRead(4 * probes)
			}},
		}
		st := s.Launch(k)
		agg.Add(st)
		agg.Blocks, agg.ThreadsPerBlock, agg.Phases = st.Blocks, st.ThreadsPerBlock, st.Phases
	}

	return compactFlagged(s, a, flags, grid, agg)
}

// compactFlagged scans the match flags and gathers flagged elements of a
// into a fresh device buffer, preserving order.
func compactFlagged(s *gpu.Stream, a []uint32, flags []int32, grid int, agg *hwmodel.LaunchStats) (*IntersectResult, error) {
	offsets, total, scanSt := ScanExclusive(s, flags)
	agg.Add(scanSt)
	agg.Phases += scanSt.Phases

	outBuf, err := s.Alloc(total * 4)
	if err != nil {
		return nil, err
	}
	result := make([]uint32, total)
	outBuf.Data = result

	if len(a) > 0 {
		ck := &gpu.Kernel{
			Name:  "compact_flagged",
			Grid:  grid,
			Block: ThreadsPerBlock,
			Phases: []gpu.Phase{func(c *gpu.Ctx) {
				i := c.GlobalID()
				if i >= len(a) || flags[i] == 0 {
					return
				}
				result[offsets[i]] = a[i]
				c.GlobalRead(8)
				c.GlobalWrite(4)
				c.Op(1)
			}},
		}
		cst := s.Launch(ck)
		agg.Add(cst)
		agg.Phases += cst.Phases
	}
	return &IntersectResult{Out: outBuf, Count: int(total), Stats: *agg}, nil
}

// binarySearch probes sorted b for v, returning whether it was found and
// the probe count.
func binarySearch(b []uint32, v uint32) (found bool, probes int) {
	lo, hi := 0, len(b)
	for lo < hi {
		probes++
		mid := (lo + hi) / 2
		switch {
		case b[mid] < v:
			lo = mid + 1
		case b[mid] > v:
			hi = mid
		default:
			return true, probes
		}
	}
	return false, probes
}

// IntersectBinarySkips intersects a short decompressed device array with a
// *compressed* long list by binary searching the long list's skip pointers
// first (§3.1.2: "Griffin-GPU first does binary search over the skip
// pointers instead of the long list to identify blocks that may contain
// the elements in the short list. It then only transfers, decompresses,
// and processes those blocks."). When the length ratio is large this skips
// the bulk of the decompression work — the effect behind the paper's
// lambda > 128 block-skipping analysis (Figure 9).
//
// longList must be the *ef.List payload of a device buffer (UploadEF).
func IntersectBinarySkips(s *gpu.Stream, shortBuf, longBuf *gpu.Buffer) (*IntersectResult, error) {
	a := shortBuf.Data.([]uint32)
	l := longBuf.Data.(*ef.List)
	numBlocks := len(l.Blocks)

	flags := make([]int32, len(a))
	grid := gpu.GridFor(len(a), ThreadsPerBlock)
	agg := &hwmodel.LaunchStats{}

	if len(a) == 0 || numBlocks == 0 {
		return compactFlagged(s, a, flags, grid, agg)
	}

	// Skip-pointer array: first docID of each block (device-resident as
	// part of the uploaded list).
	firsts := make([]uint32, numBlocks)
	for i := range l.Blocks {
		firsts[i] = l.Blocks[i].FirstDocID
	}

	// Kernel 1: route each short-list element to the candidate block and
	// mark that block as needed.
	blockOf := make([]int32, len(a))
	needed := make([]int32, numBlocks)
	k1 := &gpu.Kernel{
		Name:  "skips_route",
		Grid:  grid,
		Block: ThreadsPerBlock,
		Phases: []gpu.Phase{func(c *gpu.Ctx) {
			i := c.GlobalID()
			if i >= len(a) {
				return
			}
			bi, probes := upperBoundBlock(firsts, a[i])
			blockOf[i] = int32(bi)
			c.DivergentOp(probes)
			c.UncoalescedRead(4 * probes)
		}},
	}
	st1 := s.Launch(k1)
	agg.Add(st1)
	agg.Blocks, agg.ThreadsPerBlock, agg.Phases = st1.Blocks, st1.ThreadsPerBlock, st1.Phases
	// Mark needed blocks (an atomic-or kernel on real hardware; the write
	// set is data-dependent, so it runs after the routing barrier).
	for _, bi := range blockOf {
		needed[bi] = 1
	}

	// Gather the needed block list and decompress only those blocks
	// (Para-EF on the subset).
	var neededIDs []int32
	for bi, f := range needed {
		if f != 0 {
			neededIDs = append(neededIDs, int32(bi))
		}
	}
	scratch := make([]uint32, len(neededIDs)*ef.BlockSize)
	scratchLen := make([]int32, len(neededIDs))
	slotOf := make([]int32, numBlocks)
	for slot, bi := range neededIDs {
		slotOf[bi] = int32(slot)
	}
	k2 := &gpu.Kernel{
		Name:  "skips_decompress_subset",
		Grid:  len(neededIDs),
		Block: ThreadsPerBlock,
		Phases: []gpu.Phase{func(c *gpu.Ctx) {
			if c.Thread != 0 {
				return
			}
			blk := &l.Blocks[neededIDs[c.Block]]
			n := blk.DecompressInto(scratch[c.Block*ef.BlockSize : (c.Block+1)*ef.BlockSize])
			scratchLen[c.Block] = int32(n)
			// Charged as the Para-EF phases would be for one block: the
			// full Algorithm-1 pipeline per element.
			c.GlobalRead(int(blk.HighLen+7)/8 + (n*blk.B+7)/8)
			c.Op(8 * n)
			c.SharedAccess(10 * n)
			c.GlobalWrite(4 * n)
		}},
	}
	st2 := s.Launch(k2)
	agg.Add(st2)
	agg.Phases += st2.Phases

	// Kernel 3: binary search within the candidate block.
	k3 := &gpu.Kernel{
		Name:  "skips_probe_block",
		Grid:  grid,
		Block: ThreadsPerBlock,
		Phases: []gpu.Phase{func(c *gpu.Ctx) {
			i := c.GlobalID()
			if i >= len(a) {
				return
			}
			slot := slotOf[blockOf[i]]
			blkVals := scratch[int(slot)*ef.BlockSize : int(slot)*ef.BlockSize+int(scratchLen[slot])]
			found, probes := binarySearch(blkVals, a[i])
			if found {
				flags[i] = 1
			}
			c.DivergentOp(probes)
			c.UncoalescedRead(4 * probes)
		}},
	}
	st3 := s.Launch(k3)
	agg.Add(st3)
	agg.Phases += st3.Phases

	return compactFlagged(s, a, flags, grid, agg)
}

// upperBoundBlock returns the index of the last block whose first docID is
// <= v (0 if v precedes every block), plus the probe count.
func upperBoundBlock(firsts []uint32, v uint32) (idx, probes int) {
	lo, hi := 0, len(firsts)
	for lo < hi {
		probes++
		mid := (lo + hi) / 2
		if firsts[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0, probes
	}
	return lo - 1, probes
}
