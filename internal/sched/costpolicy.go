package sched

import (
	"time"

	"griffin/internal/hwmodel"
)

// CostPolicy schedules each intersection by comparing closed-form cost
// estimates of both placements under the calibrated hardware models,
// instead of the paper's fixed length-ratio threshold. The ratio rule is
// a proxy for exactly this comparison (§3.2 derives 128 from the
// block-size argument and validates it against measured cost curves); the
// estimator makes the comparison explicit, and adapts automatically if
// the models are recalibrated for different hardware — the "more complex
// scheduling" direction the paper says its scheduler can be extended
// toward.
//
// Estimates assume the short operand is already device-resident (true
// mid-query: the intermediate result lives where the previous op ran) and
// use the average compressed size of Elias-Fano postings (~7 bits/doc) for
// transfer costs.
type CostPolicy struct {
	// GPU and CPU are the models to estimate against.
	GPU hwmodel.GPUModel
	CPU hwmodel.CPUModel
	// Sticky keeps the query on the CPU after the first CPU decision,
	// like the paper's prototype.
	Sticky bool

	migrated bool
}

// NewCostPolicy returns a cost policy over the default calibrations.
func NewCostPolicy() *CostPolicy {
	return &CostPolicy{GPU: hwmodel.DefaultGPU(), CPU: hwmodel.DefaultCPU(), Sticky: true}
}

// compressedBytes estimates the PCIe payload of an EF-compressed list.
func compressedBytes(n int) int64 { return int64(n) * 7 / 8 }

// estimateGPU approximates the device cost of one intersection: upload
// the long list compressed, decompress it (Para-EF is bandwidth-bound),
// and run the merge-path kernels, each paying a launch.
func (p *CostPolicy) estimateGPU(shortLen, longLen int) time.Duration {
	transfer := p.GPU.TransferTime(compressedBytes(longLen))
	// Para-EF decompression + intersection kernels: both stream the data;
	// dominated by global-memory traffic at ~5 bytes/element effective,
	// with ~5 launches across the pipeline.
	st := hwmodel.LaunchStats{
		Blocks:           (longLen + 127) / 128,
		ThreadsPerBlock:  128,
		Ops:              int64(8 * (shortLen + longLen)),
		GlobalReadBytes:  int64(5 * (shortLen + longLen)),
		GlobalWriteBytes: int64(4 * (shortLen + longLen)),
	}
	kernels := p.GPU.KernelTime(&st)
	return transfer + kernels + 4*p.GPU.LaunchOverhead
}

// estimateCPU approximates the host cost: below the CPU's own merge/skip
// switch it scans both lists; above it, it probes per short element.
func (p *CostPolicy) estimateCPU(shortLen, longLen int) time.Duration {
	if longLen < 16*shortLen {
		// Block-wise merge: decode both lists + scan.
		w := hwmodel.CPUWork{
			EFDecodedElems: int64(shortLen + longLen),
			MergedElements: int64(shortLen + longLen),
		}
		return p.CPU.Time(w)
	}
	// Skip search: galloping cached probes + in-block select probes.
	w := hwmodel.CPUWork{
		CachedProbes: int64(4 * shortLen),
		SelectProbes: int64(7 * shortLen),
	}
	return p.CPU.Time(w)
}

// Decide implements Policy.
func (p *CostPolicy) Decide(shortLen, longLen int) Decision {
	d := Decision{Where: CPU, Ratio: Ratio(shortLen, longLen)}
	if shortLen <= 0 {
		return d
	}
	if p.Sticky && p.migrated {
		return d
	}
	if p.estimateGPU(shortLen, longLen) < p.estimateCPU(shortLen, longLen) {
		d.Where = GPU
		return d
	}
	p.migrated = true
	return d
}

// Fresh implements Policy.
func (p *CostPolicy) Fresh() Policy {
	return &CostPolicy{GPU: p.GPU, CPU: p.CPU, Sticky: p.Sticky}
}

// QueryEstimator is the plan-level extension of Policy: given the SvS
// pipeline's posting-list lengths (ascending), price the whole query on
// each processor. Plan builders and the load simulator use it to compare
// whole-query placements — the estimation the per-intersection Decide
// cannot express. Policies implement it optionally; assert at use sites.
type QueryEstimator interface {
	// EstimateQuery returns the predicted all-CPU and all-GPU cost of the
	// pipeline over lists of the given lengths. The intermediate is
	// assumed not to shrink between steps (a conservative upper bound:
	// selective early intersections only make both sides cheaper, and the
	// bound errs identically for both placements).
	EstimateQuery(listLens []int) (cpu, gpu time.Duration)
}

// EstimateQuery implements QueryEstimator over the policy's calibrated
// models. The GPU estimate adds the first list's upload + decompression
// (the pipeline's entry cost that Decide amortizes away mid-query).
func (p *CostPolicy) EstimateQuery(listLens []int) (cpu, gpu time.Duration) {
	if len(listLens) == 0 {
		return 0, 0
	}
	cur := listLens[0]
	gpu = p.GPU.TransferTime(compressedBytes(cur))
	for _, l := range listLens[1:] {
		short, long := cur, l
		if long < short {
			short, long = long, short
		}
		cpu += p.estimateCPU(short, long)
		gpu += p.estimateGPU(short, long)
	}
	return cpu, gpu
}
