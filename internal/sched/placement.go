package sched

import (
	"sync/atomic"
	"time"
)

// NodeInfo is the per-device state a placement policy decides on, one
// entry per device in device order.
type NodeInfo struct {
	// Backlog is each device's current compute-queue delay (the
	// gpu.NodeRuntime.Backlogs view): how long a kernel submitted to that
	// device right now would wait before starting.
	Backlog []time.Duration
	// Saving is each device's modeled affinity credit for the query being
	// placed: the transfer time the query would *not* pay on that device
	// because lists it needs are already resident there (in that device's
	// cache). Zero-filled — or nil — when the caller tracks no residency.
	Saving []time.Duration
	// BatchSaving is each device's modeled batching credit: the fixed-cost
	// rebate the query's compute work could collect by joining that
	// device's open cross-query batches (gpu.NodeRuntime.BatchSavings). A
	// device with an open compatible batch is effectively cheaper than its
	// backlog alone suggests — the launch its kernels would ride is already
	// paid for. Nil when the runtime's batching stage is disabled.
	BatchSaving []time.Duration
}

// devices returns the device count described by the info.
func (n NodeInfo) devices() int { return len(n.Backlog) }

// DevicePlacement chooses which device of a multi-GPU node a query runs
// on. It is the inter-device complement of Policy: Policy decides
// CPU-vs-GPU per intersection, DevicePlacement decides *which* GPU per
// query, before admission. Implementations must be safe for concurrent
// use — one instance serves every query on the engine.
type DevicePlacement interface {
	// Place returns the chosen device ordinal in [0, len(info.Backlog)).
	Place(info NodeInfo) int
}

// RoundRobinDevices cycles queries across devices regardless of load —
// the oblivious baseline that spreads work but ignores both backlog skew
// and data residency.
type RoundRobinDevices struct {
	next atomic.Int64
}

// Place implements DevicePlacement.
func (p *RoundRobinDevices) Place(info NodeInfo) int {
	n := info.devices()
	if n <= 1 {
		return 0
	}
	return int((p.next.Add(1) - 1) % int64(n))
}

// LeastBacklogDevices sends each query to the device with the shortest
// compute queue, ties broken toward the lowest ordinal — join-the-
// shortest-queue, blind to data residency.
type LeastBacklogDevices struct{}

// Place implements DevicePlacement.
func (LeastBacklogDevices) Place(info NodeInfo) int {
	best := 0
	for i := 1; i < info.devices(); i++ {
		if info.Backlog[i] < info.Backlog[best] {
			best = i
		}
	}
	return best
}

// AffinityDevices weighs queue length against data residency and batch
// affinity: it picks the device minimizing backlog minus the upload time
// its resident lists would save the query minus the fixed-cost rebate its
// open cross-query batches offer. A device holding the query's big lists
// (or an open compatible batch) wins unless its queue is longer than the
// work it saves — the point at which re-uploading elsewhere (or
// peer-copying, priced separately by the cache layer) beats waiting. With
// no residency or batching information it degenerates to
// LeastBacklogDevices. This is the engine's default at devices > 1.
type AffinityDevices struct{}

// Place implements DevicePlacement.
func (AffinityDevices) Place(info NodeInfo) int {
	score := func(i int) time.Duration {
		s := info.Backlog[i]
		if i < len(info.Saving) {
			s -= info.Saving[i]
		}
		if i < len(info.BatchSaving) {
			s -= info.BatchSaving[i]
		}
		return s
	}
	best := 0
	bestScore := score(0)
	for i := 1; i < info.devices(); i++ {
		if s := score(i); s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// PlacementByName maps a CLI/config name to a placement policy; the empty
// string (and "affinity") selects the default. Unknown names return nil.
func PlacementByName(name string) DevicePlacement {
	switch name {
	case "", "affinity":
		return AffinityDevices{}
	case "least-backlog":
		return LeastBacklogDevices{}
	case "round-robin":
		return &RoundRobinDevices{}
	}
	return nil
}
