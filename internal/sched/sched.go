// Package sched implements Griffin's dynamic intra-query scheduling
// (§3.2): the decision, made before every pairwise intersection, of
// whether that operation runs on the GPU or the CPU.
//
// The policy the paper derives is a length-ratio threshold: with lists
// compressed in 128-element blocks, an intersection whose length ratio
// λ = |S|/|R| exceeds 128 is guaranteed to have skippable blocks in the
// long list (Figure 9's pigeonhole argument), which favours the CPU's
// skip-pointer binary search; below the threshold nearly every block must
// be decompressed anyway, which favours the GPU's parallel decompression
// and merge. The threshold is configurable and generalizes with the block
// size (§3.2: "we could generalize our analysis and choice of the value to
// different block sizes").
//
// Migration is sticky in the paper's prototype: once a query's
// intersections move to the CPU, the remainder of the query stays there
// (list ratios only grow as SvS progresses, so the GPU would not be chosen
// again). The Policy interface allows non-sticky alternatives.
package sched

// Processor identifies where an operation runs.
type Processor int

const (
	// CPU runs the operation on the host cores.
	CPU Processor = iota
	// GPU runs the operation on the device.
	GPU
)

// String implements fmt.Stringer.
func (p Processor) String() string {
	if p == GPU {
		return "GPU"
	}
	return "CPU"
}

// Decision is the outcome of one scheduling choice.
type Decision struct {
	// Where the operation should run.
	Where Processor
	// Ratio is the λ = |S|/|R| the decision was based on.
	Ratio float64
}

// Policy decides placement for each intersection of a query. A Policy
// instance is per-query (it may carry migration state); Fresh returns a
// clean instance for the next query.
type Policy interface {
	// Decide places the intersection of a shorter list of length
	// shortLen with a longer list of length longLen.
	Decide(shortLen, longLen int) Decision
	// Fresh returns a new per-query instance of the same policy.
	Fresh() Policy
}

// DefaultCrossover is the GPU/CPU length-ratio threshold, equal to the
// compression block size per the paper's analysis and Figure 8's
// measurement.
const DefaultCrossover = 128

// RatioPolicy is the paper's threshold scheduler.
type RatioPolicy struct {
	// Crossover is the λ threshold (0 means DefaultCrossover).
	Crossover float64
	// Sticky keeps the query on the CPU after the first CPU decision
	// (the prototype's migration rule).
	Sticky bool

	migrated bool
}

// NewRatioPolicy returns the paper's default policy: crossover 128,
// sticky migration.
func NewRatioPolicy() *RatioPolicy {
	return &RatioPolicy{Crossover: DefaultCrossover, Sticky: true}
}

// Decide implements Policy.
func (p *RatioPolicy) Decide(shortLen, longLen int) Decision {
	threshold := p.Crossover
	if threshold <= 0 {
		threshold = DefaultCrossover
	}
	ratio := Ratio(shortLen, longLen)
	d := Decision{Where: CPU, Ratio: ratio}
	if p.Sticky && p.migrated {
		return d
	}
	if ratio < threshold && shortLen > 0 {
		d.Where = GPU
		return d
	}
	p.migrated = true
	return d
}

// Fresh implements Policy.
func (p *RatioPolicy) Fresh() Policy {
	return &RatioPolicy{Crossover: p.Crossover, Sticky: p.Sticky}
}

// Ratio returns λ = longLen/shortLen (infinity-ish when shortLen is 0).
func Ratio(shortLen, longLen int) float64 {
	if shortLen <= 0 {
		return float64(longLen) + 1e18
	}
	return float64(longLen) / float64(shortLen)
}

// AlwaysPolicy pins every operation to one processor (the CPU-only and
// GPU-only baselines of §4.4 use these).
type AlwaysPolicy struct{ Target Processor }

// Decide implements Policy.
func (p AlwaysPolicy) Decide(shortLen, longLen int) Decision {
	return Decision{Where: p.Target, Ratio: Ratio(shortLen, longLen)}
}

// Fresh implements Policy.
func (p AlwaysPolicy) Fresh() Policy { return p }

// SkippableBlocks returns the guaranteed-skippable block count of the long
// list under the Figure 9 pigeonhole argument: |S|/blockSize blocks minus
// at most |R| blocks that short-list elements can touch. It is never
// negative.
func SkippableBlocks(shortLen, longLen, blockSize int) int {
	blocks := (longLen + blockSize - 1) / blockSize
	skippable := blocks - shortLen
	if skippable < 0 {
		return 0
	}
	return skippable
}
