package sched

import (
	"testing"
	"time"
)

// fakeBacklog is a settable DeviceBacklog.
type fakeBacklog struct{ pending time.Duration }

func (f *fakeBacklog) PendingTime() time.Duration { return f.pending }

func TestLoadAwareSpillsAboveThreshold(t *testing.T) {
	bl := &fakeBacklog{}
	p := &LoadAwarePolicy{Inner: NewRatioPolicy(), Backlog: bl, Threshold: time.Millisecond}

	// Ratio 2 < 128: the inner policy picks GPU. Idle device: passes through.
	if d := p.Decide(100, 200); d.Where != GPU {
		t.Fatalf("idle device: got %v, want GPU", d.Where)
	}
	if p.Spilled != 0 {
		t.Fatalf("idle device counted a spill")
	}

	// Backlog above threshold: the same decision spills to CPU.
	bl.pending = 2 * time.Millisecond
	if d := p.Decide(100, 200); d.Where != CPU {
		t.Fatalf("loaded device: got %v, want CPU spill", d.Where)
	}
	if p.Spilled != 1 {
		t.Fatalf("spill not counted: %d", p.Spilled)
	}

	// Backlog drains: the query returns to the device — spilling is
	// per-operation, not sticky migration.
	bl.pending = 0
	if d := p.Decide(100, 200); d.Where != GPU {
		t.Fatalf("drained device: got %v, want GPU again", d.Where)
	}
}

func TestLoadAwarePassesThroughCPUDecisions(t *testing.T) {
	bl := &fakeBacklog{pending: time.Second}
	p := &LoadAwarePolicy{Inner: NewRatioPolicy(), Backlog: bl, Threshold: time.Millisecond}
	// Ratio 1000 >= 128: inner says CPU regardless of load.
	if d := p.Decide(10, 10000); d.Where != CPU {
		t.Fatalf("got %v, want CPU", d.Where)
	}
	if p.Spilled != 0 {
		t.Fatalf("CPU decision counted as spill")
	}
}

func TestLoadAwareBoundaryAndDisabled(t *testing.T) {
	bl := &fakeBacklog{pending: time.Millisecond}
	// Backlog equal to threshold does not spill (strict >).
	p := &LoadAwarePolicy{Inner: NewRatioPolicy(), Backlog: bl, Threshold: time.Millisecond}
	if d := p.Decide(100, 200); d.Where != GPU {
		t.Fatalf("boundary backlog spilled")
	}
	// Zero threshold disables spilling entirely.
	p = &LoadAwarePolicy{Inner: NewRatioPolicy(), Backlog: bl}
	if d := p.Decide(100, 200); d.Where != GPU {
		t.Fatalf("zero threshold spilled")
	}
	// Nil backlog never spills.
	p = &LoadAwarePolicy{Inner: NewRatioPolicy(), Threshold: time.Millisecond}
	if d := p.Decide(100, 200); d.Where != GPU {
		t.Fatalf("nil backlog spilled")
	}
}

func TestLoadAwareFresh(t *testing.T) {
	bl := &fakeBacklog{pending: time.Second}
	p := &LoadAwarePolicy{Inner: NewRatioPolicy(), Backlog: bl, Threshold: time.Millisecond, Spilled: 3}
	f, ok := p.Fresh().(*LoadAwarePolicy)
	if !ok {
		t.Fatalf("Fresh returned %T", p.Fresh())
	}
	if f.Spilled != 0 {
		t.Fatalf("Fresh kept spill count %d", f.Spilled)
	}
	if f.Backlog != DeviceBacklog(bl) || f.Threshold != p.Threshold {
		t.Fatalf("Fresh dropped backlog wiring")
	}
	if f.Inner == p.Inner {
		t.Fatalf("Fresh shares inner policy state")
	}
	// Defaulted inner: Decide installs a RatioPolicy.
	d := (&LoadAwarePolicy{}).Decide(100, 200)
	if d.Where != GPU {
		t.Fatalf("default inner: got %v, want GPU", d.Where)
	}
}
