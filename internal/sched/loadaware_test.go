package sched

import (
	"testing"
	"time"

	"griffin/internal/fault"
	"griffin/internal/gpu"
)

// fakeBacklog is a settable DeviceBacklog.
type fakeBacklog struct{ pending time.Duration }

func (f *fakeBacklog) PendingTime() time.Duration { return f.pending }

func TestLoadAwareSpillsAboveThreshold(t *testing.T) {
	bl := &fakeBacklog{}
	p := &LoadAwarePolicy{Inner: NewRatioPolicy(), Backlog: bl, Threshold: time.Millisecond}

	// Ratio 2 < 128: the inner policy picks GPU. Idle device: passes through.
	if d := p.Decide(100, 200); d.Where != GPU {
		t.Fatalf("idle device: got %v, want GPU", d.Where)
	}
	if p.Spilled != 0 {
		t.Fatalf("idle device counted a spill")
	}

	// Backlog above threshold: the same decision spills to CPU.
	bl.pending = 2 * time.Millisecond
	if d := p.Decide(100, 200); d.Where != CPU {
		t.Fatalf("loaded device: got %v, want CPU spill", d.Where)
	}
	if p.Spilled != 1 {
		t.Fatalf("spill not counted: %d", p.Spilled)
	}

	// Backlog drains: the query returns to the device — spilling is
	// per-operation, not sticky migration.
	bl.pending = 0
	if d := p.Decide(100, 200); d.Where != GPU {
		t.Fatalf("drained device: got %v, want GPU again", d.Where)
	}
}

func TestLoadAwarePassesThroughCPUDecisions(t *testing.T) {
	bl := &fakeBacklog{pending: time.Second}
	p := &LoadAwarePolicy{Inner: NewRatioPolicy(), Backlog: bl, Threshold: time.Millisecond}
	// Ratio 1000 >= 128: inner says CPU regardless of load.
	if d := p.Decide(10, 10000); d.Where != CPU {
		t.Fatalf("got %v, want CPU", d.Where)
	}
	if p.Spilled != 0 {
		t.Fatalf("CPU decision counted as spill")
	}
}

func TestLoadAwareBoundaryAndDisabled(t *testing.T) {
	bl := &fakeBacklog{pending: time.Millisecond}
	// Backlog equal to threshold does not spill (strict >).
	p := &LoadAwarePolicy{Inner: NewRatioPolicy(), Backlog: bl, Threshold: time.Millisecond}
	if d := p.Decide(100, 200); d.Where != GPU {
		t.Fatalf("boundary backlog spilled")
	}
	// Zero threshold disables spilling entirely.
	p = &LoadAwarePolicy{Inner: NewRatioPolicy(), Backlog: bl}
	if d := p.Decide(100, 200); d.Where != GPU {
		t.Fatalf("zero threshold spilled")
	}
	// Nil backlog never spills.
	p = &LoadAwarePolicy{Inner: NewRatioPolicy(), Threshold: time.Millisecond}
	if d := p.Decide(100, 200); d.Where != GPU {
		t.Fatalf("nil backlog spilled")
	}
}

func TestLoadAwareFresh(t *testing.T) {
	bl := &fakeBacklog{pending: time.Second}
	p := &LoadAwarePolicy{Inner: NewRatioPolicy(), Backlog: bl, Threshold: time.Millisecond, Spilled: 3}
	f, ok := p.Fresh().(*LoadAwarePolicy)
	if !ok {
		t.Fatalf("Fresh returned %T", p.Fresh())
	}
	if f.Spilled != 0 {
		t.Fatalf("Fresh kept spill count %d", f.Spilled)
	}
	if f.Backlog != DeviceBacklog(bl) || f.Threshold != p.Threshold {
		t.Fatalf("Fresh dropped backlog wiring")
	}
	if f.Inner == p.Inner {
		t.Fatalf("Fresh shares inner policy state")
	}
	// Defaulted inner: Decide installs a RatioPolicy.
	d := (&LoadAwarePolicy{}).Decide(100, 200)
	if d.Where != GPU {
		t.Fatalf("default inner: got %v, want GPU", d.Where)
	}
}

// resetBacklog folds a device's remaining fault-injected reset window
// into the backlog signal, the composition the cluster router uses for
// replica selection: a device that is mid-reset has an empty queue but
// is still unavailable for the rest of its outage window.
type resetBacklog struct {
	inj  *fault.Injector
	site string
	now  time.Duration
}

func (b *resetBacklog) PendingTime() time.Duration {
	return b.inj.ResetRemaining(b.site, b.now)
}

// TestLoadAwareSpillsDuringDeviceReset pins the mid-reset behavior: a
// backlog view that surfaces the reset window makes the load-aware
// policy spill GPU placements to the CPU for exactly the window's
// duration, then return to the device once it recovers.
func TestLoadAwareSpillsDuringDeviceReset(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Seed: 2, Rules: []fault.Rule{
		{Kind: fault.DeviceReset, Rate: 1, Until: 1, Stall: 4 * time.Millisecond},
	}})
	// Fire the reset: the site's first submission opens a 4ms window.
	if err := inj.DeviceHook("s0r0")(gpu.ComputeEngine, time.Millisecond); !fault.IsDeviceFault(err) {
		t.Fatalf("reset did not fire: %v", err)
	}

	bl := &resetBacklog{inj: inj, site: "s0r0", now: 2 * time.Millisecond}
	p := &LoadAwarePolicy{Inner: NewRatioPolicy(), Backlog: bl, Threshold: time.Millisecond}

	// Mid-window (3ms remaining > 1ms threshold): ratio-2 work that the
	// inner policy places on the GPU spills to the CPU.
	if d := p.Decide(100, 200); d.Where != CPU {
		t.Fatalf("mid-reset placement: got %v, want CPU spill", d.Where)
	}
	if p.Spilled != 1 {
		t.Fatalf("mid-reset spill not counted: %d", p.Spilled)
	}

	// An un-faulted sibling at the same instant keeps its GPU placement.
	sibling := &LoadAwarePolicy{Inner: NewRatioPolicy(), Backlog: &resetBacklog{
		inj: inj, site: "s0r1", now: 2 * time.Millisecond,
	}, Threshold: time.Millisecond}
	if d := sibling.Decide(100, 200); d.Where != GPU {
		t.Fatalf("healthy sibling: got %v, want GPU", d.Where)
	}

	// Past the window the device is back: placements return to the GPU.
	bl.now = 6 * time.Millisecond
	if d := p.Decide(100, 200); d.Where != GPU {
		t.Fatalf("post-reset placement: got %v, want GPU", d.Where)
	}
	if p.Spilled != 1 {
		t.Fatalf("post-reset decision counted a spill: %d", p.Spilled)
	}
}
