package sched

import "testing"

func TestCostPolicyAgreesWithRatioAtExtremes(t *testing.T) {
	// Both policies are proxies for the same cost comparison; they must
	// agree well away from the crossover.
	cost := NewCostPolicy()
	ratio := NewRatioPolicy()
	cases := []struct {
		short, long int
	}{
		{500_000, 1_000_000}, // ratio 2: clearly GPU at this scale
		{200_000, 1_500_000}, // ratio 7.5: GPU
		{1_000, 1_500_000},   // ratio 1500: clearly CPU
		{300, 1_000_000},     // ratio 3333: CPU
	}
	for _, c := range cases {
		dc := cost.Fresh().Decide(c.short, c.long)
		dr := ratio.Fresh().(*RatioPolicy).Decide(c.short, c.long)
		if dc.Where != dr.Where {
			t.Errorf("short=%d long=%d: cost says %v, ratio says %v",
				c.short, c.long, dc.Where, dr.Where)
		}
	}
}

func TestCostPolicyCrossoverNearRatioThreshold(t *testing.T) {
	// The cost estimator's crossover on paper-sized long lists should
	// land within an octave or two of the paper's 128 — it is the same
	// trade-off measured two ways.
	longLen := 1_500_000
	p := NewCostPolicy()
	crossover := 0
	for ratio := 2; ratio <= 4096; ratio *= 2 {
		d := p.Fresh().Decide(longLen/ratio, longLen)
		if d.Where == CPU {
			crossover = ratio
			break
		}
	}
	if crossover < 32 || crossover > 1024 {
		t.Fatalf("cost crossover at ratio %d, expected within [32,1024]", crossover)
	}
}

func TestCostPolicySmallListsStayOnCPU(t *testing.T) {
	// Tiny comparable lists: fixed GPU overheads dominate, so the cost
	// policy keeps them on the CPU — a case the pure ratio rule gets
	// wrong (ratio 1 would say GPU).
	p := NewCostPolicy()
	if d := p.Fresh().Decide(500, 800); d.Where != CPU {
		t.Fatal("tiny lists scheduled on GPU despite fixed overheads")
	}
}

func TestCostPolicySticky(t *testing.T) {
	p := NewCostPolicy()
	if d := p.Decide(500_000, 1_000_000); d.Where != GPU {
		t.Fatal("large comparable pair should start on GPU")
	}
	if d := p.Decide(100, 1_000_000); d.Where != CPU {
		t.Fatal("skewed pair should migrate")
	}
	if d := p.Decide(500_000, 1_000_000); d.Where != CPU {
		t.Fatal("sticky cost policy returned to GPU")
	}
	q := p.Fresh().(*CostPolicy)
	if d := q.Decide(500_000, 1_000_000); d.Where != GPU {
		t.Fatal("Fresh did not reset migration")
	}
}

func TestCostPolicyZeroShort(t *testing.T) {
	p := NewCostPolicy()
	if d := p.Decide(0, 100); d.Where != CPU {
		t.Fatal("empty short operand must not go to GPU")
	}
}
