package sched

import (
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestRoundRobinDevicesCycles(t *testing.T) {
	p := &RoundRobinDevices{}
	info := NodeInfo{Backlog: make([]time.Duration, 3)}
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := p.Place(info); got != w {
			t.Fatalf("placement %d: got device %d, want %d", i, got, w)
		}
	}
	// Single device short-circuits without consuming the counter.
	single := NodeInfo{Backlog: make([]time.Duration, 1)}
	for i := 0; i < 3; i++ {
		if got := p.Place(single); got != 0 {
			t.Fatalf("single-device placement returned %d", got)
		}
	}
	if got := p.Place(info); got != 0 {
		t.Fatalf("counter advanced by single-device placements: got %d, want 0", got)
	}
}

func TestLeastBacklogDevices(t *testing.T) {
	p := LeastBacklogDevices{}
	cases := []struct {
		backlog []time.Duration
		want    int
	}{
		{[]time.Duration{0}, 0},
		{[]time.Duration{ms(5), ms(2), ms(9)}, 1},
		{[]time.Duration{ms(3), ms(3), ms(3)}, 0}, // ties go to the lowest ordinal
		{[]time.Duration{ms(4), ms(1), ms(1)}, 1},
	}
	for i, c := range cases {
		if got := p.Place(NodeInfo{Backlog: c.backlog}); got != c.want {
			t.Fatalf("case %d: got device %d, want %d", i, got, c.want)
		}
	}
}

func TestAffinityDevicesWeighsSavingAgainstBacklog(t *testing.T) {
	p := AffinityDevices{}
	cases := []struct {
		name    string
		backlog []time.Duration
		saving  []time.Duration
		want    int
	}{
		{"no residency degenerates to least backlog",
			[]time.Duration{ms(5), ms(2)}, nil, 1},
		{"zero savings degenerate to least backlog",
			[]time.Duration{ms(5), ms(2)}, []time.Duration{0, 0}, 1},
		{"resident lists outweigh a short queue",
			[]time.Duration{ms(5), ms(2)}, []time.Duration{ms(4), 0}, 0},
		{"a long enough queue beats affinity",
			[]time.Duration{ms(9), ms(2)}, []time.Duration{ms(4), 0}, 1},
		{"ties go to the lowest ordinal",
			[]time.Duration{ms(3), ms(3)}, []time.Duration{ms(1), ms(1)}, 0},
	}
	for _, c := range cases {
		if got := p.Place(NodeInfo{Backlog: c.backlog, Saving: c.saving}); got != c.want {
			t.Fatalf("%s: got device %d, want %d", c.name, got, c.want)
		}
	}
}

func TestAffinityDevicesWeighsBatchSaving(t *testing.T) {
	p := AffinityDevices{}
	cases := []struct {
		name        string
		backlog     []time.Duration
		saving      []time.Duration
		batchSaving []time.Duration
		want        int
	}{
		{"batching disabled (nil) degenerates to least backlog",
			[]time.Duration{ms(5), ms(2)}, nil, nil, 1},
		{"an open batch outweighs a short queue",
			[]time.Duration{ms(5), ms(2)}, nil, []time.Duration{ms(4), 0}, 0},
		{"a long enough queue beats batch affinity",
			[]time.Duration{ms(9), ms(2)}, nil, []time.Duration{ms(4), 0}, 1},
		{"batch and residency credits stack",
			[]time.Duration{ms(9), ms(2)}, []time.Duration{ms(4), 0}, []time.Duration{ms(4), 0}, 0},
	}
	for _, c := range cases {
		info := NodeInfo{Backlog: c.backlog, Saving: c.saving, BatchSaving: c.batchSaving}
		if got := p.Place(info); got != c.want {
			t.Fatalf("%s: got device %d, want %d", c.name, got, c.want)
		}
	}
}

func TestPlacementByName(t *testing.T) {
	if _, ok := PlacementByName("").(AffinityDevices); !ok {
		t.Fatal("empty name is not the affinity default")
	}
	if _, ok := PlacementByName("affinity").(AffinityDevices); !ok {
		t.Fatal("affinity name mismatch")
	}
	if _, ok := PlacementByName("least-backlog").(LeastBacklogDevices); !ok {
		t.Fatal("least-backlog name mismatch")
	}
	if _, ok := PlacementByName("round-robin").(*RoundRobinDevices); !ok {
		t.Fatal("round-robin name mismatch")
	}
	if PlacementByName("bogus") != nil {
		t.Fatal("unknown name did not return nil")
	}
}
