package sched

import (
	"testing"
	"testing/quick"
)

func TestRatioPolicyBelowThresholdGPU(t *testing.T) {
	p := NewRatioPolicy()
	d := p.Decide(1000, 10_000) // ratio 10
	if d.Where != GPU {
		t.Fatalf("ratio 10 scheduled on %v, want GPU", d.Where)
	}
	if d.Ratio != 10 {
		t.Fatalf("ratio = %v", d.Ratio)
	}
}

func TestRatioPolicyAboveThresholdCPU(t *testing.T) {
	p := NewRatioPolicy()
	d := p.Decide(100, 100*129)
	if d.Where != CPU {
		t.Fatalf("ratio 129 scheduled on %v, want CPU", d.Where)
	}
}

func TestRatioPolicyExactThresholdCPU(t *testing.T) {
	// The paper's rule is "less than 128 -> GPU": exactly 128 goes CPU.
	p := NewRatioPolicy()
	if d := p.Decide(100, 12800); d.Where != CPU {
		t.Fatalf("ratio exactly 128 scheduled on %v, want CPU", d.Where)
	}
}

func TestStickyMigration(t *testing.T) {
	p := NewRatioPolicy()
	if d := p.Decide(1000, 2000); d.Where != GPU {
		t.Fatal("first low-ratio op should be GPU")
	}
	if d := p.Decide(10, 100_000); d.Where != CPU {
		t.Fatal("high-ratio op should migrate to CPU")
	}
	// After migration, even a low ratio stays on CPU (sticky).
	if d := p.Decide(1000, 2000); d.Where != CPU {
		t.Fatal("sticky policy returned to GPU after migration")
	}
}

func TestNonStickyPolicy(t *testing.T) {
	p := &RatioPolicy{Crossover: 128, Sticky: false}
	p.Decide(10, 100_000) // CPU
	if d := p.Decide(1000, 2000); d.Where != GPU {
		t.Fatal("non-sticky policy must re-evaluate each op")
	}
}

func TestFreshResetsMigration(t *testing.T) {
	p := NewRatioPolicy()
	p.Decide(10, 100_000) // migrate
	q := p.Fresh().(*RatioPolicy)
	if d := q.Decide(1000, 2000); d.Where != GPU {
		t.Fatal("Fresh policy inherited migration state")
	}
	if q.Crossover != p.Crossover || q.Sticky != p.Sticky {
		t.Fatal("Fresh lost configuration")
	}
}

func TestCustomCrossover(t *testing.T) {
	p := &RatioPolicy{Crossover: 64, Sticky: true}
	if d := p.Decide(100, 6500); d.Where != CPU {
		t.Fatal("ratio 65 should be CPU at crossover 64")
	}
	p2 := &RatioPolicy{Crossover: 64, Sticky: true}
	if d := p2.Decide(100, 6300); d.Where != GPU {
		t.Fatal("ratio 63 should be GPU at crossover 64")
	}
}

func TestZeroCrossoverDefaults(t *testing.T) {
	p := &RatioPolicy{}
	if d := p.Decide(100, 100); d.Where != GPU {
		t.Fatal("zero crossover should default to 128")
	}
}

func TestZeroShortLenGoesCPU(t *testing.T) {
	p := NewRatioPolicy()
	if d := p.Decide(0, 100); d.Where != CPU {
		t.Fatal("empty short list must not be scheduled on GPU")
	}
}

func TestAlwaysPolicy(t *testing.T) {
	g := AlwaysPolicy{Target: GPU}
	if g.Decide(1, 1<<30).Where != GPU {
		t.Fatal("AlwaysPolicy(GPU) decided CPU")
	}
	c := AlwaysPolicy{Target: CPU}
	if c.Decide(1000, 1000).Where != CPU {
		t.Fatal("AlwaysPolicy(CPU) decided GPU")
	}
	if g.Fresh().Decide(1, 2).Where != GPU {
		t.Fatal("Fresh lost target")
	}
}

func TestProcessorString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Fatal("Processor.String wrong")
	}
}

// TestFigure9Pigeonhole verifies the paper's block-skipping claim: with
// 128-element blocks, λ > 128 guarantees at least one skippable block in
// the long list.
func TestFigure9Pigeonhole(t *testing.T) {
	f := func(shortRaw uint16, mult uint8) bool {
		shortLen := int(shortRaw)%1000 + 1
		// λ strictly greater than 128.
		longLen := shortLen*128 + int(mult) + 1
		if SkippableBlocks(shortLen, longLen, 128) < 0 {
			return false
		}
		// The strict guarantee needs λ > blockSize, i.e. longLen >
		// shortLen*128; then blocks = ceil(longLen/128) > shortLen.
		blocks := (longLen + 127) / 128
		if blocks > shortLen {
			return SkippableBlocks(shortLen, longLen, 128) >= 1
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSkippableBlocksNeverNegative(t *testing.T) {
	if got := SkippableBlocks(1000, 128, 128); got != 0 {
		t.Fatalf("skippable = %d, want 0", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 100) != 10 {
		t.Fatal("Ratio(10,100) != 10")
	}
	if Ratio(0, 5) < 1e18 {
		t.Fatal("Ratio with empty short list must be effectively infinite")
	}
}
