package sched

import "time"

// DeviceBacklog is a live view of the device's compute queue, reported
// as the delay a kernel submitted right now would wait before starting.
// gpu.QueryStream and gpu.DeviceRuntime both satisfy it.
type DeviceBacklog interface {
	PendingTime() time.Duration
}

// LoadAwarePolicy wraps another policy with admission control under
// load: it consults the device backlog before every placement and
// overrides a GPU decision to CPU whenever the backlog exceeds
// Threshold. This is the paper's load-balancing observation (§5: the
// CPU baseline is strong enough that spilling to it beats queueing)
// promoted from the loadsim trace replay into the real scheduler — a
// query facing a saturated device takes the slightly-slower CPU plan
// instead of the queue, which bounds tail latency while the static
// policy's P99 grows with offered load.
//
// CPU decisions pass through untouched, as does the inner policy's
// migration state: a spilled intersection does not mark the query
// migrated, so later intersections may return to the device once the
// backlog drains (spilling is per-operation, not sticky).
type LoadAwarePolicy struct {
	// Inner makes the load-free placement decision (nil means the
	// paper's RatioPolicy).
	Inner Policy
	// Backlog reports the current device queue delay.
	Backlog DeviceBacklog
	// Threshold is the backlog above which GPU work spills to the CPU.
	Threshold time.Duration

	// Spilled counts the GPU decisions this query overrode to CPU.
	Spilled int
}

// Decide implements Policy.
func (p *LoadAwarePolicy) Decide(shortLen, longLen int) Decision {
	inner := p.Inner
	if inner == nil {
		inner = NewRatioPolicy()
		p.Inner = inner
	}
	d := inner.Decide(shortLen, longLen)
	if d.Where != GPU || p.Backlog == nil || p.Threshold <= 0 {
		return d
	}
	if p.Backlog.PendingTime() > p.Threshold {
		d.Where = CPU
		p.Spilled++
	}
	return d
}

// Fresh implements Policy. The fresh instance shares the backlog view
// and threshold but gets a fresh inner policy (clean migration state).
func (p *LoadAwarePolicy) Fresh() Policy {
	inner := p.Inner
	if inner == nil {
		inner = NewRatioPolicy()
	}
	return &LoadAwarePolicy{Inner: inner.Fresh(), Backlog: p.Backlog, Threshold: p.Threshold}
}
