// Package server exposes a Griffin engine as a small JSON-over-HTTP
// search service — the deployment surface an interactive IR system (the
// paper's motivating setting) actually presents to clients. Handlers are
// safe for concurrent requests; each request maps to one Engine.Search,
// so the per-request simulated latency reported in responses is the
// paper's per-query metric.
package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"griffin/internal/core"
	"griffin/internal/index"
)

// Server routes search traffic to an engine.
type Server struct {
	engine *core.Engine
	mux    *http.ServeMux

	queries  atomic.Int64
	errors   atomic.Int64
	simNanos atomic.Int64
}

// New wraps an engine. The engine must outlive the server.
func New(engine *core.Engine) *Server {
	s := &Server{engine: engine, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /search", s.handleSearch)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /statz", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SearchResponse is the /search reply body.
type SearchResponse struct {
	Query      []string  `json:"query"`
	Candidates int       `json:"candidates"`
	LatencyMS  float64   `json:"simulated_latency_ms"`
	Migrated   bool      `json:"migrated"`
	Results    []HitJSON `json:"results"`
	// Plan is the executed physical query plan, present when the request
	// set trace=1.
	Plan []PlanOpJSON `json:"plan,omitempty"`
}

// PlanOpJSON is one executed plan operator of a traced request.
type PlanOpJSON struct {
	Op        string  `json:"op"`
	Algo      string  `json:"algo,omitempty"`
	Where     string  `json:"where"`
	Term      string  `json:"term,omitempty"`
	NIn       int     `json:"n_in"`
	NOut      int     `json:"n_out"`
	Bytes     int64   `json:"bytes,omitempty"`
	TookUS    float64 `json:"took_us"`
	EstTookUS float64 `json:"est_took_us"`
}

// HitJSON is one ranked result.
type HitJSON struct {
	DocID uint32  `json:"doc_id"`
	Score float32 `json:"score"`
}

// handleSearch serves GET /search?q=terms+separated+by+spaces[&k=10][&trace=1].
// With trace=1 the response includes the executed physical query plan,
// one record per operator.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		http.Error(w, `missing query parameter "q"`, http.StatusBadRequest)
		return
	}
	terms := index.Tokenize(q)
	if len(terms) == 0 {
		http.Error(w, "query has no indexable terms", http.StatusBadRequest)
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v < 1 || v > 1000 {
			http.Error(w, `parameter "k" must be an integer in [1,1000]`, http.StatusBadRequest)
			return
		}
		k = v
	}

	res, err := s.engine.Search(terms)
	if err != nil {
		s.errors.Add(1)
		http.Error(w, "search failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.queries.Add(1)
	s.simNanos.Add(int64(res.Stats.Latency))

	hits := res.Docs
	if len(hits) > k {
		hits = hits[:k]
	}
	resp := SearchResponse{
		Query:      terms,
		Candidates: res.Stats.Candidates,
		LatencyMS:  float64(res.Stats.Latency) / float64(time.Millisecond),
		Migrated:   res.Stats.Migrated,
		Results:    make([]HitJSON, len(hits)),
	}
	for i, h := range hits {
		resp.Results[i] = HitJSON{DocID: h.DocID, Score: h.Score}
	}
	if r.URL.Query().Get("trace") == "1" {
		resp.Plan = make([]PlanOpJSON, len(res.Stats.Plan))
		for i, op := range res.Stats.Plan {
			resp.Plan[i] = PlanOpJSON{
				Op:        op.Kind.String(),
				Algo:      op.Algo.String(),
				Where:     op.Where.String(),
				Term:      op.Term,
				NIn:       op.NIn,
				NOut:      op.NOut,
				Bytes:     op.Bytes,
				TookUS:    float64(op.Took) / float64(time.Microsecond),
				EstTookUS: float64(op.Est) / float64(time.Microsecond),
			}
		}
	}
	writeJSON(w, resp)
}

// handleHealth serves GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status": "ok",
		"docs":   s.engine.Index().NumDocs,
		"terms":  s.engine.Index().NumTerms(),
		"mode":   s.engine.Mode().String(),
	})
}

// StatsResponse is the /statz reply body.
type StatsResponse struct {
	Queries       int64   `json:"queries"`
	Errors        int64   `json:"errors"`
	MeanLatencyMS float64 `json:"mean_simulated_latency_ms"`
	CachedLists   int     `json:"cached_lists"`
	// Device is the shared device runtime's telemetry; omitted for
	// CPU-only engines.
	Device *DeviceStatsJSON `json:"device,omitempty"`
}

// DeviceStatsJSON reports the engine's device-runtime state: how busy
// the modeled GPU has been, how much queueing delay concurrent queries
// paid for it, and the backlog a query admitted now would face.
type DeviceStatsJSON struct {
	Streams        int     `json:"streams"`
	ActiveQueries  int     `json:"active_queries"`
	Admitted       int64   `json:"admitted"`
	Utilization    float64 `json:"utilization"`
	ComputeBusyMS  float64 `json:"compute_busy_ms"`
	CopyBusyMS     float64 `json:"copy_busy_ms"`
	QueueWaitMS    float64 `json:"queue_wait_ms"`
	BacklogMS      float64 `json:"backlog_ms"`
	TimelineSpanMS float64 `json:"timeline_span_ms"`
}

// handleStats serves GET /statz.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	n := s.queries.Load()
	mean := 0.0
	if n > 0 {
		mean = float64(s.simNanos.Load()) / float64(n) / float64(time.Millisecond)
	}
	resp := StatsResponse{
		Queries:       n,
		Errors:        s.errors.Load(),
		MeanLatencyMS: mean,
		CachedLists:   s.engine.CachedLists(),
	}
	if rt := s.engine.Runtime(); rt != nil {
		st := rt.Stats()
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		resp.Device = &DeviceStatsJSON{
			Streams:        st.Streams,
			ActiveQueries:  st.Active,
			Admitted:       st.Admitted,
			Utilization:    st.Utilization,
			ComputeBusyMS:  ms(st.ComputeBusy),
			CopyBusyMS:     ms(st.CopyBusy),
			QueueWaitMS:    ms(st.Waited),
			BacklogMS:      ms(st.Backlog),
			TimelineSpanMS: ms(st.Horizon),
		}
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
