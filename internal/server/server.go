// Package server exposes a Griffin engine — or a sharded cluster of them
// — as a small JSON-over-HTTP search service, the deployment surface an
// interactive IR system (the paper's motivating setting) actually
// presents to clients. Handlers are safe for concurrent requests; each
// request maps to one Engine.Search or Cluster.Search, so the per-request
// simulated latency reported in responses is the paper's per-query metric
// (single node) or the cluster's critical-path model (max over shards +
// merge).
package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"griffin/internal/cluster"
	"griffin/internal/core"
	"griffin/internal/fault"
	"griffin/internal/gpu"
	"griffin/internal/index"
	"griffin/internal/ingest"
	"griffin/internal/overload"
	"griffin/internal/wal"
)

// Server routes search traffic to an engine or a cluster, optionally
// wrapped in a live-ingestion layer accepting writes.
type Server struct {
	engine      *core.Engine     // single-node backend (nil otherwise)
	cluster     *cluster.Cluster // sharded backend (nil otherwise)
	live        *ingest.Engine   // live single-node backend (nil otherwise)
	liveCluster *ingest.Cluster  // live sharded backend (nil otherwise)
	mux         *http.ServeMux

	// freshness is the merge-lag threshold past which /healthz reports
	// "degraded" (0 = no freshness check). Live backends only.
	freshness int

	// gate bounds in-flight /search requests on the wall clock (nil =
	// unbounded); installed by ConfigureOverload.
	gate *overload.Gate

	queries  atomic.Int64
	errors   atomic.Int64
	degraded atomic.Int64
	simNanos atomic.Int64
	ingested atomic.Int64
	// sheds counts /search requests refused with 503 by cluster-level
	// overload control (the gate keeps its own shed counter).
	sheds atomic.Int64
}

// New wraps a single engine. The engine must outlive the server.
func New(engine *core.Engine) *Server {
	s := &Server{engine: engine}
	s.init()
	return s
}

// NewCluster wraps a sharded cluster. The cluster must outlive the
// server.
func NewCluster(cl *cluster.Cluster) *Server {
	s := &Server{cluster: cl}
	s.init()
	return s
}

// NewLive wraps a live single-node ingestion engine: /search serves
// snapshot-isolated reads through the delta, POST /ingest accepts
// mutations, and /healthz degrades when merge lag exceeds freshness
// (0 = no check). The engine must outlive the server; the caller owns
// Close (which drains in-flight background merges).
func NewLive(e *ingest.Engine, freshness int) *Server {
	s := &Server{live: e, freshness: freshness}
	s.init()
	return s
}

// NewLiveCluster wraps a live sharded ingestion layer; see NewLive.
func NewLiveCluster(c *ingest.Cluster, freshness int) *Server {
	s := &Server{liveCluster: c, freshness: freshness}
	s.init()
	return s
}

func (s *Server) init() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /search", s.handleSearch)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /statz", s.handleStats)
	if s.live != nil || s.liveCluster != nil {
		s.mux.HandleFunc("POST /ingest", s.handleIngest)
	}
}

// eng resolves the current single-node core engine: the live layer
// swaps engines at merge commits, so it is re-read per request.
func (s *Server) eng() *core.Engine {
	if s.live != nil {
		return s.live.Engine()
	}
	return s.engine
}

// cl resolves the current cluster; the live layer swaps clusters at
// splits and quiesces.
func (s *Server) cl() *cluster.Cluster {
	if s.liveCluster != nil {
		return s.liveCluster.Cluster()
	}
	return s.cluster
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SearchResponse is the /search reply body.
type SearchResponse struct {
	Query      []string  `json:"query"`
	Candidates int       `json:"candidates"`
	LatencyMS  float64   `json:"simulated_latency_ms"`
	Migrated   bool      `json:"migrated"`
	Results    []HitJSON `json:"results"`
	// Degraded and MissingShards report partial cluster results: shards
	// that errored or exceeded the shard timeout are listed rather than
	// failing the query.
	Degraded      bool  `json:"degraded,omitempty"`
	MissingShards []int `json:"missing_shards,omitempty"`
	// Retries, Hedges, and Fallbacks total the cluster's self-healing
	// actions for this query.
	Retries   int `json:"retries,omitempty"`
	Hedges    int `json:"hedges,omitempty"`
	Fallbacks int `json:"fallbacks,omitempty"`
	// Overload record, all omitted when overload control is off so the
	// pre-overload response body is byte-identical: the deadline budget
	// the query ran under and whether it missed, the criticality class
	// (only "batch" is marked), the brownout level it was served at, and
	// the degradation applied (CPU-only plan, reduced top-k, hedges
	// suppressed).
	DeadlineMS    float64 `json:"deadline_ms,omitempty"`
	DeadlineMiss  bool    `json:"deadline_miss,omitempty"`
	Class         string  `json:"class,omitempty"`
	BrownoutLevel int     `json:"brownout_level,omitempty"`
	ForcedCPU     bool    `json:"forced_cpu,omitempty"`
	DegradedTopK  int     `json:"degraded_top_k,omitempty"`
	HedgeSkips    int     `json:"hedge_skips,omitempty"`
	// Plan is the executed physical query plan, present when the request
	// set trace=1 on a single-engine server.
	Plan []PlanOpJSON `json:"plan,omitempty"`
	// Shards is the per-shard execution summary, present when the request
	// set trace=1 on a cluster server.
	Shards []ShardTraceJSON `json:"shards,omitempty"`
}

// PlanOpJSON is one executed plan operator of a traced request.
type PlanOpJSON struct {
	Op        string  `json:"op"`
	Algo      string  `json:"algo,omitempty"`
	Where     string  `json:"where"`
	Term      string  `json:"term,omitempty"`
	NIn       int     `json:"n_in"`
	NOut      int     `json:"n_out"`
	Bytes     int64   `json:"bytes,omitempty"`
	TookUS    float64 `json:"took_us"`
	EstTookUS float64 `json:"est_took_us"`
	// Device is the node device the operator ran on; Peer marks an upload
	// satisfied by a device-to-device copy from a sibling's cache rather
	// than a host transfer. Both appear only on multi-GPU engines.
	Device int  `json:"device,omitempty"`
	Peer   bool `json:"peer,omitempty"`
	// BatchID and BatchSize appear when the device runtime's cross-query
	// batching stage coalesced the operator into a combined launch:
	// batch_id identifies the batch on its device and batch_size is the
	// operator's 1-based ordinal within it (1 = the leader, which paid the
	// batch's full fixed costs; the last member's ordinal is the batch's
	// final size). Omitted for unbatched operators, so servers running
	// with batching disabled emit byte-identical traces.
	BatchID   int64 `json:"batch_id,omitempty"`
	BatchSize int   `json:"batch_size,omitempty"`
}

// ShardTraceJSON summarizes one shard's contribution to a traced cluster
// request.
type ShardTraceJSON struct {
	Shard      int     `json:"shard"`
	Replica    int     `json:"replica"`
	LatencyMS  float64 `json:"simulated_latency_ms"`
	Candidates int     `json:"candidates"`
	GPUWaitMS  float64 `json:"gpu_wait_ms"`
	Migrated   bool    `json:"migrated"`
	TimedOut   bool    `json:"timed_out,omitempty"`
	Error      string  `json:"error,omitempty"`
	// Self-healing path: sibling retries taken, hedge dispatched/won,
	// CPU fallback served the sub-query (with the injected fault that
	// caused it), and the shard's effective critical-path latency.
	Retries     int     `json:"retries,omitempty"`
	Hedged      bool    `json:"hedged,omitempty"`
	HedgeWon    bool    `json:"hedge_won,omitempty"`
	FallbackCPU bool    `json:"fallback_cpu,omitempty"`
	Fault       string  `json:"fault,omitempty"`
	EffectiveMS float64 `json:"effective_ms,omitempty"`
	// Overload markers (omitted when overload control is off): the
	// sub-query was shed by the replica's admission rule, refused by
	// device budget admission, answered past its sub-deadline and
	// dropped, or had its hedge suppressed.
	Shed             bool `json:"shed,omitempty"`
	BudgetRejected   bool `json:"budget_rejected,omitempty"`
	DeadlineExceeded bool `json:"deadline_exceeded,omitempty"`
	HedgeSkipped     bool `json:"hedge_skipped,omitempty"`
}

// HitJSON is one ranked result.
type HitJSON struct {
	DocID uint32  `json:"doc_id"`
	Score float32 `json:"score"`
}

// handleSearch serves GET /search?q=terms+separated+by+spaces[&k=10][&trace=1].
// With trace=1 the response includes the executed physical query plan
// (single engine) or the per-shard execution summary (cluster).
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		http.Error(w, `missing query parameter "q"`, http.StatusBadRequest)
		return
	}
	terms := index.Tokenize(q)
	if len(terms) == 0 {
		http.Error(w, "query has no indexable terms", http.StatusBadRequest)
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v < 1 || v > 1000 {
			http.Error(w, `parameter "k" must be an integer in [1,1000]`, http.StatusBadRequest)
			return
		}
		k = v
	}
	trace := r.URL.Query().Get("trace") == "1"
	qo, ok := s.parseQueryOpts(w, r)
	if !ok {
		return
	}

	// Wall-clock admission: bound in-flight work before touching any
	// backend. A shed here is the cheapest refusal the server can make.
	if err := s.gate.Enter(r.Context()); err != nil {
		if errors.Is(err, overload.ErrShed) {
			http.Error(w, "overloaded: "+err.Error(), http.StatusServiceUnavailable)
		} // context gone: the client left, nothing useful to write
		return
	}
	defer s.gate.Leave()

	if s.cluster != nil || s.liveCluster != nil {
		s.searchCluster(w, r, terms, k, trace, qo)
		return
	}

	var res *core.Result
	var err error
	if s.live != nil {
		// The live path pins a (segment, delta) snapshot for the whole
		// query — concurrent mutations and merge commits never tear it.
		var lr *ingest.Result
		if lr, err = s.live.SearchContext(r.Context(), terms); err == nil {
			res = lr.Result
		}
	} else {
		res, err = s.engine.SearchContext(r.Context(), terms)
	}
	if err != nil {
		s.errors.Add(1)
		http.Error(w, "search failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.queries.Add(1)
	s.simNanos.Add(int64(res.Stats.Latency))

	hits := res.Docs
	if len(hits) > k {
		hits = hits[:k]
	}
	resp := SearchResponse{
		Query:      terms,
		Candidates: res.Stats.Candidates,
		LatencyMS:  float64(res.Stats.Latency) / float64(time.Millisecond),
		Migrated:   res.Stats.Migrated,
		Results:    make([]HitJSON, len(hits)),
	}
	for i, h := range hits {
		resp.Results[i] = HitJSON{DocID: h.DocID, Score: h.Score}
	}
	if trace {
		resp.Plan = make([]PlanOpJSON, len(res.Stats.Plan))
		for i, op := range res.Stats.Plan {
			resp.Plan[i] = PlanOpJSON{
				Op:        op.Kind.String(),
				Algo:      op.Algo.String(),
				Where:     op.Where.String(),
				Term:      op.Term,
				NIn:       op.NIn,
				NOut:      op.NOut,
				Bytes:     op.Bytes,
				TookUS:    float64(op.Took) / float64(time.Microsecond),
				EstTookUS: float64(op.Est) / float64(time.Microsecond),
				Device:    op.Device,
				Peer:      op.Peer,
				BatchID:   op.BatchID,
				BatchSize: op.BatchSize,
			}
		}
	}
	writeJSON(w, resp)
}

// searchCluster serves one scatter-gather request. The request context
// rides through to the shard sub-queries: a client that disconnects
// cancels the stragglers at their next plan-operator boundary.
func (s *Server) searchCluster(w http.ResponseWriter, r *http.Request, terms []string, k int, trace bool, qo cluster.QueryOpts) {
	var res *cluster.Result
	var err error
	if s.liveCluster != nil {
		var lr *ingest.ClusterResult
		if lr, err = s.liveCluster.SearchOptsContext(r.Context(), terms, qo); err == nil {
			res = lr.Result
		}
	} else {
		res, err = s.cluster.SearchWith(r.Context(), terms, qo)
	}
	if err != nil {
		if overload.IsOverload(err) {
			// Refused by overload control (brownout batch shed, admission
			// shed on every shard, infeasible deadline): a deliberate 503,
			// counted apart from errors.
			s.sheds.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		s.errors.Add(1)
		http.Error(w, "search failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.queries.Add(1)
	s.simNanos.Add(int64(res.Stats.Latency))
	if res.Stats.Degraded {
		s.degraded.Add(1)
	}

	hits := res.Docs
	if len(hits) > k {
		hits = hits[:k]
	}
	candidates := 0
	migrated := false
	for _, ss := range res.Stats.Shards {
		candidates += ss.Query.Candidates
		migrated = migrated || ss.Query.Migrated
	}
	resp := SearchResponse{
		Query:         terms,
		Candidates:    candidates,
		LatencyMS:     float64(res.Stats.Latency) / float64(time.Millisecond),
		Migrated:      migrated,
		Results:       make([]HitJSON, len(hits)),
		Degraded:      res.Stats.Degraded,
		MissingShards: res.Stats.Missing,
		Retries:       res.Stats.Retries,
		Hedges:        res.Stats.Hedges,
		Fallbacks:     res.Stats.Fallbacks,
		DeadlineMS:    float64(res.Stats.Deadline) / float64(time.Millisecond),
		DeadlineMiss:  res.Stats.DeadlineMiss,
		BrownoutLevel: res.Stats.BrownoutLevel,
		ForcedCPU:     res.Stats.ForcedCPU,
		DegradedTopK:  res.Stats.DegradedTopK,
		HedgeSkips:    res.Stats.HedgeSkips,
	}
	if res.Stats.Class == overload.Batch {
		resp.Class = res.Stats.Class.String()
	}
	for i, h := range hits {
		resp.Results[i] = HitJSON{DocID: h.DocID, Score: h.Score}
	}
	if trace {
		resp.Shards = make([]ShardTraceJSON, len(res.Stats.Shards))
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		for i, ss := range res.Stats.Shards {
			resp.Shards[i] = ShardTraceJSON{
				Shard:       ss.Shard,
				Replica:     ss.Replica,
				LatencyMS:   ms(ss.Query.Latency),
				Candidates:  ss.Query.Candidates,
				GPUWaitMS:   ms(ss.Query.GPUWait),
				Migrated:    ss.Query.Migrated,
				TimedOut:    ss.TimedOut,
				Error:       ss.Err,
				Retries:     ss.Retries,
				Hedged:      ss.Hedged,
				HedgeWon:    ss.HedgeWon,
				FallbackCPU: ss.Query.FallbackCPU,
				Fault:       ss.Query.Fault,
				EffectiveMS: ms(ss.Effective),

				Shed:             ss.Shed,
				BudgetRejected:   ss.BudgetRejected,
				DeadlineExceeded: ss.DeadlineExceeded,
				HedgeSkipped:     ss.HedgeSkipped,
			}
		}
	}
	writeJSON(w, resp)
}

// IngestRequest is the POST /ingest body: one mutation. Tokens carries
// the document terms directly; Text is the tokenized alternative
// (exactly one must be set for add/update, neither for delete).
type IngestRequest struct {
	Op     string   `json:"op"` // "add", "update", or "delete"
	DocID  uint32   `json:"doc_id"`
	Tokens []string `json:"tokens,omitempty"`
	Text   string   `json:"text,omitempty"`
}

// IngestResponse acknowledges one applied mutation with the writer
// generation that includes it and the current merge lag.
type IngestResponse struct {
	Gen uint64 `json:"gen"`
	Lag uint64 `json:"lag"`
}

// handleIngest serves POST /ingest (live backends only). Mutations are
// visible to the next /search immediately through the delta; merges
// fold them into the compressed main segment in the background.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	tokens := req.Tokens
	if len(tokens) == 0 && req.Text != "" {
		tokens = index.Tokenize(req.Text)
	}
	var err error
	switch req.Op {
	case "add", "update":
		if len(tokens) == 0 {
			http.Error(w, `mutation needs "tokens" or "text"`, http.StatusBadRequest)
			return
		}
		if s.live != nil {
			if req.Op == "add" {
				err = s.live.Add(req.DocID, tokens)
			} else {
				err = s.live.Update(req.DocID, tokens)
			}
		} else if req.Op == "add" {
			err = s.liveCluster.Add(req.DocID, tokens)
		} else {
			err = s.liveCluster.Update(req.DocID, tokens)
		}
	case "delete":
		if s.live != nil {
			err = s.live.Delete(req.DocID)
		} else {
			err = s.liveCluster.Delete(req.DocID)
		}
	default:
		http.Error(w, `parameter "op" must be "add", "update", or "delete"`, http.StatusBadRequest)
		return
	}
	switch {
	case err == nil:
	case ingest.IsInvalid(err):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case errors.Is(err, ingest.ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case fault.IsStorageFault(err):
		// The WAL refused the record (injected storage fault / wedged
		// log): the mutation is NOT durable and was not applied. 503 —
		// the durability layer, not the request, is at fault.
		s.errors.Add(1)
		http.Error(w, "ingest unavailable: "+err.Error(), http.StatusServiceUnavailable)
		return
	default:
		s.errors.Add(1)
		http.Error(w, "ingest failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.ingested.Add(1)
	resp := IngestResponse{}
	if s.live != nil {
		st := s.live.Stats()
		resp.Gen, resp.Lag = st.Gen, st.Lag()
	} else {
		st := s.liveCluster.Stats()
		resp.Gen, resp.Lag = st.Gen, st.Lag()
	}
	writeJSON(w, resp)
}

// ShardHealthJSON is one shard's reachability row in /healthz.
type ShardHealthJSON struct {
	Shard int `json:"shard"`
	// Reachable reports at least one replica's breaker admits traffic;
	// OpenBreakers counts replicas currently refusing it.
	Reachable    bool `json:"reachable"`
	OpenBreakers int  `json:"open_breakers,omitempty"`
}

// ingestLag returns the live backend's merge lag and whether a live
// backend is present at all.
func (s *Server) ingestLag() (uint64, bool) {
	switch {
	case s.live != nil:
		return s.live.Stats().Lag(), true
	case s.liveCluster != nil:
		return s.liveCluster.Stats().Lag(), true
	}
	return 0, false
}

// walWedged returns the storage fault that wedged the live backend's
// WAL, or nil. A wedged backend keeps serving reads but refuses writes
// — /healthz reports it degraded, not unhealthy.
func (s *Server) walWedged() error {
	switch {
	case s.live != nil:
		return s.live.Wedged()
	case s.liveCluster != nil:
		return s.liveCluster.Wedged()
	}
	return nil
}

// handleHealth serves GET /healthz. In cluster mode the status reflects
// breaker-level degradation: "ok" when every shard is reachable,
// "degraded" when some are not, and a 503 with status "unhealthy" when a
// majority of shards have every replica's breaker open — the cluster can
// no longer answer most of the corpus. A live backend whose merge lag
// exceeds the freshness threshold reports "degraded" (still 200: stale
// but serving) unless breaker health already says worse.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	lag, isLive := s.ingestLag()
	stale := isLive && s.freshness > 0 && lag > uint64(s.freshness)
	wedged := s.walWedged()
	if cl := s.cl(); cl != nil {
		h := cl.Health()
		status := "ok"
		code := http.StatusOK
		switch {
		case !h.Healthy:
			status = "unhealthy"
			code = http.StatusServiceUnavailable
		case h.Unreachable > 0 || stale || wedged != nil:
			status = "degraded"
		}
		shards := make([]ShardHealthJSON, len(h.Shards))
		for i, sh := range h.Shards {
			shards[i] = ShardHealthJSON{Shard: sh.Shard, Reachable: sh.Reachable, OpenBreakers: sh.Open}
		}
		body := map[string]any{
			"status":             status,
			"docs":               cl.NumDocs(),
			"mode":               cl.Mode().String(),
			"shards":             cl.NumShards(),
			"replicas":           cl.Replicas(),
			"routing":            cl.RoutingPolicy().String(),
			"unreachable_shards": h.Unreachable,
			"shard_health":       shards,
		}
		if isLive {
			body["ingest_lag"] = lag
			body["freshness_threshold"] = s.freshness
		}
		if wedged != nil {
			body["wal_wedged"] = wedged.Error()
		}
		// Overload signals appear only when some overload control is
		// configured, keeping the pre-overload body byte-identical.
		if s.gate != nil || cl.OverloadEnabled() {
			body["shed_rate"] = s.shedRate()
		}
		if cl.OverloadEnabled() {
			body["brownout_level"] = cl.Overload().Brownout.Level
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
		return
	}
	status := "ok"
	if stale || wedged != nil {
		status = "degraded"
	}
	eng := s.eng()
	body := map[string]any{
		"status": status,
		"docs":   eng.Index().NumDocs,
		"terms":  eng.Index().NumTerms(),
		"mode":   eng.Mode().String(),
	}
	if isLive {
		body["ingest_lag"] = lag
		body["freshness_threshold"] = s.freshness
	}
	if wedged != nil {
		body["wal_wedged"] = wedged.Error()
	}
	if s.gate != nil {
		body["shed_rate"] = s.shedRate()
	}
	writeJSON(w, body)
}

// StatsResponse is the /statz reply body.
type StatsResponse struct {
	Queries       int64   `json:"queries"`
	Errors        int64   `json:"errors"`
	MeanLatencyMS float64 `json:"mean_simulated_latency_ms"`
	CachedLists   int     `json:"cached_lists"`
	// Cache is the device-resident list cache's counter snapshot; omitted
	// when caching is off (single-engine servers aggregate one engine,
	// cluster servers aggregate across every replica).
	Cache *CacheStatsJSON `json:"cache,omitempty"`
	// Device is the shared device runtime's telemetry; omitted for
	// CPU-only engines and for cluster servers (see Shards). On multi-GPU
	// engines it reports device 0 (preserved for existing consumers) and
	// Devices carries one row per node device in device order.
	Device  *DeviceStatsJSON  `json:"device,omitempty"`
	Devices []DeviceStatsJSON `json:"devices,omitempty"`
	// Batching is the cross-query batching stage's configuration and
	// aggregate telemetry (across devices, and across replicas in cluster
	// mode); omitted when the stage is disabled so pre-batching /statz
	// output stays byte-identical.
	Batching *BatchingJSON `json:"batching,omitempty"`
	// Degraded counts cluster queries answered partially; Shards carries
	// one telemetry row per shard replica. Both are cluster-mode only.
	Degraded int64            `json:"degraded_queries,omitempty"`
	Shards   []ShardStatsJSON `json:"shards,omitempty"`
	// SelfHeal is the cluster's self-healing counter snapshot (cluster
	// mode only).
	SelfHeal *SelfHealJSON `json:"self_heal,omitempty"`
	// FaultCounts and Faults surface the injected-fault log when the
	// cluster runs with a fault plan: per-kind totals and the most
	// recent injected events (capped).
	FaultCounts map[string]int64 `json:"fault_counts,omitempty"`
	Faults      []FaultEventJSON `json:"faults,omitempty"`
	// FaultSites totals injected faults per site name — on multi-GPU
	// replicas the sites are per-device ("s2r1.g0"), so this map shows
	// which physical device each fault landed on.
	FaultSites map[string]int64 `json:"fault_sites,omitempty"`
	// Ingest is the live-ingestion layer's freshness and merge
	// telemetry; omitted when the server wraps a read-only backend, so
	// pre-ingest /statz output stays byte-identical.
	Ingest *IngestStatsJSON `json:"ingest,omitempty"`
	// Overload is the overload-control block (admission gate, deadline
	// counters, brownout, retry budget); omitted when no overload control
	// is configured, so pre-overload /statz output stays byte-identical.
	Overload *OverloadJSON `json:"overload,omitempty"`
}

// IngestStatsJSON reports the live layer: writer generation, merge lag
// (the /healthz freshness signal), mutation/merge counters, and the
// simulated time merges spent contending with queries on the shared
// device and CPU timelines. Cluster-only fields (shards, rebuilds,
// splits, per-shard breakdowns) are omitted on single-node servers.
type IngestStatsJSON struct {
	Gen        uint64 `json:"gen"`
	Lag        uint64 `json:"lag"`
	DeltaDocs  int    `json:"delta_docs"`
	Tombstones int    `json:"tombstones"`
	Adds       int64  `json:"adds"`
	Updates    int64  `json:"updates"`
	Deletes    int64  `json:"deletes"`
	// Accepted counts mutations applied through this server's /ingest
	// endpoint (the backend counters above also include direct writes).
	Accepted      int64   `json:"accepted"`
	Merges        int64   `json:"merges"`
	Aborts        int64   `json:"aborts,omitempty"`
	MergedDocs    int64   `json:"merged_docs"`
	MergeDeviceMS float64 `json:"merge_device_ms"`
	MergeCPUMS    float64 `json:"merge_cpu_ms"`
	MergeStallMS  float64 `json:"merge_stall_ms,omitempty"`
	// FreshnessThreshold is the merge-lag bound past which /healthz
	// reports degraded (0 = no check).
	FreshnessThreshold int   `json:"freshness_threshold,omitempty"`
	Shards             int   `json:"shards,omitempty"`
	LiveDocs           int   `json:"live_docs,omitempty"`
	Rebuilds           int64 `json:"rebuilds,omitempty"`
	Splits             int64 `json:"splits,omitempty"`
	ShardDocs          []int `json:"shard_docs,omitempty"`
	ShardDelta         []int `json:"shard_delta,omitempty"`
	// WAL is the durability block (write-ahead log counters plus the
	// last recovery's accounting); omitted when the backend runs without
	// a WAL, so in-memory /statz output stays byte-identical.
	WAL *wal.Stats `json:"wal,omitempty"`
}

// SelfHealJSON reports the cluster's lifetime self-healing counters.
type SelfHealJSON struct {
	Queries        int64 `json:"queries"`
	Degraded       int64 `json:"degraded"`
	Failed         int64 `json:"failed"`
	Retries        int64 `json:"retries"`
	Hedges         int64 `json:"hedges"`
	HedgeWins      int64 `json:"hedge_wins"`
	Fallbacks      int64 `json:"fallbacks"`
	BreakerTrips   int64 `json:"breaker_trips"`
	InjectedFaults int64 `json:"injected_faults"`
}

// FaultEventJSON is one injected fault in the /statz log.
type FaultEventJSON struct {
	Site string  `json:"site"`
	Seq  int64   `json:"seq"`
	Kind string  `json:"kind"`
	AtMS float64 `json:"at_ms"`
}

// faultLogCap bounds the /statz injected-fault log.
const faultLogCap = 100

// CacheStatsJSON reports the resident-list cache counters. PeerCopies
// counts misses served by copying the list from a sibling device's cache
// over the peer interconnect instead of re-uploading from the host
// (always zero on single-GPU engines).
type CacheStatsJSON struct {
	Lists      int   `json:"lists"`
	Bytes      int64 `json:"bytes"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
	PeerCopies int64 `json:"peer_copies,omitempty"`
}

// DeviceStatsJSON reports one device runtime's state: how busy the
// modeled GPU has been, how much queueing delay concurrent queries paid
// for it, and the backlog a query admitted now would face.
type DeviceStatsJSON struct {
	Streams        int     `json:"streams"`
	ActiveQueries  int     `json:"active_queries"`
	Admitted       int64   `json:"admitted"`
	Utilization    float64 `json:"utilization"`
	ComputeBusyMS  float64 `json:"compute_busy_ms"`
	CopyBusyMS     float64 `json:"copy_busy_ms"`
	QueueWaitMS    float64 `json:"queue_wait_ms"`
	BacklogMS      float64 `json:"backlog_ms"`
	TimelineSpanMS float64 `json:"timeline_span_ms"`
}

// ShardStatsJSON is one shard replica's telemetry row.
type ShardStatsJSON struct {
	Shard   int   `json:"shard"`
	Replica int   `json:"replica"`
	Queries int64 `json:"queries"`
	// Breaker is the replica's circuit-breaker state ("closed", "open",
	// "half-open"); BreakerTrips counts its openings.
	Breaker      string           `json:"breaker,omitempty"`
	BreakerTrips int64            `json:"breaker_trips,omitempty"`
	Cache        *CacheStatsJSON  `json:"cache,omitempty"`
	Device       *DeviceStatsJSON `json:"device,omitempty"`
	// Devices has one row per node device when the replica runs a
	// multi-GPU node (omitted on single-device replicas).
	Devices []DeviceStatsJSON `json:"devices,omitempty"`
}

// BatchingJSON reports the cross-query batching stage: its window/size
// configuration plus lifetime coalescing telemetry. saved_us is simulated
// device time the combined launches did not spend (fixed launch/DMA/alloc
// costs rebated to batch followers); window_flushes and size_flushes
// split batch closings by cause.
type BatchingJSON struct {
	WindowUS      float64 `json:"window_us"`
	Max           int     `json:"max"`
	Batches       int64   `json:"batches"`
	Members       int64   `json:"members"`
	SavedUS       float64 `json:"saved_us"`
	WindowFlushes int64   `json:"window_flushes"`
	SizeFlushes   int64   `json:"size_flushes"`
}

func batchingJSON(cfg gpu.BatchConfig, st gpu.BatchStats) *BatchingJSON {
	return &BatchingJSON{
		WindowUS:      float64(cfg.Window) / float64(time.Microsecond),
		Max:           cfg.Max,
		Batches:       st.Batches,
		Members:       st.Members,
		SavedUS:       float64(st.Saved) / float64(time.Microsecond),
		WindowFlushes: st.WindowFlushes,
		SizeFlushes:   st.SizeFlushes,
	}
}

func cacheJSON(st core.CacheStats) *CacheStatsJSON {
	return &CacheStatsJSON{
		Lists:      st.Lists,
		Bytes:      st.Bytes,
		Hits:       st.Hits,
		Misses:     st.Misses,
		Evictions:  st.Evictions,
		PeerCopies: st.PeerCopies,
	}
}

func deviceJSON(st gpu.RuntimeStats) DeviceStatsJSON {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return DeviceStatsJSON{
		Streams:        st.Streams,
		ActiveQueries:  st.Active,
		Admitted:       st.Admitted,
		Utilization:    st.Utilization,
		ComputeBusyMS:  ms(st.ComputeBusy),
		CopyBusyMS:     ms(st.CopyBusy),
		QueueWaitMS:    ms(st.Waited),
		BacklogMS:      ms(st.Backlog),
		TimelineSpanMS: ms(st.Horizon),
	}
}

// handleStats serves GET /statz.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	n := s.queries.Load()
	mean := 0.0
	if n > 0 {
		mean = float64(s.simNanos.Load()) / float64(n) / float64(time.Millisecond)
	}
	resp := StatsResponse{
		Queries:       n,
		Errors:        s.errors.Load(),
		MeanLatencyMS: mean,
		Overload:      s.overloadJSON(),
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

	switch {
	case s.live != nil:
		st := s.live.Stats()
		resp.Ingest = &IngestStatsJSON{
			Gen: st.Gen, Lag: st.Lag(),
			DeltaDocs: st.DeltaDocs, Tombstones: st.Tombstones,
			Adds: st.Adds, Updates: st.Updates, Deletes: st.Deletes,
			Accepted: s.ingested.Load(),
			Merges:   st.Merges, Aborts: st.Aborts, MergedDocs: st.MergedDocs,
			MergeDeviceMS: ms(st.MergeDevice), MergeCPUMS: ms(st.MergeCPU),
			MergeStallMS:       ms(st.MergeStall),
			FreshnessThreshold: s.freshness,
			WAL:                st.WAL,
		}
	case s.liveCluster != nil:
		st := s.liveCluster.Stats()
		resp.Ingest = &IngestStatsJSON{
			Gen: st.Gen, Lag: st.Lag(),
			DeltaDocs: st.DeltaDocs, Tombstones: st.Tombstones,
			Adds: st.Adds, Updates: st.Updates, Deletes: st.Deletes,
			Accepted: s.ingested.Load(),
			Merges:   st.Merges, Aborts: st.Aborts, MergedDocs: st.MergedDocs,
			MergeDeviceMS: ms(st.MergeDevice), MergeCPUMS: ms(st.MergeCPU),
			MergeStallMS:       ms(st.MergeStall),
			FreshnessThreshold: s.freshness,
			Shards:             st.Shards, LiveDocs: st.LiveDocs,
			Rebuilds: st.Rebuilds, Splits: st.Splits,
			ShardDocs: st.ShardDocs, ShardDelta: st.ShardDelta,
			WAL: st.WAL,
		}
	}

	if cl := s.cl(); cl != nil {
		resp.Degraded = s.degraded.Load()
		sh := cl.SelfHeal()
		resp.SelfHeal = &SelfHealJSON{
			Queries:        sh.Queries,
			Degraded:       sh.Degraded,
			Failed:         sh.Failed,
			Retries:        sh.Retries,
			Hedges:         sh.Hedges,
			HedgeWins:      sh.HedgeWins,
			Fallbacks:      sh.Fallbacks,
			BreakerTrips:   sh.BreakerTrips,
			InjectedFaults: sh.InjectedFaults,
		}
		if inj := cl.Injector(); inj != nil {
			resp.FaultCounts = inj.Counts()
			resp.FaultSites = inj.SiteCounts()
			log := inj.Log()
			if len(log) > faultLogCap {
				log = log[len(log)-faultLogCap:]
			}
			for _, ev := range log {
				resp.Faults = append(resp.Faults, FaultEventJSON{
					Site: ev.Site,
					Seq:  ev.Seq,
					Kind: ev.Kind.String(),
					AtMS: ms(ev.At),
				})
			}
		}
		agg := core.CacheStats{}
		caching := false
		for _, row := range cl.Telemetry() {
			sr := ShardStatsJSON{
				Shard: row.Shard, Replica: row.Replica, Queries: row.Queries,
				Breaker: row.Breaker, BreakerTrips: row.BreakerTrips,
			}
			if row.Cache != (core.CacheStats{}) {
				caching = true
				sr.Cache = cacheJSON(row.Cache)
				agg.Add(row.Cache)
			}
			if row.Device != nil {
				d := deviceJSON(*row.Device)
				sr.Device = &d
			}
			for _, d := range row.Devices {
				sr.Devices = append(sr.Devices, deviceJSON(d))
			}
			resp.Shards = append(resp.Shards, sr)
		}
		resp.CachedLists = agg.Lists
		if caching {
			resp.Cache = cacheJSON(agg)
		}
		if cfg, on := cl.Batching(); on {
			resp.Batching = batchingJSON(cfg, cl.BatchStats())
		}
		writeJSON(w, resp)
		return
	}

	eng := s.eng()
	resp.CachedLists = eng.CachedLists()
	if st := eng.CacheStats(); st != (core.CacheStats{}) {
		resp.Cache = cacheJSON(st)
	}
	if rt := eng.Runtime(); rt != nil {
		d := deviceJSON(rt.Stats())
		resp.Device = &d
	}
	if node := eng.Node(); node != nil && node.Devices() > 1 {
		for i := 0; i < node.Devices(); i++ {
			resp.Devices = append(resp.Devices, deviceJSON(node.Runtime(i).Stats()))
		}
	}
	if cfg, on := eng.Batching(); on {
		resp.Batching = batchingJSON(cfg, eng.BatchStats())
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
