package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"griffin/internal/core"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/ingest"
)

func newLiveServer(t *testing.T, freshness int) (*Server, *ingest.Engine) {
	t.Helper()
	e, err := ingest.New(testIndex(t), ingest.Config{
		Engine: core.Config{Mode: core.Hybrid, Device: gpu.New(hwmodel.DefaultGPU(), 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return NewLive(e, freshness), e
}

func newLiveClusterServer(t *testing.T, freshness int) (*Server, *ingest.Cluster) {
	t.Helper()
	c, err := ingest.NewCluster(testIndex(t), ingest.ClusterConfig{
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return NewLiveCluster(c, freshness), c
}

func postIngest(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/ingest", bytes.NewBufferString(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func getJSON(t *testing.T, s *Server, path string, out any) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", path, err, w.Body.String())
		}
	}
	return w
}

// A mutation POSTed to /ingest is visible to the very next /search
// through the delta, and /statz grows the ingest block.
func TestIngestEndpointLiveSearch(t *testing.T) {
	s, _ := newLiveServer(t, 0)

	var before SearchResponse
	getJSON(t, s, "/search?q=zebra+habitat", &before)
	if len(before.Results) != 0 {
		t.Fatalf("fresh-term query matched before ingest: %+v", before.Results)
	}

	w := postIngest(t, s, `{"op":"add","doc_id":100,"text":"zebra habitat zebra"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", w.Code, w.Body.String())
	}
	var ack IngestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Gen != 1 || ack.Lag != 1 {
		t.Fatalf("ack = %+v, want gen 1 lag 1", ack)
	}

	var after SearchResponse
	getJSON(t, s, "/search?q=zebra+habitat", &after)
	if len(after.Results) != 1 || after.Results[0].DocID != 100 {
		t.Fatalf("ingested doc not served: %+v", after.Results)
	}

	var st StatsResponse
	getJSON(t, s, "/statz", &st)
	if st.Ingest == nil {
		t.Fatal("/statz missing ingest block on a live server")
	}
	if st.Ingest.Gen != 1 || st.Ingest.Adds != 1 || st.Ingest.Accepted != 1 || st.Ingest.DeltaDocs != 1 {
		t.Fatalf("ingest telemetry = %+v", st.Ingest)
	}
}

// Invalid mutations are the caller's fault (400); the op vocabulary is
// closed; bodies must parse.
func TestIngestEndpointValidation(t *testing.T) {
	s, _ := newLiveServer(t, 0)
	for _, tc := range []struct {
		body string
		code int
	}{
		{`{"op":"add","doc_id":1,"tokens":["x"]}`, http.StatusBadRequest}, // doc 1 exists
		{`{"op":"delete","doc_id":998}`, http.StatusBadRequest},           // absent
		{`{"op":"add","doc_id":50}`, http.StatusBadRequest},               // no tokens
		{`{"op":"frobnicate","doc_id":50}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
		{`{"op":"update","doc_id":999,"tokens":["x"]}`, http.StatusOK}, // upsert by design
		{`{"op":"add","doc_id":50,"tokens":["ok"]}`, http.StatusOK},
	} {
		if w := postIngest(t, s, tc.body); w.Code != tc.code {
			t.Errorf("%s -> %d, want %d (%s)", tc.body, w.Code, tc.code, w.Body.String())
		}
	}
	// Read-only servers don't register the route at all.
	if w := postIngest(t, newTestServer(t), `{"op":"add","doc_id":9,"tokens":["x"]}`); w.Code != http.StatusNotFound {
		t.Fatalf("read-only server answered /ingest with %d", w.Code)
	}
}

// Merge lag beyond the freshness threshold degrades /healthz — still
// 200 (stale but serving), never unhealthy; merging restores "ok".
func TestHealthzFreshnessDegraded(t *testing.T) {
	s, e := newLiveServer(t, 2)

	health := func() (string, int) {
		var h struct {
			Status string `json:"status"`
			Lag    uint64 `json:"ingest_lag"`
		}
		w := getJSON(t, s, "/healthz", &h)
		if w.Code != http.StatusOK {
			t.Fatalf("healthz status code %d", w.Code)
		}
		return h.Status, int(h.Lag)
	}

	if got, lag := health(); got != "ok" || lag != 0 {
		t.Fatalf("fresh server: status %q lag %d", got, lag)
	}
	for i := uint32(0); i < 3; i++ {
		if err := e.Add(200+i, []string{"stale"}); err != nil {
			t.Fatal(err)
		}
	}
	st, lag := health()
	if st != "degraded" || lag != 3 {
		t.Fatalf("lagging server: status %q lag %d, want degraded at lag 3 > threshold 2", st, lag)
	}
	if err := e.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if got, lag := health(); got != "ok" || lag != 0 {
		t.Fatalf("quiesced server: status %q lag %d", got, lag)
	}
}

// The live cluster backend serves /search through the current cluster
// incarnation, accepts /ingest, reports cluster ingest telemetry, and
// follows engine swaps across Quiesce.
func TestLiveClusterEndpoints(t *testing.T) {
	s, c := newLiveClusterServer(t, 0)

	w := postIngest(t, s, `{"op":"add","doc_id":77,"text":"zebra habitat"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", w.Code, w.Body.String())
	}
	var res SearchResponse
	getJSON(t, s, "/search?q=zebra", &res)
	if len(res.Results) != 1 || res.Results[0].DocID != 77 {
		t.Fatalf("cluster did not serve ingested doc: %+v", res.Results)
	}

	var st StatsResponse
	getJSON(t, s, "/statz", &st)
	if st.Ingest == nil || st.Ingest.Shards != 2 || st.Ingest.DeltaDocs != 1 {
		t.Fatalf("cluster ingest telemetry = %+v", st.Ingest)
	}
	if len(st.Shards) == 0 {
		t.Fatal("cluster /statz lost per-shard telemetry rows")
	}

	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	getJSON(t, s, "/search?q=zebra", &res)
	if len(res.Results) != 1 || res.Results[0].DocID != 77 {
		t.Fatalf("post-quiesce cluster lost the doc: %+v", res.Results)
	}
	var h struct {
		Status string `json:"status"`
		Shards int    `json:"shards"`
	}
	getJSON(t, s, "/healthz", &h)
	if h.Status != "ok" || h.Shards != 2 {
		t.Fatalf("healthz after quiesce: %+v", h)
	}

	var raw map[string]json.RawMessage
	getJSON(t, s, "/statz", &raw)
	if _, ok := raw["ingest"]; !ok {
		t.Fatal("ingest block missing from raw /statz")
	}
}

// Read-only servers emit no ingest key at all — the legacy /statz and
// /healthz bodies are unchanged byte for byte.
func TestStatzIngestOmittedWhenReadOnly(t *testing.T) {
	for name, s := range map[string]*Server{
		"single":  newTestServer(t),
		"cluster": newTestClusterServer(t, 2, 1, 0),
	} {
		w := getJSON(t, s, "/statz", nil)
		if strings.Contains(w.Body.String(), `"ingest"`) {
			t.Errorf("%s: read-only /statz leaked an ingest block", name)
		}
		w = getJSON(t, s, "/healthz", nil)
		if strings.Contains(w.Body.String(), "ingest_lag") {
			t.Errorf("%s: read-only /healthz leaked ingest_lag", name)
		}
	}
}
