package server

import (
	"net/http"
	"strconv"
	"time"

	"griffin/internal/cluster"
	"griffin/internal/overload"
)

// OverloadConfig tunes the server's wall-clock admission gate. The
// cluster-side overload controls (deadline budgets, per-replica
// shedding, retry budgets, brownout) are configured on the cluster
// itself via cluster.Config.Overload; the gate is the HTTP layer's own
// defense: it bounds in-flight requests before they reach any backend.
type OverloadConfig struct {
	// MaxInflight bounds concurrently served /search requests
	// (<= 0 = unbounded, gate disabled).
	MaxInflight int
	// GateTarget/GateInterval tune the gate's CoDel shed rule on queue
	// wait (0 = overload.DefaultGateTarget, 2x target).
	GateTarget   time.Duration
	GateInterval time.Duration
}

// ConfigureOverload installs the admission gate. Call before serving
// traffic; a zero config leaves the server exactly as constructed.
func (s *Server) ConfigureOverload(cfg OverloadConfig) {
	s.gate = overload.NewGate(cfg.MaxInflight, cfg.GateTarget, cfg.GateInterval)
}

// parseQueryOpts extracts the per-query overload parameters
// (?deadline_ms=, ?class=) from a /search request. It writes a 400 and
// returns false on an invalid value, or on any overload parameter when
// the backend is not a cluster (single engines have no deadline
// machinery — silently dropping the contract would be worse than
// refusing it).
func (s *Server) parseQueryOpts(w http.ResponseWriter, r *http.Request) (cluster.QueryOpts, bool) {
	var qo cluster.QueryOpts
	dms := r.URL.Query().Get("deadline_ms")
	cls := r.URL.Query().Get("class")
	if dms == "" && cls == "" {
		return qo, true
	}
	if s.cluster == nil && s.liveCluster == nil {
		http.Error(w, `parameters "deadline_ms" and "class" require a cluster backend`, http.StatusBadRequest)
		return qo, false
	}
	if dms != "" {
		v, err := strconv.ParseFloat(dms, 64)
		// !(v > 0) also rejects NaN; the upper bound rejects Inf and
		// values that would overflow the Duration conversion.
		if err != nil || !(v > 0) || v > 1e12 {
			http.Error(w, `parameter "deadline_ms" must be a positive number`, http.StatusBadRequest)
			return qo, false
		}
		qo.Deadline = time.Duration(v * float64(time.Millisecond))
	}
	if cls != "" {
		c, ok := overload.ParseClass(cls)
		if !ok {
			http.Error(w, `parameter "class" must be "interactive" or "batch"`, http.StatusBadRequest)
			return qo, false
		}
		qo.Class = c
	}
	return qo, true
}

// GateJSON reports the admission gate in /statz.
type GateJSON struct {
	MaxInflight  int     `json:"max_inflight"`
	Inflight     int     `json:"inflight"`
	QueueDepth   int     `json:"queue_depth"`
	OldestWaitMS float64 `json:"oldest_wait_ms"`
	Admitted     int64   `json:"admitted"`
	Sheds        int64   `json:"sheds"`
}

// RetryBudgetJSON reports the cluster's aggregated retry/hedge token
// buckets.
type RetryBudgetJSON struct {
	Admissions int64   `json:"admissions"`
	Granted    int64   `json:"granted"`
	Denied     int64   `json:"denied"`
	Tokens     float64 `json:"tokens"`
}

// OverloadJSON is the /statz overload-control block, present only when
// an admission gate or any cluster overload control is configured — a
// server running without overload control emits byte-identical /statz
// output to the pre-overload build.
type OverloadJSON struct {
	// Gate is the HTTP admission gate (omitted when unbounded).
	Gate *GateJSON `json:"gate,omitempty"`
	// ShedRequests counts /search requests refused with 503: gate sheds
	// plus cluster-level shed/deadline refusals.
	ShedRequests int64 `json:"shed_requests"`
	// Cluster-side deadline parameters and counters (cluster mode only).
	DefaultDeadlineMS   float64          `json:"default_deadline_ms,omitempty"`
	MergeReserveMS      float64          `json:"merge_reserve_ms,omitempty"`
	BrownoutLevel       int              `json:"brownout_level"`
	BrownoutEscalations int64            `json:"brownout_escalations,omitempty"`
	BatchSheds          int64            `json:"batch_sheds,omitempty"`
	BrownoutDegraded    int64            `json:"brownout_degraded,omitempty"`
	RetryBudget         *RetryBudgetJSON `json:"retry_budget,omitempty"`
	ShardOffers         int64            `json:"shard_offers,omitempty"`
	ShardSheds          int64            `json:"shard_sheds,omitempty"`
	DeadlineInfeasible  int64            `json:"deadline_infeasible,omitempty"`
	DeadlineMisses      int64            `json:"deadline_misses,omitempty"`
	BudgetRejects       int64            `json:"budget_rejects,omitempty"`
	HedgeSkips          int64            `json:"hedge_skips,omitempty"`
}

// overloadJSON assembles the /statz overload block, or nil when no
// overload control is configured anywhere.
func (s *Server) overloadJSON() *OverloadJSON {
	cl := s.cl()
	clOn := cl != nil && cl.OverloadEnabled()
	if s.gate == nil && !clOn {
		return nil
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	oj := &OverloadJSON{ShedRequests: s.sheds.Load()}
	if s.gate != nil {
		gs := s.gate.Stats()
		oj.Gate = &GateJSON{
			MaxInflight:  gs.MaxInflight,
			Inflight:     gs.Inflight,
			QueueDepth:   gs.QueueDepth,
			OldestWaitMS: ms(gs.OldestWait),
			Admitted:     gs.Admitted,
			Sheds:        gs.Sheds,
		}
		oj.ShedRequests += gs.Sheds
	}
	if clOn {
		ost := cl.Overload()
		oj.DefaultDeadlineMS = ms(ost.DefaultDeadline)
		oj.MergeReserveMS = ms(ost.MergeReserve)
		oj.BrownoutLevel = ost.Brownout.Level
		oj.BrownoutEscalations = ost.Brownout.Escalations
		oj.BatchSheds = ost.Brownout.BatchSheds
		oj.BrownoutDegraded = ost.Brownout.Degraded
		if ost.RetryBudget != (overload.BudgetStats{}) {
			oj.RetryBudget = &RetryBudgetJSON{
				Admissions: ost.RetryBudget.Admissions,
				Granted:    ost.RetryBudget.Granted,
				Denied:     ost.RetryBudget.Denied,
				Tokens:     ost.RetryBudget.Tokens,
			}
		}
		oj.ShardOffers = ost.ShardOffers
		oj.ShardSheds = ost.ShardSheds
		oj.DeadlineInfeasible = ost.DeadlineInfeasible
		oj.DeadlineMisses = ost.DeadlineMisses
		oj.BudgetRejects = ost.BudgetRejects
		oj.HedgeSkips = ost.HedgeSkips
	}
	return oj
}

// shedRate is the /healthz overload signal: the fraction of /search
// requests refused by overload control (gate sheds plus cluster-level
// refusals) among all requests seen.
func (s *Server) shedRate() float64 {
	shed := s.sheds.Load()
	if s.gate != nil {
		shed += s.gate.Stats().Sheds
	}
	total := s.queries.Load() + shed
	if total == 0 {
		return 0
	}
	return float64(shed) / float64(total)
}
