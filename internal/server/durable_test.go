package server

import (
	"net/http"
	"strings"
	"testing"

	"griffin/internal/core"
	"griffin/internal/fault"
	"griffin/internal/ingest"
)

func newDurableServer(t *testing.T, cfg ingest.Config) (*Server, *ingest.Engine) {
	t.Helper()
	if cfg.Engine.Mode == 0 {
		cfg.Engine = core.Config{Mode: core.CPUOnly}
	}
	e, err := ingest.Open(testIndex(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewLive(e, 0), e
}

// A durable backend grows a "wal" sub-block inside /statz's ingest
// block; the in-memory backend's body never mentions it — the PR 9
// golden stays byte-identical.
func TestStatzWALBlockPresence(t *testing.T) {
	s, e := newDurableServer(t, ingest.Config{WALDir: t.TempDir()})
	defer e.Close()
	if w := postIngest(t, s, `{"op":"add","doc_id":100,"text":"zebra habitat"}`); w.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", w.Code, w.Body.String())
	}
	var st StatsResponse
	getJSON(t, s, "/statz", &st)
	if st.Ingest == nil || st.Ingest.WAL == nil {
		t.Fatalf("durable /statz missing ingest.wal block: %+v", st.Ingest)
	}
	if st.Ingest.WAL.Appends != 1 || st.Ingest.WAL.Syncs == 0 {
		t.Fatalf("wal telemetry = %+v, want 1 synced append", st.Ingest.WAL)
	}

	// The in-memory live server never emits the key at all.
	mem, _ := newLiveServer(t, 0)
	if w := postIngest(t, mem, `{"op":"add","doc_id":100,"text":"zebra"}`); w.Code != http.StatusOK {
		t.Fatalf("in-memory ingest status %d", w.Code)
	}
	if w := getJSON(t, mem, "/statz", nil); strings.Contains(w.Body.String(), `"wal"`) {
		t.Fatalf("in-memory /statz leaked a wal block:\n%s", w.Body.String())
	}
}

// A storage fault on the WAL append path surfaces end to end: the
// mutation is refused with 503 (unacknowledged, so recovery owes it
// nothing), /healthz degrades with the wedge reason, and reads keep
// serving the last acknowledged state.
func TestIngestStorageFaultDegradesHealth(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Seed: 7, Rules: []fault.Rule{
		{Kind: fault.TornWrite, Rate: 1},
	}})
	s, e := newDurableServer(t, ingest.Config{WALDir: t.TempDir(), Fault: inj})
	defer e.Close()

	var before struct {
		Status string `json:"status"`
	}
	w := getJSON(t, s, "/healthz", &before)
	if before.Status != "ok" || strings.Contains(w.Body.String(), "wal_wedged") {
		t.Fatalf("healthy server already wedged: %s", w.Body.String())
	}

	w = postIngest(t, s, `{"op":"add","doc_id":100,"text":"zebra habitat"}`)
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "ingest unavailable") {
		t.Fatalf("torn append answered %d: %s", w.Code, w.Body.String())
	}
	// The log is wedged now: every further mutation is refused too.
	if w = postIngest(t, s, `{"op":"add","doc_id":101,"text":"okapi"}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("wedged backend accepted a mutation: %d %s", w.Code, w.Body.String())
	}

	var h struct {
		Status string `json:"status"`
		Wedged string `json:"wal_wedged"`
	}
	getJSON(t, s, "/healthz", &h)
	if h.Status != "degraded" || h.Wedged == "" {
		t.Fatalf("wedged healthz = %+v, want degraded with a wal_wedged reason", h)
	}

	var res SearchResponse
	if w := getJSON(t, s, "/search?q=quick+fox", &res); w.Code != http.StatusOK || len(res.Results) == 0 {
		t.Fatalf("wedged server stopped serving reads: %d %+v", w.Code, res)
	}
	var st StatsResponse
	getJSON(t, s, "/statz", &st)
	if st.Ingest == nil || st.Ingest.WAL == nil || !st.Ingest.WAL.Wedged {
		t.Fatalf("/statz does not report the wedge: %+v", st.Ingest)
	}
}

// The graceful-shutdown barrier (what SIGTERM triggers in
// griffin-server after the request drain): closing the engine syncs the
// WAL, so even under the deferred-sync policy every mutation the server
// acknowledged over HTTP survives a restart.
func TestServerShutdownDurability(t *testing.T) {
	dir := t.TempDir()
	cfg := ingest.Config{
		Engine: core.Config{Mode: core.CPUOnly},
		WALDir: dir, WALSyncEvery: -1,
	}
	s, e := newDurableServer(t, cfg)
	for _, body := range []string{
		`{"op":"add","doc_id":100,"text":"zebra habitat zebra"}`,
		`{"op":"add","doc_id":101,"text":"okapi forest"}`,
		`{"op":"update","doc_id":100,"text":"zebra savanna"}`,
	} {
		if w := postIngest(t, s, body); w.Code != http.StatusOK {
			t.Fatalf("%s -> %d: %s", body, w.Code, w.Body.String())
		}
	}
	if st := e.Stats(); st.WAL == nil || st.WAL.Syncs != 0 {
		t.Fatalf("deferred-sync policy synced early: %+v", st.WAL)
	}
	e.Close() // griffin-server's deferred Close after the drain window

	r, err := ingest.Open(testIndex(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Gen(); got != 3 {
		t.Fatalf("recovered gen %d, want all 3 acknowledged mutations", got)
	}
	s2 := NewLive(r, 0)
	var res SearchResponse
	getJSON(t, s2, "/search?q=savanna", &res)
	if len(res.Results) != 1 || res.Results[0].DocID != 100 {
		t.Fatalf("restart lost the acknowledged update: %+v", res.Results)
	}
}
