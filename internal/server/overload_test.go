package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"griffin/internal/cluster"
	"griffin/internal/core"
	"griffin/internal/overload"
	"griffin/internal/workload"
)

// newOverloadClusterServer builds a cluster server with the given
// overload config (zero = controls off).
func newOverloadClusterServer(t *testing.T, olc overload.Config) *Server {
	t.Helper()
	ixs, err := workload.PartitionIndex(testIndex(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(ixs, cluster.Config{
		Engine:   core.Config{Mode: core.CPUOnly},
		TopK:     10,
		Overload: olc,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return NewCluster(cl)
}

// TestOverloadDisabledBytesParity pins the inertness guarantee at the
// HTTP surface: a server with no overload control configured emits
// byte-identical /search, /statz, and /healthz bodies to one whose code
// never heard of overload — no overload block, no shed_rate, no
// per-query deadline fields.
func TestOverloadDisabledBytesParity(t *testing.T) {
	srv := newOverloadClusterServer(t, overload.Config{})
	rec, body := get(t, srv, "/search?q=quick+fox&trace=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, body)
	}
	for _, banned := range []string{"deadline", "class", "brownout", "forced_cpu", "shed", "hedge_skip", "budget"} {
		if bytes.Contains(body, []byte(banned)) {
			t.Fatalf("disabled overload leaked %q into /search body:\n%s", banned, body)
		}
	}
	_, body = get(t, srv, "/statz")
	if bytes.Contains(body, []byte(`"overload"`)) {
		t.Fatalf("disabled overload leaked block into /statz:\n%s", body)
	}
	_, body = get(t, srv, "/healthz")
	if bytes.Contains(body, []byte("shed_rate")) || bytes.Contains(body, []byte("brownout")) {
		t.Fatalf("disabled overload leaked into /healthz:\n%s", body)
	}
}

// TestSearchDeadlineParam drives ?deadline_ms= end to end: an ample
// deadline is recorded in the response, an infeasible one is refused
// with 503, and malformed values are 400s.
func TestSearchDeadlineParam(t *testing.T) {
	srv := newOverloadClusterServer(t, overload.Config{})

	rec, body := get(t, srv, "/search?q=quick+fox&deadline_ms=1000")
	if rec.Code != http.StatusOK {
		t.Fatalf("ample deadline: %d %s", rec.Code, body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.DeadlineMS != 1000 {
		t.Fatalf("deadline_ms = %v, want 1000", resp.DeadlineMS)
	}
	if len(resp.Results) == 0 {
		t.Fatal("ample deadline returned no results")
	}

	// Below the merge reserve: refused before any shard work.
	rec, body = get(t, srv, "/search?q=quick+fox&deadline_ms=0.000001")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("infeasible deadline: %d %s", rec.Code, body)
	}
	if !strings.Contains(string(body), "overloaded") {
		t.Fatalf("infeasible deadline body %q", body)
	}

	for _, bad := range []string{"-5", "0", "nan", "abc"} {
		rec, _ = get(t, srv, "/search?q=quick+fox&deadline_ms="+bad)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("deadline_ms=%s: code %d, want 400", bad, rec.Code)
		}
	}
}

// TestSearchClassParam validates ?class= parsing and the batch marker
// in the response.
func TestSearchClassParam(t *testing.T) {
	srv := newOverloadClusterServer(t, overload.Config{})

	rec, body := get(t, srv, "/search?q=quick+fox&class=batch")
	if rec.Code != http.StatusOK {
		t.Fatalf("batch class: %d %s", rec.Code, body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Class != "batch" {
		t.Fatalf("class = %q, want batch", resp.Class)
	}

	rec, body = get(t, srv, "/search?q=quick+fox&class=interactive")
	if rec.Code != http.StatusOK {
		t.Fatalf("interactive class: %d %s", rec.Code, body)
	}
	if bytes.Contains(body, []byte(`"class"`)) {
		t.Fatalf("interactive class marked in body:\n%s", body)
	}

	rec, _ = get(t, srv, "/search?q=quick+fox&class=bulk")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad class: code %d, want 400", rec.Code)
	}
}

// TestOverloadParamsRequireCluster: a single-engine server refuses the
// cluster-only parameters instead of silently dropping the contract.
func TestOverloadParamsRequireCluster(t *testing.T) {
	srv := newTestServer(t)
	for _, q := range []string{"deadline_ms=10", "class=batch"} {
		rec, body := get(t, srv, "/search?q=quick+fox&"+q)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s on single engine: %d %s", q, rec.Code, body)
		}
	}
}

// TestGateBoundsInflight holds max-inflight slots hostage and checks a
// queued request is served once a slot frees, while /statz reports the
// gate.
func TestGateBoundsInflight(t *testing.T) {
	srv := newTestClusterServer(t, 2, 1, 0)
	srv.ConfigureOverload(OverloadConfig{MaxInflight: 1, GateTarget: time.Hour})

	// Occupy the single slot directly.
	if err := srv.gate.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec, _ := get(t, srv, "/search?q=quick+fox")
		done <- rec.Code
	}()
	select {
	case code := <-done:
		t.Fatalf("request completed with %d while the gate was full", code)
	case <-time.After(50 * time.Millisecond):
	}
	srv.gate.Leave()
	wg.Wait()
	if code := <-done; code != http.StatusOK {
		t.Fatalf("queued request finished with %d", code)
	}

	_, body := get(t, srv, "/statz")
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Overload == nil || st.Overload.Gate == nil {
		t.Fatalf("gated server missing overload gate block:\n%s", body)
	}
	if st.Overload.Gate.MaxInflight != 1 || st.Overload.Gate.Admitted < 2 {
		t.Fatalf("gate stats %+v", st.Overload.Gate)
	}

	_, body = get(t, srv, "/healthz")
	if !bytes.Contains(body, []byte("shed_rate")) {
		t.Fatalf("gated server /healthz missing shed_rate:\n%s", body)
	}
}

// TestGateCancelledWaiterDoesNotLeakSlot: a waiter whose client leaves
// gives its queue spot (or a just-granted slot) back.
func TestGateCancelledWaiterDoesNotLeakSlot(t *testing.T) {
	srv := newTestClusterServer(t, 2, 1, 0)
	srv.ConfigureOverload(OverloadConfig{MaxInflight: 1, GateTarget: time.Hour})
	if err := srv.gate.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		req := httptest.NewRequest(http.MethodGet, "/search?q=quick+fox", nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		errc <- nil
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	<-errc
	srv.gate.Leave()
	// The slot must be free again: a fresh request is served immediately.
	rec, body := get(t, srv, "/search?q=quick+fox")
	if rec.Code != http.StatusOK {
		t.Fatalf("post-cancel request: %d %s", rec.Code, body)
	}
}

// TestStatzOverloadBlock drives a cluster with overload controls on and
// checks the /statz block carries the cluster-side counters.
func TestStatzOverloadBlock(t *testing.T) {
	srv := newOverloadClusterServer(t, overload.Config{
		DefaultDeadline: time.Second,
		RetryBudget:     0.1,
	})
	rec, body := get(t, srv, "/search?q=quick+fox")
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.DeadlineMS != 1000 {
		t.Fatalf("default deadline not applied: %+v", resp)
	}
	_, body = get(t, srv, "/statz")
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Overload == nil {
		t.Fatalf("overload-enabled server missing /statz block:\n%s", body)
	}
	if st.Overload.DefaultDeadlineMS != 1000 || st.Overload.MergeReserveMS <= 0 {
		t.Fatalf("overload block %+v", st.Overload)
	}
	if st.Overload.RetryBudget == nil || st.Overload.RetryBudget.Admissions == 0 {
		t.Fatalf("retry budget block %+v", st.Overload.RetryBudget)
	}
	if st.Overload.Gate != nil {
		t.Fatalf("ungated server reports a gate: %+v", st.Overload.Gate)
	}
	_, body = get(t, srv, "/healthz")
	if !bytes.Contains(body, []byte("shed_rate")) || !bytes.Contains(body, []byte("brownout_level")) {
		t.Fatalf("overload-enabled /healthz missing signals:\n%s", body)
	}
}
