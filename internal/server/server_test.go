package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"griffin/internal/cluster"
	"griffin/internal/core"
	"griffin/internal/fault"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/sched"
	"griffin/internal/workload"
)

func testIndex(t *testing.T) *index.Index {
	t.Helper()
	b := index.NewBuilder(index.CodecEF)
	docs := []string{
		"the quick brown fox jumps over the lazy dog",
		"a quick brown dog outpaces a lazy fox",
		"graphics processors accelerate retrieval",
		"posting lists intersect quickly on devices",
	}
	for i, text := range docs {
		if err := b.AddDocument(uint32(i), index.Tokenize(text)); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func newTestServer(t *testing.T) *Server {
	t.Helper()
	ix := testIndex(t)
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	e, err := core.New(ix, core.Config{Mode: core.Hybrid, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	return New(e)
}

func newTestClusterServer(t *testing.T, shards, replicas int, timeout time.Duration) *Server {
	t.Helper()
	ixs, err := workload.PartitionIndex(testIndex(t), shards)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(ixs, cluster.Config{
		Engine:       core.Config{Mode: core.Hybrid, CacheLists: true},
		TopK:         10,
		Replicas:     replicas,
		ShardTimeout: timeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return NewCluster(cl)
}

func get(t *testing.T, srv *Server, path string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func TestSearchEndpoint(t *testing.T) {
	srv := newTestServer(t)
	rec, body := get(t, srv, "/search?q=quick+fox")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Candidates != 2 || len(resp.Results) != 2 {
		t.Fatalf("unexpected response: %+v", resp)
	}
	if resp.LatencyMS <= 0 {
		t.Fatal("no simulated latency reported")
	}
	for _, h := range resp.Results {
		if h.DocID != 0 && h.DocID != 1 {
			t.Fatalf("wrong doc %d", h.DocID)
		}
	}
}

func TestSearchKParameter(t *testing.T) {
	srv := newTestServer(t)
	_, body := get(t, srv, "/search?q=quick+fox&k=1")
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("k=1 returned %d results", len(resp.Results))
	}
}

func TestSearchValidation(t *testing.T) {
	srv := newTestServer(t)
	cases := []string{
		"/search",                 // missing q
		"/search?q=",              // empty q
		"/search?q=%21%40%23",     // tokenizes to nothing
		"/search?q=fox&k=0",       // bad k
		"/search?q=fox&k=99999",   // k too large
		"/search?q=fox&k=notanum", // non-numeric k
	}
	for _, path := range cases {
		rec, _ := get(t, srv, path)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, rec.Code)
		}
	}
}

func TestSearchNoMatches(t *testing.T) {
	srv := newTestServer(t)
	rec, body := get(t, srv, "/search?q=nonexistent+words")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Candidates != 0 || len(resp.Results) != 0 {
		t.Fatalf("expected empty result: %+v", resp)
	}
}

func TestHealthAndStats(t *testing.T) {
	srv := newTestServer(t)
	rec, body := get(t, srv, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var health map[string]any
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["mode"] != "griffin" {
		t.Fatalf("health: %v", health)
	}

	// Issue a couple of searches, then check counters.
	get(t, srv, "/search?q=quick+fox")
	get(t, srv, "/search?q=lazy+dog")
	_, body = get(t, srv, "/statz")
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Queries != 2 || st.Errors != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MeanLatencyMS <= 0 {
		t.Fatal("mean latency not aggregated")
	}
}

func TestConcurrentRequests(t *testing.T) {
	srv := newTestServer(t)
	var wg sync.WaitGroup
	codes := make([]int, 20)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, _ := get(t, srv, "/search?q=quick+brown")
			codes[i] = rec.Code
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: status %d", i, c)
		}
	}
}

// /statz must surface the shared device runtime: after a burst of
// concurrent searches the modeled GPU shows non-zero utilization and
// admissions (the acceptance probe for the runtime being wired through
// the service path), while a CPU-only engine reports no device at all.
func TestStatsDeviceTelemetry(t *testing.T) {
	srv := newTestServer(t)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			get(t, srv, "/search?q=quick+fox")
		}()
	}
	wg.Wait()

	_, body := get(t, srv, "/statz")
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Device == nil {
		t.Fatal("hybrid engine reports no device telemetry")
	}
	d := st.Device
	if d.Streams < 1 {
		t.Fatalf("streams = %d", d.Streams)
	}
	if d.Admitted < 16 {
		t.Fatalf("admitted = %d, want >= 16", d.Admitted)
	}
	if d.Utilization <= 0 || d.Utilization > 1 {
		t.Fatalf("utilization %v not in (0,1] after concurrent batch", d.Utilization)
	}
	if d.ComputeBusyMS <= 0 && d.CopyBusyMS <= 0 {
		t.Fatal("no device busy time accumulated")
	}
	if d.ActiveQueries != 0 {
		t.Fatalf("active queries %d after all requests returned", d.ActiveQueries)
	}
	if d.QueueWaitMS < 0 || d.BacklogMS < 0 || d.TimelineSpanMS <= 0 {
		t.Fatalf("implausible device stats: %+v", d)
	}

	// CPU-only engines have no runtime: the field is omitted.
	b := index.NewBuilder(index.CodecEF)
	if err := b.AddDocument(0, index.Tokenize("plain host search")); err != nil {
		t.Fatal(err)
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.New(ix, core.Config{Mode: core.CPUOnly})
	if err != nil {
		t.Fatal(err)
	}
	_, body = get(t, New(e), "/statz")
	st = StatsResponse{}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Device != nil {
		t.Fatalf("CPU-only engine reports device telemetry: %+v", st.Device)
	}
}

// A multi-GPU engine grows a per-device telemetry array on /statz; a
// single-GPU engine omits it so devices=1 output stays identical to
// older builds.
func TestStatsMultiDeviceTelemetry(t *testing.T) {
	ix := testIndex(t)
	e, err := core.New(ix, core.Config{
		Mode: core.Hybrid, Device: gpu.New(hwmodel.DefaultGPU(), 0),
		Devices: 2, Placement: &sched.RoundRobinDevices{}, CacheLists: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(e)
	for i := 0; i < 8; i++ {
		get(t, srv, "/search?q=quick+fox")
	}

	_, body := get(t, srv, "/statz")
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Devices) != 2 {
		t.Fatalf("devices array has %d rows, want 2", len(st.Devices))
	}
	var admitted int64
	for _, d := range st.Devices {
		admitted += d.Admitted
	}
	if admitted < 8 {
		t.Fatalf("per-device admissions sum to %d, want >= 8", admitted)
	}
	if st.Device == nil || st.Device.Admitted != st.Devices[0].Admitted {
		t.Fatalf("device field %+v does not mirror devices[0] %+v", st.Device, st.Devices[0])
	}

	// Single-GPU server: no devices array, and no peer copies in the cache
	// counters.
	_, body = get(t, newTestServer(t), "/statz")
	st = StatsResponse{}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Devices != nil {
		t.Fatalf("single-GPU engine reports a devices array: %+v", st.Devices)
	}
	if st.Cache != nil && st.Cache.PeerCopies != 0 {
		t.Fatalf("single-GPU engine reports peer copies: %+v", st.Cache)
	}
}

func TestSearchTraceParameter(t *testing.T) {
	srv := newTestServer(t)

	// Without trace=1 the plan is omitted.
	rec, body := get(t, srv, "/search?q=quick+fox")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Plan) != 0 {
		t.Fatalf("untraced response carries a plan: %+v", resp.Plan)
	}

	rec, body = get(t, srv, "/search?q=quick+fox&trace=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	resp = SearchResponse{}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Plan) == 0 {
		t.Fatal("trace=1 response has no plan")
	}
	kinds := map[string]bool{}
	for _, op := range resp.Plan {
		kinds[op.Op] = true
		if op.Where == "" {
			t.Errorf("plan op %q missing placement", op.Op)
		}
	}
	for _, want := range []string{"fetch", "intersect", "score", "topk"} {
		if !kinds[want] {
			t.Errorf("plan missing %q operator (got %v)", want, kinds)
		}
	}
}

// The cluster-backed server answers /search with the same documents as
// the single-engine server over the unpartitioned corpus, and a healthy
// query carries no degradation markers.
func TestClusterSearchEndpoint(t *testing.T) {
	single := newTestServer(t)
	srv := newTestClusterServer(t, 2, 1, 0)

	_, wantBody := get(t, single, "/search?q=quick+fox")
	rec, body := get(t, srv, "/search?q=quick+fox")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var want, resp SearchResponse
	if err := json.Unmarshal(wantBody, &want); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Degraded || len(resp.MissingShards) != 0 {
		t.Fatalf("healthy query degraded: %+v", resp)
	}
	if resp.Candidates != want.Candidates || len(resp.Results) != len(want.Results) {
		t.Fatalf("cluster response %+v != single-engine %+v", resp, want)
	}
	for i := range want.Results {
		if resp.Results[i] != want.Results[i] {
			t.Fatalf("result[%d] = %+v != single-engine %+v", i, resp.Results[i], want.Results[i])
		}
	}
	if resp.LatencyMS <= 0 {
		t.Fatal("no simulated latency reported")
	}
}

func TestClusterSearchTraceShards(t *testing.T) {
	srv := newTestClusterServer(t, 2, 1, 0)
	rec, body := get(t, srv, "/search?q=quick+fox&trace=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Shards) != 2 {
		t.Fatalf("trace=1 returned %d shard records, want 2", len(resp.Shards))
	}
	for _, ss := range resp.Shards {
		if ss.TimedOut || ss.Error != "" {
			t.Fatalf("healthy shard marked degraded: %+v", ss)
		}
		if ss.LatencyMS <= 0 {
			t.Fatalf("shard %d reports no latency", ss.Shard)
		}
	}
	if len(resp.Plan) != 0 {
		t.Fatalf("cluster trace carries a single-engine plan: %+v", resp.Plan)
	}
}

func TestClusterSearchTimeoutDegrades(t *testing.T) {
	srv := newTestClusterServer(t, 2, 1, time.Nanosecond)
	rec, body := get(t, srv, "/search?q=quick+fox")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("1ns shard timeout did not degrade the response")
	}
	if len(resp.MissingShards) != 2 {
		t.Fatalf("missing shards %v, want both", resp.MissingShards)
	}
	if len(resp.Results) != 0 {
		t.Fatalf("fully degraded query returned results: %+v", resp.Results)
	}

	_, body = get(t, srv, "/statz")
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Degraded != 1 {
		t.Fatalf("degraded counter %d, want 1", st.Degraded)
	}
}

func TestClusterHealthz(t *testing.T) {
	srv := newTestClusterServer(t, 2, 2, 0)
	rec, body := get(t, srv, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var health map[string]any
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Fatalf("health: %v", health)
	}
	if health["shards"] != float64(2) || health["replicas"] != float64(2) {
		t.Fatalf("topology not reported: %v", health)
	}
	if health["docs"] != float64(4) {
		t.Fatalf("cluster reports %v docs, want the global count 4", health["docs"])
	}
	if health["routing"] == "" || health["mode"] == "" {
		t.Fatalf("routing/mode missing: %v", health)
	}
}

// /statz on a cluster server carries one telemetry row per shard replica
// with device and cache counters, plus the cluster-wide cache aggregate.
func TestClusterStatsTelemetry(t *testing.T) {
	srv := newTestClusterServer(t, 2, 2, 0)
	for i := 0; i < 4; i++ {
		get(t, srv, "/search?q=quick+fox")
	}
	_, body := get(t, srv, "/statz")
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Queries != 4 {
		t.Fatalf("queries %d, want 4", st.Queries)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("%d telemetry rows, want 2 shards x 2 replicas = 4", len(st.Shards))
	}
	var served, admitted, hits, misses int64
	for _, row := range st.Shards {
		served += row.Queries
		if row.Device == nil {
			t.Fatalf("shard %d replica %d: hybrid replica missing device stats", row.Shard, row.Replica)
		}
		admitted += row.Device.Admitted
		if row.Cache == nil {
			t.Fatalf("shard %d replica %d: caching replica missing cache stats", row.Shard, row.Replica)
		}
		hits += row.Cache.Hits
		misses += row.Cache.Misses
	}
	if served != 8 {
		t.Fatalf("replicas served %d sub-queries, want 4 queries x 2 shards = 8", served)
	}
	if admitted == 0 {
		t.Fatal("no replica admitted device work")
	}
	if st.Cache == nil {
		t.Fatal("cluster cache aggregate missing")
	}
	if st.Cache.Hits != hits || st.Cache.Misses != misses {
		t.Fatalf("aggregate cache %+v != sum of rows (hits %d, misses %d)", st.Cache, hits, misses)
	}
	if st.Cache.Misses == 0 {
		t.Fatal("cache counters never moved")
	}
}

// The single-engine /statz surfaces the list-cache counters when caching
// is on and omits them when it is off.
func TestStatsCacheCounters(t *testing.T) {
	ix := testIndex(t)
	e, err := core.New(ix, core.Config{
		Mode: core.Hybrid, Device: gpu.New(hwmodel.DefaultGPU(), 0), CacheLists: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(e)
	get(t, srv, "/search?q=quick+fox")
	get(t, srv, "/search?q=quick+fox")
	_, body := get(t, srv, "/statz")
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache == nil {
		t.Fatal("caching engine reports no cache counters")
	}
	if st.Cache.Misses == 0 {
		t.Fatalf("cache misses never counted: %+v", st.Cache)
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("repeated query did not hit the cache: %+v", st.Cache)
	}

	// The non-caching hybrid server omits the object.
	_, body = get(t, newTestServer(t), "/statz")
	st = StatsResponse{}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache != nil {
		t.Fatalf("non-caching engine reports cache counters: %+v", st.Cache)
	}
}

// newChaosClusterServer builds a cluster server with a caller-supplied
// cluster config (fault plan, breakers, replication) over the tiny test
// corpus.
func newChaosClusterServer(t *testing.T, shards int, cfg cluster.Config) *Server {
	t.Helper()
	ixs, err := workload.PartitionIndex(testIndex(t), shards)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(ixs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return NewCluster(cl)
}

// /healthz must flip to 503 "unhealthy" when a majority of shards have
// every replica's breaker open, and report the per-shard breaker rows.
func TestClusterHealthzUnhealthy503(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Seed: 3, Rules: []fault.Rule{
		{Kind: fault.EngineError, Rate: 1},
	}})
	srv := newChaosClusterServer(t, 2, cluster.Config{
		Engine:   core.Config{Mode: core.CPUOnly},
		TopK:     10,
		Replicas: 1,
		Fault:    inj,
		Breaker:  fault.BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond},
	})

	// Every sub-query fails; three strikes trip each shard's only
	// replica. The searches themselves come back as 500s.
	for i := 0; i < 3; i++ {
		if rec, _ := get(t, srv, "/search?q=quick+fox"); rec.Code != http.StatusInternalServerError {
			t.Fatalf("failing search %d: status %d, want 500", i, rec.Code)
		}
	}

	rec, body := get(t, srv, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d, want 503: %s", rec.Code, body)
	}
	var health struct {
		Status      string            `json:"status"`
		Unreachable int               `json:"unreachable_shards"`
		Shards      []ShardHealthJSON `json:"shard_health"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "unhealthy" || health.Unreachable != 2 {
		t.Fatalf("health = %+v, want unhealthy with 2 unreachable shards", health)
	}
	if len(health.Shards) != 2 {
		t.Fatalf("%d shard rows, want 2", len(health.Shards))
	}
	for _, sh := range health.Shards {
		if sh.Reachable || sh.OpenBreakers != 1 {
			t.Fatalf("shard %d row %+v, want unreachable with 1 open breaker", sh.Shard, sh)
		}
	}

	// /statz reflects the same story: failures and breaker trips.
	_, body = get(t, srv, "/statz")
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.SelfHeal == nil || st.SelfHeal.Failed != 3 || st.SelfHeal.BreakerTrips != 2 {
		t.Fatalf("self-heal snapshot %+v, want 3 failed queries and 2 breaker trips", st.SelfHeal)
	}
	open := 0
	for _, row := range st.Shards {
		if row.Breaker == "open" {
			open++
		}
	}
	if open != 2 {
		t.Fatalf("%d open breakers in /statz rows, want 2", open)
	}
}

// /statz surfaces the self-healing counters, the per-kind fault totals,
// and the capped injected-fault log; per-query traces carry the
// CPU-fallback markers.
func TestClusterStatzChaosSurface(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Seed: 9, Rules: []fault.Rule{
		{Kind: fault.KernelLaunch, Rate: 1}, // every device query falls back to CPU
	}})
	srv := newChaosClusterServer(t, 2, cluster.Config{
		Engine:   core.Config{Mode: core.Hybrid, CacheLists: true},
		TopK:     10,
		Replicas: 1,
		Fault:    inj,
		Breaker:  fault.BreakerConfig{Threshold: -1},
	})

	rec, body := get(t, srv, "/search?q=quick+fox&trace=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Fallbacks == 0 {
		t.Fatalf("response reports no CPU fallbacks: %+v", resp)
	}
	if len(resp.Results) == 0 {
		t.Fatal("fallback query returned no results")
	}
	fellBack := false
	for _, ss := range resp.Shards {
		if ss.FallbackCPU {
			fellBack = true
			if ss.Fault == "" {
				t.Fatalf("fallback shard row missing its fault cause: %+v", ss)
			}
		}
		if ss.EffectiveMS <= 0 {
			t.Fatalf("shard row missing effective latency: %+v", ss)
		}
	}
	if !fellBack {
		t.Fatalf("no shard trace row marked fallback_cpu: %+v", resp.Shards)
	}

	_, body = get(t, srv, "/statz")
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.SelfHeal == nil {
		t.Fatal("cluster /statz missing self_heal")
	}
	if st.SelfHeal.Fallbacks == 0 || st.SelfHeal.InjectedFaults == 0 {
		t.Fatalf("self-heal counters did not move: %+v", st.SelfHeal)
	}
	if st.FaultCounts["kernel-launch"] == 0 {
		t.Fatalf("fault_counts missing kernel-launch: %v", st.FaultCounts)
	}
	if len(st.Faults) == 0 || len(st.Faults) > 100 {
		t.Fatalf("fault log has %d events, want 1..100", len(st.Faults))
	}
	for _, ev := range st.Faults {
		if ev.Site == "" || ev.Kind == "" {
			t.Fatalf("malformed fault event: %+v", ev)
		}
	}

	// A fault-free cluster server omits the whole chaos surface.
	_, body = get(t, newTestClusterServer(t, 2, 1, 0), "/statz")
	st = StatsResponse{}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.FaultCounts != nil || st.Faults != nil {
		t.Fatalf("un-faulted cluster reports fault telemetry: %v %v", st.FaultCounts, st.Faults)
	}
}

// A batching-enabled server surfaces the stage's configuration and
// telemetry in /statz; a batching-off server's output must not mention
// batching at all (the byte-identity guarantee for existing consumers).
func TestStatsBatchingBlock(t *testing.T) {
	ix := testIndex(t)
	mk := func(window time.Duration) *Server {
		e, err := core.New(ix, core.Config{
			Mode:        core.Hybrid,
			Device:      gpu.New(hwmodel.DefaultGPU(), 0),
			BatchWindow: window,
			BatchMax:    4,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		return New(e)
	}

	_, body := get(t, mk(0), "/statz")
	if bytes.Contains(body, []byte("batching")) {
		t.Fatalf("batching-off /statz mentions batching: %s", body)
	}

	srv := mk(250 * time.Microsecond)
	if rec, body := get(t, srv, "/search?q=quick+fox"); rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	_, body = get(t, srv, "/statz")
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Batching == nil {
		t.Fatalf("batching-on /statz has no batching block: %s", body)
	}
	if st.Batching.WindowUS != 250 || st.Batching.Max != 4 {
		t.Fatalf("batching config %+v, want window 250us max 4", st.Batching)
	}
	if st.Batching.Batches == 0 || st.Batching.Members < st.Batching.Batches {
		t.Fatalf("batching counters did not move: %+v", st.Batching)
	}

	// Cluster servers aggregate the block across replicas.
	ixs, err := workload.PartitionIndex(ix, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(ixs, cluster.Config{
		Engine:   core.Config{Mode: core.Hybrid, BatchWindow: 250 * time.Microsecond},
		TopK:     10,
		Replicas: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	csrv := NewCluster(cl)
	if rec, body := get(t, csrv, "/search?q=quick+fox"); rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	_, body = get(t, csrv, "/statz")
	st = StatsResponse{}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Batching == nil || st.Batching.Batches == 0 {
		t.Fatalf("cluster batching block missing or empty: %s", body)
	}
}

// Trace records carry batch membership only when the op actually joined
// a batch: batching-off traces must not mention batch_id (byte identity),
// batching-on traces mark each keyed device op with its batch and 1-based
// ordinal.
func TestSearchTraceBatchFields(t *testing.T) {
	ix := testIndex(t)
	mk := func(window time.Duration) *Server {
		e, err := core.New(ix, core.Config{
			Mode:        core.GPUOnly,
			Device:      gpu.New(hwmodel.DefaultGPU(), 0),
			BatchWindow: window,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		return New(e)
	}

	_, body := get(t, mk(0), "/search?q=quick+fox&trace=1")
	if bytes.Contains(body, []byte("batch_id")) {
		t.Fatalf("batching-off trace mentions batch_id: %s", body)
	}

	_, body = get(t, mk(time.Millisecond), "/search?q=quick+fox&trace=1")
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	batched := 0
	for _, op := range resp.Plan {
		if op.BatchID != 0 {
			batched++
			if op.BatchSize < 1 {
				t.Fatalf("op %q in batch %d has ordinal %d", op.Op, op.BatchID, op.BatchSize)
			}
		}
	}
	if batched == 0 {
		t.Fatalf("batching-on trace has no batch members: %+v", resp.Plan)
	}
}
