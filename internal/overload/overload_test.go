package overload

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestParseClass(t *testing.T) {
	cases := []struct {
		in   string
		want Class
		ok   bool
	}{
		{"", Interactive, true},
		{"interactive", Interactive, true},
		{"batch", Batch, true},
		{"Batch", Interactive, false},
		{"bulk", Interactive, false},
	}
	for _, c := range cases {
		got, ok := ParseClass(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseClass(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
	if Interactive.String() != "interactive" || Batch.String() != "batch" {
		t.Errorf("String: %q %q", Interactive, Batch)
	}
}

func TestIsOverload(t *testing.T) {
	if !IsOverload(fmt.Errorf("shard 3: %w", ErrShed)) {
		t.Error("wrapped ErrShed not recognized")
	}
	if !IsOverload(fmt.Errorf("q: %w", ErrDeadline)) {
		t.Error("wrapped ErrDeadline not recognized")
	}
	if IsOverload(errors.New("boom")) {
		t.Error("ordinary error classified as overload")
	}
}

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !(Config{DefaultDeadline: time.Millisecond}).Enabled() {
		t.Error("deadline-only config reports disabled")
	}
	if !(Config{RetryBudget: 0.1}).Enabled() {
		t.Error("budget-only config reports disabled")
	}
}

func TestBudgetNilGrantsEverything(t *testing.T) {
	var b *Budget
	b.Admit()
	for i := 0; i < 100; i++ {
		if !b.Take() {
			t.Fatal("nil budget denied")
		}
	}
	if b.Stats() != (BudgetStats{}) {
		t.Errorf("nil stats: %+v", b.Stats())
	}
	if NewBudget(0, 5) != nil || NewBudget(-1, 5) != nil {
		t.Error("non-positive ratio must disable the budget")
	}
}

func TestBudgetBoundsRetries(t *testing.T) {
	b := NewBudget(0.1, 2)
	// Starts at burst: two grants, then dry.
	if !b.Take() || !b.Take() {
		t.Fatal("initial burst not granted")
	}
	if b.Take() {
		t.Fatal("granted beyond burst with no admissions")
	}
	// 10 admissions earn exactly one token.
	for i := 0; i < 10; i++ {
		b.Admit()
	}
	if !b.Take() {
		t.Fatal("earned token not granted")
	}
	if b.Take() {
		t.Fatal("granted more than earned")
	}
	st := b.Stats()
	if st.Admissions != 10 || st.Granted != 3 || st.Denied != 2 {
		t.Errorf("stats: %+v", st)
	}
	// The bucket never exceeds burst however many admissions arrive.
	for i := 0; i < 1000; i++ {
		b.Admit()
	}
	grants := 0
	for b.Take() {
		grants++
	}
	if grants != 2 {
		t.Errorf("burst cap violated: %d grants after refill", grants)
	}
}

func TestShedderAdmitsUnderTarget(t *testing.T) {
	s := NewShedder(time.Millisecond, 2*time.Millisecond)
	for i := 0; i < 50; i++ {
		now := time.Duration(i) * time.Millisecond
		if !s.Offer(now, time.Millisecond) {
			t.Fatalf("shed at target age (offer %d)", i)
		}
	}
	if st := s.Stats(); st.Sheds != 0 || st.Offered != 50 {
		t.Errorf("stats: %+v", st)
	}
}

func TestShedderRequiresSustainedOverage(t *testing.T) {
	s := NewShedder(time.Millisecond, 2*time.Millisecond)
	// First overage starts the window but is admitted.
	if !s.Offer(0, 5*time.Millisecond) {
		t.Fatal("first overage shed immediately")
	}
	// Still inside the interval: admitted.
	if !s.Offer(time.Millisecond, 5*time.Millisecond) {
		t.Fatal("shed before interval elapsed")
	}
	// A dip below target resets the window.
	if !s.Offer(1500*time.Microsecond, 500*time.Microsecond) {
		t.Fatal("under-target offer shed")
	}
	if !s.Offer(1600*time.Microsecond, 5*time.Millisecond) {
		t.Fatal("overage after reset shed immediately")
	}
	// Sustained past the interval: shed.
	if s.Offer(4*time.Millisecond, 5*time.Millisecond) {
		t.Fatal("sustained overage admitted")
	}
	st := s.Stats()
	if st.Sheds != 1 || !st.Above || st.LastAge != 5*time.Millisecond {
		t.Errorf("stats: %+v", st)
	}
}

func TestShedderNilAndDisabled(t *testing.T) {
	var s *Shedder
	if !s.Offer(0, time.Hour) {
		t.Error("nil shedder shed")
	}
	if NewShedder(0, time.Second) != nil || NewShedder(-1, 0) != nil {
		t.Error("non-positive target must disable the shedder")
	}
}

func TestBrownoutLadder(t *testing.T) {
	b := NewBrownout(10*time.Millisecond, 20*time.Millisecond, 5*time.Millisecond)
	if lvl := b.Observe(0, 5*time.Millisecond); lvl != 0 {
		t.Fatalf("level under enter: %d", lvl)
	}
	if lvl := b.Observe(time.Millisecond, 12*time.Millisecond); lvl != 1 {
		t.Fatalf("enter not taken: %d", lvl)
	}
	// Escalation is immediate.
	if lvl := b.Observe(2*time.Millisecond, 25*time.Millisecond); lvl != 2 {
		t.Fatalf("escalate not taken: %d", lvl)
	}
	// Pressure drops below half of escalate, but hold not yet elapsed.
	if lvl := b.Observe(3*time.Millisecond, time.Millisecond); lvl != 2 {
		t.Fatalf("stepped down before hold: %d", lvl)
	}
	// Hold elapsed: one step down at a time.
	if lvl := b.Observe(8*time.Millisecond, time.Millisecond); lvl != 1 {
		t.Fatalf("no step-down after hold: %d", lvl)
	}
	if lvl := b.Observe(9*time.Millisecond, time.Millisecond); lvl != 1 {
		t.Fatalf("second step-down skipped hold: %d", lvl)
	}
	if lvl := b.Observe(14*time.Millisecond, time.Millisecond); lvl != 0 {
		t.Fatalf("no return to level 0: %d", lvl)
	}
	// Pressure between exit and enter thresholds: level holds (hysteresis).
	b2 := NewBrownout(10*time.Millisecond, 0, time.Millisecond)
	b2.Observe(0, 15*time.Millisecond)
	if lvl := b2.Observe(10*time.Millisecond, 7*time.Millisecond); lvl != 1 {
		t.Fatalf("flapped below enter but above exit: %d", lvl)
	}
	st := b.Stats()
	if st.Escalations != 2 || st.Level != 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestBrownoutNilAndCounters(t *testing.T) {
	var b *Brownout
	if b.Observe(0, time.Hour) != 0 || b.Level() != 0 {
		t.Error("nil brownout escalated")
	}
	b.NoteBatchShed()
	b.NoteDegraded()
	if b.Stats() != (BrownoutStats{}) {
		t.Errorf("nil stats: %+v", b.Stats())
	}
	real := NewBrownout(time.Millisecond, 0, 0)
	real.NoteBatchShed()
	real.NoteDegraded()
	real.NoteDegraded()
	if st := real.Stats(); st.BatchSheds != 1 || st.Degraded != 2 {
		t.Errorf("counters: %+v", st)
	}
}

func TestBudgetConcurrentAccounting(t *testing.T) {
	b := NewBudget(0.5, 4)
	var wg sync.WaitGroup
	var granted int64
	var mu sync.Mutex
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for j := 0; j < 100; j++ {
				b.Admit()
				if b.Take() {
					local++
				}
			}
			mu.Lock()
			granted += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	st := b.Stats()
	if st.Admissions != 800 {
		t.Errorf("admissions: %d", st.Admissions)
	}
	if st.Granted != granted {
		t.Errorf("granted mismatch: stats %d observed %d", st.Granted, granted)
	}
	// Grants can never exceed burst + earned tokens.
	if max := int64(4 + 800/2); granted > max {
		t.Errorf("granted %d exceeds budget bound %d", granted, max)
	}
}
