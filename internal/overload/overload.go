// Package overload is the cluster's overload-control toolkit: the
// pieces that keep a saturated system answering *some* queries well
// instead of answering every query late.
//
// Four mechanisms compose (each independently optional, zero value =
// off, so a cluster configured without them behaves byte-identically to
// one built before this package existed):
//
//   - deadline budgets: a per-query deadline enters at the server and
//     propagates as a shrinking budget — shard sub-deadline, then device
//     admission, where an op whose estimated completion already exceeds
//     the remaining budget is rejected early instead of queued to die;
//   - CoDel-style admission shedding (Shedder, Gate): a bounded queue
//     sheds work only when the oldest waiter's age has exceeded a target
//     for a full interval — transient bursts ride through, sustained
//     overload sheds;
//   - retry/hedge token budgets (Budget): self-healing retries and
//     hedges spend tokens earned by admissions, so the recovery layer
//     cannot amplify an overload into a retry storm (metastable failure);
//   - brownout tiers (Brownout): a pressure signal first sheds
//     batch-class traffic, then degrades interactive queries (reduced
//     top-k, CPU-only plans) before ever refusing them.
//
// Everything except Gate runs on the cluster's modeled clock
// (time.Duration positions supplied by the caller), so overload behavior
// under a seeded workload is as deterministic as the workload itself.
// Gate guards the HTTP server's wall-clock admission queue.
package overload

import (
	"errors"
	"sync"
	"time"
)

// ErrShed is wrapped by every admission-control rejection: a query (or
// sub-query) refused to protect the system rather than failed by it.
// Servers map it to 503; load drivers count it as shed, not errored.
var ErrShed = errors.New("overload: shed")

// ErrDeadline is wrapped when a query's deadline budget cannot be met —
// infeasibly small against the merge reserve, or already exhausted.
var ErrDeadline = errors.New("overload: deadline budget exhausted")

// IsOverload reports whether err is an overload-control rejection
// (shed or deadline) rather than an execution failure.
func IsOverload(err error) bool {
	return errors.Is(err, ErrShed) || errors.Is(err, ErrDeadline)
}

// Class is a query's criticality class. Brownout sheds Batch traffic
// before it degrades Interactive traffic.
type Class int

const (
	// Interactive is the latency-sensitive default: shed last, degraded
	// (reduced top-k, CPU-only plan) before being refused.
	Interactive Class = iota
	// Batch is throughput traffic: the first tier shed under pressure.
	Batch
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == Batch {
		return "batch"
	}
	return "interactive"
}

// ParseClass maps the wire names ("interactive", "batch") to a Class.
func ParseClass(s string) (Class, bool) {
	switch s {
	case "", "interactive":
		return Interactive, true
	case "batch":
		return Batch, true
	}
	return Interactive, false
}

// Config parameterizes the cluster's overload controls. The zero value
// disables every mechanism: no deadline, unbounded admission, unbudgeted
// retries/hedges, no brownout — the pre-overload cluster bit for bit.
type Config struct {
	// DefaultDeadline is the per-query deadline budget applied when a
	// query carries none (0 = no deadline).
	DefaultDeadline time.Duration
	// MergeReserve is subtracted from the remaining budget to form each
	// shard's sub-deadline, reserving time for the gather-side merge
	// (0 = auto: the priced cost of merging a full shards x top-k
	// candidate set under the cluster's CPU model).
	MergeReserve time.Duration
	// ShedTarget enables CoDel-style per-replica admission shedding: a
	// sub-query offered to a replica whose admission backlog has exceeded
	// ShedTarget continuously for ShedInterval is shed instead of queued
	// (0 = no shedding). ShedInterval 0 selects 2x ShedTarget.
	ShedTarget   time.Duration
	ShedInterval time.Duration
	// RetryBudget gates sibling retries and hedges with a token bucket:
	// each admitted sub-query earns RetryBudget tokens and each retry or
	// hedge spends one, so self-healing actions are bounded by that
	// fraction of recent admissions (e.g. 0.1 = at most ~10%). Zero
	// disables the budget (unbudgeted, pre-overload behavior).
	// RetryBurst caps the bucket (0 = DefaultRetryBurst), which is also
	// the bucket's starting balance — fault-path behavior at low load is
	// unchanged until the burst is spent faster than it refills.
	RetryBudget float64
	RetryBurst  float64
	// BrownoutEnter enables brownout tiers: level 1 (shed batch-class
	// queries, skip hedges) when the cluster pressure signal — the
	// slowest shard's best-replica backlog — exceeds BrownoutEnter, and
	// level 2 (degrade interactive queries: reduced top-k, CPU-only
	// plans) when it exceeds BrownoutEscalate (0 = 2x Enter). Levels step
	// back down one at a time after BrownoutHold of modeled time below
	// half the level's entry threshold (0 = Enter). Zero Enter disables
	// brownout entirely.
	BrownoutEnter    time.Duration
	BrownoutEscalate time.Duration
	BrownoutHold     time.Duration
	// DegradedTopK is the reduced result count level 2 serves interactive
	// queries at (0 = half the configured top-k, floor 1).
	DegradedTopK int
}

// Enabled reports whether any overload control is configured.
func (c Config) Enabled() bool { return c != (Config{}) }

// DefaultRetryBurst is the token bucket's cap (and starting balance)
// when Config.RetryBurst is zero.
const DefaultRetryBurst = 10.0

// Budget is a token bucket bounding self-healing amplification: each
// admission earns a fractional token, each retry or hedge spends a whole
// one. A nil *Budget is the unbudgeted pre-overload behavior (Take
// always grants). Safe for concurrent use.
type Budget struct {
	ratio float64
	burst float64

	mu      sync.Mutex
	tokens  float64
	earned  int64
	granted int64
	denied  int64
}

// NewBudget builds a bucket earning ratio tokens per admission, capped
// at burst (0 = DefaultRetryBurst). The bucket starts full, so sparse
// low-load retries are never denied. ratio <= 0 returns nil (disabled).
func NewBudget(ratio, burst float64) *Budget {
	if ratio <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = DefaultRetryBurst
	}
	return &Budget{ratio: ratio, burst: burst, tokens: burst}
}

// Admit credits one admission's worth of tokens.
func (b *Budget) Admit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.earned++
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// Take spends one token, reporting whether the retry/hedge may proceed.
func (b *Budget) Take() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Epsilon absorbs float accumulation (10 x 0.1 sums just under 1).
	if b.tokens < 1-1e-9 {
		b.denied++
		return false
	}
	b.tokens--
	b.granted++
	return true
}

// BudgetStats is a bucket's counter snapshot.
type BudgetStats struct {
	// Admissions is the number of token-earning admissions; Granted and
	// Denied count retry/hedge requests by outcome.
	Admissions int64
	Granted    int64
	Denied     int64
	// Tokens is the current balance.
	Tokens float64
}

// Stats snapshots the bucket (zero value for a nil bucket).
func (b *Budget) Stats() BudgetStats {
	if b == nil {
		return BudgetStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BudgetStats{Admissions: b.earned, Granted: b.granted, Denied: b.denied, Tokens: b.tokens}
}

// Add accumulates other into s.
func (s *BudgetStats) Add(other BudgetStats) {
	s.Admissions += other.Admissions
	s.Granted += other.Granted
	s.Denied += other.Denied
	s.Tokens += other.Tokens
}

// Shedder is a CoDel-style admission rule over the modeled clock: offers
// are admitted while the queue age (the backlog a new waiter would face)
// is at or under the target, and while overage is younger than a full
// interval — a transient burst rides through, sustained overload sheds.
// A nil *Shedder admits everything. Safe for concurrent use.
type Shedder struct {
	target   time.Duration
	interval time.Duration

	mu         sync.Mutex
	aboveSince time.Duration
	above      bool
	offered    int64
	sheds      int64
	lastAge    time.Duration
}

// NewShedder builds a shedder with the given target age and sustain
// interval (interval 0 = 2x target). target <= 0 returns nil (disabled).
func NewShedder(target, interval time.Duration) *Shedder {
	if target <= 0 {
		return nil
	}
	if interval <= 0 {
		interval = 2 * target
	}
	return &Shedder{target: target, interval: interval}
}

// Offer reports whether a request arriving at modeled time now, facing a
// queue age of age, is admitted (true) or shed (false).
func (s *Shedder) Offer(now, age time.Duration) bool {
	if s == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.offered++
	s.lastAge = age
	if age <= s.target {
		s.above = false
		return true
	}
	if !s.above {
		s.above = true
		s.aboveSince = now
		return true
	}
	if now-s.aboveSince < s.interval {
		return true
	}
	s.sheds++
	return false
}

// ShedStats is a shedder's counter snapshot.
type ShedStats struct {
	// Offered and Sheds count admission offers and refusals; LastAge is
	// the queue age the most recent offer saw, and Above reports the
	// shedder is currently inside a sustained-overage window.
	Offered int64
	Sheds   int64
	LastAge time.Duration
	Above   bool
}

// Stats snapshots the shedder (zero value for a nil shedder).
func (s *Shedder) Stats() ShedStats {
	if s == nil {
		return ShedStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShedStats{Offered: s.offered, Sheds: s.sheds, LastAge: s.lastAge, Above: s.above}
}

// Brownout is the graceful-degradation ladder over the modeled clock.
// Level 0 is normal service; level 1 sheds batch-class traffic and
// skips hedges; level 2 additionally degrades interactive queries
// (reduced top-k, CPU-only plans). Levels step up immediately when the
// pressure signal crosses a threshold and step down one at a time after
// a hold below half the level's entry threshold (hysteresis, so the
// ladder does not flap at the boundary). A nil *Brownout stays at level
// 0. Safe for concurrent use.
type Brownout struct {
	enter    time.Duration
	escalate time.Duration
	hold     time.Duration

	mu          sync.Mutex
	level       int
	since       time.Duration
	escalations int64
	batchSheds  int64
	degraded    int64
}

// NewBrownout builds a controller entering level 1 at enter, level 2 at
// escalate (0 = 2x enter), stepping down after hold (0 = enter) of
// modeled time below half the level's entry threshold. enter <= 0
// returns nil (disabled).
func NewBrownout(enter, escalate, hold time.Duration) *Brownout {
	if enter <= 0 {
		return nil
	}
	if escalate <= 0 {
		escalate = 2 * enter
	}
	if hold <= 0 {
		hold = enter
	}
	return &Brownout{enter: enter, escalate: escalate, hold: hold}
}

// Observe feeds one pressure sample at modeled time now and returns the
// (possibly updated) brownout level.
func (b *Brownout) Observe(now, pressure time.Duration) int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	desired := 0
	switch {
	case pressure >= b.escalate:
		desired = 2
	case pressure >= b.enter:
		desired = 1
	}
	switch {
	case desired > b.level:
		b.escalations += int64(desired - b.level)
		b.level = desired
		b.since = now
	case desired < b.level && now-b.since >= b.hold && pressure < b.exitThreshold():
		b.level--
		b.since = now
	}
	return b.level
}

// exitThreshold is the pressure below which the current level may step
// down: half its entry threshold. Caller holds b.mu.
func (b *Brownout) exitThreshold() time.Duration {
	if b.level >= 2 {
		return b.escalate / 2
	}
	return b.enter / 2
}

// Level returns the current brownout level without feeding a sample.
func (b *Brownout) Level() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.level
}

// NoteBatchShed counts one batch-class query shed by the ladder.
func (b *Brownout) NoteBatchShed() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.batchSheds++
	b.mu.Unlock()
}

// NoteDegraded counts one interactive query served degraded.
func (b *Brownout) NoteDegraded() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.degraded++
	b.mu.Unlock()
}

// BrownoutStats is the ladder's counter snapshot.
type BrownoutStats struct {
	// Level is the current position; Escalations counts upward steps.
	Level       int
	Escalations int64
	// BatchSheds counts batch queries shed at level >= 1; Degraded counts
	// interactive queries served degraded at level 2.
	BatchSheds int64
	Degraded   int64
}

// Stats snapshots the ladder (zero value for a nil controller).
func (b *Brownout) Stats() BrownoutStats {
	if b == nil {
		return BrownoutStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BrownoutStats{Level: b.level, Escalations: b.escalations, BatchSheds: b.batchSheds, Degraded: b.degraded}
}
