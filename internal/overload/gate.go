package overload

import (
	"context"
	"sync"
	"time"
)

// Gate bounds the HTTP server's in-flight query count with a FIFO
// waiter queue and a CoDel-style shed rule on wall-clock wait: requests
// beyond MaxInflight wait their turn, and once the oldest waiter's age
// has exceeded the target continuously for a full interval, new
// arrivals are shed instead of queued. A nil *Gate admits everything
// immediately. Safe for concurrent use.
type Gate struct {
	max      int
	target   time.Duration
	interval time.Duration
	now      func() time.Time

	mu         sync.Mutex
	inflight   int
	waiters    []*waiter
	above      bool
	aboveSince time.Time
	admitted   int64
	sheds      int64
}

type waiter struct {
	ready chan struct{}
	since time.Time
}

// DefaultGateTarget is the queue-age shed target when GateConfig leaves
// it zero; the sustain interval defaults to twice the target.
const DefaultGateTarget = 100 * time.Millisecond

// NewGate builds a gate admitting at most max concurrent queries, with
// a CoDel shed rule at target/interval (0 = DefaultGateTarget, 2x
// target). max <= 0 returns nil (unbounded, disabled).
func NewGate(max int, target, interval time.Duration) *Gate {
	if max <= 0 {
		return nil
	}
	if target <= 0 {
		target = DefaultGateTarget
	}
	if interval <= 0 {
		interval = 2 * target
	}
	return &Gate{max: max, target: target, interval: interval, now: time.Now}
}

// Enter blocks until a slot is free, the context is done, or the shed
// rule fires. It returns nil on admission (pair with Leave), ErrShed on
// shed, or the context's error. A nil gate admits immediately.
func (g *Gate) Enter(ctx context.Context) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	now := g.now()
	if g.inflight < g.max && len(g.waiters) == 0 {
		g.inflight++
		g.admitted++
		g.above = false
		g.mu.Unlock()
		return nil
	}
	// Queue is non-empty (or full): apply the CoDel rule to the oldest
	// waiter's age before joining.
	age := time.Duration(0)
	if len(g.waiters) > 0 {
		age = now.Sub(g.waiters[0].since)
	}
	if age > g.target {
		if !g.above {
			g.above = true
			g.aboveSince = now
		} else if now.Sub(g.aboveSince) >= g.interval {
			g.sheds++
			g.mu.Unlock()
			return ErrShed
		}
	} else {
		g.above = false
	}
	w := &waiter{ready: make(chan struct{}), since: now}
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		// Either remove ourselves from the queue, or — if Leave already
		// handed us the slot — pass it on.
		select {
		case <-w.ready:
			g.leaveLocked()
			g.mu.Unlock()
			return ctx.Err()
		default:
		}
		for i, q := range g.waiters {
			if q == w {
				g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
				break
			}
		}
		g.mu.Unlock()
		return ctx.Err()
	}
}

// Leave releases a slot obtained by a successful Enter, handing it to
// the queue head if any.
func (g *Gate) Leave() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.leaveLocked()
	g.mu.Unlock()
}

// leaveLocked frees one slot; caller holds g.mu.
func (g *Gate) leaveLocked() {
	g.inflight--
	if len(g.waiters) > 0 && g.inflight < g.max {
		w := g.waiters[0]
		g.waiters = g.waiters[1:]
		g.inflight++
		g.admitted++
		close(w.ready)
	}
}

// GateStats is the gate's snapshot for /statz.
type GateStats struct {
	// MaxInflight is the configured bound; Inflight and QueueDepth are
	// current occupancy; OldestWait is the head waiter's age.
	MaxInflight int
	Inflight    int
	QueueDepth  int
	OldestWait  time.Duration
	// Admitted and Sheds count gate outcomes since start.
	Admitted int64
	Sheds    int64
}

// Stats snapshots the gate (zero value for a nil gate).
func (g *Gate) Stats() GateStats {
	if g == nil {
		return GateStats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := GateStats{
		MaxInflight: g.max,
		Inflight:    g.inflight,
		QueueDepth:  len(g.waiters),
		Admitted:    g.admitted,
		Sheds:       g.sheds,
	}
	if len(g.waiters) > 0 {
		st.OldestWait = g.now().Sub(g.waiters[0].since)
	}
	return st
}
