package overload

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock lets gate tests drive wall time deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestGateNilAndDisabled(t *testing.T) {
	var g *Gate
	if err := g.Enter(context.Background()); err != nil {
		t.Fatalf("nil gate: %v", err)
	}
	g.Leave()
	if g.Stats() != (GateStats{}) {
		t.Errorf("nil stats: %+v", g.Stats())
	}
	if NewGate(0, 0, 0) != nil || NewGate(-3, 0, 0) != nil {
		t.Error("non-positive max must disable the gate")
	}
}

func TestGateAdmitsUpToMax(t *testing.T) {
	g := NewGate(3, time.Second, 2*time.Second)
	for i := 0; i < 3; i++ {
		if err := g.Enter(context.Background()); err != nil {
			t.Fatalf("enter %d: %v", i, err)
		}
	}
	st := g.Stats()
	if st.Inflight != 3 || st.QueueDepth != 0 || st.Admitted != 3 {
		t.Errorf("stats: %+v", st)
	}
	g.Leave()
	if err := g.Enter(context.Background()); err != nil {
		t.Fatalf("enter after leave: %v", err)
	}
}

func TestGateQueuesAndHandsOff(t *testing.T) {
	g := NewGate(1, time.Hour, time.Hour)
	if err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- g.Enter(context.Background()) }()
	// Wait for the waiter to register, then release.
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	g.Leave()
	if err := <-got; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	if st := g.Stats(); st.Inflight != 1 || st.QueueDepth != 0 || st.Admitted != 2 {
		t.Errorf("stats: %+v", st)
	}
}

func TestGateContextCancelRemovesWaiter(t *testing.T) {
	g := NewGate(1, time.Hour, time.Hour)
	if err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- g.Enter(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-got; err != context.Canceled {
		t.Fatalf("cancelled waiter: %v", err)
	}
	if st := g.Stats(); st.QueueDepth != 0 {
		t.Errorf("waiter leaked: %+v", st)
	}
	// The slot is still held by the first entrant and usable after Leave.
	g.Leave()
	if err := g.Enter(context.Background()); err != nil {
		t.Fatalf("enter after cancel+leave: %v", err)
	}
}

func TestGateShedsOnSustainedQueueAge(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	g := NewGate(1, 10*time.Millisecond, 20*time.Millisecond)
	g.now = clk.now
	if err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	// One waiter queues; its age will exceed the target.
	queued := make(chan error, 1)
	go func() { queued <- g.Enter(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Age 15ms > target: first overage observation starts the window but
	// the arrival still queues (cancel it immediately to keep the test
	// single-threaded).
	clk.advance(15 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.Enter(ctx); err != context.Canceled {
		t.Fatalf("first overage arrival: %v", err)
	}
	// Still above target but inside the interval: queued, not shed.
	clk.advance(10 * time.Millisecond)
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := g.Enter(ctx2); err != context.Canceled {
		t.Fatalf("inside-interval arrival: %v", err)
	}
	// Past the interval: shed.
	clk.advance(15 * time.Millisecond)
	if err := g.Enter(context.Background()); err != ErrShed {
		t.Fatalf("sustained overage arrival: %v", err)
	}
	if st := g.Stats(); st.Sheds != 1 {
		t.Errorf("stats: %+v", st)
	}

	// Draining resets: release the slot, the waiter runs, new arrivals
	// are admitted again.
	g.Leave()
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	g.Leave()
	if err := g.Enter(context.Background()); err != nil {
		t.Fatalf("post-drain arrival: %v", err)
	}
}

func TestGateConcurrentChurn(t *testing.T) {
	g := NewGate(4, time.Hour, time.Hour)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := g.Enter(context.Background()); err != nil {
					t.Errorf("enter: %v", err)
					return
				}
				g.Leave()
			}
		}()
	}
	wg.Wait()
	st := g.Stats()
	if st.Inflight != 0 || st.QueueDepth != 0 {
		t.Errorf("stats after drain: %+v", st)
	}
	if st.Admitted != 32*50 {
		t.Errorf("admitted: %d", st.Admitted)
	}
}
