package ingest

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"griffin/internal/cluster"
	"griffin/internal/core"
	"griffin/internal/fault"
	"griffin/internal/index"
	"griffin/internal/workload"
)

// applyCluster replays one mutation into both the live cluster and the
// logical corpus.
func applyCluster(t testing.TB, c *Cluster, lc *logicalCorpus, m mutation) {
	t.Helper()
	var err error
	switch m.kind {
	case mutAdd:
		err = c.Add(m.docID, m.tokens)
		lc.docs[m.docID] = m.tokens
	case mutUpdate:
		err = c.Update(m.docID, m.tokens)
		lc.docs[m.docID] = m.tokens
	case mutDelete:
		err = c.Delete(m.docID)
		delete(lc.docs, m.docID)
	}
	if err != nil {
		t.Fatalf("mutation %+v: %v", m, err)
	}
}

func clusterBits(r *ClusterResult) []docBits {
	out := make([]docBits, len(r.Docs))
	for i, d := range r.Docs {
		out[i] = docBits{DocID: d.DocID, Bits: math.Float32bits(d.Score)}
	}
	return out
}

// checkClusterParity asserts the live cluster's ranked results are
// bit-identical to a freshly built single engine over the same logical
// corpus — the scatter-gather merge reproduces the single-engine top-k
// whenever per-shard scores carry global statistics, live or stamped.
func checkClusterParity(t *testing.T, c *Cluster, lc *logicalCorpus, queries [][]string, tag string) {
	t.Helper()
	fresh, err := core.New(lc.build(t, index.CodecEF), core.Config{Mode: core.CPUOnly})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		cr, err := c.Search(q)
		if err != nil {
			t.Fatalf("%s q%d cluster: %v", tag, qi, err)
		}
		fr, err := fresh.Search(q)
		if err != nil {
			t.Fatalf("%s q%d fresh: %v", tag, qi, err)
		}
		fb := bitsOf(fr)
		if k := 10; len(fb) > k { // cluster TopK default
			fb = fb[:k]
		}
		if cb := clusterBits(cr); !sameDocs(cb, fb) {
			t.Errorf("%s q%d %v: docs diverge\ncluster=%v\n  fresh=%v", tag, qi, q, cb, fb)
		}
	}
}

func TestClusterLiveParity(t *testing.T) {
	const vocab = 16
	base := seedCorpus(21, 150, vocab)
	script := genScript(22, base.clone(), 80, vocab)
	script = append(script, mutation{
		kind: mutUpdate, docID: 9_000, tokens: []string{"fresh-term", word(0), word(0), word(1)},
	})

	modes := map[string]core.Config{
		"cpu":    {Mode: core.CPUOnly},
		"hybrid": {Mode: core.Hybrid},
	}
	for name, ecfg := range modes {
		t.Run(name, func(t *testing.T) {
			lc := base.clone()
			c, err := NewCluster(lc.build(t, index.CodecEF), ClusterConfig{
				Shards:  2,
				Cluster: cluster.Config{Engine: ecfg},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			queries := queryLog(vocab)
			checkClusterParity(t, c, lc, queries, "seed")
			for i, m := range script {
				applyCluster(t, c, lc, m)
				if (i+1)%20 == 0 || i == len(script)-1 {
					checkClusterParity(t, c, lc, queries, fmt.Sprintf("step%d", i+1))
				}
				if i == len(script)/2 {
					// Mid-life per-shard merges: segments swap under
					// traffic, stats stamps go best-effort, parity holds.
					for s := 0; s < 2; s++ {
						if err := c.MergeShard(s); err != nil {
							t.Fatalf("merge shard %d: %v", s, err)
						}
					}
					checkClusterParity(t, c, lc, queries, "post-merge")
				}
			}
			if got, want := c.Gen(), uint64(len(script)); got != want {
				t.Errorf("gen = %d, want %d", got, want)
			}
			st := c.Stats()
			if st.Adds+st.Updates+st.Deletes != int64(len(script)) {
				t.Errorf("mutation counters %d+%d+%d != %d", st.Adds, st.Updates, st.Deletes, len(script))
			}
			if st.Merges != 2 {
				t.Errorf("merges = %d, want 2", st.Merges)
			}
			if st.Shards != 2 || len(st.ShardDocs) != 2 {
				t.Errorf("shards = %d (docs %v), want 2", st.Shards, st.ShardDocs)
			}
		})
	}
}

// TestClusterQuiescedGoldenParity: after mutations and a Quiesce
// (rebuild), the live cluster must be indistinguishable from a cluster
// freshly built over the partitioned live corpus — documents, scores,
// per-shard latencies, and scatter-gather stats alike.
func TestClusterQuiescedGoldenParity(t *testing.T) {
	const vocab = 16
	lc := seedCorpus(31, 150, vocab)
	script := genScript(32, lc.clone(), 60, vocab)

	ccfg := cluster.Config{Engine: core.Config{Mode: core.Hybrid}}
	live, err := NewCluster(lc.build(t, index.CodecBoth), ClusterConfig{
		Shards: 2, Cluster: ccfg, Codec: CodecAuto,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	queries := queryLog(vocab)
	for i, m := range script {
		applyCluster(t, live, lc, m)
		if i%17 == 0 { // keep read traffic flowing while mutating
			if _, err := live.Search(queries[i%len(queries)]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := live.Quiesce(); err != nil {
		t.Fatal(err)
	}
	st := live.Stats()
	if st.DeltaDocs != 0 {
		t.Fatalf("quiesced delta docs = %d, want 0", st.DeltaDocs)
	}
	if st.Rebuilds != 1 {
		t.Errorf("rebuilds = %d, want 1", st.Rebuilds)
	}

	ixs, err := workload.PartitionIndex(lc.build(t, index.CodecBoth), 2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cluster.New(ixs, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	for qi, q := range queries {
		lr, err := live.Search(q)
		if err != nil {
			t.Fatalf("q%d live: %v", qi, err)
		}
		rr, err := ref.Search(nil, q)
		if err != nil {
			t.Fatalf("q%d ref: %v", qi, err)
		}
		if got, want := clusterGolden(lr.Result), clusterGolden(rr); got != want {
			t.Errorf("q%d %v diverges\n live=%s\nfresh=%s", qi, q, got, want)
		}
	}
}

// clusterGolden renders the comparison-relevant portion of a cluster
// result: ranked docs (bit-exact scores) plus the scatter-gather timing
// and each shard's execution record.
func clusterGolden(r *cluster.Result) string {
	s := fmt.Sprintf("docs=%v lat=%v max=%v merge=%v",
		docBitsOf(r), r.Stats.Latency, r.Stats.MaxShard, r.Stats.MergeTime)
	for _, sh := range r.Stats.Shards {
		s += fmt.Sprintf(" [s%dr%d eff=%v cand=%d cpu=%v gpu=%v wait=%v mig=%v lat=%v]",
			sh.Shard, sh.Replica, sh.Effective, sh.Query.Candidates,
			sh.Query.CPUTime, sh.Query.GPUTime, sh.Query.GPUWait, sh.Query.Migrated, sh.Query.Latency)
	}
	return s
}

func docBitsOf(r *cluster.Result) []docBits {
	out := make([]docBits, len(r.Docs))
	for i, d := range r.Docs {
		out[i] = docBits{DocID: d.DocID, Bits: math.Float32bits(d.Score)}
	}
	return out
}

// TestClusterSplit: crossing the shard-size watermark triggers a
// background split that re-partitions the corpus into one more shard,
// with routing updated for queries and mutations mid-flight.
func TestClusterSplit(t *testing.T) {
	const vocab = 16
	lc := seedCorpus(41, 60, vocab)
	c, err := NewCluster(lc.build(t, index.CodecEF), ClusterConfig{
		Shards:         2,
		Cluster:        cluster.Config{Engine: core.Config{Mode: core.CPUOnly}},
		SplitWatermark: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Explicit split first: 2 → 3 shards, parity preserved.
	if err := c.Split(); err != nil {
		t.Fatal(err)
	}
	if got := c.Shards(); got != 3 {
		t.Fatalf("shards after explicit split = %d, want 3", got)
	}
	queries := queryLog(vocab)
	checkClusterParity(t, c, lc, queries, "explicit-split")

	// Now push one shard past the watermark (docIDs ≡ 0 mod 3 land on
	// shard 0) and keep mutating until the background split lands.
	next := uint32(10_000) // ShardOf(10000+3k, 3) == (10000+3k)%3
	for added := 0; added < 90; added++ {
		id := next
		next += 3
		m := mutation{kind: mutAdd, docID: id, tokens: genDoc(rand.New(rand.NewSource(int64(added))), vocab)}
		applyCluster(t, c, lc, m)
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.Shards() == 3 {
		if time.Now().After(deadline) {
			st := c.Stats()
			t.Fatalf("watermark split never fired: shards=%d docs=%v", st.Shards, st.ShardDocs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Shards(); got != 4 {
		t.Fatalf("shards after watermark split = %d, want 4", got)
	}
	st := c.Stats()
	if st.Splits < 1 {
		t.Errorf("splits = %d, want >= 1", st.Splits)
	}
	checkClusterParity(t, c, lc, queries, "watermark-split")

	// Routing after the split: mutations to fresh docIDs land on the new
	// topology and stay queryable.
	m := mutation{kind: mutAdd, docID: 50_000, tokens: []string{"fresh-term", word(0), word(1)}}
	applyCluster(t, c, lc, m)
	checkClusterParity(t, c, lc, queries, "post-split-ingest")
}

// TestClusterMergeAbort: injected engine faults on a shard's merge path
// abort the attempt without tearing the published snapshot; the merge
// retries into success and parity holds throughout.
func TestClusterMergeAbort(t *testing.T) {
	const vocab = 16
	lc := seedCorpus(51, 80, vocab)
	inj := fault.NewInjector(fault.Plan{
		Seed:  7,
		Rules: []fault.Rule{{Kind: fault.EngineError, Rate: 1, Until: 2}},
	})
	c, err := NewCluster(lc.build(t, index.CodecEF), ClusterConfig{
		Shards:  2,
		Cluster: cluster.Config{Engine: core.Config{Mode: core.CPUOnly}, Fault: inj},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	script := genScript(52, lc.clone(), 20, vocab)
	for _, m := range script {
		applyCluster(t, c, lc, m)
	}
	for s := 0; s < 2; s++ {
		if err := c.MergeShard(s); err != nil {
			t.Fatalf("merge shard %d: %v", s, err)
		}
	}
	st := c.Stats()
	if st.Aborts != 4 { // 2 injected aborts per shard site before the rule expires
		t.Errorf("aborts = %d, want 4", st.Aborts)
	}
	if st.Merges < 1 || st.DeltaDocs != 0 {
		t.Errorf("merges = %d deltaDocs = %d, want merged clean", st.Merges, st.DeltaDocs)
	}
	// The same engine-error rule covers the serving sites: burn its two
	// per-site opportunities with throwaway queries, then require parity.
	for i := 0; i < 2; i++ {
		_, _ = c.Search([]string{word(0)})
	}
	checkClusterParity(t, c, lc, queryLog(vocab), "post-abort")
}

// TestClusterConcurrentSnapshotIsolation: concurrent mutations, shard
// merges, a split, and readers — every result must be bit-identical to a
// quiesced corpus at the generation its snapshot reports, and observed
// generations must be monotone per reader.
func TestClusterConcurrentSnapshotIsolation(t *testing.T) {
	const vocab = 12
	base := seedCorpus(61, 40, vocab)
	script := genScript(62, base.clone(), 30, vocab)
	queries := [][]string{{word(0)}, {word(0), word(1)}, {word(1), word(2)}}

	// expected[g][q] is the fresh-build result after the first g mutations.
	expected := make([][][]docBits, len(script)+1)
	{
		lc := base.clone()
		for g := 0; g <= len(script); g++ {
			if g > 0 {
				m := script[g-1]
				if m.kind == mutDelete {
					delete(lc.docs, m.docID)
				} else {
					lc.docs[m.docID] = m.tokens
				}
			}
			eng, err := core.New(lc.build(t, index.CodecEF), core.Config{Mode: core.CPUOnly})
			if err != nil {
				t.Fatal(err)
			}
			expected[g] = make([][]docBits, len(queries))
			for qi, q := range queries {
				r, err := eng.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				b := bitsOf(r)
				if len(b) > 10 {
					b = b[:10]
				}
				expected[g][qi] = b
			}
		}
	}

	c, err := NewCluster(base.build(t, index.CodecEF), ClusterConfig{
		Shards:         2,
		Cluster:        cluster.Config{Engine: core.Config{Mode: core.CPUOnly}},
		MergeThreshold: 8,
		AutoMerge:      true,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer: script + explicit merges + one mid-life split
		defer wg.Done()
		defer close(stop)
		for i, m := range script {
			var err error
			switch m.kind {
			case mutAdd:
				err = c.Add(m.docID, m.tokens)
			case mutUpdate:
				err = c.Update(m.docID, m.tokens)
			case mutDelete:
				err = c.Delete(m.docID)
			}
			if err != nil {
				t.Errorf("writer step %d: %v", i, err)
				return
			}
			if (i+1)%12 == 0 {
				if err := c.MergeShard(i % 2); err != nil {
					t.Errorf("writer merge: %v", err)
				}
			}
			if i == len(script)/2 {
				if err := c.Split(); err != nil {
					t.Errorf("writer split: %v", err)
				}
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastGen uint64
			qi := r % len(queries)
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := c.Search(queries[qi])
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if res.Gen < lastGen {
					t.Errorf("reader %d: gen went backwards %d -> %d", r, lastGen, res.Gen)
					return
				}
				lastGen = res.Gen
				if res.Gen > uint64(len(script)) {
					t.Errorf("reader %d: gen %d beyond script", r, res.Gen)
					return
				}
				if got, want := clusterBits(res), expected[res.Gen][qi]; !sameDocs(got, want) {
					t.Errorf("reader %d gen %d q%d: docs diverge\n got=%v\nwant=%v", r, res.Gen, qi, got, want)
					return
				}
				qi = (qi + 1) % len(queries)
			}
		}(r)
	}
	wg.Wait()

	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	final, err := c.Search(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if got, want := clusterBits(final), expected[len(script)][0]; !sameDocs(got, want) {
		t.Errorf("final quiesced: docs diverge\n got=%v\nwant=%v", got, want)
	}
	c.Close()
	if _, err := c.Search(queries[0]); err != ErrClosed {
		t.Errorf("search after close = %v, want ErrClosed", err)
	}
	if err := c.Add(99_999, []string{"x"}); err != ErrClosed {
		t.Errorf("add after close = %v, want ErrClosed", err)
	}
}
