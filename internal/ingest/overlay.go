package ingest

import (
	"griffin/internal/exec"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/kernels"
	"griffin/internal/rank"
)

// queryOverlay is the per-query bridge between a pinned snapshot and the
// executor: it is both the exec.DeltaView reconciling the main-segment
// intersection with the delta, and the exec.CandidateScorer evaluating
// BM25 against the snapshot's *live* collection statistics. One instance
// serves exactly one query (the executor calls Reconcile before
// ScoreCandidates, and the overlay carries the query's resolved terms
// between the two), so it needs no locking of its own.
type queryOverlay struct {
	view   *View
	main   *index.Index
	scorer *rank.Scorer // bound to the snapshot's live NumDocs/AvgDocLen
	// globalDF, when non-nil, overrides per-term document frequencies
	// with collection-wide sums (a partitioned shard's overlay: local
	// structure, global statistics — the live analogue of GlobalN).
	globalDF map[string]int

	// Resolved by Reconcile, consumed by ScoreCandidates.
	terms []string
	dfs   []int
	lists []*index.PostingList
}

// statScorer builds a BM25 scorer over explicit collection statistics
// (a stats-only index: no term dictionary, never Lookup'd).
func statScorer(numDocs int, avgDocLen float64, params rank.BM25Params) *rank.Scorer {
	return rank.NewScorer(&index.Index{NumDocs: numDocs, AvgDocLen: avgDocLen}, params)
}

// newOverlay bundles a snapshot's view into the exec.Overlay a query
// threads through the engine. scorer carries the statistics BM25 should
// see (the snapshot's own for a single engine, the global live ones for
// a cluster shard).
func newOverlay(view *View, main *index.Index, scorer *rank.Scorer, globalDF map[string]int) *exec.Overlay {
	q := &queryOverlay{view: view, main: main, scorer: scorer, globalDF: globalDF}
	return &exec.Overlay{Delta: q, Scorer: q}
}

// Empty implements exec.DeltaView.
func (q *queryOverlay) Empty() bool { return q.view.Empty() }

// Reconcile implements exec.DeltaView: resolve the query's live document
// frequencies (billing the shadow-membership probes), drop superseded
// main candidates, and merge in the delta's own conjunction.
func (q *queryOverlay) Reconcile(mainIDs []uint32, terms []string) ([]uint32, hwmodel.CPUWork) {
	var work hwmodel.CPUWork
	q.terms = terms
	q.dfs = make([]int, len(terms))
	q.lists = make([]*index.PostingList, len(terms))
	dead := false
	for i, t := range terms {
		mainN := 0
		if pl, ok := q.main.Lookup(t); ok {
			q.lists[i] = pl
			mainN = pl.N
		}
		df, probes := q.view.liveDF(t, mainN, q.main)
		work.CachedProbes += int64(probes)
		if q.globalDF != nil {
			df = q.globalDF[t]
		}
		q.dfs[i] = df
		if df <= 0 {
			// No live document contains the term: the conjunction is
			// empty, exactly as a fresh build (where the term would be
			// absent from the dictionary).
			dead = true
		}
	}
	if dead {
		return nil, work
	}
	merged, w := q.view.reconcile(mainIDs, terms)
	work.CachedProbes += w.CachedProbes
	work.MergedElements += w.MergedElements
	return merged, work
}

// ScoreCandidates implements exec.CandidateScorer with the same
// float-accumulation discipline as rank.Scorer.ScoreCandidates — terms
// in query order, float64 accumulation, one float32 cast — but sourcing
// (tf, docLen, df) from the pinned snapshot: delta documents read their
// record, untouched main documents read the main segment. The fetched
// main lists are ignored (the overlay resolved its own in Reconcile,
// including terms absent from the main dictionary).
func (q *queryOverlay) ScoreCandidates(_ []*index.PostingList, candidates []uint32) ([]kernels.ScoredDoc, hwmodel.CPUWork) {
	var work hwmodel.CPUWork
	out := make([]kernels.ScoredDoc, len(candidates))
	for i, d := range candidates {
		rec := q.view.record(d)
		var score float64
		for j := range q.terms {
			var tf, docLen uint32
			if rec != nil {
				tf = rec.tf[q.terms[j]]
				docLen = rec.length
			} else {
				if q.lists[j] != nil {
					tf, _, _ = q.lists[j].FreqForDoc(d)
				}
				docLen = q.main.DocLen(d)
			}
			if tf > 0 {
				score += q.scorer.ScoreTerm(q.dfs[j], tf, docLen)
			}
		}
		work.ScoredDocs += int64(len(q.terms))
		out[i] = kernels.ScoredDoc{DocID: d, Score: float32(score)}
	}
	return out, work
}
