// Package ingest is Griffin's write path: a live-mutation layer over the
// read-only engine. An in-memory delta index absorbs Add/Update/Delete
// with whole-document records and a tombstone set; reads are
// snapshot-isolated — each query pins an immutable (main segment, delta
// generation) pair, so concurrent mutations never tear a result and a
// quiesced engine is byte-identical to one freshly built over the same
// logical corpus. A background merger re-encodes delta postings into the
// compressed main index through the ordinary index.Builder codecs
// (Elias-Fano / PForDelta), priced on the shared device and CPU
// timelines so merge/query interference is visible, and swaps the new
// segment in atomically with epoch-based retirement of the old snapshot.
package ingest

import (
	"fmt"
	"sort"
)

// docRecord is one document's latest state in the delta: either a whole
// new version (Add/Update) or a tombstone (Delete). Records are
// immutable once written — a later mutation of the same document
// replaces the record — so frozen views can share them with the writer.
type docRecord struct {
	// gen is the generation of the mutation that produced this record;
	// the merger drops records whose gen is covered by a committed merge.
	gen uint64
	// deleted marks a tombstone (the document's main-segment version, if
	// any, is dead and no delta version replaces it).
	deleted bool
	// length is the document's token count (0 for tombstones).
	length uint32
	// tf maps each distinct term to its within-document frequency (nil
	// for tombstones).
	tf map[string]uint32
}

// live reports whether the record carries a living document version.
func (r *docRecord) live() bool { return !r.deleted }

// delta is the writer-side mutable state, guarded by the owning engine's
// writer lock. Reads never touch it: they pin a frozen View instead.
type delta struct {
	// gen counts mutations; the frozen view lags it until the next freeze.
	gen uint64
	// docs holds the latest record per docID. A document's presence here
	// — live or tombstoned — shadows its main-segment version entirely.
	docs map[uint32]*docRecord
	// termDocs indexes the *live* delta documents by term.
	termDocs map[string]map[uint32]struct{}
	// dirty marks terms whose sorted posting slice must be rebuilt at the
	// next freeze; clean terms reuse the previous view's slices.
	dirty map[string]struct{}
	// frozen is the view matching some earlier generation (nil before the
	// first freeze).
	frozen *View
}

func newDelta() *delta {
	return &delta{
		docs:     make(map[uint32]*docRecord),
		termDocs: make(map[string]map[uint32]struct{}),
		dirty:    make(map[string]struct{}),
	}
}

// tokenCounts folds a token stream into per-term frequencies.
func tokenCounts(tokens []string) (map[string]uint32, uint32) {
	tf := make(map[string]uint32, len(tokens))
	for _, tok := range tokens {
		tf[tok]++
	}
	return tf, uint32(len(tokens))
}

// detach removes docID from the live term postings of its current record
// (no-op for tombstones or unknown docs), dirtying the touched terms.
func (d *delta) detach(docID uint32) {
	old := d.docs[docID]
	if old == nil || old.deleted {
		return
	}
	for t := range old.tf {
		if set := d.termDocs[t]; set != nil {
			delete(set, docID)
			if len(set) == 0 {
				delete(d.termDocs, t)
			}
		}
		d.dirty[t] = struct{}{}
	}
}

// put installs a record as docID's latest state.
func (d *delta) put(docID uint32, rec *docRecord) {
	d.detach(docID)
	d.docs[docID] = rec
	for t := range rec.tf {
		set := d.termDocs[t]
		if set == nil {
			set = make(map[uint32]struct{})
			d.termDocs[t] = set
		}
		set[docID] = struct{}{}
		d.dirty[t] = struct{}{}
	}
}

// drop removes every record with gen <= upto — the commit step of a
// merge: those records are now represented in the merged main segment.
// Records written during the merge (gen > upto) stay, and keep shadowing
// whatever the merged segment says about their documents.
func (d *delta) drop(upto uint64) {
	for id, rec := range d.docs {
		if rec.gen > upto {
			continue
		}
		d.detach(id)
		delete(d.docs, id)
	}
	// The previous view is stale wholesale (its docs map holds dropped
	// records), so the next freeze rebuilds from scratch: mark every
	// surviving term dirty and forget the frozen view.
	for t := range d.termDocs {
		d.dirty[t] = struct{}{}
	}
	d.frozen = nil
}

// mutErr is a typed validation failure (bad Add/Update/Delete).
type mutErr struct{ msg string }

func (e *mutErr) Error() string { return e.msg }

func mutErrf(format string, args ...any) error {
	return &mutErr{msg: fmt.Sprintf(format, args...)}
}

// IsInvalid reports whether err is a mutation-validation failure (the
// caller sent a bad request, as opposed to an internal fault).
func IsInvalid(err error) bool {
	_, ok := err.(*mutErr)
	return ok
}

// freeze builds the immutable View for the writer's current generation,
// reusing the previous view's posting slices for clean terms. st
// describes the main segment the view overlays (its aggregate document
// statistics), so the view can carry the snapshot's exact collection
// statistics. Caller holds the writer lock.
func (d *delta) freeze(st mainStats) *View {
	prev := d.frozen
	v := &View{
		gen:      d.gen,
		docs:     make(map[uint32]*docRecord, len(d.docs)),
		postings: make(map[string][]uint32, len(d.termDocs)),
		decr:     make(map[string]decrEntry),
	}
	for id, rec := range d.docs {
		v.docs[id] = rec
	}
	if prev != nil {
		for t, ids := range prev.postings {
			if _, isDirty := d.dirty[t]; !isDirty {
				v.postings[t] = ids
			}
		}
	}
	for t := range d.dirty {
		set := d.termDocs[t]
		if len(set) == 0 {
			continue
		}
		ids := make([]uint32, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		v.postings[t] = ids
	}
	d.dirty = make(map[string]struct{})

	v.computeStats(st)
	d.frozen = v
	return v
}
