package ingest

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"griffin/internal/core"
	"griffin/internal/exec"
	"griffin/internal/fault"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/rank"
	"griffin/internal/wal"
)

// DefaultMergeRetries bounds how many times an aborted merge (injected
// fault on the merge path) is retried before the error surfaces.
const DefaultMergeRetries = 3

// Config parameterizes a live-ingestion engine.
type Config struct {
	// Engine is the serving-engine template. Every merged segment is
	// served by a fresh core.Engine built from this template adopting
	// the previous engine's device node, so the simulated device
	// timelines, submit hooks, and batching stage survive index swaps.
	Engine core.Config
	// Codec selects the compressed forms merged segments materialize.
	// Defaults to the seed index's codec (PForDelta presence detected),
	// so a quiesced engine is byte-identical to a fresh build.
	Codec index.Codec
	// MergeThreshold is the delta size (records, live + tombstoned) at
	// which a merge becomes due (NeedsMerge / AutoMerge). 0 means merges
	// run only when explicitly requested.
	MergeThreshold int
	// AutoMerge launches a background merge goroutine whenever a
	// mutation pushes the delta past MergeThreshold (the serving-path
	// behaviour; deterministic load studies call MergeAt themselves).
	AutoMerge bool
	// Site is the fault-site base name; merge-path draws use
	// "<Site>.merge". Empty means "ingest".
	Site string
	// Fault injects merge-path faults (nil = none).
	Fault *fault.Injector
	// MergeRetries bounds abort→retry attempts per merge
	// (0 = DefaultMergeRetries; negative = no retries).
	MergeRetries int
	// WALDir enables durability (Open only): every accepted mutation is
	// appended to a write-ahead log in this directory before it is
	// acknowledged, and startup recovers checkpoint + WAL suffix. Empty
	// disables the WAL entirely — New and Open are then identical.
	WALDir string
	// WALSyncEvery is the fsync cadence in appends: 0 (unset) defaults
	// to 1 — every acknowledged mutation is durable — and negative syncs
	// only at checkpoints and shutdown (fast, loses the unsynced tail on
	// crash).
	WALSyncEvery int
	// CheckpointEvery persists a checkpoint after this many accepted
	// mutations (0 = only explicit Checkpoint calls). Checkpoints bound
	// recovery replay time; between them recovery replays the suffix.
	CheckpointEvery int
}

// segment is one immutable main-index incarnation plus the engine
// serving it. Snapshots hold references; the last release closes the
// engine (dropping its device-resident caches) — epoch-based
// retirement without a global pause.
type segment struct {
	eng  *core.Engine
	st   mainStats
	refs atomic.Int64
}

func (g *segment) acquire() { g.refs.Add(1) }

func (g *segment) release() {
	if g.refs.Add(-1) == 0 {
		g.eng.Close()
	}
}

// snapshot is an immutable (main segment, delta view) pair — what one
// query pins for its whole execution. The snapshot holds one reference
// on its segment; queries hold references on the snapshot.
type snapshot struct {
	seg  *segment
	view *View
	refs atomic.Int64
}

func newSnapshot(seg *segment, view *View) *snapshot {
	seg.acquire()
	s := &snapshot{seg: seg, view: view}
	s.refs.Store(1) // the "current" reference, dropped when swapped out
	return s
}

func (s *snapshot) release() {
	if s.refs.Add(-1) == 0 {
		s.seg.release()
	}
}

// Stats is the ingestion telemetry surface (/statz, freshness checks).
type Stats struct {
	// Gen is the writer generation (total mutations accepted);
	// MergedGen is the highest generation covered by a committed merge.
	Gen       uint64 `json:"gen"`
	MergedGen uint64 `json:"merged_gen"`
	// DeltaDocs / Tombstones describe the current delta (records not
	// yet merged). DeltaDocs counts all records, tombstones included —
	// the merge-lag / freshness signal.
	DeltaDocs  int `json:"delta_docs"`
	Tombstones int `json:"tombstones"`
	// Adds/Updates/Deletes count accepted mutations by kind.
	Adds    int64 `json:"adds"`
	Updates int64 `json:"updates"`
	Deletes int64 `json:"deletes"`
	// Merges counts committed merges; Aborts counts merge attempts
	// killed by injected faults (each either retried or surfaced);
	// MergedDocs is the total records folded into main segments.
	Merges     int64 `json:"merges"`
	Aborts     int64 `json:"aborts"`
	MergedDocs int64 `json:"merged_docs"`
	// MergeDevice / MergeCPU / MergeStall are the simulated time merges
	// spent re-encoding on the shared device timelines, encoding on the
	// CPU, and stalled by injected admission faults — the interference
	// the /statz freshness block surfaces.
	MergeDevice time.Duration `json:"merge_device_ns"`
	MergeCPU    time.Duration `json:"merge_cpu_ns"`
	MergeStall  time.Duration `json:"merge_stall_ns"`
	// WAL is the durability telemetry: appends, syncs, checkpoints, and
	// recovery counters. Nil when the engine runs without a write-ahead
	// log, so the /statz body stays byte-identical with durability off.
	WAL *wal.Stats `json:"wal,omitempty"`
}

// Lag returns the mutations not yet covered by a committed merge.
func (s Stats) Lag() uint64 { return s.Gen - s.MergedGen }

// Engine is the live-ingestion engine: a mutable delta over a read-only
// core.Engine, with snapshot-isolated reads and background merging.
type Engine struct {
	cfg     Config
	codec   index.Codec
	cpu     hwmodel.CPUModel
	site    string
	retries int

	// mu is the writer lock: mutations, freezes, and merge commits.
	// Reads never take it (they pin snapshots through snap).
	mu   sync.Mutex
	d    *delta
	snap atomic.Pointer[snapshot]
	gen  atomic.Uint64 // mirror of d.gen for lock-free staleness checks

	// mergeMu serializes merges (one background merge at a time) and
	// checkpoints (which fold the delta through the same path).
	mergeMu sync.Mutex
	merging atomic.Bool
	bg      sync.WaitGroup
	closing atomic.Bool
	statsMu sync.Mutex
	st      Stats

	// store is the write-ahead log (nil without -wal-dir: the in-memory
	// engine, byte-identical to pre-durability behaviour).
	store     *wal.Store
	ckpting   atomic.Bool
	sinceCkpt atomic.Int64
}

// New builds a live-ingestion engine over a seed index. The seed may be
// empty (index.NewBuilder(...).Build() with no documents) to start from
// a blank corpus.
func New(ix *index.Index, cfg Config) (*Engine, error) {
	eng, err := core.New(ix, cfg.Engine)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		codec:   cfg.Codec,
		cpu:     cfg.Engine.CPU,
		site:    cfg.Site,
		retries: cfg.MergeRetries,
	}
	if e.cpu == (hwmodel.CPUModel{}) {
		e.cpu = hwmodel.DefaultCPU()
	}
	if e.site == "" {
		e.site = "ingest"
	}
	if e.retries == 0 {
		e.retries = DefaultMergeRetries
	}
	if cfg.Codec == CodecAuto {
		e.codec = detectCodec(ix)
	}
	e.d = newDelta()
	seg := &segment{eng: eng, st: statsOf(ix)}
	view := e.d.freeze(seg.st)
	e.snap.Store(newSnapshot(seg, view))
	return e, nil
}

// CodecAuto asks New to detect the codec from the seed index.
const CodecAuto index.Codec = -1

// detectCodec mirrors workload.PartitionIndex's probe: any term with a
// PForDelta form means the index was built with CodecBoth.
func detectCodec(ix *index.Index) index.Codec {
	for _, t := range ix.Terms() {
		pl, _ := ix.Lookup(t)
		if pl.PFD != nil {
			return index.CodecBoth
		}
		return index.CodecEF
	}
	return index.CodecEF
}

// Close drains in-flight background merges and releases the engine's
// device state. Safe to call once; concurrent with queries. With a WAL
// the durability barrier comes first: every acknowledged mutation is
// synced to disk before background work is drained, so a SIGTERM that
// reaches Close never loses an acknowledged write.
func (e *Engine) Close() {
	if e.store != nil {
		e.store.Sync()
	}
	e.closing.Store(true)
	e.bg.Wait()
	if e.store != nil {
		e.store.Close()
	}
	// Drop the "current" reference; the snapshot (and its segment's
	// caches) die when the last pinned query finishes.
	if s := e.snap.Load(); s != nil {
		s.release()
	}
}

// ErrClosed is returned by mutations, merges, and queries issued after
// Close.
var ErrClosed = errors.New("ingest: engine closed")

// acquire pins the current snapshot (whatever its generation). After
// Close the current snapshot may be fully drained — its segment's engine
// is gone — so a closed engine answers ErrClosed instead of spinning.
func (e *Engine) acquire() (*snapshot, error) {
	for {
		if e.closing.Load() {
			return nil, ErrClosed
		}
		s := e.snap.Load()
		if s.refs.Add(1) <= 1 {
			// Fully drained already (swapped out): undo and retry.
			s.refs.Add(-1)
			continue
		}
		if e.snap.Load() == s {
			return s, nil
		}
		s.release()
	}
}

// acquireFresh pins a snapshot at the writer's current generation,
// freezing the delta on demand (cheap when no mutations landed since
// the last freeze: the fast path is two atomic loads).
func (e *Engine) acquireFresh() (*snapshot, error) {
	for {
		s, err := e.acquire()
		if err != nil {
			return nil, err
		}
		if s.view.gen == e.gen.Load() {
			return s, nil
		}
		s.release()
		e.refresh()
	}
}

// refresh publishes a snapshot of the writer's current generation.
func (e *Engine) refresh() {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.snap.Load()
	if cur.view.gen == e.d.gen {
		return
	}
	v := e.d.freeze(cur.seg.st)
	e.snap.Store(newSnapshot(cur.seg, v))
	cur.release()
}

// exists reports whether docID is live at the writer's current state.
// Caller holds e.mu.
func (e *Engine) exists(docID uint32) bool {
	if rec := e.d.docs[docID]; rec != nil {
		return rec.live()
	}
	seg := e.snap.Load().seg
	return int(docID) < len(seg.st.ix.DocLens) && seg.st.ix.DocLens[docID] > 0
}

// Add inserts a new document. It is an error to Add a docID that is
// currently live (use Update) or to add an empty document.
func (e *Engine) Add(docID uint32, tokens []string) error {
	return e.mutate(docID, tokens, mutAdd)
}

// Update replaces a document wholesale (upsert: the document need not
// exist yet). The delta stores the complete new version; the
// main-segment version, if any, is shadowed until the next merge.
func (e *Engine) Update(docID uint32, tokens []string) error {
	return e.mutate(docID, tokens, mutUpdate)
}

// Delete tombstones a live document.
func (e *Engine) Delete(docID uint32) error {
	return e.mutate(docID, nil, mutDelete)
}

type mutKind int

const (
	mutAdd mutKind = iota
	mutUpdate
	mutDelete
)

func (e *Engine) mutate(docID uint32, tokens []string, kind mutKind) error {
	if e.closing.Load() {
		return ErrClosed
	}
	e.mu.Lock()
	switch kind {
	case mutAdd:
		if len(tokens) == 0 {
			e.mu.Unlock()
			return mutErrf("ingest: add doc %d: empty document", docID)
		}
		if e.exists(docID) {
			e.mu.Unlock()
			return mutErrf("ingest: add doc %d: already exists (use update)", docID)
		}
	case mutUpdate:
		if len(tokens) == 0 {
			e.mu.Unlock()
			return mutErrf("ingest: update doc %d: empty document", docID)
		}
	case mutDelete:
		if !e.exists(docID) {
			e.mu.Unlock()
			return mutErrf("ingest: delete doc %d: not found", docID)
		}
	}
	// Durability barrier: the record must be on the log before the
	// mutation is acknowledged. A failed append (storage fault, wedged
	// log) leaves the in-memory state untouched and the caller sees the
	// error — the mutation never happened.
	if e.store != nil {
		if err := e.store.Append(0, wal.Record{
			Gen: e.d.gen + 1, Op: walOp(kind), DocID: docID, Tokens: tokens,
		}); err != nil {
			e.mu.Unlock()
			return err
		}
	}
	e.d.gen++
	rec := &docRecord{gen: e.d.gen}
	if kind == mutDelete {
		rec.deleted = true
	} else {
		rec.tf, rec.length = tokenCounts(tokens)
	}
	e.d.put(docID, rec)
	e.gen.Store(e.d.gen)
	pending := len(e.d.docs)
	e.mu.Unlock()

	e.statsMu.Lock()
	switch kind {
	case mutAdd:
		e.st.Adds++
	case mutUpdate:
		e.st.Updates++
	case mutDelete:
		e.st.Deletes++
	}
	e.statsMu.Unlock()

	if e.cfg.AutoMerge && e.cfg.MergeThreshold > 0 && pending >= e.cfg.MergeThreshold &&
		!e.closing.Load() && e.merging.CompareAndSwap(false, true) {
		e.bg.Add(1)
		go func() {
			defer e.bg.Done()
			defer e.merging.Store(false)
			_ = e.Merge() // surfaced via Stats.Aborts; delta stays intact on failure
		}()
	}
	if e.store != nil && e.cfg.CheckpointEvery > 0 &&
		e.sinceCkpt.Add(1) >= int64(e.cfg.CheckpointEvery) &&
		!e.closing.Load() && e.ckpting.CompareAndSwap(false, true) {
		e.bg.Add(1)
		go func() {
			defer e.bg.Done()
			defer e.ckpting.Store(false)
			_ = e.Checkpoint() // failure keeps the WAL authoritative
		}()
	}
	return nil
}

// NeedsMerge reports whether the delta has reached the merge threshold.
func (e *Engine) NeedsMerge() bool {
	if e.cfg.MergeThreshold <= 0 {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.d.docs) >= e.cfg.MergeThreshold
}

// Result is a completed query plus the delta generation it observed.
type Result struct {
	*core.Result
	// Gen is the snapshot's delta generation: results are bit-identical
	// to a quiesced engine holding exactly the first Gen mutations.
	Gen uint64
}

// Search runs one conjunctive query against the freshest snapshot.
func (e *Engine) Search(terms []string) (*Result, error) {
	return e.SearchContext(nil, terms)
}

// SearchContext is Search with a cancellation context.
func (e *Engine) SearchContext(ctx context.Context, terms []string) (*Result, error) {
	s, err := e.acquireFresh()
	if err != nil {
		return nil, err
	}
	defer s.release()
	r, err := s.seg.eng.SearchOverlayContext(ctx, terms, e.overlayFor(s))
	if err != nil {
		return nil, err
	}
	return &Result{Result: r, Gen: s.view.gen}, nil
}

// SearchAt runs one query arriving at an explicit simulated time on the
// shared device timeline — the load-study entry point; backlog left by
// earlier queries *and background merges* delays it.
func (e *Engine) SearchAt(terms []string, arrival time.Duration) (*Result, error) {
	s, err := e.acquireFresh()
	if err != nil {
		return nil, err
	}
	defer s.release()
	r, err := s.seg.eng.SearchOverlayAtContext(nil, terms, arrival, e.overlayFor(s))
	if err != nil {
		return nil, err
	}
	return &Result{Result: r, Gen: s.view.gen}, nil
}

// overlayFor builds the query's exec overlay: nil for an empty view, so
// a quiesced engine takes the frozen-corpus path byte for byte.
func (e *Engine) overlayFor(s *snapshot) *exec.Overlay {
	if s.view.Empty() {
		return nil
	}
	sc := statScorer(s.view.NumDocs(), s.view.AvgDocLen(), e.bm25())
	return newOverlay(s.view, s.seg.st.ix, sc, nil)
}

// bm25 resolves the scoring parameters exactly as core.New does, so the
// overlay scorer and the frozen-corpus scorer agree bit for bit.
func (e *Engine) bm25() rank.BM25Params {
	if e.cfg.Engine.BM25 == (rank.BM25Params{}) {
		return rank.DefaultBM25()
	}
	return e.cfg.Engine.BM25
}

// Engine returns the current serving engine (telemetry surface: node,
// caches, batching). The pointer is only safe for reads that tolerate a
// concurrent swap; queries must go through Search.
func (e *Engine) Engine() *core.Engine { return e.snap.Load().seg.eng }

// Index returns the current main segment (excluding the delta).
func (e *Engine) Index() *index.Index { return e.snap.Load().seg.st.ix }

// Gen returns the writer generation.
func (e *Engine) Gen() uint64 { return e.gen.Load() }

// Stats returns the ingestion telemetry.
func (e *Engine) Stats() Stats {
	e.statsMu.Lock()
	st := e.st
	e.statsMu.Unlock()
	st.Gen = e.gen.Load()
	e.mu.Lock()
	st.DeltaDocs = len(e.d.docs)
	st.Tombstones = 0
	for _, rec := range e.d.docs {
		if rec.deleted {
			st.Tombstones++
		}
	}
	e.mu.Unlock()
	if e.store != nil {
		w := e.store.Stats()
		st.WAL = &w
	}
	return st
}
