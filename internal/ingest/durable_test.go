package ingest

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"griffin/internal/core"
	"griffin/internal/fault"
	"griffin/internal/index"
)

// applyPrefix replays script[:k] into the engine and the logical corpus,
// asserting every mutation is acknowledged.
func applyPrefix(t testing.TB, e *Engine, c *logicalCorpus, script []mutation, k int) {
	t.Helper()
	for i := 0; i < k; i++ {
		apply(t, e, c, script[i])
	}
}

// applyUntilWedged replays the script until a mutation fails, returning
// the acknowledged count, the failing error, and the logical corpus
// holding exactly the acknowledged prefix.
func applyUntilWedged(t testing.TB, e *Engine, base *logicalCorpus, script []mutation) (int, error, *logicalCorpus) {
	t.Helper()
	c := base.clone()
	for i, m := range script {
		var err error
		switch m.kind {
		case mutAdd:
			err = e.Add(m.docID, m.tokens)
		case mutUpdate:
			err = e.Update(m.docID, m.tokens)
		case mutDelete:
			err = e.Delete(m.docID)
		}
		if err != nil {
			return i, err, c
		}
		switch m.kind {
		case mutDelete:
			delete(c.docs, m.docID)
		default:
			c.docs[m.docID] = m.tokens
		}
	}
	return len(script), nil, c
}

// checkIndexParity asserts the quiesced engine's main segment carries
// exactly the BM25 collection statistics of a fresh build — the "and
// BM25 stats" half of the recovery-parity invariant.
func checkIndexParity(t *testing.T, got, want *index.Index, tag string) {
	t.Helper()
	if got.NumDocs != want.NumDocs {
		t.Errorf("%s: NumDocs %d, want %d", tag, got.NumDocs, want.NumDocs)
	}
	if math.Float64bits(got.AvgDocLen) != math.Float64bits(want.AvgDocLen) {
		t.Errorf("%s: AvgDocLen %v, want %v (bit-exact)", tag, got.AvgDocLen, want.AvgDocLen)
	}
	if !reflect.DeepEqual(got.DocLens, want.DocLens) {
		t.Errorf("%s: DocLens diverge", tag)
	}
	if !reflect.DeepEqual(got.Terms(), want.Terms()) {
		t.Errorf("%s: term dictionaries diverge", tag)
	}
}

func TestOpenWithoutWALDirMatchesNew(t *testing.T) {
	const vocab = 10
	base := seedCorpus(301, 40, vocab)
	c := base.clone()
	e, err := Open(c.build(t, index.CodecEF), Config{Engine: core.Config{Mode: core.CPUOnly}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.store != nil {
		t.Fatalf("Open without WALDir attached a store")
	}
	for _, m := range genScript(302, c.clone(), 20, vocab) {
		apply(t, e, c, m)
	}
	if st := e.Stats(); st.WAL != nil {
		t.Fatalf("no-WAL engine exposes a wal stats block: %+v", st.WAL)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint on a no-WAL engine must be a no-op: %v", err)
	}
	if e.Wedged() != nil {
		t.Fatalf("no-WAL engine reports wedged")
	}
	checkLiveParity(t, e, c, queryLog(vocab), "no-wal")
}

// TestCrashRecoveryParity is the tentpole invariant over plain (fault
// free) crash points: for every crash point k in a mixed workload —
// including points straddling merges and checkpoints — recover →
// quiesce is byte-identical, results and BM25 stats, to the uncrashed
// engine quiesced over the acknowledged prefix.
func TestCrashRecoveryParity(t *testing.T) {
	const vocab = 14
	base := seedCorpus(311, 70, vocab)
	script := genScript(312, base.clone(), 40, vocab)
	for _, k := range []int{0, 1, 7, 18, 19, 25, len(script)} {
		t.Run(fmt.Sprintf("crash-after-%d", k), func(t *testing.T) {
			dir := t.TempDir()
			cfg := Config{Engine: core.Config{Mode: core.CPUOnly}, WALDir: dir}
			c := base.clone()
			e, err := Open(base.clone().build(t, index.CodecEF), cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < k; i++ {
				apply(t, e, c, script[i])
				if i == 9 { // a committed merge mid-run
					if err := e.Merge(); err != nil {
						t.Fatal(err)
					}
				}
				if i == 17 { // a committed checkpoint mid-run
					if err := e.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			e.Crash()

			r, err := Open(base.clone().build(t, index.CodecEF), cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if got := r.Gen(); got != uint64(k) {
				t.Fatalf("recovered gen %d, want %d (every acknowledged write survives at sync-every-append)", got, k)
			}
			if err := r.Quiesce(); err != nil {
				t.Fatal(err)
			}
			checkLiveParity(t, r, c, queryLog(vocab), "recovered")
			checkIndexParity(t, r.Index(), c.build(t, index.CodecEF), "recovered")
		})
	}
}

// TestCrashPointFaultParityMatrix drives the seeded storage-fault matrix
// — torn writes and bit flips on the append path, short writes on the
// sync path — and proves the acknowledged-prefix invariant at each
// injected crash point: unacknowledged mutations vanish, acknowledged
// ones survive bit-exactly.
func TestCrashPointFaultParityMatrix(t *testing.T) {
	const vocab = 14
	base := seedCorpus(321, 70, vocab)
	script := genScript(322, base.clone(), 36, vocab)
	cases := []struct {
		name      string
		rule      fault.Rule
		syncEvery int
	}{
		{"torn-append-early", fault.Rule{Kind: fault.TornWrite, Rate: 1, After: 3, Until: 4}, 0},
		{"torn-append-late", fault.Rule{Kind: fault.TornWrite, Rate: 1, After: 30, Until: 31}, 0},
		{"bitflip-append", fault.Rule{Kind: fault.BitFlip, Rate: 1, After: 12, Until: 13}, 0},
		{"short-sync", fault.Rule{Kind: fault.ShortWrite, Rate: 1, After: 2, Until: 3}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := fault.NewInjector(fault.Plan{Seed: 7, Rules: []fault.Rule{tc.rule}})
			cfg := Config{
				Engine: core.Config{Mode: core.CPUOnly},
				WALDir: dir, WALSyncEvery: tc.syncEvery, Fault: inj,
			}
			e, err := Open(base.clone().build(t, index.CodecEF), cfg)
			if err != nil {
				t.Fatal(err)
			}
			acked, wedgeErr, c := applyUntilWedged(t, e, base, script)
			if acked == len(script) {
				t.Fatalf("fault never fired: all %d mutations acknowledged", acked)
			}
			if !fault.IsStorageFault(wedgeErr) {
				t.Fatalf("wedging error %v is not a storage fault", wedgeErr)
			}
			if e.Wedged() == nil {
				t.Fatalf("engine does not report wedged after storage fault")
			}
			// Wedged engines reject mutations but keep serving reads.
			if _, err := e.Search([]string{word(0)}); err != nil {
				t.Fatalf("read on wedged engine: %v", err)
			}
			if err := e.Add(50_000, []string{"x"}); !fault.IsStorageFault(err) {
				t.Fatalf("wedged engine acknowledged a mutation (err=%v)", err)
			}
			e.Crash()

			// Recovery: fresh injector-free config (the fault already did its
			// damage on disk).
			rcfg := cfg
			rcfg.Fault = nil
			r, err := Open(base.clone().build(t, index.CodecEF), rcfg)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			recovered := int(r.Gen())
			if tc.syncEvery == 0 {
				// Sync-every-append: the acknowledged prefix survives whole.
				if recovered != acked {
					t.Fatalf("recovered %d mutations, want the %d acknowledged", recovered, acked)
				}
			} else if recovered > acked {
				t.Fatalf("recovered %d mutations, more than the %d acknowledged", recovered, acked)
			}
			// Parity target: the corpus holding exactly the recovered prefix.
			ref := base.clone()
			for i := 0; i < recovered; i++ {
				m := script[i]
				switch m.kind {
				case mutDelete:
					delete(ref.docs, m.docID)
				default:
					ref.docs[m.docID] = m.tokens
				}
			}
			_ = c
			if err := r.Quiesce(); err != nil {
				t.Fatal(err)
			}
			checkLiveParity(t, r, ref, queryLog(vocab), "recovered")
			checkIndexParity(t, r.Index(), ref.build(t, index.CodecEF), "recovered")
			st := r.Stats()
			if st.WAL == nil || st.WAL.TruncatedBytes == 0 {
				t.Errorf("recovery reported no truncated bytes after injected corruption: %+v", st.WAL)
			}
		})
	}
}

// TestCorruptCheckpointFallsBackToFullReplay injects the ckpt fault
// site: the checkpoint is silently corrupted on disk, and recovery must
// detect it, skip it, and still reach full parity by replaying the
// whole log over the seed.
func TestCorruptCheckpointFallsBackToFullReplay(t *testing.T) {
	const vocab = 12
	base := seedCorpus(331, 60, vocab)
	script := genScript(332, base.clone(), 30, vocab)
	dir := t.TempDir()
	cfg := Config{Engine: core.Config{Mode: core.CPUOnly}, WALDir: dir}
	c := base.clone()
	e, err := Open(base.clone().build(t, index.CodecEF), cfg)
	if err != nil {
		t.Fatal(err)
	}
	applyPrefix(t, e, c, script, 20)
	// Arm the injector for the checkpoint only: a global BitFlip rule
	// would also wedge the append path, and the point here is a corrupt
	// checkpoint over a clean log.
	e.store.SetFault(fault.NewInjector(fault.Plan{Seed: 3, Rules: []fault.Rule{
		{Kind: fault.BitFlip, Rate: 1},
	}}))
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("silently corrupted checkpoint surfaced an error: %v", err)
	}
	e.store.SetFault(nil)
	applyPrefix(t, e, c, script[20:], 10)
	e.Crash()

	r, err := Open(base.clone().build(t, index.CodecEF), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Stats()
	if st.WAL == nil || st.WAL.SkippedCheckpoints != 1 {
		t.Fatalf("corrupt checkpoint not skipped: %+v", st.WAL)
	}
	if st.WAL.RecoveredRecords != int64(len(script)) {
		t.Fatalf("replayed %d records, want the full log of %d after checkpoint fallback",
			st.WAL.RecoveredRecords, len(script))
	}
	if err := r.Quiesce(); err != nil {
		t.Fatal(err)
	}
	checkLiveParity(t, r, c, queryLog(vocab), "ckpt-fallback")
}

// TestRecoveryNeverResurrectsTombstone pins the documented rule: a
// torn tail truncates cleanly and a tombstoned document stays dead —
// recovery must not "fix up" a delete whose successor record was lost.
func TestRecoveryNeverResurrectsTombstone(t *testing.T) {
	const victim = uint32(3)
	base := seedCorpus(341, 10, 8)
	dir := t.TempDir()
	// The 2nd append (seq 1) tears: the delete (seq 0) is durable, the
	// re-add of the same docID is torn away.
	inj := fault.NewInjector(fault.Plan{Seed: 5, Rules: []fault.Rule{
		{Kind: fault.TornWrite, Rate: 1, After: 1, Until: 2},
	}})
	cfg := Config{Engine: core.Config{Mode: core.CPUOnly}, WALDir: dir, Fault: inj}
	e, err := Open(base.clone().build(t, index.CodecEF), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(victim); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(victim, []string{"resurrect", "me"}); !fault.IsStorageFault(err) {
		t.Fatalf("torn re-add err = %v, want storage fault", err)
	}
	e.Crash()

	rcfg := cfg
	rcfg.Fault = nil
	r, err := Open(base.clone().build(t, index.CodecEF), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Gen(); got != 1 {
		t.Fatalf("recovered gen %d, want 1 (the delete only)", got)
	}
	if err := r.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if ix := r.Index(); int(victim) < len(ix.DocLens) && ix.DocLens[victim] != 0 {
		t.Fatalf("tombstoned doc %d resurrected with length %d", victim, ix.DocLens[victim])
	}
	want := base.clone()
	delete(want.docs, victim)
	checkLiveParity(t, r, want, queryLog(8), "tombstone")
}

// TestCloseDurabilityBarrier pins the shutdown contract: even with
// syncing deferred (WALSyncEvery < 0), Close flushes and syncs every
// acknowledged mutation before returning — the SIGTERM barrier
// cmd/griffin-server relies on.
func TestCloseDurabilityBarrier(t *testing.T) {
	const vocab = 10
	base := seedCorpus(351, 40, vocab)
	script := genScript(352, base.clone(), 25, vocab)
	dir := t.TempDir()
	cfg := Config{Engine: core.Config{Mode: core.CPUOnly}, WALDir: dir, WALSyncEvery: -1}
	c := base.clone()
	e, err := Open(base.clone().build(t, index.CodecEF), cfg)
	if err != nil {
		t.Fatal(err)
	}
	applyPrefix(t, e, c, script, len(script))
	if st := e.Stats(); st.WAL.Syncs != 0 {
		t.Fatalf("deferred-sync engine synced %d times before close", st.WAL.Syncs)
	}
	e.Close()

	r, err := Open(base.clone().build(t, index.CodecEF), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Gen(); got != uint64(len(script)) {
		t.Fatalf("recovered %d mutations after clean close, want all %d", got, len(script))
	}
	if err := r.Quiesce(); err != nil {
		t.Fatal(err)
	}
	checkLiveParity(t, r, c, queryLog(vocab), "post-close")
}

// TestMergeAbortCrashRecoversPreMergeView covers the merge-abort fault
// site interacting with recovery: a crash during (and after) aborted
// merges recovers to the pre-merge view — every acknowledged mutation,
// no half-merged segment.
func TestMergeAbortCrashRecoversPreMergeView(t *testing.T) {
	const vocab = 12
	base := seedCorpus(361, 50, vocab)
	script := genScript(362, base.clone(), 24, vocab)
	dir := t.TempDir()
	inj := fault.NewInjector(fault.Plan{Seed: 9, Rules: []fault.Rule{
		{Kind: fault.EngineError, Rate: 1}, // every merge admission aborts
	}})
	cfg := Config{
		Engine: core.Config{Mode: core.CPUOnly},
		WALDir: dir, Fault: inj, MergeRetries: -1,
	}
	c := base.clone()
	e, err := Open(base.clone().build(t, index.CodecEF), cfg)
	if err != nil {
		t.Fatal(err)
	}
	applyPrefix(t, e, c, script, len(script))
	if err := e.Merge(); !fault.IsEngineFault(err) {
		t.Fatalf("merge err = %v, want injected engine fault", err)
	}
	// A checkpoint rides the same merge path, so it aborts too — and must
	// leave no checkpoint file behind.
	if err := e.Checkpoint(); !fault.IsEngineFault(err) {
		t.Fatalf("checkpoint err = %v, want injected engine fault", err)
	}
	e.Crash()

	rcfg := cfg
	rcfg.Fault = nil
	r, err := Open(base.clone().build(t, index.CodecEF), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Stats()
	if st.WAL.CheckpointGen != 0 {
		t.Fatalf("aborted checkpoint left watermark %d on disk", st.WAL.CheckpointGen)
	}
	if got := r.Gen(); got != uint64(len(script)) {
		t.Fatalf("recovered %d mutations, want all %d acknowledged pre-merge", got, len(script))
	}
	if err := r.Quiesce(); err != nil {
		t.Fatal(err)
	}
	checkLiveParity(t, r, c, queryLog(vocab), "post-merge-abort")
	checkIndexParity(t, r.Index(), c.build(t, index.CodecEF), "post-merge-abort")
}

// TestConcurrentCheckpointIngestReads is the -race satellite: writers,
// readers, and a checkpoint loop run concurrently; readers pinned to an
// epoch must never observe a torn view across a checkpoint's internal
// merge + persist, and the checkpointed directory must recover to a
// state consistent with some acknowledged prefix.
func TestConcurrentCheckpointIngestReads(t *testing.T) {
	const vocab = 10
	base := seedCorpus(371, 40, vocab)
	script := genScript(372, base.clone(), 30, vocab)
	queries := [][]string{{word(0)}, {word(0), word(1)}, {word(1), word(2)}}

	// Per-generation expected results (same scheme as
	// TestConcurrentSnapshotIsolation).
	expected := make([]map[int][]docBits, len(script)+1)
	{
		c := base.clone()
		for g := 0; g <= len(script); g++ {
			if g > 0 {
				m := script[g-1]
				switch m.kind {
				case mutDelete:
					delete(c.docs, m.docID)
				default:
					c.docs[m.docID] = m.tokens
				}
			}
			ref, err := core.New(c.build(t, index.CodecEF), core.Config{Mode: core.CPUOnly})
			if err != nil {
				t.Fatal(err)
			}
			expected[g] = make(map[int][]docBits, len(queries))
			for qi, q := range queries {
				r, err := ref.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				expected[g][qi] = bitsOf(r)
			}
		}
	}

	dir := t.TempDir()
	cfg := Config{Engine: core.Config{Mode: core.CPUOnly}, WALDir: dir}
	e, err := Open(base.clone().build(t, index.CodecEF), cfg)
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg   sync.WaitGroup
		done = make(chan struct{})
		errs = make(chan string, 64)
	)
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(done)
		for i, m := range script {
			var err error
			switch m.kind {
			case mutAdd:
				err = e.Add(m.docID, m.tokens)
			case mutUpdate:
				err = e.Update(m.docID, m.tokens)
			case mutDelete:
				err = e.Delete(m.docID)
			}
			if err != nil {
				errs <- fmt.Sprintf("writer step %d: %v", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // checkpointer
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := e.Checkpoint(); err != nil {
				errs <- fmt.Sprintf("checkpoint: %v", err)
				return
			}
		}
	}()
	for reader := 0; reader < 3; reader++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				for qi, q := range queries {
					r, err := e.Search(q)
					if err != nil {
						errs <- fmt.Sprintf("reader q%d: %v", qi, err)
						return
					}
					if r.Gen < lastGen || r.Gen > uint64(len(script)) {
						errs <- fmt.Sprintf("reader q%d: gen %d out of order (last %d)", qi, r.Gen, lastGen)
						return
					}
					lastGen = r.Gen
					if got, want := bitsOf(r.Result), expected[r.Gen][qi]; !sameDocs(got, want) {
						errs <- fmt.Sprintf("reader q%d gen %d: torn view across checkpoint", qi, r.Gen)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	// One final checkpoint so the directory's watermark is meaningful,
	// then crash and recover: the acknowledged prefix must be complete.
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e.Crash()
	r, err := Open(base.clone().build(t, index.CodecEF), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Gen(); got != uint64(len(script)) {
		t.Fatalf("recovered gen %d, want %d", got, len(script))
	}
	if err := r.Quiesce(); err != nil {
		t.Fatal(err)
	}
	c := base.clone()
	for _, m := range script {
		switch m.kind {
		case mutDelete:
			delete(c.docs, m.docID)
		default:
			c.docs[m.docID] = m.tokens
		}
	}
	checkLiveParity(t, r, c, queryLog(vocab), "post-checkpoint-race")
}

// TestAutoCheckpointCadence: CheckpointEvery triggers background
// checkpoints without explicit calls.
func TestAutoCheckpointCadence(t *testing.T) {
	const vocab = 10
	base := seedCorpus(381, 30, vocab)
	script := genScript(382, base.clone(), 24, vocab)
	dir := t.TempDir()
	cfg := Config{
		Engine: core.Config{Mode: core.CPUOnly},
		WALDir: dir, CheckpointEvery: 8,
	}
	c := base.clone()
	e, err := Open(base.clone().build(t, index.CodecEF), cfg)
	if err != nil {
		t.Fatal(err)
	}
	applyPrefix(t, e, c, script, len(script))
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := e.Stats(); st.WAL.Checkpoints > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no automatic checkpoint committed over %d mutations at cadence 8", len(script))
		}
		time.Sleep(time.Millisecond)
	}
	e.Close() // drains the background checkpoint goroutine
	r, err := Open(base.clone().build(t, index.CodecEF), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Gen(); got != uint64(len(script)) {
		t.Fatalf("recovered gen %d, want %d", got, len(script))
	}
	if err := r.Quiesce(); err != nil {
		t.Fatal(err)
	}
	checkLiveParity(t, r, c, queryLog(vocab), "auto-checkpoint")
}
