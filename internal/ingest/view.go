package ingest

import (
	"sync"

	"griffin/internal/hwmodel"
	"griffin/internal/index"
)

// mainStats are the aggregate document statistics of the main segment a
// view overlays, precomputed once per segment: the raw ingredients of
// index.Builder's NumDocs/AvgDocLen arithmetic, so a view can produce
// the *exact* statistics a fresh build over the live corpus would.
type mainStats struct {
	// ix is the main segment.
	ix *index.Index
	// lenSum is the sum of all main document lengths (uint64, exact).
	lenSum uint64
	// lenCnt is the number of main documents (DocLens[d] > 0).
	lenCnt int
}

func statsOf(ix *index.Index) mainStats {
	st := mainStats{ix: ix}
	for _, l := range ix.DocLens {
		if l > 0 {
			st.lenSum += uint64(l)
			st.lenCnt++
		}
	}
	return st
}

// decrEntry memoizes one term's main-segment document-frequency
// decrement: how many of the view's shadowed documents actually appear
// in the term's main posting list, plus the binary-search probes that
// cost. The probe count is memoized along with the value so every query
// is billed identically regardless of which one computed it first.
type decrEntry struct {
	dec    int
	probes int
}

// View is an immutable snapshot of the delta index at one generation,
// pinned by queries for their whole execution. All exported state is
// read-only; the decr memo is the only mutable field and is guarded by
// its own mutex (it caches pure functions of immutable state, so
// concurrent queries only ever race to write identical values — the
// lock makes that race clean under the race detector).
type View struct {
	gen uint64
	// docs is the record per mutated docID (live versions + tombstones).
	docs map[uint32]*docRecord
	// postings holds, per term, the ascending docIDs of the *live* delta
	// documents containing it.
	postings map[string][]uint32

	// numDocs / lenSum / lenCnt are the live corpus statistics
	// (max live docID + 1, total live token count, live doc count) —
	// exactly what index.Builder.Build would compute over the same
	// logical corpus.
	numDocs int
	lenSum  uint64
	lenCnt  int

	mu   sync.Mutex
	decr map[string]decrEntry
}

// Gen returns the delta generation this view freezes.
func (v *View) Gen() uint64 { return v.gen }

// Empty reports whether the view holds no mutations at all. A
// tombstone-only view is *not* empty: deletions must still filter the
// main intersection.
func (v *View) Empty() bool { return v == nil || len(v.docs) == 0 }

// Docs returns the number of delta records (live + tombstoned) — the
// merge-threshold signal.
func (v *View) Docs() int {
	if v == nil {
		return 0
	}
	return len(v.docs)
}

// record returns docID's delta record, nil when the document is
// untouched by this view.
func (v *View) record(docID uint32) *docRecord { return v.docs[docID] }

// NumDocs returns the live collection size (max live docID + 1).
func (v *View) NumDocs() int { return v.numDocs }

// AvgDocLen returns the live mean document length with index.Builder's
// exact arithmetic (uint64 sum / int count, divided in float64).
func (v *View) AvgDocLen() float64 {
	if v.lenCnt == 0 {
		return 0
	}
	return float64(v.lenSum) / float64(v.lenCnt)
}

// computeStats derives the live collection statistics from the main
// segment's aggregates and this view's records.
func (v *View) computeStats(st mainStats) {
	sum, cnt := st.lenSum, st.lenCnt
	for id, rec := range v.docs {
		if int(id) < len(st.ix.DocLens) && st.ix.DocLens[id] > 0 {
			sum -= uint64(st.ix.DocLens[id])
			cnt--
		}
		if rec.live() {
			sum += uint64(rec.length)
			cnt++
		}
	}
	v.lenSum, v.lenCnt = sum, cnt
	v.numDocs = v.liveNumDocs(st.ix)
}

// liveNumDocs finds max(live docID) + 1: the NumDocs a fresh build over
// the live corpus would report. Deleting the top documents shrinks it,
// so the main side is a descent from the old maximum skipping dead docs.
func (v *View) liveNumDocs(main *index.Index) int {
	max := -1
	for id, rec := range v.docs {
		if rec.live() && int(id) > max {
			max = int(id)
		}
	}
	for d := main.NumDocs - 1; d > max; d-- {
		if main.DocLens[d] == 0 {
			continue // never existed (docID gap)
		}
		if rec := v.docs[uint32(d)]; rec != nil && rec.deleted {
			continue // tombstoned
		}
		// Live in main (an updated doc is live too — its delta version
		// already set max above, but d > max means no live record here).
		return d + 1
	}
	return max + 1
}

// decrFor returns the term's main document-frequency decrement — how
// many shadowed documents its main posting list contains — and the
// memoized probe cost. Membership is resolved with the same
// skip-pointer binary search scoring uses (FreqForDoc).
func (v *View) decrFor(term string, main *index.Index) (int, int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if e, ok := v.decr[term]; ok {
		return e.dec, e.probes
	}
	var e decrEntry
	if pl, ok := main.Lookup(term); ok {
		for id := range v.docs {
			_, probes, found := pl.FreqForDoc(id)
			e.probes += probes
			if found {
				e.dec++
			}
		}
	}
	v.decr[term] = e
	return e.dec, e.probes
}

// liveDF returns the term's live document frequency:
// (main df) - (shadowed docs present in the main list) + (live delta
// docs containing the term), plus the billable probe work. mainN is the
// structural main-list length (shard-local on a partitioned shard).
func (v *View) liveDF(term string, mainN int, main *index.Index) (int, int) {
	dec, probes := v.decrFor(term, main)
	return mainN - dec + len(v.postings[term]), probes
}

// reconcile filters the main-segment intersection through the shadow
// set and unions in the delta's own conjunction over terms. Inputs and
// outputs are ascending docID slices; work is the billable host cost.
func (v *View) reconcile(main []uint32, terms []string) ([]uint32, hwmodel.CPUWork) {
	var work hwmodel.CPUWork
	// Shadow filter: one hash probe per main candidate.
	kept := make([]uint32, 0, len(main))
	for _, d := range main {
		if v.docs[d] == nil {
			kept = append(kept, d)
		}
	}
	work.CachedProbes += int64(len(main))

	// Delta conjunction: intersect the per-term live posting slices.
	inter := v.intersectTerms(terms, &work)

	// Union (both ascending, disjoint: kept has no delta records, inter
	// only delta records).
	merged := mergeAscending(kept, inter)
	work.MergedElements += int64(len(kept) + len(inter))
	return merged, work
}

// intersectTerms intersects the view's live postings across the query
// terms (ascending docIDs). Any term with no live delta postings makes
// the delta-side conjunction empty.
func (v *View) intersectTerms(terms []string, work *hwmodel.CPUWork) []uint32 {
	if len(terms) == 0 {
		return nil
	}
	lists := make([][]uint32, len(terms))
	for i, t := range terms {
		ids := v.postings[t]
		if len(ids) == 0 {
			return nil
		}
		lists[i] = ids
	}
	// SvS order: shortest first.
	for i := 1; i < len(lists); i++ {
		for j := i; j > 0 && len(lists[j]) < len(lists[j-1]); j-- {
			lists[j], lists[j-1] = lists[j-1], lists[j]
		}
	}
	cur := lists[0]
	work.MergedElements += int64(len(cur))
	for _, next := range lists[1:] {
		cur = intersectAscending(cur, next)
		work.MergedElements += int64(len(next))
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

func intersectAscending(a, b []uint32) []uint32 {
	out := make([]uint32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func mergeAscending(a, b []uint32) []uint32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
