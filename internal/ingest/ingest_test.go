package ingest

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"griffin/internal/core"
	"griffin/internal/fault"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
)

// ---------------------------------------------------------------------------
// Logical corpus: the ground truth a live engine and a fresh build must agree
// on. Documents are token streams; building is index.Builder.AddDocument in
// ascending docID order — exactly what a from-scratch ingestion would do.
// ---------------------------------------------------------------------------

type logicalCorpus struct {
	docs map[uint32][]string
}

func newLogicalCorpus() *logicalCorpus {
	return &logicalCorpus{docs: make(map[uint32][]string)}
}

func (c *logicalCorpus) clone() *logicalCorpus {
	out := newLogicalCorpus()
	for id, toks := range c.docs {
		out.docs[id] = toks
	}
	return out
}

func (c *logicalCorpus) build(t testing.TB, codec index.Codec) *index.Index {
	t.Helper()
	ids := make([]uint32, 0, len(c.docs))
	for id := range c.docs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b := index.NewBuilder(codec)
	for _, id := range ids {
		if err := b.AddDocument(id, c.docs[id]); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func word(i int) string { return fmt.Sprintf("w%02d", i) }

// genDoc draws a document whose term distribution is skewed toward the
// low-numbered vocabulary words (so conjunctions actually match).
func genDoc(r *rand.Rand, vocab int) []string {
	n := 4 + r.Intn(20)
	toks := make([]string, n)
	for i := range toks {
		toks[i] = word(int(float64(vocab) * r.Float64() * r.Float64()))
	}
	return toks
}

func seedCorpus(seed int64, docs, vocab int) *logicalCorpus {
	r := rand.New(rand.NewSource(seed))
	c := newLogicalCorpus()
	for id := 0; id < docs; id++ {
		c.docs[uint32(id)] = genDoc(r, vocab)
	}
	return c
}

// mutation is one scripted Add/Update/Delete, applied identically to the
// live engine and the logical corpus.
type mutation struct {
	kind   mutKind
	docID  uint32
	tokens []string
}

// genScript produces a deterministic mutation script over a seeded corpus:
// adds of brand-new docIDs, whole-document updates, and deletes (including
// deletes of documents previously added or updated in the script itself).
func genScript(seed int64, c *logicalCorpus, n, vocab int) []mutation {
	r := rand.New(rand.NewSource(seed))
	live := make([]uint32, 0, len(c.docs))
	next := uint32(0)
	for id := range c.docs {
		live = append(live, id)
		if id >= next {
			next = id + 1
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	var out []mutation
	for i := 0; i < n; i++ {
		switch k := r.Intn(10); {
		case k < 4: // add
			out = append(out, mutation{kind: mutAdd, docID: next, tokens: genDoc(r, vocab)})
			live = append(live, next)
			next++
		case k < 7: // update an existing doc
			if len(live) == 0 {
				continue
			}
			id := live[r.Intn(len(live))]
			out = append(out, mutation{kind: mutUpdate, docID: id, tokens: genDoc(r, vocab)})
		default: // delete an existing doc
			if len(live) == 0 {
				continue
			}
			j := r.Intn(len(live))
			id := live[j]
			live = append(live[:j], live[j+1:]...)
			out = append(out, mutation{kind: mutDelete, docID: id})
		}
	}
	return out
}

// apply replays one mutation into both the live engine and the logical
// corpus, keeping them in lockstep.
func apply(t testing.TB, e *Engine, c *logicalCorpus, m mutation) {
	t.Helper()
	var err error
	switch m.kind {
	case mutAdd:
		err = e.Add(m.docID, m.tokens)
		c.docs[m.docID] = m.tokens
	case mutUpdate:
		err = e.Update(m.docID, m.tokens)
		c.docs[m.docID] = m.tokens
	case mutDelete:
		err = e.Delete(m.docID)
		delete(c.docs, m.docID)
	}
	if err != nil {
		t.Fatalf("mutation %+v: %v", m, err)
	}
}

// queryLog is a fixed conjunctive query mix: popular pairs, selective
// triples, and one term that only ever exists in the delta.
func queryLog(vocab int) [][]string {
	return [][]string{
		{word(0)},
		{word(0), word(1)},
		{word(1), word(2)},
		{word(0), word(2), word(3)},
		{word(3), word(5)},
		{word(vocab / 2), word(1)},
		{word(vocab - 1), word(0)},
		{"fresh-term", word(0)},
		{"no-such-term"},
	}
}

// ---------------------------------------------------------------------------
// Result comparison
// ---------------------------------------------------------------------------

type docBits struct {
	DocID uint32
	Bits  uint32
}

func bitsOf(r *core.Result) []docBits {
	out := make([]docBits, len(r.Docs))
	for i, d := range r.Docs {
		out[i] = docBits{DocID: d.DocID, Bits: math.Float32bits(d.Score)}
	}
	return out
}

func sameDocs(a, b []docBits) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkLiveParity asserts the live engine's ranked results are bit-identical
// to a freshly built engine over the same logical corpus, for every query in
// the log.
func checkLiveParity(t *testing.T, e *Engine, c *logicalCorpus, queries [][]string, tag string) {
	t.Helper()
	fresh, err := core.New(c.build(t, index.CodecEF), core.Config{Mode: core.CPUOnly})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		lr, err := e.Search(q)
		if err != nil {
			t.Fatalf("%s q%d live: %v", tag, qi, err)
		}
		fr, err := fresh.Search(q)
		if err != nil {
			t.Fatalf("%s q%d fresh: %v", tag, qi, err)
		}
		if lr.Stats.Candidates != fr.Stats.Candidates {
			t.Errorf("%s q%d %v: candidates live=%d fresh=%d",
				tag, qi, q, lr.Stats.Candidates, fr.Stats.Candidates)
		}
		if lb, fb := bitsOf(lr.Result), bitsOf(fr); !sameDocs(lb, fb) {
			t.Errorf("%s q%d %v: docs diverge\n live=%v\nfresh=%v", tag, qi, q, lb, fb)
		}
	}
}

// ---------------------------------------------------------------------------
// Live parity: results during active mutation, CPU-only and hybrid.
// ---------------------------------------------------------------------------

func TestLiveParity(t *testing.T) {
	const vocab = 16
	base := seedCorpus(11, 120, vocab)
	script := genScript(12, base.clone(), 90, vocab)
	// Seed the delta-only term: a doc added mid-script that is the sole
	// holder of "fresh-term" until a merge folds it in.
	script = append(script, mutation{
		kind: mutUpdate, docID: 9_000, tokens: []string{"fresh-term", word(0), word(0), word(1)},
	})

	modes := map[string]core.Config{
		"cpu":    {Mode: core.CPUOnly},
		"hybrid": {Mode: core.Hybrid, Device: gpu.New(hwmodel.DefaultGPU(), 0)},
	}
	for name, cfg := range modes {
		t.Run(name, func(t *testing.T) {
			c := base.clone()
			e, err := New(c.build(t, index.CodecEF), Config{Engine: cfg})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			queries := queryLog(vocab)
			for i, m := range script {
				apply(t, e, c, m)
				if (i+1)%15 == 0 || i == len(script)-1 {
					checkLiveParity(t, e, c, queries, fmt.Sprintf("step%d", i+1))
				}
			}
			if got, want := e.Gen(), uint64(len(script)); got != want {
				t.Errorf("gen = %d, want %d", got, want)
			}
			st := e.Stats()
			if st.Adds+st.Updates+st.Deletes != int64(len(script)) {
				t.Errorf("mutation counters %d+%d+%d != %d", st.Adds, st.Updates, st.Deletes, len(script))
			}
			// Merge mid-life, then keep mutating: parity must survive the swap.
			if err := e.Merge(); err != nil {
				t.Fatal(err)
			}
			extra := genScript(13, c.clone(), 30, vocab)
			for _, m := range extra {
				apply(t, e, c, m)
			}
			checkLiveParity(t, e, c, queries, "post-merge")
		})
	}
}

// ---------------------------------------------------------------------------
// Quiesced golden parity: after Quiesce the engine must be byte-identical to
// a freshly built engine over the same logical corpus — docs, candidate
// counts, migration decisions, op traces, and simulated timings — at one and
// two devices, with the batching stage off and on.
// ---------------------------------------------------------------------------

type goldenOp struct {
	Stage    string
	Where    string
	Ratio    float64
	ShortLen int
	LongLen  int
	OutLen   int
	TookNS   int64
}

type goldenPlanOp struct {
	Kind      string
	Where     string
	Device    int
	Peer      bool
	Term      string
	NIn, NOut int
	Bytes     int64
	TookNS    int64
	BatchSize int
}

type goldenQuery struct {
	Docs       []docBits
	Candidates int
	Migrated   bool
	GPUWaitNS  int64
	LatencyNS  int64
	Ops        []goldenOp
	Plan       []goldenPlanOp
}

func golden(r *core.Result) goldenQuery {
	g := goldenQuery{
		Docs:       bitsOf(r),
		Candidates: r.Stats.Candidates,
		Migrated:   r.Stats.Migrated,
		GPUWaitNS:  int64(r.Stats.GPUWait),
		LatencyNS:  int64(r.Stats.Latency),
	}
	for _, op := range r.Stats.Ops {
		g.Ops = append(g.Ops, goldenOp{
			Stage: op.Stage, Where: op.Where.String(), Ratio: op.Ratio,
			ShortLen: op.ShortLen, LongLen: op.LongLen, OutLen: op.OutLen,
			TookNS: int64(op.Took),
		})
	}
	for _, op := range r.Stats.Plan {
		// BatchID is a device-lifetime counter, deliberately excluded: the
		// live engine's devices served merge traffic before the quiesced
		// queries ran.
		g.Plan = append(g.Plan, goldenPlanOp{
			Kind: op.Kind.String(), Where: op.Where.String(), Device: op.Device,
			Peer: op.Peer, Term: op.Term, NIn: op.NIn, NOut: op.NOut,
			Bytes: op.Bytes, TookNS: int64(op.Took), BatchSize: op.BatchSize,
		})
	}
	return g
}

func TestQuiescedGoldenParity(t *testing.T) {
	const vocab = 16
	base := seedCorpus(21, 150, vocab)
	script := genScript(22, base.clone(), 80, vocab)

	for _, devices := range []int{1, 2} {
		for _, batch := range []time.Duration{0, 200 * time.Microsecond} {
			name := fmt.Sprintf("devices=%d/batch=%v", devices, batch > 0)
			t.Run(name, func(t *testing.T) {
				mkCfg := func() core.Config {
					return core.Config{
						Mode:        core.Hybrid,
						Device:      gpu.New(hwmodel.DefaultGPU(), 0),
						Devices:     devices,
						BatchWindow: batch,
					}
				}
				c := base.clone()
				e, err := New(c.build(t, index.CodecEF), Config{Engine: mkCfg()})
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()
				for _, m := range script {
					apply(t, e, c, m)
				}
				// Serve a few queries against the un-merged delta first: the
				// quiesced state must not depend on prior read traffic.
				for _, q := range queryLog(vocab)[:4] {
					if _, err := e.Search(q); err != nil {
						t.Fatal(err)
					}
				}
				if err := e.Quiesce(); err != nil {
					t.Fatal(err)
				}
				if lag := e.Stats().Lag(); lag != 0 {
					t.Fatalf("post-quiesce lag = %d", lag)
				}

				fresh, err := core.New(c.build(t, index.CodecEF), mkCfg())
				if err != nil {
					t.Fatal(err)
				}
				for qi, q := range queryLog(vocab) {
					lr, err := e.Search(q)
					if err != nil {
						t.Fatalf("q%d live: %v", qi, err)
					}
					fr, err := fresh.Search(q)
					if err != nil {
						t.Fatalf("q%d fresh: %v", qi, err)
					}
					lg, fg := golden(lr.Result), golden(fr)
					if fmt.Sprintf("%+v", lg) != fmt.Sprintf("%+v", fg) {
						t.Errorf("q%d %v: quiesced engine diverges from fresh build\n live=%+v\nfresh=%+v",
							qi, q, lg, fg)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Merged segment vs fresh build: the re-encoded index must match a from-
// scratch build structurally — same dictionary, same compressed blocks
// (both codecs), same statistics — including tombstone-only lists (term
// leaves the dictionary) and delta-only terms (term enters it).
// ---------------------------------------------------------------------------

func TestMergedIndexMatchesFreshBuild(t *testing.T) {
	c := newLogicalCorpus()
	// Hand-built corpus: "rare" lives only in docs 3 and 7; "solo" only in
	// doc 5. Deleting 3+7 must drop "rare" from the merged dictionary.
	for id := 0; id < 40; id++ {
		toks := []string{word(id % 4), word(id % 7), word(0)}
		switch id {
		case 3, 7:
			toks = append(toks, "rare")
		case 5:
			toks = append(toks, "solo", "solo")
		}
		c.docs[uint32(id)] = toks
	}
	e, err := New(c.build(t, index.CodecBoth), Config{
		Engine: core.Config{Mode: core.CPUOnly},
		Codec:  CodecAuto,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// An empty-delta merge is a no-op.
	if err := e.Merge(); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Merges != 0 {
		t.Fatalf("empty merge committed: %+v", e.Stats())
	}

	muts := []mutation{
		{kind: mutDelete, docID: 3},
		{kind: mutDelete, docID: 7}, // "rare" now tombstone-only
		{kind: mutUpdate, docID: 5, tokens: []string{word(0), word(1), "newterm"}},
		{kind: mutAdd, docID: 64, tokens: []string{"newterm", word(2), word(2)}},
		{kind: mutUpdate, docID: 12, tokens: []string{word(3), word(3), word(5)}},
	}
	for _, m := range muts {
		apply(t, e, c, m)
	}
	if err := e.Quiesce(); err != nil {
		t.Fatal(err)
	}

	got, want := e.Index(), c.build(t, index.CodecBoth)
	if got.NumDocs != want.NumDocs {
		t.Errorf("NumDocs = %d, want %d", got.NumDocs, want.NumDocs)
	}
	if got.AvgDocLen != want.AvgDocLen {
		t.Errorf("AvgDocLen = %v, want %v", got.AvgDocLen, want.AvgDocLen)
	}
	if fmt.Sprint(got.DocLens) != fmt.Sprint(want.DocLens) {
		t.Errorf("DocLens diverge:\n got=%v\nwant=%v", got.DocLens, want.DocLens)
	}
	gt, wt := got.Terms(), want.Terms()
	if fmt.Sprint(gt) != fmt.Sprint(wt) {
		t.Fatalf("dictionaries diverge:\n got=%v\nwant=%v", gt, wt)
	}
	if _, ok := got.Lookup("rare"); ok {
		t.Error("fully tombstoned term 'rare' still in merged dictionary")
	}
	if _, ok := got.Lookup("newterm"); !ok {
		t.Error("delta-only term 'newterm' missing from merged dictionary")
	}
	for _, term := range wt {
		gp, _ := got.Lookup(term)
		wp, _ := want.Lookup(term)
		if gp.N != wp.N {
			t.Errorf("term %q: N = %d, want %d", term, gp.N, wp.N)
			continue
		}
		if fmt.Sprint(gp.EF.Decompress()) != fmt.Sprint(wp.EF.Decompress()) {
			t.Errorf("term %q: EF postings diverge", term)
		}
		if (gp.PFD == nil) != (wp.PFD == nil) {
			t.Errorf("term %q: PFD presence %v vs %v", term, gp.PFD != nil, wp.PFD != nil)
		} else if gp.PFD != nil && fmt.Sprint(gp.PFD.Decompress()) != fmt.Sprint(wp.PFD.Decompress()) {
			t.Errorf("term %q: PFD postings diverge", term)
		}
		for i := 0; i < gp.N; i++ {
			if gp.FreqOf(i) != wp.FreqOf(i) {
				t.Errorf("term %q: freq[%d] = %d, want %d", term, i, gp.FreqOf(i), wp.FreqOf(i))
				break
			}
		}
		if fmt.Sprint(gp.Skips) != fmt.Sprint(wp.Skips) {
			t.Errorf("term %q: skip pointers diverge", term)
		}
	}
}

// ---------------------------------------------------------------------------
// Merge aborts: injected faults on the merge path abort the attempt without
// tearing the published snapshot, and bounded retries recover.
// ---------------------------------------------------------------------------

func TestMergeAbortRetries(t *testing.T) {
	const vocab = 12
	base := seedCorpus(31, 60, vocab)
	c := base.clone()
	// First two merge admissions fail, the third goes through.
	inj := fault.NewInjector(fault.Plan{Seed: 5, Rules: []fault.Rule{
		{Kind: fault.EngineError, Rate: 1, Until: 2},
	}})
	e, err := New(c.build(t, index.CodecEF), Config{
		Engine: core.Config{Mode: core.CPUOnly},
		Fault:  inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, m := range genScript(32, c.clone(), 25, vocab) {
		apply(t, e, c, m)
	}
	if err := e.Merge(); err != nil {
		t.Fatalf("merge should survive 2 aborts with default retries: %v", err)
	}
	st := e.Stats()
	if st.Aborts != 2 || st.Merges != 1 {
		t.Errorf("aborts=%d merges=%d, want 2/1", st.Aborts, st.Merges)
	}
	if st.DeltaDocs != 0 {
		t.Errorf("delta not drained after successful merge: %d records", st.DeltaDocs)
	}
	checkLiveParity(t, e, c, queryLog(vocab), "post-retry")
}

func TestMergeAbortNeverTearsSnapshot(t *testing.T) {
	const vocab = 12
	base := seedCorpus(41, 60, vocab)
	c := base.clone()
	inj := fault.NewInjector(fault.Plan{Seed: 6, Rules: []fault.Rule{
		{Kind: fault.EngineError, Rate: 1}, // every merge admission fails
	}})
	e, err := New(c.build(t, index.CodecEF), Config{
		Engine:       core.Config{Mode: core.CPUOnly},
		Fault:        inj,
		MergeRetries: -1, // single attempt
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, m := range genScript(42, c.clone(), 20, vocab) {
		apply(t, e, c, m)
	}
	before := e.Stats()
	err = e.Merge()
	if !fault.IsEngineFault(err) {
		t.Fatalf("merge error = %v, want injected engine fault", err)
	}
	after := e.Stats()
	if after.Merges != 0 || after.Aborts != 1 {
		t.Errorf("merges=%d aborts=%d, want 0/1", after.Merges, after.Aborts)
	}
	if after.DeltaDocs != before.DeltaDocs || after.Gen != before.Gen {
		t.Errorf("aborted merge mutated writer state: %+v vs %+v", before, after)
	}
	if e.Stats().MergedGen != 0 {
		t.Errorf("aborted merge advanced MergedGen to %d", e.Stats().MergedGen)
	}
	// Reads after the failed merge are still exact.
	checkLiveParity(t, e, c, queryLog(vocab), "post-abort")
}

// ---------------------------------------------------------------------------
// Merge/query interference: merge re-encoding occupies the shared device
// lanes, so a query arriving behind it queues.
// ---------------------------------------------------------------------------

func TestMergeInterferenceOnSharedDevice(t *testing.T) {
	const vocab = 16
	base := seedCorpus(51, 400, vocab)
	c := base.clone()
	e, err := New(c.build(t, index.CodecEF), Config{
		Engine: core.Config{Mode: core.Hybrid, Device: gpu.New(hwmodel.DefaultGPU(), 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, m := range genScript(52, c.clone(), 120, vocab) {
		apply(t, e, c, m)
	}
	if err := e.MergeAt(0); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.MergeDevice <= 0 {
		t.Errorf("merge billed no device time: %+v", st)
	}
	if st.MergeCPU <= 0 {
		t.Errorf("merge billed no CPU encode time: %+v", st)
	}
	// A query arriving while the merge's device work is still queued waits.
	r, err := e.SearchAt([]string{word(0), word(1)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.GPUWait <= 0 {
		t.Errorf("query behind merge backlog saw no GPUWait (got %v)", r.Stats.GPUWait)
	}
}

// ---------------------------------------------------------------------------
// Mutation validation: bad requests are typed client errors and leave no
// trace in the delta.
// ---------------------------------------------------------------------------

func TestMutationValidation(t *testing.T) {
	c := seedCorpus(61, 10, 8)
	e, err := New(c.build(t, index.CodecEF), Config{Engine: core.Config{Mode: core.CPUOnly}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	cases := []struct {
		name string
		call func() error
	}{
		{"add existing", func() error { return e.Add(3, []string{"x"}) }},
		{"add empty", func() error { return e.Add(100, nil) }},
		{"update empty", func() error { return e.Update(3, nil) }},
		{"delete missing", func() error { return e.Delete(100) }},
	}
	for _, tc := range cases {
		err := tc.call()
		if err == nil || !IsInvalid(err) {
			t.Errorf("%s: err = %v, want invalid-mutation error", tc.name, err)
		}
	}
	if e.Gen() != 0 {
		t.Errorf("rejected mutations advanced gen to %d", e.Gen())
	}
	// Upsert via Update of a brand-new doc is legal; re-adding after a
	// delete is legal too.
	if err := e.Update(200, []string{"x", "y"}); err != nil {
		t.Errorf("upsert update: %v", err)
	}
	if err := e.Delete(200); err != nil {
		t.Errorf("delete upserted doc: %v", err)
	}
	if err := e.Add(200, []string{"z"}); err != nil {
		t.Errorf("re-add after delete: %v", err)
	}
}

// ---------------------------------------------------------------------------
// AutoMerge: crossing the threshold kicks off a background merge that
// eventually drains the delta.
// ---------------------------------------------------------------------------

func TestAutoMergeBackground(t *testing.T) {
	const vocab = 12
	base := seedCorpus(71, 50, vocab)
	c := base.clone()
	e, err := New(c.build(t, index.CodecEF), Config{
		Engine:         core.Config{Mode: core.CPUOnly},
		MergeThreshold: 10,
		AutoMerge:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range genScript(72, c.clone(), 40, vocab) {
		apply(t, e, c, m)
	}
	// The background merge goroutine commits asynchronously; wait for it.
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().Merges == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.Stats().Merges == 0 {
		t.Fatalf("no background merge committed: %+v", e.Stats())
	}
	checkLiveParity(t, e, c, queryLog(vocab), "post-automerge")

	e.Close() // drains any still-in-flight background merge
	if _, err := e.Search([]string{word(0)}); err != ErrClosed {
		t.Errorf("search after close: err = %v, want ErrClosed", err)
	}
	if err := e.Add(9_999, []string{"x"}); err != ErrClosed {
		t.Errorf("add after close: err = %v, want ErrClosed", err)
	}
	if err := e.Merge(); err != ErrClosed {
		t.Errorf("merge after close: err = %v, want ErrClosed", err)
	}
}

// ---------------------------------------------------------------------------
// Snapshot isolation under -race: concurrent Add/Delete/Search with
// background merges. Every result must be bit-identical to a quiesced
// engine holding exactly the first Result.Gen mutations — no torn reads,
// and each reader observes a monotonically advancing generation.
// ---------------------------------------------------------------------------

func TestConcurrentSnapshotIsolation(t *testing.T) {
	const vocab = 10
	base := seedCorpus(81, 40, vocab)
	script := genScript(82, base.clone(), 36, vocab)
	queries := [][]string{{word(0)}, {word(0), word(1)}, {word(1), word(2)}}

	// Precompute, per generation g, the exact expected results over the
	// corpus holding the first g mutations (CPU-only reference: all modes
	// are bit-identical on ranked docs).
	expected := make([]map[int][]docBits, len(script)+1)
	{
		c := base.clone()
		for g := 0; g <= len(script); g++ {
			if g > 0 {
				m := script[g-1]
				switch m.kind {
				case mutDelete:
					delete(c.docs, m.docID)
				default:
					c.docs[m.docID] = m.tokens
				}
			}
			ref, err := core.New(c.build(t, index.CodecEF), core.Config{Mode: core.CPUOnly})
			if err != nil {
				t.Fatal(err)
			}
			expected[g] = make(map[int][]docBits, len(queries))
			for qi, q := range queries {
				r, err := ref.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				expected[g][qi] = bitsOf(r)
			}
		}
	}

	c := base.clone()
	e, err := New(c.build(t, index.CodecEF), Config{
		Engine:         core.Config{Mode: core.Hybrid, Device: gpu.New(hwmodel.DefaultGPU(), 0)},
		MergeThreshold: 8,
		AutoMerge:      true,
	})
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg   sync.WaitGroup
		done = make(chan struct{})
		errs = make(chan string, 64)
	)
	// Writer: replay the script, interleaving explicit merges with the
	// auto-merge goroutines.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i, m := range script {
			var err error
			switch m.kind {
			case mutAdd:
				err = e.Add(m.docID, m.tokens)
			case mutUpdate:
				err = e.Update(m.docID, m.tokens)
			case mutDelete:
				err = e.Delete(m.docID)
			}
			if err != nil {
				errs <- fmt.Sprintf("writer step %d: %v", i, err)
				return
			}
			if i%12 == 11 {
				if err := e.Merge(); err != nil {
					errs <- fmt.Sprintf("writer merge at %d: %v", i, err)
					return
				}
			}
		}
	}()
	// Readers: hammer the fixed queries, checking every result against the
	// generation it claims to have observed.
	for reader := 0; reader < 4; reader++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				for qi, q := range queries {
					r, err := e.Search(q)
					if err != nil {
						errs <- fmt.Sprintf("reader q%d: %v", qi, err)
						return
					}
					if r.Gen > uint64(len(script)) {
						errs <- fmt.Sprintf("reader q%d: gen %d beyond script", qi, r.Gen)
						return
					}
					if r.Gen < lastGen {
						errs <- fmt.Sprintf("reader q%d: gen went backwards %d -> %d", qi, lastGen, r.Gen)
						return
					}
					lastGen = r.Gen
					if got, want := bitsOf(r.Result), expected[r.Gen][qi]; !sameDocs(got, want) {
						errs <- fmt.Sprintf("reader q%d gen %d: torn result\n got=%v\nwant=%v", qi, r.Gen, got, want)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}

	// Final quiesce: the surviving engine collapses to the fully merged
	// corpus and stays exact.
	if err := e.Quiesce(); err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		r, err := e.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := bitsOf(r.Result), expected[len(script)][qi]; !sameDocs(got, want) {
			t.Errorf("post-quiesce q%d: got=%v want=%v", qi, got, want)
		}
	}
	e.Close()
}
