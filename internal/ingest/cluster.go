package ingest

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"griffin/internal/cluster"
	"griffin/internal/exec"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/kernels"
	"griffin/internal/rank"
	"griffin/internal/wal"
	"griffin/internal/workload"
)

// ClusterConfig parameterizes a live-ingestion cluster: per-shard deltas
// over the document-partitioned serving layer, with globally consistent
// collection statistics stamped on every query — the running analogue of
// workload.PartitionIndex's GlobalN scheme.
type ClusterConfig struct {
	// Shards is the initial shard count (0 = 1). Splits grow it.
	Shards int
	// Cluster is the serving-layer template (replicas, routing, engine
	// template, fault injector, ...). Its fault injector also covers the
	// merge path: shard s's merge admission draws at "<Site>.s<s>.merge".
	Cluster cluster.Config
	// Codec selects the compressed forms merged segments materialize
	// (CodecAuto = detect from the seed).
	Codec index.Codec
	// MergeThreshold is the per-shard delta size at which a background
	// merge becomes due (0 = explicit merges only).
	MergeThreshold int
	// AutoMerge launches background shard merges past MergeThreshold.
	AutoMerge bool
	// SplitWatermark is the per-shard live-document count that triggers
	// a background split — a full rebuild into one more shard, with
	// routing (workload.ShardOf over the new count) updated mid-flight.
	// 0 disables splits.
	SplitWatermark int
	// Site is the fault-site base name for the merge path ("ingest").
	Site string
	// MergeRetries bounds abort→retry attempts per merge
	// (0 = DefaultMergeRetries; negative = no retries).
	MergeRetries int
	// WALDir enables durability: every accepted mutation appends to a
	// per-shard write-ahead log under this directory before the caller
	// sees success, and OpenCluster recovers the directory's state.
	// Empty runs the cluster purely in memory (NewCluster exactly).
	WALDir string
	// WALSyncEvery is the per-shard appends-per-fsync policy: 0 (unset)
	// syncs every append — the durable default — negative defers syncing
	// to checkpoints and close, n > 0 syncs every n appends.
	WALSyncEvery int
	// CheckpointEvery persists a background checkpoint after that many
	// accepted mutations (0 = explicit Checkpoint calls only). Requires
	// WALDir.
	CheckpointEvery int
}

// shardState is one shard's writer-side state: its current main segment
// and the delta absorbing the shard's mutations. Guarded by Cluster.mu.
type shardState struct {
	ix   *index.Index
	st   mainStats
	d    *delta
	live int // live documents routed to this shard (watermark signal)
}

// topo is one topology incarnation: a shard count, the serving cluster
// over it, and the per-shard writer state. A split replaces the whole
// topo; per-shard merges mutate shard segments in place (under the
// commit gate, so no query observes the swap mid-flight).
type topo struct {
	n      int
	c      *cluster.Cluster
	shards []*shardState
}

// clusterSnap is the immutable state one query executes against: the
// topology, each shard's (main segment, frozen delta view) pair, and the
// global live collection statistics at one stamp. stamp advances on
// every mutation and every merge/rebuild commit, so snapshot freshness
// is one atomic compare.
type clusterSnap struct {
	topo  *topo
	mains []*index.Index
	views []*View
	gen   uint64
	stamp uint64

	numDocs int
	lenSum  uint64
	lenCnt  int
	// clean marks a fully quiesced, exactly stamped corpus: every delta
	// empty and every shard index carrying exact global statistics
	// (seed or post-rebuild state). Clean queries take the pure
	// frozen-corpus path — byte-identical to a fresh cluster build.
	clean bool
}

func (s *clusterSnap) avgDocLen() float64 {
	if s.lenCnt == 0 {
		return 0
	}
	return float64(s.lenSum) / float64(s.lenCnt)
}

// Cluster is the live-ingestion layer over the sharded serving cluster:
// mutations route to per-shard deltas by workload.ShardOf, queries pin a
// cluster-wide snapshot with globally consistent statistics, background
// merges fold shard deltas into re-encoded shard segments, and a
// shard-size watermark triggers splits that re-partition the corpus into
// more shards with routing updated mid-flight.
type Cluster struct {
	cfg     ClusterConfig
	codec   index.Codec
	cpu     hwmodel.CPUModel
	site    string
	retries int
	bm25    rank.BM25Params

	// gate is the commit gate: queries hold it shared for their whole
	// execution; segment swaps and topology changes hold it exclusive.
	// That pairs each query's pinned views with the engine incarnations
	// that match them — a swap never tears an in-flight query.
	gate sync.RWMutex

	// mu is the writer lock: mutations, freezes, commit bookkeeping.
	mu sync.Mutex
	t  *topo
	// liveLens is the authoritative live document-length table
	// (liveLens[d] == 0 ⇔ d is not live); lenSum/lenCnt/numDocs are the
	// exact index.Builder aggregates over it, maintained incrementally.
	liveLens []uint32
	lenSum   uint64
	lenCnt   int
	numDocs  int
	gen      uint64
	// exact marks shard indexes whose global stamps (GlobalN, NumDocs,
	// DocLens, AvgDocLen) are exact for the live corpus — true from the
	// seed or a rebuild, false after a best-effort per-shard merge.
	exact bool
	stamp uint64

	stampA atomic.Uint64
	genA   atomic.Uint64
	snap   atomic.Pointer[clusterSnap]

	// mergeMu serializes merges and rebuilds.
	mergeMu   sync.Mutex
	merging   atomic.Bool
	splitting atomic.Bool
	bg        sync.WaitGroup
	closing   atomic.Bool

	// store is the write-ahead log (nil without WALDir). Appends happen
	// under c.mu before a mutation is acknowledged.
	store     *wal.Store
	ckpting   atomic.Bool
	sinceCkpt atomic.Int64

	statsMu sync.Mutex
	st      ClusterStats
}

// ClusterStats is the cluster-ingestion telemetry surface.
type ClusterStats struct {
	// Shards is the current shard count (splits grow it).
	Shards int    `json:"shards"`
	Gen    uint64 `json:"gen"`
	// DeltaDocs / Tombstones total the pending (unmerged) records across
	// shards — the freshness signal.
	DeltaDocs  int   `json:"delta_docs"`
	Tombstones int   `json:"tombstones"`
	LiveDocs   int   `json:"live_docs"`
	Adds       int64 `json:"adds"`
	Updates    int64 `json:"updates"`
	Deletes    int64 `json:"deletes"`
	Merges     int64 `json:"merges"`
	Aborts     int64 `json:"aborts"`
	MergedDocs int64 `json:"merged_docs"`
	// Rebuilds counts full re-partitions (Quiesce and splits); Splits
	// counts the ones that grew the shard count.
	Rebuilds    int64         `json:"rebuilds"`
	Splits      int64         `json:"splits"`
	MergeDevice time.Duration `json:"merge_device_ns"`
	MergeCPU    time.Duration `json:"merge_cpu_ns"`
	MergeStall  time.Duration `json:"merge_stall_ns"`
	// ShardDocs / ShardDelta break live and pending documents down per
	// shard (the split watermark's view).
	ShardDocs  []int `json:"shard_docs"`
	ShardDelta []int `json:"shard_delta"`
	// WAL is the durability surface (nil without a WAL): append/sync
	// counters aggregated across shard logs plus recovery accounting.
	WAL *wal.Stats `json:"wal,omitempty"`
}

// Lag returns the pending records not yet folded into shard segments —
// the cluster's freshness signal (the analogue of Stats.Lag).
func (s ClusterStats) Lag() uint64 { return uint64(s.DeltaDocs) }

// NewCluster builds a live-ingestion cluster over a seed index,
// partitioned into cfg.Shards shards.
func NewCluster(seed *index.Index, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	c := &Cluster{
		cfg:     cfg,
		codec:   cfg.Codec,
		cpu:     cfg.Cluster.CPU,
		site:    cfg.Site,
		retries: cfg.MergeRetries,
		exact:   true,
	}
	if c.cpu == (hwmodel.CPUModel{}) {
		c.cpu = hwmodel.DefaultCPU()
	}
	if c.site == "" {
		c.site = "ingest"
	}
	if c.retries == 0 {
		c.retries = DefaultMergeRetries
	}
	if cfg.Codec == CodecAuto {
		c.codec = detectCodec(seed)
	}
	c.bm25 = cfg.Cluster.Engine.BM25
	if c.bm25 == (rank.BM25Params{}) {
		c.bm25 = rank.DefaultBM25()
	}

	c.liveLens = make([]uint32, len(seed.DocLens))
	copy(c.liveLens, seed.DocLens)
	for _, l := range c.liveLens {
		if l > 0 {
			c.lenSum += uint64(l)
			c.lenCnt++
		}
	}
	c.numDocs = seed.NumDocs

	t, err := c.newTopo(seed, cfg.Shards)
	if err != nil {
		return nil, err
	}
	c.t = t
	c.publishLocked()
	return c, nil
}

// newTopo partitions a global index into n shards and builds the serving
// cluster plus fresh per-shard writer state over it.
func (c *Cluster) newTopo(global *index.Index, n int) (*topo, error) {
	ixs, err := workload.PartitionIndex(global, n)
	if err != nil {
		return nil, err
	}
	cc, err := cluster.New(ixs, c.cfg.Cluster)
	if err != nil {
		return nil, err
	}
	t := &topo{n: n, c: cc, shards: make([]*shardState, n)}
	for s, ix := range ixs {
		t.shards[s] = &shardState{ix: ix, st: statsOf(ix), d: newDelta()}
	}
	for d, l := range c.liveLens {
		if l > 0 {
			t.shards[workload.ShardOf(uint32(d), n)].live++
		}
	}
	return t, nil
}

// Close drains background merges/splits, waits out in-flight queries,
// and releases every shard engine's device state. With a WAL attached,
// Close is a durability barrier: every acknowledged mutation is synced
// to disk before Close returns, so a clean shutdown loses nothing even
// under a deferred-sync policy.
func (c *Cluster) Close() {
	if c.store != nil {
		c.store.Sync() // flush before draining; store.Close finishes the job
	}
	c.closing.Store(true)
	c.bg.Wait()
	c.gate.Lock()
	c.mu.Lock()
	c.t.c.Close()
	c.mu.Unlock()
	c.gate.Unlock()
	c.store.Close()
}

// Shards returns the current shard count.
func (c *Cluster) Shards() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.n
}

// Gen returns the writer generation (total accepted mutations).
func (c *Cluster) Gen() uint64 { return c.genA.Load() }

// Cluster returns the current serving cluster (telemetry surface). The
// pointer is only safe for reads that tolerate a concurrent rebuild;
// queries must go through Search.
func (c *Cluster) Cluster() *cluster.Cluster {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.c
}

// Add inserts a new document (docID must not be live).
func (c *Cluster) Add(docID uint32, tokens []string) error {
	return c.mutate(docID, tokens, mutAdd)
}

// Update replaces a document wholesale (upsert).
func (c *Cluster) Update(docID uint32, tokens []string) error {
	return c.mutate(docID, tokens, mutUpdate)
}

// Delete tombstones a live document.
func (c *Cluster) Delete(docID uint32) error {
	return c.mutate(docID, nil, mutDelete)
}

func (c *Cluster) mutate(docID uint32, tokens []string, kind mutKind) error {
	if c.closing.Load() {
		return ErrClosed
	}
	c.mu.Lock()
	live := int(docID) < len(c.liveLens) && c.liveLens[docID] > 0
	switch kind {
	case mutAdd:
		if len(tokens) == 0 {
			c.mu.Unlock()
			return mutErrf("ingest: add doc %d: empty document", docID)
		}
		if live {
			c.mu.Unlock()
			return mutErrf("ingest: add doc %d: already exists (use update)", docID)
		}
	case mutUpdate:
		if len(tokens) == 0 {
			c.mu.Unlock()
			return mutErrf("ingest: update doc %d: empty document", docID)
		}
	case mutDelete:
		if !live {
			c.mu.Unlock()
			return mutErrf("ingest: delete doc %d: not found", docID)
		}
	}

	t := c.t
	s := workload.ShardOf(docID, t.n)
	// Durability barrier: the record must be in the shard's WAL before
	// the mutation is acknowledged. A failed append (wedged log, injected
	// storage fault) rejects the mutation with no state change.
	if c.store != nil {
		if err := c.store.Append(s, wal.Record{
			Gen: c.gen + 1, Op: walOp(kind), DocID: docID, Tokens: tokens,
		}); err != nil {
			c.mu.Unlock()
			return err
		}
	}
	sh := c.applyLocked(t, s, docID, tokens, kind, c.gen+1)

	c.stamp++
	c.stampA.Store(c.stamp)
	c.genA.Store(c.gen)
	pending := len(sh.d.docs)
	overWatermark := c.cfg.SplitWatermark > 0 && sh.live > c.cfg.SplitWatermark
	splitTo := t.n + 1
	c.mu.Unlock()

	c.statsMu.Lock()
	switch kind {
	case mutAdd:
		c.st.Adds++
	case mutUpdate:
		c.st.Updates++
	case mutDelete:
		c.st.Deletes++
	}
	c.statsMu.Unlock()

	if overWatermark && !c.closing.Load() && c.splitting.CompareAndSwap(false, true) {
		c.bg.Add(1)
		go func() {
			defer c.bg.Done()
			defer c.splitting.Store(false)
			_ = c.rebuild(splitTo)
		}()
	} else if c.cfg.AutoMerge && c.cfg.MergeThreshold > 0 && pending >= c.cfg.MergeThreshold &&
		!c.closing.Load() && c.merging.CompareAndSwap(false, true) {
		c.bg.Add(1)
		go func() {
			defer c.bg.Done()
			defer c.merging.Store(false)
			_ = c.MergeShard(s) // surfaced via ClusterStats.Aborts
		}()
	}
	if c.store != nil && c.cfg.CheckpointEvery > 0 &&
		c.sinceCkpt.Add(1) >= int64(c.cfg.CheckpointEvery) &&
		!c.closing.Load() && c.ckpting.CompareAndSwap(false, true) {
		c.bg.Add(1)
		go func() {
			defer c.bg.Done()
			defer c.ckpting.Store(false)
			_ = c.Checkpoint() // failures surface via the WAL stats block
		}()
	}
	return nil
}

// applyLocked commits one accepted mutation's state change at generation
// gen: the shard delta write plus the exact global aggregate bookkeeping
// (index.Builder arithmetic — subtract the old length, add the new,
// track max-live-docID+1). Caller holds c.mu and guarantees the mutation
// was validated (mutate) or previously acknowledged (WAL replay).
func (c *Cluster) applyLocked(t *topo, s int, docID uint32, tokens []string, kind mutKind, gen uint64) *shardState {
	sh := t.shards[s]
	c.gen = gen
	rec := &docRecord{gen: gen}
	if kind == mutDelete {
		rec.deleted = true
	} else {
		rec.tf, rec.length = tokenCounts(tokens)
	}
	sh.d.gen = gen
	sh.d.put(docID, rec)

	for int(docID) >= len(c.liveLens) {
		c.liveLens = append(c.liveLens, make([]uint32, int(docID)-len(c.liveLens)+1)...)
	}
	old := c.liveLens[docID]
	if old > 0 {
		c.lenSum -= uint64(old)
		c.lenCnt--
	}
	if kind == mutDelete {
		c.liveLens[docID] = 0
		sh.live--
		if int(docID)+1 == c.numDocs {
			d := c.numDocs - 1
			for d >= 0 && c.liveLens[d] == 0 {
				d--
			}
			c.numDocs = d + 1
		}
	} else {
		c.liveLens[docID] = rec.length
		c.lenSum += uint64(rec.length)
		c.lenCnt++
		if old == 0 {
			sh.live++
		}
		if int(docID)+1 > c.numDocs {
			c.numDocs = int(docID) + 1
		}
	}
	return sh
}

// publishLocked freezes the current per-shard views and publishes the
// snapshot queries pin. Caller holds c.mu. Views of untouched shards are
// reused from the previous snapshot (freeze slices are immutable).
func (c *Cluster) publishLocked() {
	prev := c.snap.Load()
	t := c.t
	views := make([]*View, t.n)
	mains := make([]*index.Index, t.n)
	allEmpty := true
	for i, sh := range t.shards {
		mains[i] = sh.ix
		var v *View
		if prev != nil && prev.topo == t && prev.mains[i] == sh.ix && prev.views[i].gen == sh.d.gen {
			v = prev.views[i]
		} else {
			v = sh.d.freeze(sh.st)
		}
		views[i] = v
		if !v.Empty() {
			allEmpty = false
		}
	}
	c.stamp++
	c.stampA.Store(c.stamp)
	c.snap.Store(&clusterSnap{
		topo: t, mains: mains, views: views,
		gen: c.gen, stamp: c.stamp,
		numDocs: c.numDocs, lenSum: c.lenSum, lenCnt: c.lenCnt,
		clean: c.exact && allEmpty,
	})
}

func (c *Cluster) refresh() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.snap.Load(); s != nil && s.stamp == c.stamp {
		return
	}
	c.publishLocked()
}

// acquireFresh returns the freshest snapshot with the commit gate held
// shared; the caller must c.gate.RUnlock() when the query finishes.
func (c *Cluster) acquireFresh() (*clusterSnap, error) {
	for {
		if c.closing.Load() {
			return nil, ErrClosed
		}
		if c.snap.Load().stamp != c.stampA.Load() {
			c.refresh()
		}
		c.gate.RLock()
		if c.closing.Load() {
			c.gate.RUnlock()
			return nil, ErrClosed
		}
		s := c.snap.Load()
		if s.stamp == c.stampA.Load() {
			return s, nil
		}
		c.gate.RUnlock()
	}
}

// ClusterResult is a completed cluster query plus the writer generation
// its snapshot observed.
type ClusterResult struct {
	*cluster.Result
	Gen uint64
}

// Search scatter-gathers one conjunctive query against the freshest
// cluster snapshot.
func (c *Cluster) Search(terms []string) (*ClusterResult, error) {
	return c.SearchContext(nil, terms)
}

// SearchContext is Search with a cancellation context.
func (c *Cluster) SearchContext(ctx context.Context, terms []string) (*ClusterResult, error) {
	return c.search(ctx, terms, 0, false, cluster.QueryOpts{})
}

// SearchOptsContext is SearchContext with per-query overload options
// (deadline budget, criticality class), threaded through to the
// underlying cluster. Zero opts is SearchContext exactly.
func (c *Cluster) SearchOptsContext(ctx context.Context, terms []string, qo cluster.QueryOpts) (*ClusterResult, error) {
	return c.search(ctx, terms, 0, false, qo)
}

// SearchAt runs one cluster query arriving at an explicit simulated time
// on every shard runtime's timeline (the load-study entry point).
func (c *Cluster) SearchAt(terms []string, arrival time.Duration) (*ClusterResult, error) {
	return c.search(nil, terms, arrival, true, cluster.QueryOpts{})
}

func (c *Cluster) search(ctx context.Context, terms []string, arrival time.Duration, timed bool, qo cluster.QueryOpts) (*ClusterResult, error) {
	s, err := c.acquireFresh()
	if err != nil {
		return nil, err
	}
	defer c.gate.RUnlock()

	var ov cluster.Overlay
	if !s.clean {
		ov = c.overlayFor(s, terms)
	}
	var res *cluster.Result
	if timed {
		res, err = s.topo.c.SearchOverlayAtWith(ctx, terms, arrival, ov, qo)
	} else {
		res, err = s.topo.c.SearchOverlayWith(ctx, terms, ov, qo)
	}
	if err != nil {
		return nil, err
	}
	return &ClusterResult{Result: res, Gen: s.gen}, nil
}

// shardOverlays is the per-query cluster.Overlay: one exec overlay per
// shard, sharing the query's global document frequencies and scorer.
type shardOverlays []*exec.Overlay

func (o shardOverlays) Shard(s int) *exec.Overlay { return o[s] }

// overlayFor resolves the query's global live document frequencies —
// df(t) = Σ over shards of (shard main df − shadowed + shard delta df),
// the running analogue of the GlobalN stamp — and builds each shard's
// overlay around them. Shards with pending mutations get the full delta
// overlay; quiet shards get a scorer-only overlay, because their stamped
// GlobalN/NumDocs go stale the moment any other shard mutates.
func (c *Cluster) overlayFor(s *clusterSnap, terms []string) cluster.Overlay {
	df := make(map[string]int, len(terms))
	for _, t := range terms {
		total := 0
		for i := range s.views {
			mainN := 0
			if pl, ok := s.mains[i].Lookup(t); ok {
				mainN = pl.N
			}
			if s.views[i].Empty() {
				total += mainN
			} else {
				n, _ := s.views[i].liveDF(t, mainN, s.mains[i])
				total += n
			}
		}
		df[t] = total
	}
	sc := statScorer(s.numDocs, s.avgDocLen(), c.bm25)
	ovs := make(shardOverlays, len(s.views))
	for i := range s.views {
		if s.views[i].Empty() {
			ovs[i] = &exec.Overlay{Scorer: &shardScorer{main: s.mains[i], scorer: sc, df: df}}
		} else {
			ovs[i] = newOverlay(s.views[i], s.mains[i], sc, df)
		}
	}
	return ovs
}

// shardScorer scores a quiet shard's candidates with rank.Scorer's exact
// float discipline but global *live* statistics: the snapshot's scorer
// (live NumDocs/AvgDocLen) and the query's resolved global document
// frequencies in place of the stamped-at-build GlobalN.
type shardScorer struct {
	main   *index.Index
	scorer *rank.Scorer
	df     map[string]int
}

func (s *shardScorer) ScoreCandidates(lists []*index.PostingList, candidates []uint32) ([]kernels.ScoredDoc, hwmodel.CPUWork) {
	var work hwmodel.CPUWork
	out := make([]kernels.ScoredDoc, len(candidates))
	for i, d := range candidates {
		var score float64
		for _, pl := range lists {
			tf, _, ok := pl.FreqForDoc(d)
			if ok {
				score += s.scorer.ScoreTerm(s.df[pl.Term], tf, s.main.DocLen(d))
			}
		}
		work.ScoredDocs += int64(len(lists))
		out[i] = kernels.ScoredDoc{DocID: d, Score: float32(score)}
	}
	return out, work
}

// MergeShard folds shard s's delta into a freshly re-encoded shard
// segment and swaps it into every replica atomically. Aborted merges
// (injected faults) leave the published state untouched and retry up to
// the configured budget.
func (c *Cluster) MergeShard(s int) error { return c.mergeShard(s, 0, false) }

// MergeShardAt is MergeShard anchored at an explicit simulated arrival
// on the shard's device timeline.
func (c *Cluster) MergeShardAt(s int, arrival time.Duration) error {
	return c.mergeShard(s, arrival, true)
}

func (c *Cluster) mergeShard(s int, arrival time.Duration, timed bool) error {
	c.mergeMu.Lock()
	defer c.mergeMu.Unlock()
	if c.closing.Load() {
		return ErrClosed
	}
	attempts := c.retries + 1
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		err = c.mergeShardOnce(s, arrival, timed)
		if err == nil {
			return nil
		}
		if !injected(err) {
			return err
		}
		c.statsMu.Lock()
		c.st.Aborts++
		c.statsMu.Unlock()
	}
	return err
}

func (c *Cluster) mergeShardOnce(s int, arrival time.Duration, timed bool) error {
	c.mu.Lock()
	t := c.t
	if s < 0 || s >= t.n {
		c.mu.Unlock()
		return fmt.Errorf("ingest: merge shard %d of %d", s, t.n)
	}
	sh := t.shards[s]
	v := sh.d.freeze(sh.st)
	main := sh.ix
	c.mu.Unlock()
	if v.Empty() {
		return nil
	}
	upto := v.gen

	var stall time.Duration
	if inj := c.cfg.Cluster.Fault; inj != nil {
		stl, err := inj.AdmitQuery(fmt.Sprintf("%s.s%d.merge", c.site, s), arrival)
		if err != nil {
			return err
		}
		stall = stl
	}

	plan, err := planMerge(main, v)
	if err != nil {
		return err
	}

	// Price the re-encode on the shard's replica-0 node — the same
	// copy/compute lanes that replica's queries use, so merge/query
	// interference is visible both ways and device faults abort the
	// merge through the ordinary submit hooks.
	var devTime, cpuTime time.Duration
	if node := t.c.ShardNode(s); node != nil && len(plan.changed) > 0 {
		var h *gpu.QueryStream
		if timed {
			h = node.AdmitAtOn(0, arrival)
		} else {
			h = node.AdmitOn(0)
		}
		gm := node.Model()
		for _, ch := range plan.changed {
			if err := priceChanged(h, &c.cpu, gm, ch); err != nil {
				h.Release()
				return err
			}
		}
		devTime = h.Stream().Elapsed()
		h.Release()
	}
	for _, ch := range plan.changed {
		cpuTime += c.cpu.Time(hwmodel.CPUWork{
			EFDecodedElems: int64(ch.merged),
			MergedElements: int64(ch.oldN + ch.merged),
		})
	}

	ix2, err := plan.build(c.codec)
	if err != nil {
		return fmt.Errorf("ingest: shard %d merge build: %w", s, err)
	}

	// Commit: drain in-flight queries at the gate, stamp the segment
	// with the current global statistics (best effort — overlays carry
	// the exact live values while the cluster is dirty), swap it into
	// every replica, drop the covered records, publish.
	c.gate.Lock()
	c.mu.Lock()
	if c.t != t {
		// A rebuild superseded this topology; its shards already hold
		// every record the merge covered.
		c.mu.Unlock()
		c.gate.Unlock()
		return nil
	}
	ix2.NumDocs = c.numDocs
	lens := make([]uint32, c.numDocs)
	copy(lens, c.liveLens[:min(len(c.liveLens), c.numDocs)])
	ix2.DocLens = lens
	if c.lenCnt > 0 {
		ix2.AvgDocLen = float64(c.lenSum) / float64(c.lenCnt)
	} else {
		ix2.AvgDocLen = 0
	}
	if err := t.c.ReplaceShard(s, ix2); err != nil {
		c.mu.Unlock()
		c.gate.Unlock()
		return err
	}
	sh.d.drop(upto)
	sh.ix = ix2
	sh.st = statsOf(ix2)
	c.exact = false
	c.publishLocked()
	c.mu.Unlock()
	c.gate.Unlock()

	c.statsMu.Lock()
	c.st.Merges++
	c.st.MergedDocs += int64(v.Docs())
	c.st.MergeDevice += devTime
	c.st.MergeCPU += cpuTime
	c.st.MergeStall += stall
	c.statsMu.Unlock()
	return nil
}

// Quiesce rebuilds the cluster over the live corpus at the current shard
// count: every delta folds into freshly partitioned shard segments with
// exact global stamps, so subsequent queries take the pure frozen-corpus
// path — byte-identical to a cluster freshly built over the same logical
// corpus.
func (c *Cluster) Quiesce() error { return c.rebuild(0) }

// Split rebuilds into one more shard than the current topology — the
// explicit form of the watermark-triggered split.
func (c *Cluster) Split() error {
	c.mu.Lock()
	n := c.t.n + 1
	c.mu.Unlock()
	return c.rebuild(n)
}

// rebuild re-partitions the live corpus into n shards (0 = keep the
// current count) and swaps the whole topology: a new serving cluster
// with fresh deltas, routing (ShardOf over n) updated for queries and
// mutations alike. Writes block for the duration; reads keep serving the
// pinned snapshot until the commit gate swaps them to the new topology.
func (c *Cluster) rebuild(n int) error {
	c.mergeMu.Lock()
	defer c.mergeMu.Unlock()
	if c.closing.Load() {
		return ErrClosed
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.t
	grow := n > t.n
	if n <= 0 {
		n = t.n
	}

	global, err := c.globalBuildLocked(t)
	if err != nil {
		return err
	}
	t2, err := c.newTopo(global, n)
	if err != nil {
		return err
	}
	// Grow the WAL before the routing swap: the manifest commits the new
	// shard count first, so a crash between the two recovers with every
	// already-written record still reachable (grow-only, nil-safe).
	if err := c.store.Reshard(n); err != nil {
		t2.c.Close()
		return err
	}

	c.gate.Lock()
	c.t = t2
	c.exact = true
	c.publishLocked()
	c.gate.Unlock()
	t.c.Close() // no queries in flight past the gate: retire the old engines

	c.statsMu.Lock()
	c.st.Rebuilds++
	if grow {
		c.st.Splits++
	}
	c.statsMu.Unlock()
	return nil
}

// globalBuildLocked folds every shard's (shadow-filtered main ∪ delta)
// into one global index over the live corpus — the exact build a fresh
// ingestion-free corpus would produce. Caller holds c.mu.
func (c *Cluster) globalBuildLocked(t *topo) (*index.Index, error) {
	type slice struct {
		ids   []uint32
		freqs []uint32
	}
	terms := make(map[string][]slice)
	for _, sh := range t.shards {
		v := sh.d.freeze(sh.st)
		seen := make(map[string]bool)
		for _, term := range sh.ix.Terms() {
			pl, _ := sh.ix.Lookup(term)
			ids, freqs := mergePostings(pl, pl.DocIDs(), v, term)
			seen[term] = true
			if len(ids) > 0 {
				terms[term] = append(terms[term], slice{ids, freqs})
			}
		}
		for term := range v.postings {
			if seen[term] {
				continue
			}
			ids, freqs := mergePostings(nil, nil, v, term)
			if len(ids) > 0 {
				terms[term] = append(terms[term], slice{ids, freqs})
			}
		}
	}

	b := index.NewBuilder(c.codec)
	for term, parts := range terms {
		// Shard slices are ascending and docID-disjoint (modulo routing):
		// a k-way min-merge restores the global ascending order.
		idx := make([]int, len(parts))
		ids := make([]uint32, 0)
		freqs := make([]uint32, 0)
		for {
			best := -1
			for p := range parts {
				if idx[p] >= len(parts[p].ids) {
					continue
				}
				if best < 0 || parts[p].ids[idx[p]] < parts[best].ids[idx[best]] {
					best = p
				}
			}
			if best < 0 {
				break
			}
			ids = append(ids, parts[best].ids[idx[best]])
			freqs = append(freqs, parts[best].freqs[idx[best]])
			idx[best]++
		}
		if err := b.AddPostings(term, ids, freqs); err != nil {
			return nil, fmt.Errorf("ingest: rebuild term %q: %w", term, err)
		}
	}
	for d := 0; d < c.numDocs && d < len(c.liveLens); d++ {
		if c.liveLens[d] > 0 {
			b.SetDocLen(uint32(d), c.liveLens[d])
		}
	}
	return b.Build()
}

// NeedsMerge reports the lowest-numbered shard at (or past) the merge
// threshold, -1 when none is due.
func (c *Cluster) NeedsMerge() int {
	if c.cfg.MergeThreshold <= 0 {
		return -1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for s, sh := range c.t.shards {
		if len(sh.d.docs) >= c.cfg.MergeThreshold {
			return s
		}
	}
	return -1
}

// Stats returns the cluster-ingestion telemetry.
func (c *Cluster) Stats() ClusterStats {
	c.statsMu.Lock()
	st := c.st
	c.statsMu.Unlock()
	c.mu.Lock()
	st.Gen = c.gen
	st.Shards = c.t.n
	st.LiveDocs = c.lenCnt
	st.ShardDocs = make([]int, c.t.n)
	st.ShardDelta = make([]int, c.t.n)
	for s, sh := range c.t.shards {
		st.ShardDocs[s] = sh.live
		st.ShardDelta[s] = len(sh.d.docs)
		st.DeltaDocs += len(sh.d.docs)
		for _, rec := range sh.d.docs {
			if rec.deleted {
				st.Tombstones++
			}
		}
	}
	c.mu.Unlock()
	if c.store != nil {
		w := c.store.Stats()
		st.WAL = &w
	}
	return st
}
