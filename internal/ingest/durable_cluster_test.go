package ingest

import (
	"fmt"
	"testing"

	"griffin/internal/cluster"
	"griffin/internal/core"
	"griffin/internal/fault"
	"griffin/internal/index"
)

func TestOpenClusterWithoutWALDirMatchesNew(t *testing.T) {
	const vocab = 10
	lc := seedCorpus(401, 60, vocab)
	c, err := OpenCluster(lc.build(t, index.CodecEF), ClusterConfig{
		Shards:  2,
		Cluster: cluster.Config{Engine: core.Config{Mode: core.CPUOnly}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.store != nil {
		t.Fatalf("OpenCluster without WALDir attached a store")
	}
	for _, m := range genScript(402, lc.clone(), 20, vocab) {
		applyCluster(t, c, lc, m)
	}
	if st := c.Stats(); st.WAL != nil {
		t.Fatalf("no-WAL cluster exposes a wal stats block: %+v", st.WAL)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint on a no-WAL cluster must be a no-op: %v", err)
	}
	if c.Wedged() != nil {
		t.Fatalf("no-WAL cluster reports wedged")
	}
	checkClusterParity(t, c, lc, queryLog(vocab), "no-wal")
}

// TestClusterCrashRecoveryParity is the tentpole invariant at the
// cluster layer: per-shard WALs stitch back into one generation-ordered
// history, and recover → quiesce matches a fresh build over the
// acknowledged prefix at every crash point — including points straddling
// a shard merge and a checkpoint.
func TestClusterCrashRecoveryParity(t *testing.T) {
	const vocab = 14
	base := seedCorpus(411, 90, vocab)
	script := genScript(412, base.clone(), 36, vocab)
	for _, k := range []int{0, 5, 13, 21, len(script)} {
		t.Run(fmt.Sprintf("crash-after-%d", k), func(t *testing.T) {
			dir := t.TempDir()
			cfg := ClusterConfig{
				Shards:  2,
				Cluster: cluster.Config{Engine: core.Config{Mode: core.CPUOnly}},
				WALDir:  dir,
			}
			lc := base.clone()
			c, err := OpenCluster(base.clone().build(t, index.CodecEF), cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < k; i++ {
				applyCluster(t, c, lc, script[i])
				if i == 7 { // a committed shard merge mid-run
					if err := c.MergeShard(0); err != nil {
						t.Fatal(err)
					}
				}
				if i == 12 { // a committed checkpoint mid-run
					if err := c.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			c.Crash()

			r, err := OpenCluster(base.clone().build(t, index.CodecEF), cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if got := r.Gen(); got != uint64(k) {
				t.Fatalf("recovered gen %d, want %d", got, k)
			}
			checkClusterParity(t, r, lc, queryLog(vocab), "recovered-live")
			if err := r.Quiesce(); err != nil {
				t.Fatal(err)
			}
			checkClusterParity(t, r, lc, queryLog(vocab), "recovered-quiesced")
		})
	}
}

// TestClusterSplitRecovery: a split re-partitions into more shards and
// commits the new count to the manifest before the routing swap, so a
// crash after the split — with post-split mutations routed by the new
// topology — recovers at the grown shard count even when the caller's
// config still names the old one.
func TestClusterSplitRecovery(t *testing.T) {
	const vocab = 12
	base := seedCorpus(421, 80, vocab)
	script := genScript(422, base.clone(), 30, vocab)
	dir := t.TempDir()
	cfg := ClusterConfig{
		Shards:  2,
		Cluster: cluster.Config{Engine: core.Config{Mode: core.CPUOnly}},
		WALDir:  dir,
	}
	lc := base.clone()
	c, err := OpenCluster(base.clone().build(t, index.CodecEF), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range script[:15] {
		applyCluster(t, c, lc, m)
	}
	if err := c.Split(); err != nil {
		t.Fatal(err)
	}
	for _, m := range script[15:] {
		applyCluster(t, c, lc, m)
	}
	if got := c.Shards(); got != 3 {
		t.Fatalf("post-split shards = %d, want 3", got)
	}
	c.Crash()

	// Reopen with the stale 2-shard config: the manifest wins.
	r, err := OpenCluster(base.clone().build(t, index.CodecEF), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Shards(); got != 3 {
		t.Fatalf("recovered shards = %d, want the manifest's 3", got)
	}
	if got := r.Gen(); got != uint64(len(script)) {
		t.Fatalf("recovered gen %d, want %d", got, len(script))
	}
	checkClusterParity(t, r, lc, queryLog(vocab), "post-split-recovery")
	if err := r.Quiesce(); err != nil {
		t.Fatal(err)
	}
	checkClusterParity(t, r, lc, queryLog(vocab), "post-split-quiesced")
}

// TestClusterWedgedShardKeepsOthersWritable: a storage fault wedges one
// shard's log — mutations routed there are rejected unacknowledged while
// other shards keep accepting — and the stitched recovery replays the
// full interleaved acknowledged history (gens stay contiguous because a
// failed append consumes no generation).
func TestClusterWedgedShardKeepsOthersWritable(t *testing.T) {
	const vocab = 12
	base := seedCorpus(431, 80, vocab)
	script := genScript(432, base.clone(), 40, vocab)
	dir := t.TempDir()
	inj := fault.NewInjector(fault.Plan{Seed: 11, Rules: []fault.Rule{
		{Kind: fault.TornWrite, Rate: 1, After: 6, Until: 7},
	}})
	cfg := ClusterConfig{
		Shards:  2,
		Cluster: cluster.Config{Engine: core.Config{Mode: core.CPUOnly}, Fault: inj},
		WALDir:  dir,
	}
	lc := base.clone()
	c, err := OpenCluster(base.clone().build(t, index.CodecEF), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var acked, rejected int
	for _, m := range script {
		var err error
		switch m.kind {
		case mutAdd:
			err = c.Add(m.docID, m.tokens)
		case mutUpdate:
			err = c.Update(m.docID, m.tokens)
		case mutDelete:
			err = c.Delete(m.docID)
		}
		if err != nil {
			switch {
			case fault.IsStorageFault(err):
				rejected++
			case IsInvalid(err):
				// The script was generated assuming every mutation lands;
				// once the wedged shard rejects one, later script entries
				// touching that document fail validation. Skip them — the
				// corpus tracks only what the cluster acknowledged.
			default:
				t.Fatalf("mutation %+v: %v", m, err)
			}
			continue
		}
		acked++
		switch m.kind {
		case mutDelete:
			delete(lc.docs, m.docID)
		default:
			lc.docs[m.docID] = m.tokens
		}
	}
	if rejected == 0 {
		t.Fatalf("fault never fired: all %d mutations acknowledged", len(script))
	}
	if acked == 0 {
		t.Fatalf("both shards wedged: no mutation acknowledged")
	}
	if c.Wedged() == nil {
		t.Fatalf("cluster does not report wedged")
	}
	// Reads still serve on a wedged cluster.
	if _, err := c.Search([]string{word(0)}); err != nil {
		t.Fatalf("read on wedged cluster: %v", err)
	}
	c.Crash()

	rcfg := cfg
	rcfg.Cluster.Fault = nil
	r, err := OpenCluster(base.clone().build(t, index.CodecEF), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Gen(); got != uint64(acked) {
		t.Fatalf("recovered gen %d, want the %d acknowledged", got, acked)
	}
	st := r.Stats()
	if st.WAL == nil || st.WAL.TruncatedBytes == 0 {
		t.Errorf("recovery reported no truncated bytes after torn write: %+v", st.WAL)
	}
	checkClusterParity(t, r, lc, queryLog(vocab), "wedged-shard-recovery")
	if err := r.Quiesce(); err != nil {
		t.Fatal(err)
	}
	checkClusterParity(t, r, lc, queryLog(vocab), "wedged-shard-quiesced")
}

// TestClusterCheckpointSuffixReplay: recovery seeds from the checkpoint
// and replays only the WAL suffix past its watermark.
func TestClusterCheckpointSuffixReplay(t *testing.T) {
	const vocab = 12
	base := seedCorpus(441, 70, vocab)
	script := genScript(442, base.clone(), 30, vocab)
	dir := t.TempDir()
	cfg := ClusterConfig{
		Shards:  2,
		Cluster: cluster.Config{Engine: core.Config{Mode: core.CPUOnly}},
		WALDir:  dir,
	}
	lc := base.clone()
	c, err := OpenCluster(base.clone().build(t, index.CodecEF), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range script[:20] {
		applyCluster(t, c, lc, m)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, m := range script[20:] {
		applyCluster(t, c, lc, m)
	}
	c.Crash()

	r, err := OpenCluster(base.clone().build(t, index.CodecEF), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Stats()
	if st.WAL == nil || st.WAL.RecoveredRecords != 10 {
		t.Fatalf("replayed %+v, want a 10-record suffix past the watermark", st.WAL)
	}
	if got := r.Gen(); got != uint64(len(script)) {
		t.Fatalf("recovered gen %d, want %d", got, len(script))
	}
	checkClusterParity(t, r, lc, queryLog(vocab), "ckpt-suffix")
}

// TestClusterCloseDurabilityBarrier: a clean Close syncs every
// acknowledged mutation even under the deferred-sync policy.
func TestClusterCloseDurabilityBarrier(t *testing.T) {
	const vocab = 10
	base := seedCorpus(451, 50, vocab)
	script := genScript(452, base.clone(), 20, vocab)
	dir := t.TempDir()
	cfg := ClusterConfig{
		Shards:  2,
		Cluster: cluster.Config{Engine: core.Config{Mode: core.CPUOnly}},
		WALDir:  dir, WALSyncEvery: -1,
	}
	lc := base.clone()
	c, err := OpenCluster(base.clone().build(t, index.CodecEF), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range script {
		applyCluster(t, c, lc, m)
	}
	c.Close()

	r, err := OpenCluster(base.clone().build(t, index.CodecEF), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Gen(); got != uint64(len(script)) {
		t.Fatalf("recovered %d mutations after clean close, want all %d", got, len(script))
	}
	checkClusterParity(t, r, lc, queryLog(vocab), "post-close")
}
