package ingest

import (
	"fmt"

	"griffin/internal/index"
	"griffin/internal/wal"
)

// Open builds a live-ingestion engine with durability: every accepted
// mutation is appended to a write-ahead log under cfg.WALDir before the
// caller sees success, and startup recovers the directory's state — the
// newest valid checkpoint plus a replay of the WAL suffix past its
// watermark. With cfg.WALDir empty, Open is exactly New: the in-memory
// engine, byte for byte.
//
// ix is the seed segment for a fresh directory (and the recovery base
// when no usable checkpoint exists). Recovery refuses to serve — the
// returned error wraps wal.ErrLineageMismatch — when the directory
// mixes files from two histories; torn or corrupt log tails are
// truncated and reported in Stats().WAL, never replayed.
func Open(ix *index.Index, cfg Config) (*Engine, error) {
	if cfg.WALDir == "" {
		return New(ix, cfg)
	}
	// Resolve the codec from the caller's seed, not the checkpoint: a
	// checkpoint round-trips through the EF-only serialized form, and
	// auto-detection against it would silently drop a CodecBoth
	// configuration after the first recovery.
	if cfg.Codec == CodecAuto {
		cfg.Codec = detectCodec(ix)
	}
	site := cfg.Site
	if site == "" {
		site = "ingest"
	}
	store, rec, err := wal.Open(cfg.WALDir, wal.Options{
		Shards:    1,
		SyncEvery: resolveSyncEvery(cfg.WALSyncEvery),
		Site:      site,
		Fault:     cfg.Fault,
	})
	if err != nil {
		return nil, err
	}
	seed := ix
	if rec.Checkpoint != nil {
		seed = rec.Checkpoint
	}
	e, err := New(seed, cfg)
	if err != nil {
		store.Close()
		return nil, err
	}
	e.store = store

	// Replay the suffix. Records were validated when first acknowledged
	// and the suffix is gen-contiguous, so they apply unconditionally —
	// in particular a tombstone stays a tombstone; recovery never
	// resurrects a deleted document by "fixing up" its record.
	e.mu.Lock()
	e.d.gen = rec.Watermark
	for _, r := range rec.Records {
		e.applyRecordLocked(r)
	}
	e.gen.Store(e.d.gen)
	e.mu.Unlock()
	e.statsMu.Lock()
	e.st.MergedGen = rec.Watermark // the checkpoint segment covers it
	e.statsMu.Unlock()
	return e, nil
}

// resolveSyncEvery maps the config knob to the store's policy: 0 (unset)
// means the durable default of syncing every append; negative means sync
// only at checkpoints, explicit syncs, and close.
func resolveSyncEvery(v int) int {
	switch {
	case v == 0:
		return 1
	case v < 0:
		return 0
	default:
		return v
	}
}

// applyRecordLocked replays one WAL record into the delta. Caller holds
// e.mu. Replay bypasses mutate's validation on purpose: the record was
// validated when acknowledged, and re-validating against a partially
// rebuilt state would reject legitimate history.
func (e *Engine) applyRecordLocked(r wal.Record) {
	e.d.gen = r.Gen
	rec := &docRecord{gen: r.Gen}
	if r.Op == wal.OpDelete {
		rec.deleted = true
	} else {
		rec.tf, rec.length = tokenCounts(r.Tokens)
	}
	e.d.put(r.DocID, rec)
}

// walOp maps a mutation kind to its WAL record op.
func walOp(kind mutKind) wal.Op {
	switch kind {
	case mutAdd:
		return wal.OpAdd
	case mutUpdate:
		return wal.OpUpdate
	default:
		return wal.OpDelete
	}
}

// Checkpoint folds the delta into the main segment (an ordinary merge)
// and persists the merged segment with its generation watermark, so the
// next recovery replays only the WAL suffix past it. No-op without a
// WAL.
func (e *Engine) Checkpoint() error {
	if e.store == nil {
		return nil
	}
	e.mergeMu.Lock()
	defer e.mergeMu.Unlock()
	if e.closing.Load() {
		return ErrClosed
	}
	if err := e.mergeLocked(0, false); err != nil {
		return fmt.Errorf("ingest: checkpoint merge: %w", err)
	}
	// Unsynced appends must be durable before the checkpoint claims to
	// cover their generations (the watermark equals the merged gen, which
	// includes every acknowledged-but-unsynced record folded above).
	if err := e.store.Sync(); err != nil {
		return err
	}
	e.mu.Lock()
	cur := e.snap.Load()
	cur.refs.Add(1)
	e.mu.Unlock()
	defer cur.release()
	e.statsMu.Lock()
	wm := e.st.MergedGen
	e.statsMu.Unlock()
	if err := e.store.Checkpoint(cur.seg.st.ix, wm); err != nil {
		return err
	}
	e.sinceCkpt.Store(0)
	return nil
}

// Crash simulates kill -9 for crash-recovery studies: background work
// stops, the WAL's unsynced tails vanish, files close. Nothing is
// flushed — that is the point. Reopen the directory with Open to
// recover.
func (e *Engine) Crash() {
	e.closing.Store(true)
	e.bg.Wait()
	e.store.Crash()
	if s := e.snap.Load(); s != nil {
		s.release()
	}
}

// Wedged returns the storage fault that wedged the WAL, or nil. A
// wedged engine rejects every further mutation (reads still serve) —
// the degraded-health condition /healthz surfaces.
func (e *Engine) Wedged() error {
	if e.store == nil {
		return nil
	}
	return e.store.Wedged()
}
