package ingest

import (
	"fmt"
	"sort"
	"time"

	"griffin/internal/core"
	"griffin/internal/exec"
	"griffin/internal/fault"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
)

// Merge folds the current delta into a freshly re-encoded main segment
// and swaps it in atomically. The old snapshot retires when its last
// pinned query finishes; an aborted merge (injected fault on the merge
// path) leaves the published snapshot untouched — never a torn state —
// and is retried up to the configured budget.
func (e *Engine) Merge() error { return e.merge(0, false) }

// MergeAt is Merge anchored at an explicit simulated arrival time on
// the shared device timeline — the load-study path, where merge
// re-encoding work queues behind (and delays) concurrent queries.
func (e *Engine) MergeAt(arrival time.Duration) error { return e.merge(arrival, true) }

func (e *Engine) merge(arrival time.Duration, timed bool) error {
	e.mergeMu.Lock()
	defer e.mergeMu.Unlock()
	if e.closing.Load() {
		return ErrClosed
	}
	return e.mergeLocked(arrival, timed)
}

// mergeLocked is the abort-retry loop around one merge. Caller holds
// mergeMu (Merge/MergeAt take it themselves; Checkpoint holds it across
// the merge and the checkpoint write so the persisted segment is the
// one the watermark describes).
func (e *Engine) mergeLocked(arrival time.Duration, timed bool) error {
	attempts := e.retries + 1
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		err = e.mergeOnce(arrival, timed)
		if err == nil {
			return nil
		}
		if !injected(err) {
			return err
		}
		e.statsMu.Lock()
		e.st.Aborts++
		e.statsMu.Unlock()
	}
	return err
}

// injected reports whether a merge failure came from the fault injector
// (abort→retry) rather than a hard internal error.
func injected(err error) bool {
	return fault.IsDeviceFault(err) || fault.IsEngineFault(err)
}

// Quiesce merges until the delta is empty: after it returns (without
// error and with no concurrent writers), every accepted mutation is
// re-encoded into the compressed main segment and queries take the
// frozen-corpus path — byte-identical to a freshly built engine over
// the same logical corpus.
func (e *Engine) Quiesce() error {
	for {
		e.mu.Lock()
		empty := len(e.d.docs) == 0
		e.mu.Unlock()
		if empty {
			return nil
		}
		if err := e.Merge(); err != nil {
			return err
		}
	}
}

// mergeOnce runs one merge attempt: freeze, price, re-encode, swap.
func (e *Engine) mergeOnce(arrival time.Duration, timed bool) error {
	// Pin the segment and freeze a view covering every mutation so far.
	// Mutations landing after this point survive the merge in the delta
	// and correctly shadow the merged segment.
	e.mu.Lock()
	cur := e.snap.Load()
	if cur.view.gen != e.d.gen {
		v := e.d.freeze(cur.seg.st)
		e.snap.Store(newSnapshot(cur.seg, v))
		cur.release()
		cur = e.snap.Load()
	}
	cur.refs.Add(1) // safe under e.mu: swaps hold the writer lock too
	e.mu.Unlock()
	defer cur.release()

	v := cur.view
	if v.Empty() {
		return nil
	}
	main := cur.seg.st.ix
	upto := v.gen

	// Fault site: the merge admission draw ("<site>.merge"). An ERR rule
	// aborts the attempt before any work; a STALL rule delays it.
	var stall time.Duration
	if e.cfg.Fault != nil {
		at := arrival
		s, err := e.cfg.Fault.AdmitQuery(e.site+".merge", at)
		if err != nil {
			return err
		}
		stall = s
	}

	plan, err := planMerge(main, v)
	if err != nil {
		return err
	}

	// Price the re-encode. Changed lists pay the device path — upload the
	// old compressed blocks, Para-EF decompress, migrate the expansion
	// back — through the *shared* node runtime, so merge work occupies
	// the same copy/compute lanes queries use (interference both ways)
	// and passes the per-device fault hooks (a device fault aborts the
	// merge). Unchanged lists are segment-copied for free. Encoding
	// itself is host work, billed on the CPU model.
	var devTime, cpuTime time.Duration
	if node := cur.seg.eng.Node(); node != nil && len(plan.changed) > 0 {
		var h *gpu.QueryStream
		if timed {
			h = node.AdmitAtOn(0, arrival)
		} else {
			h = node.AdmitOn(0)
		}
		gm := node.Model()
		for _, ch := range plan.changed {
			if err := priceChanged(h, &e.cpu, gm, ch); err != nil {
				h.Release()
				return err
			}
		}
		devTime = h.Stream().Elapsed()
		h.Release()
	}
	for _, ch := range plan.changed {
		cpuTime += e.cpu.Time(hwmodel.CPUWork{
			EFDecodedElems: int64(ch.merged),
			MergedElements: int64(ch.oldN + ch.merged),
		})
	}

	ix2, err := plan.build(e.codec)
	if err != nil {
		return fmt.Errorf("ingest: merge build: %w", err)
	}

	// The successor engine adopts the node: device timelines, submit
	// hooks, and the batching stage survive the swap, so in-flight
	// queries on the old segment and new arrivals on this one contend
	// for the same modeled devices.
	ncfg := e.cfg.Engine
	ncfg.Node = cur.seg.eng.Node()
	ncfg.Runtime = nil
	if ncfg.Node != nil {
		ncfg.Device = nil
	}
	eng2, err := core.New(ix2, ncfg)
	if err != nil {
		return fmt.Errorf("ingest: merge engine: %w", err)
	}

	// Commit: drop covered records, publish the (new segment, residual
	// delta) snapshot, retire the old one. mergeMu guarantees cur.seg is
	// still the live segment.
	e.mu.Lock()
	e.d.drop(upto)
	seg2 := &segment{eng: eng2, st: statsOf(ix2)}
	v2 := e.d.freeze(seg2.st)
	old := e.snap.Load()
	e.snap.Store(newSnapshot(seg2, v2))
	e.mu.Unlock()
	old.release()

	e.statsMu.Lock()
	e.st.Merges++
	if e.st.MergedGen < upto {
		e.st.MergedGen = upto
	}
	e.st.MergedDocs += int64(v.Docs())
	e.st.MergeDevice += devTime
	e.st.MergeCPU += cpuTime
	e.st.MergeStall += stall
	e.statsMu.Unlock()
	return nil
}

// changedList describes one posting list the merge re-encodes.
type changedList struct {
	term   string
	old    *index.PostingList // nil for delta-only terms
	oldN   int
	merged int
	ids    []uint32
	freqs  []uint32
}

// mergePlan is the merge's logical output: re-encoded lists, shared
// lists, and the live document lengths.
type mergePlan struct {
	changed []changedList
	shared  []*index.PostingList
	docLens map[uint32]uint32
}

// build materializes the plan through the ordinary index builder — the
// exact constructor a fresh build over the live corpus would use, which
// is what makes quiesced golden parity hold by construction.
func (p *mergePlan) build(codec index.Codec) (*index.Index, error) {
	b := index.NewBuilder(codec)
	for _, pl := range p.shared {
		b.AddPrebuilt(pl)
	}
	for _, ch := range p.changed {
		if len(ch.ids) == 0 {
			continue // fully tombstoned: the term leaves the dictionary
		}
		if err := b.AddPostings(ch.term, ch.ids, ch.freqs); err != nil {
			return nil, err
		}
	}
	for id, l := range p.docLens {
		b.SetDocLen(id, l)
	}
	return b.Build()
}

// planMerge computes the merged logical corpus: every main term filtered
// through the shadow set and unioned with the delta's live postings,
// plus delta-only terms, plus the live document-length map.
func planMerge(main *index.Index, v *View) (*mergePlan, error) {
	p := &mergePlan{docLens: make(map[uint32]uint32)}

	for d, l := range main.DocLens {
		if l > 0 && v.docs[uint32(d)] == nil {
			p.docLens[uint32(d)] = l
		}
	}
	for id, rec := range v.docs {
		if rec.live() {
			p.docLens[id] = rec.length
		}
	}

	for _, term := range main.Terms() {
		pl, _ := main.Lookup(term)
		deltaIDs := v.postings[term]
		ids := pl.DocIDs()
		shadowed := false
		for _, d := range ids {
			if v.docs[d] != nil {
				shadowed = true
				break
			}
		}
		if !shadowed && len(deltaIDs) == 0 {
			p.shared = append(p.shared, pl)
			continue
		}
		mIDs, mFreqs := mergePostings(pl, ids, v, term)
		p.changed = append(p.changed, changedList{
			term: term, old: pl, oldN: pl.N, merged: len(mIDs), ids: mIDs, freqs: mFreqs,
		})
	}

	// Delta-only terms (absent from the main dictionary), sorted for a
	// deterministic device-submission order.
	var fresh []string
	for term := range v.postings {
		if _, ok := main.Lookup(term); !ok {
			fresh = append(fresh, term)
		}
	}
	sort.Strings(fresh)
	for _, term := range fresh {
		mIDs, mFreqs := mergePostings(nil, nil, v, term)
		p.changed = append(p.changed, changedList{
			term: term, merged: len(mIDs), ids: mIDs, freqs: mFreqs,
		})
	}
	return p, nil
}

// mergePostings merges one term's live main postings (shadow-filtered)
// with its live delta postings, both ascending.
func mergePostings(pl *index.PostingList, mainIDs []uint32, v *View, term string) ([]uint32, []uint32) {
	deltaIDs := v.postings[term]
	ids := make([]uint32, 0, len(mainIDs)+len(deltaIDs))
	freqs := make([]uint32, 0, len(mainIDs)+len(deltaIDs))
	i, j := 0, 0
	for i < len(mainIDs) || j < len(deltaIDs) {
		if i < len(mainIDs) && v.docs[mainIDs[i]] != nil {
			i++ // shadowed: superseded or tombstoned
			continue
		}
		takeMain := j >= len(deltaIDs) || (i < len(mainIDs) && mainIDs[i] < deltaIDs[j])
		if takeMain {
			if i >= len(mainIDs) {
				break
			}
			ids = append(ids, mainIDs[i])
			freqs = append(freqs, pl.FreqOf(i))
			i++
		} else {
			d := deltaIDs[j]
			ids = append(ids, d)
			freqs = append(freqs, v.docs[d].tf[term])
			j++
		}
	}
	return ids, freqs
}

// priceChanged bills one re-encoded list's device path on the shared
// runtime: upload the old compressed blocks, decompress, migrate the
// merged expansion back to the host. Each submission passes the
// device's fault hook, so an injected device fault aborts the merge.
func priceChanged(h *gpu.QueryStream, cpuM *hwmodel.CPUModel, gm *hwmodel.GPUModel, ch changedList) error {
	type step struct {
		class gpu.EngineClass
		op    exec.Op
	}
	var steps []step
	if ch.old != nil {
		steps = append(steps,
			step{gpu.CopyEngine, exec.Op{Kind: exec.OpUpload, Arg: exec.ListOperand(ch.old)}},
			step{gpu.ComputeEngine, exec.Op{Kind: exec.OpDecompress, Arg: exec.ListOperand(ch.old), LongLen: ch.oldN}},
		)
	} else {
		steps = append(steps,
			step{gpu.CopyEngine, exec.Op{Kind: exec.OpUpload, ShortLen: ch.merged}},
		)
	}
	steps = append(steps, step{gpu.CopyOutEngine, exec.Op{Kind: exec.OpMigrate, ShortLen: ch.merged}})
	for _, s := range steps {
		est := s.op.Estimate(cpuM, gm)
		if err := h.Submit(s.class, func(st *gpu.Stream) error {
			st.AddTime(est)
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}
