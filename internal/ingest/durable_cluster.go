package ingest

import (
	"fmt"

	"griffin/internal/index"
	"griffin/internal/wal"
	"griffin/internal/workload"
)

// OpenCluster builds a live-ingestion cluster with durability: one WAL
// shard log per index shard under cfg.WALDir, each mutation appended to
// its routed shard's log before the caller sees success, and startup
// recovery of the directory's state — the newest valid checkpoint plus
// a replay of the stitched per-shard WAL suffix past its watermark.
// With cfg.WALDir empty, OpenCluster is exactly NewCluster.
//
// The shard count recovers from the atomically committed manifest: a
// split (re-partition into more shards) survives a crash even when the
// caller's config still names the old count, because the manifest is
// committed before the routing swap. Growing past the manifest is
// honored; the directory is never shrunk.
func OpenCluster(seed *index.Index, cfg ClusterConfig) (*Cluster, error) {
	if cfg.WALDir == "" {
		return NewCluster(seed, cfg)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	// Resolve the codec from the caller's seed, not the checkpoint (the
	// checkpoint round-trips through the EF-only serialized form; see
	// Open).
	if cfg.Codec == CodecAuto {
		cfg.Codec = detectCodec(seed)
	}
	site := cfg.Site
	if site == "" {
		site = "ingest"
	}
	store, rec, err := wal.Open(cfg.WALDir, wal.Options{
		Shards:    cfg.Shards,
		SyncEvery: resolveSyncEvery(cfg.WALSyncEvery),
		Site:      site,
		Fault:     cfg.Cluster.Fault,
	})
	if err != nil {
		return nil, err
	}
	n := cfg.Shards
	if rec.Shards > n {
		n = rec.Shards // the directory's topology outgrew the config
	}
	if err := store.Reshard(n); err != nil {
		store.Close()
		return nil, err
	}
	cfg.Shards = n

	seedIx := seed
	if rec.Checkpoint != nil {
		seedIx = rec.Checkpoint
	}
	c, err := NewCluster(seedIx, cfg)
	if err != nil {
		store.Close()
		return nil, err
	}
	c.store = store

	// Replay the acknowledged suffix. Records route by the *current*
	// topology — replay is logical, so the shard log a record was
	// durably written to need not match the shard its document now
	// lives in (split-watermark re-partitions recover consistently).
	c.mu.Lock()
	c.gen = rec.Watermark
	t := c.t
	for _, r := range rec.Records {
		s := workload.ShardOf(r.DocID, t.n)
		c.applyLocked(t, s, r.DocID, r.Tokens, kindOf(r.Op), r.Gen)
	}
	c.genA.Store(c.gen)
	c.publishLocked()
	c.mu.Unlock()
	return c, nil
}

// kindOf maps a WAL record op back to its mutation kind (walOp's
// inverse).
func kindOf(op wal.Op) mutKind {
	switch op {
	case wal.OpAdd:
		return mutAdd
	case wal.OpUpdate:
		return mutUpdate
	default:
		return mutDelete
	}
}

// Checkpoint persists the live global corpus — every shard's
// shadow-filtered main unioned with its delta, the exact rebuild
// input — with the current generation watermark, so the next recovery
// replays only the WAL suffix past it. The serving topology is
// untouched: checkpointing is a read-side fold, not a rebuild. No-op
// without a WAL.
func (c *Cluster) Checkpoint() error {
	if c.store == nil {
		return nil
	}
	c.mergeMu.Lock()
	defer c.mergeMu.Unlock()
	if c.closing.Load() {
		return ErrClosed
	}
	c.mu.Lock()
	wm := c.gen
	global, err := c.globalBuildLocked(c.t)
	c.mu.Unlock()
	if err != nil {
		return fmt.Errorf("ingest: checkpoint build: %w", err)
	}
	// Every record at or below the watermark was appended (under c.mu)
	// before wm was read, so this sync makes the whole covered range
	// durable before the checkpoint claims it.
	if err := c.store.Sync(); err != nil {
		return err
	}
	if err := c.store.Checkpoint(global, wm); err != nil {
		return err
	}
	c.sinceCkpt.Store(0)
	return nil
}

// Crash simulates kill -9 for crash-recovery studies: background work
// stops, every shard log's unsynced tail vanishes, engines release.
// Nothing is flushed. Reopen the directory with OpenCluster to recover.
func (c *Cluster) Crash() {
	c.closing.Store(true)
	c.bg.Wait()
	c.gate.Lock()
	c.mu.Lock()
	c.t.c.Close()
	c.mu.Unlock()
	c.gate.Unlock()
	c.store.Crash()
}

// Wedged returns the storage fault that wedged any shard's WAL, or nil.
// A wedged cluster rejects mutations routed to the wedged shard (reads
// still serve) — the degraded-health condition /healthz surfaces.
func (c *Cluster) Wedged() error {
	if c.store == nil {
		return nil
	}
	return c.store.Wedged()
}
