package bitutil

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := NewWriter(0)
	type field struct {
		v     uint64
		width int
	}
	var fields []field
	for i := 0; i < 10000; i++ {
		width := rng.Intn(64) + 1
		v := rng.Uint64() & ((1 << uint(width)) - 1)
		if width == 64 {
			v = rng.Uint64()
		}
		fields = append(fields, field{v, width})
		w.WriteBits(v, width)
	}
	r := NewReader(w.Words())
	for i, f := range fields {
		got := r.ReadBits(f.width)
		if got != f.v {
			t.Fatalf("field %d: got %x want %x (width %d)", i, got, f.v, f.width)
		}
	}
	if r.Pos() != w.Len() {
		t.Fatalf("cursor %d != written %d", r.Pos(), w.Len())
	}
}

func TestWriteBitsZeroWidth(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xff, 0)
	if w.Len() != 0 {
		t.Fatalf("zero-width write advanced cursor to %d", w.Len())
	}
	w.WriteBits(0b101, 3)
	if w.Len() != 3 {
		t.Fatalf("len = %d, want 3", w.Len())
	}
}

func TestWriteBitsMasksExcess(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xffff, 4) // only low 4 bits should land
	w.WriteBits(0, 4)
	r := NewReader(w.Words())
	if got := r.ReadBits(8); got != 0x0f {
		t.Fatalf("got %x want 0x0f", got)
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	vals := []int{0, 1, 2, 7, 63, 64, 65, 128, 1000}
	w := NewWriter(0)
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReader(w.Words())
	for i, v := range vals {
		if got := r.ReadUnary(); got != v {
			t.Fatalf("unary %d: got %d want %d", i, got, v)
		}
	}
}

func TestUnaryMixedWithFields(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0x2a, 7)
	w.WriteUnary(70)
	w.WriteBits(5, 3)
	r := NewReader(w.Words())
	if got := r.ReadBits(7); got != 0x2a {
		t.Fatalf("field1 = %x", got)
	}
	if got := r.ReadUnary(); got != 70 {
		t.Fatalf("unary = %d", got)
	}
	if got := r.ReadBits(3); got != 5 {
		t.Fatalf("field2 = %d", got)
	}
}

func TestGetBitsMatchesReader(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := NewWriter(0)
	for i := 0; i < 100; i++ {
		w.WriteBits(rng.Uint64(), 64)
	}
	words := w.Words()
	for i := 0; i < 1000; i++ {
		width := rng.Intn(64) + 1
		p := rng.Intn(100*64 - width)
		r := NewReader(words)
		r.Seek(p)
		want := r.ReadBits(width)
		if got := GetBits(words, p, width); got != want {
			t.Fatalf("GetBits(%d,%d) = %x, want %x", p, width, got, want)
		}
	}
}

func TestSelectInWord(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		w := rng.Uint64()
		if w == 0 {
			continue
		}
		pc := bits.OnesCount64(w)
		k := rng.Intn(pc)
		pos := SelectInWord(w, k)
		// The k+1-th set bit: verify by counting.
		if w&(1<<uint(pos)) == 0 {
			t.Fatalf("select(%x,%d)=%d is not set", w, k, pos)
		}
		below := bits.OnesCount64(w & ((1 << uint(pos)) - 1))
		if below != k {
			t.Fatalf("select(%x,%d)=%d has %d ones below", w, k, pos, below)
		}
	}
}

func TestSelectInWordProperty(t *testing.T) {
	f := func(w uint64, kRaw uint8) bool {
		if w == 0 {
			return true
		}
		k := int(kRaw) % bits.OnesCount64(w)
		pos := SelectInWord(w, k)
		return w&(1<<uint(pos)) != 0 &&
			bits.OnesCount64(w&((1<<uint(pos))-1)) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSum(t *testing.T) {
	src := []int32{3, 0, 5, 2, 1}
	dst := make([]int32, len(src))
	total := PrefixSum(dst, src)
	want := []int32{3, 3, 8, 10, 11}
	if total != 11 {
		t.Fatalf("total = %d", total)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
}

func TestExclusivePrefixSum(t *testing.T) {
	src := []int32{3, 0, 5, 2, 1}
	dst := make([]int32, len(src))
	total := ExclusivePrefixSum(dst, src)
	want := []int32{0, 3, 3, 8, 10}
	if total != 11 {
		t.Fatalf("total = %d", total)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
}

func TestPrefixSumAliasing(t *testing.T) {
	s := []int32{1, 2, 3, 4}
	PrefixSum(s, s)
	want := []int32{1, 3, 6, 10}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("aliased prefix sum: s[%d]=%d want %d", i, s[i], want[i])
		}
	}
}

func TestBitsFor(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9}, {1 << 63, 64}}
	for _, c := range cases {
		if got := BitsFor(c.v); got != c.want {
			t.Errorf("BitsFor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLog2Floor(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{{1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10}}
	for _, c := range cases {
		if got := Log2Floor(c.v); got != c.want {
			t.Errorf("Log2Floor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestWordsFor(t *testing.T) {
	cases := []struct{ n, want int }{{0, 0}, {1, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}}
	for _, c := range cases {
		if got := WordsFor(c.n); got != c.want {
			t.Errorf("WordsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(b.N * 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.WriteBits(uint64(i), 17)
	}
}

func BenchmarkReadUnary(b *testing.B) {
	w := NewWriter(0)
	for i := 0; i < 4096; i++ {
		w.WriteUnary(i % 7)
	}
	words := w.Words()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(words)
		for j := 0; j < 4096; j++ {
			r.ReadUnary()
		}
	}
}

func BenchmarkSelectInWord(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SelectInWord(0xdeadbeefcafebabe, i%bits.OnesCount64(0xdeadbeefcafebabe))
	}
}
