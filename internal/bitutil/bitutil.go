// Package bitutil provides low-level bit manipulation primitives shared by
// the compression codecs and GPU kernels: bit-granular readers and writers,
// unary coding, popcount/select lookup tables, and prefix sums.
//
// All multi-word layouts are little-endian within a []uint64 word stream:
// bit i of the stream is bit (i % 64) of word (i / 64).
package bitutil

import "math/bits"

// WordBits is the number of bits in a bit-stream word.
const WordBits = 64

// WordsFor returns the number of 64-bit words needed to hold n bits.
func WordsFor(n int) int {
	return (n + WordBits - 1) / WordBits
}

// Writer appends bit fields to a growing []uint64 stream.
// The zero value is an empty writer ready for use.
type Writer struct {
	words []uint64
	n     int // number of bits written
}

// NewWriter returns a writer with capacity preallocated for sizeBits bits.
func NewWriter(sizeBits int) *Writer {
	return &Writer{words: make([]uint64, 0, WordsFor(sizeBits))}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.n }

// Words returns the underlying word stream. The final word is zero-padded.
func (w *Writer) Words() []uint64 { return w.words }

// WriteBits appends the low width bits of v. width must be in [0, 64].
func (w *Writer) WriteBits(v uint64, width int) {
	if width == 0 {
		return
	}
	if width < 64 {
		v &= (1 << uint(width)) - 1
	}
	off := w.n % WordBits
	if off == 0 {
		w.words = append(w.words, v)
	} else {
		w.words[len(w.words)-1] |= v << uint(off)
		if rem := WordBits - off; width > rem {
			w.words = append(w.words, v>>uint(rem))
		}
	}
	w.n += width
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b uint) {
	w.WriteBits(uint64(b&1), 1)
}

// WriteUnary appends v zeros followed by a terminating one bit, the unary
// code used by the Elias-Fano high-bits array.
func (w *Writer) WriteUnary(v int) {
	for v >= WordBits {
		w.WriteBits(0, WordBits)
		v -= WordBits
	}
	// v zeros then a 1: the value 1<<v in v+1 bits.
	w.WriteBits(1<<uint(v), v+1)
}

// Reader consumes bit fields from a []uint64 stream.
type Reader struct {
	words []uint64
	pos   int // bit cursor
}

// NewReader returns a reader over the given word stream.
func NewReader(words []uint64) *Reader {
	return &Reader{words: words}
}

// Pos returns the current bit cursor.
func (r *Reader) Pos() int { return r.pos }

// Seek moves the bit cursor to the absolute position p.
func (r *Reader) Seek(p int) { r.pos = p }

// ReadBits consumes and returns the next width bits. width must be in
// [0, 64] and the stream must contain that many remaining bits.
func (r *Reader) ReadBits(width int) uint64 {
	if width == 0 {
		return 0
	}
	wi, off := r.pos/WordBits, r.pos%WordBits
	v := r.words[wi] >> uint(off)
	if rem := WordBits - off; width > rem {
		v |= r.words[wi+1] << uint(rem)
	}
	r.pos += width
	if width < 64 {
		v &= (1 << uint(width)) - 1
	}
	return v
}

// ReadBit consumes and returns the next bit.
func (r *Reader) ReadBit() uint {
	return uint(r.ReadBits(1))
}

// ReadUnary consumes a unary code (run of zeros terminated by a one) and
// returns the run length.
func (r *Reader) ReadUnary() int {
	n := 0
	for {
		wi, off := r.pos/WordBits, r.pos%WordBits
		w := r.words[wi] >> uint(off)
		if w == 0 {
			n += WordBits - off
			r.pos += WordBits - off
			continue
		}
		tz := bits.TrailingZeros64(w)
		n += tz
		r.pos += tz + 1
		return n
	}
}

// GetBits reads width bits at absolute bit position p without moving any
// cursor. It is safe for concurrent readers, which the GPU kernels rely on.
func GetBits(words []uint64, p, width int) uint64 {
	if width == 0 {
		return 0
	}
	wi, off := p/WordBits, p%WordBits
	v := words[wi] >> uint(off)
	if rem := WordBits - off; width > rem {
		v |= words[wi+1] << uint(rem)
	}
	if width < 64 {
		v &= (1 << uint(width)) - 1
	}
	return v
}

// Popcount returns the number of set bits in w.
func Popcount(w uint64) int { return bits.OnesCount64(w) }

// SelectInWord returns the bit index (0-based, from LSB) of the (k+1)-th set
// bit of w. k must be less than Popcount(w). It mirrors the lookup-table
// select used in the paper's CUDA implementation (via __popc and shared
// memory tables), using a branch-free byte-table walk.
func SelectInWord(w uint64, k int) int {
	base := 0
	for {
		b := w & 0xff
		c := int(byteCount[b])
		if k < c {
			return base + int(byteSelect[b][k])
		}
		k -= c
		w >>= 8
		base += 8
	}
}

// byteCount[b] is the popcount of byte b; byteSelect[b][k] is the position
// of the (k+1)-th set bit of byte b. Built at init; resident table mirrors
// the shared-memory lookup table of the CUDA kernel.
var (
	byteCount  [256]uint8
	byteSelect [256][8]uint8
)

func init() {
	for b := 0; b < 256; b++ {
		k := 0
		for i := 0; i < 8; i++ {
			if b&(1<<uint(i)) != 0 {
				byteSelect[b][k] = uint8(i)
				k++
			}
		}
		byteCount[b] = uint8(k)
	}
}

// PrefixSum computes the inclusive prefix sum of src into dst and returns
// the total. dst and src may alias. len(dst) must equal len(src).
func PrefixSum(dst, src []int32) int64 {
	var sum int64
	for i, v := range src {
		sum += int64(v)
		dst[i] = int32(sum)
	}
	return sum
}

// ExclusivePrefixSum computes the exclusive prefix sum of src into dst and
// returns the total. dst and src may alias.
func ExclusivePrefixSum(dst, src []int32) int64 {
	var sum int64
	for i, v := range src {
		dst[i] = int32(sum)
		sum += int64(v)
	}
	return sum
}

// BitsFor returns the minimum number of bits needed to represent v
// (at least 1 for v == 0 so that fixed-width fields are never empty).
func BitsFor(v uint64) int {
	if v == 0 {
		return 1
	}
	return bits.Len64(v)
}

// Log2Floor returns floor(log2(v)) for v >= 1.
func Log2Floor(v uint64) int {
	return bits.Len64(v) - 1
}
