package exec

import (
	"time"

	"griffin/internal/sched"
)

// OpTrace records one intersection's placement and outcome — the
// scheduler-visibility record the examples and experiments inspect
// (one entry per scheduled intersection, as in the paper's prototype).
type OpTrace struct {
	Stage    string
	Where    sched.Processor
	Ratio    float64
	ShortLen int
	LongLen  int
	OutLen   int
	Took     time.Duration
}

// OpRecord is one executed operator of a physical plan — the
// finer-grained trace beneath OpTrace. Every operator the executor runs
// (including uploads, decompressions, migrations, scoring, and top-k)
// produces one record, so the records replay the query's full resource
// timeline: summing Took over records on each processor reproduces
// CPUTime and GPUTime exactly.
type OpRecord struct {
	// Kind and Algo identify the operator.
	Kind OpKind
	Algo Algo
	// Where the operator ran.
	Where sched.Processor
	// Device is the node-relative ordinal of the GPU a device-placed
	// operator (Upload, Decompress, Migrate, GPU Intersect) ran on;
	// always 0 on single-device nodes and for CPU operators.
	Device int
	// Peer reports that an Upload was served over the inter-device
	// interconnect from a sibling device's cache instead of the host
	// PCIe path (multi-GPU nodes only).
	Peer bool
	// Term is the fetched term (OpFetch only).
	Term string
	// NIn and NOut are the element counts entering and leaving the
	// operator (for Intersect, NIn is the short side).
	NIn, NOut int
	// Bytes is the PCIe payload of transfers (Upload, Migrate).
	Bytes int64
	// Took is the operator's simulated duration.
	Took time.Duration
	// Est is the operator's closed-form cost-hook prediction (Op.Estimate),
	// recorded alongside the measured time so re-planners can judge the
	// estimator's fidelity.
	Est time.Duration
	// BatchID and BatchSize record cross-query batching membership when
	// the device runtime's batching stage coalesced this operator into a
	// combined launch: BatchID is the device-unique batch identifier and
	// BatchSize the operator's 1-based ordinal within it (1 = the batch
	// leader, which paid the full fixed costs; the final member's ordinal
	// is the batch's total size). Both zero for unbatched operators —
	// batching disabled, host-placed, or keyed out.
	BatchID   int64
	BatchSize int
}

// QueryStats aggregates one query's simulated execution.
type QueryStats struct {
	// Latency is the end-to-end simulated response time.
	Latency time.Duration
	// CPUTime and GPUTime split the latency by processor.
	CPUTime time.Duration
	GPUTime time.Duration
	// GPUWait is the modeled queueing delay the query was charged while
	// the shared device runtime served other queries' work. It is part
	// of GPUTime (the waits happen on the device timeline); zero when
	// the query ran contention-free or on a private stream.
	GPUWait time.Duration
	// Migrated reports whether a Hybrid query moved from GPU to CPU.
	Migrated bool
	// FallbackCPU reports that the original plan died on an injected
	// device fault and the engine re-ran the query on the CPU-only plan.
	// The results are correct (the CPU is a full-fidelity executor for
	// the same query work — the paper's hybrid symmetry); only latency
	// degrades.
	FallbackCPU bool
	// FaultWasted is the simulated device time the aborted plan had
	// already accumulated when the fault hit. On a fallback query it is
	// carried into GPUTime (and therefore Latency): the device work was
	// spent even though its results were discarded.
	FaultWasted time.Duration
	// Fault describes the injected fault that aborted the original plan
	// (empty when the query ran clean).
	Fault string
	// Candidates is the final intersection size entering ranking.
	Candidates int
	// Ops traces each intersection.
	Ops []OpTrace
	// Plan traces every executed operator of the physical plan.
	Plan []OpRecord
}
