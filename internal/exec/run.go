package exec

import (
	"context"
	"fmt"
	"time"

	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/intersect"
	"griffin/internal/kernels"
	"griffin/internal/rank"
	"griffin/internal/sched"
)

// Fetch is one term lookup feeding a query plan. List is nil when the
// term is absent from the index (the conjunction is then empty).
type Fetch struct {
	Term string
	List *index.PostingList
}

// DeviceList is a ListProvider's answer: a device buffer holding a
// posting list's compressed form.
type DeviceList struct {
	Buf *gpu.Buffer
	// Release drops the provider's reference at query end. When nil the
	// executor owns the buffer and frees it itself.
	Release func()
	// Uploaded reports whether the call paid a host PCIe transfer (false
	// on a cache hit or a peer copy).
	Uploaded bool
	// Peer reports that the list was copied over the inter-device
	// interconnect from a sibling device's cache instead of re-uploaded
	// from the host (multi-GPU nodes only).
	Peer bool
}

// ListProvider supplies device-resident compressed posting lists to
// cacheable Upload operators, letting the engine interpose its bounded
// resident-list cache without the executor knowing about eviction. dev
// is the querying stream's device ordinal within its node, so a
// per-device cache serves (and fills) the right device's residency.
type ListProvider interface {
	DeviceCompressed(s *gpu.Stream, dev int, pl *index.PostingList) (DeviceList, error)
}

// directUpload is the cache-less provider: every upload pays PCIe.
type directUpload struct{}

func (directUpload) DeviceCompressed(s *gpu.Stream, _ int, pl *index.PostingList) (DeviceList, error) {
	comp, err := kernels.UploadEF(s, pl.EF)
	if err != nil {
		return DeviceList{}, err
	}
	return DeviceList{Buf: comp, Uploaded: true}, nil
}

// CandidateScorer ranks the surviving candidates. rank.Scorer is the
// frozen-corpus implementation; a live-ingestion overlay substitutes a
// scorer that evaluates the same BM25 arithmetic against the query's
// pinned (main segment, delta generation) statistics, so concurrent
// mutations never tear a score. lists are the fetched main-segment
// posting lists in fetch order (missing terms skipped); an overlay
// scorer that tracks the query's terms itself may ignore them.
type CandidateScorer interface {
	ScoreCandidates(lists []*index.PostingList, candidates []uint32) ([]kernels.ScoredDoc, hwmodel.CPUWork)
}

// DeltaView is an immutable snapshot of a delta index (live ingestion),
// pinned by one query for its whole execution. The executor consults it
// after the main-segment plan: documents the delta supersedes are
// dropped from the intersection and the delta's own qualifying
// documents are merged in (the OpDeltaScan operator).
type DeltaView interface {
	// Empty reports whether the view holds no mutations at all; the
	// executor then skips the delta scan and the plan is byte-identical
	// to a frozen-corpus run.
	Empty() bool
	// Reconcile filters main-segment candidates the delta supersedes and
	// unions in the delta's own documents containing every query term.
	// Both input and output are ascending docID slices; work is the
	// billable host cost.
	Reconcile(main []uint32, terms []string) (merged []uint32, work hwmodel.CPUWork)
}

// Overlay bundles a pinned delta view with the scorer evaluating its
// snapshot's collection statistics — what a live-ingestion engine
// threads into each query.
type Overlay struct {
	Delta  DeltaView
	Scorer CandidateScorer
}

// Context is the shared execution context one executor run needs: the
// hardware models pricing the simulated timeline, the device (nil for
// pure-CPU plans), the list provider, and the ranking configuration.
type Context struct {
	// Ctx, when non-nil, is checked between operators: a cancelled
	// context aborts the run with its error. Cluster queries thread
	// their request context here so a finished (or hedge-won) query
	// stops straggler sub-queries instead of letting them run the plan
	// to completion.
	Ctx context.Context
	// CPU prices host work.
	CPU hwmodel.CPUModel
	// Device is the simulated GPU; may be nil when no builder emits
	// device operators.
	Device *gpu.Device
	// Handle is the query's admission into the shared device runtime.
	// When set, every device operator is submitted through it — occupying
	// the runtime's copy/compute engine queues and getting charged modeled
	// queueing delay behind concurrent queries' work. When nil the query
	// gets a private stream with an independent clock (the paper's
	// single-query prototype behaviour).
	Handle *gpu.QueryStream
	// Lists provides device-resident compressed lists to cacheable
	// uploads; nil means upload directly (no cache).
	Lists ListProvider
	// Scorer ranks the surviving candidates (BM25). Frozen-corpus
	// engines pass *rank.Scorer; live-ingestion overlays substitute a
	// snapshot-pinned implementation.
	Scorer CandidateScorer
	// Delta is the query's pinned delta-index view; nil (or an empty
	// view) means a frozen corpus and no delta scan.
	Delta DeltaView
	// SkipThreshold is the CPU merge-vs-skip ratio switch.
	SkipThreshold int
	// TopK is the result count.
	TopK int
}

// Outcome is a completed plan execution.
type Outcome struct {
	// Docs are the top-k results, descending by score (non-nil).
	Docs []kernels.ScoredDoc
	// Candidates is the final intersection (host-resident).
	Candidates []uint32
	// Stats is the simulated execution record.
	Stats QueryStats
}

// Run executes one query: it prices the term fetches, SvS-orders the
// lists, then walks the plan the builder produces step by step with one
// shared execution context — device-buffer lifetime tracking, the
// sequential simulated timeline, per-operator trace emission — and
// finishes with host-side BM25 scoring and top-k selection. mkBuilder
// receives the SvS-ordered lists and returns the mode's plan builder.
//
// Device buffers allocated during the run (and cache references taken by
// uploads) are released when Run returns, success or error.
func Run(ctx *Context, fetches []Fetch, mkBuilder func(ordered []*index.PostingList) Builder) (*Outcome, error) {
	r := &runner{ctx: ctx, env: make(map[*index.PostingList]*devEntry)}
	defer r.cleanup()

	// Fetch: bind each term's posting list, priced as one dictionary probe.
	lists := make([]*index.PostingList, 0, len(fetches))
	missing := false
	for _, f := range fetches {
		took := ctx.CPU.Time(hwmodel.CPUWork{CachedProbes: 1})
		r.stats.CPUTime += took
		n := 0
		if f.List != nil {
			n = f.List.N
			lists = append(lists, f.List)
		} else {
			missing = true
		}
		r.record(OpRecord{Kind: OpFetch, Where: sched.CPU, Term: f.Term, NOut: n, Took: took, Est: took})
	}

	if !missing && len(lists) > 0 {
		// SvS ordering: ascending by length (§2.1.2).
		views := make([]index.BlockList, len(lists))
		for i, pl := range lists {
			views[i] = index.EFView{L: pl.EF}
		}
		order := intersect.OrderByLength(views)
		ordered := make([]*index.PostingList, len(order))
		for i, oi := range order {
			ordered[i] = lists[oi]
		}
		r.lists = ordered

		b := mkBuilder(ordered)
		for {
			ops := b.Next(State{Len: r.stateLen(), OnDevice: r.onDevice})
			if ops == nil {
				break
			}
			for i := range ops {
				if ctx.Ctx != nil {
					if err := ctx.Ctx.Err(); err != nil {
						return nil, err
					}
				}
				if err := r.exec(&ops[i]); err != nil {
					return nil, err
				}
			}
		}
	}

	// Delta scan: reconcile the main-segment intersection with the
	// query's pinned delta view (live ingestion). Superseded documents
	// (tombstoned or updated in the delta) drop out; delta documents
	// containing every query term merge in. Runs even when a term is
	// missing from the main segment — the delta may still hold matching
	// documents — and is skipped entirely for empty views, keeping
	// frozen-corpus plans byte-identical.
	if ctx.Delta != nil && !ctx.Delta.Empty() {
		terms := make([]string, len(fetches))
		for i, f := range fetches {
			terms[i] = f.Term
		}
		base := len(r.hostIDs)
		merged, work := ctx.Delta.Reconcile(r.hostIDs, terms)
		est := (&Op{Kind: OpDeltaScan, ShortLen: base, LongLen: len(merged)}).Estimate(&ctx.CPU, r.gpuModel())
		took := ctx.CPU.Time(work)
		r.stats.CPUTime += took
		r.hostIDs = merged
		r.onDevice = false
		r.record(OpRecord{Kind: OpDeltaScan, Where: sched.CPU, NIn: base, NOut: len(merged), Took: took, Est: est})
	}

	// Rank: BM25 over the candidates, then the CPU partial sort (the
	// Figure-7-justified choice). Scoring iterates the lists in lookup
	// order so float accumulation is bit-stable across modes.
	docs := []kernels.ScoredDoc{}
	if len(r.hostIDs) > 0 {
		est := (&Op{Kind: OpScore, ShortLen: len(r.hostIDs), LongLen: len(lists)}).Estimate(&ctx.CPU, r.gpuModel())
		scored, work := ctx.Scorer.ScoreCandidates(lists, r.hostIDs)
		took := ctx.CPU.Time(work)
		r.stats.CPUTime += took
		r.record(OpRecord{Kind: OpScore, Where: sched.CPU, NIn: len(r.hostIDs), NOut: len(scored), Took: took, Est: est})

		est = (&Op{Kind: OpTopK, ShortLen: len(scored)}).Estimate(&ctx.CPU, r.gpuModel())
		top, tkWork := rank.TopKCPU(scored, ctx.TopK)
		took = ctx.CPU.Time(tkWork)
		r.stats.CPUTime += took
		r.record(OpRecord{Kind: OpTopK, Where: sched.CPU, NIn: len(scored), NOut: len(top), Took: took, Est: est})
		docs = append(docs, top...)
	}

	r.stats.Candidates = len(r.hostIDs)
	if ctx.Handle != nil {
		r.stats.GPUWait = ctx.Handle.Waited()
	}
	r.stats.Latency = r.stats.CPUTime + r.stats.GPUTime
	return &Outcome{Docs: docs, Candidates: r.hostIDs, Stats: r.stats}, nil
}

// devEntry tracks one posting list's device-resident forms.
type devEntry struct {
	comp *gpu.Buffer
	dec  *gpu.Buffer
}

// runner is the executor's per-query state: the running intermediate
// (host slice or device IntersectResult), device-buffer ownership, and
// the stream-clock watermark that splits GPU time between trace entries.
type runner struct {
	ctx    *Context
	stream *gpu.Stream
	lists  []*index.PostingList
	stats  QueryStats

	hostIDs  []uint32                 // intermediate when on host
	devRes   *kernels.IntersectResult // intermediate when on device
	onDevice bool
	started  bool // true once the first intersection produced an intermediate

	env      map[*index.PostingList]*devEntry
	owned    []*gpu.Buffer // buffers to free at query end
	releases []func()      // cache references to drop at query end
	last     time.Duration // last settled stream clock
}

func (r *runner) cleanup() {
	for _, b := range r.owned {
		b.Free()
	}
	r.owned = nil
	for _, rel := range r.releases {
		rel()
	}
	r.releases = nil
}

func (r *runner) track(b *gpu.Buffer) *gpu.Buffer {
	r.owned = append(r.owned, b)
	return b
}

func (r *runner) record(rec OpRecord) {
	r.stats.Plan = append(r.stats.Plan, rec)
}

// stateLen is the Builder-visible intermediate length: the shortest
// list's length before the first intersection, the running result after.
func (r *runner) stateLen() int {
	switch {
	case !r.started:
		if len(r.lists) > 0 {
			return r.lists[0].N
		}
		return 0
	case r.onDevice:
		return r.devRes.Count
	default:
		return len(r.hostIDs)
	}
}

func (r *runner) ensureStream() error {
	if r.stream != nil {
		return nil
	}
	if r.ctx.Handle != nil {
		r.stream = r.ctx.Handle.Stream()
		return nil
	}
	if r.ctx.Device == nil {
		return fmt.Errorf("exec: plan places work on the GPU but the context has no device")
	}
	r.stream = r.ctx.Device.NewStream()
	return nil
}

// submitDevice runs one device work item on the query's stream. With a
// runtime handle the item goes through the shared device: it occupies
// the given engine's queue on the global timeline and the stream is
// charged queueing delay first when the engine is busy with other
// queries' work; key (Op.BatchKey) lets the runtime's batching stage
// coalesce the item with compatible ops from concurrent queries, and
// the returned membership is threaded into the op's plan record.
// Without a handle it runs directly on the private stream (no
// cross-query contention, never batched).
func (r *runner) submitDevice(class gpu.EngineClass, key string, fn func(*gpu.Stream) error) (gpu.Batched, error) {
	if err := r.ensureStream(); err != nil {
		return gpu.Batched{}, err
	}
	if h := r.ctx.Handle; h != nil {
		return h.SubmitOp(class, key, fn)
	}
	return gpu.Batched{}, fn(r.stream)
}

// deviceID is the node-relative ordinal of the device this query was
// placed on (0 without a runtime handle, i.e. a private stream or a
// single-device node).
func (r *runner) deviceID() int {
	if r.ctx.Handle != nil {
		return r.ctx.Handle.Device()
	}
	return 0
}

func (r *runner) elapsed() time.Duration {
	if r.stream == nil {
		return 0
	}
	return r.stream.Elapsed()
}

// settle returns the stream time consumed since the previous settle
// point — the legacy accounting where one traced GPU intersection spans
// the uploads, decompressions, and kernels of its whole step.
func (r *runner) settle() time.Duration {
	now := r.elapsed()
	d := now - r.last
	r.last = now
	return d
}

func (r *runner) gpuModel() *hwmodel.GPUModel {
	if r.ctx.Device != nil {
		return r.ctx.Device.Model()
	}
	return &fallbackGPU
}

var fallbackGPU = hwmodel.DefaultGPU()

// traceOp appends a legacy intersection trace entry (QueryStats.Ops).
func (r *runner) traceOp(op *Op, outLen int, took time.Duration) {
	r.stats.Ops = append(r.stats.Ops, OpTrace{
		Stage:    fmt.Sprintf("intersect#%d", len(r.stats.Ops)),
		Where:    op.Where,
		Ratio:    op.Ratio,
		ShortLen: op.ShortLen,
		LongLen:  op.LongLen,
		OutLen:   outLen,
		Took:     took,
	})
}

// exec runs one operator, advancing the shared timeline and emitting its
// plan record (and, for Trace-flagged ops, the legacy trace entry).
func (r *runner) exec(op *Op) error {
	est := op.Estimate(&r.ctx.CPU, r.gpuModel())
	rec := OpRecord{Kind: op.Kind, Algo: op.Algo, Where: op.Where, Est: est}
	if op.Kind == OpUpload || op.Kind == OpDecompress || op.Kind == OpMigrate ||
		(op.Kind == OpIntersect && op.Where == sched.GPU) {
		rec.Device = r.deviceID()
	}

	switch op.Kind {
	case OpUpload:
		if err := r.ensureStream(); err != nil {
			return err
		}
		start := r.elapsed()
		if op.Arg.List == nil {
			// Raw intermediate upload (host -> device).
			var buf *gpu.Buffer
			m, err := r.submitDevice(gpu.CopyEngine, op.BatchKey(), func(s *gpu.Stream) error {
				b, err := s.H2D(r.hostIDs, int64(len(r.hostIDs))*4)
				buf = b
				return err
			})
			if err != nil {
				return err
			}
			rec.BatchID, rec.BatchSize = m.ID, m.Seq
			r.track(buf)
			r.devRes = &kernels.IntersectResult{Out: buf, Count: len(r.hostIDs)}
			r.onDevice = true
			rec.NIn, rec.NOut = len(r.hostIDs), len(r.hostIDs)
			rec.Bytes = int64(len(r.hostIDs)) * 4
		} else {
			pl := op.Arg.List
			provider := r.ctx.Lists
			if provider == nil || !op.Cacheable {
				provider = directUpload{}
			}
			var dl DeviceList
			m, err := r.submitDevice(gpu.CopyEngine, op.BatchKey(), func(s *gpu.Stream) error {
				var err error
				dl, err = provider.DeviceCompressed(s, r.deviceID(), pl)
				return err
			})
			if err != nil {
				return err
			}
			rec.BatchID, rec.BatchSize = m.ID, m.Seq
			if dl.Release != nil {
				r.releases = append(r.releases, dl.Release)
			} else {
				r.track(dl.Buf)
			}
			r.entry(pl).comp = dl.Buf
			rec.Term = pl.Term
			rec.NIn, rec.NOut = pl.N, pl.N
			rec.Peer = dl.Peer
			if dl.Uploaded || dl.Peer {
				rec.Bytes = pl.EF.CompressedBytes()
			}
		}
		rec.Took = r.elapsed() - start

	case OpDecompress:
		if err := r.ensureStream(); err != nil {
			return err
		}
		start := r.elapsed()
		pl := op.Arg.List
		var dec *gpu.Buffer
		m, err := r.submitDevice(gpu.ComputeEngine, op.BatchKey(), func(s *gpu.Stream) error {
			d, _, err := kernels.ParaEFDecompress(s, r.entry(pl).comp)
			dec = d
			return err
		})
		if err != nil {
			return err
		}
		rec.BatchID, rec.BatchSize = m.ID, m.Seq
		r.track(dec)
		r.entry(pl).dec = dec
		rec.Term = pl.Term
		rec.NIn, rec.NOut = pl.N, pl.N
		rec.Took = r.elapsed() - start

	case OpIntersect:
		if op.Where == sched.CPU {
			return r.intersectCPU(op, &rec)
		}
		return r.intersectGPU(op, &rec)

	case OpMigrate:
		return r.migrate(op, &rec)

	default:
		return fmt.Errorf("exec: operator %v cannot appear mid-plan", op.Kind)
	}

	r.record(rec)
	return nil
}

// entry returns (creating if needed) the device residency entry for pl.
func (r *runner) entry(pl *index.PostingList) *devEntry {
	e := r.env[pl]
	if e == nil {
		e = &devEntry{}
		r.env[pl] = e
	}
	return e
}

// intersectCPU runs one host intersection: the short side is either a
// posting list (EF view) or the host-resident intermediate (raw view).
func (r *runner) intersectCPU(op *Op, rec *OpRecord) error {
	var short index.BlockList
	if op.Short.List != nil {
		short = index.EFView{L: op.Short.List.EF}
	} else {
		short = index.RawView{IDs: r.hostIDs}
	}
	var step intersect.Result
	if op.Algo == AlgoCPUDecode {
		// Degenerate single-list query: decode the list on the host.
		step = intersect.SvS([]index.BlockList{short}, r.ctx.SkipThreshold)
	} else {
		step = intersect.Pair(short, index.EFView{L: op.Long.List.EF}, r.ctx.SkipThreshold)
	}
	took := r.ctx.CPU.Time(step.Work)
	r.stats.CPUTime += took
	r.hostIDs = step.IDs
	r.onDevice = false
	r.started = true
	rec.NIn, rec.NOut = op.ShortLen, len(step.IDs)
	rec.Took = took
	r.record(*rec)
	if op.Trace {
		r.traceOp(op, len(step.IDs), took)
	}
	return nil
}

// intersectGPU runs one device intersection kernel over the declared
// operands' resident buffers.
func (r *runner) intersectGPU(op *Op, rec *OpRecord) error {
	if err := r.ensureStream(); err != nil {
		return err
	}
	start := r.elapsed()
	var shortBuf *gpu.Buffer
	if op.Short.List != nil {
		shortBuf = r.entry(op.Short.List).dec
	} else {
		// Trim the buffer view to the match count for downstream kernels.
		shortBuf = r.devRes.Out
		shortBuf.Data = r.devRes.Matches()
	}
	var out *kernels.IntersectResult
	m, err := r.submitDevice(gpu.ComputeEngine, op.BatchKey(), func(s *gpu.Stream) error {
		var err error
		if op.Algo == AlgoBinarySkips {
			out, err = kernels.IntersectBinarySkips(s, shortBuf, r.entry(op.Long.List).comp)
		} else {
			out, err = kernels.IntersectMergePath(s, shortBuf, r.entry(op.Long.List).dec)
		}
		return err
	})
	if err != nil {
		return err
	}
	rec.BatchID, rec.BatchSize = m.ID, m.Seq
	r.track(out.Out)
	r.devRes = out
	r.onDevice = true
	r.started = true
	rec.NIn, rec.NOut = op.ShortLen, out.Count
	rec.Took = r.elapsed() - start
	r.record(*rec)
	if op.Trace {
		d := r.settle()
		r.stats.GPUTime += d
		r.traceOp(op, out.Count, d)
	}
	return nil
}

// migrate moves the intermediate device-to-host: the §3.2 mid-query
// migration (sets Migrated), the end-of-plan drain (Final), or the
// single-list decompressed-list drain (Arg.List set).
func (r *runner) migrate(op *Op, rec *OpRecord) error {
	if err := r.ensureStream(); err != nil {
		return err
	}
	start := r.elapsed()
	d2h := func(buf *gpu.Buffer, bytes int64) ([]uint32, error) {
		var ids []uint32
		m, err := r.submitDevice(gpu.CopyOutEngine, op.BatchKey(), func(s *gpu.Stream) error {
			ids = s.D2H(buf, bytes).([]uint32)
			return nil
		})
		if err == nil {
			rec.BatchID, rec.BatchSize = m.ID, m.Seq
		}
		return ids, err
	}
	switch {
	case op.Arg.List != nil:
		// Drain a decompressed posting list (single-term device plan).
		pl := op.Arg.List
		ids, err := d2h(r.entry(pl).dec, int64(pl.N)*4)
		if err != nil {
			return err
		}
		r.hostIDs = ids
		rec.NIn, rec.NOut = pl.N, len(ids)
		rec.Bytes = int64(pl.N) * 4
	case op.Final:
		r.hostIDs = []uint32{}
		if r.devRes.Count > 0 {
			ids, err := d2h(r.devRes.Out, int64(r.devRes.Count)*4)
			if err != nil {
				return err
			}
			r.hostIDs = ids[:r.devRes.Count]
			rec.Bytes = int64(r.devRes.Count) * 4
		}
		rec.NIn, rec.NOut = r.devRes.Count, len(r.hostIDs)
	default:
		// Mid-query migration: execution moves to the CPU (§3.2).
		ids, err := d2h(r.devRes.Out, int64(r.devRes.Count)*4)
		if err != nil {
			return err
		}
		r.hostIDs = ids[:r.devRes.Count]
		r.stats.Migrated = true
		rec.NIn, rec.NOut = r.devRes.Count, len(r.hostIDs)
		rec.Bytes = int64(r.devRes.Count) * 4
	}
	r.onDevice = false
	r.started = true
	d := r.settle()
	r.stats.GPUTime += d
	rec.Took = r.elapsed() - start
	r.record(*rec)
	if op.Trace {
		// Single-term device plans trace the drain as their one operation,
		// spanning the whole upload+decompress+transfer step.
		r.traceOp(op, len(r.hostIDs), d)
	}
	return nil
}
