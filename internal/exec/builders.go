package exec

import (
	"griffin/internal/index"
	"griffin/internal/sched"
)

// State is the executor's runtime view handed to a Builder before each
// plan step: how large the running intermediate currently is (the
// shortest list's length before the first intersection) and where it
// lives. Builders need it because SvS shrinks the intermediate as the
// query proceeds — the exact dynamics Griffin's scheduler reacts to.
type State struct {
	// Len is the current intermediate result length.
	Len int
	// OnDevice reports whether the intermediate is device-resident.
	OnDevice bool
}

// Builder constructs a physical plan incrementally: Next returns the
// operators of the next pipeline step, or nil when the plan is complete.
// A Builder instance is per-query. The four execution modes are the four
// implementations below; a new placement strategy is a new Builder, not a
// new executor.
type Builder interface {
	Next(st State) []Op
}

// NewCPUBuilder plans the CPU-only baseline (§2.2): every intersection on
// the host with the per-pair merge-vs-skip choice, everything decoded on
// the host.
func NewCPUBuilder(lists []*index.PostingList) Builder {
	return &cpuBuilder{lists: lists, i: 1}
}

type cpuBuilder struct {
	lists []*index.PostingList
	i     int
	done  bool
}

func (b *cpuBuilder) Next(st State) []Op {
	if b.done {
		return nil
	}
	if len(b.lists) == 1 {
		b.done = true
		pl := b.lists[0]
		return []Op{{
			Kind: OpIntersect, Where: sched.CPU, Algo: AlgoCPUDecode,
			Short: ListOperand(pl), Long: ListOperand(pl),
			Trace: true, Ratio: 1, ShortLen: pl.N, LongLen: pl.N,
		}}
	}
	if b.i >= len(b.lists) || (b.i > 1 && st.Len == 0) {
		b.done = true
		return nil
	}
	long := b.lists[b.i]
	var short Operand
	var shortLen int
	if b.i == 1 {
		short = ListOperand(b.lists[0])
		shortLen = b.lists[0].N
	} else {
		short = Intermediate(false)
		shortLen = st.Len
	}
	b.i++
	return []Op{cpuIntersectOp(short, long, shortLen)}
}

// cpuIntersectOp emits one host intersection with its trace fields.
func cpuIntersectOp(short Operand, long *index.PostingList, shortLen int) Op {
	sl, ll := min(shortLen, long.N), max(shortLen, long.N)
	return Op{
		Kind: OpIntersect, Where: sched.CPU, Algo: AlgoCPUAdaptive,
		Short: short, Long: ListOperand(long),
		Trace: true, Ratio: sched.Ratio(sl, ll), ShortLen: sl, LongLen: ll,
	}
}

// NewGPUBuilder plans Griffin-GPU standalone (§3.1): decompression and
// every intersection on the device. Per §3.1.2 the device still adapts
// internally: MergePath below the crossover ratio, parallel binary search
// over skip pointers above it.
func NewGPUBuilder(lists []*index.PostingList, crossover float64) Builder {
	return &gpuBuilder{lists: lists, crossover: crossover, i: 1}
}

type gpuBuilder struct {
	lists     []*index.PostingList
	crossover float64
	i         int
	done      bool
}

func (b *gpuBuilder) Next(st State) []Op {
	if b.done {
		return nil
	}
	if len(b.lists) == 1 {
		b.done = true
		pl := b.lists[0]
		return []Op{
			{Kind: OpUpload, Where: sched.GPU, Arg: ListOperand(pl), Cacheable: true},
			{Kind: OpDecompress, Where: sched.GPU, Arg: ListOperand(pl), LongLen: pl.N},
			{Kind: OpMigrate, Where: sched.GPU, Arg: ListOperand(pl), Final: true,
				Trace: true, Ratio: 1, ShortLen: pl.N, LongLen: pl.N},
		}
	}
	if b.i < len(b.lists) && (b.i == 1 || st.Len > 0) {
		long := b.lists[b.i]
		var ops []Op
		var short Operand
		var shortLen int
		if b.i == 1 {
			first := b.lists[0]
			ops = append(ops,
				Op{Kind: OpUpload, Where: sched.GPU, Arg: ListOperand(first), Cacheable: true},
				Op{Kind: OpDecompress, Where: sched.GPU, Arg: ListOperand(first), LongLen: first.N})
			short = Operand{List: first, OnDevice: true}
			shortLen = first.N
		} else {
			short = Intermediate(true)
			shortLen = st.Len
		}
		b.i++
		return append(ops, gpuIntersectOps(short, long, shortLen, b.crossover)...)
	}
	// Pipeline complete (or the intermediate emptied): drain the final
	// result back to the host.
	b.done = true
	return []Op{{Kind: OpMigrate, Where: sched.GPU, Arg: Intermediate(true), Final: true, ShortLen: st.Len}}
}

// gpuIntersectOps emits one device intersection step: the long operand's
// residency ops (decompressed for MergePath below the crossover ratio,
// compressed-with-skip-pointers above it) followed by the kernel.
//
// The binary-skips upload deliberately bypasses the resident-list cache:
// the paper's high-ratio path probes the compressed blocks in place and
// its uploads are small relative to the short side's decompression, so
// caching them would evict hotter merge-path lists.
func gpuIntersectOps(short Operand, long *index.PostingList, shortLen int, crossover float64) []Op {
	ratio := sched.Ratio(shortLen, long.N)
	if ratio < crossover {
		return []Op{
			{Kind: OpUpload, Where: sched.GPU, Arg: ListOperand(long), Cacheable: true},
			{Kind: OpDecompress, Where: sched.GPU, Arg: ListOperand(long), LongLen: long.N},
			{Kind: OpIntersect, Where: sched.GPU, Algo: AlgoMergePath,
				Short: short, Long: Operand{List: long, OnDevice: true},
				Trace: true, Ratio: ratio, ShortLen: shortLen, LongLen: long.N},
		}
	}
	return []Op{
		{Kind: OpUpload, Where: sched.GPU, Arg: ListOperand(long)},
		{Kind: OpIntersect, Where: sched.GPU, Algo: AlgoBinarySkips,
			Short: short, Long: Operand{List: long, OnDevice: true},
			Trace: true, Ratio: ratio, ShortLen: shortLen, LongLen: long.N},
	}
}

// NewHybridBuilder plans Griffin proper (§3.2): before each intersection
// the policy places the operation; the first CPU placement after device
// execution emits a Migrate (the paper's sticky GPU-to-CPU migration,
// billed at PCIe cost). Non-sticky policies may move back: a
// host-resident intermediate is re-uploaded raw.
func NewHybridBuilder(lists []*index.PostingList, policy sched.Policy, crossover float64) Builder {
	if len(lists) == 1 {
		// Single-term query: no intersection to schedule; decode on the
		// host (tiny fixed work, no transfer).
		return NewCPUBuilder(lists)
	}
	return &hybridBuilder{lists: lists, policy: policy.Fresh(), crossover: crossover, i: 1}
}

type hybridBuilder struct {
	lists     []*index.PostingList
	policy    sched.Policy
	crossover float64
	i         int
	done      bool
}

func (b *hybridBuilder) Next(st State) []Op {
	if b.done {
		return nil
	}
	if b.i >= len(b.lists) || st.Len == 0 {
		b.done = true
		if st.OnDevice {
			// Query finished on the device: bring the final result home.
			return []Op{{Kind: OpMigrate, Where: sched.GPU, Arg: Intermediate(true), Final: true, ShortLen: st.Len}}
		}
		return nil
	}
	long := b.lists[b.i]
	shortLen := st.Len
	d := b.policy.Decide(shortLen, long.N)
	if d.Where == sched.GPU {
		var ops []Op
		var short Operand
		switch {
		case b.i == 1:
			first := b.lists[0]
			ops = append(ops,
				Op{Kind: OpUpload, Where: sched.GPU, Arg: ListOperand(first), Cacheable: true},
				Op{Kind: OpDecompress, Where: sched.GPU, Arg: ListOperand(first), LongLen: first.N})
			short = Operand{List: first, OnDevice: true}
		case st.OnDevice:
			short = Intermediate(true)
		default:
			// Intermediate on host (non-sticky policies): upload it raw.
			ops = append(ops, Op{Kind: OpUpload, Where: sched.GPU, Arg: Intermediate(false), ShortLen: shortLen})
			short = Intermediate(true)
		}
		b.i++
		return append(ops, gpuIntersectOps(short, long, shortLen, b.crossover)...)
	}
	// CPU placement: migrate the intermediate off the device first.
	var ops []Op
	if st.OnDevice {
		ops = append(ops, Op{Kind: OpMigrate, Where: sched.GPU, Arg: Intermediate(true), ShortLen: shortLen})
	}
	var short Operand
	if b.i == 1 {
		short = ListOperand(b.lists[0])
	} else {
		short = Intermediate(false)
	}
	b.i++
	return append(ops, cpuIntersectOp(short, long, shortLen))
}

// NewPerQueryBuilder plans the Figure 1(c) static baseline (Ding et al.,
// WWW'09): one placement decision for the entire query, made from the two
// shortest lists' ratio exactly like Griffin's first decision, but never
// reconsidered — the whole pipeline then runs as the CPU-only or GPU-only
// plan.
func NewPerQueryBuilder(lists []*index.PostingList, policy sched.Policy, crossover float64) Builder {
	if len(lists) >= 2 {
		if d := policy.Fresh().Decide(lists[0].N, lists[1].N); d.Where == sched.GPU {
			return NewGPUBuilder(lists, crossover)
		}
	}
	return NewCPUBuilder(lists)
}
