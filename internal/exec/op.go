// Package exec is Griffin's physical query-plan layer: a query executes
// as a pipeline of typed operators — Fetch, Upload, Decompress,
// Intersect, Migrate, Score, TopK — each declaring its placement (CPU or
// GPU), its operand provenance (a posting list from the index vs the
// running intermediate result, host slice vs device buffer), and a
// closed-form cost hook into the hwmodel calibrations.
//
// The four execution modes of the paper (§4.4's CPU-only, Griffin-GPU,
// Griffin, and the Figure 1(c) per-query static hybrid) are *plan
// builders* (builders.go): they differ only in which operators they emit
// and where they place them. A single executor (run.go) walks whatever
// the builder produces with one shared execution context — device-buffer
// lifetime tracking, the sequential simulated timeline, and per-operator
// trace emission — so a new placement strategy is a new builder, not a
// new copy of the pipeline. Griffin's §3.2 scheduler lives exactly where
// the paper puts it conceptually: sched.Policy is a callback the Hybrid
// builder consults before each intersection, including the sticky
// GPU-to-CPU Migrate decision.
package exec

import (
	"time"

	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/sched"
)

// OpKind identifies an operator type.
type OpKind int

const (
	// OpFetch binds a term's posting list from the index (host).
	OpFetch OpKind = iota
	// OpUpload moves data into device memory over PCIe: a posting list's
	// compressed form, or the raw intermediate result.
	OpUpload
	// OpDecompress expands a device-resident compressed list with the
	// Para-EF kernel (§3.1.1).
	OpDecompress
	// OpIntersect intersects the running intermediate (or the first list)
	// with the next posting list, on either processor (§2.1.2, §3.1.2).
	OpIntersect
	// OpMigrate moves the intermediate result device-to-host (§3.2's
	// mid-query migration, or the end-of-plan drain).
	OpMigrate
	// OpScore evaluates BM25 over the surviving candidates (host, §2.1.3).
	OpScore
	// OpTopK selects the k best candidates (host partial sort, Figure 7).
	OpTopK
	// OpDeltaScan reconciles the intersection with the query's pinned
	// delta-index view (live ingestion): candidates superseded by the
	// delta (tombstoned or updated documents) are filtered out and the
	// delta's own qualifying documents are merged in. Host-placed; runs
	// after the main-segment plan and before scoring.
	OpDeltaScan
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpFetch:
		return "fetch"
	case OpUpload:
		return "upload"
	case OpDecompress:
		return "decompress"
	case OpIntersect:
		return "intersect"
	case OpMigrate:
		return "migrate"
	case OpScore:
		return "score"
	case OpTopK:
		return "topk"
	case OpDeltaScan:
		return "delta-scan"
	default:
		return "unknown"
	}
}

// Algo selects the concrete intersection algorithm of an OpIntersect.
type Algo int

const (
	// AlgoNone marks non-intersect operators.
	AlgoNone Algo = iota
	// AlgoCPUAdaptive is the host's merge-vs-skip-search choice (§2.2).
	AlgoCPUAdaptive
	// AlgoCPUDecode is the degenerate single-list "intersection": decode
	// the list on the host.
	AlgoCPUDecode
	// AlgoMergePath is the device MergePath kernel (comparable lengths).
	AlgoMergePath
	// AlgoBinarySkips is the device parallel binary search over skip
	// pointers (high length ratios, §3.1.2).
	AlgoBinarySkips
)

// String implements fmt.Stringer.
func (a Algo) String() string {
	switch a {
	case AlgoCPUAdaptive:
		return "cpu-adaptive"
	case AlgoCPUDecode:
		return "cpu-decode"
	case AlgoMergePath:
		return "merge-path"
	case AlgoBinarySkips:
		return "binary-skips"
	default:
		return ""
	}
}

// Operand declares where an operator's input comes from: a posting list
// of the index, or (List == nil) the running intermediate result. OnDevice
// records the declared residence at the time the plan step is built; the
// executor's state must agree when the operator runs.
type Operand struct {
	List     *index.PostingList
	OnDevice bool
}

// ListOperand is a host-resident posting-list operand.
func ListOperand(pl *index.PostingList) Operand { return Operand{List: pl} }

// Intermediate is the running-intermediate operand.
func Intermediate(onDevice bool) Operand { return Operand{OnDevice: onDevice} }

// Op is one operator of a physical query plan.
type Op struct {
	// Kind and Where identify the operator and its placement.
	Kind  OpKind
	Where sched.Processor
	// Device is the node-relative GPU ordinal a device-placed operator
	// should run on. Today's builders leave it 0 and the whole query runs
	// on the device its admission handle was placed on; the field is the
	// seam for per-operator device placement (splitting one query's
	// intersections across a node's GPUs).
	Device int
	// Arg is the operand of the unary operators (Upload, Decompress). An
	// Upload with Arg.List == nil uploads the raw intermediate result.
	Arg Operand
	// Short and Long are the Intersect operands (SvS probes the shorter
	// side into the longer).
	Short, Long Operand
	// Algo is the intersection algorithm (OpIntersect only).
	Algo Algo
	// Cacheable lets Upload consult the engine's resident-list cache.
	Cacheable bool
	// Final marks the end-of-plan drain Migrate: it does not set the
	// Migrated flag and skips the transfer when the intermediate is empty.
	Final bool
	// Trace emits a legacy intersection trace entry (QueryStats.Ops) when
	// the operator completes, with the fields below. On the GPU the entry's
	// Took spans everything since the previous trace boundary — upload,
	// decompression, and kernels of the whole step — matching how the
	// paper's prototype accounts a scheduled operation.
	Trace             bool
	Ratio             float64
	ShortLen, LongLen int
}

// BatchKey names the operator's cross-query batch-compatibility class —
// the key the device runtime's batching stage coalesces on
// (gpu.QueryStream.SubmitOp). Ops with equal keys submitted to the same
// engine within one coalescing window ride one combined launch / DMA
// program; intersects key by algorithm so MergePath and binary-skip
// kernels never share a grid. Empty for host-placed operators (and for
// kinds with no device form), which opts them out of batching.
func (op *Op) BatchKey() string {
	switch op.Kind {
	case OpUpload:
		return "upload"
	case OpDecompress:
		return "decompress"
	case OpIntersect:
		if op.Where != sched.GPU {
			return ""
		}
		return "intersect:" + op.Algo.String()
	case OpMigrate:
		return "migrate"
	}
	return ""
}

// Estimate is the operator's cost hook: a closed-form prediction of its
// simulated duration under the calibrated hardware models, computed from
// the declared operand sizes alone (no execution). Plan-level estimation
// (sched.QueryEstimator, loadsim re-planning) sums these across a
// candidate plan.
func (op *Op) Estimate(cpuM *hwmodel.CPUModel, gpuM *hwmodel.GPUModel) time.Duration {
	switch op.Kind {
	case OpFetch:
		return cpuM.Time(hwmodel.CPUWork{CachedProbes: 1})
	case OpUpload:
		var bytes int64
		if op.Arg.List != nil {
			bytes = compressedBytes(op.Arg.List.N)
		} else {
			bytes = int64(op.ShortLen) * 4
		}
		return gpuM.TransferTime(bytes)
	case OpDecompress:
		n := op.LongLen
		st := hwmodel.LaunchStats{
			Blocks:           (n + 127) / 128,
			ThreadsPerBlock:  128,
			Ops:              int64(6 * n),
			GlobalReadBytes:  compressedBytes(n),
			GlobalWriteBytes: int64(4 * n),
		}
		return gpuM.AllocTime(int64(n)*4) + gpuM.KernelTime(&st)
	case OpIntersect:
		return estimateIntersect(op, cpuM, gpuM)
	case OpMigrate:
		return gpuM.TransferTime(int64(op.ShortLen) * 4)
	case OpScore:
		return cpuM.Time(hwmodel.CPUWork{ScoredDocs: int64(op.ShortLen * op.LongLen)})
	case OpTopK:
		return cpuM.Time(hwmodel.CPUWork{HeapCandidates: int64(op.ShortLen)})
	case OpDeltaScan:
		// One shadow-set probe per main candidate plus the merge of the
		// delta's qualifying documents (LongLen).
		return cpuM.Time(hwmodel.CPUWork{
			CachedProbes:   int64(op.ShortLen),
			MergedElements: int64(op.ShortLen + op.LongLen),
		})
	}
	return 0
}

// compressedBytes approximates an Elias-Fano list's PCIe payload
// (~7 bits/doc on the paper's collections).
func compressedBytes(n int) int64 { return int64(n) * 7 / 8 }

// estimateIntersect prices one intersection under either placement.
func estimateIntersect(op *Op, cpuM *hwmodel.CPUModel, gpuM *hwmodel.GPUModel) time.Duration {
	short, long := op.ShortLen, op.LongLen
	switch op.Algo {
	case AlgoCPUDecode:
		return cpuM.Time(hwmodel.CPUWork{EFDecodedElems: int64(long)})
	case AlgoCPUAdaptive:
		if long < intersectSkipRatio*short {
			return cpuM.Time(hwmodel.CPUWork{
				EFDecodedElems: int64(short + long),
				MergedElements: int64(short + long),
			})
		}
		return cpuM.Time(hwmodel.CPUWork{
			CachedProbes: int64(4 * short),
			SelectProbes: int64(7 * short),
		})
	case AlgoMergePath, AlgoBinarySkips:
		st := hwmodel.LaunchStats{
			Blocks:           (long + 127) / 128,
			ThreadsPerBlock:  128,
			Ops:              int64(8 * (short + long)),
			GlobalReadBytes:  int64(5 * (short + long)),
			GlobalWriteBytes: int64(4 * (short + long)),
		}
		return gpuM.KernelTime(&st) + 4*gpuM.LaunchOverhead
	}
	return 0
}

// intersectSkipRatio mirrors the CPU merge-vs-skip estimator switch used
// by sched.CostPolicy (the host's own adaptive threshold neighbourhood).
const intersectSkipRatio = 16
