package exec

import (
	"testing"
	"time"

	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/rank"
	"griffin/internal/sched"
)

// buildIndex makes a tiny index with lists of the given lengths; list i
// holds multiples of (i+1) so intersections are non-trivial.
func buildIndex(t testing.TB, terms []string, lens []int) *index.Index {
	t.Helper()
	b := index.NewBuilder(index.CodecEF)
	for i, term := range terms {
		ids := make([]uint32, lens[i])
		for j := range ids {
			ids[j] = uint32((j + 1) * (i + 1))
		}
		if err := b.AddPostings(term, ids, nil); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func fetchAll(t testing.TB, ix *index.Index, terms []string) []Fetch {
	t.Helper()
	out := make([]Fetch, len(terms))
	for i, term := range terms {
		pl, ok := ix.Lookup(term)
		if !ok {
			t.Fatalf("term %q missing", term)
		}
		out[i] = Fetch{Term: term, List: pl}
	}
	return out
}

func testContext(ix *index.Index, dev *gpu.Device) *Context {
	return &Context{
		CPU:           hwmodel.DefaultCPU(),
		Device:        dev,
		Scorer:        rank.NewScorer(ix, rank.DefaultBM25()),
		SkipThreshold: 32,
		TopK:          10,
	}
}

// drainPlan collects the full op sequence a builder produces for a fixed
// intermediate-length schedule (lens[i] is the state before step i+1).
func drainPlan(b Builder, lens []int, onDevice bool) []Op {
	var all []Op
	i := 0
	for {
		st := State{OnDevice: onDevice}
		if i < len(lens) {
			st.Len = lens[i]
		}
		ops := b.Next(st)
		if ops == nil {
			return all
		}
		for _, op := range ops {
			if op.Kind == OpIntersect || op.Kind == OpMigrate {
				onDevice = op.Where == sched.GPU && !(op.Kind == OpMigrate)
			}
		}
		all = append(all, ops...)
		i++
	}
}

func kinds(ops []Op) []OpKind {
	out := make([]OpKind, len(ops))
	for i, op := range ops {
		out[i] = op.Kind
	}
	return out
}

func TestCPUBuilderPlanShape(t *testing.T) {
	ix := buildIndex(t, []string{"a", "b", "c"}, []int{100, 200, 400})
	lists := make([]*index.PostingList, 3)
	for i, term := range []string{"a", "b", "c"} {
		lists[i], _ = ix.Lookup(term)
	}
	ops := drainPlan(NewCPUBuilder(lists), []int{100, 50}, false)
	if len(ops) != 2 {
		t.Fatalf("expected 2 intersections, got %d: %v", len(ops), kinds(ops))
	}
	for i, op := range ops {
		if op.Kind != OpIntersect || op.Where != sched.CPU || op.Algo != AlgoCPUAdaptive {
			t.Errorf("op %d: %v/%v/%v, want CPU adaptive intersect", i, op.Kind, op.Where, op.Algo)
		}
	}
	// An emptied intermediate stops the pipeline early.
	ops = drainPlan(NewCPUBuilder(lists), []int{100, 0}, false)
	if len(ops) != 1 {
		t.Fatalf("empty intermediate: expected 1 intersection, got %d", len(ops))
	}
}

func TestGPUBuilderPlanShape(t *testing.T) {
	// Comparable lengths: merge-path with decompressed operands, every
	// upload cacheable.
	ix := buildIndex(t, []string{"a", "b"}, []int{1000, 2000})
	la, _ := ix.Lookup("a")
	lb, _ := ix.Lookup("b")
	ops := drainPlan(NewGPUBuilder([]*index.PostingList{la, lb}, sched.DefaultCrossover), []int{1000, 500}, false)
	want := []OpKind{OpUpload, OpDecompress, OpUpload, OpDecompress, OpIntersect, OpMigrate}
	got := kinds(ops)
	if len(got) != len(want) {
		t.Fatalf("plan %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("plan %v, want %v", got, want)
		}
	}
	if ops[4].Algo != AlgoMergePath {
		t.Errorf("comparable lists: algo %v, want merge-path", ops[4].Algo)
	}
	if !ops[5].Final {
		t.Errorf("drain migrate must be Final")
	}

	// Skewed lengths: binary-skips over the compressed long list, and the
	// long upload must bypass the cache (legacy engine behaviour).
	ix2 := buildIndex(t, []string{"s", "l"}, []int{100, 100_000})
	ls, _ := ix2.Lookup("s")
	ll, _ := ix2.Lookup("l")
	ops = drainPlan(NewGPUBuilder([]*index.PostingList{ls, ll}, sched.DefaultCrossover), []int{100, 50}, false)
	var skips *Op
	for i := range ops {
		if ops[i].Algo == AlgoBinarySkips {
			skips = &ops[i]
		}
	}
	if skips == nil {
		t.Fatalf("skewed lists: no binary-skips intersect in %v", kinds(ops))
	}
	for i := range ops {
		if ops[i].Kind == OpUpload && ops[i].Arg.List == ll && ops[i].Cacheable {
			t.Errorf("binary-skips long upload must not be cacheable")
		}
	}
}

func TestHybridBuilderMigratesOnce(t *testing.T) {
	// Lengths chosen so the ratio policy places step 1 on the GPU
	// (ratio < 128) and step 2 on the CPU (ratio >= 128 after shrink).
	ix := buildIndex(t, []string{"a", "b", "c"}, []int{10_000, 20_000, 60_000})
	lists := make([]*index.PostingList, 3)
	for i, term := range []string{"a", "b", "c"} {
		lists[i], _ = ix.Lookup(term)
	}
	b := NewHybridBuilder(lists, sched.NewRatioPolicy(), sched.DefaultCrossover)
	ops := drainPlan(b, []int{10_000, 50}, false)
	var migrates, gpuIx, cpuIx int
	for _, op := range ops {
		switch {
		case op.Kind == OpMigrate:
			migrates++
			if op.Final {
				t.Errorf("mid-query migrate must not be Final")
			}
		case op.Kind == OpIntersect && op.Where == sched.GPU:
			gpuIx++
		case op.Kind == OpIntersect && op.Where == sched.CPU:
			cpuIx++
		}
	}
	if gpuIx != 1 || cpuIx != 1 || migrates != 1 {
		t.Fatalf("gpu=%d cpu=%d migrates=%d, want 1/1/1 (plan %v)", gpuIx, cpuIx, migrates, kinds(ops))
	}
}

func TestEstimatePositive(t *testing.T) {
	cpu := hwmodel.DefaultCPU()
	gpuM := hwmodel.DefaultGPU()
	ops := []Op{
		{Kind: OpFetch},
		{Kind: OpUpload, Arg: Intermediate(false), ShortLen: 1000},
		{Kind: OpDecompress, LongLen: 1000},
		{Kind: OpIntersect, Algo: AlgoCPUAdaptive, ShortLen: 100, LongLen: 10_000},
		{Kind: OpIntersect, Algo: AlgoMergePath, ShortLen: 1000, LongLen: 2000},
		{Kind: OpIntersect, Algo: AlgoBinarySkips, ShortLen: 100, LongLen: 100_000},
		{Kind: OpMigrate, ShortLen: 500},
		{Kind: OpScore, ShortLen: 100, LongLen: 3},
		{Kind: OpTopK, ShortLen: 100},
	}
	for _, op := range ops {
		if est := op.Estimate(&cpu, &gpuM); est <= 0 {
			t.Errorf("%v/%v: estimate %v, want > 0", op.Kind, op.Algo, est)
		}
	}
}

// TestRunPlanTimeConservation pins the plan-trace invariant the load
// simulator replays: per-operator Took values partition the query's CPU
// and GPU time exactly, with no unattributed residue.
func TestRunPlanTimeConservation(t *testing.T) {
	ix := buildIndex(t, []string{"a", "b", "c"}, []int{4000, 9000, 50_000})
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	ctx := testContext(ix, dev)
	fetches := fetchAll(t, ix, []string{"a", "b", "c"})

	builders := map[string]func([]*index.PostingList) Builder{
		"cpu": func(l []*index.PostingList) Builder { return NewCPUBuilder(l) },
		"gpu": func(l []*index.PostingList) Builder { return NewGPUBuilder(l, sched.DefaultCrossover) },
		"hybrid": func(l []*index.PostingList) Builder {
			return NewHybridBuilder(l, sched.NewRatioPolicy(), sched.DefaultCrossover)
		},
	}
	for name, mk := range builders {
		out, err := Run(ctx, fetches, mk)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var cpuSum, gpuSum time.Duration
		for _, op := range out.Stats.Plan {
			if op.Where == sched.GPU {
				gpuSum += op.Took
			} else {
				cpuSum += op.Took
			}
		}
		if cpuSum != out.Stats.CPUTime {
			t.Errorf("%s: plan CPU %v != stats %v", name, cpuSum, out.Stats.CPUTime)
		}
		if gpuSum != out.Stats.GPUTime {
			t.Errorf("%s: plan GPU %v != stats %v", name, gpuSum, out.Stats.GPUTime)
		}
		if out.Stats.Latency != out.Stats.CPUTime+out.Stats.GPUTime {
			t.Errorf("%s: latency %v != cpu+gpu", name, out.Stats.Latency)
		}
		if out.Docs == nil {
			t.Errorf("%s: nil Docs", name)
		}
		if len(out.Candidates) != out.Stats.Candidates {
			t.Errorf("%s: candidates %d != stats %d", name, len(out.Candidates), out.Stats.Candidates)
		}
	}
}

// TestRunModesAgree checks all builders produce identical candidates.
func TestRunModesAgree(t *testing.T) {
	ix := buildIndex(t, []string{"a", "b", "c"}, []int{3000, 8000, 40_000})
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	ctx := testContext(ix, dev)
	fetches := fetchAll(t, ix, []string{"a", "b", "c"})

	ref, err := Run(ctx, fetches, func(l []*index.PostingList) Builder { return NewCPUBuilder(l) })
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Candidates) == 0 {
		t.Fatal("reference intersection is empty; pick better test lists")
	}
	others := map[string]func([]*index.PostingList) Builder{
		"gpu": func(l []*index.PostingList) Builder { return NewGPUBuilder(l, sched.DefaultCrossover) },
		"hybrid": func(l []*index.PostingList) Builder {
			return NewHybridBuilder(l, sched.NewRatioPolicy(), sched.DefaultCrossover)
		},
		"per-query": func(l []*index.PostingList) Builder {
			return NewPerQueryBuilder(l, sched.NewRatioPolicy(), sched.DefaultCrossover)
		},
	}
	for name, mk := range others {
		out, err := Run(ctx, fetches, mk)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out.Candidates) != len(ref.Candidates) {
			t.Fatalf("%s: %d candidates, cpu got %d", name, len(out.Candidates), len(ref.Candidates))
		}
		for i := range ref.Candidates {
			if out.Candidates[i] != ref.Candidates[i] {
				t.Fatalf("%s: candidate[%d] = %d, cpu got %d", name, i, out.Candidates[i], ref.Candidates[i])
			}
		}
	}
}
