// Package ef implements Elias-Fano encoding of monotone integer sequences
// (Elias 1974; Vigna's quasi-succinct indices, WSDM 2013), the codec
// Griffin-GPU adopts for its parallel decompression path.
//
// For a sequence of n non-decreasing integers with upper bound U, each
// value is split into b = floor(log2(U/n)) low bits, stored contiguously in
// the low-bits array, and the remaining high bits, stored as unary-coded
// d-gaps in the high-bits array (Figure 4 of the paper). Total space is
// close to the information-theoretic optimum, and decompression of element
// i needs only a select operation on the high-bits array plus one low-bits
// fetch — independent per element, which is what makes the scheme
// parallelizable on the (simulated) GPU.
//
// Like the PForDelta baseline, lists are partitioned into fixed 128-element
// blocks ("fixed-length partitioned EF", §3.1.1) so skip pointers can
// address and decompress blocks independently.
package ef

import (
	"errors"
	"fmt"

	"griffin/internal/bitutil"
)

// BlockSize is the number of docIDs per partitioned-EF block.
const BlockSize = 128

// ErrNotAscending is returned when input docIDs are not strictly ascending.
var ErrNotAscending = errors.New("ef: docIDs not strictly ascending")

// Block is one Elias-Fano-encoded block of up to BlockSize docIDs.
//
// Values are encoded relative to FirstDocID (the block's first value):
// element i stores v_i = docID_i - FirstDocID, so v_0 = 0 and the local
// universe is LastDocID - FirstDocID.
type Block struct {
	// FirstDocID is the first docID in the block, stored uncompressed.
	FirstDocID uint32
	// N is the number of encoded values.
	N int
	// B is the number of low bits per element.
	B int
	// HighBits is the unary-coded high-bits array: for each element a run
	// of zeros (the d-gap of its high part) terminated by a one. It
	// contains exactly N one-bits.
	HighBits []uint64
	// HighLen is the length of HighBits in bits.
	HighLen int
	// LowBits stores N contiguous B-bit low parts.
	LowBits []uint64
}

// List is a partitioned Elias-Fano compressed posting list.
type List struct {
	// N is the total number of docIDs.
	N int
	// Blocks are the encoded blocks in docID order.
	Blocks []Block
}

// Compress encodes a strictly ascending docID list.
func Compress(docIDs []uint32) (*List, error) {
	for i := 1; i < len(docIDs); i++ {
		if docIDs[i] <= docIDs[i-1] {
			return nil, fmt.Errorf("%w: ids[%d]=%d ids[%d]=%d",
				ErrNotAscending, i-1, docIDs[i-1], i, docIDs[i])
		}
	}
	l := &List{N: len(docIDs)}
	for start := 0; start < len(docIDs); start += BlockSize {
		end := start + BlockSize
		if end > len(docIDs) {
			end = len(docIDs)
		}
		l.Blocks = append(l.Blocks, compressBlock(docIDs[start:end]))
	}
	return l, nil
}

func compressBlock(ids []uint32) Block {
	n := len(ids)
	first := ids[0]
	u := uint64(ids[n-1] - first) // local universe (v_{n-1})
	// b = floor(log2(U/n)) per the paper; 0 when U < n (dense runs).
	b := 0
	if u/uint64(n) >= 1 {
		b = bitutil.Log2Floor(u / uint64(n))
	}

	low := bitutil.NewWriter(n * b)
	high := bitutil.NewWriter(2 * n)
	prevHigh := uint64(0)
	for _, id := range ids {
		v := uint64(id - first)
		low.WriteBits(v, b) // no-op when b == 0
		h := v >> uint(b)
		high.WriteUnary(int(h - prevHigh))
		prevHigh = h
	}
	return Block{
		FirstDocID: first,
		N:          n,
		B:          b,
		HighBits:   high.Words(),
		HighLen:    high.Len(),
		LowBits:    low.Words(),
	}
}

// DecompressInto decodes the block's docIDs into dst, which must have
// capacity for Block.N values, and returns the count. This is the serial
// CPU decode: scan the unary high-bits array accumulating zero-counts,
// concatenating each recovered high part with its low bits.
func (b *Block) DecompressInto(dst []uint32) int {
	r := bitutil.NewReader(b.HighBits)
	var high uint64
	lowPos := 0
	for i := 0; i < b.N; i++ {
		high += uint64(r.ReadUnary())
		var low uint64
		if b.B > 0 {
			low = bitutil.GetBits(b.LowBits, lowPos, b.B)
			lowPos += b.B
		}
		dst[i] = b.FirstDocID + uint32(high<<uint(b.B)|low)
	}
	return b.N
}

// Get returns the i-th docID of the block (0-based) using select on the
// high-bits array — the random-access path skip-pointer searches use.
func (b *Block) Get(i int) uint32 {
	// Select the (i+1)-th one-bit in HighBits.
	seen := 0
	for wi, w := range b.HighBits {
		pc := bitutil.Popcount(w)
		if seen+pc > i {
			pos := wi*bitutil.WordBits + bitutil.SelectInWord(w, i-seen)
			high := uint64(pos - i) // zeros before the element's one-bit
			var low uint64
			if b.B > 0 {
				low = bitutil.GetBits(b.LowBits, i*b.B, b.B)
			}
			return b.FirstDocID + uint32(high<<uint(b.B)|low)
		}
		seen += pc
	}
	panic("ef: Get index out of range")
}

// Decompress decodes the whole list into a fresh slice of docIDs.
func (l *List) Decompress() []uint32 {
	out := make([]uint32, 0, l.N)
	buf := make([]uint32, BlockSize)
	for i := range l.Blocks {
		n := l.Blocks[i].DecompressInto(buf)
		out = append(out, buf[:n]...)
	}
	return out
}

// CompressedBits returns the total compressed size in bits: high-bits
// array, low-bits array, and the per-block header (first docID 32b,
// count 8b, width 6b).
func (l *List) CompressedBits() int64 {
	var bits int64
	for i := range l.Blocks {
		b := &l.Blocks[i]
		bits += int64(b.HighLen) + int64(b.N*b.B) + blockHeaderBits
	}
	return bits
}

const blockHeaderBits = 32 + 8 + 6

// Ratio returns the compression ratio relative to raw 32-bit docIDs.
func (l *List) Ratio() float64 {
	if l.N == 0 {
		return 0
	}
	return float64(int64(l.N)*32) / float64(l.CompressedBits())
}

// CompressedBytes returns the compressed size in bytes, rounded up; this is
// what the scheduler charges for PCIe transfer of a compressed list.
func (l *List) CompressedBytes() int64 {
	return (l.CompressedBits() + 7) / 8
}
