package ef

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func genAscending(rng *rand.Rand, n int, maxGap uint32) []uint32 {
	ids := make([]uint32, n)
	cur := uint32(rng.Intn(1000))
	for i := 0; i < n; i++ {
		cur += 1 + uint32(rng.Intn(int(maxGap)))
		ids[i] = cur
	}
	return ids
}

func TestPaperExample(t *testing.T) {
	// Figure 4 of the paper: sequence (5,6,8,15,18,33).
	ids := []uint32{5, 6, 8, 15, 18, 33}
	l, err := Compress(ids)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Decompress(); !reflect.DeepEqual(got, ids) {
		t.Fatalf("got %v want %v", got, ids)
	}
}

func TestRoundTripSmall(t *testing.T) {
	cases := [][]uint32{
		{0},
		{7},
		{0, 1, 2, 3, 4, 5},
		{1, 1000000},
		{10, 20, 30, 1 << 30},
	}
	for i, ids := range cases {
		l, err := Compress(ids)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := l.Decompress(); !reflect.DeepEqual(got, ids) {
			t.Fatalf("case %d: got %v want %v", i, got, ids)
		}
	}
}

func TestRoundTripSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, n := range []int{1, 2, 127, 128, 129, 255, 256, 1000, 65536} {
		for _, maxGap := range []uint32{1, 2, 16, 1000, 1 << 20} {
			if uint64(n)*uint64(maxGap) > 1<<31 {
				continue // would overflow the uint32 docID space
			}
			ids := genAscending(rng, n, maxGap)
			l, err := Compress(ids)
			if err != nil {
				t.Fatalf("n=%d gap=%d: %v", n, maxGap, err)
			}
			if got := l.Decompress(); !reflect.DeepEqual(got, ids) {
				t.Fatalf("n=%d gap=%d: round trip mismatch", n, maxGap)
			}
		}
	}
}

func TestDenseRunZeroLowBits(t *testing.T) {
	// Consecutive integers: U == n-1 < n, so b == 0 and everything lives
	// in the unary high-bits array.
	ids := make([]uint32, 200)
	for i := range ids {
		ids[i] = uint32(i + 42)
	}
	l, err := Compress(ids)
	if err != nil {
		t.Fatal(err)
	}
	if b := l.Blocks[0].B; b != 0 {
		t.Fatalf("dense block B = %d, want 0", b)
	}
	if got := l.Decompress(); !reflect.DeepEqual(got, ids) {
		t.Fatal("round trip mismatch")
	}
}

func TestGetRandomAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ids := genAscending(rng, 1000, 5000)
	l, _ := Compress(ids)
	for trial := 0; trial < 2000; trial++ {
		i := rng.Intn(len(ids))
		blk := &l.Blocks[i/BlockSize]
		if got := blk.Get(i % BlockSize); got != ids[i] {
			t.Fatalf("Get(%d) = %d, want %d", i, got, ids[i])
		}
	}
}

func TestGetSequentialAllElements(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ids := genAscending(rng, 300, 1<<16)
	l, _ := Compress(ids)
	for i, want := range ids {
		blk := &l.Blocks[i/BlockSize]
		if got := blk.Get(i % BlockSize); got != want {
			t.Fatalf("Get(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestNotAscending(t *testing.T) {
	for _, ids := range [][]uint32{{3, 3}, {5, 4}, {1, 2, 2, 9}} {
		if _, err := Compress(ids); !errors.Is(err, ErrNotAscending) {
			t.Fatalf("Compress(%v): err = %v, want ErrNotAscending", ids, err)
		}
	}
}

func TestEmptyList(t *testing.T) {
	l, err := Compress(nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.N != 0 || len(l.Blocks) != 0 {
		t.Fatalf("empty: N=%d blocks=%d", l.N, len(l.Blocks))
	}
	if got := l.Decompress(); len(got) != 0 {
		t.Fatalf("decompress empty: %v", got)
	}
}

func TestBlockIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ids := genAscending(rng, 1000, 300)
	l, _ := Compress(ids)
	out := make([]uint32, len(ids))
	buf := make([]uint32, BlockSize)
	for i := len(l.Blocks) - 1; i >= 0; i-- {
		n := l.Blocks[i].DecompressInto(buf)
		copy(out[i*BlockSize:], buf[:n])
	}
	if !reflect.DeepEqual(out, ids) {
		t.Fatal("out-of-order block decompression mismatch")
	}
}

func TestHighBitsOnesCount(t *testing.T) {
	// Invariant: the high-bits array contains exactly N one-bits.
	rng := rand.New(rand.NewSource(24))
	ids := genAscending(rng, 777, 9999)
	l, _ := Compress(ids)
	for bi := range l.Blocks {
		b := &l.Blocks[bi]
		ones := 0
		for _, w := range b.HighBits {
			for k := 0; k < 64; k++ {
				if w&(1<<uint(k)) != 0 {
					ones++
				}
			}
		}
		if ones != b.N {
			t.Fatalf("block %d: %d one-bits, want %d", bi, ones, b.N)
		}
	}
}

func TestCompressionBeatsPforDeltaOnClusteredData(t *testing.T) {
	// The paper's Table 1: EF ratio 4.6 vs PForDelta 3.3 on the real
	// corpus. Property checked here: EF space is within 2n + n*b bits +
	// headers (quasi-succinct bound).
	rng := rand.New(rand.NewSource(25))
	ids := genAscending(rng, 100000, 40)
	l, _ := Compress(ids)
	bound := int64(2*l.N) + int64(l.N)*int64(l.Blocks[0].B+1) + int64(len(l.Blocks))*64
	if got := l.CompressedBits(); got > bound {
		t.Fatalf("compressed bits %d exceed quasi-succinct bound %d", got, bound)
	}
	if r := l.Ratio(); r < 3 {
		t.Fatalf("ratio %.2f unexpectedly low for dense list", r)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(gaps []uint16) bool {
		if len(gaps) == 0 {
			return true
		}
		ids := make([]uint32, len(gaps))
		cur := uint32(0)
		for i, g := range gaps {
			cur += uint32(g) + 1
			ids[i] = cur
		}
		l, err := Compress(ids)
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(l.Decompress(), ids) {
			return false
		}
		// Random access agrees with sequential decode.
		for i := 0; i < len(ids); i += 1 + len(ids)/7 {
			if l.Blocks[i/BlockSize].Get(i%BlockSize) != ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	ids := genAscending(rng, 500, 100)
	l, _ := Compress(ids)
	if got, bits := l.CompressedBytes(), l.CompressedBits(); got != (bits+7)/8 {
		t.Fatalf("CompressedBytes = %d, bits = %d", got, bits)
	}
}

func BenchmarkCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(27))
	ids := genAscending(rng, 1<<17, 40)
	b.SetBytes(int64(len(ids) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(ids); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	rng := rand.New(rand.NewSource(28))
	ids := genAscending(rng, 1<<17, 40)
	l, _ := Compress(ids)
	b.SetBytes(int64(len(ids) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Decompress()
	}
}

func BenchmarkGet(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	ids := genAscending(rng, 1<<16, 40)
	l, _ := Compress(ids)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(ids)
		l.Blocks[j/BlockSize].Get(j % BlockSize)
	}
}
