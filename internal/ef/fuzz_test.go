package ef

import (
	"reflect"
	"testing"
)

// FuzzRoundTrip feeds arbitrary gap bytes through compress/decompress and
// checks the identity, plus random-access agreement. Run with
// `go test -fuzz=FuzzRoundTrip ./internal/ef/` for continuous fuzzing;
// the seed corpus runs as a normal test.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0})
	f.Add([]byte{255, 255, 255, 255, 0, 0, 1})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, gapBytes []byte) {
		if len(gapBytes) == 0 || len(gapBytes) > 4096 {
			return
		}
		ids := make([]uint32, len(gapBytes))
		cur := uint32(0)
		for i, g := range gapBytes {
			cur += uint32(g) + 1
			ids[i] = cur
		}
		l, err := Compress(ids)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		got := l.Decompress()
		if !reflect.DeepEqual(got, ids) {
			t.Fatalf("round trip mismatch: %v vs %v", got, ids)
		}
		for i := 0; i < len(ids); i += 1 + len(ids)/13 {
			if v := l.Blocks[i/BlockSize].Get(i % BlockSize); v != ids[i] {
				t.Fatalf("Get(%d) = %d, want %d", i, v, ids[i])
			}
		}
	})
}
