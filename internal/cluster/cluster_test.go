package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"griffin/internal/core"
	"griffin/internal/hwmodel"
	"griffin/internal/workload"
)

func TestClusterLatencyIsMaxShardPlusMerge(t *testing.T) {
	c := parityCorpus(t)
	queries := parityQueries(c, 40)
	cl := buildCluster(t, c, 4, Config{Engine: core.Config{Mode: core.Hybrid}, TopK: 10})
	defer cl.Close()

	for i, q := range queries {
		r, err := cl.Search(context.Background(), q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		var max time.Duration
		for _, ss := range r.Stats.Shards {
			if ss.Err != "" || ss.TimedOut {
				t.Fatalf("query %d: unexpected degradation %+v", i, ss)
			}
			if ss.Query.Latency > max {
				max = ss.Query.Latency
			}
		}
		if r.Stats.MaxShard != max {
			t.Fatalf("query %d: MaxShard %v != max shard latency %v", i, r.Stats.MaxShard, max)
		}
		if r.Stats.Latency != r.Stats.MaxShard+r.Stats.MergeTime {
			t.Fatalf("query %d: Latency %v != MaxShard %v + MergeTime %v",
				i, r.Stats.Latency, r.Stats.MaxShard, r.Stats.MergeTime)
		}
		if len(r.Docs) > 0 && r.Stats.MergeTime <= 0 {
			t.Fatalf("query %d: merged %d docs for free", i, len(r.Docs))
		}
	}
}

func TestClusterTimeoutDegradesGracefully(t *testing.T) {
	c := parityCorpus(t)
	queries := parityQueries(c, 30)
	probe := buildCluster(t, c, 2, Config{Engine: core.Config{Mode: core.CPUOnly}, TopK: 10})
	defer probe.Close()

	// Find a query whose two shards land measurably apart, then set the
	// timeout between them: exactly the slow shard must go missing.
	for _, q := range queries {
		r, err := probe.Search(context.Background(), q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		l0 := r.Stats.Shards[0].Query.Latency
		l1 := r.Stats.Shards[1].Query.Latency
		slow, fast := 0, 1
		if l1 > l0 {
			slow, fast = 1, 0
		}
		lo, hi := r.Stats.Shards[fast].Query.Latency, r.Stats.Shards[slow].Query.Latency
		if hi-lo < 4 {
			continue
		}
		cut := lo + (hi-lo)/2

		cl := buildCluster(t, c, 2, Config{
			Engine: core.Config{Mode: core.CPUOnly}, TopK: 10, ShardTimeout: cut,
		})
		defer cl.Close()
		dr, err := cl.Search(context.Background(), q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		if !dr.Stats.Degraded {
			t.Fatalf("query %v: expected degraded result at timeout %v (shards %v/%v)", q.Terms, cut, lo, hi)
		}
		if len(dr.Stats.Missing) != 1 || dr.Stats.Missing[0] != slow {
			t.Fatalf("query %v: Missing = %v, want [%d]", q.Terms, dr.Stats.Missing, slow)
		}
		if !dr.Stats.Shards[slow].TimedOut {
			t.Fatalf("query %v: slow shard not marked TimedOut", q.Terms)
		}
		// The gather waited out the budget: the critical path charges it.
		if dr.Stats.MaxShard != cut {
			t.Fatalf("query %v: MaxShard %v, want the timeout %v", q.Terms, dr.Stats.MaxShard, cut)
		}
		// Partial results come only from the surviving shard.
		surviving := map[uint32]bool{}
		for _, d := range dr.Docs {
			surviving[d.DocID] = true
		}
		for d := range surviving {
			if workload.ShardOf(d, 2) != fast {
				t.Fatalf("query %v: degraded result contains doc %d from the dropped shard", q.Terms, d)
			}
		}
		return
	}
	t.Skip("no query with sufficiently uneven shard latencies")
}

func TestClusterAllShardsTimedOutReturnsEmptyDegraded(t *testing.T) {
	c := parityCorpus(t)
	cl := buildCluster(t, c, 2, Config{
		Engine: core.Config{Mode: core.CPUOnly}, TopK: 10, ShardTimeout: time.Nanosecond,
	})
	defer cl.Close()
	r, err := cl.Search(context.Background(), []string{workload.TermName(3), workload.TermName(9)})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stats.Degraded || len(r.Stats.Missing) != 2 {
		t.Fatalf("want fully degraded result, got %+v", r.Stats)
	}
	if r.Docs == nil || len(r.Docs) != 0 {
		t.Fatalf("want empty non-nil docs, got %v", r.Docs)
	}
	if r.Stats.MaxShard != time.Nanosecond {
		t.Fatalf("MaxShard %v, want the timeout", r.Stats.MaxShard)
	}
}

func TestClusterAllShardsFailedReturnsError(t *testing.T) {
	c := parityCorpus(t)
	ixs, err := workload.PartitionCorpus(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A device too small to hold any list makes every GPU upload fail:
	// with all shards erroring the query itself errors.
	model := hwmodel.DefaultGPU()
	model.MemoryBytes = 16
	cl, err := New(ixs, Config{
		Engine: core.Config{Mode: core.GPUOnly}, TopK: 10, DeviceModel: model,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Search(context.Background(), []string{workload.TermName(3), workload.TermName(9)}); err == nil {
		t.Fatal("expected error when every shard fails")
	}
}

func TestRoundRobinSpreadsReplicas(t *testing.T) {
	c := parityCorpus(t)
	cl := buildCluster(t, c, 2, Config{
		Engine: core.Config{Mode: core.CPUOnly}, TopK: 10,
		Replicas: 2, Routing: RoundRobin,
	})
	defer cl.Close()
	q := []string{workload.TermName(3), workload.TermName(9)}
	for i := 0; i < 6; i++ {
		if _, err := cl.Search(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	for _, tel := range cl.Telemetry() {
		if tel.Queries != 3 {
			t.Fatalf("shard %d replica %d served %d queries, want 3 (round-robin)",
				tel.Shard, tel.Replica, tel.Queries)
		}
	}
}

func TestLeastPendingPrefersIdleReplica(t *testing.T) {
	c := parityCorpus(t)
	cl := buildCluster(t, c, 1, Config{
		Engine: core.Config{Mode: core.Hybrid}, TopK: 10,
		Replicas: 3, Routing: LeastPending,
	})
	defer cl.Close()
	q := []string{workload.TermName(3), workload.TermName(9)}
	// Sequential queries always find every device idle (zero backlog,
	// zero in-flight), so the deterministic tie-break keeps routing to
	// replica 0 — the property that matters is it never queues behind a
	// busy replica when an idle one exists.
	for i := 0; i < 4; i++ {
		if _, err := cl.Search(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	tel := cl.Telemetry()
	if tel[0].Queries != 4 {
		t.Fatalf("replica 0 served %d, want all 4 under idle ties", tel[0].Queries)
	}
	if tel[1].Queries != 0 || tel[2].Queries != 0 {
		t.Fatalf("idle-tie routing leaked to replicas 1/2: %d/%d", tel[1].Queries, tel[2].Queries)
	}
}

func TestClusterUnknownTermsWellFormed(t *testing.T) {
	c := parityCorpus(t)
	cl := buildCluster(t, c, 3, Config{Engine: core.Config{Mode: core.Hybrid}, TopK: 10})
	defer cl.Close()
	r, err := cl.Search(context.Background(), []string{"definitely-not-indexed"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Docs == nil || len(r.Docs) != 0 {
		t.Fatalf("want empty non-nil docs, got %v", r.Docs)
	}
	if r.Stats.Degraded {
		t.Fatal("empty conjunction must not degrade")
	}
	if len(r.Stats.Shards) != 3 {
		t.Fatalf("want 3 shard records, got %d", len(r.Stats.Shards))
	}
}

func TestClusterTelemetryShape(t *testing.T) {
	c := parityCorpus(t)
	cl := buildCluster(t, c, 2, Config{
		Engine:   core.Config{Mode: core.Hybrid, CacheLists: true},
		TopK:     10,
		Replicas: 2,
	})
	defer cl.Close()
	q := []string{workload.TermName(3), workload.TermName(9)}
	if _, err := cl.Search(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	tel := cl.Telemetry()
	if len(tel) != 4 {
		t.Fatalf("want 2 shards x 2 replicas = 4 telemetry rows, got %d", len(tel))
	}
	var admitted int64
	for _, row := range tel {
		if row.Device == nil {
			t.Fatalf("shard %d replica %d: hybrid replica missing device stats", row.Shard, row.Replica)
		}
		admitted += row.Device.Admitted
	}
	if admitted == 0 {
		t.Fatal("no replica admitted any device work")
	}
}

// TestClusterConcurrentSearchRace drives overlapping scatter-gather
// queries from many goroutines (run under -race in CI): routing counters,
// per-replica runtimes, and merge must all be safe under concurrency.
func TestClusterConcurrentSearchRace(t *testing.T) {
	c := parityCorpus(t)
	queries := parityQueries(c, 24)
	cl := buildCluster(t, c, 4, Config{
		Engine:   core.Config{Mode: core.Hybrid, CacheLists: true},
		TopK:     10,
		Replicas: 2,
		Routing:  LeastPending,
	})
	defer cl.Close()

	var wg sync.WaitGroup
	errs := make(chan error, len(queries))
	for _, q := range queries {
		wg.Add(1)
		go func(terms []string) {
			defer wg.Done()
			if _, err := cl.Search(context.Background(), terms); err != nil {
				errs <- err
			}
		}(q.Terms)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
