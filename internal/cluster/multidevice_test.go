package cluster

import (
	"context"
	"strings"
	"testing"

	"griffin/internal/core"
	"griffin/internal/fault"
	"griffin/internal/sched"
)

// Multi-device replicas compose with the cluster layer: results stay
// bit-identical to single-device replicas, telemetry grows per-device
// snapshots, and injected faults land on per-device sites.
func TestClusterMultiDeviceReplicas(t *testing.T) {
	c := parityCorpus(t)
	queries := parityQueries(c, 60)

	single := buildCluster(t, c, 2, Config{
		Engine: core.Config{Mode: core.Hybrid}, TopK: 10,
	})
	multi := buildCluster(t, c, 2, Config{
		Engine: core.Config{Mode: core.Hybrid, Devices: 2, Placement: &sched.RoundRobinDevices{}},
		TopK:   10,
	})
	defer single.Close()
	defer multi.Close()

	for i, q := range queries {
		want, err := single.Search(context.Background(), q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		got, err := multi.Search(context.Background(), q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Docs) != len(want.Docs) {
			t.Fatalf("query %d %v: %d docs != %d", i, q.Terms, len(got.Docs), len(want.Docs))
		}
		for j := range want.Docs {
			if got.Docs[j] != want.Docs[j] {
				t.Fatalf("query %d %v: doc[%d] %+v != %+v", i, q.Terms, j, got.Docs[j], want.Docs[j])
			}
		}
	}

	for _, tl := range multi.Telemetry() {
		if tl.Device == nil {
			t.Fatalf("replica %s: no device snapshot", tl.Site)
		}
		if len(tl.Devices) != 2 {
			t.Fatalf("replica %s: %d device snapshots, want 2", tl.Site, len(tl.Devices))
		}
		var admitted int64
		for _, d := range tl.Devices {
			admitted += d.Admitted
		}
		if admitted == 0 {
			t.Fatalf("replica %s served queries but admitted none on any device", tl.Site)
		}
	}
	for _, tl := range single.Telemetry() {
		if tl.Devices != nil {
			t.Fatalf("single-device replica %s grew per-device snapshots", tl.Site)
		}
	}
}

// Injected device faults on multi-device replicas are attributed to
// per-device sites ("s<shard>r<replica>.g<dev>"), while single-device
// clusters keep the bare replica site names (so their seeded fault
// streams are unchanged by the node refactor).
func TestClusterPerDeviceFaultSites(t *testing.T) {
	c := parityCorpus(t)
	queries := parityQueries(c, 80)

	run := func(devices int) map[string]int64 {
		inj := fault.NewInjector(fault.Plan{Seed: 5, Rules: []fault.Rule{
			{Kind: fault.KernelLaunch, Rate: 0.05},
		}})
		cl := buildCluster(t, c, 2, Config{
			Engine: core.Config{Mode: core.Hybrid, Devices: devices, Placement: &sched.RoundRobinDevices{}},
			TopK:   10,
			Fault:  inj,
		})
		defer cl.Close()
		for _, q := range queries {
			if _, err := cl.Search(context.Background(), q.Terms); err != nil {
				t.Fatal(err)
			}
		}
		if inj.Total() == 0 {
			t.Fatal("fault plan fired nothing")
		}
		return inj.SiteCounts()
	}

	for site := range run(1) {
		if strings.Contains(site, ".g") {
			t.Fatalf("single-device cluster used device-suffixed site %q", site)
		}
	}
	multiSites := run(2)
	perDevice := 0
	for site := range multiSites {
		if !strings.Contains(site, ".g") {
			t.Fatalf("multi-device cluster used bare site %q", site)
		}
		perDevice++
	}
	if perDevice < 2 {
		t.Fatalf("faults landed on %d device sites: %v", perDevice, multiSites)
	}
}
