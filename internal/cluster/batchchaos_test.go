package cluster

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"griffin/internal/core"
	"griffin/internal/fault"
)

// faultSite is the timing-independent identity of one injected fault.
// Event.At is deliberately excluded: fault *decisions* hash (site, kind,
// opportunity index) and must not move when batching reshapes the
// timeline, but the timeline position at which an opportunity occurs is
// exactly what batching changes.
type faultSite struct {
	Site string
	Seq  int64
	Kind fault.Kind
}

func sites(events []fault.Event) []faultSite {
	out := make([]faultSite, len(events))
	for i, e := range events {
		out[i] = faultSite{Site: e.Site, Seq: e.Seq, Kind: e.Kind}
	}
	return out
}

// Batching must not move fault sites: the injector draws per-opportunity
// hashes over (site, kind, seq), and the batching stage sits after the
// submit hook at the same pipeline position, so an identically seeded
// chaotic run fires the same faults at the same opportunities whether
// batching is off or on. A batching-enabled run is also bit-reproducible
// against itself — timings included.
func TestBatchingPreservesFaultSites(t *testing.T) {
	c := parityCorpus(t)
	queries := parityQueries(c, 40)
	run := func(window time.Duration) ([]fault.Event, []time.Duration) {
		inj := fault.NewInjector(fault.Plan{Seed: 1234, Rules: []fault.Rule{
			{Kind: fault.KernelLaunch, Rate: 0.05},
			{Kind: fault.TransferError, Rate: 0.05},
			{Kind: fault.DeviceReset, Rate: 0.01, Stall: 2 * time.Millisecond},
			{Kind: fault.ShardStall, Rate: 0.05, Stall: 3 * time.Millisecond},
			{Kind: fault.EngineError, Rate: 0.03},
		}})
		cl := buildCluster(t, c, 2, Config{
			Engine:     core.Config{Mode: core.Hybrid, BatchWindow: window},
			TopK:       10,
			Replicas:   2,
			Fault:      inj,
			HedgeDelay: 2 * time.Millisecond,
		})
		defer cl.Close()
		var lats []time.Duration
		var at time.Duration
		for _, q := range queries {
			at += 500 * time.Microsecond
			r, err := cl.SearchAt(context.Background(), q.Terms, at)
			if err != nil {
				if !errors.Is(err, ErrAllShardsFailed) {
					t.Fatal(err)
				}
				lats = append(lats, -1)
				continue
			}
			lats = append(lats, r.Stats.Latency)
		}
		return inj.Log(), lats
	}

	offLog, _ := run(0)
	onLog, onLats := run(500 * time.Microsecond)
	onLog2, onLats2 := run(500 * time.Microsecond)

	if got, want := sites(onLog), sites(offLog); !reflect.DeepEqual(got, want) {
		t.Fatalf("batching moved fault sites:\n off %v\n on  %v", want, got)
	}
	if !reflect.DeepEqual(onLog, onLog2) {
		t.Fatalf("batching-on runs diverge: %d vs %d events", len(onLog), len(onLog2))
	}
	if !reflect.DeepEqual(onLats, onLats2) {
		t.Fatal("batching-on per-query latencies differ across identically seeded runs")
	}
	if len(offLog) == 0 {
		t.Fatal("chaos plan injected nothing (test is vacuous)")
	}
}
