// Package cluster is the sharded serving layer above the single-node
// Griffin engine: a corpus document-partitioned across N shards
// (workload.PartitionIndex), one core.Engine plus its own simulated
// device per shard replica, and scatter-gather query execution — fan out
// to every shard concurrently, merge the per-shard top-k lists into the
// global top-k, and report a critical-path latency model (cluster latency
// = max over shard latencies + merge cost under the calibrated CPU
// model).
//
// The paper evaluates one CPU+GPU node; its §5 discussion rejects
// caching the whole corpus on one device precisely because device memory
// cannot hold it. Partitioning the documents across devices is the step
// that scales the reproduction past one node's memory while reusing every
// existing layer: each shard runs the unchanged plan-builder/executor
// pipeline on its own gpu.DeviceRuntime, replica routing reuses the
// runtime's backlog signal (the same sched.DeviceBacklog view the
// load-aware spill policy consults), and merge selection reuses the
// engine's rank.Beats total order — which is what makes an N-shard
// scatter-gather result bit-identical to a single-engine run over the
// unpartitioned corpus.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"griffin/internal/core"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/kernels"
)

// Config parameterizes a Cluster.
type Config struct {
	// Replicas is the number of engine replicas per shard (0 = 1). Each
	// replica has its own simulated device and runtime; the router
	// spreads queries across them.
	Replicas int
	// Routing picks the replica for each shard of a query (default
	// RoundRobin).
	Routing Routing
	// Engine is the per-replica engine template. Device and Runtime are
	// ignored: every replica gets a private device (its own DeviceModel
	// instance) and builds its own runtime from Engine.Streams, because a
	// shard *is* a device in this layer. Engine.TopK is overridden by
	// TopK so shard selections cover the cluster result size.
	Engine core.Config
	// TopK is the cluster result count (0 = 10).
	TopK int
	// ShardTimeout bounds each shard's simulated latency. A shard whose
	// response would land past the budget is dropped: the query degrades
	// (Stats.Degraded, Stats.Missing) instead of failing, and the cluster
	// latency charges the full timeout for having waited. Zero disables
	// timeouts.
	ShardTimeout time.Duration
	// CPU prices the gather-side merge (zero value = hwmodel.DefaultCPU()).
	CPU hwmodel.CPUModel
	// DeviceModel builds each replica's private simulated device (zero
	// value = hwmodel.DefaultGPU()).
	DeviceModel hwmodel.GPUModel
}

// Cluster serves queries over document-partitioned shards.
type Cluster struct {
	cfg    Config
	shards []*shardGroup
}

// New builds a cluster over one index per shard (typically the output of
// workload.PartitionIndex; a single unpartitioned index gives a
// one-shard cluster). Engines and devices are created per replica.
func New(ixs []*index.Index, cfg Config) (*Cluster, error) {
	if len(ixs) == 0 {
		return nil, fmt.Errorf("cluster: no shard indexes")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	if cfg.CPU == (hwmodel.CPUModel{}) {
		cfg.CPU = hwmodel.DefaultCPU()
	}
	if cfg.DeviceModel == (hwmodel.GPUModel{}) {
		cfg.DeviceModel = hwmodel.DefaultGPU()
	}
	c := &Cluster{cfg: cfg}
	for s, ix := range ixs {
		g := &shardGroup{id: s}
		for r := 0; r < cfg.Replicas; r++ {
			ecfg := cfg.Engine
			ecfg.TopK = cfg.TopK
			ecfg.Runtime = nil
			ecfg.Device = nil
			if ecfg.Mode != core.CPUOnly {
				ecfg.Device = gpu.New(cfg.DeviceModel, 0)
			}
			eng, err := core.New(ix, ecfg)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("cluster: shard %d replica %d: %w", s, r, err)
			}
			g.replicas = append(g.replicas, &replica{engine: eng})
		}
		c.shards = append(c.shards, g)
	}
	return c, nil
}

// Close releases every replica engine's device resources.
func (c *Cluster) Close() {
	for _, g := range c.shards {
		for _, r := range g.replicas {
			r.engine.Close()
		}
	}
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// Replicas returns the per-shard replica count.
func (c *Cluster) Replicas() int { return c.cfg.Replicas }

// TopK returns the cluster result count.
func (c *Cluster) TopK() int { return c.cfg.TopK }

// Mode returns the replica engines' placement mode.
func (c *Cluster) Mode() core.Mode { return c.cfg.Engine.Mode }

// Routing returns the replica routing policy.
func (c *Cluster) RoutingPolicy() Routing { return c.cfg.Routing }

// NumDocs returns the corpus size (shard indexes carry the global count).
func (c *Cluster) NumDocs() int {
	return c.shards[0].replicas[0].engine.Index().NumDocs
}

// ShardStats records one shard's contribution to a query.
type ShardStats struct {
	// Shard and Replica identify the engine that served the sub-query.
	Shard   int
	Replica int
	// TimedOut marks a shard dropped for exceeding ShardTimeout; Err a
	// shard whose engine failed. Either way the shard is missing from the
	// merged result.
	TimedOut bool
	Err      string
	// Query is the shard engine's execution record (zero when Err is set).
	Query core.QueryStats
}

// Stats aggregates one cluster query.
type Stats struct {
	// Latency is the cluster critical path: the slowest shard the query
	// waited for (timed-out shards charge the full ShardTimeout) plus the
	// gather-side merge.
	Latency time.Duration
	// MaxShard is the pre-merge critical path; MergeTime the modeled
	// merge cost.
	MaxShard  time.Duration
	MergeTime time.Duration
	// Degraded reports a partial result; Missing lists the shards whose
	// documents the result may be missing.
	Degraded bool
	Missing  []int
	// Shards has one record per shard, in shard order.
	Shards []ShardStats
}

// Result is a completed cluster query.
type Result struct {
	// Docs are the merged top-k, descending by score, ties by ascending
	// docID (the engine's rank.Beats order). Non-nil whenever the query
	// executed.
	Docs []kernels.ScoredDoc
	// Stats is the scatter-gather execution record.
	Stats Stats
}

// Search scatter-gathers one conjunctive query: one replica per shard is
// chosen by the routing policy, all shards execute concurrently, and the
// per-shard top-k lists merge into the global top-k. Shards that error or
// exceed ShardTimeout degrade the result rather than failing it; an error
// is returned only when every shard failed.
func (c *Cluster) Search(terms []string) (*Result, error) {
	return c.search(terms, 0, false)
}

// SearchAt runs one cluster query arriving at an explicit simulated time
// on every shard runtime's global timeline — the load-study entry point,
// mirroring core.Engine.SearchAt. Backlog earlier arrivals left on a
// shard's device delays this query's sub-query there, so the returned
// latency is the arrival-to-completion sojourn of the slowest shard plus
// merge.
func (c *Cluster) SearchAt(terms []string, arrival time.Duration) (*Result, error) {
	return c.search(terms, arrival, true)
}

type shardOutcome struct {
	replica int
	res     *core.Result
	err     error
}

func (c *Cluster) search(terms []string, arrival time.Duration, timed bool) (*Result, error) {
	outs := make([]shardOutcome, len(c.shards))
	var wg sync.WaitGroup
	for s, g := range c.shards {
		ri, rep := g.pick(c.cfg.Routing)
		outs[s].replica = ri
		wg.Add(1)
		go func(s int, rep *replica) {
			defer wg.Done()
			outs[s].res, outs[s].err = rep.search(terms, arrival, timed)
		}(s, rep)
	}
	wg.Wait()

	st := Stats{Shards: make([]ShardStats, len(c.shards))}
	parts := make([][]kernels.ScoredDoc, 0, len(c.shards))
	failures := 0
	for s, out := range outs {
		ss := ShardStats{Shard: s, Replica: out.replica}
		switch {
		case out.err != nil:
			ss.Err = out.err.Error()
			st.Degraded = true
			st.Missing = append(st.Missing, s)
			failures++
		case c.cfg.ShardTimeout > 0 && out.res.Stats.Latency > c.cfg.ShardTimeout:
			// The gather waited the full budget before giving up on the
			// shard: the critical path charges the timeout, the shard's
			// documents go missing from the merged result.
			ss.TimedOut = true
			ss.Query = out.res.Stats
			st.Degraded = true
			st.Missing = append(st.Missing, s)
			if c.cfg.ShardTimeout > st.MaxShard {
				st.MaxShard = c.cfg.ShardTimeout
			}
		default:
			ss.Query = out.res.Stats
			parts = append(parts, out.res.Docs)
			if out.res.Stats.Latency > st.MaxShard {
				st.MaxShard = out.res.Stats.Latency
			}
		}
		st.Shards[s] = ss
	}
	if failures == len(c.shards) {
		return nil, fmt.Errorf("cluster: all %d shards failed: %s", failures, st.Shards[0].Err)
	}

	docs, work := MergeTopK(parts, c.cfg.TopK)
	st.MergeTime = c.cfg.CPU.Time(work)
	st.Latency = st.MaxShard + st.MergeTime
	if docs == nil {
		docs = []kernels.ScoredDoc{}
	}
	return &Result{Docs: docs, Stats: st}, nil
}

// ShardTelemetry is one replica engine's live state, the /statz surface.
type ShardTelemetry struct {
	Shard   int
	Replica int
	// Queries counts sub-queries this replica served.
	Queries int64
	// Device is the replica's device-runtime snapshot (nil for CPU-only
	// engines).
	Device *gpu.RuntimeStats
	// Cache is the replica's resident-list cache counters.
	Cache core.CacheStats
}

// Telemetry snapshots every replica, shard-major.
func (c *Cluster) Telemetry() []ShardTelemetry {
	out := make([]ShardTelemetry, 0, len(c.shards)*c.cfg.Replicas)
	for _, g := range c.shards {
		for ri, rep := range g.replicas {
			t := ShardTelemetry{
				Shard:   g.id,
				Replica: ri,
				Queries: rep.served.Load(),
				Cache:   rep.engine.CacheStats(),
			}
			if rt := rep.engine.Runtime(); rt != nil {
				st := rt.Stats()
				t.Device = &st
			}
			out = append(out, t)
		}
	}
	return out
}
