// Package cluster is the sharded serving layer above the single-node
// Griffin engine: a corpus document-partitioned across N shards
// (workload.PartitionIndex), one core.Engine plus its own simulated
// device per shard replica, and scatter-gather query execution — fan out
// to every shard concurrently, merge the per-shard top-k lists into the
// global top-k, and report a critical-path latency model (cluster latency
// = max over shard latencies + merge cost under the calibrated CPU
// model).
//
// The paper evaluates one CPU+GPU node; its §5 discussion rejects
// caching the whole corpus on one device precisely because device memory
// cannot hold it. Partitioning the documents across devices is the step
// that scales the reproduction past one node's memory while reusing every
// existing layer: each shard runs the unchanged plan-builder/executor
// pipeline on its own gpu.DeviceRuntime, replica routing reuses the
// runtime's backlog signal (the same sched.DeviceBacklog view the
// load-aware spill policy consults), and merge selection reuses the
// engine's rank.Beats total order — which is what makes an N-shard
// scatter-gather result bit-identical to a single-engine run over the
// unpartitioned corpus.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"griffin/internal/core"
	"griffin/internal/exec"
	"griffin/internal/fault"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/kernels"
	"griffin/internal/overload"
)

// ErrAllShardsFailed wraps the error Search returns when no shard
// produced a result; chaos drivers match it with errors.Is to count a
// failed query instead of aborting the run.
var ErrAllShardsFailed = errors.New("cluster: all shards failed")

// DefaultRetryBackoff is the modeled delay charged before a sibling
// retry when Config.RetryBackoff is zero.
const DefaultRetryBackoff = 200 * time.Microsecond

// Config parameterizes a Cluster.
type Config struct {
	// Replicas is the number of engine replicas per shard (0 = 1). Each
	// replica has its own simulated device and runtime; the router
	// spreads queries across them.
	Replicas int
	// Routing picks the replica for each shard of a query (default
	// RoundRobin).
	Routing Routing
	// Engine is the per-replica engine template. Device and Runtime are
	// ignored: every replica gets a private device (its own DeviceModel
	// instance) and builds its own runtime from Engine.Streams, because a
	// shard *is* a serving node in this layer. Engine.Devices and
	// Engine.Placement pass through, so replicas can be multi-GPU nodes:
	// a replica is then a (node, device-set) pair — the router picks the
	// replica, the engine's placement policy picks the device — and the
	// fault injector names each device's site "s<shard>r<replica>.g<dev>".
	// Engine.TopK is overridden by TopK so shard selections cover the
	// cluster result size.
	Engine core.Config
	// TopK is the cluster result count (0 = 10).
	TopK int
	// ShardTimeout bounds each shard's simulated latency. A shard whose
	// response would land past the budget is dropped: the query degrades
	// (Stats.Degraded, Stats.Missing) instead of failing, and the cluster
	// latency charges the full timeout for having waited. Zero disables
	// timeouts.
	ShardTimeout time.Duration
	// CPU prices the gather-side merge (zero value = hwmodel.DefaultCPU()).
	CPU hwmodel.CPUModel
	// DeviceModel builds each replica's private simulated device (zero
	// value = hwmodel.DefaultGPU()).
	DeviceModel hwmodel.GPUModel

	// Fault is the cluster's fault injector (nil = no injection, the
	// zero-cost default). Each replica's device runtime gets the
	// injector's submit hook at its site ("s<shard>r<replica>"), and
	// every sub-query admission draws the shard-stall and engine-error
	// faults at the same site.
	Fault *fault.Injector
	// Breaker configures the per-replica circuit breakers. The zero
	// value selects the fault package's defaults (trip after 3
	// consecutive failures, 5ms cooldown, 1 probe); Threshold < 0
	// disables breakers. CPU-fallback sub-queries count as soft strikes:
	// the query succeeded, but the device it ran on is misbehaving, so
	// repeated fallbacks trip the breaker and steer traffic to a healthy
	// sibling until half-open probes show the device recovered.
	Breaker fault.BreakerConfig
	// Retries is the per-shard sibling-retry budget when a sub-query
	// fails hard: 0 selects the default (1 when Replicas > 1, else 0),
	// negative disables retries. Each retry is charged RetryBackoff of
	// modeled delay before the sibling attempt.
	Retries int
	// RetryBackoff is the modeled delay before each retry attempt
	// (0 = DefaultRetryBackoff).
	RetryBackoff time.Duration
	// HedgeDelay, when > 0 with Replicas > 1, hedges slow shards: a
	// sub-query whose modeled latency exceeds the delay dispatches a
	// second attempt on a sibling replica at (arrival + HedgeDelay), and
	// the shard's effective latency is the minimum of the two paths —
	// min(primary, HedgeDelay + hedge). Results are identical on either
	// replica (bit-identical parity), so hedging trades duplicated work
	// for tail latency exactly as in the tail-at-scale playbook, and
	// ShardTimeout stops being the only defense against a stalled shard.
	HedgeDelay time.Duration
	// Overload configures the cluster's overload controls: deadline
	// budgets, per-replica CoDel admission shedding, retry/hedge token
	// budgets, and brownout tiers. The zero value disables all of them —
	// a cluster configured without overload control behaves byte-
	// identically to one built before the layer existed. Per-query
	// deadlines and classes arrive via SearchWith's QueryOpts.
	Overload overload.Config
}

// Cluster serves queries over document-partitioned shards.
type Cluster struct {
	cfg    Config
	shards []*shardGroup
	// seq drives the modeled clock for untimed queries: breakers and
	// fault schedules need a monotone "now", so each Search ticks the
	// cluster one millisecond. Timed queries (SearchAt) use their
	// arrival instead.
	seq atomic.Int64

	// Self-healing counters, cluster lifetime.
	retries   atomic.Int64 // sibling retry attempts
	hedges    atomic.Int64 // hedge attempts dispatched
	hedgeWins atomic.Int64 // hedges that beat the primary
	fallbacks atomic.Int64 // sub-queries answered by CPU fallback
	queries   atomic.Int64 // cluster queries served
	failed    atomic.Int64 // cluster queries with no result at all
	degraded  atomic.Int64 // cluster queries missing at least one shard

	// Overload control (all nil/zero when Config.Overload is off).
	brownout     *overload.Brownout
	mergeReserve time.Duration // gather-side time reserved out of each deadline
	degradedTopK int           // brownout level-2 interactive result count

	// Overload counters, cluster lifetime.
	deadlineInfeasible atomic.Int64 // queries refused: budget below merge reserve
	deadlineMisses     atomic.Int64 // queries answered past their deadline
	budgetRejects      atomic.Int64 // sub-queries refused by device budget admission
	hedgeSkips         atomic.Int64 // hedges suppressed by brownout or token budget
}

// New builds a cluster over one index per shard (typically the output of
// workload.PartitionIndex; a single unpartitioned index gives a
// one-shard cluster). Engines and devices are created per replica.
func New(ixs []*index.Index, cfg Config) (*Cluster, error) {
	if len(ixs) == 0 {
		return nil, fmt.Errorf("cluster: no shard indexes")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	if cfg.CPU == (hwmodel.CPUModel{}) {
		cfg.CPU = hwmodel.DefaultCPU()
	}
	if cfg.DeviceModel == (hwmodel.GPUModel{}) {
		cfg.DeviceModel = hwmodel.DefaultGPU()
	}
	c := &Cluster{cfg: cfg}
	olc := cfg.Overload
	c.brownout = overload.NewBrownout(olc.BrownoutEnter, olc.BrownoutEscalate, olc.BrownoutHold)
	c.degradedTopK = olc.DegradedTopK
	if c.degradedTopK <= 0 {
		if c.degradedTopK = cfg.TopK / 2; c.degradedTopK < 1 {
			c.degradedTopK = 1
		}
	}
	for s, ix := range ixs {
		g := &shardGroup{id: s, budget: overload.NewBudget(olc.RetryBudget, olc.RetryBurst)}
		for r := 0; r < cfg.Replicas; r++ {
			ecfg := cfg.Engine
			ecfg.TopK = cfg.TopK
			ecfg.Runtime = nil
			ecfg.Device = nil
			if ecfg.Mode != core.CPUOnly {
				ecfg.Device = gpu.New(cfg.DeviceModel, 0)
			}
			eng, err := core.New(ix, ecfg)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("cluster: shard %d replica %d: %w", s, r, err)
			}
			site := fmt.Sprintf("s%dr%d", s, r)
			rep := newReplica(eng, site, fault.NewBreaker(cfg.Breaker), cfg.Fault)
			rep.shed = overload.NewShedder(olc.ShedTarget, olc.ShedInterval)
			if cfg.Fault != nil {
				if node := eng.Node(); node != nil {
					// One hook per device, each at its own site name
					// (fault.DeviceSite keeps the bare replica site on
					// single-device nodes, preserving seeded fault streams),
					// so injected faults are attributable to the device
					// they hit.
					for d := 0; d < node.Devices(); d++ {
						node.SetSubmitHook(d, cfg.Fault.DeviceHook(fault.DeviceSite(site, d, node.Devices())))
					}
				}
			}
			g.replicas = append(g.replicas, rep)
		}
		c.shards = append(c.shards, g)
	}
	// The time each deadline reserves for the gather-side merge: the
	// priced cost of merging a full shards x top-k candidate set, so a
	// shard sub-deadline leaves room to assemble the answer. Computed
	// unconditionally (it is cheap and side-effect free) because a
	// per-query deadline may arrive even when Config.Overload is zero.
	if c.mergeReserve = olc.MergeReserve; c.mergeReserve <= 0 {
		c.mergeReserve = c.worstMergeCost()
	}
	return c, nil
}

// retryBudget resolves the Retries default: one sibling retry when the
// shard has a sibling, none otherwise.
func (c *Cluster) retryBudget() int {
	switch {
	case c.cfg.Retries < 0:
		return 0
	case c.cfg.Retries == 0:
		if c.cfg.Replicas > 1 {
			return 1
		}
		return 0
	default:
		return c.cfg.Retries
	}
}

// retryBackoff resolves the RetryBackoff default.
func (c *Cluster) retryBackoff() time.Duration {
	if c.cfg.RetryBackoff > 0 {
		return c.cfg.RetryBackoff
	}
	return DefaultRetryBackoff
}

// Close releases every replica engine's device resources. Engines with
// in-flight sub-queries retire when those queries finish.
func (c *Cluster) Close() {
	for _, g := range c.shards {
		for _, r := range g.replicas {
			r.close()
		}
	}
}

// ReplaceShard atomically swaps one shard's serving index: every replica
// of the shard gets a fresh engine over ix that adopts its predecessor's
// device node — simulated timelines, submit hooks (fault sites), and the
// batching stage survive the swap — and the predecessor retires when its
// last in-flight sub-query finishes (epoch-based reclamation, no pause).
// This is the live-ingestion merge commit path: a background merge
// re-encodes a shard's postings and publishes the result here while
// traffic keeps flowing.
func (c *Cluster) ReplaceShard(shard int, ix *index.Index) error {
	if shard < 0 || shard >= len(c.shards) {
		return fmt.Errorf("cluster: replace shard %d of %d", shard, len(c.shards))
	}
	for ri, rep := range c.shards[shard].replicas {
		ecfg := c.cfg.Engine
		ecfg.TopK = c.cfg.TopK
		ecfg.Runtime = nil
		ecfg.Device = nil
		ecfg.Node = rep.engine().Node() // nil for CPU-only replicas
		eng, err := core.New(ix, ecfg)
		if err != nil {
			return fmt.Errorf("cluster: replace shard %d replica %d: %w", shard, ri, err)
		}
		rep.swap(eng)
	}
	return nil
}

// ShardNode returns shard's replica-0 device node (nil for CPU-only
// replicas) — the shared timeline live merges price their re-encode on.
func (c *Cluster) ShardNode(shard int) *gpu.NodeRuntime {
	return c.shards[shard].replicas[0].engine().Node()
}

// ShardIndex returns shard's currently served index.
func (c *Cluster) ShardIndex(shard int) *index.Index {
	return c.shards[shard].replicas[0].engine().Index()
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// Replicas returns the per-shard replica count.
func (c *Cluster) Replicas() int { return c.cfg.Replicas }

// TopK returns the cluster result count.
func (c *Cluster) TopK() int { return c.cfg.TopK }

// Mode returns the replica engines' placement mode.
func (c *Cluster) Mode() core.Mode { return c.cfg.Engine.Mode }

// Routing returns the replica routing policy.
func (c *Cluster) RoutingPolicy() Routing { return c.cfg.Routing }

// Batching returns the replica engines' cross-query batching
// configuration and whether the stage is enabled. Every replica shares
// one engine config, so the first replica speaks for all.
func (c *Cluster) Batching() (gpu.BatchConfig, bool) {
	return c.shards[0].replicas[0].engine().Batching()
}

// BatchStats aggregates cross-query batching telemetry across every
// replica's devices (zero value when the stage is disabled).
func (c *Cluster) BatchStats() gpu.BatchStats {
	var st gpu.BatchStats
	for _, g := range c.shards {
		for _, rep := range g.replicas {
			st.Add(rep.engine().BatchStats())
		}
	}
	return st
}

// NumDocs returns the corpus size (shard indexes carry the global count).
func (c *Cluster) NumDocs() int {
	return c.shards[0].replicas[0].engine().Index().NumDocs
}

// ShardStats records one shard's contribution to a query.
type ShardStats struct {
	// Shard and Replica identify the engine that served the sub-query.
	Shard   int
	Replica int
	// TimedOut marks a shard dropped for exceeding ShardTimeout; Err a
	// shard whose engine failed (after exhausting retries). Either way
	// the shard is missing from the merged result.
	TimedOut bool
	Err      string
	// Retries counts the sibling retry attempts this sub-query needed;
	// Hedged marks that a hedge was dispatched, HedgeWon that the hedge's
	// path beat the primary's.
	Retries  int
	Hedged   bool
	HedgeWon bool
	// Overload markers (all false when overload control is off): Shed
	// reports the sub-query was refused by the replica's CoDel admission
	// rule; BudgetRejected that its final error was a device deadline-
	// budget rejection; DeadlineExceeded that the shard answered past its
	// sub-deadline and was dropped from the merge; HedgeSkipped that a
	// hedge the latency warranted was suppressed by brownout or the token
	// budget.
	Shed             bool
	BudgetRejected   bool
	DeadlineExceeded bool
	HedgeSkipped     bool
	// Effective is the shard's contribution to the cluster critical
	// path: the serving attempt's latency plus injected stalls and retry
	// backoff, or min(primary, HedgeDelay + hedge) when hedged. Equals
	// Query.Latency on a clean un-hedged sub-query.
	Effective time.Duration
	// Query is the execution record of the attempt whose result was used
	// (zero when Err is set).
	Query core.QueryStats
}

// Stats aggregates one cluster query.
type Stats struct {
	// Latency is the cluster critical path: the slowest shard the query
	// waited for (timed-out shards charge the full ShardTimeout) plus the
	// gather-side merge.
	Latency time.Duration
	// MaxShard is the pre-merge critical path; MergeTime the modeled
	// merge cost.
	MaxShard  time.Duration
	MergeTime time.Duration
	// Degraded reports a partial result; Missing lists the shards whose
	// documents the result may be missing.
	Degraded bool
	Missing  []int
	// Retries, Hedges, HedgeWins, and Fallbacks total the self-healing
	// actions this query took across its shards.
	Retries   int
	Hedges    int
	HedgeWins int
	Fallbacks int
	// Overload record (all zero when overload control is off): Deadline
	// is the budget the query ran under; DeadlineMiss that it answered
	// past it; Class its criticality; BrownoutLevel the ladder position
	// it was served at; ForcedCPU/DegradedTopK the brownout degradation
	// applied; HedgeSkips the hedges suppressed across its shards.
	Deadline      time.Duration
	DeadlineMiss  bool
	Class         overload.Class
	BrownoutLevel int
	ForcedCPU     bool
	DegradedTopK  int
	HedgeSkips    int
	// Shards has one record per shard, in shard order.
	Shards []ShardStats
}

// Result is a completed cluster query.
type Result struct {
	// Docs are the merged top-k, descending by score, ties by ascending
	// docID (the engine's rank.Beats order). Non-nil whenever the query
	// executed.
	Docs []kernels.ScoredDoc
	// Stats is the scatter-gather execution record.
	Stats Stats
}

// Search scatter-gathers one conjunctive query: one replica per shard is
// chosen by the routing policy (skipping tripped circuit breakers), all
// shards execute concurrently, and the per-shard top-k lists merge into
// the global top-k. A shard whose sub-query fails hard is retried on a
// sibling replica (with modeled backoff); a slow shard may be hedged on
// a sibling. Shards that still error or exceed ShardTimeout degrade the
// result rather than failing it; an error is returned only when every
// shard failed (errors.Is(err, ErrAllShardsFailed)).
//
// ctx cancels straggler sub-queries: when it is done, in-flight shard
// plans abort at the next operator boundary and Search returns ctx's
// error without waiting for them. A nil ctx means no cancellation.
func (c *Cluster) Search(ctx context.Context, terms []string) (*Result, error) {
	return c.search(ctx, terms, 0, false, nil, QueryOpts{})
}

// SearchWith is Search with per-query overload options: an explicit
// deadline budget and a criticality class. Zero opts is Search exactly.
func (c *Cluster) SearchWith(ctx context.Context, terms []string, qo QueryOpts) (*Result, error) {
	return c.search(ctx, terms, 0, false, nil, qo)
}

// SearchAtWith is SearchAt with per-query overload options.
func (c *Cluster) SearchAtWith(ctx context.Context, terms []string, arrival time.Duration, qo QueryOpts) (*Result, error) {
	return c.search(ctx, terms, arrival, true, nil, qo)
}

// SearchOverlayWith is SearchOverlay with per-query overload options.
func (c *Cluster) SearchOverlayWith(ctx context.Context, terms []string, ov Overlay, qo QueryOpts) (*Result, error) {
	return c.search(ctx, terms, 0, false, ov, qo)
}

// SearchOverlayAtWith is SearchOverlayAt with per-query overload options.
func (c *Cluster) SearchOverlayAtWith(ctx context.Context, terms []string, arrival time.Duration, ov Overlay, qo QueryOpts) (*Result, error) {
	return c.search(ctx, terms, arrival, true, ov, qo)
}

// Overlay supplies per-shard execution overlays for one query — the
// live-ingestion read path. Shard s's sub-query threads Shard(s) into
// its engine: the delta view reconciles the shard's main-segment
// intersection with unmerged mutations, and the overlay scorer carries
// the cluster's *global* live collection statistics, the running
// analogue of workload.PartitionIndex's GlobalN stamping. A nil overlay
// (or a nil Shard(s)) takes the frozen-corpus path unchanged.
type Overlay interface {
	Shard(s int) *exec.Overlay
}

// SearchOverlay is Search with a per-shard live-delta overlay.
func (c *Cluster) SearchOverlay(ctx context.Context, terms []string, ov Overlay) (*Result, error) {
	return c.search(ctx, terms, 0, false, ov, QueryOpts{})
}

// SearchOverlayAt is SearchAt with a per-shard live-delta overlay.
func (c *Cluster) SearchOverlayAt(ctx context.Context, terms []string, arrival time.Duration, ov Overlay) (*Result, error) {
	return c.search(ctx, terms, arrival, true, ov, QueryOpts{})
}

// SearchAt runs one cluster query arriving at an explicit simulated time
// on every shard runtime's global timeline — the load-study entry point,
// mirroring core.Engine.SearchAt. Backlog earlier arrivals left on a
// shard's device delays this query's sub-query there, so the returned
// latency is the arrival-to-completion sojourn of the slowest shard plus
// merge.
func (c *Cluster) SearchAt(ctx context.Context, terms []string, arrival time.Duration) (*Result, error) {
	return c.search(ctx, terms, arrival, true, nil, QueryOpts{})
}

// shardOutcome is one shard's gathered sub-query: the attempt that
// produced the result (or the last error), plus the self-healing path
// taken to get it.
type shardOutcome struct {
	replica   int
	res       *core.Result
	err       error
	effective time.Duration
	retries   int
	hedged    bool
	hedgeWon  bool
	// Overload-control markers: shed by the replica's admission rule,
	// final error was a device budget rejection, hedge suppressed by
	// brownout or token budget.
	shed           bool
	budgetRejected bool
	hedgeSkipped   bool
}

func (c *Cluster) search(parent context.Context, terms []string, arrival time.Duration, timed bool, ov Overlay, qo QueryOpts) (*Result, error) {
	c.queries.Add(1)
	// "Now" for breakers and fault schedules: the arrival for timed
	// queries, a 1ms-per-query internal clock otherwise.
	now := arrival
	if !timed {
		now = time.Duration(c.seq.Add(1)) * time.Millisecond
	}

	// Resolve the query's deadline budget (explicit beats the default)
	// and consult the brownout ladder before fanning out. All of this is
	// inert — level 0, no deadline — when overload control is off.
	deadline := qo.Deadline
	if deadline <= 0 {
		deadline = c.cfg.Overload.DefaultDeadline
	}
	level := 0
	if c.brownout != nil {
		level = c.brownout.Observe(now, c.pressure(now, timed))
	}
	if level >= 1 && qo.Class == overload.Batch {
		// Tier 1: batch traffic is shed outright under pressure.
		c.brownout.NoteBatchShed()
		return nil, fmt.Errorf("cluster: batch query shed at brownout level %d: %w", level, overload.ErrShed)
	}
	var so core.SearchOptions
	skipHedge := level >= 1
	if level >= 2 {
		// Tier 2: interactive queries are degraded, never refused —
		// reduced top-k and a CPU-only plan that bypasses the contended
		// device timeline entirely.
		so.ForceCPU = true
		so.TopK = c.degradedTopK
		c.brownout.NoteDegraded()
	}
	shardBudget := time.Duration(0)
	if deadline > 0 {
		if shardBudget = deadline - c.mergeReserve; shardBudget <= 0 {
			c.deadlineInfeasible.Add(1)
			return nil, fmt.Errorf("cluster: deadline %v below merge reserve %v: %w", deadline, c.mergeReserve, overload.ErrDeadline)
		}
	}

	ctx := parent
	var cancel context.CancelFunc
	if ctx != nil {
		// Derived so returning cancels stragglers at their next operator
		// boundary instead of leaking them to plan completion.
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
	}

	outs := make([]shardOutcome, len(c.shards))
	var wg sync.WaitGroup
	for s, g := range c.shards {
		var shOv *exec.Overlay
		if ov != nil {
			shOv = ov.Shard(s)
		}
		wg.Add(1)
		go func(s int, g *shardGroup, shOv *exec.Overlay) {
			defer wg.Done()
			outs[s] = c.searchShard(ctx, g, terms, arrival, timed, now, shOv, so, shardBudget, skipHedge)
		}(s, g, shOv)
	}
	if ctx != nil {
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-ctx.Done():
			// The caller is gone: the derived cancel (deferred above)
			// aborts the stragglers; don't wait for them.
			c.failed.Add(1)
			return nil, ctx.Err()
		}
	} else {
		wg.Wait()
	}

	st := Stats{Shards: make([]ShardStats, len(c.shards))}
	st.Deadline = deadline
	st.Class = qo.Class
	st.BrownoutLevel = level
	if so.ForceCPU {
		st.ForcedCPU = true
		st.DegradedTopK = so.TopK
	}
	parts := make([][]kernels.ScoredDoc, 0, len(c.shards))
	failures := 0
	for s, out := range outs {
		ss := ShardStats{
			Shard: s, Replica: out.replica,
			Retries: out.retries, Hedged: out.hedged, HedgeWon: out.hedgeWon,
			Shed: out.shed, BudgetRejected: out.budgetRejected, HedgeSkipped: out.hedgeSkipped,
			Effective: out.effective,
		}
		st.Retries += out.retries
		if out.hedged {
			st.Hedges++
		}
		if out.hedgeWon {
			st.HedgeWins++
		}
		if out.hedgeSkipped {
			st.HedgeSkips++
		}
		switch {
		case out.err != nil:
			ss.Err = out.err.Error()
			st.Degraded = true
			st.Missing = append(st.Missing, s)
			failures++
		case c.cfg.ShardTimeout > 0 && out.effective > c.cfg.ShardTimeout:
			// The gather waited the full budget before giving up on the
			// shard: the critical path charges the timeout, the shard's
			// documents go missing from the merged result.
			ss.TimedOut = true
			ss.Query = out.res.Stats
			st.Degraded = true
			st.Missing = append(st.Missing, s)
			if c.cfg.ShardTimeout > st.MaxShard {
				st.MaxShard = c.cfg.ShardTimeout
			}
		case shardBudget > 0 && out.effective > shardBudget:
			// Deadline propagation's gather side: the shard answered, but
			// past its sub-deadline — the result could not make the cluster
			// deadline, so the shard is dropped and the critical path
			// charges the sub-deadline the gather waited out.
			ss.DeadlineExceeded = true
			ss.Query = out.res.Stats
			st.Degraded = true
			st.Missing = append(st.Missing, s)
			if shardBudget > st.MaxShard {
				st.MaxShard = shardBudget
			}
		default:
			ss.Query = out.res.Stats
			if out.res.Stats.FallbackCPU {
				st.Fallbacks++
			}
			parts = append(parts, out.res.Docs)
			if out.effective > st.MaxShard {
				st.MaxShard = out.effective
			}
		}
		st.Shards[s] = ss
	}
	if st.Degraded {
		c.degraded.Add(1)
	}
	if failures == len(c.shards) {
		c.failed.Add(1)
		// When every shard was refused by an overload control, surface
		// that as an overload error — callers (loadsim, the HTTP server)
		// count shed queries apart from genuine failures.
		sheds, rejects := 0, 0
		for _, out := range outs {
			if out.shed {
				sheds++
			} else if out.budgetRejected {
				rejects++
			}
		}
		if sheds+rejects == len(c.shards) {
			cause := overload.ErrShed
			if sheds == 0 {
				cause = overload.ErrDeadline
			}
			return nil, fmt.Errorf("cluster: every shard refused by overload control (%d shed, %d budget-rejected): %w", sheds, rejects, cause)
		}
		// Report the first shard actually carrying an error (a shard may
		// be missing for other reasons, e.g. a timeout).
		first := ""
		for _, ss := range st.Shards {
			if ss.Err != "" {
				first = ss.Err
				break
			}
		}
		return nil, fmt.Errorf("%w: %d shards, first error: %s", ErrAllShardsFailed, failures, first)
	}

	topK := c.cfg.TopK
	if so.TopK > 0 {
		topK = so.TopK
	}
	docs, work := MergeTopK(parts, topK)
	st.MergeTime = c.cfg.CPU.Time(work)
	st.Latency = st.MaxShard + st.MergeTime
	if deadline > 0 && st.Latency > deadline {
		// Answered, but late: the caller gets the result and the miss is
		// marked — goodput accounting, not failure.
		st.DeadlineMiss = true
		c.deadlineMisses.Add(1)
	}
	if docs == nil {
		docs = []kernels.ScoredDoc{}
	}
	return &Result{Docs: docs, Stats: st}, nil
}

// attempt runs one sub-query on one replica, drawing the admission-level
// faults (engine error, shard stall) at the replica's site and recording
// the outcome on its breaker. A CPU fallback succeeds but counts as a
// soft strike — the device misbehaved even though the query survived —
// so a replica answering every query from fallback still trips its
// breaker and sheds traffic to a healthy sibling. The returned duration
// is the attempt's effective latency (engine latency plus any injected
// stall); it is zero when err is non-nil.
func (c *Cluster) attempt(ctx context.Context, rep *replica, terms []string, arrival time.Duration, timed bool, now time.Duration, ov *exec.Overlay, so core.SearchOptions) (*core.Result, time.Duration, error) {
	stall, err := c.cfg.Fault.AdmitQuery(rep.site, now)
	if err != nil {
		rep.breaker.Record(now, false)
		return nil, 0, err
	}
	res, err := rep.search(ctx, terms, arrival, timed, ov, so)
	if err != nil {
		if gpu.IsBudget(err) {
			// The device refused the work to protect the deadline; the
			// replica is not unhealthy. Release any half-open probe
			// reservation instead of recording a strike.
			c.budgetRejects.Add(1)
			rep.breaker.Cancel()
			return nil, 0, err
		}
		rep.breaker.Record(now, false)
		return nil, 0, err
	}
	if res.Stats.FallbackCPU {
		c.fallbacks.Add(1)
		rep.breaker.Record(now, false) // soft strike
	} else {
		rep.breaker.Record(now, true)
	}
	return res, res.Stats.Latency + stall, nil
}

// searchShard serves one shard of one query: admission-check (CoDel
// shed), route (breaker-aware), attempt, retry on a sibling with modeled
// backoff while the retry budget and token bucket last, then hedge a
// slow result on a sibling when configured and the brownout/token state
// allows. so carries the query's brownout degradation; shardBudget the
// shard sub-deadline (0 = none).
func (c *Cluster) searchShard(ctx context.Context, g *shardGroup, terms []string, arrival time.Duration, timed bool, now time.Duration, ov *exec.Overlay, so core.SearchOptions, shardBudget time.Duration, skipHedge bool) shardOutcome {
	var out shardOutcome
	ri, rep := g.pick(c.cfg.Routing, now, timed)
	out.replica = ri

	// Per-replica CoDel admission: shed when the backlog the sub-query
	// would face has exceeded the target for a sustained interval. A shed
	// sub-query is not retried — shedding then retrying on a sibling
	// would amplify the very overload being shed. CPU-degraded queries
	// skip the check: they never join the device queue.
	if !so.ForceCPU && !rep.shed.Offer(now, rep.queueDelay(now, timed)) {
		rep.breaker.Cancel() // the admitted probe (if any) never executes
		out.shed = true
		out.err = fmt.Errorf("shard %d replica %d admission: %w", g.id, ri, overload.ErrShed)
		return out
	}
	// Every primary admission earns the shard's token bucket its
	// fractional retry/hedge token.
	g.budget.Admit()

	soP := so
	soP.Budget = shardBudget
	res, eff, err := c.attempt(ctx, rep, terms, arrival, timed, now, ov, soP)
	out.res, out.effective, out.err = res, eff, err

	// Sibling retries: each failed attempt is charged the backoff before
	// the next replica tries. Retrying the same replica is pointless in
	// the model (it would draw the same fault stream), so the previous
	// replica is excluded. Each retry spends a token when the bucket is
	// configured; a budget rejection is retryable (a sibling may hold
	// less backlog) but still token-gated.
	retriesLeft := c.retryBudget()
	backoff := c.retryBackoff()
	var waited time.Duration
	for out.err != nil && retriesLeft > 0 && len(g.replicas) > 1 {
		if ctx != nil && ctx.Err() != nil {
			return out
		}
		if shardBudget > 0 && shardBudget-(waited+backoff) <= 0 {
			// The sub-deadline cannot absorb another backoff: stop.
			break
		}
		if !g.budget.Take() {
			break
		}
		retriesLeft--
		out.retries++
		c.retries.Add(1)
		waited += backoff
		prev := out.replica
		ri, rep = g.pickExcluding(c.cfg.Routing, now+waited, timed, prev)
		soR := so
		if soR.Budget = shardBudget; shardBudget > 0 {
			soR.Budget = shardBudget - waited
		}
		res, eff, err = c.attempt(ctx, rep, terms, arrival+waited, timed, now+waited, ov, soR)
		if err == nil {
			out.replica, out.res, out.err = ri, res, nil
			out.effective = waited + eff
		} else {
			out.err = err
		}
	}
	if out.err != nil {
		out.budgetRejected = gpu.IsBudget(out.err)
		return out
	}

	// Hedge: when the serving path is slower than the hedge delay, a
	// sibling gets the same sub-query at (arrival + HedgeDelay) and the
	// faster path defines the shard's effective latency. The model runs
	// the hedge after the primary completes — modeled latency is only
	// known then — and takes min(primary, HedgeDelay + hedge), which is
	// exactly the latency a concurrent dispatch would have produced.
	// Results need no reconciliation: replicas are bit-identical.
	// Brownout level >= 1 skips hedges outright (shedding duplicated
	// work first), and each hedge spends a token when the bucket is
	// configured.
	if c.cfg.HedgeDelay > 0 && len(g.replicas) > 1 && out.effective > c.cfg.HedgeDelay {
		if ctx != nil && ctx.Err() != nil {
			return out
		}
		if skipHedge || !g.budget.Take() {
			out.hedgeSkipped = true
			c.hedgeSkips.Add(1)
			return out
		}
		hNow := now + c.cfg.HedgeDelay
		hi, hrep := g.pickExcluding(c.cfg.Routing, hNow, timed, out.replica)
		out.hedged = true
		c.hedges.Add(1)
		soH := so
		if soH.Budget = shardBudget; shardBudget > 0 {
			soH.Budget = shardBudget - c.cfg.HedgeDelay
		}
		hres, heff, herr := c.attempt(ctx, hrep, terms, arrival+c.cfg.HedgeDelay, timed, hNow, ov, soH)
		if herr == nil {
			if hedgePath := c.cfg.HedgeDelay + heff; hedgePath < out.effective {
				out.replica, out.res, out.effective = hi, hres, hedgePath
				out.hedgeWon = true
				c.hedgeWins.Add(1)
			}
		}
	}
	return out
}

// ShardTelemetry is one replica engine's live state, the /statz surface.
type ShardTelemetry struct {
	Shard   int
	Replica int
	// Site is the replica's fault-injection site name ("s2r1").
	Site string
	// Queries counts sub-queries this replica served.
	Queries int64
	// Breaker is the replica's circuit-breaker state ("closed", "open",
	// "half-open") at the cluster's current modeled time; BreakerTrips
	// counts how many times it has opened.
	Breaker      string
	BreakerTrips int64
	// Device is device 0's runtime snapshot (nil for CPU-only engines) —
	// the single-device view, preserved for existing consumers.
	Device *gpu.RuntimeStats
	// Devices has one runtime snapshot per node device, in device order,
	// when the replica's node has more than one GPU (nil otherwise).
	Devices []gpu.RuntimeStats
	// Cache is the replica's resident-list cache counters, aggregated
	// across the node's devices.
	Cache core.CacheStats
	// Batch is the replica's cross-query batching telemetry aggregated
	// across the node's devices (nil when the batching stage is disabled).
	Batch *gpu.BatchStats
	// Sheds counts sub-queries refused by this replica's CoDel admission
	// rule (zero when overload control is off).
	Sheds int64
}

// now returns the cluster's current modeled time (the untimed clock's
// position; timed workloads read breaker states against it too, which
// is safe because arrivals only ever advance alongside it).
func (c *Cluster) now() time.Duration {
	return time.Duration(c.seq.Load()) * time.Millisecond
}

// Telemetry snapshots every replica, shard-major.
func (c *Cluster) Telemetry() []ShardTelemetry {
	now := c.now()
	out := make([]ShardTelemetry, 0, len(c.shards)*c.cfg.Replicas)
	for _, g := range c.shards {
		for ri, rep := range g.replicas {
			t := ShardTelemetry{
				Shard:        g.id,
				Replica:      ri,
				Site:         rep.site,
				Queries:      rep.served.Load(),
				Breaker:      rep.breaker.State(now).String(),
				BreakerTrips: rep.breaker.Trips(),
				Cache:        rep.engine().CacheStats(),
			}
			if node := rep.engine().Node(); node != nil {
				st := node.Runtime(0).Stats()
				t.Device = &st
				if node.Devices() > 1 {
					t.Devices = node.Stats().Devices
				}
			}
			if _, on := rep.engine().Batching(); on {
				bs := rep.engine().BatchStats()
				t.Batch = &bs
			}
			t.Sheds = rep.shed.Stats().Sheds
			out = append(out, t)
		}
	}
	return out
}

// SelfHealStats is the cluster-lifetime self-healing counter snapshot.
type SelfHealStats struct {
	// Queries, Degraded, Failed count cluster queries served, answered
	// partially, and not answered at all.
	Queries  int64
	Degraded int64
	Failed   int64
	// Retries, Hedges, HedgeWins, Fallbacks count sibling retry
	// attempts, hedges dispatched, hedges that won, and sub-queries
	// answered by the engines' CPU fallback.
	Retries   int64
	Hedges    int64
	HedgeWins int64
	Fallbacks int64
	// BreakerTrips totals breaker openings across all replicas.
	BreakerTrips int64
	// InjectedFaults totals the fault injector's fired events (zero
	// without a fault plan).
	InjectedFaults int64
}

// SelfHeal snapshots the cluster's self-healing counters.
func (c *Cluster) SelfHeal() SelfHealStats {
	st := SelfHealStats{
		Queries:        c.queries.Load(),
		Degraded:       c.degraded.Load(),
		Failed:         c.failed.Load(),
		Retries:        c.retries.Load(),
		Hedges:         c.hedges.Load(),
		HedgeWins:      c.hedgeWins.Load(),
		Fallbacks:      c.fallbacks.Load(),
		InjectedFaults: c.cfg.Fault.Total(),
	}
	for _, g := range c.shards {
		for _, rep := range g.replicas {
			st.BreakerTrips += rep.breaker.Trips()
		}
	}
	return st
}

// Injector returns the cluster's fault injector (nil without a fault
// plan) — the /statz surface for the injected-fault log.
func (c *Cluster) Injector() *fault.Injector { return c.cfg.Fault }

// ShardHealth is one shard's reachability summary.
type ShardHealth struct {
	Shard int
	// Reachable reports that at least one replica's breaker admits
	// traffic; Open counts replicas whose breaker is open.
	Reachable bool
	Open      int
}

// Health is the cluster's degradation summary, the /healthz surface.
type Health struct {
	// Healthy is false when a majority of shards are unreachable (every
	// replica's breaker open) — the 503 condition.
	Healthy bool
	// Shards has one entry per shard; Unreachable counts shards with no
	// admitting replica.
	Shards      []ShardHealth
	Unreachable int
}

// Health reports per-shard reachability at the cluster's current
// modeled time.
func (c *Cluster) Health() Health {
	now := c.now()
	h := Health{Shards: make([]ShardHealth, len(c.shards))}
	for i, g := range c.shards {
		sh := ShardHealth{Shard: g.id}
		for _, rep := range g.replicas {
			if rep.breaker.State(now) == fault.Open {
				sh.Open++
			} else {
				sh.Reachable = true
			}
		}
		if !sh.Reachable {
			h.Unreachable++
		}
		h.Shards[i] = sh
	}
	h.Healthy = h.Unreachable*2 < len(c.shards)
	return h
}
