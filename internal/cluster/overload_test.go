package cluster

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"griffin/internal/core"
	"griffin/internal/fault"
	"griffin/internal/overload"
)

// The overload-control contract, cluster layer: zero QueryOpts and a
// zero Overload config are byte-identical to the legacy paths; a
// deadline propagates as a shrinking budget down to device admission;
// brownout sheds batch then degrades interactive; the retry/hedge
// token bucket bounds amplification without changing low-load behavior.

// TestSearchWithZeroOptsParity pins the inertness guarantee: SearchWith
// (and SearchAtWith) under a zero QueryOpts on an overload-free cluster
// returns byte-identical docs and deep-equal stats to legacy Search.
func TestSearchWithZeroOptsParity(t *testing.T) {
	c := parityCorpus(t)
	queries := parityQueries(c, 40)
	cfg := Config{Engine: core.Config{Mode: core.Hybrid}, TopK: 10}
	legacy := buildCluster(t, c, 2, cfg)
	defer legacy.Close()
	with := buildCluster(t, c, 2, cfg)
	defer with.Close()

	for i, q := range queries {
		arrival := time.Duration(i) * 50 * time.Microsecond
		want, err := legacy.SearchAt(context.Background(), q.Terms, arrival)
		if err != nil {
			t.Fatalf("query %d legacy: %v", i, err)
		}
		got, err := with.SearchAtWith(context.Background(), q.Terms, arrival, QueryOpts{})
		if err != nil {
			t.Fatalf("query %d SearchAtWith: %v", i, err)
		}
		if !reflect.DeepEqual(got.Stats, want.Stats) {
			t.Fatalf("query %d stats diverge:\n got %+v\nwant %+v", i, got.Stats, want.Stats)
		}
		if len(got.Docs) != len(want.Docs) {
			t.Fatalf("query %d: %d docs != %d", i, len(got.Docs), len(want.Docs))
		}
		for j := range want.Docs {
			if got.Docs[j].DocID != want.Docs[j].DocID ||
				math.Float32bits(got.Docs[j].Score) != math.Float32bits(want.Docs[j].Score) {
				t.Fatalf("query %d doc[%d] diverges: {%d %x} != {%d %x}", i, j,
					got.Docs[j].DocID, math.Float32bits(got.Docs[j].Score),
					want.Docs[j].DocID, math.Float32bits(want.Docs[j].Score))
			}
		}
	}
	if legacy.OverloadEnabled() || with.OverloadEnabled() {
		t.Fatal("zero Overload config reports enabled")
	}
}

// TestDeadlineInfeasibleRefused: a deadline below the merge reserve can
// never be met — the query is refused up front with ErrDeadline, before
// any shard work.
func TestDeadlineInfeasibleRefused(t *testing.T) {
	c := parityCorpus(t)
	cl := buildCluster(t, c, 2, Config{Engine: core.Config{Mode: core.CPUOnly}, TopK: 10})
	defer cl.Close()
	if cl.MergeReserve() <= 0 {
		t.Fatalf("merge reserve %v not positive", cl.MergeReserve())
	}
	q := parityQueries(c, 1)[0]
	_, err := cl.SearchWith(context.Background(), q.Terms, QueryOpts{Deadline: time.Nanosecond})
	if !errors.Is(err, overload.ErrDeadline) {
		t.Fatalf("error %v does not wrap ErrDeadline", err)
	}
	if !overload.IsOverload(err) {
		t.Fatalf("error %v not classified as overload", err)
	}
	if got := cl.Overload().DeadlineInfeasible; got != 1 {
		t.Fatalf("DeadlineInfeasible = %d, want 1", got)
	}
}

// TestDeadlineBudgetRejectsBackloggedDevice drives the budget all the
// way to device admission: a deeply backlogged device refuses a query
// whose sub-deadline its pending work already exceeds (without mutating
// its timeline), while an ample deadline on the same cluster is served.
func TestDeadlineBudgetRejectsBackloggedDevice(t *testing.T) {
	c := parityCorpus(t)
	cl := buildCluster(t, c, 1, Config{Engine: core.Config{Mode: core.Hybrid}, TopK: 10})
	defer cl.Close()
	q := parityQueries(c, 1)[0]

	// Pile work onto the single replica's device at arrival 0.
	for i := 0; i < 25; i++ {
		if _, err := cl.SearchAt(context.Background(), q.Terms, 0); err != nil {
			t.Fatalf("backlog query %d: %v", i, err)
		}
	}

	tight := cl.MergeReserve() + 50*time.Microsecond
	_, err := cl.SearchAtWith(context.Background(), q.Terms, time.Microsecond, QueryOpts{Deadline: tight})
	if !errors.Is(err, overload.ErrDeadline) {
		t.Fatalf("tight deadline: error %v does not wrap ErrDeadline", err)
	}
	ost := cl.Overload()
	if ost.BudgetRejects == 0 {
		t.Fatal("no device budget rejections recorded")
	}

	// The same cluster serves an ample deadline: the rejection left the
	// device timeline untouched and nothing is wedged.
	res, err := cl.SearchAtWith(context.Background(), q.Terms, 2*time.Microsecond, QueryOpts{Deadline: 10 * time.Second})
	if err != nil {
		t.Fatalf("ample deadline: %v", err)
	}
	if res.Stats.Degraded || res.Stats.DeadlineMiss {
		t.Fatalf("ample deadline degraded=%v miss=%v", res.Stats.Degraded, res.Stats.DeadlineMiss)
	}
	if res.Stats.Deadline != 10*time.Second {
		t.Fatalf("stats deadline %v, want 10s", res.Stats.Deadline)
	}
}

// TestDeadlineExceededDropsLateShard pins the gather side of deadline
// propagation: a shard that answers past its sub-deadline is dropped
// from the merge and the critical path charges exactly the sub-deadline.
func TestDeadlineExceededDropsLateShard(t *testing.T) {
	c := parityCorpus(t)
	cl := buildCluster(t, c, 2, Config{Engine: core.Config{Mode: core.CPUOnly}, TopK: 10})
	defer cl.Close()
	q := parityQueries(c, 1)[0]

	// CPU shard latency is far above 1us; both shards blow the budget.
	deadline := cl.MergeReserve() + time.Microsecond
	res, err := cl.SearchWith(context.Background(), q.Terms, QueryOpts{Deadline: deadline})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Degraded {
		t.Fatal("late shards did not degrade the query")
	}
	for s, ss := range res.Stats.Shards {
		if !ss.DeadlineExceeded {
			t.Fatalf("shard %d not marked DeadlineExceeded: %+v", s, ss)
		}
	}
	if res.Stats.MaxShard != time.Microsecond {
		t.Fatalf("critical path charged %v, want the sub-deadline %v", res.Stats.MaxShard, time.Microsecond)
	}
	if len(res.Docs) != 0 {
		t.Fatalf("dropped shards still contributed %d docs", len(res.Docs))
	}
}

// TestDeadlineMissMarksLateAnswer: with an artificially small merge
// reserve the shards can make their sub-deadlines while the merged
// answer lands past the query deadline — the caller still gets the
// result, marked as a miss.
func TestDeadlineMissMarksLateAnswer(t *testing.T) {
	c := parityCorpus(t)
	cfg := Config{
		Engine:   core.Config{Mode: core.CPUOnly},
		TopK:     10,
		Overload: overload.Config{MergeReserve: time.Nanosecond},
	}
	cl := buildCluster(t, c, 2, cfg)
	defer cl.Close()

	// Find a query whose merged answer is non-empty and whose merge is
	// wide enough to wedge a deadline between reserve and latency.
	var terms []string
	var probe *Result
	for _, cand := range parityQueries(c, 30) {
		r, err := cl.Search(context.Background(), cand.Terms)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Docs) > 0 && r.Stats.MergeTime > 2*time.Nanosecond {
			terms, probe = cand.Terms, r
			break
		}
	}
	if terms == nil {
		t.Fatal("no query produced a mergeable result")
	}
	deadline := probe.Stats.Latency - time.Nanosecond
	res, err := cl.SearchWith(context.Background(), terms, QueryOpts{Deadline: deadline})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Degraded {
		t.Fatalf("shards unexpectedly degraded: %+v", res.Stats)
	}
	if !res.Stats.DeadlineMiss {
		t.Fatalf("latency %v over deadline %v not marked as a miss", res.Stats.Latency, deadline)
	}
	if len(res.Docs) == 0 {
		t.Fatal("deadline miss returned no docs — misses must degrade, not refuse")
	}
	if got := cl.Overload().DeadlineMisses; got != 1 {
		t.Fatalf("DeadlineMisses = %d, want 1", got)
	}
}

// TestBrownoutShedsBatchThenDegradesInteractive walks the two-tier
// ladder on a live backlogged cluster: batch is refused with ErrShed,
// interactive is served degraded (CPU-only plan, reduced top-k).
func TestBrownoutShedsBatchThenDegradesInteractive(t *testing.T) {
	c := parityCorpus(t)
	cfg := Config{
		Engine: core.Config{Mode: core.Hybrid},
		TopK:   10,
		Overload: overload.Config{
			BrownoutEnter: 100 * time.Microsecond,
			BrownoutHold:  time.Hour, // never step down during the test
		},
	}
	cl := buildCluster(t, c, 1, cfg)
	defer cl.Close()

	// Cold cluster: batch is served normally at level 0.
	qs := parityQueries(c, 30)
	res, err := cl.SearchAtWith(context.Background(), qs[0].Terms, 0, QueryOpts{Class: overload.Batch})
	if err != nil {
		t.Fatalf("cold batch query: %v", err)
	}
	if res.Stats.BrownoutLevel != 0 || res.Stats.Class != overload.Batch {
		t.Fatalf("cold stats %+v", res.Stats)
	}

	// Pick a query with a non-empty result set (some conjunctions are
	// legitimately empty) so the degraded answer is observable.
	var q []string
	for _, cand := range qs {
		r, err := cl.SearchAtWith(context.Background(), cand.Terms, 0, QueryOpts{})
		if err != nil {
			t.Fatalf("probe query: %v", err)
		}
		if len(r.Docs) > 0 {
			q = cand.Terms
			break
		}
	}
	if q == nil {
		t.Fatal("no probe query matched any document")
	}

	// Pile device work until pressure is far past the escalate threshold.
	for i := 0; i < 30; i++ {
		if _, err := cl.SearchAt(context.Background(), q, 0); err != nil {
			t.Fatalf("backlog query %d: %v", i, err)
		}
	}

	_, err = cl.SearchAtWith(context.Background(), q, time.Microsecond, QueryOpts{Class: overload.Batch})
	if !errors.Is(err, overload.ErrShed) {
		t.Fatalf("hot batch query: error %v does not wrap ErrShed", err)
	}

	res, err = cl.SearchAtWith(context.Background(), q, 2*time.Microsecond, QueryOpts{})
	if err != nil {
		t.Fatalf("hot interactive query: %v", err)
	}
	st := res.Stats
	if st.BrownoutLevel != 2 || !st.ForcedCPU || st.DegradedTopK != 5 {
		t.Fatalf("interactive not degraded at level 2: %+v", st)
	}
	if len(res.Docs) == 0 || len(res.Docs) > 5 {
		t.Fatalf("degraded top-k returned %d docs, want 1..5", len(res.Docs))
	}
	ost := cl.Overload()
	if ost.Brownout.Level != 2 || ost.Brownout.BatchSheds != 1 || ost.Brownout.Degraded < 1 {
		t.Fatalf("brownout stats %+v", ost.Brownout)
	}
}

// TestCoDelShedderShedsSustainedOverage: a replica whose backlog has
// exceeded the shed target for a full interval refuses sub-queries; on
// a single-shard cluster the whole query surfaces ErrShed.
func TestCoDelShedderShedsSustainedOverage(t *testing.T) {
	c := parityCorpus(t)
	cfg := Config{
		Engine: core.Config{Mode: core.Hybrid},
		TopK:   10,
		Overload: overload.Config{
			ShedTarget:   50 * time.Microsecond,
			ShedInterval: 10 * time.Microsecond,
		},
	}
	cl := buildCluster(t, c, 1, cfg)
	defer cl.Close()
	q := parityQueries(c, 1)[0]

	// Build the backlog at arrival 0: the overage clock starts but no
	// interval elapses, so every builder query is admitted.
	for i := 0; i < 30; i++ {
		if _, err := cl.SearchAt(context.Background(), q.Terms, 0); err != nil {
			t.Fatalf("backlog query %d: %v", i, err)
		}
	}
	// 20us later the overage has been sustained past the interval.
	_, err := cl.SearchAtWith(context.Background(), q.Terms, 20*time.Microsecond, QueryOpts{})
	if !errors.Is(err, overload.ErrShed) {
		t.Fatalf("error %v does not wrap ErrShed", err)
	}
	ost := cl.Overload()
	if ost.ShardSheds != 1 {
		t.Fatalf("ShardSheds = %d, want 1", ost.ShardSheds)
	}
	if ost.ShardOffers == 0 {
		t.Fatal("shedder recorded no offers")
	}
}

// TestRetryBudgetBoundsAmplification runs the self-heal fault drill
// three ways: unbudgeted, generously budgeted (low load for the bucket:
// behavior provably identical), and tightly budgeted (retries bounded
// by burst + ratio x admissions, well below the unbudgeted count).
func TestRetryBudgetBoundsAmplification(t *testing.T) {
	c := parityCorpus(t)
	q := parityQueries(c, 1)[0]
	const n = 120
	const shards = 2
	run := func(olc overload.Config) (SelfHealStats, OverloadStats) {
		inj := fault.NewInjector(fault.Plan{Seed: 77, Rules: []fault.Rule{
			{Kind: fault.EngineError, Rate: 0.3},
		}})
		cl := buildCluster(t, c, shards, Config{
			Engine:   core.Config{Mode: core.CPUOnly},
			TopK:     10,
			Replicas: 2,
			Fault:    inj,
			Breaker:  fault.BreakerConfig{Threshold: -1},
			Overload: olc,
		})
		defer cl.Close()
		for i := 0; i < n; i++ {
			if _, err := cl.Search(context.Background(), q.Terms); err != nil &&
				!errors.Is(err, ErrAllShardsFailed) {
				t.Fatal(err)
			}
		}
		return cl.SelfHeal(), cl.Overload()
	}

	free, _ := run(overload.Config{})
	if free.Retries == 0 {
		t.Fatal("no retries under a 30% engine-error rate — drill is inert")
	}

	// A generous budget never runs dry at this load: identical behavior.
	generous, _ := run(overload.Config{RetryBudget: 1.0})
	if generous.Retries != free.Retries {
		t.Fatalf("generous budget changed retries: %d != unbudgeted %d", generous.Retries, free.Retries)
	}

	tight, ost := run(overload.Config{RetryBudget: 0.05, RetryBurst: 1})
	bound := float64(shards)*1 + 0.05*float64(ost.RetryBudget.Admissions) + 1e-6
	if float64(tight.Retries) > bound {
		t.Fatalf("budgeted retries %d exceed bound %.2f (admissions %d)",
			tight.Retries, bound, ost.RetryBudget.Admissions)
	}
	if tight.Retries >= free.Retries {
		t.Fatalf("tight budget did not bound amplification: %d >= %d", tight.Retries, free.Retries)
	}
	if ost.RetryBudget.Denied == 0 {
		t.Fatal("tight bucket never denied a token")
	}
}
