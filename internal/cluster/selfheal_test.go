package cluster

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"griffin/internal/core"
	"griffin/internal/fault"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/workload"
)

// TestAllShardsFailedReportsFirstErr pins the error-reporting fix: the
// all-shards-failed error wraps ErrAllShardsFailed and carries an actual
// shard error, found by scanning rather than blindly reading shard 0.
func TestAllShardsFailedReportsFirstErr(t *testing.T) {
	c := parityCorpus(t)
	ixs, err := workload.PartitionCorpus(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	model := hwmodel.DefaultGPU()
	model.MemoryBytes = 16 // every upload fails (resource error, no fallback)
	cl, err := New(ixs, Config{
		Engine: core.Config{Mode: core.GPUOnly}, TopK: 10, DeviceModel: model,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Search(context.Background(), []string{workload.TermName(3), workload.TermName(9)})
	if !errors.Is(err, ErrAllShardsFailed) {
		t.Fatalf("error %v does not wrap ErrAllShardsFailed", err)
	}
	if msg := err.Error(); msg == "" || !containsNonEmptyCause(msg) {
		t.Fatalf("error %q carries no shard cause", msg)
	}
}

func containsNonEmptyCause(msg string) bool {
	const marker = "first error: "
	for i := 0; i+len(marker) <= len(msg); i++ {
		if msg[i:i+len(marker)] == marker {
			return len(msg) > i+len(marker)
		}
	}
	return false
}

// TestSiblingRetryHealsEngineErrors drives a replicated cluster under
// injected engine errors and checks the self-healing arithmetic: with a
// sibling retry, a shard only goes missing when both replicas' draws
// fail; the hardened cluster must therefore degrade strictly less than a
// brittle one on the identical fault stream, and must report the retries
// it took.
func TestSiblingRetryHealsEngineErrors(t *testing.T) {
	c := parityCorpus(t)
	q := []string{workload.TermName(3), workload.TermName(9)}
	const n = 120
	run := func(retries int) (degraded, failed int, heal SelfHealStats) {
		inj := fault.NewInjector(fault.Plan{Seed: 77, Rules: []fault.Rule{
			{Kind: fault.EngineError, Rate: 0.3},
		}})
		cl := buildCluster(t, c, 2, Config{
			Engine:   core.Config{Mode: core.CPUOnly},
			TopK:     10,
			Replicas: 2,
			Fault:    inj,
			Retries:  retries,
			Breaker:  fault.BreakerConfig{Threshold: -1}, // isolate the retry effect
		})
		defer cl.Close()
		for i := 0; i < n; i++ {
			r, err := cl.Search(context.Background(), q)
			switch {
			case err != nil:
				if !errors.Is(err, ErrAllShardsFailed) {
					t.Fatal(err)
				}
				failed++
			case r.Stats.Degraded:
				degraded++
			}
		}
		return degraded, failed, cl.SelfHeal()
	}

	hardDeg, hardFail, heal := run(0) // 0 = default: 1 sibling retry
	britDeg, britFail, brittleHeal := run(-1)

	if brittleHeal.Retries != 0 {
		t.Fatalf("brittle cluster retried %d times with retries disabled", brittleHeal.Retries)
	}
	if heal.Retries == 0 {
		t.Fatalf("hardened cluster took no retries under a 30%% engine-error rate")
	}
	if hardDeg+hardFail >= britDeg+britFail {
		t.Fatalf("retries did not help: hardened %d+%d vs brittle %d+%d incidents",
			hardDeg, hardFail, britDeg, britFail)
	}
}

// TestBreakerTripsShedsAndRecovers walks the breaker lifecycle on a live
// cluster: engine errors on every site's early admissions trip both
// replicas' breakers (health goes unhealthy), the fault schedule ends,
// and after the cooldown half-open probes readmit the replicas (health
// recovers, queries succeed again).
func TestBreakerTripsShedsAndRecovers(t *testing.T) {
	c := parityCorpus(t)
	q := []string{workload.TermName(3), workload.TermName(9)}
	inj := fault.NewInjector(fault.Plan{Seed: 5, Rules: []fault.Rule{
		// Each site's first 3 sub-query admissions fail.
		{Kind: fault.EngineError, Rate: 1, Until: 3},
	}})
	cl := buildCluster(t, c, 1, Config{
		Engine:   core.Config{Mode: core.CPUOnly},
		TopK:     10,
		Replicas: 2,
		Fault:    inj,
		Breaker:  fault.BreakerConfig{Threshold: 3, Cooldown: 5 * time.Millisecond, Probes: 1},
	})
	defer cl.Close()

	// Queries 1-3 (clock 1..3ms): primary and retry both draw failures,
	// striking both replicas each time. By query 3 both breakers trip.
	sawFailure := false
	for i := 0; i < 3; i++ {
		if _, err := cl.Search(context.Background(), q); err != nil {
			if !errors.Is(err, ErrAllShardsFailed) {
				t.Fatal(err)
			}
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Fatal("fault schedule injected no failures")
	}
	h := cl.Health()
	if h.Healthy || h.Unreachable != 1 {
		t.Fatalf("after tripping every replica, health = %+v, want 1 unreachable shard (unhealthy)", h)
	}
	if cl.SelfHeal().BreakerTrips < 2 {
		t.Fatalf("breaker trips = %d, want both replicas tripped", cl.SelfHeal().BreakerTrips)
	}

	// Advance the modeled clock past the cooldown: breakers go half-open,
	// the (now clean) schedule lets the probes succeed, breakers close.
	var r *Result
	var err error
	for i := 0; i < 8; i++ {
		r, err = cl.Search(context.Background(), q)
	}
	if err != nil {
		t.Fatalf("cluster did not recover after cooldown: %v", err)
	}
	if len(r.Docs) == 0 || r.Stats.Degraded {
		t.Fatalf("post-recovery query degraded: %+v", r.Stats)
	}
	if h := cl.Health(); !h.Healthy || h.Unreachable != 0 {
		t.Fatalf("post-recovery health = %+v, want healthy", h)
	}
}

// TestLeastPendingAvoidsTrippedBreaker is the satellite routing test: a
// replica whose breaker is open must not receive traffic even though its
// device is idle (zero backlog would otherwise make it the router's
// favorite).
func TestLeastPendingAvoidsTrippedBreaker(t *testing.T) {
	c := parityCorpus(t)
	cl := buildCluster(t, c, 1, Config{
		Engine:   core.Config{Mode: core.Hybrid},
		TopK:     10,
		Replicas: 2,
		Routing:  LeastPending,
	})
	defer cl.Close()
	g := cl.shards[0]
	now := 10 * time.Millisecond
	// Trip replica 0 (the idle-tie favorite) directly.
	for i := 0; i < 3; i++ {
		g.replicas[0].breaker.Record(now, false)
	}
	if g.replicas[0].breaker.State(now) != fault.Open {
		t.Fatal("replica 0 breaker did not trip")
	}
	for i := 0; i < 4; i++ {
		ri, _ := g.pick(LeastPending, now, false)
		if ri != 1 {
			t.Fatalf("pick routed onto the tripped replica (got %d, want 1)", ri)
		}
	}
	// All breakers open: pick fails open rather than refusing.
	for i := 0; i < 3; i++ {
		g.replicas[1].breaker.Record(now, false)
	}
	if ri, rep := g.pick(LeastPending, now, false); rep == nil || ri < 0 {
		t.Fatal("pick refused to route with every breaker open")
	}
}

// TestLeastPendingAvoidsMidResetDevice is the other half of the
// satellite: a device mid-reset has an empty queue, so raw backlog makes
// it the most attractive replica — the router must see the remaining
// reset window and steer away.
func TestLeastPendingAvoidsMidResetDevice(t *testing.T) {
	c := parityCorpus(t)
	inj := fault.NewInjector(fault.Plan{Seed: 2, Rules: []fault.Rule{
		{Kind: fault.DeviceReset, Rate: 1, Until: 1, Stall: 4 * time.Millisecond},
	}})
	cl := buildCluster(t, c, 1, Config{
		Engine:   core.Config{Mode: core.Hybrid},
		TopK:     10,
		Replicas: 2,
		Routing:  LeastPending,
		Fault:    inj,
		Breaker:  fault.BreakerConfig{Threshold: -1}, // isolate the backlog signal
	})
	defer cl.Close()
	g := cl.shards[0]

	// Sanity: idle tie routes to replica 0.
	if ri, _ := g.pick(LeastPending, 0, false); ri != 0 {
		t.Fatalf("idle tie broke to replica %d, want 0", ri)
	}
	// Fire replica 0's reset at t=1ms (one doomed submission opens the
	// 4ms window).
	hook := inj.DeviceHook("s0r0")
	if err := hook(gpu.ComputeEngine, time.Millisecond); !fault.IsDeviceFault(err) {
		t.Fatalf("reset did not fire: %v", err)
	}
	// Mid-window the router must prefer the healthy (equally idle)
	// sibling; after the window the tie reverts to replica 0.
	if ri, _ := g.pick(LeastPending, 2*time.Millisecond, false); ri != 1 {
		t.Fatalf("mid-reset pick routed to the resetting device (got %d, want 1)", ri)
	}
	if ri, _ := g.pick(LeastPending, 6*time.Millisecond, false); ri != 0 {
		t.Fatalf("post-reset pick = %d, want 0 (window over)", ri)
	}
}

// TestHedgedRequestWins sets up an asymmetric stall — the primary
// replica's first admission stalls, the sibling's does not — and checks
// the hedge fires, wins, and defines the shard's effective latency as
// HedgeDelay + hedge path.
func TestHedgedRequestWins(t *testing.T) {
	c := parityCorpus(t)
	q := []string{workload.TermName(3), workload.TermName(9)}

	// Find a seed whose first draw stalls site s0r0 but not s0r1 (draws
	// are pure functions of seed and site, so this probe is exact).
	plan := func(seed int64) fault.Plan {
		return fault.Plan{Seed: seed, Rules: []fault.Rule{
			{Kind: fault.ShardStall, Rate: 0.5, Until: 1, Stall: 10 * time.Millisecond},
		}}
	}
	seed := int64(-1)
	for s := int64(0); s < 64; s++ {
		probe := fault.NewInjector(plan(s))
		d0, _ := probe.AdmitQuery("s0r0", 0)
		d1, _ := probe.AdmitQuery("s0r1", 0)
		if d0 > 0 && d1 == 0 {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no seed stalls s0r0 but not s0r1 in 64 tries")
	}

	const hedgeDelay = time.Millisecond
	cl := buildCluster(t, c, 1, Config{
		Engine:     core.Config{Mode: core.CPUOnly},
		TopK:       10,
		Replicas:   2,
		Fault:      fault.NewInjector(plan(seed)),
		HedgeDelay: hedgeDelay,
		Retries:    -1,
		Breaker:    fault.BreakerConfig{Threshold: -1},
	})
	defer cl.Close()

	// Reference: the same query on an un-faulted cluster gives the clean
	// sub-query latency.
	ref := buildCluster(t, c, 1, Config{Engine: core.Config{Mode: core.CPUOnly}, TopK: 10})
	defer ref.Close()
	want, err := ref.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	cleanLat := want.Stats.Shards[0].Query.Latency

	r, err := cl.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	ss := r.Stats.Shards[0]
	if !ss.Hedged || !ss.HedgeWon {
		t.Fatalf("hedge did not fire and win: %+v", ss)
	}
	if ss.Replica != 1 {
		t.Fatalf("winning replica = %d, want the hedged sibling 1", ss.Replica)
	}
	if wantEff := hedgeDelay + cleanLat; ss.Effective != wantEff {
		t.Fatalf("effective latency %v, want HedgeDelay + clean path = %v", ss.Effective, wantEff)
	}
	if !reflect.DeepEqual(r.Docs, want.Docs) {
		t.Fatal("hedged result differs from the clean result")
	}
	if heal := cl.SelfHeal(); heal.Hedges != 1 || heal.HedgeWins != 1 {
		t.Fatalf("self-heal counters = %+v, want 1 hedge, 1 win", heal)
	}
}

// TestHedgeLosesToFastPrimary checks the other branch: an un-stalled
// primary beats the hedge path and keeps its result.
func TestHedgeLosesToFastPrimary(t *testing.T) {
	c := parityCorpus(t)
	q := []string{workload.TermName(3), workload.TermName(9)}
	cl := buildCluster(t, c, 1, Config{
		Engine:     core.Config{Mode: core.CPUOnly},
		TopK:       10,
		Replicas:   2,
		HedgeDelay: time.Nanosecond, // everything hedges
		Retries:    -1,
		Breaker:    fault.BreakerConfig{Threshold: -1},
	})
	defer cl.Close()
	r, err := cl.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	ss := r.Stats.Shards[0]
	if !ss.Hedged {
		t.Fatal("hedge did not fire with a nanosecond delay")
	}
	if ss.HedgeWon {
		t.Fatal("hedge won against an identical primary (delay should lose the tie)")
	}
	if ss.Replica != 0 || ss.Effective != ss.Query.Latency {
		t.Fatalf("primary path not kept: %+v", ss)
	}
}

// TestFallbackCountsAsSoftStrike checks the breaker/fallback interplay:
// sub-queries that succeed via CPU fallback still trip the replica's
// breaker, because the device behind them is misbehaving.
func TestFallbackCountsAsSoftStrike(t *testing.T) {
	c := parityCorpus(t)
	q := []string{workload.TermName(3), workload.TermName(9)}
	inj := fault.NewInjector(fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Kind: fault.KernelLaunch, Rate: 1}, // every kernel dies; every GPU query falls back
	}})
	cl := buildCluster(t, c, 1, Config{
		Engine:   core.Config{Mode: core.GPUOnly},
		TopK:     10,
		Replicas: 1,
		Fault:    inj,
		Breaker:  fault.BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond},
	})
	defer cl.Close()
	for i := 0; i < 3; i++ {
		r, err := cl.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if r.Stats.Degraded {
			t.Fatalf("fallback query %d degraded", i)
		}
		if r.Stats.Fallbacks != 1 {
			t.Fatalf("query %d: fallbacks = %d, want 1", i, r.Stats.Fallbacks)
		}
	}
	heal := cl.SelfHeal()
	if heal.Fallbacks != 3 {
		t.Fatalf("fallbacks = %d, want 3", heal.Fallbacks)
	}
	if heal.BreakerTrips != 1 {
		t.Fatalf("breaker trips = %d, want 1 (three soft strikes)", heal.BreakerTrips)
	}
}

// TestClusterContextCancelStopsStragglers is the goroutine-leak
// satellite: a pile of queries whose contexts die mid-flight must not
// leave shard goroutines behind.
func TestClusterContextCancelStopsStragglers(t *testing.T) {
	c := parityCorpus(t)
	queries := parityQueries(c, 16)
	cl := buildCluster(t, c, 4, Config{
		Engine:   core.Config{Mode: core.Hybrid},
		TopK:     10,
		Replicas: 2,
	})
	defer cl.Close()

	before := runtime.NumGoroutine()
	for _, q := range queries {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // dead on arrival: sub-queries abort at their first operator check
		if _, err := cl.Search(ctx, q.Terms); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled query error = %v, want context.Canceled", err)
		}
	}
	// Stragglers abort between operators; give them a moment to drain.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after cancelled run", before, after)
	}

	// The cluster still serves normal queries afterwards.
	if _, err := cl.Search(context.Background(), queries[0].Terms); err != nil {
		t.Fatal(err)
	}
}

// TestChaosDeterministic is the acceptance criterion in miniature: two
// identically seeded chaotic runs produce the same fault log, the same
// self-healing counters, and the same per-query latencies.
func TestChaosDeterministic(t *testing.T) {
	c := parityCorpus(t)
	queries := parityQueries(c, 40)
	run := func() ([]fault.Event, SelfHealStats, []time.Duration) {
		inj := fault.NewInjector(fault.Plan{Seed: 1234, Rules: []fault.Rule{
			{Kind: fault.KernelLaunch, Rate: 0.05},
			{Kind: fault.TransferError, Rate: 0.05},
			{Kind: fault.DeviceReset, Rate: 0.01, Stall: 2 * time.Millisecond},
			{Kind: fault.ShardStall, Rate: 0.05, Stall: 3 * time.Millisecond},
			{Kind: fault.EngineError, Rate: 0.03},
		}})
		cl := buildCluster(t, c, 2, Config{
			Engine:     core.Config{Mode: core.Hybrid},
			TopK:       10,
			Replicas:   2,
			Fault:      inj,
			HedgeDelay: 2 * time.Millisecond,
		})
		defer cl.Close()
		var lats []time.Duration
		var at time.Duration
		for _, q := range queries {
			at += 500 * time.Microsecond
			r, err := cl.SearchAt(context.Background(), q.Terms, at)
			if err != nil {
				if !errors.Is(err, ErrAllShardsFailed) {
					t.Fatal(err)
				}
				lats = append(lats, -1)
				continue
			}
			lats = append(lats, r.Stats.Latency)
		}
		return inj.Log(), cl.SelfHeal(), lats
	}
	log1, heal1, lats1 := run()
	log2, heal2, lats2 := run()
	if !reflect.DeepEqual(log1, log2) {
		t.Fatalf("fault logs differ: %d vs %d events", len(log1), len(log2))
	}
	if heal1 != heal2 {
		t.Fatalf("self-heal counters differ:\n%+v\n%+v", heal1, heal2)
	}
	if !reflect.DeepEqual(lats1, lats2) {
		t.Fatal("per-query latencies differ across identically seeded runs")
	}
	if len(log1) == 0 {
		t.Fatal("chaos plan injected nothing (test is vacuous)")
	}
}

// TestClusterCancelMidHedgeNoLeak extends the straggler-cancel leak
// check to the hedge interleaving: queries on a hedging cluster (tiny
// HedgeDelay, so every shard hedges) have their client contexts
// cancelled at random points mid-flight — before, during, and after the
// hedged attempt. Neither the primary nor the hedge path may leak a
// goroutine, and the cluster must keep serving afterwards.
func TestClusterCancelMidHedgeNoLeak(t *testing.T) {
	c := parityCorpus(t)
	queries := parityQueries(c, 24)
	cl := buildCluster(t, c, 2, Config{
		Engine:     core.Config{Mode: core.Hybrid},
		TopK:       10,
		Replicas:   2,
		Routing:    LeastPending,
		HedgeDelay: time.Nanosecond, // every sub-query is slower: always hedge
	})
	defer cl.Close()

	// Warm path sanity: hedges actually fire on this cluster.
	r, err := cl.Search(context.Background(), queries[0].Terms)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Hedges == 0 {
		t.Fatal("hedge never dispatched (test is vacuous)")
	}

	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, terms []string) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			switch i % 3 {
			case 0:
				cancel() // dead on arrival
			case 1:
				// Mid-flight: fires between operator boundaries of the
				// primary or the hedged attempt.
				timer := time.AfterFunc(time.Duration(i)*10*time.Microsecond, cancel)
				defer timer.Stop()
			}
			if _, err := cl.Search(ctx, terms); err != nil &&
				!errors.Is(err, context.Canceled) && !errors.Is(err, ErrAllShardsFailed) {
				t.Errorf("cancelled hedged query error = %v", err)
			}
		}(i, q.Terms)
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after cancelled hedged run", before, after)
	}

	// The cluster still serves normal queries afterwards.
	if _, err := cl.Search(context.Background(), queries[0].Terms); err != nil {
		t.Fatal(err)
	}
}
