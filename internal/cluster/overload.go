package cluster

import (
	"time"

	"griffin/internal/kernels"
	"griffin/internal/overload"
)

// QueryOpts carries one query's overload parameters into SearchWith.
// The zero value — no explicit deadline, interactive class — makes
// SearchWith identical to Search.
type QueryOpts struct {
	// Deadline is this query's deadline budget on the modeled clock,
	// overriding Config.Overload.DefaultDeadline (0 = use the default;
	// both zero = no deadline).
	Deadline time.Duration
	// Class is the query's criticality: Batch traffic is the first tier
	// shed under brownout, Interactive is degraded before being refused.
	Class overload.Class
}

// pressure is the brownout ladder's input signal: the backlog the
// slowest shard would charge a query arriving now, with each shard
// represented by its best replica (the one the router would pick). When
// even the best replica of some shard is deeply backlogged, every query
// must wait on it — that is cluster-wide pressure, not a cold replica.
func (c *Cluster) pressure(now time.Duration, timed bool) time.Duration {
	var worst time.Duration
	for _, g := range c.shards {
		best := g.replicas[0].queueDelay(now, timed)
		for _, rep := range g.replicas[1:] {
			if b := rep.queueDelay(now, timed); b < best {
				best = b
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}

// worstMergeCost prices the gather-side merge of a full candidate set —
// every shard contributing top-k documents — under the cluster's CPU
// model: the default deadline reserve.
func (c *Cluster) worstMergeCost() time.Duration {
	parts := make([][]kernels.ScoredDoc, len(c.shards))
	for s := range parts {
		docs := make([]kernels.ScoredDoc, c.cfg.TopK)
		for i := range docs {
			docs[i] = kernels.ScoredDoc{DocID: uint32(s*c.cfg.TopK + i), Score: float32(c.cfg.TopK - i)}
		}
		parts[s] = docs
	}
	_, work := MergeTopK(parts, c.cfg.TopK)
	return c.cfg.CPU.Time(work)
}

// OverloadStats is the cluster's overload-control snapshot, the /statz
// surface. Zero-valued throughout when overload control is off.
type OverloadStats struct {
	// Enabled mirrors Config.Overload.Enabled(); DefaultDeadline and
	// MergeReserve are the resolved deadline parameters.
	Enabled         bool
	DefaultDeadline time.Duration
	MergeReserve    time.Duration
	// Brownout is the degradation ladder's state and counters.
	Brownout overload.BrownoutStats
	// RetryBudget aggregates the per-shard token buckets.
	RetryBudget overload.BudgetStats
	// ShardOffers/ShardSheds aggregate the per-replica CoDel shedders.
	ShardOffers int64
	ShardSheds  int64
	// DeadlineInfeasible counts queries refused because their budget was
	// below the merge reserve; DeadlineMisses queries answered late;
	// BudgetRejects sub-queries refused by device budget admission;
	// HedgeSkips hedges suppressed by brownout or the token budget.
	DeadlineInfeasible int64
	DeadlineMisses     int64
	BudgetRejects      int64
	HedgeSkips         int64
}

// OverloadEnabled reports whether any overload control is configured.
func (c *Cluster) OverloadEnabled() bool { return c.cfg.Overload.Enabled() }

// MergeReserve returns the gather-side time subtracted from each
// query's deadline to form shard sub-deadlines.
func (c *Cluster) MergeReserve() time.Duration { return c.mergeReserve }

// Overload snapshots the cluster's overload-control state.
func (c *Cluster) Overload() OverloadStats {
	st := OverloadStats{
		Enabled:            c.cfg.Overload.Enabled(),
		DefaultDeadline:    c.cfg.Overload.DefaultDeadline,
		MergeReserve:       c.mergeReserve,
		Brownout:           c.brownout.Stats(),
		DeadlineInfeasible: c.deadlineInfeasible.Load(),
		DeadlineMisses:     c.deadlineMisses.Load(),
		BudgetRejects:      c.budgetRejects.Load(),
		HedgeSkips:         c.hedgeSkips.Load(),
	}
	for _, g := range c.shards {
		st.RetryBudget.Add(g.budget.Stats())
		for _, rep := range g.replicas {
			ss := rep.shed.Stats()
			st.ShardOffers += ss.Offered
			st.ShardSheds += ss.Sheds
		}
	}
	return st
}
