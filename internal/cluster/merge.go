package cluster

import (
	"griffin/internal/hwmodel"
	"griffin/internal/kernels"
	"griffin/internal/rank"
)

// MergeTopK merges per-shard top-k lists into the global top-k under the
// engine's rank.Beats total order (score descending, score ties by
// ascending docID), returning the merged docs plus the billable CPU work
// of the selection.
//
// Correctness relies on two properties. Document partitioning makes the
// shards' candidate sets disjoint, and scoring against global collection
// statistics makes every candidate's score identical to its score in a
// single-engine run; so the single engine's top-k — a total-order
// selection over the union of all shards' candidates — is contained in
// the union of the per-shard top-k lists (any doc beating all others
// globally beats all others within its shard). Re-running the same
// bounded-heap selection the engine uses (rank.TopKCPU) over that union
// therefore reproduces the single-engine result exactly.
//
// The merge cost is priced like any other top-k: one heap candidate per
// merged element under the calibrated CPU model — the gather-side term of
// the cluster's critical-path latency.
func MergeTopK(parts [][]kernels.ScoredDoc, k int) ([]kernels.ScoredDoc, hwmodel.CPUWork) {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	if n == 0 || k <= 0 {
		return nil, hwmodel.CPUWork{}
	}
	all := make([]kernels.ScoredDoc, 0, n)
	for _, p := range parts {
		all = append(all, p...)
	}
	return rank.TopKCPU(all, k)
}
