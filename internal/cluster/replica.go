package cluster

import (
	"context"
	"sync/atomic"
	"time"

	"griffin/internal/core"
	"griffin/internal/exec"
	"griffin/internal/fault"
)

// Routing selects how a shard group picks the replica for one sub-query.
type Routing int

const (
	// RoundRobin rotates through the replicas — the oblivious baseline.
	RoundRobin Routing = iota
	// LeastPending routes to the replica whose device reports the
	// smallest compute backlog — the same sched.DeviceBacklog signal the
	// engine's load-aware spill policy consults, reused one level up:
	// instead of spilling an intersection from a busy device to the CPU,
	// the router steers the whole sub-query to a less busy device.
	// In-flight sub-query counts break ties (and stand in for the signal
	// entirely on CPU-only replicas, which have no device runtime).
	//
	// A device mid-reset is a trap for this policy: its queues are empty
	// precisely because it is down, so raw backlog makes it look like the
	// best destination. The router therefore adds the remaining reset
	// window (fault.Injector.ResetRemaining) to the backlog signal, and
	// pick skips replicas whose circuit breaker refuses traffic outright.
	LeastPending
)

// String implements fmt.Stringer.
func (r Routing) String() string {
	if r == LeastPending {
		return "least-pending"
	}
	return "round-robin"
}

// engineRef is one refcounted engine incarnation of a replica. Live
// index swaps (ReplaceShard) publish a successor and drop the current
// reference; the engine closes — releasing its device-resident caches —
// when the last in-flight sub-query pinning it finishes.
type engineRef struct {
	eng  *core.Engine
	refs atomic.Int64
}

func (er *engineRef) release() {
	if er.refs.Add(-1) == 0 {
		er.eng.Close()
	}
}

// replica is one engine serving a shard.
type replica struct {
	// cur is the serving engine, swapped atomically by ReplaceShard.
	cur atomic.Pointer[engineRef]
	// site names this replica at fault-injection points ("s2r1").
	site string
	// breaker gates traffic to the replica; never nil.
	breaker *fault.Breaker
	// inj is the cluster's fault injector (nil when faults are off);
	// the replica reads it for the mid-reset routing signal.
	inj *fault.Injector

	inflight atomic.Int64
	served   atomic.Int64
}

func newReplica(eng *core.Engine, site string, breaker *fault.Breaker, inj *fault.Injector) *replica {
	r := &replica{site: site, breaker: breaker, inj: inj}
	er := &engineRef{eng: eng}
	er.refs.Store(1) // the "current" reference, dropped on swap/close
	r.cur.Store(er)
	return r
}

// engine returns the current serving engine without pinning it — the
// telemetry read path, safe for state that tolerates a concurrent swap.
// Sub-queries go through acquire instead.
func (r *replica) engine() *core.Engine { return r.cur.Load().eng }

// acquire pins the current engine incarnation for one sub-query.
func (r *replica) acquire() *engineRef {
	for {
		er := r.cur.Load()
		if er.refs.Add(1) <= 1 {
			// Fully drained already (swapped out): undo and retry.
			er.refs.Add(-1)
			continue
		}
		if r.cur.Load() == er {
			return er
		}
		er.release()
	}
}

// swap publishes a successor engine; the predecessor retires when its
// last in-flight sub-query finishes.
func (r *replica) swap(eng *core.Engine) {
	er := &engineRef{eng: eng}
	er.refs.Store(1)
	old := r.cur.Swap(er)
	old.release()
}

// close drops the current reference (cluster shutdown).
func (r *replica) close() {
	r.cur.Load().release()
}

// backlog returns the replica's routing signal: the least-loaded
// device's pending compute time (the node-level sched.DeviceBacklog
// view) plus that device's remaining injected reset window, or zero for
// CPU-only replicas. A multi-device replica is as attractive as its best
// device — a new sub-query would be placed there — and each device's
// reset window is charged at its own fault site, so one resetting GPU of
// a node does not poison routing to its healthy siblings.
func (r *replica) backlog(now time.Duration) time.Duration {
	node := r.engine().Node()
	if node == nil {
		return r.inj.ResetRemaining(r.site, now)
	}
	devices := node.Devices()
	var best time.Duration
	for d := 0; d < devices; d++ {
		var b time.Duration = node.Runtime(d).PendingTime()
		b += r.inj.ResetRemaining(fault.DeviceSite(r.site, d, devices), now)
		if d == 0 || b < best {
			best = b
		}
	}
	return best
}

// search runs one sub-query, tracking in-flight and served counters for
// the router and telemetry. The engine incarnation is pinned for the
// query's whole execution: a concurrent index swap never tears a result.
func (r *replica) search(ctx context.Context, terms []string, arrival time.Duration, timed bool, ov *exec.Overlay) (*core.Result, error) {
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	r.served.Add(1)
	er := r.acquire()
	defer er.release()
	if timed {
		return er.eng.SearchOverlayAtContext(ctx, terms, arrival, ov)
	}
	return er.eng.SearchOverlayContext(ctx, terms, ov)
}

// shardGroup is one shard's replica set.
type shardGroup struct {
	id       int
	rr       atomic.Int64
	replicas []*replica
}

// pick selects a replica under the routing policy at modeled time now,
// returning its index and the replica. Replicas whose circuit breaker
// refuses traffic are skipped; when every breaker refuses, pick fails
// open and routes as if all were admissible (availability over purity —
// a wrong guess degrades, refusing outright fails).
func (g *shardGroup) pick(routing Routing, now time.Duration) (int, *replica) {
	return g.pickExcluding(routing, now, -1)
}

// pickExcluding is pick with one replica index barred — the sibling
// selection for retries and hedges (exclude < 0 bars nothing).
func (g *shardGroup) pickExcluding(routing Routing, now time.Duration, exclude int) (int, *replica) {
	if len(g.replicas) == 1 {
		return 0, g.replicas[0]
	}
	admissible := func(i int) bool {
		return i != exclude && g.replicas[i].breaker.Allow(now)
	}
	candidates := make([]int, 0, len(g.replicas))
	for i := range g.replicas {
		if admissible(i) {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		// Fail open: every breaker refused (or only the excluded replica
		// remained). Route over the full set minus the exclusion.
		for i := range g.replicas {
			if i != exclude {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) == 0 {
			return exclude, g.replicas[exclude]
		}
	}
	if routing == LeastPending {
		best := candidates[0]
		bestBacklog := g.replicas[best].backlog(now)
		bestInflight := g.replicas[best].inflight.Load()
		for _, i := range candidates[1:] {
			b := g.replicas[i].backlog(now)
			fl := g.replicas[i].inflight.Load()
			if b < bestBacklog || (b == bestBacklog && fl < bestInflight) {
				best, bestBacklog, bestInflight = i, b, fl
			}
		}
		return best, g.replicas[best]
	}
	i := candidates[int((g.rr.Add(1)-1)%int64(len(candidates)))]
	return i, g.replicas[i]
}
