package cluster

import (
	"sync/atomic"
	"time"

	"griffin/internal/core"
	"griffin/internal/sched"
)

// Routing selects how a shard group picks the replica for one sub-query.
type Routing int

const (
	// RoundRobin rotates through the replicas — the oblivious baseline.
	RoundRobin Routing = iota
	// LeastPending routes to the replica whose device reports the
	// smallest compute backlog — the same sched.DeviceBacklog signal the
	// engine's load-aware spill policy consults, reused one level up:
	// instead of spilling an intersection from a busy device to the CPU,
	// the router steers the whole sub-query to a less busy device.
	// In-flight sub-query counts break ties (and stand in for the signal
	// entirely on CPU-only replicas, which have no device runtime).
	LeastPending
)

// String implements fmt.Stringer.
func (r Routing) String() string {
	if r == LeastPending {
		return "least-pending"
	}
	return "round-robin"
}

// replica is one engine serving a shard.
type replica struct {
	engine   *core.Engine
	inflight atomic.Int64
	served   atomic.Int64
}

// backlog returns the replica's routing signal: the device's pending
// compute time (sched.DeviceBacklog), or zero for CPU-only replicas.
func (r *replica) backlog() time.Duration {
	var b sched.DeviceBacklog
	if rt := r.engine.Runtime(); rt != nil {
		b = rt
	}
	if b == nil {
		return 0
	}
	return b.PendingTime()
}

// search runs one sub-query, tracking in-flight and served counters for
// the router and telemetry.
func (r *replica) search(terms []string, arrival time.Duration, timed bool) (*core.Result, error) {
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	r.served.Add(1)
	if timed {
		return r.engine.SearchAt(terms, arrival)
	}
	return r.engine.Search(terms)
}

// shardGroup is one shard's replica set.
type shardGroup struct {
	id       int
	rr       atomic.Int64
	replicas []*replica
}

// pick selects a replica under the routing policy, returning its index
// and the replica.
func (g *shardGroup) pick(routing Routing) (int, *replica) {
	if len(g.replicas) == 1 {
		return 0, g.replicas[0]
	}
	if routing == LeastPending {
		best := 0
		bestBacklog := g.replicas[0].backlog()
		bestInflight := g.replicas[0].inflight.Load()
		for i := 1; i < len(g.replicas); i++ {
			b := g.replicas[i].backlog()
			fl := g.replicas[i].inflight.Load()
			if b < bestBacklog || (b == bestBacklog && fl < bestInflight) {
				best, bestBacklog, bestInflight = i, b, fl
			}
		}
		return best, g.replicas[best]
	}
	i := int((g.rr.Add(1) - 1) % int64(len(g.replicas)))
	return i, g.replicas[i]
}
