package cluster

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"griffin/internal/core"
	"griffin/internal/exec"
	"griffin/internal/fault"
	"griffin/internal/overload"
)

// Routing selects how a shard group picks the replica for one sub-query.
type Routing int

const (
	// RoundRobin rotates through the replicas — the oblivious baseline.
	RoundRobin Routing = iota
	// LeastPending routes to the replica whose device reports the
	// smallest compute backlog — the same sched.DeviceBacklog signal the
	// engine's load-aware spill policy consults, reused one level up:
	// instead of spilling an intersection from a busy device to the CPU,
	// the router steers the whole sub-query to a less busy device.
	// In-flight sub-query counts break ties (and stand in for the signal
	// entirely on CPU-only replicas, which have no device runtime).
	//
	// A device mid-reset is a trap for this policy: its queues are empty
	// precisely because it is down, so raw backlog makes it look like the
	// best destination. The router therefore adds the remaining reset
	// window (fault.Injector.ResetRemaining) to the backlog signal, and
	// pick skips replicas whose circuit breaker refuses traffic outright.
	LeastPending
)

// String implements fmt.Stringer.
func (r Routing) String() string {
	if r == LeastPending {
		return "least-pending"
	}
	return "round-robin"
}

// engineRef is one refcounted engine incarnation of a replica. Live
// index swaps (ReplaceShard) publish a successor and drop the current
// reference; the engine closes — releasing its device-resident caches —
// when the last in-flight sub-query pinning it finishes.
type engineRef struct {
	eng  *core.Engine
	refs atomic.Int64
}

func (er *engineRef) release() {
	if er.refs.Add(-1) == 0 {
		er.eng.Close()
	}
}

// replica is one engine serving a shard.
type replica struct {
	// cur is the serving engine, swapped atomically by ReplaceShard.
	cur atomic.Pointer[engineRef]
	// site names this replica at fault-injection points ("s2r1").
	site string
	// breaker gates traffic to the replica; never nil.
	breaker *fault.Breaker
	// inj is the cluster's fault injector (nil when faults are off);
	// the replica reads it for the mid-reset routing signal.
	inj *fault.Injector
	// shed is the replica's CoDel admission shedder (nil = admit all):
	// sub-queries offered while the replica's backlog has exceeded the
	// target for a sustained interval are refused instead of queued.
	shed *overload.Shedder

	inflight atomic.Int64
	served   atomic.Int64
}

func newReplica(eng *core.Engine, site string, breaker *fault.Breaker, inj *fault.Injector) *replica {
	r := &replica{site: site, breaker: breaker, inj: inj}
	er := &engineRef{eng: eng}
	er.refs.Store(1) // the "current" reference, dropped on swap/close
	r.cur.Store(er)
	return r
}

// engine returns the current serving engine without pinning it — the
// telemetry read path, safe for state that tolerates a concurrent swap.
// Sub-queries go through acquire instead.
func (r *replica) engine() *core.Engine { return r.cur.Load().eng }

// acquire pins the current engine incarnation for one sub-query.
func (r *replica) acquire() *engineRef {
	for {
		er := r.cur.Load()
		if er.refs.Add(1) <= 1 {
			// Fully drained already (swapped out): undo and retry.
			er.refs.Add(-1)
			continue
		}
		if r.cur.Load() == er {
			return er
		}
		er.release()
	}
}

// swap publishes a successor engine; the predecessor retires when its
// last in-flight sub-query finishes.
func (r *replica) swap(eng *core.Engine) {
	er := &engineRef{eng: eng}
	er.refs.Store(1)
	old := r.cur.Swap(er)
	old.release()
}

// close drops the current reference (cluster shutdown).
func (r *replica) close() {
	r.cur.Load().release()
}

// backlog returns the replica's routing signal: the least-loaded
// device's pending compute time (the node-level sched.DeviceBacklog
// view) plus that device's remaining injected reset window, or zero for
// CPU-only replicas. A multi-device replica is as attractive as its best
// device — a new sub-query would be placed there — and each device's
// reset window is charged at its own fault site, so one resetting GPU of
// a node does not poison routing to its healthy siblings.
func (r *replica) backlog(now time.Duration) time.Duration {
	return r.queueDelay(now, false)
}

// queueDelay is backlog with a timed variant: discrete-event (timed)
// queries measure the lanes' residual work at their arrival point
// (PendingAt) — an idle-in-wall-clock device still charges the backlog
// scheduled past the arrival — while service-path queries use the live
// PendingTime signal. The overload controls (CoDel shedder, brownout
// pressure) consult this so sequential load studies see the same
// queueing delay the device timeline will actually charge.
func (r *replica) queueDelay(now time.Duration, timed bool) time.Duration {
	node := r.engine().Node()
	if node == nil {
		return r.inj.ResetRemaining(r.site, now)
	}
	devices := node.Devices()
	var best time.Duration
	for d := 0; d < devices; d++ {
		var b time.Duration
		if timed {
			b = node.Runtime(d).PendingAt(now)
		} else {
			b = node.Runtime(d).PendingTime()
		}
		b += r.inj.ResetRemaining(fault.DeviceSite(r.site, d, devices), now)
		if d == 0 || b < best {
			best = b
		}
	}
	return best
}

// search runs one sub-query, tracking in-flight and served counters for
// the router and telemetry. The engine incarnation is pinned for the
// query's whole execution: a concurrent index swap never tears a result.
// A zero opts takes the legacy engine paths byte for byte; a non-zero
// opts threads the query's deadline budget and brownout degradation
// into the engine (budget rejections surface as gpu.ErrBudget).
func (r *replica) search(ctx context.Context, terms []string, arrival time.Duration, timed bool, ov *exec.Overlay, opts core.SearchOptions) (*core.Result, error) {
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	r.served.Add(1)
	er := r.acquire()
	defer er.release()
	if timed {
		return er.eng.SearchOptsAtContext(ctx, terms, arrival, ov, opts)
	}
	return er.eng.SearchOptsContext(ctx, terms, ov, opts)
}

// shardGroup is one shard's replica set.
type shardGroup struct {
	id       int
	rr       atomic.Int64
	replicas []*replica
	// budget is the shard's retry/hedge token bucket (nil = unbudgeted):
	// primary admissions earn tokens, sibling retries and hedges spend
	// them. Per-shard rather than cluster-wide so a sequential workload's
	// token accounting is independent of shard-goroutine interleaving.
	budget *overload.Budget
}

// pick selects a replica under the routing policy at modeled time now,
// returning its index and the replica. Replicas whose circuit breaker
// refuses traffic are skipped; when every breaker refuses, pick fails
// open and routes as if all were admissible (availability over purity —
// a wrong guess degrades, refusing outright fails).
func (g *shardGroup) pick(routing Routing, now time.Duration, timed bool) (int, *replica) {
	return g.pickExcluding(routing, now, timed, -1)
}

// pickExcluding is pick with one replica index barred — the sibling
// selection for retries and hedges (exclude < 0 bars nothing).
//
// Candidacy is decided with the non-mutating breaker State (anything not
// Open may serve), then candidates are tried in the routing policy's
// preference order with the mutating Allow — which, on a HalfOpen
// breaker, reserves the probe slot for the replica actually being
// dispatched to. This ordering matters: calling Allow on every candidate
// up front would reserve probe slots on replicas that are never picked,
// wedging their breakers HalfOpen with no one to Record an outcome.
func (g *shardGroup) pickExcluding(routing Routing, now time.Duration, timed bool, exclude int) (int, *replica) {
	if len(g.replicas) == 1 {
		return 0, g.replicas[0]
	}
	candidates := make([]int, 0, len(g.replicas))
	for i := range g.replicas {
		if i != exclude && g.replicas[i].breaker.State(now) != fault.Open {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) > 0 {
		for _, i := range g.order(routing, now, timed, candidates) {
			if g.replicas[i].breaker.Allow(now) {
				return i, g.replicas[i]
			}
		}
	}
	// Fail open: every breaker refused (or only the excluded replica
	// remained). Route over the full set minus the exclusion without
	// reserving anything — availability over purity: a wrong guess
	// degrades, refusing outright fails.
	candidates = candidates[:0]
	for i := range g.replicas {
		if i != exclude {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return exclude, g.replicas[exclude]
	}
	i := g.order(routing, now, timed, candidates)[0]
	return i, g.replicas[i]
}

// order arranges candidate indices in the routing policy's preference
// order: backlog-ascending (in-flight tiebreak) for LeastPending, the
// rotation for RoundRobin. One rr tick is consumed per call, exactly as
// the pre-ordering picker consumed one per pick.
func (g *shardGroup) order(routing Routing, now time.Duration, timed bool, candidates []int) []int {
	if routing == LeastPending {
		type load struct {
			backlog  time.Duration
			inflight int64
		}
		// Timed queries rank replicas by the backlog at the arrival point
		// (PendingAt): a sequential timed load study would otherwise see
		// every wall-clock-idle replica as empty and pile the whole run
		// onto the first one while its siblings idle.
		loads := make(map[int]load, len(candidates))
		for _, i := range candidates {
			loads[i] = load{g.replicas[i].queueDelay(now, timed), g.replicas[i].inflight.Load()}
		}
		ordered := append([]int(nil), candidates...)
		sort.SliceStable(ordered, func(a, b int) bool {
			la, lb := loads[ordered[a]], loads[ordered[b]]
			if la.backlog != lb.backlog {
				return la.backlog < lb.backlog
			}
			return la.inflight < lb.inflight
		})
		return ordered
	}
	start := int((g.rr.Add(1) - 1) % int64(len(candidates)))
	ordered := make([]int, 0, len(candidates))
	for k := 0; k < len(candidates); k++ {
		ordered = append(ordered, candidates[(start+k)%len(candidates)])
	}
	return ordered
}
