package cluster

import (
	"context"
	"math"
	"testing"

	"griffin/internal/core"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/workload"
)

// The scatter-gather parity corpus: an N-shard cluster must return
// byte-identical top-k results — same docIDs, same float32 score bits,
// same order — as a single engine searching the unpartitioned corpus,
// for every query of a synthesized log and for every execution mode.
// This is the cluster layer's golden-style equivalence guarantee: the
// partitioner preserves global BM25 statistics, and the merge runs the
// engine's own total-order selection over the per-shard top-k lists.

func parityCorpus(t testing.TB) *workload.Corpus {
	t.Helper()
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    300_000,
		NumTerms:   60,
		MaxListLen: 80_000,
		MinListLen: 200,
		Alpha:      1.0,
		Codec:      index.CodecEF,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func parityQueries(c *workload.Corpus, n int) []workload.Query {
	return workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: n, PopularityAlpha: 0.7, Seed: 7,
	})
}

func singleEngine(t testing.TB, c *workload.Corpus, mode core.Mode, k int) *core.Engine {
	t.Helper()
	cfg := core.Config{Mode: mode, TopK: k}
	if mode != core.CPUOnly {
		cfg.Device = gpu.New(hwmodel.DefaultGPU(), 0)
	}
	e, err := core.New(c.Index, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func buildCluster(t testing.TB, c *workload.Corpus, shards int, cfg Config) *Cluster {
	t.Helper()
	ixs, err := workload.PartitionCorpus(c, shards)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(ixs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestScatterGatherParity(t *testing.T) {
	const k = 10
	c := parityCorpus(t)
	queries := parityQueries(c, 150)

	for _, mode := range []core.Mode{core.CPUOnly, core.Hybrid} {
		single := singleEngine(t, c, mode, k)
		want := make([]*core.Result, len(queries))
		for i, q := range queries {
			r, err := single.Search(q.Terms)
			if err != nil {
				t.Fatalf("%v single query %d: %v", mode, i, err)
			}
			want[i] = r
		}
		for _, shards := range []int{1, 2, 4, 8} {
			cl := buildCluster(t, c, shards, Config{
				Engine: core.Config{Mode: mode},
				TopK:   k,
			})
			for i, q := range queries {
				got, err := cl.Search(context.Background(), q.Terms)
				if err != nil {
					t.Fatalf("%v shards=%d query %d: %v", mode, shards, i, err)
				}
				if got.Stats.Degraded {
					t.Fatalf("%v shards=%d query %d: unexpectedly degraded", mode, shards, i)
				}
				if len(got.Docs) != len(want[i].Docs) {
					t.Fatalf("%v shards=%d query %d %v: %d docs != single-engine %d",
						mode, shards, i, q.Terms, len(got.Docs), len(want[i].Docs))
				}
				for j := range want[i].Docs {
					w, g := want[i].Docs[j], got.Docs[j]
					if g.DocID != w.DocID || math.Float32bits(g.Score) != math.Float32bits(w.Score) {
						t.Fatalf("%v shards=%d query %d %v: doc[%d] = {%d %x} != single-engine {%d %x}",
							mode, shards, i, q.Terms, j,
							g.DocID, math.Float32bits(g.Score), w.DocID, math.Float32bits(w.Score))
					}
				}
			}
			cl.Close()
		}
		single.Close()
	}
}

// Candidate-count conservation: the shards' candidate sets partition the
// single engine's candidate set.
func TestScatterGatherCandidatePartition(t *testing.T) {
	c := parityCorpus(t)
	queries := parityQueries(c, 60)
	single := singleEngine(t, c, core.CPUOnly, 10)
	defer single.Close()
	cl := buildCluster(t, c, 4, Config{Engine: core.Config{Mode: core.CPUOnly}, TopK: 10})
	defer cl.Close()

	for i, q := range queries {
		w, err := single.Search(q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		g, err := cl.Search(context.Background(), q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, ss := range g.Stats.Shards {
			total += ss.Query.Candidates
		}
		if total != w.Stats.Candidates {
			t.Fatalf("query %d %v: shard candidates sum %d != single-engine %d",
				i, q.Terms, total, w.Stats.Candidates)
		}
	}
}
