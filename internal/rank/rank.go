// Package rank implements the ranking stage of query processing (§2.1.3,
// §3.1.3): BM25 similarity scoring over the surviving candidates, followed
// by top-k selection. Three selectors are provided, matching the paper's
// Figure-7 comparison: the CPU partial sort (a bounded heap, the winner
// the paper adopts), and wrappers over the GPU radixSort and bucketSelect
// kernels.
package rank

import (
	"container/heap"
	"math"

	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/kernels"
)

// BM25Params are the free parameters of the BM25 ranking model
// (Robertson & Walker, SIGIR 1994). The defaults are the standard
// k1 = 1.2, b = 0.75.
type BM25Params struct {
	K1 float64
	B  float64
}

// DefaultBM25 returns the conventional parameterization.
func DefaultBM25() BM25Params { return BM25Params{K1: 1.2, B: 0.75} }

// Scorer evaluates BM25 against one index's collection statistics.
type Scorer struct {
	params BM25Params
	ix     *index.Index
}

// NewScorer binds the parameters to an index.
func NewScorer(ix *index.Index, params BM25Params) *Scorer {
	return &Scorer{params: params, ix: ix}
}

// IDF returns the Robertson-Sparck-Jones idf for a term with document
// frequency df, floored at a small positive value so very common terms
// cannot produce negative contributions.
func (s *Scorer) IDF(df int) float64 {
	n := float64(s.ix.NumDocs)
	idf := math.Log((n-float64(df)+0.5)/(float64(df)+0.5) + 1)
	if idf < 1e-6 {
		idf = 1e-6
	}
	return idf
}

// ScoreTerm returns one term's BM25 contribution for a document with term
// frequency tf and length docLen.
func (s *Scorer) ScoreTerm(df int, tf uint32, docLen uint32) float64 {
	if tf == 0 {
		return 0
	}
	k1, b := s.params.K1, s.params.B
	avg := s.ix.AvgDocLen
	if avg <= 0 {
		avg = 1
	}
	f := float64(tf)
	norm := f * (k1 + 1) / (f + k1*(1-b+b*float64(docLen)/avg))
	return s.IDF(df) * norm
}

// ScoreCandidates computes the full BM25 score of every candidate against
// the query's posting lists, returning scored docs plus the billable CPU
// work.
//
// Billing note: in the paper's system each posting entry carries its
// document frequency next to the docID (§2.1.3), so when an intersection
// emits a qualified result the tf values are already in registers and
// "its score is computed accordingly" — scoring is fused with
// intersection at O(1) per candidate per term. This implementation keeps
// frequencies in a parallel array and re-fetches them here for functional
// simplicity; that re-fetch is an artifact of the representation, so only
// the score arithmetic (ScoredDocs) is billed, anchored to Figure 7's
// measured CPU ranking costs (~5 ms at 1M candidates).
func (s *Scorer) ScoreCandidates(lists []*index.PostingList, candidates []uint32) ([]kernels.ScoredDoc, hwmodel.CPUWork) {
	var work hwmodel.CPUWork
	out := make([]kernels.ScoredDoc, len(candidates))
	for i, d := range candidates {
		var score float64
		for _, pl := range lists {
			tf, _, ok := pl.FreqForDoc(d)
			if ok {
				score += s.ScoreTerm(pl.ScoringN(), tf, s.ix.DocLen(d))
			}
		}
		work.ScoredDocs += int64(len(lists))
		out[i] = kernels.ScoredDoc{DocID: d, Score: float32(score)}
	}
	return out, work
}

// Beats reports whether a ranks strictly ahead of b in result order:
// higher score first, ties broken by ascending docID. The tie-break makes
// top-k selection a *total* order, so the selected set and its output
// order are functions of the candidate set alone — the property the
// cluster layer's scatter-gather merge relies on to reproduce a
// single-engine run bit for bit from per-shard top-k lists.
func Beats(a, b kernels.ScoredDoc) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.DocID < b.DocID
}

// docHeap is a bounded min-heap on result order: the root is the weakest
// of the current top-k, evicted when a stronger candidate arrives.
type docHeap []kernels.ScoredDoc

func (h docHeap) Len() int           { return len(h) }
func (h docHeap) Less(i, j int) bool { return Beats(h[j], h[i]) }
func (h docHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *docHeap) Push(x any)        { *h = append(*h, x.(kernels.ScoredDoc)) }
func (h *docHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopKCPU selects the k highest-scoring docs with a bounded heap — the
// "CPU partial_sort" contender of Figure 7 and the selector Griffin
// adopts (small result sets cannot amortize GPU launch overheads).
// Results are in descending score order, score ties in ascending docID
// order (the Beats total order).
func TopKCPU(docs []kernels.ScoredDoc, k int) ([]kernels.ScoredDoc, hwmodel.CPUWork) {
	var work hwmodel.CPUWork
	if k <= 0 || len(docs) == 0 {
		return nil, work
	}
	h := make(docHeap, 0, k)
	for _, d := range docs {
		work.HeapCandidates++
		if len(h) < k {
			heap.Push(&h, d)
		} else if Beats(d, h[0]) {
			h[0] = d
			heap.Fix(&h, 0)
		}
	}
	out := make([]kernels.ScoredDoc, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(kernels.ScoredDoc)
	}
	return out, work
}

// TopKGPURadix ranks on the device with the brute-force radix sort
// (Figure 7's "GPU radix sort"): uploads the candidates, sorts all of
// them, reads back the top k.
func TopKGPURadix(s *gpu.Stream, docs []kernels.ScoredDoc, k int) ([]kernels.ScoredDoc, error) {
	buf, err := s.H2D(docs, int64(len(docs))*8)
	if err != nil {
		return nil, err
	}
	defer buf.Free()
	out, _, err := kernels.RadixSortTopK(s, buf, k)
	return out, err
}

// TopKGPUBucket ranks on the device with bucketSelect (Figure 7's "GPU
// bucket select"): uploads the candidates, isolates the k-th max, selects.
func TopKGPUBucket(s *gpu.Stream, docs []kernels.ScoredDoc, k int) ([]kernels.ScoredDoc, error) {
	buf, err := s.H2D(docs, int64(len(docs))*8)
	if err != nil {
		return nil, err
	}
	defer buf.Free()
	out, _, err := kernels.BucketSelectTopK(s, buf, k)
	return out, err
}
