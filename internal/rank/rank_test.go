package rank

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/kernels"
)

func buildTestIndex(t testing.TB) *index.Index {
	t.Helper()
	b := index.NewBuilder(index.CodecEF)
	docs := []struct {
		id     uint32
		tokens []string
	}{
		{0, []string{"apple", "banana", "apple"}},
		{1, []string{"banana", "cherry"}},
		{2, []string{"apple", "cherry", "cherry", "cherry"}},
		{3, []string{"durian"}},
		{4, []string{"apple", "banana", "cherry", "durian", "elderberry"}},
	}
	for _, d := range docs {
		if err := b.AddDocument(d.id, d.tokens); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestIDFDecreasesWithDF(t *testing.T) {
	ix := buildTestIndex(t)
	s := NewScorer(ix, DefaultBM25())
	if s.IDF(1) <= s.IDF(3) {
		t.Fatal("rarer terms must have higher IDF")
	}
	if s.IDF(ix.NumDocs) <= 0 {
		t.Fatal("IDF must stay positive")
	}
}

func TestScoreTermBehaviour(t *testing.T) {
	ix := buildTestIndex(t)
	s := NewScorer(ix, DefaultBM25())
	if s.ScoreTerm(2, 0, 10) != 0 {
		t.Fatal("zero tf must score zero")
	}
	// Higher tf scores higher, with diminishing returns.
	s1, s2, s3 := s.ScoreTerm(2, 1, 10), s.ScoreTerm(2, 2, 10), s.ScoreTerm(2, 3, 10)
	if !(s1 < s2 && s2 < s3) {
		t.Fatalf("tf monotonicity violated: %v %v %v", s1, s2, s3)
	}
	if s2-s1 <= s3-s2 {
		t.Fatal("tf saturation (concavity) violated")
	}
	// Longer docs are penalized at equal tf.
	if s.ScoreTerm(2, 2, 100) >= s.ScoreTerm(2, 2, 2) {
		t.Fatal("length normalization violated")
	}
}

func TestScoreCandidates(t *testing.T) {
	ix := buildTestIndex(t)
	s := NewScorer(ix, DefaultBM25())
	apple, _ := ix.Lookup("apple")
	cherry, _ := ix.Lookup("cherry")
	lists := []*index.PostingList{apple, cherry}

	scored, work := s.ScoreCandidates(lists, []uint32{2, 4})
	if len(scored) != 2 {
		t.Fatalf("scored %d docs", len(scored))
	}
	// Doc 2 has tf(cherry)=3 and is shorter than doc 4: it must outrank.
	if scored[0].DocID != 2 && scored[0].Score <= scored[1].Score {
		t.Fatalf("unexpected ordering: %+v", scored)
	}
	byID := map[uint32]float32{}
	for _, d := range scored {
		byID[d.DocID] = d.Score
	}
	if byID[2] <= byID[4] {
		t.Fatalf("doc 2 (%v) should outscore doc 4 (%v)", byID[2], byID[4])
	}
	if work.ScoredDocs != 4 {
		t.Fatalf("work accounting: %+v", work)
	}
	// Frequency re-fetch is a representation artifact, not billable work
	// (tf travels with the posting entry in the paper's layout, §2.1.3).
	if work.BinaryProbes != 0 {
		t.Fatalf("scoring billed probes: %+v", work)
	}
}

func TestFreqForDocAgainstIndex(t *testing.T) {
	ix := buildTestIndex(t)
	apple, _ := ix.Lookup("apple")
	tf, _, ok := apple.FreqForDoc(0)
	if !ok || tf != 2 {
		t.Fatalf("FreqForDoc(0) = %d,%v want 2,true", tf, ok)
	}
	if _, _, ok := apple.FreqForDoc(3); ok {
		t.Fatal("doc 3 does not contain apple")
	}
	if _, _, ok := apple.FreqForDoc(99); ok {
		t.Fatal("doc 99 does not exist")
	}
}

func genScored(rng *rand.Rand, n int) []kernels.ScoredDoc {
	out := make([]kernels.ScoredDoc, n)
	for i := range out {
		out[i] = kernels.ScoredDoc{DocID: uint32(i), Score: float32(rng.NormFloat64())}
	}
	return out
}

func refTopK(docs []kernels.ScoredDoc, k int) []float32 {
	cp := make([]kernels.ScoredDoc, len(docs))
	copy(cp, docs)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Score > cp[j].Score })
	if k > len(cp) {
		k = len(cp)
	}
	out := make([]float32, k)
	for i := 0; i < k; i++ {
		out[i] = cp[i].Score
	}
	return out
}

func TestTopKCPUMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for _, n := range []int{0, 1, 10, 1000, 50000} {
		for _, k := range []int{1, 10, 100} {
			docs := genScored(rng, n)
			got, work := TopKCPU(docs, k)
			want := refTopK(docs, k)
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: got %d results, want %d", n, k, len(got), len(want))
			}
			for i := range want {
				if got[i].Score != want[i] {
					t.Fatalf("n=%d k=%d: rank %d score %v, want %v", n, k, i, got[i].Score, want[i])
				}
			}
			if n > 0 && work.HeapCandidates != int64(n) {
				t.Fatalf("HeapCandidates = %d, want %d", work.HeapCandidates, n)
			}
		}
	}
}

func TestTopKCPUZeroK(t *testing.T) {
	got, _ := TopKCPU(genScored(rand.New(rand.NewSource(91)), 10), 0)
	if len(got) != 0 {
		t.Fatal("k=0 must return nothing")
	}
}

func TestGPURankersMatchCPU(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	docs := genScored(rng, 5000)
	want := refTopK(docs, 10)

	radix, err := TopKGPURadix(dev.NewStream(), docs, 10)
	if err != nil {
		t.Fatal(err)
	}
	bucket, err := TopKGPUBucket(dev.NewStream(), docs, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if radix[i].Score != want[i] {
			t.Fatalf("radix rank %d: %v want %v", i, radix[i].Score, want[i])
		}
		if bucket[i].Score != want[i] {
			t.Fatalf("bucket rank %d: %v want %v", i, bucket[i].Score, want[i])
		}
	}
}

func TestFigure7ShapeCPUWinsOnSmallResults(t *testing.T) {
	// Figure 7's conclusion: for realistic result-list sizes (queries
	// "rarely result in more than several thousands matches"), the CPU
	// partial sort beats both GPU rankers on simulated time.
	rng := rand.New(rand.NewSource(93))
	cpuModel := hwmodel.DefaultCPU()
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	docs := genScored(rng, 2000)

	_, work := TopKCPU(docs, 10)
	cpuTime := cpuModel.Time(work)

	sRadix := dev.NewStream()
	if _, err := TopKGPURadix(sRadix, docs, 10); err != nil {
		t.Fatal(err)
	}
	sBucket := dev.NewStream()
	if _, err := TopKGPUBucket(sBucket, docs, 10); err != nil {
		t.Fatal(err)
	}
	if cpuTime >= sRadix.Elapsed() || cpuTime >= sBucket.Elapsed() {
		t.Fatalf("CPU %v should beat GPU radix %v and bucket %v at 2K candidates",
			cpuTime, sRadix.Elapsed(), sBucket.Elapsed())
	}
}

func TestScorerHandlesDegenerateStats(t *testing.T) {
	// An index with zero average doc length must not divide by zero.
	ix := &index.Index{NumDocs: 1}
	s := NewScorer(ix, DefaultBM25())
	v := s.ScoreTerm(1, 3, 7)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("degenerate stats produced %v", v)
	}
}

func BenchmarkTopKCPU100K(b *testing.B) {
	rng := rand.New(rand.NewSource(94))
	docs := genScored(rng, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopKCPU(docs, 10)
	}
}

func BenchmarkScoreCandidates(b *testing.B) {
	ix := buildTestIndex(b)
	s := NewScorer(ix, DefaultBM25())
	apple, _ := ix.Lookup("apple")
	lists := []*index.PostingList{apple}
	cands := []uint32{0, 2, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScoreCandidates(lists, cands)
	}
}
