package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentileExact(t *testing.T) {
	r := NewLatencyRecorder(100)
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{80, 80 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
		{1, 1 * time.Millisecond},
	}
	for _, c := range cases {
		if got := r.Percentile(c.p); got != c.want {
			t.Errorf("P%.1f = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileUnsortedInput(t *testing.T) {
	r := NewLatencyRecorder(0)
	for _, v := range []int{50, 10, 90, 30, 70} {
		r.Record(time.Duration(v))
	}
	if got := r.Percentile(100); got != 90 {
		t.Fatalf("max percentile = %v, want 90", got)
	}
	// Recording after a percentile query must re-sort.
	r.Record(time.Duration(95))
	if got := r.Percentile(100); got != 95 {
		t.Fatalf("after new record: %v, want 95", got)
	}
}

func TestPercentileEmpty(t *testing.T) {
	r := NewLatencyRecorder(0)
	if r.Percentile(99) != 0 || r.Mean() != 0 || r.Max() != 0 {
		t.Fatal("empty recorder must return zeros")
	}
}

func TestPercentile999NearMax(t *testing.T) {
	// With 10000 samples, P99.9 is the 9990th value (nearest rank).
	r := NewLatencyRecorder(10000)
	for i := 1; i <= 10000; i++ {
		r.Record(time.Duration(i))
	}
	if got := r.Percentile(99.9); got != time.Duration(9990) {
		t.Fatalf("P99.9 = %v, want 9990", got)
	}
}

func TestPercentileMonotoneQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewLatencyRecorder(len(raw))
		for _, v := range raw {
			r.Record(time.Duration(v))
		}
		prev := time.Duration(-1)
		for _, p := range []float64{10, 50, 80, 90, 95, 99, 99.9, 100} {
			v := r.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndMax(t *testing.T) {
	r := NewLatencyRecorder(0)
	for _, v := range []int{10, 20, 30} {
		r.Record(time.Duration(v))
	}
	if r.Mean() != 20 {
		t.Fatalf("mean = %v", r.Mean())
	}
	if r.Max() != 30 {
		t.Fatalf("max = %v", r.Max())
	}
	if r.Count() != 3 {
		t.Fatalf("count = %d", r.Count())
	}
}

func TestCDF(t *testing.T) {
	values := []int{1, 5, 10, 50, 100, 1000}
	got := CDF(values, []int{0, 1, 10, 100, 10000})
	want := []float64{0, 1.0 / 6, 3.0 / 6, 5.0 / 6, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("CDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	got := CDF(nil, []int{1, 2})
	if got[0] != 0 || got[1] != 0 {
		t.Fatal("empty CDF must be zero")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{2, 2, 3, 3, 3, 4} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Fraction(2) != 2.0/6 || h.Fraction(3) != 3.0/6 || h.Fraction(5) != 0 {
		t.Fatalf("fractions wrong: %v %v %v", h.Fraction(2), h.Fraction(3), h.Fraction(5))
	}
	if h.FractionAtLeast(3) != 4.0/6 {
		t.Fatalf("FractionAtLeast(3) = %v", h.FractionAtLeast(3))
	}
}

func TestRatioGroups(t *testing.T) {
	groups := PaperRatioGroups()
	if len(groups) != 7 {
		t.Fatalf("got %d groups, want 7", len(groups))
	}
	if groups[0].String() != "[1,16)" || groups[6].String() != "[512,1024)" {
		t.Fatalf("group names: %v ... %v", groups[0], groups[6])
	}
	if !groups[3].Contains(127.9) || groups[3].Contains(128) {
		t.Fatal("[64,128) boundary behaviour wrong")
	}
	if !groups[4].Contains(128) {
		t.Fatal("[128,256) must contain 128")
	}
	// Groups must tile [1,1024) without gaps.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		ratio := 1 + rng.Float64()*1022.9
		n := 0
		for _, g := range groups {
			if g.Contains(ratio) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("ratio %v matched %d groups", ratio, n)
		}
	}
}
