// Package stats provides the latency-analysis utilities the evaluation
// needs: exact percentiles over latency samples (the Figure 15 tail-latency
// study), CDFs (Figure 10's list-size distribution), simple histograms
// (Figure 11's term-count distribution), and the ratio-group bucketing of
// Figure 8.
package stats

import (
	"fmt"
	"sort"
	"time"
)

// LatencyRecorder accumulates per-query latencies.
type LatencyRecorder struct {
	samples []time.Duration
	sorted  bool
}

// NewLatencyRecorder returns a recorder with capacity preallocated for n
// samples.
func NewLatencyRecorder(n int) *LatencyRecorder {
	return &LatencyRecorder{samples: make([]time.Duration, 0, n)}
}

// Record adds one sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.samples = append(r.samples, d)
	r.sorted = false
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// sortSamples sorts lazily; percentile queries share the sorted order.
func (r *LatencyRecorder) sortSamples() {
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank definition, which is exact for the tail percentiles the
// paper reports (P80/P90/P95/P99/P99.9 over 10K queries).
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.sortSamples()
	rank := int(p/100*float64(len(r.samples))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(r.samples) {
		rank = len(r.samples) - 1
	}
	return r.samples[rank]
}

// Mean returns the arithmetic mean.
func (r *LatencyRecorder) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range r.samples {
		sum += s
	}
	return sum / time.Duration(len(r.samples))
}

// Max returns the largest sample.
func (r *LatencyRecorder) Max() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.sortSamples()
	return r.samples[len(r.samples)-1]
}

// CDF computes the cumulative fraction of values <= each threshold.
// Thresholds must be ascending. Used for Figure 10's list-size CDF.
func CDF(values []int, thresholds []int) []float64 {
	sorted := make([]int, len(values))
	copy(sorted, values)
	sort.Ints(sorted)
	out := make([]float64, len(thresholds))
	for i, th := range thresholds {
		// Count of values <= th.
		n := sort.SearchInts(sorted, th+1)
		if len(sorted) > 0 {
			out[i] = float64(n) / float64(len(sorted))
		}
	}
	return out
}

// Histogram counts values into labeled integer bins. Used for Figure 11's
// query-term-count distribution.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add counts one observation of bin v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// Fraction returns the fraction of observations in bin v.
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// FractionAtLeast returns the fraction of observations in bins >= v.
func (h *Histogram) FractionAtLeast(v int) float64 {
	if h.total == 0 {
		return 0
	}
	n := 0
	for bin, c := range h.counts {
		if bin >= v {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}

// Total returns the observation count.
func (h *Histogram) Total() int { return h.total }

// RatioGroup is one of Figure 8's list-length-ratio buckets.
type RatioGroup struct {
	Lo, Hi int // ratio in [Lo, Hi)
}

// String renders the paper's "[lo,hi)" notation.
func (g RatioGroup) String() string { return fmt.Sprintf("[%d,%d)", g.Lo, g.Hi) }

// Contains reports whether ratio falls in the group.
func (g RatioGroup) Contains(ratio float64) bool {
	return ratio >= float64(g.Lo) && ratio < float64(g.Hi)
}

// PaperRatioGroups returns the seven groups of §3.2: [1,16), [16,32),
// [32,64), [64,128), [128,256), [256,512), [512,1024).
func PaperRatioGroups() []RatioGroup {
	return []RatioGroup{
		{1, 16}, {16, 32}, {32, 64}, {64, 128}, {128, 256}, {256, 512}, {512, 1024},
	}
}
