package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"griffin/internal/fault"
	"griffin/internal/index"
)

func mkRecords(n int, startGen uint64) []Record {
	recs := make([]Record, n)
	for i := range recs {
		op := OpAdd
		switch i % 3 {
		case 1:
			op = OpUpdate
		case 2:
			op = OpDelete
		}
		var toks []string
		if op != OpDelete {
			toks = []string{"alpha", "beta", string(rune('a' + i%26))}
		}
		recs[i] = Record{Gen: startGen + uint64(i), Op: op, DocID: uint32(i % 7), Tokens: toks}
	}
	return recs
}

func TestFrameRoundTrip(t *testing.T) {
	recs := mkRecords(50, 1)
	recs = append(recs, Record{Gen: 51, Op: OpAdd, DocID: 0, Tokens: nil})                   // empty doc
	recs = append(recs, Record{Gen: 52, Op: OpUpdate, DocID: 1 << 31, Tokens: []string{""}}) // empty token
	var buf []byte
	for _, r := range recs {
		buf = appendFrame(buf, r)
	}
	got, clean := ScanRecords(buf)
	if clean != len(buf) {
		t.Fatalf("clean prefix %d of %d bytes", clean, len(buf))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		want := recs[i]
		if want.Tokens == nil {
			// nil and empty both encode as zero tokens
			want.Tokens = got[i].Tokens
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestScanTruncatesAtCorruption(t *testing.T) {
	recs := mkRecords(10, 1)
	var buf []byte
	var offs []int
	for _, r := range recs {
		offs = append(offs, len(buf))
		buf = appendFrame(buf, r)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
		keep int // records expected to survive
	}{
		{"torn tail", func(b []byte) []byte { return b[:offs[7]+5] }, 7},
		{"bit flip mid-log", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[offs[4]+frameHeaderSize+3] ^= 0x10
			return c
		}, 4},
		{"length prefix corrupted", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[offs[2]] = 0xFF
			c[offs[2]+1] = 0xFF
			c[offs[2]+2] = 0xFF
			c[offs[2]+3] = 0xFF
			return c
		}, 2},
		{"zero length frame", func(b []byte) []byte {
			c := append([]byte(nil), b[:offs[5]]...)
			c = append(c, make([]byte, 8)...)
			return append(c, b[offs[5]:]...)
		}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, clean := ScanRecords(tc.mut(buf))
			if len(got) != tc.keep {
				t.Fatalf("survived %d records, want %d", len(got), tc.keep)
			}
			if clean != offs[tc.keep] && tc.keep < len(offs) {
				t.Fatalf("clean prefix %d, want %d", clean, offs[tc.keep])
			}
			for i := 0; i < tc.keep; i++ {
				if got[i].Gen != recs[i].Gen {
					t.Fatalf("record %d gen %d, want %d", i, got[i].Gen, recs[i].Gen)
				}
			}
		})
	}
}

func smallIndex(t *testing.T, docs map[uint32][]string) *index.Index {
	t.Helper()
	b := index.NewBuilder(index.CodecEF)
	ids := make([]uint32, 0, len(docs))
	for id := range docs {
		ids = append(ids, id)
	}
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for _, id := range ids {
		if err := b.AddDocument(id, docs[id]); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestStoreAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, Options{Shards: 1, SyncEvery: 1, Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Fresh {
		t.Fatalf("fresh dir not reported fresh: %+v", rec)
	}
	recs := mkRecords(25, 1)
	for _, r := range recs {
		if err := s.Append(0, r); err != nil {
			t.Fatal(err)
		}
	}
	s.Crash()

	s2, rec2, err := Open(dir, Options{Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec2.Fresh || rec2.Lineage != rec.Lineage || rec2.Shards != 1 {
		t.Fatalf("recovered %+v, want lineage %016x shards 1", rec2, rec.Lineage)
	}
	if len(rec2.Records) != len(recs) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(recs))
	}
	for i := range recs {
		if rec2.Records[i].Gen != recs[i].Gen || rec2.Records[i].DocID != recs[i].DocID {
			t.Fatalf("record %d: got %+v want %+v", i, rec2.Records[i], recs[i])
		}
	}
}

func TestCrashDropsUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	// SyncEvery 0: nothing durable until an explicit Sync.
	s, _, err := Open(dir, Options{Shards: 1, SyncEvery: 0, Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(20, 1)
	for i, r := range recs {
		if err := s.Append(0, r); err != nil {
			t.Fatal(err)
		}
		if i == 11 {
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Crash()
	_, rec, err := Open(dir, Options{Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 12 {
		t.Fatalf("recovered %d records, want the 12 synced ones", len(rec.Records))
	}
}

func TestInjectedTornWriteWedgesAndTruncates(t *testing.T) {
	in := fault.NewInjector(fault.Plan{Seed: 9, Rules: []fault.Rule{
		{Kind: fault.TornWrite, Rate: 1, After: 13, Until: 14},
	}})
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Shards: 1, SyncEvery: 1, Site: "t", Fault: in})
	if err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(20, 1)
	acked := 0
	var wedgeErr error
	for _, r := range recs {
		if err := s.Append(0, r); err != nil {
			wedgeErr = err
			break
		}
		acked++
	}
	if acked != 13 {
		t.Fatalf("acked %d records, want 13 before the injected torn write", acked)
	}
	if !fault.IsStorageFault(wedgeErr) {
		t.Fatalf("append error %v is not a storage fault", wedgeErr)
	}
	if err := s.Append(0, recs[14]); !fault.IsStorageFault(err) {
		t.Fatalf("wedged log accepted another append (err=%v)", err)
	}
	if s.Wedged() == nil {
		t.Fatalf("store does not report wedged")
	}
	s.Crash()

	_, rec, err := Open(dir, Options{Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != acked {
		t.Fatalf("recovered %d records, want the %d acknowledged", len(rec.Records), acked)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatalf("no torn bytes reported despite injected torn write")
	}
}

func TestInjectedBitFlipTruncatesAtFlippedRecord(t *testing.T) {
	in := fault.NewInjector(fault.Plan{Seed: 4, Rules: []fault.Rule{
		{Kind: fault.BitFlip, Rate: 1, After: 6, Until: 7},
	}})
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Shards: 1, SyncEvery: 1, Site: "t", Fault: in})
	if err != nil {
		t.Fatal(err)
	}
	acked := 0
	for _, r := range mkRecords(12, 1) {
		if err := s.Append(0, r); err != nil {
			break
		}
		acked++
	}
	s.Crash()
	_, rec, err := Open(dir, Options{Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if acked != 6 || len(rec.Records) != 6 {
		t.Fatalf("acked %d recovered %d, want 6/6", acked, len(rec.Records))
	}
}

func TestInjectedShortSyncKeepsPrefix(t *testing.T) {
	in := fault.NewInjector(fault.Plan{Seed: 2, Rules: []fault.Rule{
		{Kind: fault.ShortWrite, Rate: 1, After: 1, Until: 2},
	}})
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Shards: 1, SyncEvery: 5, Site: "t", Fault: in})
	if err != nil {
		t.Fatal(err)
	}
	acked := 0
	for _, r := range mkRecords(20, 1) {
		if err := s.Append(0, r); err != nil {
			break
		}
		acked++
	}
	// First sync (records 1-5) is clean; the second sync fires short, so
	// the 10th append — whose policy sync failed — is not acknowledged.
	if acked != 9 {
		t.Fatalf("acked %d, want 9 (wedge on the second policy sync)", acked)
	}
	s.Crash()
	_, rec, err := Open(dir, Options{Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) < 5 || len(rec.Records) >= 10 {
		t.Fatalf("recovered %d records, want the 5 from the clean sync plus a short prefix of the second batch", len(rec.Records))
	}
	// Prefix rule: whatever survived must be gens 1..k.
	for i, r := range rec.Records {
		if r.Gen != uint64(i+1) {
			t.Fatalf("recovered gen %d at position %d: not a prefix", r.Gen, i)
		}
	}
}

func TestCheckpointAndSuffixReplay(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Shards: 1, SyncEvery: 1, Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(30, 1)
	for i, r := range recs {
		if err := s.Append(0, r); err != nil {
			t.Fatal(err)
		}
		if i == 19 {
			ix := smallIndex(t, map[uint32][]string{1: {"x", "y"}, 2: {"y", "z"}})
			if err := s.Checkpoint(ix, 20); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Crash()
	_, rec, err := Open(dir, Options{Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint == nil || rec.Watermark != 20 {
		t.Fatalf("no checkpoint recovered (watermark %d)", rec.Watermark)
	}
	if len(rec.Records) != 10 || rec.Records[0].Gen != 21 {
		t.Fatalf("replay suffix wrong: %d records starting at gen %d", len(rec.Records), rec.Records[0].Gen)
	}
	if got := rec.Checkpoint.DocLen(1); got != 2 {
		t.Fatalf("checkpoint index doc 1 length %d, want 2", got)
	}
}

func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Shards: 1, SyncEvery: 1, Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(30, 1)
	ix := smallIndex(t, map[uint32][]string{1: {"x"}})
	for i, r := range recs {
		if err := s.Append(0, r); err != nil {
			t.Fatal(err)
		}
		if i == 9 {
			if err := s.Checkpoint(ix, 10); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Second checkpoint at gen 20, silently corrupted by the ckpt site.
	in := fault.NewInjector(fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Kind: fault.BitFlip, Rate: 1},
	}})
	s.mu.Lock()
	s.opts.Fault = in
	s.mu.Unlock()
	if err := s.Checkpoint(ix, 20); err != nil {
		t.Fatal(err) // silent corruption: the writer sees success
	}
	s.Crash()

	_, rec, err := Open(dir, Options{Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SkippedCheckpoints != 1 {
		t.Fatalf("skipped %d checkpoints, want 1", rec.SkippedCheckpoints)
	}
	if rec.Watermark != 10 {
		t.Fatalf("fell back to watermark %d, want 10", rec.Watermark)
	}
	if len(rec.Records) != 20 || rec.Records[0].Gen != 11 {
		t.Fatalf("replay suffix wrong after fallback: %d records from gen %d",
			len(rec.Records), rec.Records[0].Gen)
	}
}

func TestLineageMismatchRefusesToServe(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Shards: 1, SyncEvery: 1, Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range mkRecords(5, 1) {
		if err := s.Append(0, r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Transplant a checkpoint from a different lineage (a different
	// store's history) into the directory.
	other := t.TempDir()
	s2, _, err := Open(other, Options{Shards: 1, SyncEvery: 1, Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	ix := smallIndex(t, map[uint32][]string{9: {"q"}})
	if err := s2.Checkpoint(ix, 3); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	src, err := os.ReadFile(filepath.Join(other, "ckpt-0000000000000003.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ckpt-0000000000000003.ckpt"), src, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(dir, Options{Site: "t"})
	if err == nil || !IsLineageMismatch(err) {
		t.Fatalf("mixed-lineage directory opened without refusing: err=%v", err)
	}
}

func TestGapInStitchedStreamDropsSuffix(t *testing.T) {
	// Two shard logs with independent sync points: shard 0 loses its
	// unsynced tail, shard 1 keeps later gens. Recovery must stop at the
	// hole, not replay across it.
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Shards: 2, SyncEvery: 0, Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	// gens 1,2 -> shard 0, synced; gens 3,4 -> shard 0, unsynced (lost);
	// gens 5,6 -> shard 1, synced.
	for _, r := range mkRecords(2, 1) {
		if err := s.Append(0, r); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	l0 := s.logs[0]
	s.mu.Unlock()
	if err := l0.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, r := range mkRecords(2, 3) {
		if err := s.Append(0, r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range mkRecords(2, 5) {
		if err := s.Append(1, r); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	l1 := s.logs[1]
	s.mu.Unlock()
	if err := l1.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Crash()

	_, rec, err := Open(dir, Options{Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 2 || rec.Records[1].Gen != 2 {
		t.Fatalf("replayed %d records, want exactly gens 1-2 before the hole", len(rec.Records))
	}
	if rec.DroppedRecords != 2 {
		t.Fatalf("dropped %d records past the gap, want 2 (gens 5,6)", rec.DroppedRecords)
	}
}

func TestReshardGrowsManifestAndRoutes(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Shards: 1, SyncEvery: 1, Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range mkRecords(4, 1) {
		if err := s.Append(0, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Reshard(3); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(2, Record{Gen: 5, Op: OpAdd, DocID: 9, Tokens: []string{"k"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Reshard(1); err == nil {
		t.Fatalf("shrinking reshard accepted; would orphan logs")
	}
	s.Crash()
	s2, rec, err := Open(dir, Options{Shards: 1, Site: "t"}) // opts.Shards ignored
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.Shards != 3 {
		t.Fatalf("manifest shards %d, want 3", rec.Shards)
	}
	if len(rec.Records) != 5 || rec.Records[4].Gen != 5 {
		t.Fatalf("recovered %d records across resharded logs, want 5", len(rec.Records))
	}
}

func TestCheckpointPruneKeepsTwo(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Shards: 1, SyncEvery: 1, Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ix := smallIndex(t, map[uint32][]string{1: {"x"}})
	for wm := uint64(10); wm <= 50; wm += 10 {
		if err := s.Checkpoint(ix, wm); err != nil {
			t.Fatal(err)
		}
	}
	names, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if len(names) != 2 {
		t.Fatalf("%d checkpoints on disk after prune, want 2: %v", len(names), names)
	}
	want := []string{
		filepath.Join(dir, "ckpt-0000000000000028.ckpt"), // 40
		filepath.Join(dir, "ckpt-0000000000000032.ckpt"), // 50
	}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("kept %v, want the newest two %v", names, want)
	}
}

func TestStatsCounters(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Shards: 1, SyncEvery: 1, Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, r := range mkRecords(8, 1) {
		if err := s.Append(0, r); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Appends != 8 || st.Syncs != 8 || st.AppendedBytes == 0 || st.Wedged {
		t.Fatalf("stats %+v, want 8 appends / 8 syncs, bytes > 0, not wedged", st)
	}
}

func TestManifestRoundTripBytes(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Shards: 2, SyncEvery: 1, Site: "t"})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 24 || !bytes.Equal(data[0:4], manifestMagic[:]) {
		t.Fatalf("manifest is %d bytes with magic %q", len(data), data[:4])
	}
	// A flipped byte must be detected, not silently accepted.
	data[10] ^= 0x01
	bad := filepath.Join(dir, "MANIFEST")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{Site: "t"}); err == nil {
		t.Fatalf("corrupt manifest accepted")
	}
}
