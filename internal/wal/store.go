package wal

import (
	"bytes"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"griffin/internal/fault"
	"griffin/internal/index"
)

// ErrLineageMismatch means a log or checkpoint carries a different
// lineage stamp than the manifest: the directory mixes files from two
// engine histories (a restored checkpoint from another machine, a
// half-copied directory). Serving from it could return results for a
// corpus that never existed, so recovery refuses outright.
var ErrLineageMismatch = errors.New("wal: lineage mismatch")

// IsLineageMismatch reports whether err is (or wraps) a lineage
// mismatch — the refuse-to-serve condition.
func IsLineageMismatch(err error) bool { return errors.Is(err, ErrLineageMismatch) }

// errClosed marks a log whose file has been closed (clean Close or
// Crash); it is not surfaced as a wedge.
var errClosed = errors.New("wal: log closed")

// Options configures a Store.
type Options struct {
	// Shards is the shard-log count for a freshly created store. On an
	// existing store the manifest wins and this value is ignored.
	Shards int
	// SyncEvery syncs each log after this many appends; 1 (the durable
	// default) syncs every append, 0 syncs only at checkpoints, explicit
	// Sync calls, and Close.
	SyncEvery int
	// Site is the fault-site base: shard i's log draws faults at
	// "<shardSite>.wal.append" / "<shardSite>.wal.sync" and checkpoint
	// writes at "<Site>.ckpt", where shardSite is Site for single-shard
	// stores and "<Site>.s<i>" otherwise (overridable via ShardSite).
	Site string
	// ShardSite, when non-nil, names shard i's fault-site base.
	ShardSite func(i int) string
	// Fault injects storage faults; nil injects nothing.
	Fault *fault.Injector
}

func (o Options) shardSite(i, shards int) string {
	if o.ShardSite != nil {
		return o.ShardSite(i)
	}
	if shards <= 1 {
		return o.Site
	}
	return fmt.Sprintf("%s.s%d", o.Site, i)
}

// Recovered summarizes what Open reconstructed from an existing
// directory.
type Recovered struct {
	// Fresh is true when the directory had no manifest: a new lineage
	// was created and there is nothing to replay.
	Fresh bool
	// Lineage is the store's history stamp.
	Lineage uint64
	// Shards is the manifest's shard-log count.
	Shards int
	// Checkpoint is the newest valid checkpoint's index, nil when no
	// usable checkpoint exists (recovery then replays the full log over
	// the caller's seed segment).
	Checkpoint *index.Index
	// Watermark is the generation the checkpoint covers (0 without one).
	Watermark uint64
	// Records is the replay suffix: every durable record with gen >
	// Watermark, gen-ascending and contiguous from Watermark+1.
	Records []Record
	// TruncatedBytes counts torn/corrupt tail bytes discarded across
	// the shard logs.
	TruncatedBytes int64
	// DroppedRecords counts intact records discarded because an earlier
	// generation was lost (a gap in the stitched sequence): replaying
	// past a hole would apply mutations against a state they were never
	// validated on.
	DroppedRecords int
	// SkippedCheckpoints counts checkpoint files that failed their
	// header or checksum validation and were passed over.
	SkippedCheckpoints int
}

// Stats is the store's telemetry, shaped for /statz.
type Stats struct {
	Appends            int64  `json:"appends"`
	AppendedBytes      int64  `json:"appended_bytes"`
	Syncs              int64  `json:"syncs"`
	Failures           int64  `json:"failures,omitempty"`
	Wedged             bool   `json:"wedged,omitempty"`
	Checkpoints        int64  `json:"checkpoints"`
	CheckpointGen      uint64 `json:"checkpoint_gen"`
	RecoveredRecords   int64  `json:"recovered_records"`
	TruncatedBytes     int64  `json:"recovered_truncated_bytes,omitempty"`
	DroppedRecords     int64  `json:"recovered_dropped_records,omitempty"`
	SkippedCheckpoints int64  `json:"recovered_skipped_checkpoints,omitempty"`
}

// Store is a WAL directory: a lineage-stamped manifest, one append log
// per shard, and a set of checkpoint files. Appends are routed by shard;
// checkpoints snapshot a caller-built index at a generation watermark.
type Store struct {
	dir     string
	opts    Options
	lineage uint64

	mu            sync.Mutex
	logs          []*Log
	checkpoints   int64
	checkpointGen uint64
	recovered     Recovered
	closed        bool
}

const (
	manifestName    = "MANIFEST"
	manifestVersion = 1
	ckptVersion     = 1
)

var (
	manifestMagic = [4]byte{'G', 'W', 'M', 'F'}
	ckptMagic     = [4]byte{'G', 'W', 'C', 'P'}
)

// Open opens (or creates) the WAL directory and runs recovery. A
// directory without a manifest is initialized fresh with opts.Shards
// logs and a new lineage; otherwise the manifest's shard count and
// lineage govern, every shard log is scanned and truncated to its
// intact prefix, the newest valid checkpoint is loaded, and the
// stitched replay suffix is returned.
func Open(dir string, opts Options) (*Store, *Recovered, error) {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	s := &Store{dir: dir, opts: opts}
	mf, err := readManifest(filepath.Join(dir, manifestName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		rec, err := s.create()
		if err != nil {
			return nil, nil, err
		}
		return s, rec, nil
	case err != nil:
		return nil, nil, err
	}
	rec, err := s.recover(mf)
	if err != nil {
		s.closeLogs()
		return nil, nil, err
	}
	return s, rec, nil
}

// create initializes a fresh store: new lineage, empty shard logs, and
// a manifest committed last so a crash mid-create leaves a directory
// Open will simply re-create.
func (s *Store) create() (*Recovered, error) {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return nil, err
	}
	s.lineage = binary.LittleEndian.Uint64(b[:]) | 1 // never zero
	for i := 0; i < s.opts.Shards; i++ {
		l, err := createLog(s.logPath(i), s.lineage, i,
			s.opts.shardSite(i, s.opts.Shards), s.opts.Fault, s.opts.SyncEvery)
		if err != nil {
			s.closeLogs()
			return nil, err
		}
		s.logs = append(s.logs, l)
	}
	if err := s.writeManifest(s.opts.Shards); err != nil {
		s.closeLogs()
		return nil, err
	}
	rec := Recovered{Fresh: true, Lineage: s.lineage, Shards: s.opts.Shards}
	s.recovered = rec
	return &rec, nil
}

type manifest struct {
	lineage uint64
	shards  int
}

func (s *Store) logPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%d.log", i))
}

func (s *Store) ckptPath(watermark uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("ckpt-%016x.ckpt", watermark))
}

// writeManifest commits the manifest atomically: tmp file, fsync,
// rename, directory fsync. Layout: magic | u32 version | u64 lineage |
// u32 shards | u32 crc over the preceding fields.
func (s *Store) writeManifest(shards int) error {
	buf := make([]byte, 0, 24)
	buf = append(buf, manifestMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, manifestVersion)
	buf = binary.LittleEndian.AppendUint64(buf, s.lineage)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(shards))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	path := filepath.Join(s.dir, manifestName)
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(s.dir)
}

func readManifest(path string) (manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return manifest{}, err
	}
	if len(data) != 24 || [4]byte(data[0:4]) != manifestMagic ||
		binary.LittleEndian.Uint32(data[4:8]) != manifestVersion ||
		crc32.Checksum(data[:20], castagnoli) != binary.LittleEndian.Uint32(data[20:24]) {
		return manifest{}, fmt.Errorf("wal: %s: corrupt manifest", path)
	}
	m := manifest{
		lineage: binary.LittleEndian.Uint64(data[8:16]),
		shards:  int(binary.LittleEndian.Uint32(data[16:20])),
	}
	if m.shards <= 0 {
		return manifest{}, fmt.Errorf("wal: %s: corrupt manifest (shards=%d)", path, m.shards)
	}
	return m, nil
}

// recover rebuilds state from an existing directory: scan + truncate
// every shard log, load the newest valid checkpoint, stitch the shard
// record streams into one gen-ordered history, and keep only the
// contiguous suffix past the checkpoint watermark.
func (s *Store) recover(mf manifest) (*Recovered, error) {
	s.lineage = mf.lineage
	rec := Recovered{Lineage: mf.lineage, Shards: mf.shards}
	var all []Record
	for i := 0; i < mf.shards; i++ {
		l, recs, truncated, err := openLog(s.logPath(i), mf.lineage,
			s.opts.shardSite(i, mf.shards), s.opts.Fault, s.opts.SyncEvery)
		if err != nil {
			return nil, err
		}
		s.logs = append(s.logs, l)
		all = append(all, recs...)
		rec.TruncatedBytes += truncated
	}
	ix, wm, skipped, err := s.loadCheckpoint()
	if err != nil {
		return nil, err
	}
	rec.Checkpoint, rec.Watermark, rec.SkippedCheckpoints = ix, wm, skipped

	sort.Slice(all, func(i, j int) bool { return all[i].Gen < all[j].Gen })
	next := wm + 1
	for _, r := range all {
		if r.Gen < next {
			continue // covered by the checkpoint
		}
		if r.Gen > next {
			// A generation is missing (a shard's unsynced tail died in the
			// crash). Everything after the hole was validated against state
			// that includes the lost records, so replay stops here.
			rec.DroppedRecords++
			continue
		}
		rec.Records = append(rec.Records, r)
		next++
	}
	s.checkpointGen = wm
	s.recovered = rec
	return &rec, nil
}

// loadCheckpoint returns the newest checkpoint that passes validation,
// skipping corrupt ones. A checkpoint with the wrong lineage is not
// skippable damage — it is evidence the directory mixes histories — so
// it refuses recovery entirely.
func (s *Store) loadCheckpoint() (*index.Index, uint64, int, error) {
	names, err := filepath.Glob(filepath.Join(s.dir, "ckpt-*.ckpt"))
	if err != nil {
		return nil, 0, 0, err
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names))) // hex watermark: newest first
	skipped := 0
	for _, name := range names {
		ix, wm, err := readCheckpoint(name, s.lineage)
		if errors.Is(err, ErrLineageMismatch) {
			return nil, 0, 0, err
		}
		if err != nil {
			skipped++
			continue
		}
		return ix, wm, skipped, nil
	}
	return nil, 0, skipped, nil
}

// SetFault arms (nil disarms) the storage fault injector at runtime, so
// chaos tooling can scope a fault schedule to one operation window —
// e.g. corrupt only a specific checkpoint — instead of the store's
// whole lifetime.
func (s *Store) SetFault(in *fault.Injector) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.opts.Fault = in
	for _, l := range s.logs {
		l.setFault(in)
	}
	s.mu.Unlock()
}

// Checkpoint atomically persists ix as the state through generation
// watermark. A fired ckpt-site fault corrupts the payload on the way
// down silently — the writer believes it succeeded, and only recovery's
// validation catches it (and falls back to an older checkpoint or a
// full replay). Older checkpoints beyond the newest two are pruned.
func (s *Store) Checkpoint(ix *index.Index, watermark uint64) error {
	if s == nil {
		return nil
	}
	var payload bytes.Buffer
	if _, err := ix.WriteTo(&payload); err != nil {
		return err
	}
	body := payload.Bytes()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	if sf := s.opts.Fault.StorageOp(s.opts.Site+".ckpt", 0, fault.TornWrite, fault.BitFlip); sf != nil {
		body = corruptFrame(body, sf)
	}
	buf := make([]byte, 0, 32+len(body))
	buf = append(buf, ckptMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, ckptVersion)
	buf = binary.LittleEndian.AppendUint64(buf, s.lineage)
	buf = binary.LittleEndian.AppendUint64(buf, watermark)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload.Bytes())))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload.Bytes(), castagnoli))
	buf = append(buf, body...)
	path := s.ckptPath(watermark)
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.checkpoints++
	s.checkpointGen = watermark
	s.pruneLocked(watermark)
	return nil
}

// pruneLocked deletes checkpoints older than the newest two. Two are
// kept — not one — so a corrupt newest checkpoint still has a valid
// fallback.
func (s *Store) pruneLocked(newest uint64) {
	names, err := filepath.Glob(filepath.Join(s.dir, "ckpt-*.ckpt"))
	if err != nil {
		return
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for i, name := range names {
		if i >= 2 {
			os.Remove(name)
		}
	}
}

// readCheckpoint validates and loads one checkpoint file.
func readCheckpoint(path string, lineage uint64) (*index.Index, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < 32 || [4]byte(data[0:4]) != ckptMagic ||
		binary.LittleEndian.Uint32(data[4:8]) != ckptVersion {
		return nil, 0, fmt.Errorf("wal: %s: bad checkpoint header", path)
	}
	if got := binary.LittleEndian.Uint64(data[8:16]); got != lineage {
		return nil, 0, fmt.Errorf("%w: checkpoint %s has lineage %016x, manifest %016x",
			ErrLineageMismatch, path, got, lineage)
	}
	wm := binary.LittleEndian.Uint64(data[16:24])
	n := binary.LittleEndian.Uint64(data[24:32])
	if uint64(len(data)-36) != n {
		return nil, 0, fmt.Errorf("wal: %s: checkpoint payload truncated", path)
	}
	payload := data[36:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[32:36]) {
		return nil, 0, fmt.Errorf("wal: %s: checkpoint checksum mismatch", path)
	}
	ix, err := index.ReadIndex(bytes.NewReader(payload))
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %s: %v", path, err)
	}
	return ix, wm, nil
}

// Append routes r to shard's log. An error means the record is NOT
// durable and the mutation must not be acknowledged.
func (s *Store) Append(shard int, r Record) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errClosed
	}
	l := s.logs[shard]
	s.mu.Unlock()
	return l.Append(r)
}

// Sync flushes every shard log; the first error wins but all logs are
// attempted.
func (s *Store) Sync() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	logs := append([]*Log(nil), s.logs...)
	s.mu.Unlock()
	var first error
	for _, l := range logs {
		if err := l.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Reshard grows the store to n shard logs and commits the new count to
// the manifest. The manifest commit happens before the caller swaps its
// routing topology, so a crash between the two recovers with every
// already-written record still reachable. Shrinking is refused: records
// in orphaned logs would silently fall out of recovery.
func (s *Store) Reshard(n int) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	if n < len(s.logs) {
		return fmt.Errorf("wal: reshard %d -> %d would orphan shard logs", len(s.logs), n)
	}
	if n == len(s.logs) {
		return nil
	}
	for i := len(s.logs); i < n; i++ {
		l, err := createLog(s.logPath(i), s.lineage, i,
			s.opts.shardSite(i, n), s.opts.Fault, s.opts.SyncEvery)
		if err != nil {
			return err
		}
		s.logs = append(s.logs, l)
	}
	return s.writeManifest(n)
}

// Crash simulates kill -9 across the store: every log's unsynced tail
// vanishes and all files close. Reopen the directory to recover.
func (s *Store) Crash() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range s.logs {
		l.Crash()
	}
	s.closed = true
}

// Close syncs and closes every log.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	logs := s.logs
	s.mu.Unlock()
	var first error
	for _, l := range logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (s *Store) closeLogs() {
	for _, l := range s.logs {
		l.Close()
	}
}

// Lineage returns the store's history stamp.
func (s *Store) Lineage() uint64 {
	if s == nil {
		return 0
	}
	return s.lineage
}

// Wedged returns the first wedging error across the shard logs, or nil.
func (s *Store) Wedged() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	logs := append([]*Log(nil), s.logs...)
	s.mu.Unlock()
	for _, l := range logs {
		if err := l.Wedged(); err != nil {
			return err
		}
	}
	return nil
}

// Stats aggregates the store's telemetry.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Checkpoints:        s.checkpoints,
		CheckpointGen:      s.checkpointGen,
		RecoveredRecords:   int64(len(s.recovered.Records)),
		TruncatedBytes:     s.recovered.TruncatedBytes,
		DroppedRecords:     int64(s.recovered.DroppedRecords),
		SkippedCheckpoints: int64(s.recovered.SkippedCheckpoints),
	}
	for _, l := range s.logs {
		l.mu.Lock()
		st.Appends += l.appends
		st.AppendedBytes += l.bytes
		st.Syncs += l.syncs
		st.Failures += l.fails
		if l.wedged != nil && l.wedged != errClosed {
			st.Wedged = true
		}
		l.mu.Unlock()
	}
	return st
}

// writeFileSync writes data and fsyncs before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename is durable; best-effort on
// platforms where directory fsync is unsupported.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return nil // tolerate filesystems that reject directory fsync
	}
	return nil
}
