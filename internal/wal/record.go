// Package wal is the durability layer under the live-mutation engine: a
// length-prefixed, CRC32C-checksummed, generation-stamped write-ahead
// log plus periodic full-segment checkpoints. Every acknowledged
// Add/Update/Delete is framed and appended before the caller sees
// success; recovery loads the newest valid checkpoint and replays only
// the WAL suffix past its watermark, truncating at the first torn or
// corrupt record rather than guessing.
//
// The failure model is deliberately narrow and fully enumerated — torn
// tail records, short synced prefixes, and single-bit flips, injected
// deterministically through internal/fault — and recovery tolerates
// exactly that set: a corrupt record ends the replayable log, a corrupt
// checkpoint falls back to an older one (or a full replay), and a
// lineage mismatch between the manifest and a log or checkpoint refuses
// to serve instead of serving wrong results.
package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Op enumerates the mutation classes a WAL record can carry. Values
// start at 1 so an all-zeroes frame cannot decode as a valid record.
type Op uint8

const (
	// OpAdd inserts a document that did not exist.
	OpAdd Op = 1 + iota
	// OpUpdate replaces an existing document's content.
	OpUpdate
	// OpDelete tombstones a document.
	OpDelete
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return "op(?)"
	}
}

// Record is one acknowledged mutation. Gen is the engine's global
// mutation generation — records are appended in gen order, and the gen
// sequence is what recovery uses to stitch per-shard logs back into one
// totally ordered history.
type Record struct {
	Gen    uint64
	Op     Op
	DocID  uint32
	Tokens []string
}

// Frame layout: u32 payload length | u32 CRC32C(payload) | payload.
// Payload: u64 gen | u8 op | u32 docID | uvarint ntokens |
// ntokens × (uvarint len | bytes).
const (
	frameHeaderSize = 8
	// maxPayload bounds a frame's claimed length so a corrupt length
	// prefix cannot drive a multi-gigabyte allocation during recovery.
	maxPayload = 1 << 26
)

// castagnoli is the CRC32C polynomial table — the same checksum disk
// and filesystem formats use, chosen over IEEE for its burst-error
// detection on exactly this kind of framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// errShort marks a frame cut off by the end of the buffer: the torn
	// tail a crash mid-append leaves behind. Recovery truncates here.
	errShort = errors.New("wal: short frame")
	// errCorrupt marks a frame whose length, checksum, or payload
	// structure is invalid: bytes reached the disk wrong. Recovery also
	// truncates here — nothing after a corrupt record is trustworthy.
	errCorrupt = errors.New("wal: corrupt frame")
)

// appendFrame encodes r as one frame onto buf.
func appendFrame(buf []byte, r Record) []byte {
	payloadAt := len(buf) + frameHeaderSize
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = binary.LittleEndian.AppendUint64(buf, r.Gen)
	buf = append(buf, byte(r.Op))
	buf = binary.LittleEndian.AppendUint32(buf, r.DocID)
	buf = binary.AppendUvarint(buf, uint64(len(r.Tokens)))
	for _, tok := range r.Tokens {
		buf = binary.AppendUvarint(buf, uint64(len(tok)))
		buf = append(buf, tok...)
	}
	payload := buf[payloadAt:]
	binary.LittleEndian.PutUint32(buf[payloadAt-8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[payloadAt-4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// decodeFrame decodes the frame at the start of b, returning the record
// and the number of bytes consumed. errShort means b ends mid-frame;
// errCorrupt means the frame is structurally invalid or fails its
// checksum. A record is returned only when its checksum verified.
func decodeFrame(b []byte) (Record, int, error) {
	if len(b) < frameHeaderSize {
		return Record{}, 0, errShort
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n == 0 || n > maxPayload {
		return Record{}, 0, errCorrupt
	}
	if uint64(len(b)) < frameHeaderSize+uint64(n) {
		return Record{}, 0, errShort
	}
	payload := b[frameHeaderSize : frameHeaderSize+n]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:8]) {
		return Record{}, 0, errCorrupt
	}
	r, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, errCorrupt
	}
	return r, frameHeaderSize + int(n), nil
}

// decodePayload parses a checksum-verified payload. Every bound is
// checked against the remaining bytes so no claimed count or length can
// over-read or over-allocate, even when a bit flip survives the CRC
// (fuzzing explores exactly that corner).
func decodePayload(p []byte) (Record, error) {
	if len(p) < 13 {
		return Record{}, errCorrupt
	}
	var r Record
	r.Gen = binary.LittleEndian.Uint64(p[0:8])
	r.Op = Op(p[8])
	if r.Op < OpAdd || r.Op > OpDelete {
		return Record{}, errCorrupt
	}
	r.DocID = binary.LittleEndian.Uint32(p[9:13])
	p = p[13:]
	ntok, sz := binary.Uvarint(p)
	if sz <= 0 || ntok > uint64(len(p)) {
		return Record{}, errCorrupt
	}
	p = p[sz:]
	if ntok > 0 {
		r.Tokens = make([]string, 0, ntok)
	}
	for i := uint64(0); i < ntok; i++ {
		l, sz := binary.Uvarint(p)
		if sz <= 0 || l > uint64(len(p)-sz) {
			return Record{}, errCorrupt
		}
		r.Tokens = append(r.Tokens, string(p[sz:sz+int(l)]))
		p = p[sz+int(l):]
	}
	if len(p) != 0 {
		return Record{}, errCorrupt
	}
	return r, nil
}

// ScanRecords decodes the valid record prefix of b, returning the
// records and the clean byte length. Scanning stops at the first short
// or corrupt frame — the documented recovery rule: truncate at the
// first record that cannot be proven intact.
func ScanRecords(b []byte) ([]Record, int) {
	var recs []Record
	off := 0
	for off < len(b) {
		r, n, err := decodeFrame(b[off:])
		if err != nil {
			break
		}
		recs = append(recs, r)
		off += n
	}
	return recs, off
}
