package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes to the WAL record scanner. The
// contract under fuzzing: never panic, never over-read, and never
// return a record that fails its checksum — which the harness verifies
// by re-encoding every returned record and checking the frame decodes
// back to the same record (the encoder computes the checksum fresh, so
// a corrupt-but-returned record would round-trip differently or not at
// all). Run with: go test -fuzz=FuzzWALDecode ./internal/wal/
func FuzzWALDecode(f *testing.F) {
	var valid []byte
	for _, r := range mkRecords(5, 1) {
		valid = append(valid, appendFrame(nil, r)...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[17] ^= 0x20
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, b []byte) {
		recs, clean := ScanRecords(b)
		if clean < 0 || clean > len(b) {
			t.Fatalf("clean prefix %d out of range [0,%d]", clean, len(b))
		}
		// The clean prefix must itself rescan to the same records — the
		// idempotence recovery relies on when it truncates and reopens.
		again, cleanAgain := ScanRecords(b[:clean])
		if cleanAgain != clean || len(again) != len(recs) {
			t.Fatalf("rescan of clean prefix diverged: %d/%d records, %d/%d bytes",
				len(again), len(recs), cleanAgain, clean)
		}
		for i, r := range recs {
			frame := appendFrame(nil, r)
			r2, n, err := decodeFrame(frame)
			if err != nil || n != len(frame) {
				t.Fatalf("record %d failed re-encode round trip: %v", i, err)
			}
			if r2.Gen != r.Gen || r2.Op != r.Op || r2.DocID != r.DocID || len(r2.Tokens) != len(r.Tokens) {
				t.Fatalf("record %d changed across round trip: %+v vs %+v", i, r, r2)
			}
			for j := range r.Tokens {
				if r.Tokens[j] != r2.Tokens[j] {
					t.Fatalf("record %d token %d changed across round trip", i, j)
				}
			}
		}
	})
}
