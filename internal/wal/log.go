package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"griffin/internal/fault"
)

// Log file header: magic | u32 version | u64 lineage | u32 shard.
var logMagic = [4]byte{'G', 'W', 'L', 'G'}

const (
	logVersion    = 1
	logHeaderSize = 20
)

// Log is one shard's append-only record log. Appends go to the OS file
// immediately but count as durable only once synced: Crash() — the
// simulated kill -9 — truncates the file back to the synced length, so
// the gap between acknowledged and durable is exactly the sync policy,
// deterministically.
//
// A fired storage fault wedges the log: the corrupt bytes are already
// on the durable surface, and appending acknowledged records after a
// record recovery will truncate at would silently lose them. Every
// subsequent append or sync returns the wedging fault.
type Log struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	site      string // fault site base, e.g. "ingest" or "ingest.s0"
	in        *fault.Injector
	syncEvery int   // appends per automatic sync; 0 = explicit syncs only
	fileLen   int64 // bytes written, including any injected torn fragment
	syncedLen int64 // bytes that survive Crash
	pending   int   // appends since the last sync
	wedged    error
	buf       []byte // frame scratch, reused across appends

	appends int64
	syncs   int64
	bytes   int64
	fails   int64
}

// createLog creates a fresh shard log with a synced header.
func createLog(path string, lineage uint64, shard int, site string, in *fault.Injector, syncEvery int) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 0, logHeaderSize)
	hdr = append(hdr, logMagic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, logVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, lineage)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(shard))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{
		f: f, path: path, site: site, in: in, syncEvery: syncEvery,
		fileLen: logHeaderSize, syncedLen: logHeaderSize,
	}, nil
}

// setFault swaps the log's injector — Store.SetFault arms or disarms
// storage faults at runtime to scope a schedule to one operation window.
func (l *Log) setFault(in *fault.Injector) {
	l.mu.Lock()
	l.in = in
	l.mu.Unlock()
}

// openLog opens an existing shard log, scans its record body, truncates
// the file back to the last intact record (so post-recovery appends
// land after valid data, never after garbage), and returns the decoded
// records plus the number of torn/corrupt tail bytes discarded.
func openLog(path string, lineage uint64, site string, in *fault.Injector, syncEvery int) (*Log, []Record, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	data, err := readAll(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	if len(data) < logHeaderSize ||
		[4]byte(data[0:4]) != logMagic ||
		binary.LittleEndian.Uint32(data[4:8]) != logVersion {
		f.Close()
		return nil, nil, 0, fmt.Errorf("wal: %s: bad log header", path)
	}
	if got := binary.LittleEndian.Uint64(data[8:16]); got != lineage {
		f.Close()
		return nil, nil, 0, fmt.Errorf("%w: log %s has lineage %016x, manifest %016x",
			ErrLineageMismatch, path, got, lineage)
	}
	recs, clean := ScanRecords(data[logHeaderSize:])
	truncated := int64(len(data) - logHeaderSize - clean)
	end := int64(logHeaderSize + clean)
	if truncated > 0 {
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
	}
	if _, err := f.Seek(end, 0); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	l := &Log{
		f: f, path: path, site: site, in: in, syncEvery: syncEvery,
		fileLen: end, syncedLen: end,
	}
	return l, recs, truncated, nil
}

func readAll(f *os.File) ([]byte, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data := make([]byte, st.Size())
	if _, err := f.ReadAt(data, 0); err != nil && st.Size() > 0 {
		return nil, err
	}
	return data, nil
}

// Append frames r and writes it. The record is durable once the write
// has been covered by a sync (per the syncEvery policy or an explicit
// Sync). A fired append-site fault writes the deterministically
// corrupted frame — torn prefix or flipped bit — syncs it (the model:
// those bytes reached the platter wrong), wedges the log, and returns
// the fault; the caller must not acknowledge the mutation.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wedged != nil {
		return l.wedged
	}
	l.buf = appendFrame(l.buf[:0], r)
	frame := l.buf
	if sf := l.in.StorageOp(l.site+".wal.append", 0, fault.TornWrite, fault.BitFlip); sf != nil {
		l.fails++
		corrupted := corruptFrame(frame, sf)
		if _, err := l.f.Write(corrupted); err == nil {
			l.f.Sync()
			l.fileLen += int64(len(corrupted))
			l.syncedLen = l.fileLen
		}
		l.wedged = fmt.Errorf("wal: append %s gen %d: %w", l.path, r.Gen, sf)
		return l.wedged
	}
	if _, err := l.f.Write(frame); err != nil {
		l.fails++
		l.wedged = fmt.Errorf("wal: append %s gen %d: %w", l.path, r.Gen, err)
		return l.wedged
	}
	l.fileLen += int64(len(frame))
	l.appends++
	l.bytes += int64(len(frame))
	l.pending++
	if l.syncEvery > 0 && l.pending >= l.syncEvery {
		return l.syncLocked()
	}
	return nil
}

// corruptFrame applies sf's deterministic corruption to a copy of frame:
// a torn or short write keeps a strict prefix, a bit flip inverts one
// bit chosen by the fault's hashed fraction.
func corruptFrame(frame []byte, sf *fault.StorageFault) []byte {
	out := append([]byte(nil), frame...)
	switch sf.Kind {
	case fault.BitFlip:
		bit := int(sf.Frac * float64(len(out)*8))
		if bit >= len(out)*8 {
			bit = len(out)*8 - 1
		}
		out[bit/8] ^= 1 << (bit % 8)
	default: // TornWrite, ShortWrite: a strict prefix reaches disk
		n := int(sf.Frac * float64(len(out)))
		if n >= len(out) {
			n = len(out) - 1
		}
		out = out[:n]
	}
	return out
}

// Sync makes every appended byte durable. A fired sync-site fault
// persists only a deterministic prefix of the unsynced region (the
// short-write class), truncates the file to match — the dropped tail
// never reached the platter — and wedges the log.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wedged != nil {
		return l.wedged
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.fileLen == l.syncedLen {
		l.pending = 0
		return nil
	}
	if sf := l.in.StorageOp(l.site+".wal.sync", 0, fault.ShortWrite); sf != nil {
		l.fails++
		kept := l.syncedLen + int64(sf.Frac*float64(l.fileLen-l.syncedLen))
		if err := l.f.Truncate(kept); err == nil {
			l.f.Sync()
			l.f.Seek(kept, 0)
			l.fileLen, l.syncedLen = kept, kept
		}
		l.wedged = fmt.Errorf("wal: sync %s: %w", l.path, sf)
		return l.wedged
	}
	if err := l.f.Sync(); err != nil {
		l.fails++
		l.wedged = fmt.Errorf("wal: sync %s: %w", l.path, err)
		return l.wedged
	}
	l.syncedLen = l.fileLen
	l.pending = 0
	l.syncs++
	return nil
}

// Crash simulates kill -9: unsynced bytes vanish, the file closes. The
// log is unusable afterwards; reopen the store to recover.
func (l *Log) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return
	}
	l.f.Truncate(l.syncedLen)
	l.f.Sync()
	l.f.Close()
	l.f = nil
	if l.wedged == nil {
		l.wedged = errClosed
	}
}

// Close syncs (unless the log is wedged — a wedged tail is already
// physically truncated to its durable prefix) and closes the file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if l.wedged == nil {
		err = l.syncLocked()
	}
	l.f.Close()
	l.f = nil
	if l.wedged == nil {
		l.wedged = errClosed
	}
	return err
}

// Wedged returns the error that wedged the log, or nil.
func (l *Log) Wedged() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wedged == errClosed {
		return nil
	}
	return l.wedged
}
