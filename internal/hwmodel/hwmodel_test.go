package hwmodel

import (
	"testing"
	"time"
)

func TestLaunchStatsThreads(t *testing.T) {
	s := LaunchStats{Blocks: 4, ThreadsPerBlock: 256}
	if got := s.Threads(); got != 1024 {
		t.Fatalf("Threads() = %d, want 1024", got)
	}
}

func TestLaunchStatsAdd(t *testing.T) {
	a := LaunchStats{Blocks: 2, ThreadsPerBlock: 64, Ops: 10, GlobalReadBytes: 100,
		GlobalWriteBytes: 50, SharedBytes: 30, DivergentOps: 5, UncoalescedBytes: 8}
	b := LaunchStats{Ops: 1, GlobalReadBytes: 2, GlobalWriteBytes: 3,
		SharedBytes: 4, DivergentOps: 6, UncoalescedBytes: 7}
	a.Add(&b)
	if a.Ops != 11 || a.GlobalReadBytes != 102 || a.GlobalWriteBytes != 53 ||
		a.SharedBytes != 34 || a.DivergentOps != 11 || a.UncoalescedBytes != 15 {
		t.Fatalf("Add merged wrong: %+v", a)
	}
	if a.Blocks != 2 || a.ThreadsPerBlock != 64 {
		t.Fatal("Add must not change geometry")
	}
}

func TestKernelTimeIncludesLaunchOverhead(t *testing.T) {
	m := DefaultGPU()
	s := &LaunchStats{Blocks: 1, ThreadsPerBlock: 1, Ops: 1}
	if got := m.KernelTime(s); got < m.LaunchOverhead {
		t.Fatalf("KernelTime %v below launch overhead %v", got, m.LaunchOverhead)
	}
}

func TestKernelTimeMonotoneInWork(t *testing.T) {
	m := DefaultGPU()
	small := &LaunchStats{Blocks: 100, ThreadsPerBlock: 256, Ops: 1e6, GlobalReadBytes: 1e6}
	big := &LaunchStats{Blocks: 100, ThreadsPerBlock: 256, Ops: 1e9, GlobalReadBytes: 1e9}
	if m.KernelTime(small) >= m.KernelTime(big) {
		t.Fatal("more work should take longer")
	}
}

func TestKernelTimeOccupancyRamp(t *testing.T) {
	// Same total work on few threads vs many threads: the small launch
	// runs at lower utilization and must be slower. This is the effect
	// that makes 1K-element lists a poor GPU fit (paper Fig. 12).
	m := DefaultGPU()
	work := &LaunchStats{Blocks: 1, ThreadsPerBlock: 128, Ops: 1e7}
	saturated := &LaunchStats{Blocks: 256, ThreadsPerBlock: 256, Ops: 1e7}
	if m.KernelTime(work) <= m.KernelTime(saturated) {
		t.Fatal("under-occupied launch should be slower for equal work")
	}
}

func TestKernelTimeDivergencePenalty(t *testing.T) {
	m := DefaultGPU()
	coherent := &LaunchStats{Blocks: 256, ThreadsPerBlock: 256, Ops: 1e8}
	divergent := &LaunchStats{Blocks: 256, ThreadsPerBlock: 256, DivergentOps: 1e8}
	if m.KernelTime(divergent) <= m.KernelTime(coherent) {
		t.Fatal("divergent ops must cost more than coherent ops")
	}
}

func TestKernelTimeDependentChainPenalty(t *testing.T) {
	// Dependent single-lane chains cost more than divergent ops, which
	// cost more than coherent ops — the ordering that punishes direct
	// ports of sequential algorithms (§3.1.1).
	m := DefaultGPU()
	coherent := m.KernelTime(&LaunchStats{Blocks: 256, ThreadsPerBlock: 256, Ops: 1e8})
	divergent := m.KernelTime(&LaunchStats{Blocks: 256, ThreadsPerBlock: 256, DivergentOps: 1e8})
	dependent := m.KernelTime(&LaunchStats{Blocks: 256, ThreadsPerBlock: 256, DependentOps: 1e8})
	if !(coherent < divergent && divergent < dependent) {
		t.Fatalf("cost ordering violated: coherent=%v divergent=%v dependent=%v",
			coherent, divergent, dependent)
	}
}

func TestKernelTimeUncoalescedPenalty(t *testing.T) {
	m := DefaultGPU()
	coalesced := &LaunchStats{Blocks: 256, ThreadsPerBlock: 256, GlobalReadBytes: 1 << 28}
	scattered := &LaunchStats{Blocks: 256, ThreadsPerBlock: 256,
		GlobalReadBytes: 1 << 28, UncoalescedBytes: 1 << 28}
	if m.KernelTime(scattered) <= m.KernelTime(coalesced) {
		t.Fatal("uncoalesced traffic must cost more")
	}
}

func TestKernelTimeComputeMemoryOverlap(t *testing.T) {
	// max(compute, mem), not sum: a kernel with both streams equal should
	// cost about one stream plus overheads.
	m := DefaultGPU()
	memOnly := &LaunchStats{Blocks: 256, ThreadsPerBlock: 256, GlobalReadBytes: 208e6} // ~1ms
	both := &LaunchStats{Blocks: 256, ThreadsPerBlock: 256, GlobalReadBytes: 208e6, Ops: 1e5}
	dm, db := m.KernelTime(memOnly), m.KernelTime(both)
	if db > dm+dm/10 {
		t.Fatalf("overlapped kernel %v much slower than memory-bound %v", db, dm)
	}
}

func TestTransferTime(t *testing.T) {
	m := DefaultGPU()
	// 8 MB at 8 GB/s = 1 ms (+10us latency).
	got := m.TransferTime(8 << 20)
	want := m.PCIeLatency + time.Duration(float64(8<<20)/8e9*1e9)
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
	if m.TransferTime(0) != m.PCIeLatency {
		t.Fatal("zero-byte transfer should cost exactly the latency")
	}
}

func TestAllocTime(t *testing.T) {
	m := DefaultGPU()
	if m.AllocTime(1<<20) < m.AllocOverhead {
		t.Fatal("alloc below fixed overhead")
	}
}

func TestCPUTimeComposition(t *testing.T) {
	m := DefaultCPU()
	w := CPUWork{MergedElements: 1000, BinaryProbes: 10, PFDDecodedElems: 100}
	want := 1000*m.MergePerElement + 10*m.BinarySearchPerProbe + 100*m.PFDDecodePerElement
	if got := m.Time(w); got != want {
		t.Fatalf("Time = %v, want %v", got, want)
	}
}

func TestCPUWorkAdd(t *testing.T) {
	a := CPUWork{MergedElements: 1, BinaryProbes: 2, PFDDecodedElems: 3,
		EFDecodedElems: 4, ScoredDocs: 5, HeapCandidates: 6, BytesTouched: 7}
	a.Add(a)
	if a.MergedElements != 2 || a.BinaryProbes != 4 || a.PFDDecodedElems != 6 ||
		a.EFDecodedElems != 8 || a.ScoredDocs != 10 || a.HeapCandidates != 12 ||
		a.BytesTouched != 14 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestCPUBytesTouched(t *testing.T) {
	m := DefaultCPU()
	// 20 GB at 20 GB/s = 1 s.
	got := m.Time(CPUWork{BytesTouched: 20e9})
	if got < 900*time.Millisecond || got > 1100*time.Millisecond {
		t.Fatalf("20GB stream = %v, want ~1s", got)
	}
}

func TestCalibrationAnchorsFig12(t *testing.T) {
	// The Figure-12 anchor the models are calibrated to: decompressing a
	// 10M-element PForDelta list on the CPU lands near the paper's
	// ~100-120 ms curve point.
	m := DefaultCPU()
	d := m.Time(CPUWork{PFDDecodedElems: 10_000_000})
	if d < 80*time.Millisecond || d > 160*time.Millisecond {
		t.Fatalf("10M-element CPU PFD decode = %v, want ~110ms (Fig. 12 anchor)", d)
	}
}

func TestGPUFixedOverheadsDominateSmallInputs(t *testing.T) {
	// A ~1K-element job pays launch+transfer overheads that the compute
	// cannot amortize: total must exceed the pure compute time by a large
	// factor — the paper's reason small lists stay on the CPU.
	g := DefaultGPU()
	transfer := g.TransferTime(1 << 10)
	kernel := g.KernelTime(&LaunchStats{Blocks: 4, ThreadsPerBlock: 256, Ops: 20 * 1024})
	total := transfer + kernel
	if total < 15*time.Microsecond {
		t.Fatalf("tiny GPU job = %v, expected >= 15us of fixed overhead", total)
	}
}

// TestTransferPricingTable prices the two copy paths — host PCIe and the
// node's peer interconnect — across the size range, including the edges:
// zero-byte transfers cost exactly the fixed setup latency, and huge
// transfers converge to pure bandwidth (the latency term vanishes in the
// ratio).
func TestTransferPricingTable(t *testing.T) {
	m := DefaultGPU()
	cases := []struct {
		name       string
		bytes      int64
		wantHost   time.Duration
		wantPeer   time.Duration
		peerFaster bool
	}{
		{
			name:     "zero bytes costs setup latency only",
			bytes:    0,
			wantHost: m.PCIeLatency,
			wantPeer: m.PeerLatency,
			// 6us peer setup vs 10us host: peer wins even empty.
			peerFaster: true,
		},
		{
			name:       "1 KiB latency-dominated",
			bytes:      1 << 10,
			wantHost:   m.PCIeLatency + time.Duration(float64(1<<10)/m.PCIeBytesPerSec*1e9),
			wantPeer:   m.PeerLatency + time.Duration(float64(1<<10)/m.PeerBytesPerSec*1e9),
			peerFaster: true,
		},
		{
			name:       "8 MiB bandwidth region",
			bytes:      8 << 20,
			wantHost:   m.PCIeLatency + time.Duration(float64(8<<20)/m.PCIeBytesPerSec*1e9),
			wantPeer:   m.PeerLatency + time.Duration(float64(8<<20)/m.PeerBytesPerSec*1e9),
			peerFaster: true,
		},
		{
			name:       "4 GiB huge transfer",
			bytes:      4 << 30,
			wantHost:   m.PCIeLatency + time.Duration(float64(4<<30)/m.PCIeBytesPerSec*1e9),
			wantPeer:   m.PeerLatency + time.Duration(float64(4<<30)/m.PeerBytesPerSec*1e9),
			peerFaster: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			host := m.TransferTime(tc.bytes)
			peer := m.PeerTransferTime(tc.bytes)
			if host != tc.wantHost {
				t.Fatalf("TransferTime(%d) = %v, want %v", tc.bytes, host, tc.wantHost)
			}
			if peer != tc.wantPeer {
				t.Fatalf("PeerTransferTime(%d) = %v, want %v", tc.bytes, peer, tc.wantPeer)
			}
			if tc.peerFaster != (peer < host) {
				t.Fatalf("peer %v vs host %v: want peerFaster=%v", peer, host, tc.peerFaster)
			}
		})
	}

	// Huge transfers converge to the bandwidth ratio: with the K20
	// calibration (12 vs 8 GB/s) the peer path approaches 2/3 the host
	// time as latency amortizes away.
	hugeHost := m.TransferTime(4 << 30)
	hugePeer := m.PeerTransferTime(4 << 30)
	ratio := float64(hugePeer) / float64(hugeHost)
	wantRatio := m.PCIeBytesPerSec / m.PeerBytesPerSec
	if ratio < wantRatio*0.99 || ratio > wantRatio*1.01 {
		t.Fatalf("huge-transfer peer/host ratio %.4f, want ~%.4f (bandwidth ratio)", ratio, wantRatio)
	}

	// An uncalibrated model (no peer constants) prices peer copies at the
	// host path, never as free.
	bare := DefaultGPU()
	bare.PeerLatency, bare.PeerBytesPerSec = 0, 0
	for _, bytes := range []int64{0, 1 << 10, 8 << 20} {
		if got, want := bare.PeerTransferTime(bytes), bare.TransferTime(bytes); got != want {
			t.Fatalf("uncalibrated peer path: PeerTransferTime(%d) = %v, want host %v", bytes, got, want)
		}
	}
}
