// Package hwmodel defines the calibrated analytical cost models that turn
// the functional simulation's work counters into simulated durations.
//
// The paper measures a 4-core Intel Xeon E5-2609v2 at 2.5 GHz against an
// NVIDIA Tesla K20 (13 SMX units, 2496 CUDA cores, 5 GB GDDR5 at 208 GB/s)
// connected over PCIe 2.0 x16 at 8 GB/s (§4.1). The reproduction cannot run
// CUDA, so each hardware effect the paper reasons about — kernel-launch and
// allocation overheads, host/device transfer, memory bandwidth, SIMT warp
// divergence, occupancy ramp-up on small inputs, CPU branch handling and
// per-element decode costs — is modeled as an explicit constant here, with
// its derivation recorded next to it. The experiments in
// internal/experiments validate the resulting *shapes* (who wins, where the
// crossover falls), which is the reproduction target; absolute numbers are
// not.
package hwmodel

import "time"

// LaunchStats aggregates the hardware counters one simulated kernel launch
// produced. The gpu package fills this in from per-thread instrumentation.
type LaunchStats struct {
	// Blocks and ThreadsPerBlock give the launch geometry.
	Blocks          int
	ThreadsPerBlock int
	// Ops counts simple arithmetic/logic operations executed across all
	// threads (each warp-serialized divergent op is counted by the kernel
	// itself via DivergentOps).
	Ops int64
	// GlobalReadBytes and GlobalWriteBytes count device-memory traffic.
	GlobalReadBytes  int64
	GlobalWriteBytes int64
	// SharedBytes counts shared-memory traffic (cheap, but not free).
	SharedBytes int64
	// DivergentOps counts operations executed under warp divergence; they
	// are charged at WarpSize-fold serialization cost.
	DivergentOps int64
	// DependentOps counts operations in single-lane *dependent* chains
	// (e.g. walking a linked list, a serial prefix sum): one lane active
	// per warp AND no instruction-level parallelism to hide ALU latency.
	// Charged at WarpSize x DependencyStall the coherent rate — the cost
	// that makes direct ports of sequential CPU algorithms (PForDelta's
	// exception chain, §3.1.1) perform poorly on GPUs.
	DependentOps int64
	// UncoalescedBytes is the subset of global traffic issued at
	// one-word-per-transaction granularity (e.g. scattered binary-search
	// probes); it is charged at a fraction of peak bandwidth.
	UncoalescedBytes int64
	// Phases is the number of device-wide synchronization phases.
	Phases int
}

// Threads returns the total thread count of the launch.
func (s *LaunchStats) Threads() int { return s.Blocks * s.ThreadsPerBlock }

// Add accumulates other into s (geometry fields are kept from s).
func (s *LaunchStats) Add(other *LaunchStats) {
	s.Ops += other.Ops
	s.GlobalReadBytes += other.GlobalReadBytes
	s.GlobalWriteBytes += other.GlobalWriteBytes
	s.SharedBytes += other.SharedBytes
	s.DivergentOps += other.DivergentOps
	s.DependentOps += other.DependentOps
	s.UncoalescedBytes += other.UncoalescedBytes
}

// GPUModel is the Tesla-K20-calibrated device model.
type GPUModel struct {
	// LaunchOverhead is the fixed cost of one kernel launch (driver +
	// dispatch). CUDA launch latency on Kepler-era parts is 5-10 us.
	LaunchOverhead time.Duration
	// AllocOverhead is the fixed cost of one cudaMalloc.
	AllocOverhead time.Duration
	// AllocPerByte models first-touch/allocation throughput.
	AllocPerByte time.Duration
	// PCIeLatency is the fixed DMA setup latency per transfer.
	PCIeLatency time.Duration
	// PCIeBytesPerSec is the host<->device bandwidth (paper: 8 GB/s).
	PCIeBytesPerSec float64
	// GlobalBytesPerSec is device-memory bandwidth (paper: 208 GB/s).
	GlobalBytesPerSec float64
	// UncoalescedFraction is the achieved fraction of peak bandwidth for
	// scattered single-word transactions (Kepler: 32-byte transactions for
	// 4 useful bytes => ~1/8).
	UncoalescedFraction float64
	// SharedBytesPerSec is aggregate shared-memory bandwidth (~1.3 TB/s on
	// K20; effectively free relative to global memory).
	SharedBytesPerSec float64
	// OpsPerSec is aggregate simple-op throughput when fully occupied.
	// K20: 2496 cores x 706 MHz ~ 1.76e12; integer-heavy kernels with
	// dependent ops achieve roughly half.
	OpsPerSec float64
	// WarpSize is the SIMT width (32); divergent ops serialize up to this.
	WarpSize int
	// DependencyStall is the extra latency multiplier for single-lane
	// dependent chains: with ILP of 1, each op waits out the full ALU
	// pipeline (~8-10 cycles on Kepler) instead of overlapping.
	DependencyStall float64
	// SaturationThreads is the resident-thread count needed to saturate
	// the device (13 SMX x 2048 threads = 26624). Smaller launches run at
	// proportionally lower throughput — the occupancy ramp that makes tiny
	// lists a bad fit for the GPU (§2.3, §4.3.1).
	SaturationThreads int
	// MinUtilization floors the occupancy ramp: even a one-thread kernel
	// proceeds at some nonzero rate.
	MinUtilization float64
	// PhaseOverhead is the per-device-wide-sync cost within a launch.
	PhaseOverhead time.Duration
	// MemoryBytes is device memory capacity (5 GB on K20); the gpu package
	// enforces it on allocation.
	MemoryBytes int64
	// PeerLatency is the fixed DMA setup latency of one device-to-device
	// (peer) transfer inside a multi-GPU node. P2P DMA over a shared PCIe
	// switch programs a single engine and skips the host bounce buffer, so
	// setup is cheaper than the host path's two-sided pinning (~6 us vs
	// 10 us measured on Kepler-era GPUDirect).
	PeerLatency time.Duration
	// PeerBytesPerSec is the inter-device (peer) bandwidth. On a
	// Kepler-era node both GPUs hang off one PCIe 2.0 switch, but P2P DMA
	// avoids the store-and-forward hop through host memory, sustaining
	// ~1.5x the host-path rate (~12 GB/s vs 8 GB/s). The constant is
	// distinct from PCIeBytesPerSec so NVLink-class interconnects are a
	// calibration change, not a code change.
	PeerBytesPerSec float64
	// BatchMemberOverhead is the marginal fixed cost each additional
	// member of a coalesced cross-query batch pays instead of the full
	// per-op fixed costs (launch, DMA setup, cudaMalloc). When compatible
	// ops from concurrently queued queries are packed into one grid /
	// one DMA program, the followers skip the driver round trip and pay
	// only the indexing prologue that routes their slice of the combined
	// launch — sub-microsecond on Kepler-era parts.
	BatchMemberOverhead time.Duration
}

// DefaultGPU returns the K20-calibrated model the experiments use.
func DefaultGPU() GPUModel {
	return GPUModel{
		LaunchOverhead:      8 * time.Microsecond,
		AllocOverhead:       10 * time.Microsecond,
		AllocPerByte:        time.Duration(0), // folded into first-touch traffic
		PCIeLatency:         10 * time.Microsecond,
		PCIeBytesPerSec:     8e9,
		GlobalBytesPerSec:   208e9,
		UncoalescedFraction: 0.125,
		SharedBytesPerSec:   1.3e12,
		OpsPerSec:           0.9e12,
		WarpSize:            32,
		DependencyStall:     8,
		SaturationThreads:   26624,
		MinUtilization:      0.002,
		PhaseOverhead:       2 * time.Microsecond,
		MemoryBytes:         5 << 30,
		PeerLatency:         6 * time.Microsecond,
		PeerBytesPerSec:     12e9,
		BatchMemberOverhead: 500 * time.Nanosecond,
	}
}

// utilization returns the occupancy-derived fraction of peak throughput a
// launch of n threads achieves.
func (m *GPUModel) utilization(n int) float64 {
	u := float64(n) / float64(m.SaturationThreads)
	if u > 1 {
		u = 1
	}
	if u < m.MinUtilization {
		u = m.MinUtilization
	}
	return u
}

// KernelTime converts a launch's counters into simulated execution time.
// Compute and memory streams overlap (hardware multithreading hides
// latency, §2.3), so the kernel takes the maximum of the two, plus launch
// and phase overheads.
func (m *GPUModel) KernelTime(s *LaunchStats) time.Duration {
	u := m.utilization(s.Threads())
	ops := float64(s.Ops) +
		float64(s.DivergentOps)*float64(m.WarpSize-1)/2 +
		float64(s.DependentOps)*float64(m.WarpSize)*m.DependencyStall
	compute := ops / (m.OpsPerSec * u)

	coalesced := float64(s.GlobalReadBytes+s.GlobalWriteBytes) - float64(s.UncoalescedBytes)
	if coalesced < 0 {
		coalesced = 0
	}
	mem := coalesced/(m.GlobalBytesPerSec*u) +
		float64(s.UncoalescedBytes)/(m.GlobalBytesPerSec*m.UncoalescedFraction*u) +
		float64(s.SharedBytes)/(m.SharedBytesPerSec*u)

	t := compute
	if mem > t {
		t = mem
	}
	return m.LaunchOverhead +
		time.Duration(s.Phases)*m.PhaseOverhead +
		time.Duration(t*float64(time.Second))
}

// TransferTime returns the host<->device copy time for n bytes.
func (m *GPUModel) TransferTime(bytes int64) time.Duration {
	return m.PCIeLatency + time.Duration(float64(bytes)/m.PCIeBytesPerSec*float64(time.Second))
}

// PeerTransferTime returns the device<->device copy time for n bytes over
// the node's peer interconnect. It has the same shape as TransferTime —
// fixed setup latency plus bandwidth-proportional payload — but is priced
// by the peer constants, so a scheduler can weigh "peer-copy a resident
// list from a sibling device" against "re-upload it from the host" as two
// differently priced paths. Models with no peer calibration (both peer
// constants zero) fall back to the host path, so a single-device model
// never silently prices peer copies as free.
func (m *GPUModel) PeerTransferTime(bytes int64) time.Duration {
	if m.PeerBytesPerSec <= 0 {
		return m.TransferTime(bytes)
	}
	return m.PeerLatency + time.Duration(float64(bytes)/m.PeerBytesPerSec*float64(time.Second))
}

// AllocTime returns the device-allocation time for n bytes.
func (m *GPUModel) AllocTime(bytes int64) time.Duration {
	return m.AllocOverhead + time.Duration(float64(bytes)*float64(m.AllocPerByte))
}

// CPUModel is the Xeon-E5-2609v2-calibrated host model. The CPU algorithms
// execute for real; their simulated cost is derived from work counts they
// report (elements merged, blocks decoded, binary-search probes).
type CPUModel struct {
	// MergePerElement is the cost per element scanned by the sequential
	// two-pointer merge: ~4-5 cycles of compare/advance with good spatial
	// locality at 2.5 GHz.
	MergePerElement time.Duration
	// BinarySearchPerProbe is the cost of one binary-search step into a
	// large, cold array: comparison plus a likely branch mispredict and a
	// main-memory cache miss.
	BinarySearchPerProbe time.Duration
	// CachedProbe is a binary-search step into a cache-resident structure:
	// the skip-pointer array of even a 2M-element list is only ~125 KB
	// (one u32 first-docID per 128-element block), so repeated monotone
	// probing keeps it in L2 — the locality that makes the CPU the right
	// processor above the crossover (§2.2).
	CachedProbe time.Duration
	// SelectProbe is one Elias-Fano select-based random access inside a
	// compressed block (probe without decoding the block): a popcount walk
	// plus a table lookup, a few dependent ALU ops.
	SelectProbe time.Duration
	// PFDDecodePerElement is PForDelta block decode per element: unpack,
	// exception patch, prefix sum. Anchored to the paper's Figure 12 CPU
	// curve (~115 ms to decompress ~10M-element groups => ~11-12 ns/elt on
	// their older Xeon; we keep that figure so ratios match).
	PFDDecodePerElement time.Duration
	// EFDecodePerElement is serial Elias-Fano decode per element (unary
	// scan + concatenate; slightly cheaper than PFD's patch pass, per
	// Vigna 2013).
	EFDecodePerElement time.Duration
	// ScorePerDocument is BM25 per candidate document.
	ScorePerDocument time.Duration
	// HeapPerCandidate is the bounded-heap cost per candidate during
	// CPU top-k partial sort.
	HeapPerCandidate time.Duration
	// MemBytesPerSec is host streaming bandwidth (DDR3-1600, ~12.8 GB/s
	// per channel; the E5-2609v2 sustains ~20 GB/s).
	MemBytesPerSec float64
}

// DefaultCPU returns the Xeon-calibrated model the experiments use.
func DefaultCPU() CPUModel {
	return CPUModel{
		MergePerElement:      2 * time.Nanosecond,
		BinarySearchPerProbe: 6 * time.Nanosecond,
		CachedProbe:          2 * time.Nanosecond,
		SelectProbe:          3 * time.Nanosecond,
		PFDDecodePerElement:  11 * time.Nanosecond,
		EFDecodePerElement:   9 * time.Nanosecond,
		ScorePerDocument:     8 * time.Nanosecond,
		HeapPerCandidate:     5 * time.Nanosecond,
		MemBytesPerSec:       20e9,
	}
}

// CPUWork counts the work a CPU-side operation performed.
type CPUWork struct {
	MergedElements  int64 // elements scanned by two-pointer merges
	BinaryProbes    int64 // binary-search comparisons into cold arrays
	CachedProbes    int64 // binary-search comparisons into cache-resident skip arrays
	SelectProbes    int64 // Elias-Fano in-compressed-block random accesses
	PFDDecodedElems int64 // elements decoded from PForDelta blocks
	EFDecodedElems  int64 // elements decoded from Elias-Fano blocks
	ScoredDocs      int64 // BM25 evaluations
	HeapCandidates  int64 // candidates pushed through the top-k heap
	BytesTouched    int64 // additional streaming traffic
}

// Add accumulates other into w.
func (w *CPUWork) Add(other CPUWork) {
	w.MergedElements += other.MergedElements
	w.BinaryProbes += other.BinaryProbes
	w.CachedProbes += other.CachedProbes
	w.SelectProbes += other.SelectProbes
	w.PFDDecodedElems += other.PFDDecodedElems
	w.EFDecodedElems += other.EFDecodedElems
	w.ScoredDocs += other.ScoredDocs
	w.HeapCandidates += other.HeapCandidates
	w.BytesTouched += other.BytesTouched
}

// Time converts the work counts into simulated duration.
func (m *CPUModel) Time(w CPUWork) time.Duration {
	d := time.Duration(w.MergedElements)*m.MergePerElement +
		time.Duration(w.BinaryProbes)*m.BinarySearchPerProbe +
		time.Duration(w.CachedProbes)*m.CachedProbe +
		time.Duration(w.SelectProbes)*m.SelectProbe +
		time.Duration(w.PFDDecodedElems)*m.PFDDecodePerElement +
		time.Duration(w.EFDecodedElems)*m.EFDecodePerElement +
		time.Duration(w.ScoredDocs)*m.ScorePerDocument +
		time.Duration(w.HeapCandidates)*m.HeapPerCandidate
	if w.BytesTouched > 0 {
		d += time.Duration(float64(w.BytesTouched) / m.MemBytesPerSec * float64(time.Second))
	}
	return d
}
