package vbyte

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func genAscending(rng *rand.Rand, n int, maxGap uint32) []uint32 {
	ids := make([]uint32, n)
	cur := uint32(rng.Intn(100))
	for i := 0; i < n; i++ {
		cur += 1 + uint32(rng.Intn(int(maxGap)))
		ids[i] = cur
	}
	return ids
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 127, 128, 129, 1000, 50000} {
		for _, maxGap := range []uint32{1, 100, 100000} {
			ids := genAscending(rng, n, maxGap)
			l, err := Compress(ids)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			got, err := l.Decompress()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, ids) {
				t.Fatalf("n=%d gap=%d: round trip mismatch", n, maxGap)
			}
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(gaps []uint16) bool {
		if len(gaps) == 0 {
			return true
		}
		ids := make([]uint32, len(gaps))
		cur := uint32(0)
		for i, g := range gaps {
			cur += uint32(g) + 1
			ids[i] = cur
		}
		l, err := Compress(ids)
		if err != nil {
			return false
		}
		got, err := l.Decompress()
		return err == nil && reflect.DeepEqual(got, ids)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNotAscending(t *testing.T) {
	if _, err := Compress([]uint32{5, 5}); !errors.Is(err, ErrNotAscending) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Compress([]uint32{9, 3}); !errors.Is(err, ErrNotAscending) {
		t.Fatalf("err = %v", err)
	}
}

func TestEmpty(t *testing.T) {
	l, err := Compress(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := l.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestCorruptBlockDetected(t *testing.T) {
	ids := genAscending(rand.New(rand.NewSource(2)), 100, 50)
	l, _ := Compress(ids)
	// Truncate the payload: decode must fail, not panic or fabricate.
	l.Blocks[0].Data = l.Blocks[0].Data[:len(l.Blocks[0].Data)/2]
	if _, err := l.Decompress(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestOverlongVarintDetected(t *testing.T) {
	l := &List{N: 2, Blocks: []Block{{
		FirstDocID: 0, N: 2,
		Data: []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
	}}}
	if _, err := l.Decompress(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestDenseGapsOneBytePerEntry(t *testing.T) {
	// Gaps < 128 take exactly one byte each.
	ids := make([]uint32, 1000)
	for i := range ids {
		ids[i] = uint32(i * 100)
	}
	l, _ := Compress(ids)
	bitsPer := float64(l.CompressedBits()) / float64(l.N)
	if bitsPer < 8 || bitsPer > 9 {
		t.Fatalf("bits/entry = %.2f, want ~8.3 (1 byte + headers)", bitsPer)
	}
	if r := l.Ratio(); r < 3.5 || r > 4.1 {
		t.Fatalf("ratio = %.2f, want ~3.9", r)
	}
}

func TestVByteWorseThanBitPackedOnVeryDenseLists(t *testing.T) {
	// Gaps of ~2 need ~2 bits bit-packed but a full byte in VByte: the
	// byte-alignment penalty Table 1's reference column shows.
	ids := make([]uint32, 10000)
	cur := uint32(0)
	rng := rand.New(rand.NewSource(3))
	for i := range ids {
		cur += 1 + uint32(rng.Intn(3))
		ids[i] = cur
	}
	l, _ := Compress(ids)
	if r := l.Ratio(); r > 4.1 {
		t.Fatalf("VByte ratio %.2f too good for dense list (byte floor)", r)
	}
}

func BenchmarkDecompress(b *testing.B) {
	ids := genAscending(rand.New(rand.NewSource(4)), 1<<17, 30)
	l, _ := Compress(ids)
	b.SetBytes(int64(len(ids)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Decompress(); err != nil {
			b.Fatal(err)
		}
	}
}
