// Package vbyte implements variable-byte (VByte) d-gap compression, the
// classic byte-aligned posting-list codec (Zobel & Moffat's survey, CSUR
// 2006, covers it as the baseline scheme). It is not part of Griffin's
// design — the paper compares PForDelta and Elias-Fano — but it is the
// codec most production systems historically shipped, so the Table 1
// experiment reports it as a reference point: VByte decodes fast but
// compresses worse than either bit-packed scheme on dense lists, whose
// gaps fit in far fewer than 7 bits.
//
// Encoding: each d-gap is emitted as a little-endian base-128 sequence;
// the high bit of every byte is a continuation flag (0 = last byte).
// Like the other codecs, lists are partitioned into 128-element blocks
// with an uncompressed first docID per block so skip pointers work.
package vbyte

import (
	"errors"
	"fmt"
)

// BlockSize matches the other codecs' 128-element blocks.
const BlockSize = 128

// ErrNotAscending is returned when input docIDs are not strictly ascending.
var ErrNotAscending = errors.New("vbyte: docIDs not strictly ascending")

// ErrCorrupt is returned when a decode runs off the end of a block.
var ErrCorrupt = errors.New("vbyte: corrupt block")

// Block is one VByte-compressed block of up to BlockSize docIDs.
type Block struct {
	// FirstDocID is the block's first value, stored uncompressed.
	FirstDocID uint32
	// N is the number of encoded values.
	N int
	// Data holds the byte stream of N-1 encoded gaps (the first value
	// lives in the header; within the block gaps are relative).
	Data []byte
}

// List is a VByte-compressed posting list.
type List struct {
	// N is the total number of docIDs.
	N int
	// Blocks are the compressed blocks in docID order.
	Blocks []Block
}

// Compress encodes a strictly ascending docID list.
func Compress(docIDs []uint32) (*List, error) {
	for i := 1; i < len(docIDs); i++ {
		if docIDs[i] <= docIDs[i-1] {
			return nil, fmt.Errorf("%w: ids[%d]=%d ids[%d]=%d",
				ErrNotAscending, i-1, docIDs[i-1], i, docIDs[i])
		}
	}
	l := &List{N: len(docIDs)}
	for start := 0; start < len(docIDs); start += BlockSize {
		end := start + BlockSize
		if end > len(docIDs) {
			end = len(docIDs)
		}
		chunk := docIDs[start:end]
		blk := Block{FirstDocID: chunk[0], N: len(chunk)}
		prev := chunk[0]
		for _, v := range chunk[1:] {
			blk.Data = appendUvarint(blk.Data, v-prev)
			prev = v
		}
		l.Blocks = append(l.Blocks, blk)
	}
	return l, nil
}

// appendUvarint emits v as base-128 little-endian with continuation bits.
func appendUvarint(dst []byte, v uint32) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// DecompressInto decodes the block into dst (capacity >= Block.N) and
// returns the count.
func (b *Block) DecompressInto(dst []uint32) (int, error) {
	dst[0] = b.FirstDocID
	cur := b.FirstDocID
	pos := 0
	for i := 1; i < b.N; i++ {
		var gap uint32
		shift := uint(0)
		for {
			if pos >= len(b.Data) {
				return 0, fmt.Errorf("%w: value %d", ErrCorrupt, i)
			}
			c := b.Data[pos]
			pos++
			gap |= uint32(c&0x7f) << shift
			if c < 0x80 {
				break
			}
			shift += 7
			if shift > 28 {
				return 0, fmt.Errorf("%w: overlong varint at value %d", ErrCorrupt, i)
			}
		}
		cur += gap
		dst[i] = cur
	}
	return b.N, nil
}

// Decompress decodes the whole list.
func (l *List) Decompress() ([]uint32, error) {
	out := make([]uint32, 0, l.N)
	var buf [BlockSize]uint32
	for i := range l.Blocks {
		n, err := l.Blocks[i].DecompressInto(buf[:])
		if err != nil {
			return nil, err
		}
		out = append(out, buf[:n]...)
	}
	return out, nil
}

// CompressedBits returns the total size in bits: payload bytes plus the
// per-block header (first docID 32b, count 8b).
func (l *List) CompressedBits() int64 {
	var bits int64
	for i := range l.Blocks {
		bits += int64(len(l.Blocks[i].Data))*8 + 40
	}
	return bits
}

// Ratio returns the compression ratio relative to raw 32-bit docIDs.
func (l *List) Ratio() float64 {
	if l.N == 0 {
		return 0
	}
	return float64(int64(l.N)*32) / float64(l.CompressedBits())
}
