// Document partitioning for the cluster layer (internal/cluster): the
// corpus is split across N shards by docID, each shard holding the full
// dictionary but only its own documents' postings. The paper's §5
// scalability discussion rejects caching everything on one device because
// no single device memory holds the corpus; partitioning the documents
// across several per-shard engines — each with its own simulated device —
// is the standard IR answer (and the one MGSim-style multi-GPU systems
// take).
//
// Partitioning preserves *global* collection statistics: each shard index
// keeps the unpartitioned NumDocs, DocLens, and AvgDocLen, and every
// shard posting list carries the term's collection-wide document
// frequency (PostingList.GlobalN). BM25 therefore scores a document
// identically — bit for bit — whether it is ranked by a shard engine or
// by a single engine over the whole corpus, which is what makes
// scatter-gather merge results provably equal to the single-engine run.
package workload

import (
	"fmt"

	"griffin/internal/index"
)

// ShardOf is the deterministic document-partition function: docID d lives
// on shard d mod shards. Modulo placement spreads both the docID space
// and every term's posting list near-uniformly, so shard service times
// stay balanced (the max-of-shards latency model degrades gracefully).
func ShardOf(docID uint32, shards int) int {
	return int(docID % uint32(shards))
}

// PartitionIndex splits ix into shards document-partitioned sub-indexes
// (ShardOf placement). Shard indexes keep the global docID space and
// global collection statistics; they are in-memory views for cluster
// serving, not meant to be serialized (WriteTo would drop GlobalN).
func PartitionIndex(ix *index.Index, shards int) ([]*index.Index, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("workload: shard count %d must be positive", shards)
	}
	terms := ix.Terms()

	codec := index.CodecEF
	for _, t := range terms {
		if pl, ok := ix.Lookup(t); ok && pl.PFD != nil {
			codec = index.CodecBoth
		}
		break
	}

	builders := make([]*index.Builder, shards)
	for s := range builders {
		builders[s] = index.NewBuilder(codec)
	}

	ids := make([][]uint32, shards)
	freqs := make([][]uint32, shards)
	for _, term := range terms {
		pl, ok := ix.Lookup(term)
		if !ok {
			continue
		}
		for s := 0; s < shards; s++ {
			ids[s] = ids[s][:0]
			freqs[s] = freqs[s][:0]
		}
		for i, d := range pl.DocIDs() {
			s := ShardOf(d, shards)
			ids[s] = append(ids[s], d)
			freqs[s] = append(freqs[s], pl.FreqOf(i))
		}
		for s := 0; s < shards; s++ {
			if len(ids[s]) == 0 {
				continue
			}
			if err := builders[s].AddPostings(term, ids[s], freqs[s]); err != nil {
				return nil, fmt.Errorf("workload: shard %d term %q: %w", s, term, err)
			}
		}
	}

	out := make([]*index.Index, shards)
	for s := range builders {
		six, err := builders[s].Build()
		if err != nil {
			return nil, fmt.Errorf("workload: shard %d: %w", s, err)
		}
		// Global statistics: shard engines score against the whole
		// collection, not their slice of it.
		six.NumDocs = ix.NumDocs
		six.DocLens = ix.DocLens
		six.AvgDocLen = ix.AvgDocLen
		for _, term := range terms {
			spl, ok := six.Lookup(term)
			if !ok {
				continue
			}
			gpl, _ := ix.Lookup(term)
			spl.GlobalN = gpl.N
		}
		out[s] = six
	}
	return out, nil
}

// PartitionCorpus partitions a generated corpus's index (the experiment
// and test entry point).
func PartitionCorpus(c *Corpus, shards int) ([]*index.Index, error) {
	return PartitionIndex(c.Index, shards)
}
