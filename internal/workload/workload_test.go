package workload

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"griffin/internal/index"
	"griffin/internal/stats"
)

func smallSpec() CorpusSpec {
	return CorpusSpec{
		NumDocs:    200_000,
		NumTerms:   100,
		MaxListLen: 50_000,
		MinListLen: 100,
		Alpha:      0.9,
		Codec:      index.CodecEF,
		Seed:       7,
	}
}

func TestGenListProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 10, 1000, 100000} {
		ids := GenList(rng, n, 1_000_000)
		if len(ids) == 0 {
			t.Fatalf("n=%d: empty list", n)
		}
		if len(ids) < n*9/10 {
			t.Fatalf("n=%d: generated only %d elements", n, len(ids))
		}
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				t.Fatalf("n=%d: not strictly ascending at %d", n, i)
			}
		}
		if ids[len(ids)-1] >= 1_000_000 {
			t.Fatalf("n=%d: exceeded universe", n)
		}
	}
}

func TestGenListTightUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ids := GenList(rng, 100, 50)
	if len(ids) > 50 {
		t.Fatalf("generated %d ids in universe of 50", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("not ascending")
		}
	}
}

func TestGenListZeroN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if got := GenList(rng, 0, 100); got != nil {
		t.Fatalf("GenList(0) = %v", got)
	}
}

func TestGenPairRatioAndOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	short, long := GenPair(rng, 1000, 100_000, 10_000_000, 0.5)
	if len(short) == 0 || len(long) == 0 {
		t.Fatal("empty pair")
	}
	ratio := float64(len(long)) / float64(len(short))
	if ratio < 50 || ratio > 200 {
		t.Fatalf("ratio = %v, want ~100", ratio)
	}
	// Overlap should be near 50% of the short list.
	inLong := make(map[uint32]bool, len(long))
	for _, v := range long {
		inLong[v] = true
	}
	matches := 0
	for _, v := range short {
		if inLong[v] {
			matches++
		}
	}
	frac := float64(matches) / float64(len(short))
	if frac < 0.35 || frac > 0.7 {
		t.Fatalf("overlap fraction = %v, want ~0.5", frac)
	}
	if !sort.SliceIsSorted(short, func(i, j int) bool { return short[i] < short[j] }) {
		t.Fatal("short list not sorted")
	}
}

func TestGenerateCorpus(t *testing.T) {
	c, err := GenerateCorpus(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if c.Index.NumTerms() != 100 {
		t.Fatalf("terms = %d", c.Index.NumTerms())
	}
	// Sizes follow the Zipf targets by rank; realized counts jitter a
	// little (random-gap sampling), so allow 5% local non-monotonicity.
	for i := 1; i < len(c.Sizes); i++ {
		if float64(c.Sizes[i]) > float64(c.Sizes[i-1])*1.05 {
			t.Fatalf("sizes not ~monotone at rank %d: %d > %d", i, c.Sizes[i], c.Sizes[i-1])
		}
	}
	if c.Sizes[0] < c.Sizes[len(c.Sizes)-1]*5 {
		t.Fatalf("head/tail size spread too small: %d vs %d", c.Sizes[0], c.Sizes[len(c.Sizes)-1])
	}
	// Every term resolvable, size bookkeeping accurate.
	for r, term := range c.Terms {
		p, ok := c.Index.Lookup(term)
		if !ok {
			t.Fatalf("term %q missing", term)
		}
		if p.N != c.Sizes[r] {
			t.Fatalf("term %q size %d != recorded %d", term, p.N, c.Sizes[r])
		}
	}
	if c.Index.AvgDocLen <= 0 {
		t.Fatal("AvgDocLen not set")
	}
}

func TestGenerateCorpusDeterministic(t *testing.T) {
	c1, err := GenerateCorpus(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := GenerateCorpus(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1.Sizes, c2.Sizes) {
		t.Fatal("same seed produced different corpora")
	}
	p1, _ := c1.Index.Lookup(c1.Terms[0])
	p2, _ := c2.Index.Lookup(c2.Terms[0])
	if !reflect.DeepEqual(p1.DocIDs(), p2.DocIDs()) {
		t.Fatal("same seed produced different posting lists")
	}
}

func TestGenerateCorpusInvalidSpec(t *testing.T) {
	if _, err := GenerateCorpus(CorpusSpec{}); err == nil {
		t.Fatal("expected error for zero spec")
	}
}

func TestListSizeCDFShape(t *testing.T) {
	// Figure 10's qualitative shape: wide spread of sizes with most mass
	// between MinListLen and MaxListLen.
	c, err := GenerateCorpus(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	sizes := c.Index.ListSizes()
	cdf := stats.CDF(sizes, []int{100, 1000, 10000, 50000})
	if cdf[len(cdf)-1] != 1 {
		t.Fatal("CDF must reach 1 at max size")
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
	if cdf[0] > 0.9 {
		t.Fatal("almost all lists at minimum size: Zipf spread failed")
	}
}

func TestSampleTermCountDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := stats.NewHistogram()
	for i := 0; i < 100_000; i++ {
		h.Add(SampleTermCount(rng))
	}
	// Figure 11's anchors within sampling tolerance.
	checks := []struct {
		terms int
		want  float64
	}{{2, 0.27}, {3, 0.33}, {4, 0.24}}
	for _, c := range checks {
		got := h.Fraction(c.terms)
		if got < c.want-0.02 || got > c.want+0.02 {
			t.Fatalf("P(#terms=%d) = %v, want ~%v", c.terms, got, c.want)
		}
	}
	if h.FractionAtLeast(7) > 0.06 {
		t.Fatalf("tail too heavy: %v", h.FractionAtLeast(7))
	}
}

func TestGenerateQueryLog(t *testing.T) {
	c, err := GenerateCorpus(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	qs := GenerateQueryLog(c, QuerySpec{NumQueries: 500, PopularityAlpha: 0.5, Seed: 6})
	if len(qs) != 500 {
		t.Fatalf("got %d queries", len(qs))
	}
	for qi, q := range qs {
		if len(q.Terms) < 2 {
			t.Fatalf("query %d has %d terms", qi, len(q.Terms))
		}
		seen := map[string]bool{}
		for _, term := range q.Terms {
			if seen[term] {
				t.Fatalf("query %d repeats term %q", qi, term)
			}
			seen[term] = true
			if _, ok := c.Index.Lookup(term); !ok {
				t.Fatalf("query %d references unknown term %q", qi, term)
			}
		}
	}
}

func TestQueryLogDeterministic(t *testing.T) {
	c, _ := GenerateCorpus(smallSpec())
	spec := QuerySpec{NumQueries: 100, PopularityAlpha: 0.5, Seed: 9}
	q1 := GenerateQueryLog(c, spec)
	q2 := GenerateQueryLog(c, spec)
	if !reflect.DeepEqual(q1, q2) {
		t.Fatal("same seed produced different query logs")
	}
}

func TestZipfRankBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, alpha := range []float64{0, 0.5, 1.0, 1.5} {
		for i := 0; i < 10000; i++ {
			r := sampleZipfRank(rng, 50, alpha)
			if r < 0 || r >= 50 {
				t.Fatalf("alpha=%v: rank %d out of bounds", alpha, r)
			}
		}
	}
}

func TestZipfRankSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	low, high := 0, 0
	for i := 0; i < 10000; i++ {
		r := sampleZipfRank(rng, 1000, 1.0)
		if r < 100 {
			low++
		} else if r >= 900 {
			high++
		}
	}
	if low <= high*3 {
		t.Fatalf("Zipf skew too weak: low=%d high=%d", low, high)
	}
}

func BenchmarkGenerateCorpus(b *testing.B) {
	spec := smallSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateCorpus(spec); err != nil {
			b.Fatal(err)
		}
	}
}
