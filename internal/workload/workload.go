// Package workload synthesizes the evaluation inputs the paper draws from
// ClueWeb12 and the TREC 2005/2006 efficiency-track query logs (§4.2),
// which are not redistributable here. The generator reproduces the two
// measured properties every experiment depends on:
//
//   - Figure 10's inverted-list size distribution: most lists between 1K
//     and 1M elements with a tail to tens of millions, modeled with
//     Zipfian document frequencies over the docID space;
//   - Figure 11's query term-count distribution: ~27% two-term, ~33%
//     three-term, ~24% four-term queries, with a small tail beyond six.
//
// All generation is deterministic given the spec's seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"griffin/internal/index"
)

// CorpusSpec parameterizes synthetic corpus generation.
type CorpusSpec struct {
	// NumDocs is the docID universe (the paper's subset: 41M documents;
	// scale down for tests).
	NumDocs int
	// NumTerms is the dictionary size.
	NumTerms int
	// MaxListLen caps the most frequent term's posting count.
	MaxListLen int
	// MinListLen floors the rarest term's posting count.
	MinListLen int
	// Alpha is the Zipf exponent of document frequency by term rank
	// (web text: ~0.7-1.1).
	Alpha float64
	// Codec selects which compressed forms to materialize.
	Codec index.Codec
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultCorpusSpec returns a laptop-scale corpus whose list-size CDF
// matches Figure 10's shape (1K-26M in the paper; scaled to the configured
// MaxListLen here).
func DefaultCorpusSpec() CorpusSpec {
	return CorpusSpec{
		NumDocs:    4_000_000,
		NumTerms:   2_000,
		MaxListLen: 2_000_000,
		MinListLen: 1_000,
		Alpha:      0.85,
		Codec:      index.CodecEF,
		Seed:       1,
	}
}

// Corpus is a generated synthetic collection.
type Corpus struct {
	Index *index.Index
	// Terms are dictionary terms ordered by descending posting count
	// (rank 0 = most frequent).
	Terms []string
	// Sizes[i] is the posting count of Terms[i].
	Sizes []int
}

// TermName returns the synthetic term for rank r.
func TermName(r int) string { return fmt.Sprintf("t%06d", r) }

// GenerateCorpus builds a synthetic inverted index per the spec.
func GenerateCorpus(spec CorpusSpec) (*Corpus, error) {
	if spec.NumDocs <= 0 || spec.NumTerms <= 0 {
		return nil, fmt.Errorf("workload: invalid spec %+v", spec)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	b := index.NewBuilder(spec.Codec)
	c := &Corpus{
		Terms: make([]string, spec.NumTerms),
		Sizes: make([]int, spec.NumTerms),
	}
	for r := 0; r < spec.NumTerms; r++ {
		n := int(float64(spec.MaxListLen) / math.Pow(float64(r+1), spec.Alpha))
		if n < spec.MinListLen {
			n = spec.MinListLen
		}
		if n > spec.NumDocs {
			n = spec.NumDocs
		}
		term := TermName(r)
		ids := GenList(rng, n, uint32(spec.NumDocs))
		freqs := make([]uint32, len(ids))
		for i := range freqs {
			freqs[i] = 1 + uint32(rng.Intn(4))
		}
		if err := b.AddPostings(term, ids, freqs); err != nil {
			return nil, err
		}
		c.Terms[r] = term
		c.Sizes[r] = len(ids)
	}
	// Document lengths: lognormal-ish around 400 tokens (web pages).
	maxDoc := uint32(spec.NumDocs - 1)
	b.SetDocLen(maxDoc, 400)
	for d := 0; d < spec.NumDocs; d += 1 + spec.NumDocs/100_000 {
		b.SetDocLen(uint32(d), uint32(100+rng.Intn(700)))
	}
	ix, err := b.Build()
	if err != nil {
		return nil, err
	}
	if ix.AvgDocLen == 0 {
		ix.AvgDocLen = 400
	}
	c.Index = ix
	return c, nil
}

// GenList generates n strictly ascending docIDs spread over [0, universe)
// using the random-gap method; the result may be slightly shorter than n
// when the universe is tight.
func GenList(rng *rand.Rand, n int, universe uint32) []uint32 {
	if n <= 0 {
		return nil
	}
	if uint32(n) > universe {
		n = int(universe)
	}
	avgGap := float64(universe) / float64(n)
	out := make([]uint32, 0, n)
	cur := int64(-1)
	for len(out) < n {
		gap := int64(1)
		if avgGap > 1 {
			gap = 1 + int64(rng.ExpFloat64()*(avgGap-1)+0.5)
		}
		cur += gap
		if cur >= int64(universe) {
			break
		}
		out = append(out, uint32(cur))
	}
	return out
}

// GenPair generates an overlapping pair of ascending lists: the shorter
// with nShort elements, the longer with nLong, sharing ~overlap of the
// shorter list. Used by the Figure 8/12/13 microbenchmarks, which select
// pairs by length ratio.
func GenPair(rng *rand.Rand, nShort, nLong int, universe uint32, overlap float64) (short, long []uint32) {
	long = GenList(rng, nLong, universe)
	if len(long) == 0 {
		return nil, nil
	}
	// Short list: a mix of elements sampled from long (the overlap) and
	// fresh values (offset by 1 from a long element when possible so they
	// miss).
	seen := make(map[uint32]bool, nShort)
	short = make([]uint32, 0, nShort)
	for len(short) < nShort && len(seen) < len(long) {
		v := long[rng.Intn(len(long))]
		if rng.Float64() >= overlap {
			v++ // usually misses; may accidentally hit, which is fine
		}
		if !seen[v] {
			seen[v] = true
			short = append(short, v)
		}
	}
	sort.Slice(short, func(i, j int) bool { return short[i] < short[j] })
	return short, long
}

// Query is one synthetic search request.
type Query struct {
	Terms []string
}

// QuerySpec parameterizes query-log synthesis.
type QuerySpec struct {
	// NumQueries is the log length (the paper runs 10,000).
	NumQueries int
	// PopularityAlpha skews term selection toward frequent terms (query
	// terms are popular terms; 0 = uniform).
	PopularityAlpha float64
	// StopwordRanks excludes the most frequent term ranks from query
	// sampling, modeling the stopword removal standard in IR pipelines
	// (the TREC efficiency-track queries the paper replays are real user
	// queries; function words never reach the index).
	StopwordRanks int
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultQuerySpec matches the paper's 10K-query log, dropping the top
// 0.5% of term ranks as stopwords.
func DefaultQuerySpec() QuerySpec {
	return QuerySpec{NumQueries: 10_000, PopularityAlpha: 0.45, Seed: 2}
}

// termCountDist is Figure 11's distribution: P(#terms = k).
var termCountDist = []struct {
	terms int
	p     float64
}{
	{2, 0.27}, {3, 0.33}, {4, 0.24}, {5, 0.09}, {6, 0.04},
	{7, 0.015}, {8, 0.01}, {9, 0.005},
}

// SampleTermCount draws a query length from Figure 11's distribution.
func SampleTermCount(rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for _, e := range termCountDist {
		acc += e.p
		if u < acc {
			return e.terms
		}
	}
	return 10
}

// GenerateQueryLog synthesizes a query log over the corpus: term counts
// from Figure 11, terms drawn Zipf-weighted by popularity rank without
// replacement within a query.
func GenerateQueryLog(c *Corpus, spec QuerySpec) []Query {
	rng := rand.New(rand.NewSource(spec.Seed))
	out := make([]Query, spec.NumQueries)
	nTerms := len(c.Terms)
	base := spec.StopwordRanks
	if base >= nTerms {
		base = nTerms - 1
	}
	sampleable := nTerms - base
	for q := range out {
		k := SampleTermCount(rng)
		if k > sampleable {
			k = sampleable
		}
		used := make(map[int]bool, k)
		terms := make([]string, 0, k)
		for len(terms) < k {
			r := base + sampleZipfRank(rng, sampleable, spec.PopularityAlpha)
			if used[r] {
				continue
			}
			used[r] = true
			terms = append(terms, c.Terms[r])
		}
		out[q] = Query{Terms: terms}
	}
	return out
}

// sampleZipfRank draws a rank in [0, n) with P(r) proportional to
// 1/(r+1)^alpha via inverse-CDF on the continuous approximation.
func sampleZipfRank(rng *rand.Rand, n int, alpha float64) int {
	if alpha <= 0 {
		return rng.Intn(n)
	}
	// Continuous Zipf: CDF^-1(u) ~ ((n+1)^(1-a) - 1)*u + 1)^(1/(1-a)) - 1
	// for a != 1; handle a == 1 with the exponential form.
	u := rng.Float64()
	if math.Abs(alpha-1) < 1e-9 {
		r := int(math.Exp(u*math.Log(float64(n)+1))) - 1
		if r >= n {
			r = n - 1
		}
		return r
	}
	oneMinus := 1 - alpha
	x := math.Pow((math.Pow(float64(n)+1, oneMinus)-1)*u+1, 1/oneMinus) - 1
	r := int(x)
	if r >= n {
		r = n - 1
	}
	if r < 0 {
		r = 0
	}
	return r
}
