package workload

import (
	"testing"

	"griffin/internal/index"
)

func partitionTestCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := GenerateCorpus(CorpusSpec{
		NumDocs:    50_000,
		NumTerms:   60,
		MaxListLen: 20_000,
		MinListLen: 200,
		Alpha:      0.9,
		Codec:      index.CodecEF,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPartitionIndexCoversEveryPosting(t *testing.T) {
	c := partitionTestCorpus(t)
	for _, shards := range []int{1, 2, 3, 4, 8} {
		ixs, err := PartitionCorpus(c, shards)
		if err != nil {
			t.Fatal(err)
		}
		if len(ixs) != shards {
			t.Fatalf("shards=%d: got %d indexes", shards, len(ixs))
		}
		for _, term := range c.Terms {
			gpl, ok := c.Index.Lookup(term)
			if !ok {
				t.Fatalf("term %q missing from source index", term)
			}
			want := gpl.DocIDs()
			wantFreqs := make([]uint32, len(want))
			for i := range want {
				wantFreqs[i] = gpl.FreqOf(i)
			}
			got := make(map[uint32]uint32, len(want))
			total := 0
			for s, six := range ixs {
				spl, ok := six.Lookup(term)
				if !ok {
					continue
				}
				if spl.GlobalN != gpl.N {
					t.Fatalf("shards=%d term %q shard %d: GlobalN=%d want %d",
						shards, term, s, spl.GlobalN, gpl.N)
				}
				for i, d := range spl.DocIDs() {
					if ShardOf(d, shards) != s {
						t.Fatalf("shards=%d: doc %d on wrong shard %d", shards, d, s)
					}
					if _, dup := got[d]; dup {
						t.Fatalf("shards=%d term %q: doc %d appears twice", shards, term, d)
					}
					got[d] = spl.FreqOf(i)
					total++
				}
			}
			if total != len(want) {
				t.Fatalf("shards=%d term %q: %d postings across shards, want %d",
					shards, term, total, len(want))
			}
			for i, d := range want {
				if f, ok := got[d]; !ok || f != wantFreqs[i] {
					t.Fatalf("shards=%d term %q doc %d: freq %d/%v want %d",
						shards, term, d, f, ok, wantFreqs[i])
				}
			}
		}
	}
}

func TestPartitionIndexKeepsGlobalStats(t *testing.T) {
	c := partitionTestCorpus(t)
	ixs, err := PartitionCorpus(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s, six := range ixs {
		if six.NumDocs != c.Index.NumDocs {
			t.Errorf("shard %d: NumDocs=%d want %d", s, six.NumDocs, c.Index.NumDocs)
		}
		if six.AvgDocLen != c.Index.AvgDocLen {
			t.Errorf("shard %d: AvgDocLen=%v want %v", s, six.AvgDocLen, c.Index.AvgDocLen)
		}
		if len(six.DocLens) != len(c.Index.DocLens) {
			t.Errorf("shard %d: %d doc lens, want %d", s, len(six.DocLens), len(c.Index.DocLens))
		}
	}
}

func TestPartitionIndexDeterministic(t *testing.T) {
	c := partitionTestCorpus(t)
	a, err := PartitionCorpus(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionCorpus(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	for s := range a {
		for _, term := range c.Terms {
			pa, oka := a[s].Lookup(term)
			pb, okb := b[s].Lookup(term)
			if oka != okb {
				t.Fatalf("shard %d term %q: presence differs", s, term)
			}
			if !oka {
				continue
			}
			da, db := pa.DocIDs(), pb.DocIDs()
			if len(da) != len(db) {
				t.Fatalf("shard %d term %q: lengths differ", s, term)
			}
			for i := range da {
				if da[i] != db[i] {
					t.Fatalf("shard %d term %q: docID[%d] %d != %d", s, term, i, da[i], db[i])
				}
			}
		}
	}
}

func TestPartitionIndexRejectsBadShardCount(t *testing.T) {
	c := partitionTestCorpus(t)
	if _, err := PartitionCorpus(c, 0); err == nil {
		t.Fatal("expected error for 0 shards")
	}
	if _, err := PartitionCorpus(c, -2); err == nil {
		t.Fatal("expected error for negative shards")
	}
}
