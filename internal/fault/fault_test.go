package fault

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if h := in.DeviceHook("s0r0"); h != nil {
		t.Fatalf("nil injector returned non-nil hook")
	}
	if d, err := in.AdmitQuery("s0r0", 0); d != 0 || err != nil {
		t.Fatalf("nil injector admitted with stall=%v err=%v", d, err)
	}
	if d := in.ResetRemaining("s0r0", 0); d != 0 {
		t.Fatalf("nil injector reports reset remaining %v", d)
	}
	if got := in.Log(); got != nil {
		t.Fatalf("nil injector has log %v", got)
	}
	if in.Total() != 0 || in.Counts() != nil || in.Seed() != 0 {
		t.Fatalf("nil injector has non-zero telemetry")
	}
}

func TestHashUnitRangeAndDeterminism(t *testing.T) {
	for seq := int64(0); seq < 1000; seq++ {
		v := hashUnit(42, "s1r0", uint64(KernelLaunch), seq)
		if v < 0 || v >= 1 {
			t.Fatalf("hashUnit out of range: %v", v)
		}
		if v != hashUnit(42, "s1r0", uint64(KernelLaunch), seq) {
			t.Fatalf("hashUnit not deterministic at seq %d", seq)
		}
	}
	// Different seeds must decorrelate.
	same := 0
	for seq := int64(0); seq < 1000; seq++ {
		a := hashUnit(1, "s0r0", uint64(TransferError), seq) < 0.05
		b := hashUnit(2, "s0r0", uint64(TransferError), seq) < 0.05
		if a && b {
			same++
		}
	}
	if same > 25 {
		t.Fatalf("seeds look correlated: %d joint hits at 5%% rate", same)
	}
}

func TestDeviceHookRatesAndClasses(t *testing.T) {
	in := NewInjector(Plan{Seed: 7, Rules: []Rule{
		{Kind: KernelLaunch, Rate: 0.1},
		{Kind: TransferError, Rate: 0.1},
	}})
	hook := in.DeviceHook("s0r0")
	const n = 5000
	var kernel, transfer int
	for i := 0; i < n; i++ {
		class := gpu.CopyEngine
		if i%2 == 0 {
			class = gpu.ComputeEngine
		}
		if err := hook(class, 0); err != nil {
			var df *DeviceFault
			if !errors.As(err, &df) {
				t.Fatalf("hook error is not a DeviceFault: %v", err)
			}
			if df.Kind == KernelLaunch {
				kernel++
			} else if df.Kind == TransferError {
				transfer++
			}
			if class == gpu.ComputeEngine && df.Kind == TransferError {
				t.Fatalf("transfer error on compute submission")
			}
			if class == gpu.CopyEngine && df.Kind == KernelLaunch {
				t.Fatalf("kernel-launch failure on copy submission")
			}
		}
	}
	// ~10% of 2500 opportunities each; allow wide tolerance.
	if kernel < 150 || kernel > 350 {
		t.Fatalf("kernel-launch fired %d times, want ~250", kernel)
	}
	if transfer < 150 || transfer > 350 {
		t.Fatalf("transfer-error fired %d times, want ~250", transfer)
	}
	if in.Total() != int64(kernel+transfer) {
		t.Fatalf("Total %d != observed %d", in.Total(), kernel+transfer)
	}
}

func TestDeviceResetWindow(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, Rules: []Rule{
		{Kind: DeviceReset, Rate: 1, Until: 1, Stall: 2 * time.Millisecond},
	}})
	hook := in.DeviceHook("s0r0")
	err := hook(gpu.ComputeEngine, time.Millisecond)
	var df *DeviceFault
	if !errors.As(err, &df) || df.Kind != DeviceReset {
		t.Fatalf("first submission did not trigger the reset: %v", err)
	}
	if got := in.ResetRemaining("s0r0", time.Millisecond); got != 2*time.Millisecond {
		t.Fatalf("ResetRemaining at trigger = %v, want 2ms", got)
	}
	if got := in.ResetRemaining("s0r0", 2*time.Millisecond); got != time.Millisecond {
		t.Fatalf("ResetRemaining mid-window = %v, want 1ms", got)
	}
	// Submissions inside the window fail fast without new log events.
	if err := hook(gpu.ComputeEngine, 2*time.Millisecond); !IsDeviceFault(err) {
		t.Fatalf("mid-reset submission did not fail: %v", err)
	}
	if got := len(in.Log()); got != 1 {
		t.Fatalf("mid-reset failures logged extra events: %d", got)
	}
	// After the window (rule is Until:1 so no re-fire) the device recovers.
	if err := hook(gpu.ComputeEngine, 4*time.Millisecond); err != nil {
		t.Fatalf("post-reset submission failed: %v", err)
	}
	if got := in.ResetRemaining("s0r0", 4*time.Millisecond); got != 0 {
		t.Fatalf("ResetRemaining after recovery = %v", got)
	}
}

func TestAdmitQueryStallAndEngineError(t *testing.T) {
	in := NewInjector(Plan{Seed: 11, Rules: []Rule{
		{Kind: ShardStall, Rate: 0.2, Stall: 5 * time.Millisecond},
		{Kind: EngineError, Rate: 0.1},
	}})
	var stalls, errs int
	for i := 0; i < 2000; i++ {
		d, err := in.AdmitQuery("s1r1", 0)
		if err != nil {
			if !IsEngineFault(err) {
				t.Fatalf("admission error is not an EngineFault: %v", err)
			}
			errs++
		}
		if d != 0 {
			if d != 5*time.Millisecond {
				t.Fatalf("stall duration %v, want 5ms", d)
			}
			stalls++
		}
	}
	if errs < 120 || errs > 280 {
		t.Fatalf("engine errors fired %d times, want ~200", errs)
	}
	if stalls < 250 || stalls > 550 {
		t.Fatalf("stalls fired %d times, want ~400 (minus engine-error overlap)", stalls)
	}
}

func TestScheduleWindow(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Rules: []Rule{
		{Kind: EngineError, Rate: 1, After: 10, Until: 20},
	}})
	for i := 0; i < 30; i++ {
		_, err := in.AdmitQuery("s0r0", 0)
		inWindow := i >= 10 && i < 20
		if (err != nil) != inWindow {
			t.Fatalf("opportunity %d: err=%v, want fire=%v", i, err, inWindow)
		}
	}
}

// TestLogDeterministicUnderConcurrency drives the same plan from many
// goroutines twice and checks the sorted logs match exactly: outcomes
// must depend only on (seed, site, seq), never on interleaving.
func TestLogDeterministicUnderConcurrency(t *testing.T) {
	run := func() []Event {
		in := NewInjector(Plan{Seed: 99, Rules: []Rule{
			{Kind: KernelLaunch, Rate: 0.1},
			{Kind: EngineError, Rate: 0.05},
		}})
		var wg sync.WaitGroup
		for site := 0; site < 4; site++ {
			name := fmt.Sprintf("s%dr0", site)
			hook := in.DeviceHook(name)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					_ = hook(gpu.ComputeEngine, 0)
					_, _ = in.AdmitQuery(name, 0)
				}
			}()
		}
		wg.Wait()
		return in.Log()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatalf("plan injected nothing")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault logs differ across identical runs: %d vs %d events", len(a), len(b))
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 10 * time.Millisecond, Probes: 2})
	now := time.Duration(0)
	if !b.Allow(now) || b.State(now) != Closed {
		t.Fatalf("new breaker not closed")
	}
	// Two failures: still closed (threshold 3).
	b.Record(now, false)
	b.Record(now, false)
	if b.State(now) != Closed {
		t.Fatalf("breaker tripped below threshold")
	}
	// A success resets the strike count.
	b.Record(now, true)
	b.Record(now, false)
	b.Record(now, false)
	if b.State(now) != Closed {
		t.Fatalf("strike count not reset by success")
	}
	// Third consecutive failure trips it.
	b.Record(now, false)
	if b.State(now) != Open || b.Allow(now) {
		t.Fatalf("breaker did not trip at threshold")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	// Cooldown not yet expired.
	if b.Allow(now + 5*time.Millisecond) {
		t.Fatalf("breaker admitted during cooldown")
	}
	// Cooldown expired: half-open probe admitted.
	now += 10 * time.Millisecond
	if b.State(now) != HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State(now))
	}
	if !b.Allow(now) {
		t.Fatalf("probe refused after cooldown")
	}
	// Probe failure re-opens.
	b.Record(now, false)
	if b.State(now) != Open || b.Trips() != 2 {
		t.Fatalf("failed probe did not re-open (state=%v trips=%d)", b.State(now), b.Trips())
	}
	// Recover: two probe successes re-close.
	now += 10 * time.Millisecond
	if !b.Allow(now) {
		t.Fatalf("second probe refused")
	}
	b.Record(now, true)
	if b.State(now) != HalfOpen {
		t.Fatalf("breaker closed after one probe, want two")
	}
	b.Record(now, true)
	if b.State(now) != Closed || !b.Allow(now) {
		t.Fatalf("breaker did not re-close after probe successes")
	}
}

// TestBreakerConcurrentHalfOpenProbes races many goroutines against a
// half-open breaker: exactly Probes of them may be admitted as the
// probe, a probe failure re-opens cleanly with no stuck reservations,
// and a cancelled reservation frees the slot for another caller.
func TestBreakerConcurrentHalfOpenProbes(t *testing.T) {
	const attempts = 64
	for seed := 0; seed < 3; seed++ {
		b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 10 * time.Millisecond, Probes: 1})
		b.Record(0, false) // trip
		if b.State(0) != Open {
			t.Fatalf("seed %d: breaker not open after threshold failure", seed)
		}
		now := 10 * time.Millisecond

		var wg sync.WaitGroup
		admitted := make([]bool, attempts)
		for i := 0; i < attempts; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				admitted[i] = b.Allow(now)
			}(i)
		}
		wg.Wait()
		wins := 0
		for _, ok := range admitted {
			if ok {
				wins++
			}
		}
		if wins != 1 {
			t.Fatalf("seed %d: %d goroutines admitted as the half-open probe, want exactly 1", seed, wins)
		}

		// The probe fails: the breaker re-opens cleanly and refuses
		// everything until the next cooldown.
		b.Record(now, false)
		if b.State(now) != Open || b.Trips() != 2 {
			t.Fatalf("seed %d: failed probe did not re-open (state=%v trips=%d)", seed, b.State(now), b.Trips())
		}
		if b.Allow(now + 5*time.Millisecond) {
			t.Fatalf("seed %d: admitted during post-probe cooldown", seed)
		}

		// Next half-open window: the slot is free again (no reservation
		// leaked from the failed round); a cancelled reservation frees the
		// slot, and a successful probe re-closes.
		now += 10 * time.Millisecond
		if !b.Allow(now) {
			t.Fatalf("seed %d: probe slot leaked from previous round", seed)
		}
		if b.Allow(now) {
			t.Fatalf("seed %d: second concurrent probe admitted", seed)
		}
		b.Cancel()
		if !b.Allow(now) {
			t.Fatalf("seed %d: cancelled reservation did not free the slot", seed)
		}
		b.Record(now, true)
		if b.State(now) != Closed || !b.Allow(now) {
			t.Fatalf("seed %d: breaker did not re-close after probe success", seed)
		}
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: -1})
	for i := 0; i < 10; i++ {
		b.Record(0, false)
	}
	if !b.Allow(0) || b.State(0) != Closed || b.Trips() != 0 {
		t.Fatalf("disabled breaker tripped")
	}
}

func TestRuntimeHookFailsSubmission(t *testing.T) {
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	rt := gpu.NewRuntime(dev, 1)
	in := NewInjector(Plan{Seed: 5, Rules: []Rule{{Kind: KernelLaunch, Rate: 1, Until: 1}}})
	rt.SetSubmitHook(in.DeviceHook("s0r0"))
	h := rt.Admit()
	defer h.Release()
	err := h.Submit(gpu.ComputeEngine, func(s *gpu.Stream) error { return nil })
	if !IsDeviceFault(err) {
		t.Fatalf("hooked submission error = %v, want injected DeviceFault", err)
	}
	// The failed item must not have occupied the lane or charged time.
	if got := h.Stream().Elapsed(); got != 0 {
		t.Fatalf("failed submission advanced the stream clock: %v", got)
	}
	// Rule exhausted (Until 1): next submission succeeds.
	if err := h.Submit(gpu.ComputeEngine, func(s *gpu.Stream) error { return nil }); err != nil {
		t.Fatalf("second submission failed: %v", err)
	}
}
