package fault

import (
	"fmt"
	"testing"
)

func TestStorageOpNilInjector(t *testing.T) {
	var in *Injector
	if f := in.StorageOp("ingest.wal.append", 0); f != nil {
		t.Fatalf("nil injector injected storage fault %v", f)
	}
}

func TestStorageOpKindsAndDeterminism(t *testing.T) {
	plan := Plan{Seed: 11, Rules: []Rule{
		{Kind: TornWrite, Rate: 0.05},
		{Kind: ShortWrite, Rate: 0.05},
		{Kind: BitFlip, Rate: 0.05},
	}}
	run := func() []StorageFault {
		in := NewInjector(plan)
		var fired []StorageFault
		for i := 0; i < 2000; i++ {
			if f := in.StorageOp("ingest.wal.append", 0); f != nil {
				fired = append(fired, *f)
			}
		}
		return fired
	}
	a := run()
	bb := run()
	if len(a) == 0 {
		t.Fatalf("no storage faults fired at 5%% rates over 2000 ops")
	}
	if len(a) != len(bb) {
		t.Fatalf("storage fault stream not reproducible: %d vs %d", len(a), len(bb))
	}
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("fault %d differs across runs: %+v vs %+v", i, a[i], bb[i])
		}
		if a[i].Frac < 0 || a[i].Frac >= 1 {
			t.Fatalf("fault %d Frac out of range: %v", i, a[i].Frac)
		}
		switch a[i].Kind {
		case TornWrite, ShortWrite, BitFlip:
		default:
			t.Fatalf("fault %d has non-storage kind %v", i, a[i].Kind)
		}
	}
}

func TestStorageOpWindowPinpointsOneOp(t *testing.T) {
	// A Rate-1 rule with a one-op window must fire exactly at that
	// opportunity — the mechanism crash-point tests use to place a torn
	// write at a chosen record.
	in := NewInjector(Plan{Seed: 3, Rules: []Rule{
		{Kind: TornWrite, Rate: 1, After: 7, Until: 8},
	}})
	for i := 0; i < 20; i++ {
		f := in.StorageOp("s0.wal.append", 0)
		if (i == 7) != (f != nil) {
			t.Fatalf("op %d: fault=%v, want fired only at op 7", i, f)
		}
		if f != nil && f.Kind != TornWrite {
			t.Fatalf("op %d fired %v, want torn-write", i, f.Kind)
		}
	}
}

func TestStorageOpSitesIndependent(t *testing.T) {
	// Two sites draw independent opportunity streams: interleaving ops
	// across sites must not shift either site's decisions.
	plan := Plan{Seed: 5, Rules: []Rule{{Kind: BitFlip, Rate: 0.1}}}
	solo := NewInjector(plan)
	var want []int
	for i := 0; i < 500; i++ {
		if solo.StorageOp("a.wal.append", 0) != nil {
			want = append(want, i)
		}
	}
	mixed := NewInjector(plan)
	var got []int
	for i := 0; i < 500; i++ {
		mixed.StorageOp("b.wal.append", 0) // interleave a second site
		if mixed.StorageOp("a.wal.append", 0) != nil {
			got = append(got, i)
		}
	}
	if fmt.Sprint(want) != fmt.Sprint(got) {
		t.Fatalf("site a's stream shifted by site b's traffic: %v vs %v", want, got)
	}
}

func TestStorageKindsDoNotShiftDeviceStreams(t *testing.T) {
	// Appending TornWrite/ShortWrite/BitFlip to the Kind enum must not
	// move existing device-fault decisions: the kinds hash by value and
	// the new ones were appended after EngineError.
	if TornWrite <= EngineError || ShortWrite <= TornWrite || BitFlip <= ShortWrite {
		t.Fatalf("storage kinds not appended after EngineError: %d %d %d",
			TornWrite, ShortWrite, BitFlip)
	}
	// Pin the absolute enum values: reordering would silently reshuffle
	// every committed seeded fault stream.
	if KernelLaunch != 0 || TransferError != 1 || DeviceReset != 2 ||
		ShardStall != 3 || EngineError != 4 ||
		TornWrite != 5 || ShortWrite != 6 || BitFlip != 7 {
		t.Fatalf("Kind enum values moved")
	}
}

func TestStorageFaultErrorAndPredicate(t *testing.T) {
	err := error(&StorageFault{Kind: TornWrite, Site: "ingest.wal.append", Frac: 0.5})
	if !IsStorageFault(err) {
		t.Fatalf("IsStorageFault(StorageFault) = false")
	}
	if IsStorageFault(fmt.Errorf("plain")) {
		t.Fatalf("IsStorageFault(plain error) = true")
	}
	if IsDeviceFault(err) || IsEngineFault(err) {
		t.Fatalf("storage fault classified as device/engine fault")
	}
	wrapped := fmt.Errorf("append: %w", err)
	if !IsStorageFault(wrapped) {
		t.Fatalf("IsStorageFault(wrapped) = false")
	}
	want := "fault: injected torn-write at ingest.wal.append"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}
