package fault

import (
	"strings"
	"testing"

	"griffin/internal/gpu"
)

// DeviceSite must leave single-device site names untouched — the site
// string feeds the firing hash, so renaming it would silently change
// every seeded fault stream — and must make multi-device sites unique
// per device.
func TestDeviceSiteNaming(t *testing.T) {
	if got := DeviceSite("s2r1", 0, 1); got != "s2r1" {
		t.Fatalf("single-device site renamed to %q", got)
	}
	if got := DeviceSite("s2r1", 0, 0); got != "s2r1" {
		t.Fatalf("degenerate device count renamed site to %q", got)
	}
	if got := DeviceSite("s2r1", 0, 4); got != "s2r1.g0" {
		t.Fatalf("device 0 of 4 named %q", got)
	}
	if got := DeviceSite("s2r1", 3, 4); got != "s2r1.g3" {
		t.Fatalf("device 3 of 4 named %q", got)
	}
}

// Per-device sites draw independent deterministic fault streams, and
// SiteCounts attributes fired faults to the device they hit.
func TestPerDeviceFaultStreamsDeterministic(t *testing.T) {
	run := func() ([]Event, map[string]int64) {
		in := NewInjector(Plan{Seed: 99, Rules: []Rule{{Kind: KernelLaunch, Rate: 0.3}}})
		for d := 0; d < 2; d++ {
			hook := in.DeviceHook(DeviceSite("s0r0", d, 2))
			for i := 0; i < 200; i++ {
				_ = hook(gpu.ComputeEngine, 0)
			}
		}
		return in.Log(), in.SiteCounts()
	}
	log1, counts1 := run()
	log2, counts2 := run()
	if len(log1) == 0 {
		t.Fatal("rate 0.3 over 400 opportunities fired nothing")
	}
	if len(log1) != len(log2) {
		t.Fatalf("runs fired %d vs %d faults", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("event %d differs across identical runs: %+v vs %+v", i, log1[i], log2[i])
		}
	}
	if counts1["s0r0.g0"] == 0 || counts1["s0r0.g1"] == 0 {
		t.Fatalf("site counts missing a device: %v", counts1)
	}
	if counts1["s0r0.g0"]+counts1["s0r0.g1"] != int64(len(log1)) {
		t.Fatalf("site counts %v do not sum to log length %d", counts1, len(log1))
	}
	for k, v := range counts1 {
		if counts2[k] != v {
			t.Fatalf("site counts differ across runs: %v vs %v", counts1, counts2)
		}
		if !strings.HasPrefix(k, "s0r0.g") {
			t.Fatalf("unexpected site %q", k)
		}
	}

	// The two devices' streams differ from each other (the site is in the
	// hash): identical streams would mean the device id is ignored.
	var seq0, seq1 []int64
	for _, e := range log1 {
		if e.Site == "s0r0.g0" {
			seq0 = append(seq0, e.Seq)
		} else {
			seq1 = append(seq1, e.Seq)
		}
	}
	same := len(seq0) == len(seq1)
	if same {
		for i := range seq0 {
			if seq0[i] != seq1[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("device 0 and device 1 drew identical fault sequences")
	}
}
