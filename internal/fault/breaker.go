package fault

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState uint8

const (
	// Closed: traffic flows; failures are counted.
	Closed BreakerState = iota
	// Open: traffic is refused until the cooldown expires.
	Open
	// HalfOpen: a bounded number of probe requests are admitted; enough
	// successes re-close the breaker, any failure re-opens it.
	HalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	default:
		return "half-open"
	}
}

// BreakerConfig tunes one replica's circuit breaker. The zero value
// selects defaults (Threshold 3, Cooldown 5ms, Probes 1); Threshold < 0
// disables the breaker entirely (Allow always true).
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker.
	Threshold int
	// Cooldown is how long (in the cluster's modeled time) the breaker
	// stays Open before admitting half-open probes.
	Cooldown time.Duration
	// Probes is how many consecutive probe successes re-close a
	// half-open breaker.
	Probes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold == 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Millisecond
	}
	if c.Probes <= 0 {
		c.Probes = 1
	}
	return c
}

// Breaker is a per-replica circuit breaker over the cluster's modeled
// timeline: "now" is a time.Duration the caller supplies (a query
// arrival time), not the wall clock, so breaker trips and recoveries are
// as deterministic as the workload that drives them. Safe for
// concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	strikes   int // consecutive failures while Closed
	successes int // consecutive probe successes while HalfOpen
	probing   int // probe slots currently reserved while HalfOpen
	openUntil time.Duration
	trips     int64
}

// NewBreaker returns a breaker with cfg's defaults applied.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Disabled reports whether the breaker is configured off.
func (b *Breaker) Disabled() bool { return b.cfg.Threshold < 0 }

// Allow reports whether a request may proceed at modeled time now. An
// Open breaker whose cooldown has expired transitions to HalfOpen and
// admits the probe. A HalfOpen breaker reserves a probe slot per
// admission and holds at most Probes outstanding reservations — two
// concurrent callers cannot both be admitted as *the* probe. Each
// admitted probe must settle its reservation with Record (an outcome)
// or Cancel (the attempt never executed).
func (b *Breaker) Allow(now time.Duration) bool {
	if b.Disabled() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if now >= b.openUntil {
			b.state = HalfOpen
			b.successes = 0
			b.probing = 1
			return true
		}
		return false
	default: // HalfOpen: admit up to Probes outstanding reservations
		if b.probing >= b.cfg.Probes {
			return false
		}
		b.probing++
		return true
	}
}

// Cancel releases a probe slot reserved by Allow when the admitted
// attempt never executed (e.g. shed upstream before reaching the
// replica), so an unused reservation cannot wedge a HalfOpen breaker.
// No-op in any other state.
func (b *Breaker) Cancel() {
	if b.Disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen && b.probing > 0 {
		b.probing--
	}
}

// Record reports one request outcome at modeled time now. Failures
// accumulate toward the trip threshold (Closed) or re-open immediately
// (HalfOpen); successes reset the strike count or, after enough probes,
// re-close the breaker.
func (b *Breaker) Record(now time.Duration, ok bool) {
	if b.Disabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if ok {
			b.strikes = 0
			return
		}
		b.strikes++
		if b.strikes >= b.cfg.Threshold {
			b.trip(now)
		}
	case Open:
		// A straggler finishing after the trip; ignore.
	case HalfOpen:
		if b.probing > 0 {
			b.probing--
		}
		if !ok {
			b.trip(now)
			return
		}
		b.successes++
		if b.successes >= b.cfg.Probes {
			b.state = Closed
			b.strikes = 0
			b.probing = 0
		}
	}
}

// trip opens the breaker. Caller holds b.mu.
func (b *Breaker) trip(now time.Duration) {
	b.state = Open
	b.openUntil = now + b.cfg.Cooldown
	b.strikes = 0
	b.successes = 0
	b.probing = 0
	b.trips++
}

// State returns the breaker's position at modeled time now (an Open
// breaker past its cooldown reports HalfOpen without mutating).
func (b *Breaker) State(now time.Duration) BreakerState {
	if b.Disabled() {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && now >= b.openUntil {
		return HalfOpen
	}
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
