// Package fault is a seeded, deterministic fault-injection framework for
// the simulated Griffin serving stack. A Plan declares fault Rules —
// kernel-launch failures, device resets, PCIe transfer errors, shard
// stalls, whole-engine errors — each with a firing rate and an optional
// per-site opportunity window; an Injector evaluates the plan at every
// injection point (a device work-item submission, a sub-query admission)
// and decides whether the fault fires.
//
// Determinism is the design center, for the same reason the simulator
// exists at all: a modeled device lets you inject hardware events that
// are unobservable (and unrepeatable) on real silicon. Decisions are not
// drawn from a shared RNG — which would make outcomes depend on goroutine
// interleaving — but hashed from (plan seed, site, fault kind, per-site
// opportunity index). Two runs of the same seeded workload therefore
// inject byte-identical fault sequences even though shard sub-queries
// execute on concurrent goroutines, because each site's opportunity order
// is fixed by the modeled workload, not by wall-clock scheduling.
//
// A nil *Injector is the universal off switch: every method is nil-safe
// and returns the zero answer, so un-faulted configurations pay a single
// pointer test per injection point.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"griffin/internal/gpu"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// KernelLaunch fails one compute-engine work item (the CUDA
	// "launch failed" class: a kernel that never starts).
	KernelLaunch Kind = iota
	// TransferError fails one copy-engine work item (a PCIe transfer
	// that aborts mid-flight).
	TransferError
	// DeviceReset takes the whole device down for a modeled window
	// (Rule.Stall, default DefaultResetWindow): every work item submitted
	// while the reset is in progress fails fast.
	DeviceReset
	// ShardStall inflates one sub-query's modeled latency by Rule.Stall
	// (default DefaultStall) — the slow-shard pathology hedged requests
	// exist to absorb.
	ShardStall
	// EngineError fails a whole sub-query at admission (a crashed or
	// wedged replica process, before any device work is attempted).
	EngineError
	// TornWrite persists only a prefix of one storage record: the frame
	// reaches the disk surface cut mid-record, the canonical power-loss
	// artifact a WAL reader must truncate at.
	TornWrite
	// ShortWrite persists only a prefix of the bytes a sync was asked to
	// flush — several buffered records survive, the tail does not.
	ShortWrite
	// BitFlip corrupts one bit of a storage record after the length
	// prefix, the silent-corruption class checksums exist to catch.
	BitFlip

	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KernelLaunch:
		return "kernel-launch"
	case TransferError:
		return "transfer-error"
	case DeviceReset:
		return "device-reset"
	case ShardStall:
		return "shard-stall"
	case EngineError:
		return "engine-error"
	case TornWrite:
		return "torn-write"
	case ShortWrite:
		return "short-write"
	case BitFlip:
		return "bit-flip"
	default:
		return fmt.Sprintf("fault(%d)", uint8(k))
	}
}

// Default modeled durations for duration-bearing faults.
const (
	// DefaultResetWindow is how long a DeviceReset keeps the device down.
	DefaultResetWindow = 2 * time.Millisecond
	// DefaultStall is the latency a ShardStall adds to a sub-query.
	DefaultStall = time.Millisecond
)

// Rule is one fault class's firing schedule.
type Rule struct {
	// Kind selects the fault class.
	Kind Kind
	// Rate is the firing probability per opportunity, in [0,1]. An
	// opportunity is one device work-item submission (KernelLaunch,
	// TransferError, DeviceReset) or one sub-query admission (ShardStall,
	// EngineError) at a site.
	Rate float64
	// After and Until bound the rule to a per-site opportunity window:
	// the rule is live for opportunities n with After <= n < Until
	// (Until == 0 means unbounded). Both count per site, so a schedule
	// like {After: 100, Until: 200} injects a mid-run fault burst.
	After, Until int64
	// Stall is the fault's modeled duration: the reset window for
	// DeviceReset, the added latency for ShardStall. Zero selects the
	// kind's default.
	Stall time.Duration
}

// Plan is a complete fault-injection schedule.
type Plan struct {
	// Seed drives every firing decision. The same seed over the same
	// modeled workload reproduces the same injected-fault log exactly.
	Seed int64
	// Rules are the live fault schedules. An empty rule set injects
	// nothing.
	Rules []Rule
}

// Enabled reports whether the plan can inject anything.
func (p Plan) Enabled() bool { return len(p.Rules) > 0 }

// Event is one injected fault, the unit of the deterministic fault log.
type Event struct {
	// Site is the injection site ("s2r0" for shard 2 replica 0).
	Site string
	// Seq is the per-site opportunity index at which the fault fired.
	Seq int64
	// Kind is the fault class.
	Kind Kind
	// At is the site's position on its modeled timeline when the fault
	// fired (zero for untimed paths).
	At time.Duration
}

// DeviceFault is the error an injected device-level fault produces; it
// propagates from the runtime's submit hook through the executor to the
// engine, which answers it by re-planning the query on the CPU.
type DeviceFault struct {
	Kind Kind
	Site string
}

// Error implements error.
func (e *DeviceFault) Error() string {
	return fmt.Sprintf("fault: injected %s at %s", e.Kind, e.Site)
}

// EngineFault is the error an injected whole-engine fault produces: the
// sub-query fails before any work runs, so the cluster's answer is a
// sibling-replica retry, not a CPU fallback.
type EngineFault struct {
	Site string
}

// Error implements error.
func (e *EngineFault) Error() string {
	return fmt.Sprintf("fault: injected engine-error at %s", e.Site)
}

// StorageFault is the error an injected storage-level fault produces: a
// WAL append or sync (or a checkpoint write) that corrupted what it put
// on disk. Unlike device faults — which the engine heals by re-planning —
// a storage fault is not retryable: the corrupt bytes are already on the
// durable surface, so the log must wedge rather than append acknowledged
// records after a record recovery will truncate at.
type StorageFault struct {
	Kind Kind
	Site string
	// Frac is a deterministic value in [0,1) hashed from the same
	// (seed, site, seq) stream as the firing decision; the storage layer
	// uses it to pick the torn length or the flipped bit, so the
	// corruption itself — not just its occurrence — is reproducible.
	Frac float64
}

// Error implements error.
func (e *StorageFault) Error() string {
	return fmt.Sprintf("fault: injected %s at %s", e.Kind, e.Site)
}

// IsStorageFault reports whether err is (or wraps) an injected storage
// fault.
func IsStorageFault(err error) bool {
	var sf *StorageFault
	return errors.As(err, &sf)
}

// IsDeviceFault reports whether err is (or wraps) an injected device
// fault — the trigger for the engine's CPU fallback.
func IsDeviceFault(err error) bool {
	var df *DeviceFault
	return errors.As(err, &df)
}

// IsEngineFault reports whether err is (or wraps) an injected engine
// fault.
func IsEngineFault(err error) bool {
	var ef *EngineFault
	return errors.As(err, &ef)
}

// DeviceSite derives the injection-site name for one device of a
// replica's multi-GPU node: base for single-device nodes — unchanged, so
// existing seeded fault streams are untouched — and "base.g<dev>" when
// the node has several devices, making per-device faults distinguishable
// in the fault log and the /statz site counters. The site string feeds
// hashUnit, so the naming is part of the deterministic contract: a
// devices=1 run must hash the same site names it always has.
func DeviceSite(base string, dev, devices int) string {
	if devices <= 1 {
		return base
	}
	return fmt.Sprintf("%s.g%d", base, dev)
}

// siteState is one injection site's private stream: opportunity counters
// per channel, the in-progress reset window, and the site's slice of the
// fault log.
type siteState struct {
	deviceSeq  int64 // device work-item submissions seen
	querySeq   int64 // sub-query admissions seen
	storageSeq int64 // storage operations (appends, syncs, checkpoints) seen
	resetAt    time.Duration
	resetTill  time.Duration
	resetLive  bool
	events     []Event
}

// Injector evaluates a Plan at injection points. All methods are safe
// for concurrent use and nil-safe (a nil injector never injects).
type Injector struct {
	plan  Plan
	rules [numKinds]*Rule

	mu     sync.Mutex
	sites  map[string]*siteState
	counts [numKinds]int64
}

// NewInjector compiles a plan. A plan with no rules still yields a
// working injector that injects nothing; callers that want the true
// zero-cost path should keep a nil *Injector instead.
func NewInjector(plan Plan) *Injector {
	in := &Injector{plan: plan, sites: make(map[string]*siteState)}
	for i := range plan.Rules {
		r := &plan.Rules[i]
		if r.Kind < numKinds && r.Rate > 0 {
			in.rules[r.Kind] = r
		}
	}
	return in
}

// Seed returns the plan seed.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.plan.Seed
}

// site returns (creating) the named site's state. Caller holds in.mu.
func (in *Injector) site(name string) *siteState {
	s := in.sites[name]
	if s == nil {
		s = &siteState{}
		in.sites[name] = s
	}
	return s
}

// fires decides whether rule k fires at opportunity seq of site. The
// decision is a pure hash of (seed, site, kind, seq) — independent of
// goroutine interleaving and of which other rules exist.
func (in *Injector) fires(site string, k Kind, seq int64) (*Rule, bool) {
	r := in.rules[k]
	if r == nil {
		return nil, false
	}
	if seq < r.After || (r.Until > 0 && seq >= r.Until) {
		return nil, false
	}
	return r, hashUnit(in.plan.Seed, site, uint64(k), seq) < r.Rate
}

// record appends one fired fault to the site's log and the kind counter.
// Caller holds in.mu.
func (in *Injector) record(site string, s *siteState, seq int64, k Kind, at time.Duration) {
	s.events = append(s.events, Event{Site: site, Seq: seq, Kind: k, At: at})
	in.counts[k]++
}

// DeviceHook returns the runtime submit hook for one site, or nil when
// the injector is nil (the zero-cost default). The hook fails work items
// per the plan: a live DeviceReset window rejects everything; otherwise
// compute items draw KernelLaunch, copy items draw TransferError, and
// every item draws DeviceReset (which opens a reset window on fire).
func (in *Injector) DeviceHook(site string) gpu.SubmitHook {
	if in == nil {
		return nil
	}
	return func(class gpu.EngineClass, at time.Duration) error {
		in.mu.Lock()
		defer in.mu.Unlock()
		s := in.site(site)
		seq := s.deviceSeq
		s.deviceSeq++
		if s.resetLive && at < s.resetTill {
			// Mid-reset: fail fast without logging a fresh event — the
			// window itself was the injected fault.
			return &DeviceFault{Kind: DeviceReset, Site: site}
		}
		s.resetLive = false
		if r, ok := in.fires(site, DeviceReset, seq); ok {
			window := r.Stall
			if window <= 0 {
				window = DefaultResetWindow
			}
			s.resetAt, s.resetTill, s.resetLive = at, at+window, true
			in.record(site, s, seq, DeviceReset, at)
			return &DeviceFault{Kind: DeviceReset, Site: site}
		}
		k := TransferError
		if class == gpu.ComputeEngine {
			k = KernelLaunch
		}
		if _, ok := in.fires(site, k, seq); ok {
			in.record(site, s, seq, k, at)
			return &DeviceFault{Kind: k, Site: site}
		}
		return nil
	}
}

// ResetRemaining reports how much of the site's device-reset window is
// still ahead of the modeled time at — the load signal a router should
// add to a replica's backlog so a mid-reset device (whose queues are
// empty precisely because it is down) does not look attractively idle.
func (in *Injector) ResetRemaining(site string, at time.Duration) time.Duration {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.sites[site]
	if s == nil || !s.resetLive || at >= s.resetTill {
		return 0
	}
	return s.resetTill - at
}

// AdmitQuery evaluates the sub-query-level faults for one admission at
// site: a fired EngineError fails the sub-query (returned error), a
// fired ShardStall returns the added latency. Both may be zero.
func (in *Injector) AdmitQuery(site string, at time.Duration) (stall time.Duration, err error) {
	if in == nil {
		return 0, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.site(site)
	seq := s.querySeq
	s.querySeq++
	if _, ok := in.fires(site, EngineError, seq); ok {
		in.record(site, s, seq, EngineError, at)
		return 0, &EngineFault{Site: site}
	}
	if r, ok := in.fires(site, ShardStall, seq); ok {
		d := r.Stall
		if d <= 0 {
			d = DefaultStall
		}
		in.record(site, s, seq, ShardStall, at)
		return d, nil
	}
	return 0, nil
}

// StorageOp evaluates the storage-level faults for one operation at
// site — a WAL append (site "<base>.wal.append"), a WAL sync
// ("<base>.wal.sync"), or a checkpoint write ("<base>.ckpt"). Each site
// draws its own opportunity stream, so the decision depends only on the
// modeled sequence of storage operations, never on goroutine
// interleaving. kinds names the failure modes this site class can
// exhibit (an append can tear or flip, a sync can come up short); with
// none given all three storage kinds are drawn. Kinds are drawn in the
// given order and the first live rule that fires wins. Returns nil when
// nothing fires.
func (in *Injector) StorageOp(site string, at time.Duration, kinds ...Kind) *StorageFault {
	if in == nil {
		return nil
	}
	if len(kinds) == 0 {
		kinds = []Kind{TornWrite, ShortWrite, BitFlip}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.site(site)
	seq := s.storageSeq
	s.storageSeq++
	for _, k := range kinds {
		if _, ok := in.fires(site, k, seq); ok {
			in.record(site, s, seq, k, at)
			// The fraction is hashed with the kind offset past numKinds so
			// it is decorrelated from every firing decision at this site.
			return &StorageFault{
				Kind: k,
				Site: site,
				Frac: hashUnit(in.plan.Seed, site, uint64(k)+uint64(numKinds), seq),
			}
		}
	}
	return nil
}

// Log returns the complete injected-fault log, sorted by (site, seq,
// kind) so the order is deterministic regardless of which goroutines
// served which sites.
func (in *Injector) Log() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	names := make([]string, 0, len(in.sites))
	for name := range in.sites {
		names = append(names, name)
	}
	var out []Event
	for _, name := range names {
		out = append(out, in.sites[name].events...)
	}
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Counts returns the number of injected faults per kind.
func (in *Injector) Counts() map[string]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		if in.counts[k] > 0 {
			out[k.String()] = in.counts[k]
		}
	}
	return out
}

// SiteCounts returns the number of injected faults per site (sites with
// none are omitted) — the telemetry view that shows which shard, replica,
// and device the faults landed on.
func (in *Injector) SiteCounts() map[string]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64)
	for name, s := range in.sites {
		if len(s.events) > 0 {
			out[name] = int64(len(s.events))
		}
	}
	return out
}

// Total returns the total number of injected faults.
func (in *Injector) Total() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for k := Kind(0); k < numKinds; k++ {
		n += in.counts[k]
	}
	return n
}

// hashUnit maps (seed, site, kind, seq) to a uniform value in [0,1) via
// an FNV-1a fold and a splitmix64 finalizer.
func hashUnit(seed int64, site string, kind uint64, seq int64) float64 {
	h := uint64(0xcbf29ce484222325) ^ uint64(seed)
	for i := 0; i < len(site); i++ {
		h = (h ^ uint64(site[i])) * 0x100000001b3
	}
	h ^= kind * 0x9E3779B97F4A7C15
	h ^= uint64(seq) * 0xBF58476D1CE4E5B9
	// splitmix64 finalizer
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}
