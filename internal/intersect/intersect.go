// Package intersect implements the CPU-side list-intersection algorithms
// of §2.1.2/§2.2: block-wise sorted merge for comparable-length lists, and
// skip-pointer binary search ("CPU binary") that decompresses only
// candidate blocks when the length difference is large — the behaviour
// that makes the CPU win at high length ratios (Figure 8).
//
// Every function returns both the matches and the hwmodel.CPUWork counts
// that drive the simulated-latency model: the algorithms do the real work,
// the model prices it.
package intersect

import (
	"griffin/internal/hwmodel"
	"griffin/internal/index"
)

// DefaultSkipThreshold is the length ratio above which the CPU path
// switches from sequential merge to skip-pointer binary search. CPU merge
// loses to galloping well before the GPU's 128 crossover; 16 matches the
// comparable-length bound the paper uses when selecting Figure 13's
// workloads ("the length of the longer list is less than 16x longer").
const DefaultSkipThreshold = 16

// Result is the outcome of one pairwise intersection.
type Result struct {
	// IDs are the common docIDs, ascending.
	IDs []uint32
	// Work is the billable CPU work the operation performed.
	Work hwmodel.CPUWork
}

// chargeDecode books n decoded elements against the view's codec.
func chargeDecode(v index.BlockList, n int, w *hwmodel.CPUWork) {
	switch v.(type) {
	case index.EFView:
		w.EFDecodedElems += int64(n)
	case index.PFDView:
		w.PFDDecodedElems += int64(n)
	default:
		// Raw intermediate results: a streaming copy, not a decode.
		w.BytesTouched += int64(4 * n)
	}
}

// Merge intersects two lists with the block-wise two-pointer merge: both
// lists are decompressed block by block and scanned sequentially — the
// high-spatial-locality path CPUs run well when the lists have comparable
// lengths (§2.2).
func Merge(a, b index.BlockList) Result {
	var res Result
	var bufA, bufB [index.BlockSize]uint32

	ai, an := 0, 0 // cursor and fill of the current a block
	bi, bn := 0, 0
	ab, bb := 0, 0 // next block index to decode
	var av, bv []uint32

	refillA := func() bool {
		if ab >= a.NumBlocks() {
			return false
		}
		an = a.DecompressBlock(ab, bufA[:])
		chargeDecode(a, an, &res.Work)
		av = bufA[:an]
		ab++
		ai = 0
		return true
	}
	refillB := func() bool {
		if bb >= b.NumBlocks() {
			return false
		}
		bn = b.DecompressBlock(bb, bufB[:])
		chargeDecode(b, bn, &res.Work)
		bv = bufB[:bn]
		bb++
		bi = 0
		return true
	}
	if !refillA() || !refillB() {
		return res
	}
	for {
		x, y := av[ai], bv[bi]
		res.Work.MergedElements++
		switch {
		case x < y:
			ai++
			if ai == an && !refillA() {
				return res
			}
		case x > y:
			bi++
			if bi == bn && !refillB() {
				return res
			}
		default:
			res.IDs = append(res.IDs, x)
			ai++
			bi++
			if ai == an && !refillA() {
				return res
			}
			if bi == bn && !refillB() {
				return res
			}
		}
	}
}

// SkipSearch intersects a short list against a much longer one using the
// skip pointers: each short-list element is routed to its single candidate
// block of the long list by a galloping search over block first-docIDs
// (probes ascend with the short list, so the seek resumes from the last
// hit — amortized O(1 + log of the stride) per element on a cache-resident
// skip array), then the candidate block is probed (Figure 2's "fast locate
// the required blocks"; the λ > 128 block-skipping effect of Figure 9).
//
// The in-block strategy adapts to probe density:
//
//   - sparse probes (fewer short elements than ~2 per long block — the
//     high-ratio regime of Figure 8) use Elias-Fano select to read single
//     elements of the compressed block in place, so the bulk of the long
//     list is never decoded;
//   - dense probes (the comparable-length regime of Figure 13's "CPU
//     binary") decode each candidate block once, cache it, and binary
//     search the decoded values — per-block decode amortizes across the
//     many probes landing in it, but the decode volume approaches the
//     whole list, which is why the paper finds CPU binary slowest there.
func SkipSearch(short, long index.BlockList) Result {
	var res Result
	var bufS, bufL [index.BlockSize]uint32
	nBlocks := long.NumBlocks()
	if nBlocks == 0 || short.Len() == 0 {
		// Still bill the short-list scan that discovers emptiness.
		return res
	}

	ra, hasRA := long.(index.RandomAccess)
	useSelect := hasRA && short.Len() < 2*nBlocks

	curBlock := -1 // decompressed long block cached across probes (decode path)
	var lv []uint32
	hint := 0 // galloping seek position in the skip array

	for sb := 0; sb < short.NumBlocks(); sb++ {
		sn := short.DecompressBlock(sb, bufS[:])
		chargeDecode(short, sn, &res.Work)
		for _, v := range bufS[:sn] {
			if long.BlockFirst(0) > v {
				res.Work.CachedProbes++
				continue // v precedes every long-list element
			}
			blk, probes := seekBlock(long, v, hint)
			res.Work.CachedProbes += int64(probes)
			hint = blk

			if useSelect {
				// Probe the compressed block in place via EF select.
				blo, bhi := 0, long.BlockLen(blk)
				for blo < bhi {
					res.Work.SelectProbes++
					mid := (blo + bhi) / 2
					x := ra.Get(blk, mid)
					switch {
					case x < v:
						blo = mid + 1
					case x > v:
						bhi = mid
					default:
						res.IDs = append(res.IDs, v)
						blo = bhi
					}
				}
				continue
			}

			// Decode the candidate block once and binary search the
			// decoded values (cached across consecutive probes).
			if blk != curBlock {
				n := long.DecompressBlock(blk, bufL[:])
				chargeDecode(long, n, &res.Work)
				lv = bufL[:n]
				curBlock = blk
			}
			blo, bhi := 0, len(lv)
			for blo < bhi {
				res.Work.BinaryProbes++
				mid := (blo + bhi) / 2
				switch {
				case lv[mid] < v:
					blo = mid + 1
				case lv[mid] > v:
					bhi = mid
				default:
					res.IDs = append(res.IDs, v)
					blo = bhi
				}
			}
		}
	}
	return res
}

// seekBlock returns the index of the last block whose first docID is <= v,
// galloping forward from hint (valid because probe values ascend). The
// caller guarantees BlockFirst(0) <= v and 0 <= hint < NumBlocks.
func seekBlock(l index.BlockList, v uint32, hint int) (blk, probes int) {
	n := l.NumBlocks()
	lo := hint
	probes++
	if l.BlockFirst(lo) > v {
		// Hint overshot (first probe of a new short block can restart
		// below the hint); fall back to a plain binary search.
		lo = 0
	}
	// Exponential gallop for the upper bound.
	step := 1
	hi := lo + 1
	for hi < n {
		probes++
		if l.BlockFirst(hi) > v {
			break
		}
		lo = hi
		hi += step
		step *= 2
	}
	if hi > n {
		hi = n
	}
	// Binary search (lo, hi): last index with BlockFirst <= v.
	for lo+1 < hi {
		probes++
		mid := (lo + hi) / 2
		if l.BlockFirst(mid) <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, probes
}

// Pair intersects two lists, choosing merge or skip search by the length
// ratio against threshold (<= 0 means DefaultSkipThreshold) — the CPU
// implementation's adaptive choice described in §2.2. The shorter list is
// always probed into the longer one.
func Pair(a, b index.BlockList, threshold int) Result {
	if threshold <= 0 {
		threshold = DefaultSkipThreshold
	}
	short, long := a, b
	if short.Len() > long.Len() {
		short, long = long, short
	}
	if short.Len() == 0 {
		return Result{}
	}
	if long.Len() >= threshold*short.Len() {
		return SkipSearch(short, long)
	}
	return Merge(short, long)
}

// OrderByLength returns indices of the lists sorted ascending by length —
// the SvS ordering that starts with the two rarest terms (§2.1.2).
func OrderByLength(lists []index.BlockList) []int {
	order := make([]int, len(lists))
	for i := range order {
		order[i] = i
	}
	// Insertion sort: query term counts are tiny (Figure 11: mostly 2-6).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && lists[order[j]].Len() < lists[order[j-1]].Len(); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// SvS computes the full conjunctive intersection of the given lists with
// the SvS strategy: order by length, intersect the two shortest, then fold
// each longer list into the shrinking intermediate, stopping early when it
// empties (§2.1.2). Returns the final matches and the accumulated work.
func SvS(lists []index.BlockList, threshold int) Result {
	switch len(lists) {
	case 0:
		return Result{}
	case 1:
		// Degenerate single-list "intersection": decompress it.
		var res Result
		var buf [index.BlockSize]uint32
		l := lists[0]
		for i := 0; i < l.NumBlocks(); i++ {
			n := l.DecompressBlock(i, buf[:])
			chargeDecode(l, n, &res.Work)
			res.IDs = append(res.IDs, buf[:n]...)
		}
		return res
	}
	order := OrderByLength(lists)
	res := Pair(lists[order[0]], lists[order[1]], threshold)
	for _, oi := range order[2:] {
		if len(res.IDs) == 0 {
			return res
		}
		step := Pair(index.RawView{IDs: res.IDs}, lists[oi], threshold)
		res.IDs = step.IDs
		res.Work.Add(step.Work)
	}
	return res
}
