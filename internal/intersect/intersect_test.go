package intersect

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"griffin/internal/ef"
	"griffin/internal/index"
	"griffin/internal/pfordelta"
)

func refIntersect(a, b []uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func genWithOverlap(rng *rand.Rand, nA, nB int, overlap float64) (a, b []uint32) {
	universe := (nA + nB) * 4
	seen := map[uint32]bool{}
	for len(seen) < nA {
		seen[uint32(rng.Intn(universe))] = true
	}
	for v := range seen {
		a = append(a, v)
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })

	setB := map[uint32]bool{}
	for _, v := range a {
		if rng.Float64() < overlap && len(setB) < nB {
			setB[v] = true
		}
	}
	for len(setB) < nB {
		setB[uint32(rng.Intn(universe))] = true
	}
	for v := range setB {
		b = append(b, v)
	}
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return a, b
}

func efView(t testing.TB, ids []uint32) index.BlockList {
	t.Helper()
	l, err := ef.Compress(ids)
	if err != nil {
		t.Fatal(err)
	}
	return index.EFView{L: l}
}

func pfdView(t testing.TB, ids []uint32) index.BlockList {
	t.Helper()
	l, err := pfordelta.Compress(ids)
	if err != nil {
		t.Fatal(err)
	}
	return index.PFDView{L: l}
}

func TestMergeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, tc := range []struct {
		nA, nB  int
		overlap float64
	}{
		{5, 5, 0.5}, {100, 120, 0.3}, {1000, 900, 0.1},
		{128, 128, 1.0}, {1, 1, 1.0}, {50, 5000, 0.9},
	} {
		a, b := genWithOverlap(rng, tc.nA, tc.nB, tc.overlap)
		want := refIntersect(a, b)
		got := Merge(efView(t, a), efView(t, b))
		if !reflect.DeepEqual(got.IDs, want) {
			t.Fatalf("nA=%d nB=%d: merge mismatch", tc.nA, tc.nB)
		}
		// Mixed codecs must agree too.
		got2 := Merge(pfdView(t, a), efView(t, b))
		if !reflect.DeepEqual(got2.IDs, want) {
			t.Fatalf("nA=%d nB=%d: mixed-codec merge mismatch", tc.nA, tc.nB)
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	got := Merge(efView(t, nil), efView(t, []uint32{1, 2, 3}))
	if len(got.IDs) != 0 {
		t.Fatal("merge with empty list must be empty")
	}
}

func TestMergeWorkAccounting(t *testing.T) {
	a := []uint32{1, 2, 3, 4, 5}
	b := []uint32{3, 4, 5, 6, 7}
	got := Merge(efView(t, a), efView(t, b))
	if got.Work.EFDecodedElems != 10 {
		t.Fatalf("EFDecodedElems = %d, want 10", got.Work.EFDecodedElems)
	}
	if got.Work.MergedElements == 0 {
		t.Fatal("merge reported zero merged elements")
	}
	got2 := Merge(pfdView(t, a), pfdView(t, b))
	if got2.Work.PFDDecodedElems != 10 || got2.Work.EFDecodedElems != 0 {
		t.Fatalf("PFD charge wrong: %+v", got2.Work)
	}
}

func TestSkipSearchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, tc := range []struct {
		nA, nB  int
		overlap float64
	}{
		{10, 10000, 0.8}, {100, 100000, 0.5}, {1, 1000, 1.0}, {64, 8192, 0.0},
	} {
		a, b := genWithOverlap(rng, tc.nA, tc.nB, tc.overlap)
		want := refIntersect(a, b)
		got := SkipSearch(efView(t, a), efView(t, b))
		if !reflect.DeepEqual(got.IDs, want) {
			t.Fatalf("nA=%d nB=%d: skip search mismatch: got %d want %d",
				tc.nA, tc.nB, len(got.IDs), len(want))
		}
	}
}

func TestSkipSearchSkipsBlocks(t *testing.T) {
	// Short list hits only the first and last long-list blocks; decode
	// work must cover candidate blocks only, far below the full list.
	n := 128 * 100
	long := make([]uint32, n)
	for i := range long {
		long[i] = uint32(i * 3)
	}
	short := []uint32{long[5], long[n-5]}
	got := SkipSearch(index.RawView{IDs: short}, efView(t, long))
	if !reflect.DeepEqual(got.IDs, short) {
		t.Fatalf("matches = %v", got.IDs)
	}
	if got.Work.EFDecodedElems > 3*index.BlockSize {
		t.Fatalf("decoded %d elements; skipping failed", got.Work.EFDecodedElems)
	}
}

func TestSkipSearchValueBeforeAllBlocks(t *testing.T) {
	long := []uint32{100, 200, 300}
	short := []uint32{1, 100}
	got := SkipSearch(index.RawView{IDs: short}, efView(t, long))
	if !reflect.DeepEqual(got.IDs, []uint32{100}) {
		t.Fatalf("got %v, want [100]", got.IDs)
	}
}

func TestPairChoosesAlgorithmByRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	// Very high ratio and sparse probes: skip search with in-place select.
	short, long := genWithOverlap(rng, 50, 50_000, 0.5)
	got := Pair(efView(t, short), efView(t, long), 0)
	if got.Work.CachedProbes == 0 || got.Work.SelectProbes == 0 {
		t.Fatalf("sparse high-ratio Pair did not use select-based skip search: %+v", got.Work)
	}
	// High ratio but dense probes (more short elements than long blocks):
	// skip search decodes candidate blocks instead of selecting.
	short2, long2 := genWithOverlap(rng, 3_000, 3_000*DefaultSkipThreshold*2, 0.5)
	got = Pair(efView(t, short2), efView(t, long2), 0)
	if got.Work.CachedProbes == 0 || got.Work.BinaryProbes == 0 || got.Work.SelectProbes != 0 {
		t.Fatalf("dense high-ratio Pair did not use decode-based skip search: %+v", got.Work)
	}
	// Comparable lengths: merge profile (no probes).
	a, b := genWithOverlap(rng, 1000, 1200, 0.3)
	got = Pair(efView(t, a), efView(t, b), 0)
	if got.Work.CachedProbes != 0 || got.Work.SelectProbes != 0 {
		t.Fatal("comparable-length Pair did not use merge")
	}
	if !reflect.DeepEqual(got.IDs, refIntersect(a, b)) {
		t.Fatal("Pair result mismatch")
	}
}

func TestPairOrientationIrrelevant(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	a, b := genWithOverlap(rng, 50, 5000, 0.6)
	r1 := Pair(efView(t, a), efView(t, b), 0)
	r2 := Pair(efView(t, b), efView(t, a), 0)
	if !reflect.DeepEqual(r1.IDs, r2.IDs) {
		t.Fatal("Pair(a,b) != Pair(b,a)")
	}
}

func TestOrderByLength(t *testing.T) {
	lists := []index.BlockList{
		index.RawView{IDs: make([]uint32, 50)},
		index.RawView{IDs: make([]uint32, 5)},
		index.RawView{IDs: make([]uint32, 500)},
		index.RawView{IDs: make([]uint32, 20)},
	}
	got := OrderByLength(lists)
	want := []int{1, 3, 0, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestSvSPaperExample(t *testing.T) {
	// §2.1.2's example: PPoPP ∩ Austria ∩ 2018 = (11, 15, 38, 60).
	ppopp := []uint32{11, 15, 17, 38, 60}
	austria := []uint32{3, 5, 8, 11, 13, 15, 17, 38, 46, 60, 65}
	y2018 := []uint32{2, 4, 6, 11, 13, 14, 15, 19, 25, 33, 38, 60, 70}
	res := SvS([]index.BlockList{
		efView(t, y2018), efView(t, ppopp), efView(t, austria),
	}, 0)
	want := []uint32{11, 15, 38, 60}
	if !reflect.DeepEqual(res.IDs, want) {
		t.Fatalf("SvS = %v, want %v", res.IDs, want)
	}
}

func TestSvSEarlyTermination(t *testing.T) {
	// Two disjoint short lists empty the intermediate; the huge third list
	// must not be decoded at all.
	huge := make([]uint32, 128*1000)
	for i := range huge {
		huge[i] = uint32(i * 2)
	}
	res := SvS([]index.BlockList{
		efView(t, []uint32{1, 3, 5}),
		efView(t, []uint32{7, 9, 11}),
		efView(t, huge),
	}, 0)
	if len(res.IDs) != 0 {
		t.Fatal("expected empty result")
	}
	if res.Work.EFDecodedElems > 6 {
		t.Fatalf("decoded %d elements; early termination failed", res.Work.EFDecodedElems)
	}
}

func TestSvSSingleList(t *testing.T) {
	ids := []uint32{5, 10, 15}
	res := SvS([]index.BlockList{efView(t, ids)}, 0)
	if !reflect.DeepEqual(res.IDs, ids) {
		t.Fatalf("single-list SvS = %v", res.IDs)
	}
}

func TestSvSNoLists(t *testing.T) {
	res := SvS(nil, 0)
	if len(res.IDs) != 0 {
		t.Fatal("empty SvS must be empty")
	}
}

func TestSvSQuick(t *testing.T) {
	f := func(rawA, rawB, rawC []uint16) bool {
		a, b, c := dedup(rawA), dedup(rawB), dedup(rawC)
		if len(a) == 0 || len(b) == 0 || len(c) == 0 {
			return true
		}
		var views []index.BlockList
		for _, ids := range [][]uint32{a, b, c} {
			l, err := ef.Compress(ids)
			if err != nil {
				return false
			}
			views = append(views, index.EFView{L: l})
		}
		want := refIntersect(refIntersect(a, b), c)
		got := SvS(views, 0)
		return reflect.DeepEqual(got.IDs, want) ||
			(len(got.IDs) == 0 && len(want) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func dedup(raw []uint16) []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	for _, v := range raw {
		if !seen[uint32(v)] {
			seen[uint32(v)] = true
			out = append(out, uint32(v))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func BenchmarkMerge100K(b *testing.B) {
	rng := rand.New(rand.NewSource(84))
	x, y := genWithOverlap(rng, 100000, 100000, 0.2)
	va, vb := efView(b, x), efView(b, y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Merge(va, vb)
	}
}

func BenchmarkSkipSearch100x100K(b *testing.B) {
	rng := rand.New(rand.NewSource(85))
	x, y := genWithOverlap(rng, 100, 100000, 0.5)
	va, vb := efView(b, x), efView(b, y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SkipSearch(va, vb)
	}
}
