package loadsim

import (
	"fmt"
	"sort"
	"time"

	"griffin/internal/fault"
	"griffin/internal/index"
	"griffin/internal/ingest"
)

// CrashSpec parameterizes one seeded crash-recovery trial over a durable
// live engine.
type CrashSpec struct {
	// Config is the durable engine configuration. WALDir must be set —
	// RunCrash is meaningless without a log to recover — and Fault may
	// carry an injected storage-fault plan (torn appends, short syncs)
	// so the crash lands on a corrupted tail.
	Config ingest.Config
	// CrashAfter is how many scripted mutations to attempt before the
	// simulated kill -9. Mutations refused by an injected storage fault
	// count as rejected, not acknowledged; script entries invalidated by
	// an earlier rejection (an update of a document whose add was
	// refused) are skipped.
	CrashAfter int
	// CheckpointAt lists mutation counts after which a checkpoint is
	// committed. Checkpoints are skipped once the log wedges.
	CheckpointAt []int
}

// CrashResult measures one crash → recover cycle.
type CrashResult struct {
	// Acked counts mutations the engine acknowledged before the crash;
	// Rejected the ones an injected storage fault refused.
	Acked    int
	Rejected int
	// Recovered is the generation the reopened engine recovered to —
	// equal to Acked exactly when every acknowledged write survived.
	Recovered uint64
	// Replayed is the WAL suffix length recovery replayed past the
	// newest usable checkpoint's watermark.
	Replayed int64
	// Checkpoints counts checkpoints committed before the crash;
	// TruncatedBytes the torn tail bytes recovery discarded.
	Checkpoints    int64
	TruncatedBytes int64
	// RecoveryTime is the wall-clock cost of reopening the crashed
	// directory: manifest + checkpoint load plus the suffix replay.
	RecoveryTime time.Duration
}

// Survived reports whether every acknowledged mutation was recovered.
func (r CrashResult) Survived() bool {
	return r.Recovered == uint64(r.Acked)
}

// RunCrash drives a durable live engine through a scripted mutation
// prefix, kills it without flushing (Engine.Crash — the unsynced tail
// vanishes), reopens the directory, and reports what survived and how
// long recovery took. The reopened engine is verified against the
// acknowledged count and closed before returning.
func RunCrash(seed *index.Index, muts []Mutation, spec CrashSpec) (CrashResult, error) {
	if spec.Config.WALDir == "" {
		return CrashResult{}, fmt.Errorf("loadsim: RunCrash needs Config.WALDir")
	}
	n := spec.CrashAfter
	if n > len(muts) {
		n = len(muts)
	}
	e, err := ingest.Open(seed, spec.Config)
	if err != nil {
		return CrashResult{}, err
	}
	var res CrashResult
	ckpt := append([]int(nil), spec.CheckpointAt...)
	sort.Ints(ckpt)
	for i := 0; i < n; i++ {
		m := muts[i]
		var err error
		switch m.Kind {
		case MutAdd:
			err = e.Add(m.DocID, m.Tokens)
		case MutUpdate:
			err = e.Update(m.DocID, m.Tokens)
		default:
			err = e.Delete(m.DocID)
		}
		switch {
		case err == nil:
			res.Acked++
		case fault.IsStorageFault(err):
			res.Rejected++
		case ingest.IsInvalid(err):
			// A dependent of an earlier rejected mutation; skip.
		default:
			e.Close()
			return res, err
		}
		for len(ckpt) > 0 && ckpt[0] == i+1 {
			ckpt = ckpt[1:]
			if e.Wedged() != nil {
				continue // a wedged log cannot sync a checkpoint's range
			}
			if err := e.Checkpoint(); err != nil {
				e.Close()
				return res, err
			}
		}
	}
	if st := e.Stats(); st.WAL != nil {
		res.Checkpoints = st.WAL.Checkpoints
	}
	e.Crash()

	rcfg := spec.Config
	rcfg.Fault = nil
	start := time.Now()
	r, err := ingest.Open(seed, rcfg)
	if err != nil {
		return res, err
	}
	res.RecoveryTime = time.Since(start)
	res.Recovered = r.Gen()
	if st := r.Stats(); st.WAL != nil {
		res.Replayed = st.WAL.RecoveredRecords
		res.TruncatedBytes = st.WAL.TruncatedBytes
	}
	if res.Recovered > uint64(res.Acked) {
		r.Close()
		return res, fmt.Errorf("loadsim: recovery resurrected %d generations beyond the %d acknowledged",
			res.Recovered-uint64(res.Acked), res.Acked)
	}
	r.Close()
	return res, nil
}
