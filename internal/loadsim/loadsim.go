// Package loadsim is a discrete-event simulation of Griffin under
// concurrent load — the "complex scenarios under heavy system loads with
// multiple users" the paper leaves as future work (§6).
//
// Queries arrive in a Poisson stream and execute as an alternating
// sequence of resource-bound segments (CPU or GPU), extracted from the
// engine's per-query traces. The host is a k-server resource (the paper's
// Xeon has 4 cores); the device serializes kernels, so it is a single
// server. Each resource serves FCFS. The simulation exposes the system
// effect the hybrid design buys beyond single-query latency: offloading
// the heavy early intersections to the GPU drains the CPU queue, so under
// load Griffin's response times degrade far later than the CPU-only
// configuration's.
package loadsim

import (
	"container/heap"
	"math/rand"
	"time"

	"griffin/internal/core"
	"griffin/internal/sched"
	"griffin/internal/stats"
)

// Resource identifies a simulated execution resource.
type Resource int

const (
	// ResCPU is the k-core host pool.
	ResCPU Resource = iota
	// ResGPU is the single-server device.
	ResGPU
)

// Segment is one resource-bound phase of a query's execution.
type Segment struct {
	Res Resource
	D   time.Duration
}

// SegmentsFromStats converts an engine query trace into the segment
// sequence the simulator replays.
//
// Engine traces carry the full physical-plan record (QueryStats.Plan):
// every executed operator — fetch, upload, decompress, intersect,
// migrate, score, top-k — becomes a segment on the processor it ran on
// (adjacent same-resource operators merge), so the replayed timeline is
// exactly the executor's, operator by operator. For hand-built stats
// without a plan, the legacy conversion applies: each traced intersection
// is a segment, and the residual CPU/GPU time forms trailing segments.
func SegmentsFromStats(qs core.QueryStats) []Segment {
	var segs []Segment
	var opCPU time.Duration
	push := func(r Resource, d time.Duration) {
		if d <= 0 {
			return
		}
		if n := len(segs); n > 0 && segs[n-1].Res == r {
			segs[n-1].D += d
			return
		}
		segs = append(segs, Segment{Res: r, D: d})
	}
	if len(qs.Plan) > 0 {
		// Operator-trace replay: the plan records partition the query's
		// entire CPU and GPU time, so no residual pushes are needed.
		for _, op := range qs.Plan {
			if op.Where == sched.GPU {
				push(ResGPU, op.Took)
			} else {
				push(ResCPU, op.Took)
			}
		}
		return segs
	}
	for _, op := range qs.Ops {
		if op.Where == sched.GPU {
			push(ResGPU, op.Took)
		} else {
			push(ResCPU, op.Took)
			opCPU += op.Took
		}
	}
	// GPU transfer/migration time not attributed to a traced op rides the
	// GPU resource; ranking and other residual host time rides the CPU.
	var tracedGPU time.Duration
	for _, op := range qs.Ops {
		if op.Where == sched.GPU {
			tracedGPU += op.Took
		}
	}
	push(ResGPU, qs.GPUTime-tracedGPU)
	push(ResCPU, qs.CPUTime-opCPU)
	return segs
}

// Spec parameterizes a simulation run.
type Spec struct {
	// CPUWorkers is the host core count (the paper's testbed: 4).
	CPUWorkers int
	// GPUServers is the device count (default 1; the K20 serializes
	// kernels, so one device is one server). Raising it models the
	// multi-GPU load-balancing extension §3.2 leaves a hook for.
	GPUServers int
	// ArrivalRate is the offered load in queries per second (Poisson).
	ArrivalRate float64
	// Seed drives arrival-time generation.
	Seed int64
	// TolerateFailures makes RunCluster treat an all-shards-failed query
	// as a counted failure (ClusterResult.Failed) instead of aborting the
	// run — the chaos-mode setting, where injected faults are expected to
	// kill some queries outright.
	TolerateFailures bool
}

// Result aggregates a simulation run.
type Result struct {
	// Latencies records per-query response times (sojourn: arrival to
	// completion, including queueing).
	Latencies *stats.LatencyRecorder
	// CPUBusy and GPUBusy are resource utilizations in [0,1].
	CPUBusy float64
	GPUBusy float64
	// Makespan is the simulated time to drain all queries.
	Makespan time.Duration
}

// event is a scheduled simulation occurrence.
type event struct {
	at   time.Duration
	kind int // 0 = arrival, 1 = segment completion
	q    *queryState
}

type eventQueue []event

func (e eventQueue) Len() int           { return len(e) }
func (e eventQueue) Less(i, j int) bool { return e[i].at < e[j].at }
func (e eventQueue) Swap(i, j int)      { e[i], e[j] = e[j], e[i] }
func (e *eventQueue) Push(x any)        { *e = append(*e, x.(event)) }
func (e *eventQueue) Pop() any {
	old := *e
	n := len(old)
	x := old[n-1]
	*e = old[:n-1]
	return x
}

type queryState struct {
	segs    []Segment
	next    int
	arrived time.Duration
	dual    *DualTrace // adaptive mode only: the plan pair to pick from
}

// resource is a k-server FCFS station.
type resource struct {
	free int
	fifo []*queryState
	busy time.Duration // aggregate busy server-time
}

// Run simulates the query traces under the spec and returns response-time
// statistics. Each trace is one query's segment sequence; arrival order
// follows the slice order.
func Run(traces [][]Segment, spec Spec) Result {
	rng := rand.New(rand.NewSource(spec.Seed))
	res := Result{Latencies: stats.NewLatencyRecorder(len(traces))}
	if len(traces) == 0 || spec.ArrivalRate <= 0 || spec.CPUWorkers <= 0 {
		return res
	}

	gpuServers := spec.GPUServers
	if gpuServers <= 0 {
		gpuServers = 1
	}
	cpu := &resource{free: spec.CPUWorkers}
	gpuRes := &resource{free: gpuServers}
	station := func(r Resource) *resource {
		if r == ResGPU {
			return gpuRes
		}
		return cpu
	}

	var eq eventQueue
	t := time.Duration(0)
	for _, segs := range traces {
		// Poisson arrivals: exponential inter-arrival times.
		t += time.Duration(rng.ExpFloat64() / spec.ArrivalRate * float64(time.Second))
		heap.Push(&eq, event{at: t, kind: 0, q: &queryState{segs: segs, arrived: t}})
	}

	var now time.Duration
	start := func(q *queryState, at time.Duration) {
		seg := q.segs[q.next]
		st := station(seg.Res)
		st.free--
		st.busy += seg.D
		heap.Push(&eq, event{at: at + seg.D, kind: 1, q: q})
	}
	request := func(q *queryState, at time.Duration) {
		if q.next >= len(q.segs) {
			res.Latencies.Record(at - q.arrived)
			return
		}
		st := station(q.segs[q.next].Res)
		if st.free > 0 {
			start(q, at)
		} else {
			st.fifo = append(st.fifo, q)
		}
	}

	for eq.Len() > 0 {
		ev := heap.Pop(&eq).(event)
		now = ev.at
		switch ev.kind {
		case 0: // arrival
			request(ev.q, now)
		case 1: // segment completion
			st := station(ev.q.segs[ev.q.next].Res)
			st.free++
			ev.q.next++
			// FCFS: queries already waiting on the freed station are
			// served before the continuing query can re-enter it.
			if len(st.fifo) > 0 {
				nq := st.fifo[0]
				st.fifo = st.fifo[1:]
				start(nq, now)
			}
			request(ev.q, now)
		}
	}
	res.Makespan = now
	if now > 0 {
		res.CPUBusy = float64(cpu.busy) / (float64(now) * float64(spec.CPUWorkers))
		res.GPUBusy = float64(gpuRes.busy) / (float64(now) * float64(gpuServers))
	}
	return res
}

// DualTrace carries one query's execution under both placements, the
// input to the load-aware simulation: the Griffin trace (mixed CPU/GPU
// segments) and the CPU-only fallback trace.
type DualTrace struct {
	Griffin []Segment
	CPUOnly []Segment
}

// RunAdaptive simulates a load-balancing admission policy over dual
// traces: a query arriving while the GPU backlog exceeds gpuQueueLimit
// waiting queries executes its CPU-only plan instead of its Griffin plan.
// This is the scheduler extension the paper sketches in §3.2 ("it could
// be extended to support other features like load balancing"): placement
// decisions consult system load, not just the query's own characteristics.
func RunAdaptive(traces []DualTrace, spec Spec, gpuQueueLimit int) Result {
	rng := rand.New(rand.NewSource(spec.Seed))
	res := Result{Latencies: stats.NewLatencyRecorder(len(traces))}
	if len(traces) == 0 || spec.ArrivalRate <= 0 || spec.CPUWorkers <= 0 {
		return res
	}
	gpuServers := spec.GPUServers
	if gpuServers <= 0 {
		gpuServers = 1
	}
	cpu := &resource{free: spec.CPUWorkers}
	gpuRes := &resource{free: gpuServers}
	station := func(r Resource) *resource {
		if r == ResGPU {
			return gpuRes
		}
		return cpu
	}

	var eq eventQueue
	t := time.Duration(0)
	pending := make([]*DualTrace, len(traces))
	for i := range traces {
		t += time.Duration(rng.ExpFloat64() / spec.ArrivalRate * float64(time.Second))
		q := &queryState{arrived: t}
		pending[i] = &traces[i]
		heap.Push(&eq, event{at: t, kind: 0, q: q})
		q.segs = nil // chosen at arrival
		q.dual = pending[i]
	}

	var now time.Duration
	start := func(q *queryState, at time.Duration) {
		seg := q.segs[q.next]
		st := station(seg.Res)
		st.free--
		st.busy += seg.D
		heap.Push(&eq, event{at: at + seg.D, kind: 1, q: q})
	}
	request := func(q *queryState, at time.Duration) {
		if q.next >= len(q.segs) {
			res.Latencies.Record(at - q.arrived)
			return
		}
		st := station(q.segs[q.next].Res)
		if st.free > 0 {
			start(q, at)
		} else {
			st.fifo = append(st.fifo, q)
		}
	}

	for eq.Len() > 0 {
		ev := heap.Pop(&eq).(event)
		now = ev.at
		switch ev.kind {
		case 0: // arrival: choose the plan by instantaneous GPU backlog
			if len(gpuRes.fifo) > gpuQueueLimit {
				ev.q.segs = ev.q.dual.CPUOnly
			} else {
				ev.q.segs = ev.q.dual.Griffin
			}
			request(ev.q, now)
		case 1:
			st := station(ev.q.segs[ev.q.next].Res)
			st.free++
			ev.q.next++
			if len(st.fifo) > 0 {
				nq := st.fifo[0]
				st.fifo = st.fifo[1:]
				start(nq, now)
			}
			request(ev.q, now)
		}
	}
	res.Makespan = now
	if now > 0 {
		res.CPUBusy = float64(cpu.busy) / (float64(now) * float64(spec.CPUWorkers))
		res.GPUBusy = float64(gpuRes.busy) / (float64(now) * float64(gpuServers))
	}
	return res
}
