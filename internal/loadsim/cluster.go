package loadsim

import (
	"math/rand"
	"time"

	"griffin/internal/cluster"
	"griffin/internal/stats"
)

// ClusterResult extends Result with cluster-level outcomes.
type ClusterResult struct {
	Result
	// Degraded counts queries answered partially (shards timed out or
	// errored).
	Degraded int
	// MaxShardMean and MergeMean decompose the mean latency into the
	// critical-path shard and the gather-side merge, verifying the
	// cluster's latency model under load: Latency = MaxShard + Merge for
	// every query, so the means decompose the same way.
	MaxShardMean time.Duration
	MergeMean    time.Duration
}

// RunCluster drives a sharded cluster under Poisson load, the cluster
// analogue of RunEngine: each query is admitted at its generated arrival
// time on every shard replica's device timeline (cluster.SearchAt), so a
// shard whose device still carries backlog from earlier arrivals delays
// the queries routed to it — and, through the max-over-shards critical
// path, the whole cluster response. Sequential wall-clock execution in
// arrival order remains a faithful discrete-event evaluation because
// every replica runtime's engine queue serves FCFS.
//
// The cluster should be dedicated to the run. Latencies are sojourn
// times of the cluster critical path: slowest awaited shard plus merge.
func RunCluster(cl *cluster.Cluster, queries [][]string, spec Spec) (ClusterResult, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	res := ClusterResult{Result: Result{Latencies: stats.NewLatencyRecorder(len(queries))}}
	if len(queries) == 0 || spec.ArrivalRate <= 0 {
		return res, nil
	}
	var t time.Duration
	var maxShardSum, mergeSum time.Duration
	for _, q := range queries {
		t += time.Duration(rng.ExpFloat64() / spec.ArrivalRate * float64(time.Second))
		r, err := cl.SearchAt(q, t)
		if err != nil {
			return res, err
		}
		res.Latencies.Record(r.Stats.Latency)
		maxShardSum += r.Stats.MaxShard
		mergeSum += r.Stats.MergeTime
		if r.Stats.Degraded {
			res.Degraded++
		}
		if end := t + r.Stats.Latency; end > res.Makespan {
			res.Makespan = end
		}
	}
	res.MaxShardMean = maxShardSum / time.Duration(len(queries))
	res.MergeMean = mergeSum / time.Duration(len(queries))

	// GPUBusy reports the busiest replica device: in a scatter-gather
	// tier the hottest shard bounds throughput.
	for _, row := range cl.Telemetry() {
		if row.Device != nil && row.Device.Utilization > res.GPUBusy {
			res.GPUBusy = row.Device.Utilization
		}
	}
	return res, nil
}
