package loadsim

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"griffin/internal/cluster"
	"griffin/internal/stats"
)

// ClusterResult extends Result with cluster-level outcomes.
type ClusterResult struct {
	Result
	// Degraded counts queries answered partially (shards timed out or
	// errored); Failed counts queries with no answer at all (every shard
	// failed — only possible under chaos with TolerateFailures set, since
	// otherwise RunCluster aborts on the first such query).
	Degraded int
	Failed   int
	// Retries, Hedges, and Fallbacks total the cluster's self-healing
	// actions across the run (sibling retries, hedged sub-queries,
	// CPU-fallback sub-queries).
	Retries   int
	Hedges    int
	Fallbacks int
	// MaxShardMean and MergeMean decompose the mean latency into the
	// critical-path shard and the gather-side merge, verifying the
	// cluster's latency model under load: Latency = MaxShard + Merge for
	// every query, so the means decompose the same way.
	MaxShardMean time.Duration
	MergeMean    time.Duration
}

// Available returns the fraction of queries answered completely — not
// failed, not degraded. The chaos studies' availability metric.
func (r ClusterResult) Available() float64 {
	total := r.Latencies.Count() + r.Failed
	if total == 0 {
		return 1
	}
	return float64(total-r.Failed-r.Degraded) / float64(total)
}

// RunCluster drives a sharded cluster under Poisson load, the cluster
// analogue of RunEngine: each query is admitted at its generated arrival
// time on every shard replica's device timeline (cluster.SearchAt), so a
// shard whose device still carries backlog from earlier arrivals delays
// the queries routed to it — and, through the max-over-shards critical
// path, the whole cluster response. Sequential wall-clock execution in
// arrival order remains a faithful discrete-event evaluation because
// every replica runtime's engine queue serves FCFS.
//
// The cluster should be dedicated to the run. Latencies are sojourn
// times of the cluster critical path: slowest awaited shard plus merge.
func RunCluster(cl *cluster.Cluster, queries [][]string, spec Spec) (ClusterResult, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	res := ClusterResult{Result: Result{Latencies: stats.NewLatencyRecorder(len(queries))}}
	if len(queries) == 0 || spec.ArrivalRate <= 0 {
		return res, nil
	}
	var t time.Duration
	var maxShardSum, mergeSum time.Duration
	answered := 0
	for _, q := range queries {
		t += time.Duration(rng.ExpFloat64() / spec.ArrivalRate * float64(time.Second))
		r, err := cl.SearchAt(context.Background(), q, t)
		if err != nil {
			if spec.TolerateFailures && errors.Is(err, cluster.ErrAllShardsFailed) {
				res.Failed++
				continue
			}
			return res, err
		}
		answered++
		res.Latencies.Record(r.Stats.Latency)
		maxShardSum += r.Stats.MaxShard
		mergeSum += r.Stats.MergeTime
		if r.Stats.Degraded {
			res.Degraded++
		}
		res.Retries += r.Stats.Retries
		res.Hedges += r.Stats.Hedges
		res.Fallbacks += r.Stats.Fallbacks
		if end := t + r.Stats.Latency; end > res.Makespan {
			res.Makespan = end
		}
	}
	if answered > 0 {
		res.MaxShardMean = maxShardSum / time.Duration(answered)
		res.MergeMean = mergeSum / time.Duration(answered)
	}

	// GPUBusy reports the busiest replica device: in a scatter-gather
	// tier the hottest shard bounds throughput.
	for _, row := range cl.Telemetry() {
		if row.Device != nil && row.Device.Utilization > res.GPUBusy {
			res.GPUBusy = row.Device.Utilization
		}
	}
	return res, nil
}
