package loadsim

import (
	"testing"
	"time"

	"griffin/internal/core"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/ingest"
	"griffin/internal/workload"
)

// mixedFixture builds a small corpus, a read log, a valid mutation
// script (adds of fresh docs, then updates and deletes of them), and a
// live-engine constructor over a dedicated hybrid device.
func mixedFixture(t testing.TB) ([][]string, []Mutation, func(threshold int) *ingest.Engine) {
	t.Helper()
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    60_000,
		NumTerms:   30,
		MaxListLen: 20_000,
		MinListLen: 100,
		Alpha:      1.0,
		Codec:      index.CodecEF,
		Seed:       71,
	})
	if err != nil {
		t.Fatal(err)
	}
	log := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 120, PopularityAlpha: 0.6, Seed: 72,
	})
	queries := make([][]string, len(log))
	for i, q := range log {
		queries[i] = q.Terms
	}
	base := uint32(c.Index.NumDocs)
	var muts []Mutation
	for i := 0; i < 30; i++ {
		muts = append(muts, Mutation{Kind: MutAdd, DocID: base + uint32(i), Tokens: queries[i%len(queries)]})
	}
	for i := 0; i < 5; i++ {
		muts = append(muts, Mutation{Kind: MutUpdate, DocID: base + uint32(i), Tokens: queries[(i+7)%len(queries)]})
	}
	for i := 5; i < 10; i++ {
		muts = append(muts, Mutation{Kind: MutDelete, DocID: base + uint32(i)})
	}
	mk := func(threshold int) *ingest.Engine {
		e, err := ingest.New(c.Index, ingest.Config{
			Engine: core.Config{
				Mode:   core.Hybrid,
				Device: gpu.New(hwmodel.DefaultGPU(), 0),
			},
			MergeThreshold: threshold,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	return queries, muts, mk
}

// The two arms of the mixed workload share one arrival process (the
// engine never consumes the rng), so read/write interleavings are
// identical; only the merge arm commits merges, and their re-encoding
// cost lands on the shared device timeline.
func TestRunMixedMergeVsNoMergeArms(t *testing.T) {
	queries, muts, mk := mixedFixture(t)
	spec := MixedSpec{ArrivalRate: 400, WriteFraction: 0.4, Seed: 9}

	noMerge := mk(12)
	off, err := RunMixed(noMerge, queries, muts, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer noMerge.Close()

	specOn := spec
	specOn.Merge = true
	merged := mk(12)
	on, err := RunMixed(merged, queries, muts, specOn)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()

	if off.Reads != on.Reads || off.Writes != on.Writes {
		t.Fatalf("arms diverged: off %d/%d reads/writes, on %d/%d",
			off.Reads, off.Writes, on.Reads, on.Writes)
	}
	if off.Reads != len(queries) {
		t.Fatalf("Reads = %d, want %d (run ends when the read log drains)", off.Reads, len(queries))
	}
	if off.Writes == 0 || off.Writes > len(muts) {
		t.Fatalf("Writes = %d, want within (0, %d]", off.Writes, len(muts))
	}
	if off.Failed != 0 || on.Failed != 0 {
		t.Fatalf("fault-free run failed reads: off=%d on=%d", off.Failed, on.Failed)
	}
	if a := on.Availability(); a != 1 {
		t.Fatalf("availability = %v, want 1", a)
	}

	if off.Stats.Merges != 0 {
		t.Fatalf("no-merge arm committed %d merges", off.Stats.Merges)
	}
	seen := map[uint32]bool{}
	for _, m := range muts[:off.Writes] {
		seen[m.DocID] = true
	}
	if off.Stats.DeltaDocs != len(seen) {
		t.Fatalf("no-merge delta holds %d records, want %d distinct docs (every write unmerged)",
			off.Stats.DeltaDocs, len(seen))
	}
	if off.DeltaPeak != len(seen) {
		t.Fatalf("no-merge DeltaPeak = %d, want %d", off.DeltaPeak, len(seen))
	}

	if on.Stats.Merges == 0 {
		t.Fatal("merge arm committed no merges despite threshold crossings")
	}
	if on.Stats.MergeDevice <= 0 {
		t.Fatal("merge arm charged no device time for re-encoding")
	}
	if on.Stats.DeltaDocs >= off.Stats.DeltaDocs {
		t.Fatalf("merge arm residual delta %d not below no-merge %d",
			on.Stats.DeltaDocs, off.Stats.DeltaDocs)
	}
	if on.DeltaPeak > off.DeltaPeak {
		t.Fatalf("merge arm DeltaPeak %d exceeds no-merge %d", on.DeltaPeak, off.DeltaPeak)
	}
	if on.Latencies.Count() != on.Reads || off.Latencies.Count() != off.Reads {
		t.Fatal("latency sample counts disagree with read counts")
	}
	if off.Makespan <= 0 || on.Makespan <= 0 {
		t.Fatal("makespan not recorded")
	}
	if on.GPUBusy <= 0 {
		t.Fatal("hybrid run reported zero GPU busy fraction")
	}
}

// An empty read log or non-positive rate is a no-op, not an error.
func TestRunMixedDegenerate(t *testing.T) {
	queries, muts, mk := mixedFixture(t)
	e := mk(0)
	defer e.Close()
	res, err := RunMixed(e, nil, muts, MixedSpec{ArrivalRate: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads != 0 || res.Writes != 0 || res.Latencies.Count() != 0 {
		t.Fatalf("empty read log ran work: %+v", res)
	}
	res, err = RunMixed(e, queries[:3], muts, MixedSpec{ArrivalRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads != 0 || res.Writes != 0 {
		t.Fatalf("zero rate ran work: %+v", res)
	}
	var zero time.Duration
	if res.Makespan != zero {
		t.Fatalf("zero-rate makespan = %v", res.Makespan)
	}
}
