package loadsim

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"griffin/internal/cluster"
	"griffin/internal/overload"
	"griffin/internal/stats"
)

// OverloadSpec drives RunOverload: a Poisson arrival process with a
// per-query deadline and a batch/interactive class mix. The same spec
// with PropagateDeadline flipped is the overload experiment's two arms —
// the hardened arm threads the deadline and class into the cluster
// (activating its overload controls), the baseline arm serves every
// query obliviously and is only *scored* against the deadline.
type OverloadSpec struct {
	// ArrivalRate is the offered load in queries per second (Poisson).
	ArrivalRate float64
	// Seed drives arrival times and class draws; the same seed yields
	// the identical workload in both arms.
	Seed int64
	// Deadline is the per-query latency budget. Every query is scored
	// against it; with PropagateDeadline it is also enforced.
	Deadline time.Duration
	// BatchFraction is the probability a query is tagged Batch.
	BatchFraction float64
	// PropagateDeadline passes the deadline and class into the cluster.
	PropagateDeadline bool
}

// ClassOutcome aggregates one criticality class's outcomes.
type ClassOutcome struct {
	// Queries is the class's total offered queries; Good those answered
	// complete (no missing shards) within the deadline — the goodput
	// numerator. A brownout-degraded answer (reduced top-k on the CPU
	// path) still counts as good when timely: every shard contributed.
	Queries int
	Good    int
	// DeadlineMisses counts timely-looking answers that landed past the
	// deadline; Degraded answers missing shards; Shed queries refused by
	// overload control (admission shed, batch brownout, infeasible
	// deadline); Failed queries lost to non-overload errors.
	DeadlineMisses int
	Degraded       int
	Shed           int
	Failed         int
}

// Goodput is Good over Queries (1.0 for an empty class).
func (c ClassOutcome) Goodput() float64 {
	if c.Queries == 0 {
		return 1
	}
	return float64(c.Good) / float64(c.Queries)
}

// OverloadResult aggregates one RunOverload arm.
type OverloadResult struct {
	Result
	Interactive ClassOutcome
	Batch       ClassOutcome
	// Retries/Hedges/HedgeSkips total the cluster's self-healing actions
	// over the run; BrownoutDegraded counts queries served through the
	// brownout CPU path.
	Retries          int
	Hedges           int
	HedgeSkips       int
	BrownoutDegraded int
}

// Goodput is the all-classes goodput: good answers over offered load.
func (r OverloadResult) Goodput() float64 {
	q := r.Interactive.Queries + r.Batch.Queries
	if q == 0 {
		return 1
	}
	return float64(r.Interactive.Good+r.Batch.Good) / float64(q)
}

// RunOverload drives a cluster through a deadline-scored saturation
// study: Poisson arrivals on the modeled clock (cluster.SearchAtWith),
// each query scored good only when answered complete and within the
// deadline. Overload refusals (ErrShed/ErrDeadline wraps) are counted
// as sheds, not failures — they are the control system working. The
// cluster should be dedicated to the run.
func RunOverload(cl *cluster.Cluster, queries [][]string, spec OverloadSpec) (OverloadResult, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	res := OverloadResult{Result: Result{Latencies: stats.NewLatencyRecorder(len(queries))}}
	if len(queries) == 0 || spec.ArrivalRate <= 0 {
		return res, nil
	}
	var t time.Duration
	for _, q := range queries {
		t += time.Duration(rng.ExpFloat64() / spec.ArrivalRate * float64(time.Second))
		batch := rng.Float64() < spec.BatchFraction
		out := &res.Interactive
		if batch {
			out = &res.Batch
		}
		out.Queries++

		var qo cluster.QueryOpts
		if spec.PropagateDeadline {
			qo.Deadline = spec.Deadline
			if batch {
				qo.Class = overload.Batch
			}
		}
		r, err := cl.SearchAtWith(context.Background(), q, t, qo)
		switch {
		case err != nil && overload.IsOverload(err):
			out.Shed++
			continue
		case err != nil && errors.Is(err, cluster.ErrAllShardsFailed):
			out.Failed++
			continue
		case err != nil:
			return res, err
		}

		res.Latencies.Record(r.Stats.Latency)
		if end := t + r.Stats.Latency; end > res.Makespan {
			res.Makespan = end
		}
		res.Retries += r.Stats.Retries
		res.Hedges += r.Stats.Hedges
		res.HedgeSkips += r.Stats.HedgeSkips
		if r.Stats.ForcedCPU {
			res.BrownoutDegraded++
		}
		late := spec.Deadline > 0 && r.Stats.Latency > spec.Deadline
		switch {
		case r.Stats.Degraded:
			out.Degraded++
		case late:
			out.DeadlineMisses++
		default:
			out.Good++
		}
	}

	for _, row := range cl.Telemetry() {
		if row.Device != nil && row.Device.Utilization > res.GPUBusy {
			res.GPUBusy = row.Device.Utilization
		}
	}
	return res, nil
}
