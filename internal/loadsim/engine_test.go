package loadsim

import (
	"testing"
	"time"

	"griffin/internal/core"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/workload"
)

// engineFixture builds a small corpus, a query log, and a hybrid-engine
// constructor over a fresh device (each call gets a dedicated runtime).
func engineFixture(t testing.TB) ([][]string, func(spill time.Duration) *core.Engine) {
	t.Helper()
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    200_000,
		NumTerms:   50,
		MaxListLen: 60_000,
		MinListLen: 200,
		Alpha:      1.0,
		Codec:      index.CodecEF,
		Seed:       21,
	})
	if err != nil {
		t.Fatal(err)
	}
	log := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 150, PopularityAlpha: 0.6, Seed: 22,
	})
	queries := make([][]string, len(log))
	for i, q := range log {
		queries[i] = q.Terms
	}
	mk := func(spill time.Duration) *core.Engine {
		e, err := core.New(c.Index, core.Config{
			Mode:         core.Hybrid,
			Device:       gpu.New(hwmodel.DefaultGPU(), 0),
			SpillBacklog: spill,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	return queries, mk
}

// At arrival rates far below device capacity, driving the real engine
// under Poisson load reproduces the isolated per-query latencies exactly:
// no queueing delay accrues and each sojourn equals the fresh Search time.
func TestRunEngineLightLoadMatchesIsolatedLatency(t *testing.T) {
	queries, mk := engineFixture(t)
	queries = queries[:40]

	ref := mk(0)
	want := make([]time.Duration, len(queries))
	for i, q := range queries {
		r, err := ref.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r.Stats.Latency
	}

	e := mk(0)
	res, err := RunEngine(e, queries, Spec{ArrivalRate: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latencies.Count() != len(queries) {
		t.Fatalf("recorded %d latencies, want %d", res.Latencies.Count(), len(queries))
	}
	if w := e.Runtime().Stats().Waited; w != 0 {
		t.Fatalf("light load charged %v queueing delay", w)
	}
	// Same queries, same engine config, no contention: every recorded
	// latency must be one of the isolated per-query latencies (the
	// recorder sorts internally, so check via percentile probes).
	for _, p := range []float64{1, 25, 50, 75, 99, 100} {
		got := res.Latencies.Percentile(p)
		found := false
		for _, w := range want {
			if w == got {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("P%v latency %v not among isolated latencies", p, got)
		}
	}
	if res.GPUBusy <= 0 || res.GPUBusy > 1 {
		t.Fatalf("GPU utilization %v out of range", res.GPUBusy)
	}
}

// Past device saturation the static engine's tail grows with backlog,
// and the load-aware spill (SpillBacklog) keeps it bounded — loadsim's
// RunAdaptive result reproduced inside the real engine.
func TestRunEngineSpillBoundsTailUnderOverload(t *testing.T) {
	queries, mk := engineFixture(t)

	// Calibrate the overload rate from the light-load mean service time.
	probe := mk(0)
	light, err := RunEngine(probe, queries[:30], Spec{ArrivalRate: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mean := light.Latencies.Mean()
	if mean <= 0 {
		t.Fatal("zero mean service time")
	}
	overload := 3 / mean.Seconds() // 3x the single-lane drain rate

	static := mk(0)
	rs, err := RunEngine(static, queries, Spec{ArrivalRate: overload, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if w := static.Runtime().Stats().Waited; w == 0 {
		t.Fatal("overload produced no queueing delay on the static engine")
	}
	if rs.Latencies.Percentile(99) <= light.Latencies.Percentile(99) {
		t.Fatalf("overloaded static P99 %v not above light-load P99 %v",
			rs.Latencies.Percentile(99), light.Latencies.Percentile(99))
	}

	spill := mk(mean / 2)
	ra, err := RunEngine(spill, queries, Spec{ArrivalRate: overload, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Latencies.Percentile(99) >= rs.Latencies.Percentile(99) {
		t.Fatalf("spill P99 %v not below static P99 %v under overload",
			ra.Latencies.Percentile(99), rs.Latencies.Percentile(99))
	}
}

func TestRunEngineDegenerate(t *testing.T) {
	_, mk := engineFixture(t)
	e := mk(0)
	res, err := RunEngine(e, nil, Spec{ArrivalRate: 10})
	if err != nil || res.Latencies.Count() != 0 {
		t.Fatalf("empty run: %v, %d latencies", err, res.Latencies.Count())
	}
	res, err = RunEngine(e, [][]string{{"t000001"}}, Spec{})
	if err != nil || res.Latencies.Count() != 0 {
		t.Fatalf("zero rate: %v, %d latencies", err, res.Latencies.Count())
	}
}
