package loadsim

import (
	"testing"
	"time"
)

func dualWork(n int) []DualTrace {
	// Same logical work: Griffin plan = 2ms GPU + 1ms CPU; CPU-only plan
	// = 8ms CPU (the GPU path is 2.7x cheaper in total service time).
	out := make([]DualTrace, n)
	for i := range out {
		out[i] = DualTrace{
			Griffin: []Segment{{ResGPU, 2 * time.Millisecond}, {ResCPU, time.Millisecond}},
			CPUOnly: []Segment{{ResCPU, 8 * time.Millisecond}},
		}
	}
	return out
}

func TestAdaptiveMatchesGriffinUnderLightLoad(t *testing.T) {
	traces := dualWork(100)
	spec := Spec{CPUWorkers: 4, ArrivalRate: 50, Seed: 10} // far below capacity
	static := make([][]Segment, len(traces))
	for i := range traces {
		static[i] = traces[i].Griffin
	}
	rs := Run(static, spec)
	ra := RunAdaptive(traces, spec, 4)
	// No backlog ever forms, so the adaptive policy always picks the
	// Griffin plan: identical distributions.
	if rs.Latencies.Percentile(99) != ra.Latencies.Percentile(99) {
		t.Fatalf("light-load adaptive P99 %v != static %v",
			ra.Latencies.Percentile(99), rs.Latencies.Percentile(99))
	}
}

func TestAdaptiveBeatsStaticBeyondGPUSaturation(t *testing.T) {
	// GPU capacity = 1 server / 2ms = 500 q/s. Offer 650 q/s: the static
	// Griffin plan queues on the device without bound, while the adaptive
	// policy spills excess queries to the (otherwise idle) CPU pool.
	traces := dualWork(800)
	spec := Spec{CPUWorkers: 4, ArrivalRate: 650, Seed: 11}
	static := make([][]Segment, len(traces))
	for i := range traces {
		static[i] = traces[i].Griffin
	}
	rs := Run(static, spec)
	ra := RunAdaptive(traces, spec, 4)
	if ra.Latencies.Percentile(99) >= rs.Latencies.Percentile(99) {
		t.Fatalf("adaptive P99 %v not better than static %v past GPU saturation",
			ra.Latencies.Percentile(99), rs.Latencies.Percentile(99))
	}
	// The spill must actually use the CPU pool.
	if ra.CPUBusy <= rs.CPUBusy {
		t.Fatalf("adaptive CPU utilization %.2f not above static %.2f",
			ra.CPUBusy, rs.CPUBusy)
	}
}

func TestSecondGPUServerRaisesSaturation(t *testing.T) {
	// Doubling GPU servers halves device queueing at a rate that
	// saturates a single device.
	traces := make([][]Segment, 600)
	for i := range traces {
		traces[i] = []Segment{{ResGPU, 2 * time.Millisecond}}
	}
	spec1 := Spec{CPUWorkers: 4, GPUServers: 1, ArrivalRate: 650, Seed: 12}
	spec2 := Spec{CPUWorkers: 4, GPUServers: 2, ArrivalRate: 650, Seed: 12}
	r1 := Run(traces, spec1)
	r2 := Run(traces, spec2)
	if r2.Latencies.Percentile(99) >= r1.Latencies.Percentile(99) {
		t.Fatalf("2 GPUs P99 %v not better than 1 GPU %v",
			r2.Latencies.Percentile(99), r1.Latencies.Percentile(99))
	}
	if r2.GPUBusy >= 1 || r1.GPUBusy <= 0 {
		t.Fatalf("utilizations implausible: 1gpu=%.2f 2gpu=%.2f", r1.GPUBusy, r2.GPUBusy)
	}
}

func TestAdaptiveDegenerateSpecs(t *testing.T) {
	if res := RunAdaptive(nil, Spec{CPUWorkers: 4, ArrivalRate: 10}, 1); res.Latencies.Count() != 0 {
		t.Fatal("empty adaptive run produced latencies")
	}
	traces := dualWork(1)
	if res := RunAdaptive(traces, Spec{CPUWorkers: 0, ArrivalRate: 10}, 1); res.Latencies.Count() != 0 {
		t.Fatal("zero workers should not run")
	}
}
