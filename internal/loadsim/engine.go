package loadsim

import (
	"math/rand"
	"time"

	"griffin/internal/core"
	"griffin/internal/stats"
)

// RunEngine drives the *real* engine under Poisson load through its
// shared device runtime, instead of replaying extracted segment traces:
// each query is admitted at its generated arrival time (core.SearchAt),
// executes its actual plan, and pays modeled queueing delay behind the
// device backlog earlier arrivals left. Because the runtime's engine
// queues serve FCFS and queries are driven in arrival order, sequential
// wall-clock execution is a faithful discrete-event evaluation of the
// contended timeline.
//
// Where Run models both resources as queues, RunEngine contends only
// the device (the host is per-query service time): it isolates the
// GPU-side effect the shared runtime models — and the one the
// load-aware policy (core.Config.SpillBacklog) reacts to. Keep using
// the trace-replay simulators for dual-resource studies; RunEngine
// validates that the promoted policy behaves the same inside the real
// engine.
//
// The engine should be dedicated to the run (a shared runtime would mix
// foreign backlog into the measurement). Latencies are sojourn times:
// arrival to completion, queueing included.
func RunEngine(e *core.Engine, queries [][]string, spec Spec) (Result, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	res := Result{Latencies: stats.NewLatencyRecorder(len(queries))}
	if len(queries) == 0 || spec.ArrivalRate <= 0 {
		return res, nil
	}
	var t time.Duration
	for _, q := range queries {
		t += time.Duration(rng.ExpFloat64() / spec.ArrivalRate * float64(time.Second))
		r, err := e.SearchAt(q, t)
		if err != nil {
			return res, err
		}
		res.Latencies.Record(r.Stats.Latency)
		if end := t + r.Stats.Latency; end > res.Makespan {
			res.Makespan = end
		}
	}
	if node := e.Node(); node != nil {
		// Node-level utilization: busy time over capacity summed across
		// every device, so a multi-GPU engine with one hot device and idle
		// siblings reads as underutilized rather than saturated. Identical
		// to the device-0 view at devices=1.
		res.GPUBusy = node.Utilization()
	}
	return res, nil
}
